package eandroid_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	eandroid "repro"
)

// TestPublicJobs exercises the jobs re-exports end to end: a manager
// built through the root API, its HTTP surface mounted on an
// observability server, one job submitted over the wire, artifacts
// fetched, and a resubmission answered from the content-addressed
// cache.
func TestPublicJobs(t *testing.T) {
	m := eandroid.NewJobManager(eandroid.JobManagerOptions{Runners: 1})
	srv := eandroid.NewObsvServer()
	eandroid.AttachJobs(srv, m)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
	}()

	spec := `{"kind":"scenario","cell":"idle-mostly/benign","seed":7,"horizon":"1h"}`
	post := func() eandroid.JobStatus {
		resp, err := http.Post("http://"+addr+"/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("POST /jobs: status %d, body %q", resp.StatusCode, body)
		}
		var st eandroid.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	st := post()
	if st.Spec.Kind != eandroid.JobKindScenario {
		t.Fatalf("kind = %q, want %q", st.Spec.Kind, eandroid.JobKindScenario)
	}
	fetch := func(path string) (int, []byte) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		code, body := fetch("/jobs/" + st.ID)
		if code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: status %d", st.ID, code)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "canceled" {
			t.Fatalf("job ended %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(time.Millisecond)
	}
	code, summary := fetch("/jobs/" + st.ID + "/artifacts/summary.json")
	if code != http.StatusOK || !bytes.Contains(summary, []byte("idle-mostly/benign")) {
		t.Fatalf("summary.json: status %d, body %q", code, summary)
	}

	// Same spec again: a content-addressed cache hit with a fresh ID,
	// born terminal, byte-identical artifacts.
	st2 := post()
	if !st2.Cached || st2.ID == st.ID || st2.Key != st.Key {
		t.Fatalf("resubmission not a cache hit: %+v", st2)
	}
	code, summary2 := fetch("/jobs/" + st2.ID + "/artifacts/summary.json")
	if code != http.StatusOK || !bytes.Equal(summary, summary2) {
		t.Fatalf("cached summary.json differs (status %d)", code)
	}
}
