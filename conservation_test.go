package eandroid_test

// Energy conservation property: whatever a randomized scenario does,
// every joule drained from the battery must appear in exactly one entry
// of the BatteryStats view — per-app, Screen or System. A gap means an
// attribution leak in internal/accounting or internal/core; an excess
// means double-charging.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	eandroid "repro"
)

// randomScenario drives one device through a random script drawn from
// rng and returns it flushed.
func randomScenario(t *testing.T, rng *rand.Rand) *eandroid.Device {
	t.Helper()
	dev := eandroid.MustNew(eandroid.Config{
		EAndroid: rng.Intn(2) == 0,
		Seed:     rng.Int63(),
	})

	nApps := 2 + rng.Intn(4)
	pkgs := make([]string, nApps)
	uids := make([]eandroid.UID, nApps)
	for i := range pkgs {
		pkgs[i] = fmt.Sprintf("com.prop.app%d", i)
		b := eandroid.NewManifest(pkgs[i], fmt.Sprintf("App%d", i)).
			Permission(eandroid.PermWakeLock, eandroid.PermWriteSettings).
			Activity("Main", true).
			Service("Work", true)
		a, err := dev.Packages.Install(b.MustBuild())
		if err != nil {
			t.Fatal(err)
		}
		if err := a.SetWorkload("Main", eandroid.Workload{
			CPUActive:     rng.Float64() * 0.8,
			CPUBackground: rng.Float64() * 0.1,
			WiFi:          rng.Intn(3) == 0,
		}); err != nil {
			t.Fatal(err)
		}
		if err := a.SetWorkload("Work", eandroid.Workload{CPUActive: rng.Float64() * 0.5}); err != nil {
			t.Fatal(err)
		}
		uids[i] = a.UID
	}

	steps := 3 + rng.Intn(8)
	for s := 0; s < steps; s++ {
		i := rng.Intn(nApps)
		j := rng.Intn(nApps)
		switch rng.Intn(6) {
		case 0:
			if _, err := dev.Activities.UserStartApp(pkgs[i]); err != nil {
				t.Fatal(err)
			}
		case 1:
			// Cross-app activity start: collateral when i != j.
			if _, err := dev.StartActivity(uids[i], pkgs[j]+"/Main"); err != nil {
				t.Fatal(err)
			}
		case 2:
			if _, err := dev.StartService(uids[i], pkgs[j]+"/Work"); err != nil {
				t.Fatal(err)
			}
		case 3:
			if _, err := dev.BindService(uids[i], pkgs[j]+"/Work"); err != nil {
				t.Fatal(err)
			}
		case 4:
			if err := dev.Display.SetBrightness(uids[i], eandroid.SourceApp, rng.Intn(256)); err != nil {
				t.Fatal(err)
			}
		case 5:
			if _, err := dev.Power.Acquire(uids[i], eandroid.ScreenBrightWakeLock,
				fmt.Sprintf("wl-%d", s)); err != nil {
				t.Fatal(err)
			}
		}
		if err := dev.Run(time.Duration(1+rng.Intn(20)) * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	dev.Flush()
	return dev
}

func TestPropertyEnergyConservation(t *testing.T) {
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			dev := randomScenario(t, rng)

			var attributed float64
			for _, e := range dev.Android.Entries() {
				attributed += e.TotalJ
			}
			drained := dev.Battery.DrainedJ()
			if drained <= 0 {
				t.Fatal("scenario drained nothing — property is vacuous")
			}
			if diff := math.Abs(attributed - drained); diff > 1e-6 {
				t.Fatalf("attribution leak: battery drained %.9f J but views account for %.9f J (diff %.3g J)",
					drained, attributed, diff)
			}
			// The monitor's collateral maps are a re-labelling layered on
			// the baseline ledger, so they must never mint energy: each
			// driving app's collateral is bounded by the total drain.
			if dev.EAndroid != nil {
				for _, a := range dev.EAndroid.Attacks() {
					if c := dev.EAndroid.CollateralJ(a.Driving); c < 0 || c > drained+1e-6 {
						t.Fatalf("collateral for uid %d = %.9f J outside [0, %.9f]", a.Driving, c, drained)
					}
				}
			}
		})
	}
}
