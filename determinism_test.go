package eandroid_test

// Determinism golden tests: the simulation's core contract is that the
// same Config + seed produces byte-identical output, and that a fleet's
// aggregate is byte-identical for any worker count. A diff here means
// some subsystem consulted the wall clock, iterated a map into output,
// or shared state across devices.

import (
	"context"
	"testing"
	"time"

	eandroid "repro"
)

// scriptedRun builds a device, mounts a multi-vector attack through the
// public API and returns the rendered E-Android view.
func scriptedRun(t *testing.T, seed int64) string {
	t.Helper()
	dev := eandroid.MustNew(eandroid.Config{EAndroid: true, Seed: seed})
	victim, mal := installPair(t, dev)
	if _, err := dev.Activities.UserStartApp("com.pub.mal"); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.StartActivity(mal.UID, "com.pub.victim/Main"); err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.BindService(mal.UID, "com.pub.victim/Work"); err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(40 * time.Second); err != nil {
		t.Fatal(err)
	}
	_ = victim
	return dev.EAndroidView() + dev.AttackView() + dev.Report()
}

func TestSameSeedByteIdentical(t *testing.T) {
	first := scriptedRun(t, 1234)
	second := scriptedRun(t, 1234)
	if first != second {
		t.Fatalf("same Config+seed diverged:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

// fleetViews runs a 2-device fleet at the given worker count and
// returns the aggregate render plus each device's full E-Android view.
func fleetViews(t *testing.T, workers int) string {
	t.Helper()
	fr, err := eandroid.RunFleet(context.Background(), eandroid.FleetSpec{
		Devices:       2,
		Workers:       workers,
		Seed:          99,
		RetainResults: true, // the view concatenation reads Result.Custom
		Config:        eandroid.Config{EAndroid: true},
		Scenario: func(i int, dev *eandroid.Device) error {
			mal, err := dev.Packages.Install(
				eandroid.NewManifest("com.det.mal", "Mal").Activity("Main", true).MustBuild())
			if err != nil {
				return err
			}
			victim, err := dev.Packages.Install(
				eandroid.NewManifest("com.det.victim", "Victim").
					Activity("Main", true).Service("Work", true).MustBuild())
			if err != nil {
				return err
			}
			if err := victim.SetWorkload("Work", eandroid.Workload{CPUActive: 0.4}); err != nil {
				return err
			}
			if _, err := dev.Activities.UserStartApp("com.det.mal"); err != nil {
				return err
			}
			_, err = dev.BindService(mal.UID, "com.det.victim/Work")
			return err
		},
		Horizon: 30 * time.Second,
		Collect: func(i int, dev *eandroid.Device) (any, error) {
			return dev.EAndroidView(), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := fr.Render()
	for _, r := range fr.Results {
		if r.Err != nil {
			t.Fatalf("device %d: %v", r.Index, r.Err)
		}
		out += r.Custom.(string)
	}
	return out
}

func TestFleetByteIdenticalAcrossWorkerCounts(t *testing.T) {
	one := fleetViews(t, 1)
	two := fleetViews(t, 2)
	if one != two {
		t.Fatalf("fleet output depends on worker count:\n--- workers=1 ---\n%s\n--- workers=2 ---\n%s", one, two)
	}
}
