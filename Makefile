GO ?= go

.PHONY: all build test test-checked race vet fmt-check bench bench-gate fleet-bench fleet-mem telemetry-bench check-bench obsv-bench obsv-smoke trace-bench trace-smoke corpus-bench corpus-smoke jobs-smoke jobs-bench fuzz-short fuzz-corpus-short clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The whole suite again with the runtime invariant checker attached to
# every device built with a nil Checks config — each existing test
# doubles as an energy-conservation / lifecycle-legality check.
test-checked:
	EANDROID_CHECK=1 $(GO) test -count=1 ./...

# The fleet runner is the only concurrent code in the repo; the rest of
# the simulation is single-threaded by design (telemetry recorders are
# per-device and single-goroutine, so they ride the same gate). Race-
# cleanliness of internal/fleet (and of the packages that drive it) is
# an acceptance gate for every PR that touches concurrency.
race:
	$(GO) test -race -count=1 ./internal/fleet/... ./internal/telemetry/... ./internal/experiments/... ./internal/obsv/... ./internal/scenario/... ./internal/corpus/... ./internal/jobs/... ./internal/serveutil/... ./internal/trace/... .

vet:
	$(GO) vet ./...

# Fails if any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -run NONE -bench . -benchmem . ./internal/sim ./internal/hw ./internal/telemetry

# Perf regression gate: rerun the fleet/telemetry/check studies at the
# shape recorded in the committed BENCH_*.json artifacts and fail on any
# >15% wall-clock regression (plus the studies' own overhead gates).
bench-gate:
	$(GO) run ./cmd/benchsuite -benchcmp

# Regenerate the BENCH_fleet.json scaling artifact (wall times,
# bytes/device, device-sim-hours/sec).
fleet-bench:
	$(GO) run ./cmd/benchsuite -fleet 64 -workers 8 -shards 8

# Memory-budget study: a 100k-device heterogeneous population fleet down
# the streaming path must finish inside a constant peak-heap budget
# (256 MiB growth) — proof the accumulator is O(workers+window), not
# O(devices).
fleet-mem:
	$(GO) run ./cmd/benchsuite -fleet-mem 100000

# Regenerate the BENCH_telemetry.json overhead artifact (and enforce the
# enabled <= 10% / disabled <= 1% gates).
telemetry-bench:
	$(GO) run ./cmd/benchsuite -telemetry

# Regenerate the BENCH_check.json invariant-checker overhead artifact
# (and enforce the passive-checks <= 5% gate).
check-bench:
	$(GO) run ./cmd/benchsuite -check

# Regenerate the BENCH_obsv.json observability overhead artifact (and
# enforce the obsv-off <= 1% gate).
obsv-bench:
	$(GO) run ./cmd/benchsuite -obsv

# End-to-end smoke of the live observability plane: an ephemeral-port
# server over a real attack run (healthz/readyz, /metrics parses, one
# SSE tick, clean shutdown) plus the eandroid-sim -serve path.
obsv-smoke:
	$(GO) test -run 'TestServerSmoke|TestServerFleetEndpoints' -count=1 -v ./internal/obsv
	$(GO) test -run 'TestServeFlag' -count=1 -v ./cmd/...

# Regenerate the BENCH_trace.json causal-span tracing overhead artifact
# (and enforce the trace-off <= 1% / every-device-traced <= 10% gates).
trace-bench:
	$(GO) run ./cmd/benchsuite -trace

# End-to-end smoke of the causal span subsystem: one traced fleet job
# over HTTP must yield a trace.json artifact that parses as Chrome
# trace JSON and forms a single rooted span tree whose root threads
# through the job status, the live /trace feed, and the /metrics RED
# exemplars — plus the stalled-subscriber drop test on the live trace
# stream.
trace-smoke:
	$(GO) test -run 'TestTraceSmoke|TestGoldenWorkerIndependence' -count=1 -v ./internal/jobs
	$(GO) test -race -run 'TestTraceStreamStalledSubscriber' -count=1 ./internal/obsv

# Regenerate the BENCH_corpus.json scenario-corpus artifact: every
# (archetype x attack-variant) cell over 40 seeded reps, and enforce the
# interval gates (benign window-FP Wilson upper <= 2%, attack detection
# Wilson lower >= 90%, zero invariant violations).
corpus-bench:
	$(GO) run ./cmd/benchsuite -corpus

# Two-cell, three-rep corpus smoke (one benign, one attack cell): fast
# CI proof that generation, replay and aggregation still work; the
# interval gates are advisory at this scale but violations still fail.
corpus-smoke:
	$(GO) run ./cmd/benchsuite -corpus -corpus-reps 3 -corpus-cells 2 -corpus-horizon 1h -corpus-out ""

# End-to-end smoke of the jobs control plane under -race: concurrent
# HTTP submit/scrape with enforced 429 backpressure, cache byte-identity
# over HTTP, and mid-job cancellation (the heavy load tests), plus the
# every-CLI -serve-jobs path and the eandroid-serve daemon.
jobs-smoke:
	$(GO) test -race -count=1 -run 'TestLoad|TestJobSSEStream|TestQueueCancelWhileQueued' -v ./internal/jobs
	$(GO) test -count=1 -run 'TestServeJobsFlag|TestServeAndStop|TestJobsPlaneServes' ./cmd/... ./internal/serveutil

# Regenerate the BENCH_jobs.json cache-study artifact: one scenario job
# per corpus cell submitted cold then warm, gated at cached-batch
# speedup >= 50x.
jobs-bench:
	$(GO) run ./cmd/benchsuite -jobs

# 30-second randomized invariant hunt (the CI smoke; run longer locally
# with -fuzztime).
fuzz-short:
	$(GO) test -run NONE -fuzz FuzzInvariants -fuzztime 30s ./internal/check

# 30-second randomized corpus hunt: arbitrary (cell, seed, horizon)
# scripts must conserve energy and end lifecycle-clean.
fuzz-corpus-short:
	$(GO) test -run NONE -fuzz FuzzCorpus -fuzztime 30s ./internal/corpus

clean:
	$(GO) clean ./...
