GO ?= go

.PHONY: all build test race vet fmt-check bench fleet-bench telemetry-bench clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The fleet runner is the only concurrent code in the repo; the rest of
# the simulation is single-threaded by design (telemetry recorders are
# per-device and single-goroutine, so they ride the same gate). Race-
# cleanliness of internal/fleet (and of the packages that drive it) is
# an acceptance gate for every PR that touches concurrency.
race:
	$(GO) test -race -count=1 ./internal/fleet/... ./internal/telemetry/... ./internal/experiments/... .

vet:
	$(GO) vet ./...

# Fails if any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -run NONE -bench . -benchmem .

# Regenerate the BENCH_fleet.json scaling artifact.
fleet-bench:
	$(GO) run ./cmd/benchsuite -fleet 64 -workers 8

# Regenerate the BENCH_telemetry.json overhead artifact (and enforce the
# enabled <= 10% / disabled <= 1% gates).
telemetry-bench:
	$(GO) run ./cmd/benchsuite -telemetry

clean:
	$(GO) clean ./...
