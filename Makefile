GO ?= go

.PHONY: all build test race bench fleet-bench clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The fleet runner is the only concurrent code in the repo; the rest of
# the simulation is single-threaded by design. Race-cleanliness of
# internal/fleet (and of the packages that drive it) is an acceptance
# gate for every PR that touches concurrency.
race:
	$(GO) test -race -count=1 ./internal/fleet/... ./internal/experiments/... .

bench:
	$(GO) test -run NONE -bench . -benchmem .

# Regenerate the BENCH_fleet.json scaling artifact.
fleet-bench:
	$(GO) run ./cmd/benchsuite -fleet 64 -workers 8

clean:
	$(GO) clean ./...
