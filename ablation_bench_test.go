package eandroid_test

// Ablation benchmarks for the design choices DESIGN.md calls out:
// exact interval integration vs sampling, the cost of the monitor's
// chain traversal as attack chains deepen, per-event hook overhead
// across the three device configurations, and the two collateral charge
// policies.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/accounting"
	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/hw"
	"repro/internal/intent"
	"repro/internal/manifest"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// BenchmarkMeterAccrue measures exact interval integration as the number
// of active apps grows.
func BenchmarkMeterAccrue(b *testing.B) {
	for _, nUIDs := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("uids=%d", nUIDs), func(b *testing.B) {
			e := sim.NewEngine(1)
			bat, err := hw.NewBattery(1e18)
			if err != nil {
				b.Fatal(err)
			}
			m, err := hw.NewMeter(e.Now, hw.Nexus4(), bat)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < nUIDs; i++ {
				m.SetCPUUtil(app.UID(10000+i), 0.3)
			}
			m.SetScreen(true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.RunFor(time.Second); err != nil {
					b.Fatal(err)
				}
				m.Flush()
			}
		})
	}
}

// BenchmarkMonitorChainDepth measures collateral accrual as the attack
// chain deepens (A drives B drives C drives ...).
func BenchmarkMonitorChainDepth(b *testing.B) {
	for _, depth := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			dev, err := device.New(device.Config{BatteryJ: 1e18, EAndroid: true})
			if err != nil {
				b.Fatal(err)
			}
			apps := make([]*app.App, depth+1)
			for i := range apps {
				pkg := fmt.Sprintf("com.chain.n%d", i)
				apps[i] = dev.Packages.MustInstall(manifest.NewBuilder(pkg, pkg).
					Activity("Main", true).
					Service("Svc", true).
					MustBuild())
				if err := apps[i].SetWorkload("Svc", app.Workload{CPUActive: 0.05}); err != nil {
					b.Fatal(err)
				}
			}
			// Build the chain with service binds: n0 -> n1 -> ... -> nD.
			for i := 0; i < depth; i++ {
				if _, err := dev.Services.Bind(intent.Intent{
					Sender:    apps[i].UID,
					Component: apps[i+1].Package() + "/Svc",
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := dev.Run(time.Second); err != nil {
					b.Fatal(err)
				}
				dev.Flush()
			}
		})
	}
}

// BenchmarkCrossAppStart isolates the per-event hook overhead Figure 10
// aggregates: one cross-app activity start + finish per iteration.
func BenchmarkCrossAppStart(b *testing.B) {
	configs := []struct {
		name string
		cfg  device.Config
	}{
		{"android", device.Config{BatteryJ: 1e18}},
		{"framework-only", device.Config{BatteryJ: 1e18, EAndroid: true, MonitorMode: core.FrameworkOnly}},
		{"complete", device.Config{BatteryJ: 1e18, EAndroid: true, MonitorMode: core.Complete}},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			dev, err := device.New(c.cfg)
			if err != nil {
				b.Fatal(err)
			}
			caller := dev.Packages.MustInstall(manifest.NewBuilder("com.x", "X").
				Activity("Main", true).MustBuild())
			dev.Packages.MustInstall(manifest.NewBuilder("com.y", "Y").
				Activity("Main", true).MustBuild())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec, err := dev.StartActivity(caller.UID, "com.y/Main")
				if err != nil {
					b.Fatal(err)
				}
				if err := dev.Activities.Finish(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChargePolicies compares the paper's full-to-each policy with
// the split refinement on the hybrid chain scenario.
func BenchmarkChargePolicies(b *testing.B) {
	for _, pol := range []core.ChargePolicy{core.ChargeFullToEach, core.ChargeSplit} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w, err := scenario.NewWorld(device.Config{
					EAndroid:         true,
					CollateralPolicy: pol,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := w.HybridChain(); err != nil {
					b.Fatal(err)
				}
				w.Dev.Flush()
			}
		})
	}
}

// BenchmarkSampledVsExact compares the exact interval accountant with
// the 1 Hz utilization sampler on the same workload.
func BenchmarkSampledVsExact(b *testing.B) {
	run := func(b *testing.B, sampled bool) {
		for i := 0; i < b.N; i++ {
			dev, err := device.New(device.Config{BatteryJ: 1e18})
			if err != nil {
				b.Fatal(err)
			}
			a := dev.Packages.MustInstall(manifest.NewBuilder("com.s", "S").
				Activity("Main", true).MustBuild())
			if err := a.SetWorkload("Main", app.Workload{CPUActive: 0.5}); err != nil {
				b.Fatal(err)
			}
			if sampled {
				s, err := accounting.NewSampled(dev.Engine, dev.Meter, dev.Packages, time.Second)
				if err != nil {
					b.Fatal(err)
				}
				s.Start()
			}
			if _, err := dev.Activities.UserStartApp("com.s"); err != nil {
				b.Fatal(err)
			}
			if err := dev.Run(60 * time.Second); err != nil {
				b.Fatal(err)
			}
			dev.Flush()
		}
	}
	b.Run("exact", func(b *testing.B) { run(b, false) })
	b.Run("sampled-1hz", func(b *testing.B) { run(b, true) })
}

// BenchmarkEnergyEfficiency reruns the §VI-B parity check as a bench:
// scene #1 with and without the monitor.
func BenchmarkEnergyEfficiency(b *testing.B) {
	for _, enabled := range []bool{false, true} {
		name := "android"
		if enabled {
			name = "eandroid"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w, err := scenario.NewWorld(device.Config{EAndroid: enabled})
				if err != nil {
					b.Fatal(err)
				}
				if err := w.Scene1MessageFilm(); err != nil {
					b.Fatal(err)
				}
				w.Dev.Flush()
			}
		})
	}
}

// BenchmarkCPUModels compares the linear CPU model with the DVFS ladder
// on the same 60 s workload, reporting the attributed energy as a bench
// metric.
func BenchmarkCPUModels(b *testing.B) {
	models := []struct {
		name    string
		profile hw.Profile
	}{
		{"linear", hw.Nexus4()},
		{"dvfs", hw.Nexus4DVFS()},
	}
	for _, m := range models {
		b.Run(m.name, func(b *testing.B) {
			var lastJ float64
			for i := 0; i < b.N; i++ {
				dev, err := device.New(device.Config{Profile: m.profile, BatteryJ: 1e18})
				if err != nil {
					b.Fatal(err)
				}
				a := dev.Packages.MustInstall(manifest.NewBuilder("com.w", "W").
					Activity("Main", true).MustBuild())
				if err := a.SetWorkload("Main", app.Workload{CPUActive: 0.2}); err != nil {
					b.Fatal(err)
				}
				if _, err := dev.Activities.UserStartApp("com.w"); err != nil {
					b.Fatal(err)
				}
				if err := dev.Run(60 * time.Second); err != nil {
					b.Fatal(err)
				}
				dev.Flush()
				lastJ = dev.Android.AppJ(a.UID)
			}
			b.ReportMetric(lastJ, "J-attributed")
		})
	}
}
