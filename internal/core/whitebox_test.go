package core

import (
	"strings"
	"testing"

	"repro/internal/app"
	"repro/internal/hw"
	"repro/internal/manifest"
	"repro/internal/sim"
)

// wbFixture builds a monitor with three plain apps for direct white-box
// manipulation of attack state.
func wbFixture(t *testing.T) (*sim.Engine, *app.PackageManager, *Monitor, [3]app.UID) {
	t.Helper()
	e := sim.NewEngine(1)
	pm := app.NewPackageManager()
	var uids [3]app.UID
	for i, pkg := range []string{"com.a", "com.b", "com.c"} {
		a := pm.MustInstall(manifest.NewBuilder(pkg, pkg).Activity("Main", true).MustBuild())
		uids[i] = a.UID
	}
	m, err := NewMonitor(e, pm, Complete)
	if err != nil {
		t.Fatal(err)
	}
	return e, pm, m, uids
}

func interval(perUID map[app.UID]float64, screenJ float64) hw.Interval {
	iv := hw.Interval{ScreenJ: screenJ}
	for uid, j := range perUID {
		iv.Row(uid).Add(hw.CPU, j)
	}
	return iv
}

func TestAncestorsOfChain(t *testing.T) {
	_, _, m, u := wbFixture(t)
	a, b, c := u[0], u[1], u[2]
	m.beginAttack(VectorServiceBind, a, b, "ab")
	m.beginAttack(VectorActivity, b, c, "bc")
	anc := m.ancestorsOf(c)
	if len(anc) != 2 || anc[0] != a || anc[1] != b {
		t.Fatalf("ancestors(c) = %v, want [a b]", anc)
	}
	if got := m.ancestorsOf(a); len(got) != 0 {
		t.Fatalf("ancestors(a) = %v, want none", got)
	}
}

func TestAncestorsOfCycleSafe(t *testing.T) {
	_, _, m, u := wbFixture(t)
	a, b := u[0], u[1]
	// A drives B and B drives A: the walk must terminate.
	m.beginAttack(VectorServiceBind, a, b, "ab")
	m.beginAttack(VectorServiceBind, b, a, "ba")
	if anc := m.ancestorsOf(a); len(anc) != 1 || anc[0] != b {
		t.Fatalf("ancestors(a) = %v", anc)
	}
	if anc := m.ancestorsOf(b); len(anc) != 1 || anc[0] != a {
		t.Fatalf("ancestors(b) = %v", anc)
	}
	// A cyclic pair never charges a party for its own energy.
	m.Accrue(interval(map[app.UID]float64{a: 1, b: 2}, 0))
	for _, e := range m.CollateralMap(a) {
		if e.Driven == a {
			t.Fatal("a charged for itself")
		}
	}
}

func TestBeginAttackReplacesIdentical(t *testing.T) {
	_, _, m, u := wbFixture(t)
	a, b := u[0], u[1]
	first := m.beginAttack(VectorActivity, a, b, nil)
	second := m.beginAttack(VectorActivity, a, b, nil)
	if first.Active {
		t.Fatal("EndLastAttack: identical attack should have been ended")
	}
	if !second.Active {
		t.Fatal("replacement attack should be active")
	}
	if len(m.ActiveAttacks()) != 1 {
		t.Fatalf("active = %d", len(m.ActiveAttacks()))
	}
}

func TestServiceBeginPullsExistingElements(t *testing.T) {
	// Algorithm 1's service clause: when A binds B and B already drives
	// C, C's element appears in A's map immediately.
	_, _, m, u := wbFixture(t)
	a, b, c := u[0], u[1], u[2]
	m.beginAttack(VectorActivity, b, c, "bc")
	m.beginAttack(VectorServiceBind, a, b, "ab")
	found := false
	for _, e := range m.CollateralMap(a) {
		if e.Driven == c {
			found = true
		}
	}
	if !found {
		t.Fatalf("A's map lacks C after service bind: %+v", m.CollateralMap(a))
	}
}

func TestChargeFullToEach(t *testing.T) {
	_, _, m, u := wbFixture(t)
	a, b, c := u[0], u[1], u[2]
	// A and B independently attack C.
	m.beginAttack(VectorActivity, a, c, "ac")
	m.beginAttack(VectorServiceBind, b, c, "bc")
	m.Accrue(interval(map[app.UID]float64{c: 10}, 0))
	if got := entry(m, a, c); got != 10 {
		t.Fatalf("a charged %v, want full 10", got)
	}
	if got := entry(m, b, c); got != 10 {
		t.Fatalf("b charged %v, want full 10", got)
	}
}

func TestChargeSplit(t *testing.T) {
	_, _, m, u := wbFixture(t)
	a, b, c := u[0], u[1], u[2]
	if err := m.SetChargePolicy(ChargeSplit); err != nil {
		t.Fatal(err)
	}
	m.beginAttack(VectorActivity, a, c, "ac")
	m.beginAttack(VectorServiceBind, b, c, "bc")
	m.Accrue(interval(map[app.UID]float64{c: 10}, 0))
	if got := entry(m, a, c); got != 5 {
		t.Fatalf("a charged %v, want split 5", got)
	}
	if got := entry(m, b, c); got != 5 {
		t.Fatalf("b charged %v, want split 5", got)
	}
	// Under split, the superimposed total never exceeds the source.
	if total := m.CollateralJ(a) + m.CollateralJ(b); total > 10 {
		t.Fatalf("split total %v exceeds source", total)
	}
}

func TestSetChargePolicyValidation(t *testing.T) {
	_, _, m, _ := wbFixture(t)
	if err := m.SetChargePolicy(ChargePolicy(0)); err == nil {
		t.Fatal("invalid policy accepted")
	}
	if m.ChargePolicy() != ChargeFullToEach {
		t.Fatal("default policy should be full-to-each")
	}
	if ChargeFullToEach.String() != "full-to-each" || ChargeSplit.String() != "split" {
		t.Fatal("policy names")
	}
	if !strings.Contains(ChargePolicy(9).String(), "9") {
		t.Fatal("unknown policy stringer")
	}
}

func TestScreenDeltaChargedToScreenAttacker(t *testing.T) {
	_, _, m, u := wbFixture(t)
	a := u[0]
	m.beginAttack(VectorScreen, a, app.UIDScreen, nil)
	m.Accrue(interval(nil, 7))
	if got := entry(m, a, app.UIDScreen); got != 7 {
		t.Fatalf("screen charge = %v, want 7", got)
	}
}

func TestZeroDeltaChargesNothing(t *testing.T) {
	_, _, m, u := wbFixture(t)
	a, b := u[0], u[1]
	m.beginAttack(VectorActivity, a, b, nil)
	m.Accrue(interval(map[app.UID]float64{}, 0))
	if got := m.CollateralJ(a); got != 0 {
		t.Fatalf("charged %v from empty interval", got)
	}
}

func TestEndedAttackKeepsAccumulatedEnergy(t *testing.T) {
	_, _, m, u := wbFixture(t)
	a, b := u[0], u[1]
	atk := m.beginAttack(VectorActivity, a, b, nil)
	m.Accrue(interval(map[app.UID]float64{b: 4}, 0))
	m.endAttack(atk)
	m.Accrue(interval(map[app.UID]float64{b: 100}, 0))
	if got := entry(m, a, b); got != 4 {
		t.Fatalf("post-end accrual changed entry: %v", got)
	}
}

func TestEntriesWithActiveLinks(t *testing.T) {
	_, _, m, u := wbFixture(t)
	a, b, c := u[0], u[1], u[2]
	m.beginAttack(VectorActivity, a, b, "ab")
	atk := m.beginAttack(VectorActivity, a, c, "ac")
	got := m.entriesWithActiveLinks(a)
	if len(got) != 2 || got[0] != b || got[1] != c {
		t.Fatalf("entries = %v", got)
	}
	m.endAttack(atk)
	got = m.entriesWithActiveLinks(a)
	if len(got) != 1 || got[0] != b {
		t.Fatalf("entries after end = %v", got)
	}
}

func entry(m *Monitor, g, d app.UID) float64 {
	for _, e := range m.CollateralMap(g) {
		if e.Driven == d {
			return e.EnergyJ
		}
	}
	return 0
}

func TestHistoryLimit(t *testing.T) {
	_, _, m, u := wbFixture(t)
	a, b := u[0], u[1]
	if err := m.SetHistoryLimit(-1); err == nil {
		t.Fatal("negative limit accepted")
	}
	if err := m.SetHistoryLimit(3); err != nil {
		t.Fatal(err)
	}
	// Churn: begin+end many attacks; history stays bounded.
	for i := 0; i < 20; i++ {
		atk := m.beginAttack(VectorActivity, a, b, nil)
		m.endAttack(atk)
		m.record("x", a, b, "churn")
	}
	if len(m.Attacks()) > 3 {
		t.Fatalf("attack history = %d, want ≤3", len(m.Attacks()))
	}
	if len(m.Events()) > 3 {
		t.Fatalf("event log = %d, want ≤3", len(m.Events()))
	}
	// A live attack survives trimming even when the cap is exceeded.
	live := m.beginAttack(VectorServiceBind, a, b, "conn")
	for i := 0; i < 10; i++ {
		atk := m.beginAttack(VectorActivity, a, b, nil)
		m.endAttack(atk)
	}
	found := false
	for _, atk := range m.Attacks() {
		if atk == live {
			found = true
		}
	}
	if !found || !live.Active {
		t.Fatal("live attack dropped by history trim")
	}
}
