// Package core implements E-Android, the paper's contribution: a
// framework monitor that records every event capable of triggering a
// collateral energy bug, per-attack lifecycle state machines (Figure 5),
// per-app collateral energy maps updated by the paper's Algorithm 1
// (including multi-collateral and hybrid attack chains), and the revised
// energy views the modified battery interfaces render.
package core

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/sim"
)

// Vector classifies a collateral energy attack by its mechanism.
type Vector int

// Attack vectors, one per lifecycle state machine in Figure 5.
const (
	// VectorActivity is a cross-app activity start (Fig. 5a).
	VectorActivity Vector = iota + 1
	// VectorInterrupt is forcing another app's foreground activity into
	// the background (Fig. 5b).
	VectorInterrupt
	// VectorServiceStart is a cross-app startService (Fig. 5c).
	VectorServiceStart
	// VectorServiceBind is a cross-app bindService (Fig. 5c).
	VectorServiceBind
	// VectorScreen is a background brightness/mode manipulation
	// (Fig. 5d). The driven party is the screen pseudo-UID.
	VectorScreen
	// VectorWakelock is holding a screen wakelock while not foreground
	// (Fig. 5e). The driven party is the screen pseudo-UID.
	VectorWakelock
	// VectorBroadcast is a cross-app broadcast waking another app's
	// receiver for a billed handler window. This vector extends the
	// paper's five (broadcasts are the remaining IPC channel); see
	// DESIGN.md.
	VectorBroadcast
	// VectorProvider is a cross-app content-provider query billing the
	// providing process for the query window (extension; see DESIGN.md).
	VectorProvider
)

func (v Vector) String() string {
	switch v {
	case VectorActivity:
		return "activity"
	case VectorInterrupt:
		return "interrupt"
	case VectorServiceStart:
		return "service-start"
	case VectorServiceBind:
		return "service-bind"
	case VectorScreen:
		return "screen"
	case VectorWakelock:
		return "wakelock"
	case VectorBroadcast:
		return "broadcast"
	case VectorProvider:
		return "provider"
	}
	return fmt.Sprintf("Vector(%d)", int(v))
}

// Attack is one collateral-attack lifecycle instance. Driving is the app
// charged; Driven is the app (or app.UIDScreen) whose energy is
// superimposed onto Driving's collateral map while the attack is active.
type Attack struct {
	ID      int
	Vector  Vector
	Driving app.UID
	Driven  app.UID
	Begin   sim.Time
	End     sim.Time // meaningful only when !Active
	Active  bool

	// anchor ties the attack to the framework object whose teardown ends
	// it (a service connection, a wakelock, a service full-name, ...).
	anchor any
}

// Duration reports how long the attack has been (or was) active.
func (a *Attack) Duration(now sim.Time) sim.Duration {
	if a.Active {
		return now.Sub(a.Begin)
	}
	return a.End.Sub(a.Begin)
}

func (a *Attack) String() string {
	state := "active"
	if !a.Active {
		state = "ended"
	}
	return fmt.Sprintf("attack#%d{%s %d->%d %s}", a.ID, a.Vector, a.Driving, a.Driven, state)
}

// Event is one monitored collateral-energy event, recorded by the
// E-Android framework extension (kept even in framework-only mode, where
// the accounting module is disabled).
type Event struct {
	T       sim.Time
	Kind    string
	Driving app.UID
	Driven  app.UID
	Detail  string
}

func (e Event) String() string {
	return fmt.Sprintf("%v %s driving=%d driven=%d %s", e.T, e.Kind, e.Driving, e.Driven, e.Detail)
}

// MapEntry is one element of a driving app's collateral energy map: a
// driven app (or the screen) and the energy superimposed so far.
type MapEntry struct {
	Driven  app.UID
	EnergyJ float64
}
