package core_test

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/activity"
	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/display"
	"repro/internal/hw"
	"repro/internal/power"
	"repro/internal/scenario"
)

func world(t *testing.T, cfg device.Config) *scenario.World {
	t.Helper()
	cfg.EAndroid = true
	w, err := scenario.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func activeVectors(m *core.Monitor) map[core.Vector]int {
	out := map[core.Vector]int{}
	for _, a := range m.ActiveAttacks() {
		out[a.Vector]++
	}
	return out
}

func entryJ(m *core.Monitor, driving, driven app.UID) float64 {
	for _, e := range m.CollateralMap(driving) {
		if e.Driven == driven {
			return e.EnergyJ
		}
	}
	return 0
}

// --- Fig. 5a: activity attack lifecycle ---

func TestActivityAttackBeginsOnCrossAppStart(t *testing.T) {
	w := world(t, device.Config{})
	mon := w.Dev.EAndroid
	if _, err := w.Dev.Activities.UserStartApp(scenario.PkgMalware); err != nil {
		t.Fatal(err)
	}
	// User-driven starts (launcher is a system app) must not begin
	// attacks.
	if len(mon.ActiveAttacks()) != 0 {
		t.Fatalf("attacks after user start: %v", mon.ActiveAttacks())
	}
	if _, err := w.Dev.StartActivity(w.Malware.UID, scenario.PkgVictim+"/Main"); err != nil {
		t.Fatal(err)
	}
	atks := mon.ActiveAttacks()
	if len(atks) != 1 || atks[0].Vector != core.VectorActivity ||
		atks[0].Driving != w.Malware.UID || atks[0].Driven != w.Victim.UID {
		t.Fatalf("attacks = %v", atks)
	}
}

func TestActivityAttackEndsWhenStartedAgain(t *testing.T) {
	w := world(t, device.Config{})
	mon := w.Dev.EAndroid
	if _, err := w.Dev.Activities.UserStartApp(scenario.PkgMalware); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Dev.StartActivity(w.Malware.UID, scenario.PkgVictim+"/Main"); err != nil {
		t.Fatal(err)
	}
	if err := w.Dev.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The user starts the victim again: the attack ends.
	if _, err := w.Dev.Activities.UserStartApp(scenario.PkgVictim); err != nil {
		t.Fatal(err)
	}
	if n := activeVectors(mon)[core.VectorActivity]; n != 0 {
		t.Fatalf("activity attacks still active: %d", n)
	}
	all := mon.Attacks()
	if len(all) == 0 || all[0].Active || all[0].Duration(w.Dev.Engine.Now()) != 10*time.Second {
		t.Fatalf("attack record = %+v", all[0])
	}
}

func TestActivityAttackEndsWhenMovedToFront(t *testing.T) {
	w := world(t, device.Config{})
	mon := w.Dev.EAndroid
	if _, err := w.Dev.Activities.UserStartApp(scenario.PkgMalware); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Dev.StartActivity(w.Malware.UID, scenario.PkgVictim+"/Main"); err != nil {
		t.Fatal(err)
	}
	// Shove the victim to background first, then the user brings it back.
	if err := w.Dev.Activities.MoveAppToFront(w.Malware.UID, scenario.PkgMalware); err != nil {
		t.Fatal(err)
	}
	if err := w.Dev.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if activeVectors(mon)[core.VectorActivity] != 1 {
		t.Fatal("attack should persist while victim in background")
	}
	if err := w.Dev.Activities.MoveAppToFront(app.UIDSystem, scenario.PkgVictim); err != nil {
		t.Fatal(err)
	}
	if activeVectors(mon)[core.VectorActivity] != 0 {
		t.Fatal("move-to-front should end the activity attack")
	}
}

func TestActivityAttackNotEndedByItsOwnStart(t *testing.T) {
	// The foreground change caused by the starting event itself must not
	// immediately terminate the attack.
	w := world(t, device.Config{})
	mon := w.Dev.EAndroid
	if _, err := w.Dev.Activities.UserStartApp(scenario.PkgMalware); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Dev.StartActivity(w.Malware.UID, scenario.PkgVictim+"/Main"); err != nil {
		t.Fatal(err)
	}
	if len(mon.ActiveAttacks()) != 1 {
		t.Fatalf("attack should survive its own start event: %v", mon.Attacks())
	}
}

// --- Fig. 5b: interrupt attack lifecycle ---

func TestInterruptAttackViaHome(t *testing.T) {
	w := world(t, device.Config{})
	mon := w.Dev.EAndroid
	if _, err := w.Dev.Activities.UserStartApp(scenario.PkgVictim); err != nil {
		t.Fatal(err)
	}
	if err := w.Dev.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Malware sends the home intent, forcing the victim into background.
	w.Dev.Activities.Home(w.Malware.UID)
	atks := mon.ActiveAttacks()
	if len(atks) != 1 || atks[0].Vector != core.VectorInterrupt ||
		atks[0].Driving != w.Malware.UID || atks[0].Driven != w.Victim.UID {
		t.Fatalf("attacks = %v", atks)
	}
	if err := w.Dev.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Victim back to front ends it.
	if err := w.Dev.Activities.MoveAppToFront(app.UIDSystem, scenario.PkgVictim); err != nil {
		t.Fatal(err)
	}
	if len(mon.ActiveAttacks()) != 0 {
		t.Fatal("interrupt attack should end when victim returns to front")
	}
}

func TestUserHomeDoesNotBeginInterrupt(t *testing.T) {
	w := world(t, device.Config{})
	if _, err := w.Dev.Activities.UserStartApp(scenario.PkgVictim); err != nil {
		t.Fatal(err)
	}
	w.Dev.Activities.Home(app.UIDSystem)
	if len(w.Dev.EAndroid.ActiveAttacks()) != 0 {
		t.Fatal("user pressing home is not an attack")
	}
}

func TestInterruptViaTransparentOverlay(t *testing.T) {
	w := world(t, device.Config{})
	mon := w.Dev.EAndroid
	victimRec, err := w.Dev.Activities.UserStartApp(scenario.PkgVictim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Dev.StartActivity(w.Malware.UID, scenario.PkgMalware+"/Overlay",
		activity.Transparent()); err != nil {
		t.Fatal(err)
	}
	if victimRec.State() != activity.Paused {
		t.Fatalf("victim state = %v, want paused under overlay", victimRec.State())
	}
	// The overlay both starts the malware's own activity (not an attack
	// — same app) and interrupts the victim (an attack).
	av := activeVectors(mon)
	if av[core.VectorInterrupt] != 1 || av[core.VectorActivity] != 0 {
		t.Fatalf("active vectors = %v", av)
	}
}

// --- Fig. 5c: service attack lifecycles ---

func TestServiceStartAttack(t *testing.T) {
	w := world(t, device.Config{})
	mon := w.Dev.EAndroid
	if _, err := w.Dev.StartService(w.Malware.UID, scenario.PkgVictim+"/Work"); err != nil {
		t.Fatal(err)
	}
	if activeVectors(mon)[core.VectorServiceStart] != 1 {
		t.Fatal("service-start attack not begun")
	}
	if err := w.Dev.Services.Stop(w.Victim.UID, scenario.PkgVictim+"/Work"); err != nil {
		t.Fatal(err)
	}
	if activeVectors(mon)[core.VectorServiceStart] != 0 {
		t.Fatal("stopService should end the attack")
	}
}

func TestServiceBindAttackEndsOnUnbind(t *testing.T) {
	w := world(t, device.Config{})
	mon := w.Dev.EAndroid
	conn, err := w.Dev.BindService(w.Malware.UID, scenario.PkgVictim+"/Work")
	if err != nil {
		t.Fatal(err)
	}
	if activeVectors(mon)[core.VectorServiceBind] != 1 {
		t.Fatal("bind attack not begun")
	}
	if err := w.Dev.Services.Unbind(conn); err != nil {
		t.Fatal(err)
	}
	if activeVectors(mon)[core.VectorServiceBind] != 0 {
		t.Fatal("unbind should end the attack")
	}
}

func TestSameAppServiceUseIsNotCollateral(t *testing.T) {
	w := world(t, device.Config{})
	if _, err := w.Dev.StartService(w.Victim.UID, scenario.PkgVictim+"/Work"); err != nil {
		t.Fatal(err)
	}
	if len(w.Dev.EAndroid.ActiveAttacks()) != 0 {
		t.Fatal("same-app service start is not an attack")
	}
}

// --- Fig. 5d: screen attack lifecycle ---

func TestScreenAttackLifecycle(t *testing.T) {
	w := world(t, device.Config{})
	mon := w.Dev.EAndroid
	// Malware raises brightness.
	if err := w.Dev.Display.SetBrightness(w.Malware.UID, display.SourceApp, 255); err != nil {
		t.Fatal(err)
	}
	if activeVectors(mon)[core.VectorScreen] != 1 {
		t.Fatal("brightness increase should begin a screen attack")
	}
	// Malware lowering it again ends its own attack.
	if err := w.Dev.Display.SetBrightness(w.Malware.UID, display.SourceApp, 10); err != nil {
		t.Fatal(err)
	}
	if activeVectors(mon)[core.VectorScreen] != 0 {
		t.Fatal("decrease by attacker should end the attack")
	}
}

func TestScreenAttackEndedByUserSlider(t *testing.T) {
	w := world(t, device.Config{})
	mon := w.Dev.EAndroid
	if err := w.Dev.Display.SetBrightness(w.Malware.UID, display.SourceApp, 255); err != nil {
		t.Fatal(err)
	}
	if err := w.Dev.Display.SetBrightness(app.UIDSystem, display.SourceSystemUI, 80); err != nil {
		t.Fatal(err)
	}
	if activeVectors(mon)[core.VectorScreen] != 0 {
		t.Fatal("user slider should end screen attacks")
	}
}

func TestScreenAttackViaModeSwitch(t *testing.T) {
	w := world(t, device.Config{})
	mon := w.Dev.EAndroid
	// Put the device in auto mode (user action).
	if err := w.Dev.Display.SetMode(app.UIDSystem, display.SourceSystemUI, display.Auto); err != nil {
		t.Fatal(err)
	}
	if activeVectors(mon)[core.VectorScreen] != 0 {
		t.Fatal("no attack expected yet")
	}
	// Malware saves a high value (deferred in auto mode), then flips to
	// manual — the classic malware #5 sequence.
	if err := w.Dev.Display.SetBrightness(w.Malware.UID, display.SourceApp, 255); err != nil {
		t.Fatal(err)
	}
	if err := w.Dev.Display.SetMode(w.Malware.UID, display.SourceApp, display.Manual); err != nil {
		t.Fatal(err)
	}
	if activeVectors(mon)[core.VectorScreen] != 1 {
		t.Fatal("auto->manual switch by app should begin a screen attack")
	}
	if w.Dev.Meter.Brightness() != 255 {
		t.Fatal("saved brightness should have applied")
	}
	// Switching back to auto (by anyone) ends it.
	if err := w.Dev.Display.SetMode(app.UIDSystem, display.SourceSystemUI, display.Auto); err != nil {
		t.Fatal(err)
	}
	if activeVectors(mon)[core.VectorScreen] != 0 {
		t.Fatal("switch to auto should end screen attacks")
	}
}

// --- Fig. 5e: wakelock attack lifecycle ---

func TestWakelockAttackOnBackgroundAcquire(t *testing.T) {
	w := world(t, device.Config{})
	mon := w.Dev.EAndroid
	// Malware is not foreground (launcher is); its service acquires a
	// screen wakelock.
	wl, err := w.Dev.Power.Acquire(w.Malware.UID, power.ScreenBright, "daemon")
	if err != nil {
		t.Fatal(err)
	}
	if activeVectors(mon)[core.VectorWakelock] != 1 {
		t.Fatal("background screen-wakelock acquire should begin an attack")
	}
	if err := wl.Release(); err != nil {
		t.Fatal(err)
	}
	if activeVectors(mon)[core.VectorWakelock] != 0 {
		t.Fatal("release should end the attack")
	}
}

func TestWakelockAttackWhenHolderLeavesForeground(t *testing.T) {
	w := world(t, device.Config{})
	mon := w.Dev.EAndroid
	if _, err := w.Dev.Activities.UserStartApp(scenario.PkgVictim); err != nil {
		t.Fatal(err)
	}
	// Foreground acquire: legitimate, no attack.
	if _, err := w.Dev.Power.Acquire(w.Victim.UID, power.ScreenBright, "ui"); err != nil {
		t.Fatal(err)
	}
	if activeVectors(mon)[core.VectorWakelock] != 0 {
		t.Fatal("foreground acquire is not an attack")
	}
	// The victim goes background without releasing: attack begins.
	w.Dev.Activities.Home(app.UIDSystem)
	if activeVectors(mon)[core.VectorWakelock] != 1 {
		t.Fatal("leaving foreground with wakelock held should begin an attack")
	}
	// Process death releases via link-to-death and ends the attack.
	w.Victim.Kill()
	if activeVectors(mon)[core.VectorWakelock] != 0 {
		t.Fatal("link-to-death release should end the attack")
	}
}

func TestPartialWakelockNotScreenAttack(t *testing.T) {
	w := world(t, device.Config{})
	if _, err := w.Dev.Power.Acquire(w.Malware.UID, power.Partial, "cpu"); err != nil {
		t.Fatal(err)
	}
	if len(w.Dev.EAndroid.ActiveAttacks()) != 0 {
		t.Fatal("partial wakelocks are not screen attacks")
	}
}

// --- Energy superimposition ---

func TestCollateralEnergyCharged(t *testing.T) {
	w := world(t, device.Config{})
	mon := w.Dev.EAndroid
	if err := w.ForceScreenOn(); err != nil {
		t.Fatal(err)
	}
	if err := w.Attack1ComponentHijack(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	w.Dev.Flush()
	// Camera's own energy over 60 s foreground: CPU 0.5 util + camera
	// sensor.
	p := hw.Nexus4()
	wantCam := (0.5*p.CPUFull + p.CameraOn) / 1000 * 60
	got := entryJ(mon, w.Malware.UID, w.Camera.UID)
	if math.Abs(got-wantCam) > 1e-6 {
		t.Fatalf("collateral camera energy = %v, want %v", got, wantCam)
	}
	// Android's own accountant shows the malware with almost nothing.
	if w.Dev.Android.AppJ(w.Malware.UID) >= w.Dev.Android.AppJ(w.Camera.UID) {
		t.Fatal("baseline should charge camera, not malware")
	}
	// E-Android's breakdown ranks malware above its baseline reading.
	bd := mon.BreakdownFor(w.Malware.UID, w.Dev.Android.AppJ(w.Malware.UID))
	if bd.TotalJ <= bd.OriginalJ {
		t.Fatal("breakdown must add collateral energy")
	}
}

func TestNoAccrualAfterAttackEnds(t *testing.T) {
	// Fig. 9c's key property: energy beyond the attack period is not
	// charged to the malware.
	w := world(t, device.Config{})
	mon := w.Dev.EAndroid
	if err := w.ForceScreenOn(); err != nil {
		t.Fatal(err)
	}
	if err := w.Attack3ServicePin(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	w.Dev.Flush()
	before := entryJ(mon, w.Malware.UID, w.Victim.UID)
	if before == 0 {
		t.Fatal("attack 3 should have charged collateral energy")
	}
	// Malware unbinds; the victim keeps its own activity running.
	conns := 0
	svc := w.Dev.Services.Lookup(scenario.PkgVictim + "/Work")
	_ = conns
	// End the attack by killing the malware (client death unbinds).
	w.Malware.Kill()
	if svc.Running() {
		t.Fatal("service should stop once the malicious bind drops")
	}
	victimBefore := mon.OwnJ(w.Victim.UID)
	if err := w.Dev.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	w.Dev.Flush()
	// The victim itself keeps draining (its activity is alive and the
	// screen is forced on), so the check is not vacuous...
	if mon.OwnJ(w.Victim.UID) <= victimBefore {
		t.Fatal("victim should keep draining after the attack ends")
	}
	// ...but none of that post-attack energy lands on the malware.
	after := entryJ(mon, w.Malware.UID, w.Victim.UID)
	if math.Abs(after-before) > 1e-9 {
		t.Fatalf("post-attack accrual: %v -> %v", before, after)
	}
}

func TestMultiCollateralNoDoubleCharge(t *testing.T) {
	// Fig. 6: bind + start + interrupt on the same victim; the victim's
	// energy is superimposed on the malware exactly once.
	w := world(t, device.Config{})
	mon := w.Dev.EAndroid
	if err := w.MultiCollateral(); err != nil {
		t.Fatal(err)
	}
	w.Dev.Flush()
	charged := entryJ(mon, w.Malware.UID, w.Victim.UID)
	// The victim's raw own energy across the whole scenario is an upper
	// bound; double-charging would exceed it.
	if charged > mon.OwnJ(w.Victim.UID)+1e-9 {
		t.Fatalf("charged %v exceeds victim's own energy %v — double charged", charged, mon.OwnJ(w.Victim.UID))
	}
	if charged == 0 {
		t.Fatal("multi-collateral should charge something")
	}
	// After the scenario everything ended.
	if len(mon.ActiveAttacks()) != 0 {
		t.Fatalf("attacks still active: %v", mon.ActiveAttacks())
	}
}

func TestHybridChainChargesRoot(t *testing.T) {
	// Fig. 7: A binds B, B starts C, C raises brightness. B, C and the
	// screen all appear in A's map.
	w := world(t, device.Config{})
	mon := w.Dev.EAndroid
	if err := w.HybridChain(); err != nil {
		t.Fatal(err)
	}
	w.Dev.Flush()
	mp := mon.CollateralMap(w.Malware.UID)
	var haveVictim, haveCamera, haveScreen bool
	for _, e := range mp {
		switch e.Driven {
		case w.Victim.UID:
			haveVictim = e.EnergyJ > 0
		case w.Camera.UID:
			haveCamera = e.EnergyJ > 0
		case app.UIDScreen:
			haveScreen = e.EnergyJ > 0
		}
	}
	if !haveVictim || !haveCamera || !haveScreen {
		t.Fatalf("hybrid map missing entries: victim=%v camera=%v screen=%v (%+v)",
			haveVictim, haveCamera, haveScreen, mp)
	}
	// The middleman B also carries C and the screen in its own map.
	mpB := mon.CollateralMap(w.Victim.UID)
	var bHasCamera bool
	for _, e := range mpB {
		if e.Driven == w.Camera.UID && e.EnergyJ > 0 {
			bHasCamera = true
		}
	}
	if !bHasCamera {
		t.Fatal("middleman should also carry the camera in its map")
	}
}

// --- Normal scenes ---

func TestScene1AttributionDiffersBetweenViews(t *testing.T) {
	w := world(t, device.Config{})
	if err := w.Scene1MessageFilm(); err != nil {
		t.Fatal(err)
	}
	w.Dev.Flush()
	acc := w.Dev.Android
	mon := w.Dev.EAndroid
	// Baseline: camera ≫ message.
	if acc.AppJ(w.Camera.UID) <= acc.AppJ(w.Message.UID) {
		t.Fatalf("baseline: camera %v should exceed message %v",
			acc.AppJ(w.Camera.UID), acc.AppJ(w.Message.UID))
	}
	// E-Android: message total (with collateral) exceeds camera's own.
	bd := mon.BreakdownFor(w.Message.UID, acc.AppJ(w.Message.UID))
	if bd.TotalJ <= acc.AppJ(w.Camera.UID) {
		t.Fatalf("e-android: message total %v should exceed camera %v",
			bd.TotalJ, acc.AppJ(w.Camera.UID))
	}
}

// --- Framework-only mode ---

func TestFrameworkOnlyRecordsWithoutAccounting(t *testing.T) {
	w := world(t, device.Config{MonitorMode: core.FrameworkOnly})
	if err := w.Attack1ComponentHijack(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	mon := w.Dev.EAndroid
	if len(mon.Events()) == 0 {
		t.Fatal("framework-only mode must record events")
	}
	if len(mon.Attacks()) != 0 {
		t.Fatal("framework-only mode must not track attacks")
	}
	if len(mon.CollateralMap(w.Malware.UID)) != 0 {
		t.Fatal("framework-only mode must not build maps")
	}
}

// --- Energy efficiency (paper §VI-B) ---

func TestEnergyEfficiencyParity(t *testing.T) {
	run := func(enable bool) float64 {
		cfg := device.Config{EAndroid: enable}
		w, err := scenario.NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Scene1MessageFilm(); err != nil {
			t.Fatal(err)
		}
		return w.Dev.DrainedJ()
	}
	with, without := run(true), run(false)
	if math.Abs(with-without) > 1e-9 {
		t.Fatalf("E-Android changed energy: with=%v without=%v", with, without)
	}
}

// --- Misc ---

func TestMonitorConstructorValidation(t *testing.T) {
	if _, err := core.NewMonitor(nil, nil, core.Complete); err == nil {
		t.Fatal("nil deps accepted")
	}
	w := world(t, device.Config{})
	if _, err := core.NewMonitor(w.Dev.Engine, w.Dev.Packages, core.Mode(0)); err == nil {
		t.Fatal("invalid mode accepted")
	}
}

func TestStringersAndViews(t *testing.T) {
	w := world(t, device.Config{})
	if err := w.Attack1ComponentHijack(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if core.VectorActivity.String() != "activity" || core.VectorWakelock.String() != "wakelock" {
		t.Fatal("vector names")
	}
	if core.Complete.String() != "complete" || core.FrameworkOnly.String() != "framework-only" {
		t.Fatal("mode names")
	}
	if !strings.Contains(core.Vector(0).String(), "0") || !strings.Contains(core.Mode(0).String(), "0") {
		t.Fatal("zero stringers")
	}
	atks := w.Dev.EAndroid.Attacks()
	if len(atks) == 0 || !strings.Contains(atks[0].String(), "activity") {
		t.Fatalf("attack stringer: %v", atks)
	}
	evs := w.Dev.EAndroid.Events()
	if len(evs) == 0 || !strings.Contains(evs[0].String(), "activity-start") {
		t.Fatalf("event stringer: %v", evs)
	}
	view := w.Dev.EAndroidView()
	if !strings.Contains(view, "FunGame") {
		t.Fatalf("view missing malware row:\n%s", view)
	}
	if !strings.Contains(w.Dev.AttackView(), "Camera") {
		t.Fatal("attack view missing entries")
	}
}

func TestImplicitResolverAttributionToOriginalSender(t *testing.T) {
	// Fig. 5a's implicit-intent case: the user picks a handler in the
	// system resolver UI, and E-Android attributes the eventual start to
	// the app that sent the implicit intent — ignoring the resolver.
	w := world(t, device.Config{})
	mon := w.Dev.EAndroid
	// Two handlers for the same action force the resolver to appear.
	second := w.Dev.Packages.MustInstall(
		manifestBuilderForShare("com.share.other", "OtherShare"))
	_ = second
	if _, err := w.Dev.Activities.UserStartApp(scenario.PkgMalware); err != nil {
		t.Fatal(err)
	}
	matches, direct, err := w.Dev.Activities.StartActivityImplicit(intentForShare(w.Malware.UID))
	if err != nil {
		t.Fatal(err)
	}
	if direct != nil || len(matches) < 2 {
		t.Fatalf("expected resolver path, got direct=%v matches=%d", direct, len(matches))
	}
	// While the resolver (a system app) is up, no attack is recorded.
	if len(mon.ActiveAttacks()) != 0 {
		t.Fatalf("resolver UI registered attacks: %v", mon.ActiveAttacks())
	}
	// The user picks the Message app.
	choice := -1
	for i, m := range matches {
		if m.App == w.Message {
			choice = i
		}
	}
	if _, err := w.Dev.Activities.ChooseResolverOption(choice); err != nil {
		t.Fatal(err)
	}
	atks := mon.ActiveAttacks()
	if len(atks) != 1 || atks[0].Driving != w.Malware.UID || atks[0].Driven != w.Message.UID {
		t.Fatalf("attribution through resolver wrong: %v", atks)
	}
}

func TestChainBreaksWhenMiddlemanDies(t *testing.T) {
	// Failure injection: A binds B, B starts C. When B's process dies,
	// the A->B link drops (client/owner death tears the bind down), so
	// C's continuing drain stops flowing to A.
	w := world(t, device.Config{})
	mon := w.Dev.EAndroid
	if err := w.ForceScreenOn(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Dev.BindService(w.Malware.UID, scenario.PkgVictim+"/Work"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Dev.Activities.StartActivity(intentExplicit(w.Victim.UID, scenario.PkgCamera+"/VideoActivity")); err != nil {
		t.Fatal(err)
	}
	if err := w.Dev.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	w.Dev.Flush()
	before := entryJ(mon, w.Malware.UID, w.Camera.UID)
	if before <= 0 {
		t.Fatal("chain should have charged the root before the break")
	}
	// The middleman dies: the bind drops, the chain breaks.
	w.Victim.Kill()
	if err := w.Dev.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	w.Dev.Flush()
	after := entryJ(mon, w.Malware.UID, w.Camera.UID)
	if math.Abs(after-before) > 1e-9 {
		t.Fatalf("root kept accruing after the chain broke: %v -> %v", before, after)
	}
	// The B->C attack itself is still live (C keeps draining in B's
	// name), so B's map keeps growing even though B is dead.
	if entryJ(mon, w.Victim.UID, w.Camera.UID) <= before {
		t.Fatal("middleman's own map should keep accruing")
	}
}

func TestDefenseFlowUninstallMalware(t *testing.T) {
	// The paper's end-to-end defense story: E-Android's view names the
	// malware, the user deletes it, every attack ends and the drain
	// rate falls back to baseline.
	w := world(t, device.Config{})
	if err := w.ForceScreenOn(); err != nil {
		t.Fatal(err)
	}
	if err := w.Attack3ServicePin(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(w.Dev.EAndroid.ActiveAttacks()) == 0 {
		t.Fatal("precondition: attack active")
	}
	svc := w.Dev.Services.Lookup(scenario.PkgVictim + "/Work")
	if svc == nil || !svc.Running() {
		t.Fatal("precondition: service pinned")
	}
	// The user reads the E-Android view and deletes FunGame.
	if err := w.Dev.Packages.Uninstall(scenario.PkgMalware); err != nil {
		t.Fatal(err)
	}
	if len(w.Dev.EAndroid.ActiveAttacks()) != 0 {
		t.Fatalf("attacks survive uninstall: %v", w.Dev.EAndroid.ActiveAttacks())
	}
	if svc.Running() {
		t.Fatal("pinned service should stop once the malicious bind dies")
	}
	// The victim's own session keeps draining (its activity is alive) —
	// only the collateral stops.
	powerBefore := w.Dev.Meter.InstantPowerMW()
	if err := w.Dev.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if w.Dev.Meter.InstantPowerMW() > powerBefore {
		t.Fatal("drain should not grow after uninstall")
	}
}
