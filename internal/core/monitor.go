package core

import (
	"fmt"
	"sort"

	"repro/internal/activity"
	"repro/internal/app"
	"repro/internal/broadcast"
	"repro/internal/display"
	"repro/internal/power"
	"repro/internal/provider"
	"repro/internal/service"
	"repro/internal/sim"
)

// Mode selects how much of E-Android is enabled, mirroring the paper's
// overhead study configurations.
type Mode int

// E-Android modes.
const (
	// FrameworkOnly records collateral events but disables the energy
	// accounting module (the paper's "E-Android framework" bars in
	// Figure 10).
	FrameworkOnly Mode = iota + 1
	// Complete enables event monitoring, attack lifecycles and the
	// collateral energy maps ("complete E-Android").
	Complete
)

func (m Mode) String() string {
	switch m {
	case FrameworkOnly:
		return "framework-only"
	case Complete:
		return "complete"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Monitor is the E-Android extension of the framework. It implements the
// hook interfaces of the activity, service, power and display managers
// plus hw.Sink, and must be registered with each.
type Monitor struct {
	engine *sim.Engine
	pm     *app.PackageManager
	mode   Mode

	foreground app.UID

	nextAttackID int
	attacks      []*Attack
	// active indexes live attacks by driven party for the accrual
	// traversal and end-condition checks.
	activeByDriven map[app.UID][]*Attack

	// maps is the per-app collateral energy map: driving -> driven ->
	// entry.
	maps map[app.UID]map[app.UID]*MapEntry

	// ownJ tracks each app's raw hardware energy and the screen total so
	// the revised battery interface can render breakdowns.
	ownJ    map[app.UID]float64
	screenJ float64

	// heldScreenLocks tracks live screen-type wakelocks for the Fig. 5e
	// state machine.
	heldScreenLocks map[*power.Wakelock]bool

	events []Event

	// flushFn, when set, settles the energy meter before any attack
	// begins or ends, so intervals spanning an event boundary are
	// attributed at the pre-event attack state.
	flushFn func()

	// chargePolicy selects the collateral superimposition rule; zero
	// means ChargeFullToEach.
	chargePolicy ChargePolicy

	// historyLimit, when positive, bounds the retained event log and the
	// ended-attack history (live attacks are never dropped). Zero keeps
	// everything — fine for experiments, not for week-long soaks.
	historyLimit int

	// Accrue's reusable per-interval scratch: while attacks are active
	// the superimposition pass runs on every integrated interval, and
	// rebuilding these from scratch each time dominated the monitor's
	// allocation profile.
	drivenScratch  []app.UID
	orderScratch   []app.UID
	chargedScratch map[chargePair]bool
	benefScratch   map[app.UID]bool
}

// NewMonitor builds an E-Android monitor in the given mode. Wire it with
// AddHooks/AddSink on the framework services, then call NoteForeground
// with the current foreground app.
func NewMonitor(engine *sim.Engine, pm *app.PackageManager, mode Mode) (*Monitor, error) {
	if engine == nil || pm == nil {
		return nil, fmt.Errorf("core: nil dependency")
	}
	if mode != FrameworkOnly && mode != Complete {
		return nil, fmt.Errorf("core: invalid mode %d", int(mode))
	}
	return &Monitor{
		engine:          engine,
		pm:              pm,
		mode:            mode,
		foreground:      app.UIDNone,
		activeByDriven:  make(map[app.UID][]*Attack),
		maps:            make(map[app.UID]map[app.UID]*MapEntry),
		ownJ:            make(map[app.UID]float64),
		heldScreenLocks: make(map[*power.Wakelock]bool),
	}, nil
}

// Mode reports the monitor's mode.
func (m *Monitor) Mode() Mode { return m.mode }

// SetFlushFunc wires the meter's Flush so attack boundaries settle
// accounting first.
func (m *Monitor) SetFlushFunc(fn func()) { m.flushFn = fn }

func (m *Monitor) flush() {
	if m.flushFn != nil {
		m.flushFn()
	}
}

// NoteForeground seeds the foreground app (call once after wiring).
func (m *Monitor) NoteForeground(uid app.UID) { m.foreground = uid }

// NoteUninstalled closes every attack lifecycle the removed app is a
// party to: a deleted package can neither keep driving nor keep being
// driven. Its accumulated map entries persist for the record.
func (m *Monitor) NoteUninstalled(uid app.UID) {
	m.record("uninstalled", uid, uid, "package removed")
	if m.mode != Complete {
		return
	}
	m.endWhere(func(a *Attack) bool {
		return a.Driving == uid || a.Driven == uid
	})
}

// Events returns the recorded collateral event log.
func (m *Monitor) Events() []Event {
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// Attacks returns all attack records, begun order.
func (m *Monitor) Attacks() []*Attack {
	out := make([]*Attack, len(m.attacks))
	copy(out, m.attacks)
	return out
}

// ActiveAttacks returns currently active attacks, begun order.
func (m *Monitor) ActiveAttacks() []*Attack {
	var out []*Attack
	for _, a := range m.attacks {
		if a.Active {
			out = append(out, a)
		}
	}
	return out
}

// isCollateralApp reports whether uid belongs to an installed,
// non-system app — the only parties E-Android puts on the attack list.
func (m *Monitor) isCollateralApp(uid app.UID) bool {
	a := m.pm.ByUID(uid)
	return a != nil && !a.System
}

// SetHistoryLimit bounds the retained event log and ended-attack history
// to n entries each (0 = unlimited). Live attacks are never dropped.
func (m *Monitor) SetHistoryLimit(n int) error {
	if n < 0 {
		return fmt.Errorf("core: negative history limit %d", n)
	}
	m.historyLimit = n
	m.trimHistory()
	return nil
}

func (m *Monitor) trimHistory() {
	if m.historyLimit <= 0 {
		return
	}
	if excess := len(m.events) - m.historyLimit; excess > 0 {
		m.events = append([]Event(nil), m.events[excess:]...)
	}
	if len(m.attacks) <= m.historyLimit {
		return
	}
	// Drop the oldest ended attacks first; live ones always survive.
	kept := make([]*Attack, 0, m.historyLimit)
	drop := len(m.attacks) - m.historyLimit
	for _, a := range m.attacks {
		if drop > 0 && !a.Active {
			drop--
			continue
		}
		kept = append(kept, a)
	}
	m.attacks = kept
}

func (m *Monitor) record(kind string, driving, driven app.UID, detail string) {
	m.events = append(m.events, Event{
		T: m.engine.Now(), Kind: kind, Driving: driving, Driven: driven, Detail: detail,
	})
	m.trimHistory()
}

// beginAttack starts a new lifecycle, first ending any identical active
// one ("EndLastAttack" in Algorithm 1) so the same pair is never tracked
// twice by the same mechanism and anchor.
func (m *Monitor) beginAttack(v Vector, driving, driven app.UID, anchor any) *Attack {
	m.flush()
	for _, a := range m.activeByDriven[driven] {
		if a.Vector == v && a.Driving == driving && a.anchor == anchor {
			m.endAttack(a)
			break
		}
	}
	atk := &Attack{
		ID:      m.nextAttackID,
		Vector:  v,
		Driving: driving,
		Driven:  driven,
		Begin:   m.engine.Now(),
		Active:  true,
		anchor:  anchor,
	}
	m.nextAttackID++
	m.attacks = append(m.attacks, atk)
	m.activeByDriven[driven] = append(m.activeByDriven[driven], atk)
	m.trimHistory()

	// Algorithm 1: AddElement(driven) on the driving app's map and on
	// every map that (transitively) contains the driving app.
	m.ensureEntry(driving, driven)
	for _, parent := range m.ancestorsOf(driving) {
		m.ensureEntry(parent, driven)
	}
	// Service-related begin events also pull in the driven app's own
	// existing elements ("the driven app could have already bound
	// several energy intensive services before the triggered event").
	if v == VectorServiceStart || v == VectorServiceBind {
		for _, elem := range m.entriesWithActiveLinks(driven) {
			m.ensureEntry(driving, elem)
			for _, parent := range m.ancestorsOf(driving) {
				m.ensureEntry(parent, elem)
			}
		}
	}
	return atk
}

func (m *Monitor) endAttack(a *Attack) {
	if !a.Active {
		return
	}
	m.flush()
	a.Active = false
	a.End = m.engine.Now()
	list := m.activeByDriven[a.Driven]
	for i, x := range list {
		if x == a {
			m.activeByDriven[a.Driven] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(m.activeByDriven[a.Driven]) == 0 {
		delete(m.activeByDriven, a.Driven)
	}
}

// endWhere ends every active attack matching pred. It scans only the
// active index (never the all-time history), so per-event cost stays
// proportional to the number of live attacks.
func (m *Monitor) endWhere(pred func(*Attack) bool) {
	var toEnd []*Attack
	for _, list := range m.activeByDriven {
		for _, a := range list {
			if pred(a) {
				toEnd = append(toEnd, a)
			}
		}
	}
	sort.Slice(toEnd, func(i, j int) bool { return toEnd[i].ID < toEnd[j].ID })
	for _, a := range toEnd {
		m.endAttack(a)
	}
}

func (m *Monitor) ensureEntry(driving, driven app.UID) {
	if driving == driven {
		return
	}
	mp := m.maps[driving]
	if mp == nil {
		mp = make(map[app.UID]*MapEntry)
		m.maps[driving] = mp
	}
	if mp[driven] == nil {
		mp[driven] = &MapEntry{Driven: driven}
	}
}

// ancestorsOf walks active attack links upstream from uid: every app
// that currently drives uid, directly or through a chain. Cycle-safe.
func (m *Monitor) ancestorsOf(uid app.UID) []app.UID {
	visited := map[app.UID]bool{uid: true}
	var out []app.UID
	queue := []app.UID{uid}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, a := range m.activeByDriven[cur] {
			if visited[a.Driving] {
				continue
			}
			visited[a.Driving] = true
			out = append(out, a.Driving)
			queue = append(queue, a.Driving)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// entriesWithActiveLinks returns the driven parties that uid's map holds
// live links to (i.e. uid is currently driving them). Only the active
// index is scanned.
func (m *Monitor) entriesWithActiveLinks(uid app.UID) []app.UID {
	set := map[app.UID]bool{}
	for _, list := range m.activeByDriven {
		for _, a := range list {
			if a.Driving == uid {
				set[a.Driven] = true
			}
		}
	}
	out := make([]app.UID, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// --- activity.Hooks ---

var _ activity.Hooks = (*Monitor)(nil)

// ActivityStarted implements activity.Hooks. A cross-app start begins an
// activity attack; any start of the driven app also ends its previous
// activity/interrupt attacks ("attack ends when the app is started
// again", Fig. 5a/5b).
func (m *Monitor) ActivityStarted(t sim.Time, caller app.UID, target *activity.Activity, explicit bool) {
	driven := target.App().UID
	crossApp := caller != driven
	if !crossApp {
		// Same-app starts are not collateral events; E-Android returns
		// immediately (the basis of Figure 10's "same app" bars).
		return
	}
	detail := "implicit"
	if explicit {
		detail = "explicit"
	}
	m.record("activity-start", caller, driven, detail+" "+target.FullName())
	if m.mode != Complete {
		return
	}
	m.endWhere(func(a *Attack) bool {
		return a.Driven == driven &&
			(a.Vector == VectorActivity || a.Vector == VectorInterrupt) &&
			a.Begin != t
	})
	if m.isCollateralApp(caller) && m.isCollateralApp(driven) {
		m.beginAttack(VectorActivity, caller, driven, nil)
	}
}

// ForegroundChanged implements activity.Hooks. The driven app coming to
// the front ends its activity/interrupt attacks; a third app forcing the
// previous foreground app into the background begins an interrupt
// attack; a background transition with unreleased screen wakelocks
// begins wakelock attacks (Fig. 5e).
func (m *Monitor) ForegroundChanged(t sim.Time, prev, cur app.UID, cause activity.Cause) {
	m.foreground = cur
	if m.mode != Complete {
		return
	}
	// "Moved to front" / "back to front" end conditions — but never for
	// attacks begun by this very event.
	m.endWhere(func(a *Attack) bool {
		return a.Driven == cur &&
			(a.Vector == VectorActivity || a.Vector == VectorInterrupt) &&
			a.Begin != t
	})
	// Interrupt attack: the initiator forced prev into the background.
	initiator := cause.Initiator
	if m.isCollateralApp(initiator) && m.isCollateralApp(prev) &&
		initiator != prev && prev != cur {
		m.record("interrupt", initiator, prev, cause.Kind.String())
		m.beginAttack(VectorInterrupt, initiator, prev, nil)
	}
	// Wakelock attacks: prev left the foreground without releasing
	// screen wakelocks.
	for wl := range m.heldScreenLocks {
		if wl.Owner == prev && m.isCollateralApp(prev) {
			m.record("wakelock-background", prev, app.UIDScreen, wl.Tag)
			m.beginAttack(VectorWakelock, prev, app.UIDScreen, wl)
		}
	}
}

// Lifecycle implements activity.Hooks. When an app's last activity is
// destroyed ("popped out"), its interrupt attacks end (Fig. 5b).
func (m *Monitor) Lifecycle(t sim.Time, a *activity.Activity, old, new activity.State) {
	if m.mode != Complete || new != activity.Destroyed {
		return
	}
	uid := a.App().UID
	// The monitor does not own the task stack, so it uses process death
	// as the definitive "popped out" signal: a dead process certainly
	// has no live activities. (An alive app's interrupt attacks end on
	// the started-again / moved-to-front conditions instead.)
	owner := m.pm.ByUID(uid)
	if owner == nil || !owner.Alive() {
		m.endWhere(func(atk *Attack) bool {
			return atk.Driven == uid && atk.Vector == VectorInterrupt
		})
	}
}

// --- service.Hooks ---

var _ service.Hooks = (*Monitor)(nil)

// ServiceStarted implements service.Hooks.
func (m *Monitor) ServiceStarted(t sim.Time, caller app.UID, svc *service.Service) {
	driven := svc.App().UID
	if caller == driven {
		return
	}
	m.record("service-start", caller, driven, svc.FullName())
	if m.mode != Complete {
		return
	}
	if m.isCollateralApp(caller) && m.isCollateralApp(driven) {
		m.beginAttack(VectorServiceStart, caller, driven, svc.FullName())
	}
}

// ServiceStopped implements service.Hooks: stop/stopSelf/owner-death end
// every start-vector attack on the service.
func (m *Monitor) ServiceStopped(t sim.Time, caller app.UID, svc *service.Service, kind service.StopKind) {
	if m.mode != Complete {
		return
	}
	m.endWhere(func(a *Attack) bool {
		return a.Vector == VectorServiceStart && a.anchor == any(svc.FullName())
	})
}

// ServiceBound implements service.Hooks.
func (m *Monitor) ServiceBound(t sim.Time, conn *service.Connection) {
	driven := conn.Service().App().UID
	if conn.Client == driven {
		return
	}
	m.record("service-bind", conn.Client, driven, conn.Service().FullName())
	if m.mode != Complete {
		return
	}
	if m.isCollateralApp(conn.Client) && m.isCollateralApp(driven) {
		m.beginAttack(VectorServiceBind, conn.Client, driven, conn)
	}
}

// ServiceUnbound implements service.Hooks: the connection's attack ends.
func (m *Monitor) ServiceUnbound(t sim.Time, conn *service.Connection, cause service.UnbindCause) {
	if m.mode != Complete {
		return
	}
	m.endWhere(func(a *Attack) bool {
		return a.Vector == VectorServiceBind && a.anchor == any(conn)
	})
}

// ServiceRunning implements service.Hooks (informational only).
func (m *Monitor) ServiceRunning(t sim.Time, svc *service.Service, running bool) {}

// --- power.Hooks ---

var _ power.Hooks = (*Monitor)(nil)

// WakelockAcquired implements power.Hooks. Acquiring a screen wakelock
// while not in the foreground begins a wakelock attack immediately
// (Fig. 5e, "attack begins when acquiring not in foreground").
func (m *Monitor) WakelockAcquired(t sim.Time, wl *power.Wakelock) {
	if !wl.Type.KeepsScreenOn() {
		return
	}
	m.record("wakelock-acquire", wl.Owner, app.UIDScreen, wl.Tag)
	m.heldScreenLocks[wl] = true
	if m.mode != Complete {
		return
	}
	if m.isCollateralApp(wl.Owner) && m.foreground != wl.Owner {
		m.beginAttack(VectorWakelock, wl.Owner, app.UIDScreen, wl)
	}
}

// WakelockReleased implements power.Hooks: release (explicit or
// link-to-death) ends the lock's attack.
func (m *Monitor) WakelockReleased(t sim.Time, wl *power.Wakelock, cause power.ReleaseCause) {
	if !wl.Type.KeepsScreenOn() {
		return
	}
	m.record("wakelock-release", wl.Owner, app.UIDScreen, wl.Tag+" "+cause.String())
	delete(m.heldScreenLocks, wl)
	if m.mode != Complete {
		return
	}
	m.endWhere(func(a *Attack) bool {
		return a.Vector == VectorWakelock && a.anchor == any(wl)
	})
}

// ScreenChanged implements power.Hooks (informational only; energy flow
// is already visible through the meter).
func (m *Monitor) ScreenChanged(t sim.Time, on bool, cause power.ScreenCause) {}

// --- broadcast.Hooks ---

var _ broadcast.Hooks = (*Monitor)(nil)

// BroadcastDelivered implements broadcast.Hooks. A cross-app broadcast
// wakes the receiver for a billed handler window, so it begins a
// collateral attack spanning that window (extension vector).
func (m *Monitor) BroadcastDelivered(t sim.Time, d *broadcast.Delivery) {
	driven := d.Receiver.UID
	if d.Sender == driven {
		return
	}
	m.record("broadcast", d.Sender, driven, d.Action+" "+d.Component)
	if m.mode != Complete {
		return
	}
	if m.isCollateralApp(d.Sender) && m.isCollateralApp(driven) {
		m.beginAttack(VectorBroadcast, d.Sender, driven, d)
	}
}

// BroadcastHandlerDone implements broadcast.Hooks: the handler window
// closing ends the delivery's attack.
func (m *Monitor) BroadcastHandlerDone(t sim.Time, d *broadcast.Delivery) {
	if m.mode != Complete {
		return
	}
	m.endWhere(func(a *Attack) bool {
		return a.Vector == VectorBroadcast && a.anchor == any(d)
	})
}

// --- provider.Hooks ---

var _ provider.Hooks = (*Monitor)(nil)

// ProviderQueried implements provider.Hooks. A cross-app query bills the
// providing process, so it opens a collateral period for the query
// window (extension vector).
func (m *Monitor) ProviderQueried(t sim.Time, q *provider.Query) {
	driven := q.Provider.UID
	if q.Caller == driven {
		return
	}
	m.record("provider-query", q.Caller, driven, q.Component)
	if m.mode != Complete {
		return
	}
	if m.isCollateralApp(q.Caller) && m.isCollateralApp(driven) {
		m.beginAttack(VectorProvider, q.Caller, driven, q)
	}
}

// ProviderQueryDone implements provider.Hooks: the window closing ends
// the query's collateral period.
func (m *Monitor) ProviderQueryDone(t sim.Time, q *provider.Query) {
	if m.mode != Complete {
		return
	}
	m.endWhere(func(a *Attack) bool {
		return a.Vector == VectorProvider && a.anchor == any(q)
	})
}

// --- display.Hooks ---

var _ display.Hooks = (*Monitor)(nil)

// BrightnessChanged implements display.Hooks (Fig. 5d). An app-driven
// increase begins a screen attack; a decrease by the attacker or any
// system-UI (user) change ends it.
func (m *Monitor) BrightnessChanged(t sim.Time, by app.UID, source display.Source, old, new int) {
	switch source {
	case display.SourceSystemUI:
		m.record("brightness-user", by, app.UIDScreen, fmt.Sprintf("%d->%d", old, new))
		if m.mode == Complete {
			m.endWhere(func(a *Attack) bool { return a.Vector == VectorScreen })
		}
	case display.SourceApp:
		if !m.isCollateralApp(by) {
			return
		}
		m.record("brightness-app", by, app.UIDScreen, fmt.Sprintf("%d->%d", old, new))
		if m.mode != Complete {
			return
		}
		switch {
		case new > old:
			m.beginAttack(VectorScreen, by, app.UIDScreen, nil)
		case new < old:
			m.endWhere(func(a *Attack) bool {
				return a.Vector == VectorScreen && a.Driving == by
			})
		}
	case display.SourceSensor:
		// Ambient adjustments are the system's own doing.
	}
}

// ModeChanged implements display.Hooks (Fig. 5d). An app switching
// auto -> manual begins a screen attack (the saved value applies);
// anyone switching to auto ends all screen attacks.
func (m *Monitor) ModeChanged(t sim.Time, by app.UID, source display.Source, old, new display.Mode) {
	m.record("brightness-mode", by, app.UIDScreen, old.String()+"->"+new.String())
	if m.mode != Complete {
		return
	}
	if new == display.Auto {
		m.endWhere(func(a *Attack) bool { return a.Vector == VectorScreen })
		return
	}
	if new == display.Manual && source == display.SourceApp && m.isCollateralApp(by) {
		m.beginAttack(VectorScreen, by, app.UIDScreen, nil)
	}
}
