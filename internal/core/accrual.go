package core

import (
	"fmt"
	"sort"

	"repro/internal/app"
	"repro/internal/hw"
)

var _ hw.Sink = (*Monitor)(nil)

// ChargePolicy selects how a driven party's energy is superimposed onto
// the apps driving it. The paper's strategy is straightforward — "counts
// the driven app's energy consumption in the attack period to the
// driving app", i.e. each driver is charged in full — and notes that "a
// sophisticated policy could be easily applied"; ChargeSplit is one such
// refinement.
type ChargePolicy int

// Charge policies.
const (
	// ChargeFullToEach charges every driving app (and chain ancestor)
	// the driven party's full energy — the paper's policy.
	ChargeFullToEach ChargePolicy = iota + 1
	// ChargeSplit divides the driven party's energy equally among the
	// beneficiaries, so the superimposed total never exceeds the energy
	// actually drawn.
	ChargeSplit
)

func (p ChargePolicy) String() string {
	switch p {
	case ChargeFullToEach:
		return "full-to-each"
	case ChargeSplit:
		return "split"
	}
	return fmt.Sprintf("ChargePolicy(%d)", int(p))
}

// SetChargePolicy selects the collateral charge policy (default
// ChargeFullToEach, the paper's).
func (m *Monitor) SetChargePolicy(p ChargePolicy) error {
	if p != ChargeFullToEach && p != ChargeSplit {
		return fmt.Errorf("core: invalid charge policy %d", int(p))
	}
	m.chargePolicy = p
	return nil
}

// ChargePolicy reports the active policy.
func (m *Monitor) ChargePolicy() ChargePolicy {
	if m.chargePolicy == 0 {
		return ChargeFullToEach
	}
	return m.chargePolicy
}

// Accrue implements hw.Sink: for every integrated interval it
// superimposes each driven party's energy onto the collateral maps of
// every app currently driving it — directly or through an active attack
// chain (the paper's hybrid attack: "it is reasonable to charge the
// energy drained by C and the screen to A").
//
// A (beneficiary, driven) pair is charged at most once per interval, so
// multi-collateral attacks (Fig. 6: start + bind + interrupt on the same
// victim) never double-charge the same driving app.
func (m *Monitor) Accrue(iv hw.Interval) {
	// Raw own-energy bookkeeping for the revised battery views runs in
	// every mode that has the sink attached. Nothing from the borrowed
	// interval is retained.
	iv.EachApp(func(uid app.UID, row *hw.UsageRow) {
		m.ownJ[uid] += row.Total()
	})
	m.screenJ += iv.ScreenJ

	if m.mode != Complete || len(m.activeByDriven) == 0 {
		return
	}

	// Deterministic driven order, via a reusable scratch slice — this
	// path runs on every integrated interval for as long as any attack
	// is active, which in the stealth fleet bench is most of the run.
	drivens := m.drivenScratch[:0]
	for d := range m.activeByDriven {
		drivens = append(drivens, d)
	}
	sort.Slice(drivens, func(i, j int) bool { return drivens[i] < drivens[j] })
	m.drivenScratch = drivens

	if m.chargedScratch == nil {
		m.chargedScratch = make(map[chargePair]bool)
	} else {
		clear(m.chargedScratch)
	}
	charged := m.chargedScratch

	for _, d := range drivens {
		var delta float64
		if d == app.UIDScreen {
			delta = iv.ScreenJ
		} else {
			delta = iv.AppJ(d)
		}
		if delta == 0 {
			continue
		}
		// Every direct driver and every transitive ancestor is charged
		// once.
		if m.benefScratch == nil {
			m.benefScratch = make(map[app.UID]bool)
		} else {
			clear(m.benefScratch)
		}
		beneficiaries := m.benefScratch
		for _, a := range m.activeByDriven[d] {
			beneficiaries[a.Driving] = true
			for _, anc := range m.ancestorsOf(a.Driving) {
				beneficiaries[anc] = true
			}
		}
		order := m.orderScratch[:0]
		for g := range beneficiaries {
			if g != d {
				order = append(order, g)
			}
		}
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		m.orderScratch = order
		share := delta
		if m.ChargePolicy() == ChargeSplit && len(order) > 0 {
			share = delta / float64(len(order))
		}
		for _, g := range order {
			if charged[chargePair{g, d}] {
				continue
			}
			charged[chargePair{g, d}] = true
			m.ensureEntry(g, d)
			m.maps[g][d].EnergyJ += share
		}
	}
}

// chargePair keys the per-interval (beneficiary, driven) dedup set.
type chargePair struct{ g, d app.UID }

// CollateralMap returns the driving app's collateral energy map entries,
// sorted by descending energy then driven UID.
func (m *Monitor) CollateralMap(driving app.UID) []MapEntry {
	mp := m.maps[driving]
	out := make([]MapEntry, 0, len(mp))
	for _, e := range mp {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].EnergyJ != out[j].EnergyJ {
			return out[i].EnergyJ > out[j].EnergyJ
		}
		return out[i].Driven < out[j].Driven
	})
	return out
}

// CollateralJ reports the total collateral energy charged to driving.
func (m *Monitor) CollateralJ(driving app.UID) float64 {
	var t float64
	for _, e := range m.maps[driving] {
		t += e.EnergyJ
	}
	return t
}

// Drivers returns every app that currently owns a non-empty collateral
// map, in ascending UID order. The observability watchdog polls this to
// enumerate divergence candidates without touching the accrual path.
func (m *Monitor) Drivers() []app.UID {
	out := make([]app.UID, 0, len(m.maps))
	for uid, mp := range m.maps {
		if len(mp) > 0 {
			out = append(out, uid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OwnJ reports the raw hardware energy uid's own components drew
// (excluding screen), as tracked by the monitor.
func (m *Monitor) OwnJ(uid app.UID) float64 { return m.ownJ[uid] }

// ScreenTotalJ reports total screen energy observed.
func (m *Monitor) ScreenTotalJ() float64 { return m.screenJ }

// Breakdown is one row of the revised battery interface: the app's
// original (policy-attributed) energy plus its collateral inventory.
type Breakdown struct {
	UID        app.UID
	OriginalJ  float64
	Collateral []MapEntry
	TotalJ     float64
}

// BreakdownFor builds the revised view row for one app given its
// original policy-attributed energy (from an accounting.Accountant).
func (m *Monitor) BreakdownFor(uid app.UID, originalJ float64) Breakdown {
	col := m.CollateralMap(uid)
	total := originalJ
	for _, e := range col {
		total += e.EnergyJ
	}
	return Breakdown{UID: uid, OriginalJ: originalJ, Collateral: col, TotalJ: total}
}
