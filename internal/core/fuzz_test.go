package core_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/display"
	"repro/internal/intent"
	"repro/internal/manifest"
	"repro/internal/power"
)

// fuzzWorld is a device with N small apps, each with activities and a
// service, used to drive random event streams at the monitor.
type fuzzWorld struct {
	dev  *device.Device
	apps []*app.App

	// live resources the random driver can release later.
	conns []*fuzzConn
	locks []*power.Wakelock
}

type fuzzConn struct {
	conn interface {
		Bound() bool
	}
	unbind func() error
}

func newFuzzWorld(t testing.TB, nApps int) *fuzzWorld {
	t.Helper()
	dev, err := device.New(device.Config{EAndroid: true})
	if err != nil {
		t.Fatal(err)
	}
	w := &fuzzWorld{dev: dev}
	for i := 0; i < nApps; i++ {
		pkg := fmt.Sprintf("com.fuzz.app%d", i)
		a := dev.Packages.MustInstall(manifest.NewBuilder(pkg, fmt.Sprintf("Fuzz%d", i)).
			Permission(manifest.PermWakeLock, manifest.PermWriteSettings).
			Activity("Main", true).
			Activity("Second", true).
			Service("Svc", true).
			MustBuild())
		if err := a.SetWorkload("Main", app.Workload{
			CPUActive: 0.1 + 0.05*float64(i), CPUBackground: 0.02,
		}); err != nil {
			t.Fatal(err)
		}
		if err := a.SetWorkload("Svc", app.Workload{CPUActive: 0.15}); err != nil {
			t.Fatal(err)
		}
		w.apps = append(w.apps, a)
	}
	return w
}

// step performs one random framework operation; errors from illegal
// sequencing (double release etc.) are expected and swallowed — the
// invariants must hold regardless.
func (w *fuzzWorld) step(rng *rand.Rand) {
	dev := w.dev
	pick := func() *app.App { return w.apps[rng.Intn(len(w.apps))] }
	switch rng.Intn(14) {
	case 0:
		_, _ = dev.Activities.UserStartApp(pick().Package())
	case 1:
		a, b := pick(), pick()
		comp := "Main"
		if rng.Intn(2) == 0 {
			comp = "Second"
		}
		_, _ = dev.Activities.StartActivity(intent.Intent{
			Sender:    a.UID,
			Component: b.Package() + "/" + comp,
		})
	case 2:
		if rng.Intn(2) == 0 {
			dev.Activities.Home(app.UIDSystem)
		} else {
			dev.Activities.Home(pick().UID)
		}
	case 3:
		_ = dev.Activities.MoveAppToFront(pick().UID, pick().Package())
	case 4:
		dev.Activities.Back()
	case 5:
		a, b := pick(), pick()
		_, _ = dev.Services.Start(intent.Intent{
			Sender:    a.UID,
			Component: b.Package() + "/Svc",
		})
	case 6:
		_ = dev.Services.Stop(pick().UID, pick().Package()+"/Svc")
	case 7:
		a, b := pick(), pick()
		conn, err := dev.Services.Bind(intent.Intent{
			Sender:    a.UID,
			Component: b.Package() + "/Svc",
		})
		if err == nil {
			w.conns = append(w.conns, &fuzzConn{
				conn:   conn,
				unbind: func() error { return dev.Services.Unbind(conn) },
			})
		}
	case 8:
		if len(w.conns) > 0 {
			i := rng.Intn(len(w.conns))
			_ = w.conns[i].unbind()
		}
	case 9:
		typ := power.Partial
		if rng.Intn(2) == 0 {
			typ = power.ScreenBright
		}
		wl, err := dev.Power.Acquire(pick().UID, typ, "fuzz")
		if err == nil {
			w.locks = append(w.locks, wl)
		}
	case 10:
		if len(w.locks) > 0 {
			i := rng.Intn(len(w.locks))
			_ = w.locks[i].Release()
		}
	case 11:
		src := display.SourceApp
		by := pick().UID
		if rng.Intn(3) == 0 {
			src, by = display.SourceSystemUI, app.UIDSystem
		}
		_ = dev.Display.SetBrightness(by, src, rng.Intn(256))
	case 12:
		mode := display.Manual
		if rng.Intn(2) == 0 {
			mode = display.Auto
		}
		_ = dev.Display.SetMode(pick().UID, display.SourceApp, mode)
	case 13:
		a := pick()
		if rng.Intn(4) == 0 {
			a.Kill()
		} else if !a.Alive() {
			a.Revive()
		}
	}
	_ = dev.Run(time.Duration(rng.Intn(20)+1) * time.Second)
}

type fuzzOutcome struct {
	drainedJ   float64
	accTotalJ  float64
	collateral map[app.UID]map[app.UID]float64
	attacks    int
	active     int
}

func runFuzz(t testing.TB, seed int64, steps int) fuzzOutcome {
	t.Helper()
	w := newFuzzWorld(t, 4)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < steps; i++ {
		w.step(rng)
	}
	w.dev.Flush()
	out := fuzzOutcome{
		drainedJ:   w.dev.Battery.DrainedJ(),
		accTotalJ:  w.dev.Android.TotalJ(),
		collateral: make(map[app.UID]map[app.UID]float64),
		attacks:    len(w.dev.EAndroid.Attacks()),
		active:     len(w.dev.EAndroid.ActiveAttacks()),
	}
	for _, a := range w.apps {
		m := make(map[app.UID]float64)
		for _, e := range w.dev.EAndroid.CollateralMap(a.UID) {
			m[e.Driven] = e.EnergyJ
		}
		out.collateral[a.UID] = m
	}

	// Invariant: accounting conserves energy.
	if math.Abs(out.drainedJ-out.accTotalJ) > 1e-6 {
		t.Fatalf("seed %d: accountant %.9f J != battery %.9f J",
			seed, out.accTotalJ, out.drainedJ)
	}
	// Invariant: collateral charged for a driven party never exceeds
	// that party's total own energy (or the screen total).
	for g, m := range out.collateral {
		for d, j := range m {
			var limit float64
			if d == app.UIDScreen {
				limit = w.dev.EAndroid.ScreenTotalJ()
			} else {
				limit = w.dev.EAndroid.OwnJ(d)
			}
			if j > limit+1e-6 {
				t.Fatalf("seed %d: map[%d][%d] = %.6f exceeds driven total %.6f",
					seed, g, d, j, limit)
			}
		}
	}
	// Invariant: attack records are well-formed.
	for _, a := range w.dev.EAndroid.Attacks() {
		if !a.Active && a.End < a.Begin {
			t.Fatalf("seed %d: attack %v ends before it begins", seed, a)
		}
		if a.Driving == a.Driven {
			t.Fatalf("seed %d: self-attack %v", seed, a)
		}
	}
	return out
}

func TestFuzzMonitorInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		runFuzz(t, seed, 60)
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFuzzDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		a := runFuzz(t, seed, 80)
		b := runFuzz(t, seed, 80)
		if a.drainedJ != b.drainedJ || a.attacks != b.attacks || a.active != b.active {
			t.Fatalf("seed %d: nondeterministic run: %+v vs %+v", seed, a, b)
		}
		for g, m := range a.collateral {
			for d, j := range m {
				if b.collateral[g][d] != j {
					t.Fatalf("seed %d: map[%d][%d] differs: %v vs %v",
						seed, g, d, j, b.collateral[g][d])
				}
			}
		}
	}
}

var _ = core.Complete // keep the core import for future assertions
