package core_test

import (
	"repro/internal/intent"
	"repro/internal/manifest"

	"repro/internal/app"
)

// manifestBuilderForShare declares an app handling the SEND action, used
// by the resolver-attribution test.
func manifestBuilderForShare(pkg, label string) *manifest.Manifest {
	return manifest.NewBuilder(pkg, label).
		Activity("Share", true, manifest.IntentFilter{
			Actions:    []string{intent.ActionSend},
			Categories: []string{intent.CategoryDefault},
		}).
		MustBuild()
}

// intentForShare builds the implicit SEND intent the test dispatches.
func intentForShare(sender app.UID) intent.Intent {
	return intent.Intent{
		Sender:     sender,
		Action:     intent.ActionSend,
		Categories: []string{intent.CategoryDefault},
	}
}

// intentExplicit builds an explicit intent for tests.
func intentExplicit(sender app.UID, component string) intent.Intent {
	return intent.Intent{Sender: sender, Component: component}
}
