// Package batteryui renders battery interfaces as text: the baseline
// Android/PowerTutor views (which hide collateral energy) and the
// revised E-Android views that rank apps by total energy including
// collateral and itemize each app's collateral inventory, mirroring the
// paper's Figure 8.
package batteryui

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/accounting"
	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/hw"
)

// RenderBaseline renders the stock battery interface for the given
// accountant: a ranked list of apps (plus pseudo-entries) with energy
// shares.
func RenderBaseline(pm *app.PackageManager, acc *accounting.Accountant, battery *hw.Battery) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Battery view (%s policy) — battery %.1f%%, screen on %s\n",
		acc.Policy(), battery.Percent(), acc.ScreenOnTime().Round(time.Second))
	total := acc.TotalJ()
	for _, e := range acc.Entries() {
		share := 0.0
		if total > 0 {
			share = 100 * e.TotalJ / total
		}
		fmt.Fprintf(&b, "  %-24s %6.1f%%  %9.1f J\n", pm.Label(e.UID), share, e.TotalJ)
	}
	return b.String()
}

// Row is one computed row of the E-Android view, exposed so tests and
// harnesses can assert on structure rather than parse text.
type Row struct {
	UID        app.UID
	Label      string
	OriginalJ  float64
	Collateral []core.MapEntry
	TotalJ     float64
}

// EAndroidRows computes the revised view: every app (and pseudo-entry)
// with its original policy-attributed energy plus its collateral
// inventory, ranked by total energy including collateral.
func EAndroidRows(pm *app.PackageManager, acc *accounting.Accountant, mon *core.Monitor) []Row {
	var rows []Row
	for _, e := range acc.Entries() {
		bd := mon.BreakdownFor(e.UID, e.TotalJ)
		rows = append(rows, Row{
			UID:        e.UID,
			Label:      pm.Label(e.UID),
			OriginalJ:  bd.OriginalJ,
			Collateral: bd.Collateral,
			TotalJ:     bd.TotalJ,
		})
	}
	// Apps with zero original energy but non-empty collateral maps still
	// deserve rows (a sleeping attacker shows up purely by collateral).
	seen := make(map[app.UID]bool, len(rows))
	for _, r := range rows {
		seen[r.UID] = true
	}
	for _, a := range pm.Apps() {
		if seen[a.UID] {
			continue
		}
		bd := mon.BreakdownFor(a.UID, 0)
		if bd.TotalJ == 0 {
			continue
		}
		rows = append(rows, Row{
			UID:        a.UID,
			Label:      pm.Label(a.UID),
			OriginalJ:  0,
			Collateral: bd.Collateral,
			TotalJ:     bd.TotalJ,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].TotalJ != rows[j].TotalJ {
			return rows[i].TotalJ > rows[j].TotalJ
		}
		return rows[i].UID < rows[j].UID
	})
	return rows
}

// RenderEAndroid renders the revised battery interface: ranked totals
// including collateral, the original energy alongside, and the per-app
// collateral inventory indented beneath each row (Figure 8's layout).
func RenderEAndroid(pm *app.PackageManager, acc *accounting.Accountant, mon *core.Monitor, battery *hw.Battery) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Battery view (E-Android over %s) — battery %.1f%%\n",
		acc.Policy(), battery.Percent())
	if mon.Mode() != core.Complete {
		fmt.Fprintf(&b, "  [energy accounting module disabled: %s mode]\n", mon.Mode())
	}
	rows := EAndroidRows(pm, acc, mon)
	var grand float64
	for _, r := range rows {
		grand += r.TotalJ
	}
	for _, r := range rows {
		share := 0.0
		if grand > 0 {
			share = 100 * r.TotalJ / grand
		}
		fmt.Fprintf(&b, "  %-24s %6.1f%%  %9.1f J  (original %.1f J)\n",
			r.Label, share, r.TotalJ, r.OriginalJ)
		for _, c := range r.Collateral {
			if c.EnergyJ <= 0 {
				continue
			}
			fmt.Fprintf(&b, "      + %-20s %9.1f J\n", pm.Label(c.Driven), c.EnergyJ)
		}
	}
	return b.String()
}

// RenderAttacks renders the monitor's attack log for diagnostics.
func RenderAttacks(pm *app.PackageManager, mon *core.Monitor) string {
	var b strings.Builder
	attacks := mon.Attacks()
	fmt.Fprintf(&b, "Collateral attacks observed: %d\n", len(attacks))
	for _, a := range attacks {
		state := "active"
		if !a.Active {
			state = fmt.Sprintf("ended %v", a.End)
		}
		fmt.Fprintf(&b, "  #%d %-14s %s -> %s  begun %v  %s\n",
			a.ID, a.Vector, pm.Label(a.Driving), pm.Label(a.Driven), a.Begin, state)
	}
	return b.String()
}
