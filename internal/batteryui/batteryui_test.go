package batteryui_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/accounting"
	"repro/internal/batteryui"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/scenario"
)

func attackedWorld(t *testing.T) *scenario.World {
	t.Helper()
	w, err := scenario.NewWorld(device.Config{EAndroid: true, Policy: accounting.BatteryStats})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ForceScreenOn(); err != nil {
		t.Fatal(err)
	}
	if err := w.Attack1ComponentHijack(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	w.Dev.Flush()
	return w
}

func TestRenderBaselineStructure(t *testing.T) {
	w := attackedWorld(t)
	out := batteryui.RenderBaseline(w.Dev.Packages, w.Dev.Android, w.Dev.Battery)
	for _, want := range []string{"batterystats policy", "Camera", "Screen", "System", "%", "J"} {
		if !strings.Contains(out, want) {
			t.Fatalf("baseline view missing %q:\n%s", want, out)
		}
	}
}

func TestEAndroidRowsRankedByTotal(t *testing.T) {
	w := attackedWorld(t)
	rows := batteryui.EAndroidRows(w.Dev.Packages, w.Dev.Android, w.Dev.EAndroid)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].TotalJ > rows[i-1].TotalJ {
			t.Fatalf("rows not sorted by total: %v then %v", rows[i-1].TotalJ, rows[i].TotalJ)
		}
	}
	// The malware appears with collateral exceeding its original energy.
	var mal *batteryui.Row
	for i := range rows {
		if rows[i].Label == "FunGame" {
			mal = &rows[i]
		}
	}
	if mal == nil {
		t.Fatal("malware row missing")
	}
	if len(mal.Collateral) == 0 || mal.TotalJ <= mal.OriginalJ {
		t.Fatalf("malware row lacks collateral: %+v", mal)
	}
}

func TestZeroOriginalRowStillListed(t *testing.T) {
	// An attacker whose baseline energy is exactly zero must still get a
	// row from its collateral map.
	w, err := scenario.NewWorld(device.Config{EAndroid: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ForceScreenOn(); err != nil {
		t.Fatal(err)
	}
	// The malware binds from the background; it has no activity, so its
	// own meter reading stays zero (its Daemon service is not running).
	if _, err := w.Dev.BindService(w.Malware.UID, scenario.PkgVictim+"/Work"); err != nil {
		t.Fatal(err)
	}
	if err := w.Dev.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	w.Dev.Flush()
	rows := batteryui.EAndroidRows(w.Dev.Packages, w.Dev.Android, w.Dev.EAndroid)
	found := false
	for _, r := range rows {
		if r.Label == "FunGame" && r.OriginalJ == 0 && r.TotalJ > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("zero-original attacker missing from rows: %+v", rows)
	}
}

func TestRenderEAndroidShowsCollateralLines(t *testing.T) {
	w := attackedWorld(t)
	out := batteryui.RenderEAndroid(w.Dev.Packages, w.Dev.Android, w.Dev.EAndroid, w.Dev.Battery)
	if !strings.Contains(out, "+ Camera") {
		t.Fatalf("missing collateral line:\n%s", out)
	}
	if !strings.Contains(out, "original") {
		t.Fatal("missing original energy column")
	}
}

func TestRenderEAndroidFrameworkOnlyNote(t *testing.T) {
	w, err := scenario.NewWorld(device.Config{EAndroid: true, MonitorMode: core.FrameworkOnly})
	if err != nil {
		t.Fatal(err)
	}
	out := batteryui.RenderEAndroid(w.Dev.Packages, w.Dev.Android, w.Dev.EAndroid, w.Dev.Battery)
	if !strings.Contains(out, "accounting module disabled") {
		t.Fatalf("framework-only note missing:\n%s", out)
	}
}

func TestRenderAttacks(t *testing.T) {
	w := attackedWorld(t)
	out := batteryui.RenderAttacks(w.Dev.Packages, w.Dev.EAndroid)
	if !strings.Contains(out, "activity") || !strings.Contains(out, "FunGame") {
		t.Fatalf("attack log incomplete:\n%s", out)
	}
}
