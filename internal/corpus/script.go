package corpus

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/activity"
	"repro/internal/app"
	"repro/internal/intent"
	"repro/internal/power"
	"repro/internal/scenario"
	"repro/internal/service"
	"repro/internal/sim"
)

// Op is one scripted action kind.
type Op uint8

// Script operations. The benign walk uses the first three (user
// actions); attack overlays use the rest (malware actions — none of
// them count as user activity, which is exactly what the watchdog's
// user-quiet gate keys on).
const (
	// OpTouch is a user touch: wakes the screen, resets the idle timeout.
	OpTouch Op = iota
	// OpLaunch is the user tapping Pkg's icon (implies a touch).
	OpLaunch
	// OpHome is the user pressing the home button (implies a touch).
	OpHome
	// OpWakeAcquire is the malware taking its partial wakelock, keeping
	// the CPU awake through an otherwise-suspended idle span.
	OpWakeAcquire
	// OpWakeRelease drops the malware's wakelock.
	OpWakeRelease
	// OpHijack is the malware background-starting Pkg's energy-hungry
	// activity (attack #1's move, scripted).
	OpHijack
	// OpHijackFinish destroys the activity a prior OpHijack started.
	OpHijackFinish
	// OpBind is the malware binding the victim's Work service (attack
	// #3's service pin).
	OpBind
	// OpUnbind releases the pin.
	OpUnbind
	// OpShove is the malware sending a home intent, pushing every
	// hijacked activity to the background where residual drain hides.
	OpShove
)

var opNames = [...]string{
	OpTouch: "touch", OpLaunch: "launch", OpHome: "home",
	OpWakeAcquire: "wake-acquire", OpWakeRelease: "wake-release",
	OpHijack: "hijack", OpHijackFinish: "hijack-finish",
	OpBind: "bind", OpUnbind: "unbind", OpShove: "shove",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Step is one timed action. At is the virtual offset from script start.
type Step struct {
	At  time.Duration `json:"at"`
	Op  Op            `json:"op"`
	Pkg string        `json:"pkg,omitempty"`
}

// ScriptScreenTimeout is the screen idle timeout every corpus script
// installs. It is deliberately shorter than the watchdog window (30 s):
// the screen afterglow after the user's last touch then covers at most
// a third of the one judged window it can bleed into, keeping benign
// post-session windows well under the 4x spike gate. Touch cadences
// must stay under it so sessions never go dark mid-dwell (Validate
// enforces this).
const ScriptScreenTimeout = 10 * time.Second

// Script is one fully generated corpus scenario: the benign archetype
// walk with the cell's attack overlay merged in, as a flat timed step
// list. A Script is a pure function of (Cell, Seed, Params) — same
// inputs, byte-identical script — which is what makes corpus replay
// deterministic across runs and across fleet worker counts.
type Script struct {
	Cell          Cell          `json:"cell"`
	Seed          int64         `json:"seed"`
	Horizon       time.Duration `json:"horizon"`
	ScreenTimeout time.Duration `json:"screen_timeout"`
	// ChargeStart and ChargeEnd bound the diurnal charge window: the
	// device idles (plugged in, user asleep) through this whole span.
	ChargeStart time.Duration `json:"charge_start"`
	ChargeEnd   time.Duration `json:"charge_end"`
	Steps       []Step        `json:"steps"`
}

// segment is one screen-off idle span of the benign walk; overlays
// mount attacks inside these (that is where real drain malware hides).
type segment struct {
	start, end time.Duration
	// charging marks the segment covering the diurnal charge window.
	charging bool
}

func (g segment) dur() time.Duration { return g.end - g.start }

// Generate builds the script for one corpus cell from a seed. The
// benign archetype walk is generated first; the cell's attack variant
// then overlays malware steps into the walk's idle segments; the merged
// list is sorted by time (stable, so the generation order breaks ties
// deterministically).
func Generate(cell Cell, seed int64, p Params) (*Script, error) {
	if err := p.fill(); err != nil {
		return nil, err
	}
	model, err := ModelFor(cell.Archetype)
	if err != nil {
		return nil, err
	}
	s := &Script{
		Cell:          cell,
		Seed:          seed,
		Horizon:       p.Horizon,
		ScreenTimeout: ScriptScreenTimeout,
		ChargeStart:   quantizeSec(time.Duration(float64(p.Horizon) * chargeStartFrac)),
		ChargeEnd:     quantizeSec(time.Duration(float64(p.Horizon) * chargeEndFrac)),
	}
	rng := rand.New(rand.NewSource(seed))
	idles := s.benignWalk(rng, model)
	switch cell.Variant {
	case VarBenign:
		// nothing to overlay
	case VarIntermittent:
		s.overlayIntermittent(rng, idles)
	case VarCoordinated:
		s.overlayCoordinated(rng, idles)
	case VarChargingAware:
		s.overlayChargingAware(rng, idles)
	default:
		return nil, fmt.Errorf("corpus: unknown variant %q", cell.Variant)
	}
	sort.SliceStable(s.Steps, func(i, j int) bool { return s.Steps[i].At < s.Steps[j].At })
	return s, nil
}

func quantizeSec(d time.Duration) time.Duration { return d / time.Second * time.Second }

func (s *Script) step(at time.Duration, op Op, pkg string) {
	s.Steps = append(s.Steps, Step{At: at, Op: op, Pkg: pkg})
}

// benignWalk runs the archetype's Markov chain over the horizon,
// emitting user steps and returning the screen-off idle segments for
// the overlays. The diurnal charge window is forced idle: sessions
// running into it are cut short, and idle spans touching it extend
// through its whole length.
func (s *Script) benignWalk(rng *rand.Rand, m *Model) []segment {
	var idles []segment
	t := time.Duration(0)
	state := m.Start
	for t < s.Horizon {
		st := &m.States[state]
		if st.Idle() {
			end := t + sampleDur(rng, st.MinDwell, st.MaxDwell)
			if end >= s.ChargeStart && t < s.ChargeEnd && end < s.ChargeEnd {
				end = s.ChargeEnd
			}
			if end > s.Horizon {
				end = s.Horizon
			}
			idles = append(idles, segment{
				start:    t,
				end:      end,
				charging: t <= s.ChargeStart && end >= s.ChargeEnd,
			})
			t = end
			state = m.next(rng, state)
			continue
		}
		// Session: launch, touch at the state's cadence, then either
		// chain straight into the next app (no home press — the
		// background-heavy signature) or go home and idle.
		end := t + sampleDur(rng, st.MinDwell, st.MaxDwell)
		forcedIdle := false
		if t < s.ChargeStart && end >= s.ChargeStart {
			end = s.ChargeStart
			forcedIdle = true
		}
		if end >= s.Horizon {
			end = s.Horizon
			forcedIdle = true
		}
		s.step(t, OpLaunch, st.Pkg)
		for tt := t + sampleDur(rng, st.TouchMin, st.TouchMax); tt < end; tt += sampleDur(rng, st.TouchMin, st.TouchMax) {
			s.step(tt, OpTouch, "")
		}
		next := m.next(rng, state)
		if forcedIdle {
			next = m.Start
		}
		if m.States[next].Idle() && end < s.Horizon {
			s.step(end, OpHome, "")
		}
		t = end
		state = next
	}
	return idles
}

// hijackComponent maps a package to the component an OpHijack starts:
// the camera's recorder (the energy hog) or the app's main activity.
func hijackComponent(pkg string) string {
	if pkg == scenario.PkgCamera {
		return pkg + "/VideoActivity"
	}
	return pkg + "/Main"
}

// Apply replays the script on a freshly populated world, driving the
// engine to each step's instant and issuing the action, then running
// out the remaining horizon. Offsets are relative to the engine's
// current instant, so Apply composes with any prior warm-up the caller
// ran.
func (s *Script) Apply(w *scenario.World) error {
	dev := w.Dev
	if err := dev.Power.SetScreenTimeout(sim.Duration(s.ScreenTimeout)); err != nil {
		return err
	}
	base := dev.Engine.Now()
	var wl *power.Wakelock
	var conn *service.Connection
	hijacked := make(map[string]*activity.Activity)
	for i := range s.Steps {
		st := &s.Steps[i]
		if err := dev.Engine.RunUntil(base.Add(sim.Duration(st.At))); err != nil {
			return err
		}
		var err error
		switch st.Op {
		case OpTouch:
			dev.Power.UserActivity()
		case OpLaunch:
			_, err = dev.Activities.UserStartApp(st.Pkg)
		case OpHome:
			dev.Activities.Home(app.UIDSystem)
		case OpWakeAcquire:
			if wl == nil || !wl.Held() {
				wl, err = dev.Power.Acquire(w.Malware.UID, power.Partial, "corpus-attack")
			}
		case OpWakeRelease:
			if wl != nil && wl.Held() {
				err = wl.Release()
			}
		case OpHijack:
			var a *activity.Activity
			a, err = dev.Activities.StartActivity(intent.Intent{
				Sender:    w.Malware.UID,
				Component: hijackComponent(st.Pkg),
			})
			if err == nil {
				hijacked[st.Pkg] = a
			}
		case OpHijackFinish:
			if a := hijacked[st.Pkg]; a != nil {
				err = dev.Activities.Finish(a)
				delete(hijacked, st.Pkg)
			}
		case OpBind:
			if conn == nil {
				conn, err = dev.Services.Bind(intent.Intent{
					Sender:    w.Malware.UID,
					Component: scenario.PkgVictim + "/Work",
				})
			}
		case OpUnbind:
			if conn != nil {
				err = dev.Services.Unbind(conn)
				conn = nil
			}
		case OpShove:
			dev.Activities.Home(w.Malware.UID)
		default:
			err = fmt.Errorf("corpus: unknown op %v", st.Op)
		}
		if err != nil {
			return fmt.Errorf("corpus: %s step %d (%v %s at %v): %w",
				s.Cell, i, st.Op, st.Pkg, st.At, err)
		}
	}
	return dev.Engine.RunUntil(base.Add(sim.Duration(s.Horizon)))
}
