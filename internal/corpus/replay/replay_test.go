package replay

import (
	"context"
	"strings"
	"testing"

	"repro/internal/corpus"
)

// smokeOpts is the two-cell, few-rep configuration the CI smoke target
// also uses: one benign and one attack cell, short horizon.
func smokeOpts(workers int) Options {
	return Options{
		RootSeed: 0x5eedc0de,
		Reps:     3,
		Workers:  workers,
		Horizon:  corpus.MinHorizon,
		Cells: []corpus.Cell{
			{Archetype: corpus.ArchCommuter, Variant: corpus.VarBenign},
			{Archetype: corpus.ArchCommuter, Variant: corpus.VarIntermittent},
		},
	}
}

// TestReplayGoldenDeterminism is the corpus's determinism contract:
// the replay summary — render and serialized cells — must be
// byte-identical across fleet worker counts (1 vs 8) and across two
// same-seed runs. Any nondeterminism in generation, application or
// aggregation shows up here as a diff.
func TestReplayGoldenDeterminism(t *testing.T) {
	ctx := context.Background()
	r1, err := Run(ctx, smokeOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(ctx, smokeOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run(ctx, smokeOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	j1, err := r1.MarshalCells()
	if err != nil {
		t.Fatal(err)
	}
	j8, _ := r8.MarshalCells()
	jAgain, _ := again.MarshalCells()
	if string(j1) != string(j8) {
		t.Errorf("cell summaries differ between 1 and 8 workers:\n%s\nvs\n%s", j1, j8)
	}
	if string(j1) != string(jAgain) {
		t.Errorf("cell summaries differ between two same-seed runs:\n%s\nvs\n%s", j1, jAgain)
	}
	if r1.Render() != r8.Render() {
		t.Error("rendered summaries differ between 1 and 8 workers")
	}
	if r1.Render() != again.Render() {
		t.Error("rendered summaries differ between two same-seed runs")
	}
}

// TestReplaySeparationSmoke checks the watchdog separates the smoke
// cells even at smoke scale: the benign cell must be spotless (no
// flagged windows, no accusations) and the attack cell fully detected.
// The committed full-scale artifact makes the statistical claim; this
// pins the mechanism in the ordinary test suite.
func TestReplaySeparationSmoke(t *testing.T) {
	res, err := Run(context.Background(), smokeOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(res.Cells))
	}
	benign, attack := res.Cells[0], res.Cells[1]
	if !benign.Benign || attack.Benign {
		t.Fatalf("cell order: got %s, %s", benign.Cell, attack.Cell)
	}
	if benign.DetectedRuns != 0 {
		t.Errorf("benign cell accused the malware in %d/%d runs", benign.DetectedRuns, benign.Reps)
	}
	if benign.FlaggedWindows != 0 {
		t.Errorf("benign cell flagged %d/%d judged windows", benign.FlaggedWindows, benign.JudgedWindows)
	}
	if benign.JudgedWindows == 0 {
		t.Error("benign cell judged no windows: the FP estimate would be vacuous")
	}
	if attack.DetectedRuns != attack.Reps {
		t.Errorf("attack cell detected in %d/%d runs", attack.DetectedRuns, attack.Reps)
	}
	if benign.Violations != 0 || attack.Violations != 0 {
		t.Errorf("invariant violations: benign %d, attack %d", benign.Violations, attack.Violations)
	}
	// Smoke reps are below the gating floor: interval gates must be
	// advisory, but the zero-violation gate still applies.
	if res.Gated() {
		t.Error("smoke run should not be gated")
	}
	if fails := res.Gate(); len(fails) != 0 {
		t.Errorf("smoke gate failures: %v", fails)
	}
	if !strings.Contains(res.Render(), "gates advisory") {
		t.Error("render should state the gates are advisory at smoke scale")
	}
}

// TestReplayGateLogic drives Gate() through synthetic results so the
// threshold arithmetic is pinned without a full-scale run.
func TestReplayGateLogic(t *testing.T) {
	mk := func(benign bool, detected, reps, flagged, judged, violations int) CellResult {
		return CellResult{
			Cell: "synthetic", Benign: benign, Reps: reps,
			DetectedRuns:   detected,
			Detection:      corpus.Wilson(detected, reps, corpus.Z95),
			FlaggedWindows: flagged, JudgedWindows: judged,
			WindowFP:   corpus.Wilson(flagged, judged, corpus.Z95),
			Violations: violations,
		}
	}
	cases := []struct {
		name  string
		cell  CellResult
		fails int
	}{
		{"benign clean", mk(true, 0, 40, 0, 15000, 0), 0},
		{"benign few flags under gate", mk(true, 0, 40, 10, 15000, 0), 0},
		{"benign too many flags", mk(true, 0, 40, 400, 15000, 0), 1},
		{"benign false accusation", mk(true, 1, 40, 0, 15000, 0), 1},
		{"benign no judged windows is vacuous [0,1]", mk(true, 0, 40, 0, 0, 0), 1},
		{"attack perfect", mk(false, 40, 40, 0, 0, 0), 0},
		{"attack one miss fails (39/40 lower bound < 0.90)", mk(false, 39, 40, 0, 0, 0), 1},
		{"violations always gate", mk(false, 40, 40, 0, 0, 2), 1},
	}
	for _, c := range cases {
		r := &Result{Reps: c.cell.Reps, Cells: []CellResult{c.cell}}
		if got := len(r.Gate()); got != c.fails {
			t.Errorf("%s: %d gate failures, want %d: %v", c.name, got, c.fails, r.Gate())
		}
	}
	// Below the gating floor only violations bind.
	small := &Result{Reps: 3, Cells: []CellResult{mk(false, 0, 3, 0, 0, 0)}}
	if fails := small.Gate(); len(fails) != 0 {
		t.Errorf("ungated run reported interval failures: %v", fails)
	}
	small.Cells[0].Violations = 1
	if fails := small.Gate(); len(fails) != 1 {
		t.Errorf("ungated run must still gate on violations: %v", fails)
	}
}
