// Package replay is the corpus's statistical harness: it runs every
// (archetype x attack-variant) cell of the generated scenario corpus N
// times through the fleet runner with the obsv watchdog attached, and
// reduces each cell to detection-rate and false-positive-rate estimates
// with Wilson 95% confidence intervals.
//
// The harness exists to upgrade the repo's correctness claim from
// "the watchdog separates six hand-written scenes" to "the separation
// holds across a generated population, with stated confidence". Its
// CI gates therefore compare interval BOUNDS, not point estimates: a
// benign cell passes only if even the upper end of its false-positive
// interval is under the threshold, and an attack cell only if even the
// lower end of its detection interval clears the bar.
//
// Two different trial units are deliberately in play:
//
//   - Detection is a run-level Bernoulli trial (did this device's
//     watchdog name the malware as a collateral driver at least once?),
//     estimated over the cell's N seeded repetitions.
//   - False positives are window-level trials: every user-quiet window
//     the watchdog judged is one trial, flagged or clean. A 4-hour
//     benign run judges hundreds of windows, so the pooled interval is
//     tight enough for a 2% gate — run-level counts over N=40 never
//     could be (0 failures in 40 still leaves an 8.8% upper bound).
package replay

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/accounting"
	"repro/internal/check"
	"repro/internal/corpus"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/obsv"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

// Defaults and gate thresholds.
const (
	// DefaultReps is the per-cell repetition count. 40, not the issue's
	// floor of 30: a perfect 40/40 detection record has Wilson lower
	// bound 0.912, clearing the 90% gate, while 30/30 only reaches
	// 0.887 — at N=30 the gate would be unsatisfiable even for a
	// flawless detector.
	DefaultReps = 40
	// MinGatedReps is the repetition floor below which the gates are
	// advisory (smoke runs): intervals from tiny N are too wide to
	// mean anything.
	MinGatedReps = 30
	// DefaultRootSeed seeds the committed BENCH_corpus.json artifact.
	DefaultRootSeed = 0x5eedc0de
	// FPGateMax is the benign-cell gate: the Wilson-95% upper bound of
	// the window-level false-positive rate must not exceed this.
	FPGateMax = 0.02
	// DetectGateMin is the attack-cell gate: the Wilson-95% lower
	// bound of the run-level detection rate must reach this.
	DetectGateMin = 0.90
)

// Options configures a replay run. The zero value runs the full corpus
// at the committed defaults.
type Options struct {
	// RootSeed derives every cell/rep script seed; zero means
	// DefaultRootSeed.
	RootSeed int64
	// Reps is the per-cell repetition count; zero means DefaultReps.
	Reps int
	// Workers bounds fleet concurrency; zero means GOMAXPROCS.
	Workers int
	// Horizon overrides the script span; zero means
	// corpus.DefaultHorizon.
	Horizon time.Duration
	// Cells restricts the run to a subset (smoke runs); nil means the
	// full corpus grid.
	Cells []corpus.Cell
	// Progress, when non-nil, receives one tick per finished device —
	// the fleet runner's live feed, passed straight through so a jobs
	// control plane can stream replay progress over SSE. Like
	// fleet.Spec.Progress it is called from worker goroutines and must
	// be safe for concurrent calls.
	Progress func(fleet.Progress)
}

// CellResult is one corpus cell's statistical summary.
type CellResult struct {
	Cell      string `json:"cell"`
	Archetype string `json:"archetype"`
	Variant   string `json:"variant"`
	Benign    bool   `json:"benign"`
	Reps      int    `json:"reps"`
	// DetectedRuns counts repetitions whose watchdog raised at least
	// one collateral-divergence finding naming the malware; Detection
	// is its run-level Wilson estimate. For benign cells a "detection"
	// is a false accusation, so the same number gates from above.
	DetectedRuns int             `json:"detected_runs"`
	Detection    corpus.Estimate `json:"detection"`
	// JudgedWindows pools every user-quiet window the watchdog judged
	// across the cell's repetitions; FlaggedWindows are those that
	// produced at least one finding; WindowFP is the pooled Wilson
	// estimate of the flagged fraction.
	JudgedWindows  int             `json:"judged_windows"`
	FlaggedWindows int             `json:"flagged_windows"`
	WindowFP       corpus.Estimate `json:"window_fp"`
	// FindingsTotal counts all findings across repetitions.
	FindingsTotal int `json:"findings_total"`
	// Violations counts runtime invariant violations (always-on checks;
	// must be zero).
	Violations int `json:"violations"`
	// MeanDrainedJ is the mean battery drain per repetition.
	MeanDrainedJ float64 `json:"mean_drained_j"`
}

// Result is a full replay: one CellResult per cell, in canonical cell
// order. Everything except Workers is independent of worker count and
// byte-identical for a given (RootSeed, Reps, Horizon, Cells).
type Result struct {
	RootSeed int64         `json:"root_seed"`
	Reps     int           `json:"reps"`
	Workers  int           `json:"workers"`
	Horizon  time.Duration `json:"horizon"`
	Cells    []CellResult  `json:"cells"`
}

// runOutcome is one device's harvest, written by the fleet worker that
// owns the device index (disjoint-index writes, no locking needed).
// violations and drainedJ arrive via the fleet's Stream sink — the
// replay runs the streaming path, so per-device Results are folded and
// dropped instead of retained; this small fixed-size record is all the
// statistics need.
type runOutcome struct {
	detected   bool
	findings   int
	stats      obsv.WindowStats
	violations int
	drainedJ   float64
}

// Run replays the corpus. Per-device failures abort the replay: a
// corpus whose scripts cannot even execute has no statistics worth
// reporting.
func Run(ctx context.Context, opts Options) (*Result, error) {
	if opts.RootSeed == 0 {
		opts.RootSeed = DefaultRootSeed
	}
	if opts.Reps <= 0 {
		opts.Reps = DefaultReps
	}
	if opts.Horizon == 0 {
		opts.Horizon = corpus.DefaultHorizon
	}
	cells := opts.Cells
	if cells == nil {
		cells = corpus.Cells()
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("replay: no cells")
	}
	reps := opts.Reps
	params := corpus.Params{Horizon: opts.Horizon}

	// Pre-generate nothing: each worker generates its device's script
	// from the pure (root, cellIdx, rep) seed chain, so the fleet's
	// memory high-water mark stays one script per worker.
	outcomes := make([]runOutcome, len(cells)*reps)
	fr, err := fleet.Run(ctx, fleet.Spec{
		Devices: len(cells) * reps,
		Workers: opts.Workers,
		Seed:    opts.RootSeed,
		Config: device.Config{
			EAndroid: true,
			Policy:   accounting.BatteryStats,
			Checks:   &check.Options{},
		},
		Telemetry: &telemetry.Options{},
		Progress:  opts.Progress,
		// The Stream sink runs on the worker goroutine right after the
		// device finishes; outcome writes stay disjoint-index, and the
		// per-cell reductions below iterate outcomes in rep order — the
		// exact float-sum order the retained path used, so the committed
		// BENCH_corpus.json statistics stay byte-identical.
		Stream: func(r fleet.Result) {
			o := &outcomes[r.Index]
			o.violations = len(r.Violations)
			o.drainedJ = r.DrainedJ
		},
		Scenario: func(i int, dev *device.Device) error {
			cellIdx, rep := i/reps, i%reps
			w, err := scenario.Populate(dev)
			if err != nil {
				return err
			}
			wd, err := obsv.NewWatchdog(dev, obsv.WatchdogOptions{})
			if err != nil {
				return err
			}
			wd.Start()
			script, err := corpus.Generate(cells[cellIdx],
				corpus.ScriptSeed(opts.RootSeed, cellIdx, rep), params)
			if err != nil {
				return err
			}
			if err := script.Apply(w); err != nil {
				return err
			}
			o := &outcomes[i]
			for _, f := range wd.Finish() {
				o.findings++
				if f.Signal == obsv.SignalDivergence && f.UID == w.Malware.UID {
					o.detected = true
				}
			}
			o.stats = wd.Stats()
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	for _, f := range fr.Summary.Failures {
		cellIdx, rep := f.Index/reps, f.Index%reps
		return nil, fmt.Errorf("replay: cell %s rep %d: %s", cells[cellIdx], rep, f.Err)
	}

	res := &Result{
		RootSeed: opts.RootSeed,
		Reps:     reps,
		Workers:  fr.Workers,
		Horizon:  opts.Horizon,
	}
	for ci, cell := range cells {
		cr := CellResult{
			Cell:      cell.String(),
			Archetype: string(cell.Archetype),
			Variant:   string(cell.Variant),
			Benign:    cell.Variant.Benign(),
			Reps:      reps,
		}
		for rep := 0; rep < reps; rep++ {
			i := ci*reps + rep
			o := &outcomes[i]
			if o.detected {
				cr.DetectedRuns++
			}
			cr.FindingsTotal += o.findings
			cr.JudgedWindows += o.stats.Judged
			cr.FlaggedWindows += o.stats.Flagged
			cr.Violations += o.violations
			cr.MeanDrainedJ += o.drainedJ
		}
		cr.MeanDrainedJ /= float64(reps)
		cr.Detection = corpus.Wilson(cr.DetectedRuns, reps, corpus.Z95)
		cr.WindowFP = corpus.Wilson(cr.FlaggedWindows, cr.JudgedWindows, corpus.Z95)
		res.Cells = append(res.Cells, cr)
	}
	return res, nil
}

// Gated reports whether this run's repetition count makes the CI gates
// binding.
func (r *Result) Gated() bool { return r.Reps >= MinGatedReps }

// Gate checks every cell against the corpus thresholds and returns one
// message per violation (nil = pass). Runs under MinGatedReps return
// only violation-count failures — interval gates need real N.
func (r *Result) Gate() []string {
	var fails []string
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Violations > 0 {
			fails = append(fails, fmt.Sprintf(
				"%s: %d invariant violations (want 0)", c.Cell, c.Violations))
		}
		if !r.Gated() {
			continue
		}
		if c.Benign {
			if c.WindowFP.Hi > FPGateMax {
				fails = append(fails, fmt.Sprintf(
					"%s: benign window FP upper bound %.4f > %.2f (%d/%d windows flagged)",
					c.Cell, c.WindowFP.Hi, FPGateMax, c.FlaggedWindows, c.JudgedWindows))
			}
			if c.DetectedRuns > 0 {
				fails = append(fails, fmt.Sprintf(
					"%s: benign cell accused the malware in %d/%d runs",
					c.Cell, c.DetectedRuns, c.Reps))
			}
		} else if c.Detection.Lo < DetectGateMin {
			fails = append(fails, fmt.Sprintf(
				"%s: detection lower bound %.4f < %.2f (%d/%d runs detected)",
				c.Cell, c.Detection.Lo, DetectGateMin, c.DetectedRuns, c.Reps))
		}
	}
	return fails
}

// MarshalCells renders the per-cell table as deterministic JSON — the
// payload the golden determinism test pins across worker counts.
func (r *Result) MarshalCells() ([]byte, error) {
	return json.MarshalIndent(r.Cells, "", "  ")
}

// Render prints the replay summary table. Deliberately excludes the
// worker count: the render is a determinism surface, byte-identical
// across fleet parallelism.
func (r *Result) Render() string {
	var b strings.Builder
	b.WriteString("=== Corpus replay: watchdog separation with 95% confidence intervals ===\n")
	fmt.Fprintf(&b, "root seed %#x, %d reps/cell, horizon %v; gates: benign window-FP upper <= %.0f%%, attack detection lower >= %.0f%%\n",
		r.RootSeed, r.Reps, r.Horizon, FPGateMax*100, DetectGateMin*100)
	fmt.Fprintf(&b, "%-40s %-10s %-22s %-24s %s\n",
		"cell", "detected", "detection 95% CI", "window FP (flag/judged)", "FP upper")
	for i := range r.Cells {
		c := &r.Cells[i]
		fmt.Fprintf(&b, "%-40s %3d/%-3d    [%.4f, %.4f]       %6d/%-10d        %.4f\n",
			c.Cell, c.DetectedRuns, c.Reps, c.Detection.Lo, c.Detection.Hi,
			c.FlaggedWindows, c.JudgedWindows, c.WindowFP.Hi)
	}
	if fails := r.Gate(); len(fails) > 0 {
		sort.Strings(fails)
		b.WriteString("GATE FAILURES:\n")
		for _, f := range fails {
			b.WriteString("  " + f + "\n")
		}
	} else if r.Gated() {
		b.WriteString("all gates pass\n")
	} else {
		fmt.Fprintf(&b, "gates advisory (reps %d < %d)\n", r.Reps, MinGatedReps)
	}
	return b.String()
}
