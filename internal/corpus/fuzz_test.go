package corpus

import (
	"testing"
	"time"

	"repro/internal/accounting"
	"repro/internal/check"
	"repro/internal/device"
	"repro/internal/scenario"
)

// FuzzCorpus feeds arbitrary (cell index, seed, horizon minutes) into
// the generator and replays the result on a fail-fast-checked world:
// the corpus's property — every generated script conserves energy and
// ends lifecycle-clean — must hold for ANY seed, not just the committed
// grid. Committed seeds live in testdata/fuzz/FuzzCorpus.
func FuzzCorpus(f *testing.F) {
	// One seed per variant, plus a negative-seed and an odd-horizon case.
	f.Add(uint8(0), int64(1), uint16(60))
	f.Add(uint8(1), int64(0x5eedc0de), uint16(60))
	f.Add(uint8(6), int64(-12345), uint16(75))
	f.Add(uint8(11), int64(987654321), uint16(90))
	f.Fuzz(func(t *testing.T, cellIdx uint8, seed int64, minutes uint16) {
		cells := Cells()
		cell := cells[int(cellIdx)%len(cells)]
		horizon := time.Duration(minutes) * time.Minute
		if horizon < MinHorizon {
			horizon = MinHorizon
		}
		// Cap the span so a fuzzer-chosen 65535 minutes doesn't turn one
		// case into a 45-day simulation.
		if horizon > 3*time.Hour {
			horizon = 3 * time.Hour
		}
		s, err := Generate(cell, seed, Params{Horizon: horizon})
		if err != nil {
			t.Fatal(err)
		}
		w, err := scenario.NewWorldWith(device.Config{
			EAndroid: true,
			Policy:   accounting.BatteryStats,
			Seed:     seed,
			Checks:   &check.Options{FailFast: true},
		}, scenario.WorldOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Apply(w); err != nil {
			t.Fatalf("%s seed %d horizon %v: %v", cell, seed, horizon, err)
		}
		if vs := w.Dev.FinishChecks(); len(vs) > 0 {
			t.Fatalf("%s seed %d horizon %v: %d violations, first: %v",
				cell, seed, horizon, len(vs), vs[0])
		}
	})
}
