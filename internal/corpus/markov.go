package corpus

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/scenario"
)

// State is one node of an archetype's Markov interaction model: either
// the idle state (screen off, phone pocketed) or a foreground session
// in one app, with a dwell-time range and — for sessions — the touch
// cadence that models the user scrolling and tapping (each touch resets
// the screen timeout, so sessions keep the screen lit and every
// watchdog window they span stays interactive).
type State struct {
	// Name labels the state in renders and tests.
	Name string
	// Pkg is the session's package; empty marks the idle state.
	Pkg string
	// MinDwell and MaxDwell bound the sampled stay in this state.
	MinDwell, MaxDwell time.Duration
	// TouchMin and TouchMax bound the gap between user touches during
	// a session. Both must stay under ScriptScreenTimeout so a session
	// never lets the screen lapse mid-dwell.
	TouchMin, TouchMax time.Duration
}

// Idle reports whether the state is the screen-off idle state.
func (s *State) Idle() bool { return s.Pkg == "" }

// Model is one archetype's Markov interaction chain: states plus a
// row-stochastic transition matrix over them. Row i gives the
// distribution of the next state after leaving state i; the diagonal is
// zero (staying longer is modeled by the dwell distribution, not by
// self-loops), so no state is absorbing by construction — a property
// the tests pin.
type Model struct {
	Archetype Archetype
	States    []State
	// Start is the boot state index (idle for every archetype).
	Start int
	Trans [][]float64
}

// State indices shared by all archetype models.
const (
	stIdle = iota
	stMessage
	stCamera
	stContacts
	stVictim
	stGame
	numStates
)

// baseStates returns the shared state set; per-archetype models adjust
// the dwell and touch ranges.
func baseStates() []State {
	return []State{
		{Name: "idle"},
		{Name: "message", Pkg: scenario.PkgMessage},
		{Name: "camera", Pkg: scenario.PkgCamera},
		{Name: "contacts", Pkg: scenario.PkgContacts},
		{Name: "victim", Pkg: scenario.PkgVictim},
		{Name: "game", Pkg: scenario.PkgMalware},
	}
}

// dwell sets a state's dwell range; touch sets its touch cadence.
func (m *Model) dwell(i int, min, max time.Duration) {
	m.States[i].MinDwell, m.States[i].MaxDwell = min, max
}

func (m *Model) touchAll(min, max time.Duration) {
	for i := range m.States {
		if !m.States[i].Idle() {
			m.States[i].TouchMin, m.States[i].TouchMax = min, max
		}
	}
}

// ModelFor builds the named archetype's interaction model.
func ModelFor(a Archetype) (*Model, error) {
	m := &Model{Archetype: a, States: baseStates(), Start: stIdle}
	m.touchAll(3*time.Second, 8*time.Second)
	switch a {
	case ArchCommuter:
		// Frequent short bursts: messaging and contacts on the move,
		// the odd game or photo, medium idle gaps between stops.
		m.dwell(stIdle, 5*time.Minute, 20*time.Minute)
		m.dwell(stMessage, 1*time.Minute, 4*time.Minute)
		m.dwell(stCamera, 45*time.Second, 2*time.Minute)
		m.dwell(stContacts, 45*time.Second, 2*time.Minute)
		m.dwell(stVictim, 1*time.Minute, 3*time.Minute)
		m.dwell(stGame, 1*time.Minute, 4*time.Minute)
		m.Trans = [][]float64{
			//            idle   msg    cam    cont   vict   game
			stIdle:     {0.00, 0.35, 0.10, 0.20, 0.20, 0.15},
			stMessage:  {0.60, 0.00, 0.10, 0.15, 0.10, 0.05},
			stCamera:   {0.70, 0.20, 0.00, 0.05, 0.05, 0.00},
			stContacts: {0.55, 0.35, 0.00, 0.00, 0.10, 0.00},
			stVictim:   {0.70, 0.15, 0.00, 0.05, 0.00, 0.10},
			stGame:     {0.75, 0.15, 0.00, 0.00, 0.10, 0.00},
		}
	case ArchGamer:
		// Long game sessions, long recovery idles, little else.
		m.dwell(stIdle, 10*time.Minute, 30*time.Minute)
		m.dwell(stMessage, 1*time.Minute, 3*time.Minute)
		m.dwell(stCamera, 45*time.Second, 90*time.Second)
		m.dwell(stContacts, 45*time.Second, 90*time.Second)
		m.dwell(stVictim, 1*time.Minute, 2*time.Minute)
		m.dwell(stGame, 8*time.Minute, 20*time.Minute)
		m.Trans = [][]float64{
			stIdle:     {0.00, 0.20, 0.05, 0.05, 0.10, 0.60},
			stMessage:  {0.50, 0.00, 0.05, 0.05, 0.05, 0.35},
			stCamera:   {0.70, 0.15, 0.00, 0.05, 0.05, 0.05},
			stContacts: {0.60, 0.25, 0.00, 0.00, 0.05, 0.10},
			stVictim:   {0.65, 0.10, 0.00, 0.05, 0.00, 0.20},
			stGame:     {0.70, 0.20, 0.02, 0.03, 0.05, 0.00},
		}
	case ArchBackgroundHeavy:
		// Chains app to app without going home: the stack of
		// backgrounded apps grows deep, the pattern that stresses
		// residual background accounting.
		m.dwell(stIdle, 8*time.Minute, 25*time.Minute)
		m.dwell(stMessage, 2*time.Minute, 6*time.Minute)
		m.dwell(stCamera, 1*time.Minute, 3*time.Minute)
		m.dwell(stContacts, 1*time.Minute, 3*time.Minute)
		m.dwell(stVictim, 2*time.Minute, 6*time.Minute)
		m.dwell(stGame, 2*time.Minute, 5*time.Minute)
		m.Trans = [][]float64{
			stIdle:     {0.00, 0.30, 0.10, 0.15, 0.30, 0.15},
			stMessage:  {0.30, 0.00, 0.15, 0.20, 0.25, 0.10},
			stCamera:   {0.30, 0.25, 0.00, 0.10, 0.25, 0.10},
			stContacts: {0.30, 0.30, 0.05, 0.00, 0.25, 0.10},
			stVictim:   {0.30, 0.25, 0.10, 0.15, 0.00, 0.20},
			stGame:     {0.35, 0.25, 0.05, 0.10, 0.25, 0.00},
		}
	case ArchIdleMostly:
		// The phone mostly sleeps; check-ins are rare and very short.
		m.dwell(stIdle, 20*time.Minute, 60*time.Minute)
		m.dwell(stMessage, 30*time.Second, 2*time.Minute)
		m.dwell(stCamera, 30*time.Second, 90*time.Second)
		m.dwell(stContacts, 30*time.Second, 90*time.Second)
		m.dwell(stVictim, 30*time.Second, 2*time.Minute)
		m.dwell(stGame, 45*time.Second, 2*time.Minute)
		m.Trans = [][]float64{
			stIdle:     {0.00, 0.45, 0.05, 0.25, 0.15, 0.10},
			stMessage:  {0.80, 0.00, 0.00, 0.10, 0.10, 0.00},
			stCamera:   {0.85, 0.10, 0.00, 0.05, 0.00, 0.00},
			stContacts: {0.75, 0.20, 0.00, 0.00, 0.05, 0.00},
			stVictim:   {0.85, 0.10, 0.00, 0.05, 0.00, 0.00},
			stGame:     {0.85, 0.10, 0.00, 0.00, 0.05, 0.00},
		}
	default:
		return nil, fmt.Errorf("corpus: unknown archetype %q", a)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// transEps is the row-sum tolerance for hand-written matrices.
const transEps = 1e-9

// Validate checks the structural properties the sampler relies on:
// square row-stochastic matrix, non-negative entries, zero diagonal
// (no absorbing state — every state can be left with probability 1),
// and dwell/touch ranges that are ordered and positive.
func (m *Model) Validate() error {
	n := len(m.States)
	if n == 0 || len(m.Trans) != n {
		return fmt.Errorf("corpus: %s: %d states but %d transition rows", m.Archetype, n, len(m.Trans))
	}
	for i, row := range m.Trans {
		if len(row) != n {
			return fmt.Errorf("corpus: %s: row %d has %d entries, want %d", m.Archetype, i, len(row), n)
		}
		var sum float64
		for j, p := range row {
			if p < 0 {
				return fmt.Errorf("corpus: %s: negative probability %v at [%d][%d]", m.Archetype, p, i, j)
			}
			sum += p
		}
		if math.Abs(sum-1) > transEps {
			return fmt.Errorf("corpus: %s: row %d sums to %v, want 1", m.Archetype, i, sum)
		}
		if row[i] > 1-transEps {
			return fmt.Errorf("corpus: %s: state %d is absorbing", m.Archetype, i)
		}
	}
	for i := range m.States {
		st := &m.States[i]
		if st.Idle() {
			continue
		}
		if st.MinDwell <= 0 || st.MaxDwell < st.MinDwell {
			return fmt.Errorf("corpus: %s: state %s dwell range [%v, %v] invalid",
				m.Archetype, st.Name, st.MinDwell, st.MaxDwell)
		}
		if st.TouchMin <= 0 || st.TouchMax < st.TouchMin || st.TouchMax >= ScriptScreenTimeout {
			return fmt.Errorf("corpus: %s: state %s touch cadence [%v, %v] must be positive, ordered and under the %v screen timeout",
				m.Archetype, st.Name, st.TouchMin, st.TouchMax, ScriptScreenTimeout)
		}
	}
	if s := &m.States[m.Start]; s.MinDwell <= 0 || s.MaxDwell < s.MinDwell {
		return fmt.Errorf("corpus: %s: start state dwell range invalid", m.Archetype)
	}
	return nil
}

// next samples the successor of state cur.
func (m *Model) next(rng *rand.Rand, cur int) int {
	u := rng.Float64()
	var acc float64
	for j, p := range m.Trans[cur] {
		acc += p
		if u < acc {
			return j
		}
	}
	// Float round-off on the last row entry: take the last positive one.
	for j := len(m.Trans[cur]) - 1; j >= 0; j-- {
		if m.Trans[cur][j] > 0 {
			return j
		}
	}
	return cur
}

// JumpStationary returns the stationary distribution of the embedded
// jump chain by power iteration. The chains here are small, irreducible
// and aperiodic, so a fixed iteration count converges far below the
// tolerance the tests assert.
func (m *Model) JumpStationary() []float64 {
	n := len(m.States)
	pi := make([]float64, n)
	next := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	for iter := 0; iter < 500; iter++ {
		for j := range next {
			next[j] = 0
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				next[j] += pi[i] * m.Trans[i][j]
			}
		}
		pi, next = next, pi
	}
	return pi
}

// meanDwell is the midpoint of a state's dwell range.
func (s *State) meanDwell() float64 {
	return (s.MinDwell + s.MaxDwell).Seconds() / 2
}

// Occupancy returns the long-run fraction of virtual time spent in each
// state: the jump-chain stationary distribution weighted by expected
// dwell and renormalized. This is the number behavioural sanity tests
// assert against (an idle-mostly user must mostly idle; a gamer must
// out-game every other app).
func (m *Model) Occupancy() []float64 {
	pi := m.JumpStationary()
	occ := make([]float64, len(pi))
	var total float64
	for i := range pi {
		occ[i] = pi[i] * m.States[i].meanDwell()
		total += occ[i]
	}
	for i := range occ {
		occ[i] /= total
	}
	return occ
}

// sampleDur draws a second-quantized duration uniformly from [min, max].
// Quantization keeps scripts human-readable and makes golden diffs
// stable against Duration printing quirks.
func sampleDur(rng *rand.Rand, min, max time.Duration) time.Duration {
	lo, hi := min/time.Second, max/time.Second
	if hi <= lo {
		return lo * time.Second
	}
	return (lo + time.Duration(rng.Int63n(int64(hi-lo+1)))) * time.Second
}
