package corpus

import (
	"math/rand"
	"time"

	"repro/internal/scenario"
)

// Overlay shape parameters. All attacks mount inside the benign walk's
// screen-off idle segments — drain malware that runs while the user is
// looking at the screen gets caught by the user, not by a profiler —
// and keep a margin from the segment edges so an attack step never
// collides with a session step.
const (
	// burstMin/burstMax bound one intermittent drain burst. A burst
	// always spans at least one full watchdog window (30 s), so each
	// burst is independently detectable.
	burstMin = 60 * time.Second
	burstMax = 120 * time.Second
	// burstGapMin/burstGapMax separate bursts — the low-and-slow pacing
	// that keeps cumulative drain under any long-horizon rate alarm.
	burstGapMin = 8 * time.Minute
	burstGapMax = 15 * time.Minute
	// idleMargin keeps attack steps clear of idle-segment edges (and of
	// the screen afterglow after the user's last touch).
	idleMargin = 90 * time.Second
)

// overlayIntermittent mounts the low-and-slow drain: short
// wakelock+service-pin bursts tucked into every idle segment long
// enough to hide one, separated by long gaps. The diurnal charge
// segment is always long enough, so every generated script carries at
// least one burst.
func (s *Script) overlayIntermittent(rng *rand.Rand, idles []segment) {
	for _, g := range idles {
		t := g.start + idleMargin + sampleDur(rng, 0, 30*time.Second)
		for {
			burst := sampleDur(rng, burstMin, burstMax)
			if t+burst+idleMargin > g.end {
				break
			}
			s.step(t, OpWakeAcquire, "")
			s.step(t+time.Second, OpBind, "")
			s.step(t+burst, OpUnbind, "")
			s.step(t+burst+time.Second, OpWakeRelease, "")
			t += burst + sampleDur(rng, burstGapMin, burstGapMax)
		}
	}
}

// overlayCoordinated mounts the multi-app collateral attack in the
// charge window: the malware background-starts three victims at once,
// pins the victim's service, and shoves everything to the background.
// Each victim's individual residual drain is modest; the malware's
// aggregate collateral is what gives it away. The backgrounded
// activities are deliberately left alive after the window — residual
// collateral that keeps trickling is part of this variant's signature.
func (s *Script) overlayCoordinated(rng *rand.Rand, idles []segment) {
	g := chargingSegment(idles)
	t0 := maxDur(g.start, s.ChargeStart) + 5*time.Minute + sampleDur(rng, 0, 5*time.Minute)
	t1 := t0 + sampleDur(rng, 20*time.Minute, 30*time.Minute)
	if limit := s.ChargeEnd - 2*time.Minute; t1 > limit {
		t1 = limit
	}
	s.step(t0, OpWakeAcquire, "")
	s.step(t0+1*time.Second, OpHijack, scenario.PkgVictim)
	s.step(t0+2*time.Second, OpHijack, scenario.PkgMessage)
	s.step(t0+3*time.Second, OpHijack, scenario.PkgContacts)
	s.step(t0+4*time.Second, OpBind, "")
	s.step(t0+5*time.Second, OpShove, "")
	s.step(t1, OpUnbind, "")
	s.step(t1+time.Second, OpWakeRelease, "")
}

// overlayChargingAware mounts the camera hijack only inside the charge
// window, when the rising battery percentage masks the drain and the
// user is asleep: acquire, hijack the recorder, hold it for most of the
// window, tear down before the window ends.
func (s *Script) overlayChargingAware(rng *rand.Rand, idles []segment) {
	t0 := s.ChargeStart + 2*time.Minute + sampleDur(rng, 0, 3*time.Minute)
	t1 := t0 + sampleDur(rng, 25*time.Minute, 45*time.Minute)
	if limit := s.ChargeEnd - 2*time.Minute; t1 > limit {
		t1 = limit
	}
	s.step(t0, OpWakeAcquire, "")
	s.step(t0+time.Second, OpHijack, scenario.PkgCamera)
	s.step(t1, OpHijackFinish, scenario.PkgCamera)
	s.step(t1+time.Second, OpWakeRelease, "")
}

// chargingSegment returns the idle segment covering the charge window
// (the benign walk always produces exactly one), falling back to the
// longest segment if construction ever changes.
func chargingSegment(idles []segment) segment {
	var longest segment
	for _, g := range idles {
		if g.charging {
			return g
		}
		if g.dur() > longest.dur() {
			longest = g
		}
	}
	return longest
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
