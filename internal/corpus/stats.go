package corpus

import "math"

// Z95 is the two-sided 95% normal quantile used throughout the corpus
// gates.
const Z95 = 1.959963984540054

// Estimate is a binomial proportion with its Wilson score interval.
// The Wilson interval (Wilson 1927) is the right tool for the corpus
// gates because it stays honest at the extremes the corpus actually
// produces — 0 failures in N, or N detections in N — where the naive
// Wald interval collapses to a zero-width lie. CI gates compare the
// interval *bounds*, not Rate: "detection ≥ 90%" must hold even for
// the worst rate still compatible with the sample.
type Estimate struct {
	// K successes out of N trials.
	K int `json:"k"`
	N int `json:"n"`
	// Rate is the point estimate K/N.
	Rate float64 `json:"rate"`
	// Lo and Hi bound the Wilson score interval.
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// Wilson computes the Wilson score interval for k successes in n trials
// at normal quantile z. n == 0 yields the vacuous [0, 1] interval with
// rate 0 — no data constrains nothing.
func Wilson(k, n int, z float64) Estimate {
	if n <= 0 {
		return Estimate{Lo: 0, Hi: 1}
	}
	nf := float64(n)
	p := float64(k) / nf
	z2 := z * z
	denom := 1 + z2/nf
	center := p + z2/(2*nf)
	half := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo := (center - half) / denom
	hi := (center + half) / denom
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Estimate{K: k, N: n, Rate: p, Lo: lo, Hi: hi}
}
