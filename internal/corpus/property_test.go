package corpus

import (
	"testing"

	"repro/internal/accounting"
	"repro/internal/check"
	"repro/internal/device"
	"repro/internal/scenario"
)

// replayScript builds a fresh fail-fast-checked world and applies the
// script: any conservation or lifecycle violation surfaces as an engine
// error mid-Apply, and FinishChecks sweeps the end-of-run invariants
// (nothing left running, aggregates consistent).
func replayScript(t *testing.T, s *Script) {
	t.Helper()
	w, err := scenario.NewWorldWith(device.Config{
		EAndroid: true,
		Policy:   accounting.BatteryStats,
		Seed:     s.Seed,
		Checks:   &check.Options{FailFast: true},
	}, scenario.WorldOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(w); err != nil {
		t.Fatalf("%s seed %d: %v", s.Cell, s.Seed, err)
	}
	if vs := w.Dev.FinishChecks(); len(vs) > 0 {
		t.Fatalf("%s seed %d: %d invariant violations, first: %v",
			s.Cell, s.Seed, len(vs), vs[0])
	}
}

// TestCorpusConservesInvariants is the property test behind the corpus:
// EVERY generated scenario — all 16 cells, several seeds each — must
// replay to completion on a fail-fast-checked device with zero
// violations. Energy conservation and lifecycle cleanliness are not
// sampled claims here; they hold for the whole committed grid.
func TestCorpusConservesInvariants(t *testing.T) {
	seeds := []int64{1, 0x5eedc0de, -7}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, cell := range Cells() {
		for _, seed := range seeds {
			s, err := Generate(cell, seed, Params{Horizon: MinHorizon})
			if err != nil {
				t.Fatal(err)
			}
			replayScript(t, s)
		}
	}
}

// TestCorpusFullHorizonSpot replays one benign and one attack cell at
// the full default horizon — the exact shape the committed BENCH
// artifact uses — so horizon-dependent drift (charge-window placement,
// overlay clamping) cannot hide behind the short-horizon grid above.
func TestCorpusFullHorizonSpot(t *testing.T) {
	if testing.Short() {
		t.Skip("full-horizon replay")
	}
	for _, cell := range []Cell{
		{Archetype: ArchCommuter, Variant: VarBenign},
		{Archetype: ArchIdleMostly, Variant: VarChargingAware},
	} {
		s, err := Generate(cell, 0x5eedc0de, Params{})
		if err != nil {
			t.Fatal(err)
		}
		replayScript(t, s)
	}
}
