// Package corpus is the scenario-diversity layer over internal/scenario:
// a deterministic, seed-parameterized generator of realistic usage
// scripts. Where the scenario package scripts the paper's six
// hand-written attacks and two benign scenes, this package generates a
// *population* of them — user archetypes (commuter, gamer,
// background-heavy, idle-mostly) modeled as Markov interaction chains
// over app launches, foreground dwell, touch cadence and screen
// toggles, with a diurnal charge/idle window, plus new attack variants
// beyond the six classics (intermittent low-and-slow drain, coordinated
// multi-app collateral, charging-window-aware camera hijack) composable
// onto any benign archetype.
//
// Everything is a pure function of (cell, seed, params): the same seed
// always yields the byte-identical Script, so replayed populations are
// reproducible and the statistical harness in corpus/replay can gate CI
// on confidence intervals rather than single point estimates.
package corpus

import (
	"fmt"
	"time"
)

// Archetype names a generated user behaviour model.
type Archetype string

// The four user archetypes.
const (
	// ArchCommuter uses the phone in frequent short bursts with
	// medium idle gaps — the transit pattern.
	ArchCommuter Archetype = "commuter"
	// ArchGamer runs long foreground game sessions with rare other
	// apps and long recovery idles.
	ArchGamer Archetype = "gamer"
	// ArchBackgroundHeavy chains app to app without returning home, so
	// a deep stack of backgrounded apps accumulates.
	ArchBackgroundHeavy Archetype = "background-heavy"
	// ArchIdleMostly leaves the phone alone except for rare, very
	// short check-ins.
	ArchIdleMostly Archetype = "idle-mostly"
)

// Archetypes returns every archetype in canonical (corpus-cell) order.
func Archetypes() []Archetype {
	return []Archetype{ArchCommuter, ArchGamer, ArchBackgroundHeavy, ArchIdleMostly}
}

// Variant names an attack overlay composed onto a benign archetype
// timeline. These are deliberately *not* the paper's six classics — the
// classics are point scenes; these are population-scale shapes designed
// to probe the watchdog's thresholds.
type Variant string

// The attack variants.
const (
	// VarBenign is the pure archetype timeline with no attack.
	VarBenign Variant = "benign"
	// VarIntermittent is the low-and-slow drain: short malware
	// service-pin bursts (a partial wakelock plus a bind of the
	// victim's service) separated by long gaps, tucked into the user's
	// idle periods so no cumulative-rate detector would trip.
	VarIntermittent Variant = "intermittent-drain"
	// VarCoordinated is coordinated multi-app collateral: the malware
	// background-starts several victims at once and shoves them all to
	// the background, so each victim's individual drain stays modest
	// while the malware's aggregate collateral is large.
	VarCoordinated Variant = "coordinated-collateral"
	// VarChargingAware is the charging-window-aware hijack: the
	// malware mounts a camera hijack only inside the diurnal charge
	// window, when battery-percentage symptoms are masked and the user
	// is asleep.
	VarChargingAware Variant = "charging-aware"
)

// Variants returns every variant in canonical order, benign first.
func Variants() []Variant {
	return []Variant{VarBenign, VarIntermittent, VarCoordinated, VarChargingAware}
}

// Benign reports whether the variant carries no attack.
func (v Variant) Benign() bool { return v == VarBenign }

// Cell is one (archetype × variant) coordinate of the corpus.
type Cell struct {
	Archetype Archetype
	Variant   Variant
}

// String renders the cell as "archetype/variant".
func (c Cell) String() string { return string(c.Archetype) + "/" + string(c.Variant) }

// Cells returns the full corpus grid in canonical order:
// archetype-major, benign variant first within each archetype (so a
// two-cell smoke run covers one benign and one attack cell).
func Cells() []Cell {
	var cells []Cell
	for _, a := range Archetypes() {
		for _, v := range Variants() {
			cells = append(cells, Cell{Archetype: a, Variant: v})
		}
	}
	return cells
}

// Params shapes a generated script. The zero value is the standard
// corpus configuration.
type Params struct {
	// Horizon is the script's total virtual span; zero means
	// DefaultHorizon. Must be at least MinHorizon otherwise.
	Horizon time.Duration
}

// DefaultHorizon is the standard script span: long enough for dozens of
// watchdog windows per behavioural phase, short enough that a full
// 16-cell × 40-rep corpus replays in seconds.
const DefaultHorizon = 4 * time.Hour

// MinHorizon is the shortest span the generator accepts: the diurnal
// charge window and attack overlays need room to breathe.
const MinHorizon = time.Hour

// The diurnal charge window as fractions of the horizon: the compressed
// "night" where the device sits on the charger, screen off, user away.
const (
	chargeStartFrac = 0.55
	chargeEndFrac   = 0.80
)

func (p *Params) fill() error {
	if p.Horizon == 0 {
		p.Horizon = DefaultHorizon
	}
	if p.Horizon < MinHorizon {
		return fmt.Errorf("corpus: horizon %v below minimum %v", p.Horizon, MinHorizon)
	}
	return nil
}

// splitmix64 is the SplitMix64 finalizer — the same pure seed-derivation
// pipeline the fleet runner uses for per-device seeds, so any cell/rep
// subset of the corpus can be regenerated in isolation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ScriptSeed derives the generator seed for repetition rep of corpus
// cell index cellIdx from the corpus root seed. Pure, so any cell of a
// replayed population can be re-run alone with identical behaviour.
func ScriptSeed(root int64, cellIdx, rep int) int64 {
	x := splitmix64(uint64(root))
	x = splitmix64(x + uint64(cellIdx)*0x9e3779b97f4a7c15)
	x = splitmix64(x + uint64(rep)*0xbf58476d1ce4e5b9)
	return int64(x)
}
