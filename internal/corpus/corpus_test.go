package corpus

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

// TestCellsCanonicalOrder pins the grid: archetype-major, benign first
// within each archetype. Replay results, golden files and the committed
// BENCH artifact all rely on this order.
func TestCellsCanonicalOrder(t *testing.T) {
	cells := Cells()
	if want := len(Archetypes()) * len(Variants()); len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	i := 0
	for _, a := range Archetypes() {
		for vi, v := range Variants() {
			c := cells[i]
			if c.Archetype != a || c.Variant != v {
				t.Fatalf("cell %d = %s, want %s/%s", i, c, a, v)
			}
			if (vi == 0) != c.Variant.Benign() {
				t.Fatalf("cell %d: variant order must put the benign variant first", i)
			}
			i++
		}
	}
}

// TestModelValidate checks every archetype model passes its own
// structural validation, and that Validate actually rejects the defects
// the sampler cannot survive.
func TestModelValidate(t *testing.T) {
	for _, a := range Archetypes() {
		m, err := ModelFor(a)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", a, err)
		}
	}
	if _, err := ModelFor(Archetype("astronaut")); err == nil {
		t.Fatal("unknown archetype accepted")
	}

	m, _ := ModelFor(ArchCommuter)
	m.Trans[0][0], m.Trans[0][1] = 1, 0
	for j := 2; j < len(m.Trans[0]); j++ {
		m.Trans[0][j] = 0
	}
	if err := m.Validate(); err == nil {
		t.Fatal("absorbing state accepted")
	}

	m, _ = ModelFor(ArchCommuter)
	m.Trans[1][2] += 0.5
	if err := m.Validate(); err == nil {
		t.Fatal("non-stochastic row accepted")
	}

	m, _ = ModelFor(ArchCommuter)
	m.States[1].TouchMax = ScriptScreenTimeout
	if err := m.Validate(); err == nil {
		t.Fatal("touch cadence reaching the screen timeout accepted: sessions would go dark mid-dwell")
	}
}

// TestStationaryDistribution checks the power-iterated jump-chain
// distribution is a genuine fixed point (sums to 1, invariant under one
// more step) with full support — no transient or absorbing states.
func TestStationaryDistribution(t *testing.T) {
	for _, a := range Archetypes() {
		m, err := ModelFor(a)
		if err != nil {
			t.Fatal(err)
		}
		pi := m.JumpStationary()
		var sum float64
		for i, p := range pi {
			sum += p
			if p <= 0 {
				t.Errorf("%s: state %s has stationary mass %v, want > 0", a, m.States[i].Name, p)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: stationary sums to %v", a, sum)
		}
		next := make([]float64, len(pi))
		for i := range pi {
			for j := range pi {
				next[j] += pi[i] * m.Trans[i][j]
			}
		}
		for j := range pi {
			if math.Abs(next[j]-pi[j]) > 1e-9 {
				t.Errorf("%s: stationary not invariant at state %s: %v vs %v",
					a, m.States[j].Name, next[j], pi[j])
			}
		}
	}
}

// TestOccupancyMatchesArchetype checks the dwell-weighted occupancy
// tells each archetype's story: idle-mostly users mostly idle, gamers
// spend more time in the game than any other app, and every archetype
// idles more than half the time (real phones sleep most of the day —
// that is where the attacks hide).
func TestOccupancyMatchesArchetype(t *testing.T) {
	occ := map[Archetype][]float64{}
	for _, a := range Archetypes() {
		m, err := ModelFor(a)
		if err != nil {
			t.Fatal(err)
		}
		occ[a] = m.Occupancy()
	}
	for a, o := range occ {
		if o[stIdle] < 0.5 {
			t.Errorf("%s: idle occupancy %.3f, want >= 0.5", a, o[stIdle])
		}
	}
	if o := occ[ArchIdleMostly][stIdle]; o < 0.9 {
		t.Errorf("idle-mostly: idle occupancy %.3f, want >= 0.9", o)
	}
	gamer := occ[ArchGamer]
	for s := stMessage; s < numStates; s++ {
		if s != stGame && gamer[stGame] <= gamer[s] {
			t.Errorf("gamer: game occupancy %.3f not above state %d (%.3f)", gamer[stGame], s, gamer[s])
		}
	}
	if occ[ArchGamer][stGame] <= occ[ArchCommuter][stGame] {
		t.Error("gamer should out-game the commuter")
	}
}

// TestGenerateDeterministic: same (cell, seed, params) must yield a
// byte-identical script; different seeds must not.
func TestGenerateDeterministic(t *testing.T) {
	for _, cell := range Cells() {
		a, err := Generate(cell, 42, Params{})
		if err != nil {
			t.Fatalf("%s: %v", cell, err)
		}
		b, err := Generate(cell, 42, Params{})
		if err != nil {
			t.Fatal(err)
		}
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if !bytes.Equal(ja, jb) {
			t.Fatalf("%s: same seed, different script", cell)
		}
		c, err := Generate(cell, 43, Params{})
		if err != nil {
			t.Fatal(err)
		}
		jc, _ := json.Marshal(c)
		if bytes.Equal(ja, jc) {
			t.Fatalf("%s: different seed, identical script", cell)
		}
	}
}

// TestScriptSeedChain checks the per-(cell, rep) seed derivation is
// stable and collision-free across a realistic grid.
func TestScriptSeedChain(t *testing.T) {
	if ScriptSeed(1, 2, 3) != ScriptSeed(1, 2, 3) {
		t.Fatal("seed chain unstable")
	}
	seen := map[int64]bool{}
	for cell := 0; cell < 16; cell++ {
		for rep := 0; rep < 64; rep++ {
			s := ScriptSeed(0x5eedc0de, cell, rep)
			if seen[s] {
				t.Fatalf("seed collision at cell %d rep %d", cell, rep)
			}
			seen[s] = true
		}
	}
}

// TestScriptShape checks structural invariants of generated scripts:
// sorted steps inside the horizon, a sane charge window, no user steps
// during the charge window, and attack variants adding only malware ops
// on top of the benign walk.
func TestScriptShape(t *testing.T) {
	for _, cell := range Cells() {
		for seed := int64(1); seed <= 3; seed++ {
			s, err := Generate(cell, seed, Params{})
			if err != nil {
				t.Fatalf("%s/%d: %v", cell, seed, err)
			}
			if s.ChargeStart <= 0 || s.ChargeEnd <= s.ChargeStart || s.ChargeEnd >= s.Horizon {
				t.Fatalf("%s/%d: charge window [%v, %v] outside horizon %v",
					cell, seed, s.ChargeStart, s.ChargeEnd, s.Horizon)
			}
			var last time.Duration
			for i, st := range s.Steps {
				if st.At < last {
					t.Fatalf("%s/%d: step %d at %v before %v", cell, seed, i, st.At, last)
				}
				last = st.At
				if st.At < 0 || st.At > s.Horizon {
					t.Fatalf("%s/%d: step %d at %v outside horizon", cell, seed, i, st.At)
				}
				userOp := st.Op == OpTouch || st.Op == OpLaunch || st.Op == OpHome
				// A home press at exactly ChargeStart (the user putting the
				// phone down) and a launch at exactly ChargeEnd (picking it
				// up) are the legal boundary cases.
				if userOp && st.At > s.ChargeStart && st.At < s.ChargeEnd {
					t.Fatalf("%s/%d: user step %d (%v) inside the charge window", cell, seed, i, st.Op)
				}
				if cell.Variant.Benign() && !userOp {
					t.Fatalf("%s/%d: benign script contains malware op %v", cell, seed, st.Op)
				}
			}
			if !cell.Variant.Benign() {
				attackOps := 0
				for _, st := range s.Steps {
					switch st.Op {
					case OpTouch, OpLaunch, OpHome:
					default:
						attackOps++
					}
				}
				if attackOps == 0 {
					t.Fatalf("%s/%d: attack variant generated no attack steps", cell, seed)
				}
			}
		}
	}
}

// TestWilson pins the interval math against independently computed
// reference values (z = 1.96, the exact 95% quantile).
func TestWilson(t *testing.T) {
	cases := []struct {
		k, n   int
		lo, hi float64
	}{
		{15, 30, 0.3315412564, 0.6684587436},
		{0, 30, 0, 0.1135133932},
		{40, 40, 0.9123783988, 1},
		{30, 30, 0.8864866068, 1},
		{1, 100, 0.0017674321, 0.0544861962},
		{0, 15689, 0, 0.0002447905},
	}
	for _, c := range cases {
		e := Wilson(c.k, c.n, Z95)
		if math.Abs(e.Lo-c.lo) > 1e-9 || math.Abs(e.Hi-c.hi) > 1e-9 {
			t.Errorf("Wilson(%d, %d) = [%.10f, %.10f], want [%.10f, %.10f]",
				c.k, c.n, e.Lo, e.Hi, c.lo, c.hi)
		}
		if want := float64(c.k) / float64(c.n); e.Rate != want {
			t.Errorf("Wilson(%d, %d).Rate = %v, want %v", c.k, c.n, e.Rate, want)
		}
	}
	if e := Wilson(0, 0, Z95); e.Lo != 0 || e.Hi != 1 {
		t.Errorf("Wilson(0, 0) = [%v, %v], want the vacuous [0, 1]", e.Lo, e.Hi)
	}
	// 30/30 is exactly why the replay default is 40 reps: a perfect
	// detector at N=30 cannot clear a 0.90 lower-bound gate.
	if Wilson(30, 30, Z95).Lo >= 0.90 {
		t.Error("30/30 lower bound unexpectedly clears 0.90")
	}
	if Wilson(40, 40, Z95).Lo < 0.90 {
		t.Error("40/40 lower bound should clear 0.90")
	}
}
