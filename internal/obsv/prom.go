package obsv

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/telemetry"
)

// WritePrometheus renders a telemetry snapshot in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative le-buckets plus _sum and _count.
// The rendering is byte-deterministic: the snapshot's sections are
// already name-sorted, floats use Go's shortest-exact formatting, and
// metric names are sanitized with a fixed rule (every character outside
// [a-zA-Z0-9_:] becomes '_'). A nil snapshot renders nothing.
func WritePrometheus(w io.Writer, s *telemetry.Snapshot) error {
	if s == nil {
		return nil
	}
	var b strings.Builder
	for _, c := range s.Counters {
		name := promName(c.Name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %s\n", name, name, promFloat(c.Value))
	}
	for _, g := range s.Gauges {
		name := promName(g.Name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(g.Value))
	}
	for _, h := range s.Histograms {
		name := promName(h.Name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, promFloat(bound), cum)
		}
		if len(h.Counts) > len(h.Bounds) {
			cum += h.Counts[len(h.Bounds)]
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(&b, "%s_sum %s\n", name, promFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", name, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promName maps a registry name onto the Prometheus name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r == '_' || r == ':',
			r >= 'a' && r <= 'z',
			r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promFloat is the snapshot's shortest-exact float formatting.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
