package obsv

import (
	"fmt"
	"log/slog"
	"sort"
	"time"

	"repro/internal/app"
	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Watchdog defaults. The spike thresholds are deliberately double-gated
// (a relative jump AND an absolute floor) so quiet apps waking up and
// noisy-but-steady apps both stay under the bar.
const (
	// DefaultWindow is the rolling detection window.
	DefaultWindow = 30 * time.Second
	// DefaultBaseline is how many closed windows of per-UID rate
	// history the baseline mean averages over.
	DefaultBaseline = 8
	// DefaultWarmup is how many closed windows of history a UID needs
	// before spike judgement starts — fresh UIDs never spike.
	DefaultWarmup = 3
	// DefaultSpikeFactor is the rate-over-baseline multiple that flags
	// a drain spike.
	DefaultSpikeFactor = 4
	// DefaultMinRateMW is the absolute drain-rate floor for spikes.
	DefaultMinRateMW = 75
	// DefaultDivergenceRatio flags collateral energy growing faster
	// than this multiple of the driver's own direct energy — the
	// paper's esDiagnose signal (victims drain, the driver stays
	// quiet).
	DefaultDivergenceRatio = 1.5
	// DefaultMinCollateralMW is the absolute collateral-rate floor for
	// divergence findings.
	DefaultMinCollateralMW = 15
	// DefaultMaxFindings bounds the stored findings slice.
	DefaultMaxFindings = 512
)

// WatchdogOptions tunes the detector; zero fields take the defaults
// above.
type WatchdogOptions struct {
	Window          time.Duration
	Baseline        int
	Warmup          int
	SpikeFactor     float64
	MinRateMW       float64
	DivergenceRatio float64
	MinCollateralMW float64
	MaxFindings     int
}

func (o *WatchdogOptions) fill() {
	if o.Window <= 0 {
		o.Window = DefaultWindow
	}
	if o.Baseline <= 0 {
		o.Baseline = DefaultBaseline
	}
	if o.Warmup <= 0 {
		o.Warmup = DefaultWarmup
	}
	if o.SpikeFactor <= 0 {
		o.SpikeFactor = DefaultSpikeFactor
	}
	if o.MinRateMW <= 0 {
		o.MinRateMW = DefaultMinRateMW
	}
	if o.DivergenceRatio <= 0 {
		o.DivergenceRatio = DefaultDivergenceRatio
	}
	if o.MinCollateralMW <= 0 {
		o.MinCollateralMW = DefaultMinCollateralMW
	}
	if o.MaxFindings <= 0 {
		o.MaxFindings = DefaultMaxFindings
	}
}

// Finding signal names.
const (
	// SignalDrainSpike is a per-UID direct drain-rate spike.
	SignalDrainSpike = "drain-spike"
	// SignalDeviceSpike is a whole-device drain-rate spike.
	SignalDeviceSpike = "device-drain-spike"
	// SignalDivergence is collateral-vs-direct energy divergence.
	SignalDivergence = "collateral-divergence"
)

// Finding is one watchdog detection.
type Finding struct {
	// T is the virtual instant the window closed.
	T sim.Time `json:"t"`
	// Signal is one of the Signal* constants.
	Signal string `json:"signal"`
	// UID is the flagged app (app.UIDNone for device-level findings).
	UID app.UID `json:"uid"`
	// Label is the app's human-readable label.
	Label string `json:"label"`
	// RateMW is the offending rate over the closed window; BaselineMW
	// is what it was judged against (history mean for spikes, the
	// driver's direct rate for divergence).
	RateMW     float64 `json:"rate_mw"`
	BaselineMW float64 `json:"baseline_mw"`
	// Detail is a rendered one-line description.
	Detail string `json:"detail"`
}

// Watchdog is the streaming drain-anomaly detector: it taps the
// device's telemetry recorder for battery and attribution events,
// closes a rolling window on a virtual-time ticker, and flags
//
//   - per-UID (and whole-device) drain-rate spikes against a rolling
//     baseline, and
//   - collateral-vs-direct divergence via the E-Android monitor's
//     collateral maps (skipped when the monitor is off),
//
// recording each finding as a KindAnomaly telemetry event, an optional
// structured log line, and a fan-out to subscribers (the obsv server's
// SSE channel). Single-goroutine, like everything else observing the
// engine; all thresholds and window closes run on virtual time, so
// findings are deterministic.
//
// Findings are raised only for user-quiet windows — windows containing
// no user touch (power.Manager.LastUserActivity). A user interacting
// with the device explains its energy: the benign scenes delegate to
// the camera at a user tap, so their (legitimate) collateral always
// lands in an interactive window. Every one of the paper's attacks, by
// contrast, sustains its drain after the user stops touching the
// device — that user-absent persistence is exactly what makes them
// attacks, and it is what the watchdog flags. History and baselines
// keep accumulating through interactive windows; only the judgement is
// suppressed.
type Watchdog struct {
	dev  *device.Device
	rec  *telemetry.Recorder
	opts WatchdogOptions
	log  *slog.Logger

	ticker   *sim.Ticker
	started  bool
	finished bool

	winStart sim.Time
	direct   map[app.UID]float64 // joules attributed this window
	drainJ   float64             // battery joules drained this window

	hist    map[app.UID][]float64 // closed-window rates, newest last
	devHist []float64
	lastCol map[app.UID]float64 // cumulative collateral at last close

	findings []Finding
	dropped  int
	subs     []func(Finding)

	stats WindowStats
}

// WindowStats counts the watchdog's closed windows by disposition. The
// corpus replay harness uses these as trial counts for window-level
// false-positive rates: every judged (user-quiet) window is one Bernoulli
// trial, flagged or clean.
type WindowStats struct {
	// Total is every closed window, judged or not.
	Total int `json:"total"`
	// Interactive windows contained user activity and were not judged.
	Interactive int `json:"interactive"`
	// Judged windows were user-quiet and ran the full detector.
	Judged int `json:"judged"`
	// Flagged judged windows produced at least one finding.
	Flagged int `json:"flagged"`
}

// NewWatchdog builds a watchdog over dev. The device must carry an
// enabled telemetry recorder — the watchdog consumes its event tap.
// The device's Config.Logger, if any, receives one Warn per finding.
func NewWatchdog(dev *device.Device, opts WatchdogOptions) (*Watchdog, error) {
	if dev == nil {
		return nil, fmt.Errorf("obsv: nil device")
	}
	if !dev.Telemetry.Enabled() {
		return nil, fmt.Errorf("obsv: watchdog needs an enabled telemetry recorder (device.Config.Telemetry)")
	}
	opts.fill()
	return &Watchdog{
		dev:     dev,
		rec:     dev.Telemetry,
		opts:    opts,
		log:     dev.Log,
		direct:  make(map[app.UID]float64),
		hist:    make(map[app.UID][]float64),
		lastCol: make(map[app.UID]float64),
	}, nil
}

// Subscribe registers fn to receive every finding as it is recorded
// (the obsv server's SSE feed). Call before Start.
func (w *Watchdog) Subscribe(fn func(Finding)) { w.subs = append(w.subs, fn) }

// Start installs the telemetry tap and the window ticker. Idempotent.
func (w *Watchdog) Start() {
	if w.started {
		return
	}
	w.started = true
	w.winStart = w.dev.Engine.Now()
	w.rec.SetTap(w.onEvent)
	w.ticker = w.dev.Engine.Every(sim.Duration(w.opts.Window), "obsv.watchdog", w.tick)
}

// Finish stops the detector, closes the partial final window, releases
// the telemetry tap, and returns the findings. Idempotent.
func (w *Watchdog) Finish() []Finding {
	if w.started && !w.finished {
		w.finished = true
		w.ticker.Stop()
		w.dev.Meter.Flush()
		w.closeWindow(w.dev.Engine.Now())
		w.rec.SetTap(nil)
	}
	return w.Findings()
}

// Findings returns a copy of the recorded findings.
func (w *Watchdog) Findings() []Finding {
	if len(w.findings) == 0 {
		return nil
	}
	out := make([]Finding, len(w.findings))
	copy(out, w.findings)
	return out
}

// Dropped reports findings discarded beyond MaxFindings.
func (w *Watchdog) Dropped() int { return w.dropped }

// Stats reports the closed-window counters accumulated so far.
func (w *Watchdog) Stats() WindowStats { return w.stats }

// onEvent is the telemetry tap: it accumulates the current window's
// per-UID attribution and battery drain. KindAnomaly events (the
// watchdog's own output) fall through the switch, so recording a
// finding cannot re-enter the detector.
func (w *Watchdog) onEvent(ev telemetry.Event) {
	switch ev.Kind {
	case telemetry.KindAttribution:
		w.direct[ev.UID] += ev.V0
	case telemetry.KindBattery:
		w.drainJ += ev.V0
	}
}

// tick fires once per window on the virtual clock.
func (w *Watchdog) tick() {
	// Settle accounting up to the window edge; the flushed attribution
	// events land in the closing window via the tap, synchronously.
	w.dev.Meter.Flush()
	w.closeWindow(w.dev.Engine.Now())
}

// closeWindow judges the window ending at now and resets accumulators.
func (w *Watchdog) closeWindow(now sim.Time) {
	span := now.Sub(w.winStart)
	if span <= 0 {
		return
	}
	secs := time.Duration(span).Seconds()

	// A window the user touched is never judged: interaction explains
	// drain. Attacks persist into the quiet windows that follow.
	quiet := w.dev.Power.LastUserActivity().Before(w.winStart)

	w.stats.Total++
	if quiet {
		w.stats.Judged++
	} else {
		w.stats.Interactive++
	}
	preFindings := len(w.findings) + w.dropped

	// Per-UID spikes, judged and appended to history in sorted UID
	// order over the union of current and historical UIDs, so
	// baselines decay deterministically when an app goes quiet.
	uids := make([]app.UID, 0, len(w.direct)+len(w.hist))
	seen := make(map[app.UID]bool, cap(uids))
	for uid := range w.direct {
		uids = append(uids, uid)
		seen[uid] = true
	}
	for uid := range w.hist {
		if !seen[uid] {
			uids = append(uids, uid)
		}
	}
	sort.Slice(uids, func(i, j int) bool { return uids[i] < uids[j] })
	for _, uid := range uids {
		rate := w.direct[uid] / secs * 1000 // mW
		if h := w.hist[uid]; quiet && len(h) >= w.opts.Warmup {
			base := mean(h)
			if rate >= w.opts.MinRateMW && rate > w.opts.SpikeFactor*base {
				w.record(Finding{
					T: now, Signal: SignalDrainSpike, UID: uid,
					Label: w.dev.Packages.Label(uid), RateMW: rate, BaselineMW: base,
					Detail: fmt.Sprintf("%s draining %.0f mW against a %.0f mW baseline",
						w.dev.Packages.Label(uid), rate, base),
				})
			}
		}
		w.hist[uid] = pushRate(w.hist[uid], rate, w.opts.Baseline)
	}

	// Whole-device spike against its own rolling baseline.
	devRate := w.drainJ / secs * 1000
	if quiet && len(w.devHist) >= w.opts.Warmup {
		base := mean(w.devHist)
		if devRate >= w.opts.MinRateMW && devRate > w.opts.SpikeFactor*base {
			w.record(Finding{
				T: now, Signal: SignalDeviceSpike, UID: app.UIDNone,
				Label: "device", RateMW: devRate, BaselineMW: base,
				Detail: fmt.Sprintf("device draining %.0f mW against a %.0f mW baseline", devRate, base),
			})
		}
	}
	w.devHist = pushRate(w.devHist, devRate, w.opts.Baseline)

	// Collateral divergence: energy landing in an app's collateral map
	// much faster than in its own ledger. This is the esDiagnose
	// signal — every one of the paper's attacks sustains it through
	// user-quiet windows; the benign scenes' camera delegation is
	// collateral too, but always inside an interactive window.
	if mon := w.dev.EAndroid; mon != nil {
		for _, uid := range mon.Drivers() {
			var col float64
			for _, e := range mon.CollateralMap(uid) {
				col += e.EnergyJ
			}
			delta := col - w.lastCol[uid]
			w.lastCol[uid] = col
			colRate := delta / secs * 1000
			directJ := w.direct[uid]
			if quiet && colRate >= w.opts.MinCollateralMW && delta > w.opts.DivergenceRatio*directJ {
				directRate := directJ / secs * 1000
				w.record(Finding{
					T: now, Signal: SignalDivergence, UID: uid,
					Label: w.dev.Packages.Label(uid), RateMW: colRate, BaselineMW: directRate,
					Detail: fmt.Sprintf("%s drives %.0f mW of collateral energy while drawing %.0f mW itself",
						w.dev.Packages.Label(uid), colRate, directRate),
				})
			}
		}
	}

	if quiet && len(w.findings)+w.dropped > preFindings {
		w.stats.Flagged++
	}

	// Traced devices record each closed window as an engine-phase span
	// carrying the window's finding count — virtual-time endpoints, so
	// the span is as deterministic as the judgement itself.
	w.dev.Trace.Phase(trace.PhaseWatchdogWindow, w.winStart, now,
		float64(len(w.findings)+w.dropped-preFindings))

	for uid := range w.direct {
		delete(w.direct, uid)
	}
	w.drainJ = 0
	w.winStart = now
}

// record stores, exports and fans out one finding.
func (w *Watchdog) record(f Finding) {
	if len(w.findings) < w.opts.MaxFindings {
		w.findings = append(w.findings, f)
	} else {
		w.dropped++
	}
	w.rec.RecordAnomaly(f.T, f.UID, f.Signal, f.Detail, f.RateMW, f.BaselineMW)
	if w.log != nil {
		w.log.Warn("drain anomaly", "signal", f.Signal, "uid", int64(f.UID),
			"label", f.Label, "rate_mw", f.RateMW, "baseline_mw", f.BaselineMW)
	}
	for _, fn := range w.subs {
		fn(f)
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var t float64
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

// pushRate appends r, keeping at most limit entries (newest last).
func pushRate(h []float64, r float64, limit int) []float64 {
	h = append(h, r)
	if len(h) > limit {
		h = h[len(h)-limit:]
	}
	return h
}
