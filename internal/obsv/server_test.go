package obsv

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/accounting"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

func fleetProgress(i int) fleet.Progress {
	return fleet.Progress{Index: i, Done: i + 1, Total: 3, BatteryPct: 90 - float64(i)}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestServerSmoke is the end-to-end pass the obsv-smoke make target
// mirrors: serve a finished simulation on an ephemeral port, probe
// every endpoint, read one SSE tick, shut down cleanly.
func TestServerSmoke(t *testing.T) {
	w, err := scenario.NewWorld(device.Config{
		EAndroid:  true,
		Policy:    accounting.BatteryStats,
		Telemetry: telemetry.New(telemetry.Options{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	wd, err := NewWatchdog(w.Dev, WatchdogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wd.Subscribe(srv.PublishFinding)
	wd.Start()
	fc := AttachFlame(w.Dev)

	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	// Liveness is up before any data; readiness is not.
	if code, body := get(t, base+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _ := get(t, base+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before publish = %d, want 503", code)
	}

	if err := w.ForceScreenOn(); err != nil {
		t.Fatal(err)
	}
	if err := w.Attack6WakelockScreen(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	wd.Finish()
	srv.PublishSnapshot(w.Dev.Telemetry.Metrics().Snapshot())
	srv.PublishFlame(fc.Fold())

	if code, body := get(t, base+"/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Fatalf("/readyz after publish = %d %q", code, body)
	}

	// /metrics parses as text exposition and carries the anomaly count.
	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	samples := parseProm(t, body)
	if samples["obsv_anomalies"] < 1 {
		t.Fatalf("obsv_anomalies = %v, want >= 1 (attack #6 ran)\n%s", samples["obsv_anomalies"], body)
	}

	// /watchdog returns the findings as JSON.
	code, body = get(t, base+"/watchdog")
	if code != 200 {
		t.Fatalf("/watchdog = %d", code)
	}
	var wp struct {
		Findings []Finding `json:"findings"`
	}
	if err := json.Unmarshal([]byte(body), &wp); err != nil {
		t.Fatalf("/watchdog JSON: %v\n%s", err, body)
	}
	if len(wp.Findings) == 0 {
		t.Fatal("/watchdog has no findings after attack #6")
	}

	// Flame endpoints.
	if code, body := get(t, base+"/flame.txt"); code != 200 || !strings.Contains(body, "screen;Screen;(display)") {
		t.Fatalf("/flame.txt = %d %q", code, body)
	}
	if code, body := get(t, base+"/flame"); code != 200 || !strings.Contains(body, "<!DOCTYPE html>") {
		t.Fatalf("/flame = %d", code)
	}

	// pprof is mounted.
	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}

	// One SSE tick: the initial state frame replays the findings.
	frame := readSSEFrame(t, base+"/watchdog/events")
	if !strings.HasPrefix(frame, "event: state\ndata: ") {
		t.Fatalf("SSE frame = %q", frame)
	}
	if !strings.Contains(frame, SignalDivergence) && !strings.Contains(frame, SignalDrainSpike) &&
		!strings.Contains(frame, SignalDeviceSpike) {
		t.Fatalf("SSE state frame carries no findings: %q", frame)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// readSSEFrame reads one complete SSE frame (up to the blank line) from
// a streaming endpoint, then disconnects.
func readSSEFrame(t *testing.T, url string) string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var b strings.Builder
	r := bufio.NewReader(resp.Body)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE stream: %v (got %q)", err, b.String())
		}
		if line == "\n" {
			return b.String() + line
		}
		b.WriteString(line)
	}
}

// TestServerFleetEndpoints drives the tracker the way fleet.Run does
// and checks both the JSON view and the SSE live feed.
func TestServerFleetEndpoints(t *testing.T) {
	srv := NewServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	if code, _ := get(t, base+"/fleet"); code != http.StatusNotFound {
		t.Fatalf("/fleet with no tracker = %d, want 404", code)
	}

	hook := srv.TrackFleet(3)
	for i := 0; i < 2; i++ {
		hook(fleetProgress(i))
	}
	code, body := get(t, base+"/fleet")
	if code != 200 {
		t.Fatalf("/fleet = %d", code)
	}
	var st FleetState
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Total != 3 || st.Done != 2 || len(st.Devices) != 2 {
		t.Fatalf("fleet state = %+v", st)
	}
	if st.Devices[0].Index != 0 || st.Devices[1].Index != 1 {
		t.Fatalf("devices not index-sorted: %+v", st.Devices)
	}

	frame := readSSEFrame(t, base+"/fleet/events")
	if !strings.HasPrefix(frame, "event: state\ndata: ") || !strings.Contains(frame, `"total":3`) {
		t.Fatalf("fleet SSE frame = %q", frame)
	}
}
