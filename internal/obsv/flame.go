package obsv

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/app"
	"repro/internal/device"
	"repro/internal/hw"
)

// FlameCollector folds the meter's attribution stream into an energy
// flame graph: every accrued interval's per-component joules are split
// across the framework entities (activities, services, ...) that
// demanded that component, producing collapsed stacks of the form
//
//	component;app;entity
//
// weighted by joules. The split uses the aggregator's live demand
// entries at flush time — exact for steady state, approximate across a
// transition boundary (the energy totals stay exact; only the entity
// attribution of the single interval straddling a demand change is
// heuristic). Screen energy folds under "screen;Screen;(display)" and
// the CPU idle baseline under "cpu;System;(idle)", mirroring the
// battery interface's pseudo-UIDs.
//
// Everything is deterministic: aggregator entries iterate in insertion
// order, interval rows in ascending UID order, and the fold sorts stack
// lines, so two identical simulations produce byte-identical output for
// any fleet worker count. A FlameCollector is single-goroutine, like
// the meter that feeds it.
type FlameCollector struct {
	agg *hw.Aggregator
	pm  *app.PackageManager

	// stacks accumulates under allocation-free struct keys (the frame
	// string is interned via the caches below, so hashing it allocates
	// nothing); Fold renders the collapsed string form once at the end.
	stacks  map[stackKey]float64
	screenJ float64
	systemJ float64
	frames  map[any]string     // per-entity frame cache
	labels  map[app.UID]string // per-UID frame cache

	// ents is the per-flush scratch snapshot of the aggregator's
	// entries, rebuilt on every Accrue.
	ents []entityRef
}

// stackKey identifies one accumulation bucket without building its
// collapsed string on the hot path.
type stackKey struct {
	comp  hw.Component
	uid   app.UID
	frame string
}

type entityRef struct {
	uid    app.UID
	frame  string
	demand hw.Demand
}

var _ hw.Sink = (*FlameCollector)(nil)

// AttachFlame builds a collector over dev's aggregator and package
// manager and registers it as a meter sink. Call before running the
// scenario; read the result with Fold after.
func AttachFlame(dev *device.Device) *FlameCollector {
	c := NewFlameCollector(dev.Aggregator, dev.Packages)
	dev.Meter.AddSink(c)
	return c
}

// NewFlameCollector builds an unattached collector; the caller wires it
// with meter.AddSink.
func NewFlameCollector(agg *hw.Aggregator, pm *app.PackageManager) *FlameCollector {
	return &FlameCollector{
		agg:    agg,
		pm:     pm,
		stacks: make(map[stackKey]float64),
		frames: make(map[any]string),
		labels: make(map[app.UID]string),
	}
}

// Accrue implements hw.Sink.
func (c *FlameCollector) Accrue(iv hw.Interval) {
	c.ents = c.ents[:0]
	c.agg.EachEntry(func(key any, uid app.UID, d hw.Demand) {
		c.ents = append(c.ents, entityRef{uid: uid, frame: c.frameFor(key), demand: d})
	})
	iv.EachApp(func(uid app.UID, u *hw.UsageRow) {
		for _, comp := range hw.Components() {
			if j := u.J(comp); j != 0 {
				c.split(uid, comp, j)
			}
		}
	})
	c.screenJ += iv.ScreenJ
	c.systemJ += iv.SystemJ
}

// split distributes one app's component energy across its live demand
// entries: CPU joules proportionally to each entity's CPU utilization,
// peripheral joules equally across the entities holding that
// peripheral. Energy with no matching entity (e.g. background residue
// after the last component died) keeps the "(self)" leaf.
func (c *FlameCollector) split(uid app.UID, comp hw.Component, j float64) {
	var total float64
	for _, e := range c.ents {
		if e.uid == uid {
			total += entityWeight(comp, e.demand)
		}
	}
	if total <= 0 {
		c.stacks[stackKey{comp, uid, "(self)"}] += j
		return
	}
	for _, e := range c.ents {
		if e.uid != uid {
			continue
		}
		if w := entityWeight(comp, e.demand); w > 0 {
			c.stacks[stackKey{comp, uid, e.frame}] += j * w / total
		}
	}
}

// entityWeight is the share weight one demand entry contributes for a
// component: utilization for CPU, a 0/1 hold flag for peripherals.
func entityWeight(comp hw.Component, d hw.Demand) float64 {
	switch comp {
	case hw.CPU:
		return d.CPUUtil
	case hw.Camera:
		if d.Camera {
			return 1
		}
	case hw.GPS:
		if d.GPS {
			return 1
		}
	case hw.WiFi:
		if d.WiFi {
			return 1
		}
	case hw.Audio:
		if d.Audio {
			return 1
		}
	}
	return 0
}

// frameFor renders an aggregator entry key as a stack frame, cached per
// key: entities exposing FullName (activities, services) use it,
// anything else falls back to its type name.
func (c *FlameCollector) frameFor(key any) string {
	if f, ok := c.frames[key]; ok {
		return f
	}
	var f string
	if named, ok := key.(interface{ FullName() string }); ok {
		f = named.FullName()
	} else {
		f = "(" + strings.TrimPrefix(fmt.Sprintf("%T", key), "*") + ")"
	}
	f = sanitizeFrame(f)
	c.frames[key] = f
	return f
}

// labelFor renders a UID's stack frame, cached: the package label plus
// "#uid" so two apps sharing a label never merge.
func (c *FlameCollector) labelFor(uid app.UID) string {
	if l, ok := c.labels[uid]; ok {
		return l
	}
	l := sanitizeFrame(fmt.Sprintf("%s#%d", c.pm.Label(uid), uid))
	c.labels[uid] = l
	return l
}

// sanitizeFrame keeps frames legal for the collapsed-stack grammar:
// semicolons separate frames and spaces separate the weight, so both
// become underscores.
func sanitizeFrame(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case ';', ' ', '\t', '\n':
			return '_'
		}
		return r
	}, s)
}

// Fold freezes the collector into a Flame, rendering the collapsed
// string form of each bucket once.
func (c *FlameCollector) Fold() *Flame {
	out := make(map[string]float64, len(c.stacks)+2)
	for k, v := range c.stacks {
		out[k.comp.String()+";"+c.labelFor(k.uid)+";"+k.frame] += v
	}
	if c.screenJ != 0 {
		out["screen;Screen;(display)"] += c.screenJ
	}
	if c.systemJ != 0 {
		out["cpu;System;(idle)"] += c.systemJ
	}
	return &Flame{Stacks: out}
}

// Flame is a folded energy flame graph: collapsed stacks to joules.
type Flame struct {
	Stacks map[string]float64
}

// MergeFlames sums flames stack-by-stack in argument order, so a fleet
// merge in device-index order is byte-deterministic for any worker
// count. Nil flames are skipped.
func MergeFlames(flames ...*Flame) *Flame {
	out := &Flame{Stacks: make(map[string]float64)}
	for _, f := range flames {
		if f == nil {
			continue
		}
		keys := make([]string, 0, len(f.Stacks))
		for k := range f.Stacks {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			out.Stacks[k] += f.Stacks[k]
		}
	}
	return out
}

// TotalJ sums the flame's energy.
func (f *Flame) TotalJ() float64 {
	keys := make([]string, 0, len(f.Stacks))
	for k := range f.Stacks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var t float64
	for _, k := range keys {
		t += f.Stacks[k]
	}
	return t
}

// WriteCollapsed renders the flame in Brendan Gregg's collapsed-stack
// format — "frame;frame;frame weight" — weighted in integer
// microjoules, one line per stack, sorted. The output feeds standard
// flamegraph tooling (flamegraph.pl, speedscope, inferno) unchanged.
func (f *Flame) WriteCollapsed(w io.Writer) error {
	keys := make([]string, 0, len(f.Stacks))
	for k := range f.Stacks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		uj := int64(math.Round(f.Stacks[k] * 1e6))
		if uj <= 0 {
			continue
		}
		fmt.Fprintf(&b, "%s %d\n", k, uj)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// flameNode is one frame of the HTML report's icicle tree.
type flameNode struct {
	name     string
	selfJ    float64
	totalJ   float64
	children map[string]*flameNode
	order    []string
}

func (n *flameNode) child(name string) *flameNode {
	if c, ok := n.children[name]; ok {
		return c
	}
	c := &flameNode{name: name, children: make(map[string]*flameNode)}
	n.children[name] = c
	n.order = append(n.order, name)
	return c
}

// WriteHTML renders a self-contained static HTML icicle report of the
// flame — no external assets, deterministic bytes. title heads the
// page.
func (f *Flame) WriteHTML(w io.Writer, title string) error {
	root := &flameNode{name: "all", children: make(map[string]*flameNode)}
	keys := make([]string, 0, len(f.Stacks))
	for k := range f.Stacks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		j := f.Stacks[k]
		root.totalJ += j
		n := root
		for _, frame := range strings.Split(k, ";") {
			n = n.child(frame)
			n.totalJ += j
		}
		n.selfJ += j
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>%s</title><style>
body{font:13px/1.4 monospace;margin:16px;background:#fff;color:#222}
.frame{box-sizing:border-box;overflow:hidden;white-space:nowrap;
border:1px solid #fff;border-radius:2px;padding:1px 3px;background:#e66}
.l1{background:#f5a35c}.l2{background:#f6c85f}.l3{background:#9dd866}
.pad{box-sizing:border-box}
.row{display:flex;width:100%%}
</style></head><body>
<h1>%s</h1>
<p>total %.3f J · %d stacks · energy flame graph (width &prop; joules)</p>
`, htmlEscape(title), htmlEscape(title), root.totalJ, len(keys))
	if root.totalJ > 0 {
		writeFlameRows(&b, []*flameNode{root}, root.totalJ, 0)
	}
	b.WriteString("</body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeFlameRows emits one flex row per depth, recursing breadth-first.
// Self energy (including whole leaf frames) turns into invisible pad
// nodes in the next row, so every frame stays horizontally aligned
// under its parent. The depth cap bounds the pad recursion; real stacks
// are three frames deep.
func writeFlameRows(b *strings.Builder, level []*flameNode, totalJ float64, depth int) {
	if depth > 6 {
		return
	}
	var next []*flameNode
	anyFrame := false
	b.WriteString(`<div class="row">`)
	for _, n := range level {
		pct := n.totalJ / totalJ * 100
		if n.name == "" {
			fmt.Fprintf(b, `<div class="pad" style="width:%.4f%%"></div>`, pct)
		} else {
			anyFrame = true
			fmt.Fprintf(b, `<div class="frame l%d" style="width:%.4f%%" title="%s: %.4f J">%s</div>`,
				depth%4, pct, htmlEscape(n.name), n.totalJ, htmlEscape(n.name))
		}
		for _, name := range n.order {
			next = append(next, n.children[name])
		}
		if pad := n.totalJ - childrenJ(n); pad > 1e-12 {
			next = append(next, &flameNode{name: "", totalJ: pad})
		}
	}
	b.WriteString("</div>\n")
	if anyFrame {
		writeFlameRows(b, next, totalJ, depth+1)
	}
}

func childrenJ(n *flameNode) float64 {
	var t float64
	for _, name := range n.order {
		t += n.children[name].totalJ
	}
	return t
}

func htmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
