package obsv

import (
	"bufio"
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestServerTimeoutsSet pins the slowloris hardening: the underlying
// http.Server must carry header-read and idle timeouts. (Before this
// regression test both were zero — a client dribbling one header byte
// per minute could hold a connection open forever.)
func TestServerTimeoutsSet(t *testing.T) {
	s := NewServer()
	if s.srv.ReadHeaderTimeout <= 0 {
		t.Fatalf("ReadHeaderTimeout = %v, want > 0", s.srv.ReadHeaderTimeout)
	}
	if s.srv.IdleTimeout <= 0 {
		t.Fatalf("IdleTimeout = %v, want > 0", s.srv.IdleTimeout)
	}
}

// TestShutdownClosesSSEPromptly: a live SSE subscriber must not hold
// Shutdown to its deadline — the brokers close first, so the stream
// handler returns and Shutdown completes quickly.
func TestShutdownClosesSSEPromptly(t *testing.T) {
	s := NewServer()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/watchdog/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Read the initial state frame so the subscription is fully live.
	br := bufio.NewReader(resp.Body)
	if line, err := br.ReadString('\n'); err != nil || !strings.HasPrefix(line, "event:") {
		t.Fatalf("initial SSE frame = %q, %v", line, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("Shutdown took %v with a live SSE subscriber — streams not closed promptly", wall)
	}
	// The stream must have ended.
	if _, err := br.ReadString(0); err == nil {
		t.Fatal("SSE stream still open after Shutdown")
	}
}

// TestShutdownRunsHooksOnce: OnShutdown hooks fire at the start of
// Shutdown, exactly once even when Shutdown is called twice (the CLI
// error path can double-shutdown).
func TestShutdownRunsHooksOnce(t *testing.T) {
	s := NewServer()
	calls := 0
	s.OnShutdown(func() { calls++ })
	ctx := context.Background()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("shutdown hooks ran %d times, want 1", calls)
	}
}

// TestBrokerDropsStuckSubscriber: a subscriber that never drains its
// channel is disconnected after sseMaxMisses consecutive missed frames
// — and counted — instead of being silently skipped forever.
func TestBrokerDropsStuckSubscriber(t *testing.T) {
	b := NewSSEBroker()
	stuck := b.Subscribe()
	live := b.Subscribe()

	// Fill the stuck subscriber's buffer, then miss sseMaxMisses times,
	// draining the live subscriber after every publish so only the
	// stuck one accumulates misses.
	total := sseSubBuffer + sseMaxMisses
	for i := 0; i < total; i++ {
		b.Publish("frame\n\n")
		<-live
	}
	if got := b.Dropped(); got != 1 {
		t.Fatalf("Dropped() = %d after %d undrained frames, want 1", got, total)
	}
	if got := b.Subscribers(); got != 1 {
		t.Fatalf("Subscribers() = %d, want 1 (stuck one removed)", got)
	}
	// The stuck channel was closed: drain the buffered frames, then see
	// the close.
	n := 0
	for range stuck {
		n++
	}
	if n != sseSubBuffer {
		t.Fatalf("stuck subscriber drained %d buffered frames, want %d", n, sseSubBuffer)
	}
	// Unsubscribing an already-dropped channel is a no-op.
	b.Unsubscribe(stuck)
	b.CloseAll()
}

// TestBrokerMissResetOnDelivery: an intermittently-slow subscriber that
// does drain is never dropped — only *consecutive* misses count.
func TestBrokerMissResetOnDelivery(t *testing.T) {
	b := NewSSEBroker()
	ch := b.Subscribe()
	for round := 0; round < 3; round++ {
		// Fill the buffer and miss a few times — but fewer than the
		// drop threshold.
		for i := 0; i < sseSubBuffer+sseMaxMisses/2; i++ {
			b.Publish("x\n\n")
		}
		// Drain; the next delivery resets the miss streak.
	drain:
		for {
			select {
			case <-ch:
			default:
				break drain
			}
		}
	}
	if got := b.Dropped(); got != 0 {
		t.Fatalf("Dropped() = %d for a draining subscriber, want 0", got)
	}
	b.CloseAll()
}

// TestMetricsSourceMerged: snapshots from AddMetricsSource appear on
// /metrics alongside the published snapshot and the server's own SSE
// drop counter.
func TestMetricsSourceMerged(t *testing.T) {
	s := NewServer()
	s.AddMetricsSource(func() *telemetry.Snapshot {
		m := telemetry.NewMetrics()
		m.Counter("jobs_test_counter").Add(7)
		return m.Snapshot()
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, "jobs_test_counter 7") {
		t.Fatalf("/metrics missing source counter:\n%s", body)
	}
	if !strings.Contains(body, "obsv_sse_dropped_subscribers") {
		t.Fatalf("/metrics missing SSE drop counter:\n%s", body)
	}
}
