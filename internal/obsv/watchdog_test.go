package obsv

import (
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// TestWatchdogRequiresTelemetry: a watchdog without an enabled recorder
// is a construction error, not a silent no-op.
func TestWatchdogRequiresTelemetry(t *testing.T) {
	dev, err := device.New(device.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWatchdog(dev, WatchdogOptions{}); err == nil {
		t.Fatal("watchdog accepted a device without telemetry")
	}
	if _, err := NewWatchdog(nil, WatchdogOptions{}); err == nil {
		t.Fatal("watchdog accepted a nil device")
	}
}

// TestWatchdogSpikeDetection drives the detector with a synthetic
// attribution stream: a quiet baseline long enough to pass warmup, then
// a drain burst. Both the per-UID and the device-level spike signals
// must fire — and only after the burst.
func TestWatchdogSpikeDetection(t *testing.T) {
	dev, err := device.New(device.Config{Telemetry: telemetry.New(telemetry.Options{})})
	if err != nil {
		t.Fatal(err)
	}
	const uid = app.UID(10001)
	wd, err := NewWatchdog(dev, WatchdogOptions{Window: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	wd.Start()
	// 1 Hz feed: 5 mW until t=50s, then 5000 mW.
	dev.Engine.Every(sim.Duration(time.Second), "feed", func() {
		now := dev.Engine.Now()
		j := 0.005
		if time.Duration(now) >= 50*time.Second {
			j = 5.0
		}
		dev.Telemetry.RecordAttribution(now, uid, j)
		dev.Telemetry.RecordBattery(now, j, 80)
	})
	if err := dev.Run(70 * time.Second); err != nil {
		t.Fatal(err)
	}
	findings := wd.Finish()
	var uidSpike, devSpike *Finding
	for i := range findings {
		f := &findings[i]
		if time.Duration(f.T) <= 50*time.Second {
			t.Fatalf("finding before the burst: %+v", f)
		}
		// Keep the FIRST spike of each kind: later windows fold the
		// burst into the rolling baseline, inflating BaselineMW.
		switch {
		case f.Signal == SignalDrainSpike && f.UID == uid && uidSpike == nil:
			uidSpike = f
		case f.Signal == SignalDeviceSpike && devSpike == nil:
			devSpike = f
		}
	}
	if uidSpike == nil {
		t.Fatalf("no %s for uid %d in %+v", SignalDrainSpike, uid, findings)
	}
	if devSpike == nil {
		t.Fatalf("no %s in %+v", SignalDeviceSpike, findings)
	}
	if uidSpike.RateMW < 1000 || uidSpike.BaselineMW > 100 {
		t.Fatalf("implausible spike rates: %+v", uidSpike)
	}
	// The findings surfaced as telemetry events too.
	var anomalies int
	for _, ev := range dev.Telemetry.Events() {
		if ev.Kind == telemetry.KindAnomaly {
			anomalies++
		}
	}
	if anomalies != len(findings) {
		t.Fatalf("%d KindAnomaly events, want %d", anomalies, len(findings))
	}
}

// TestWatchdogQuietBaselineStaysClean: the same feed without a burst
// never alarms.
func TestWatchdogQuietBaselineStaysClean(t *testing.T) {
	dev, err := device.New(device.Config{Telemetry: telemetry.New(telemetry.Options{})})
	if err != nil {
		t.Fatal(err)
	}
	wd, err := NewWatchdog(dev, WatchdogOptions{Window: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	wd.Start()
	dev.Engine.Every(sim.Duration(time.Second), "feed", func() {
		dev.Telemetry.RecordAttribution(dev.Engine.Now(), 10001, 0.005)
		dev.Telemetry.RecordBattery(dev.Engine.Now(), 0.005, 80)
	})
	if err := dev.Run(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if f := wd.Finish(); len(f) != 0 {
		t.Fatalf("quiet baseline produced findings: %+v", f)
	}
}

// TestWatchdogUserWindowsSuppressed: a burst inside a window the user
// touched is not judged; the same burst with the user absent is.
func TestWatchdogUserWindowsSuppressed(t *testing.T) {
	run := func(touch bool) []Finding {
		dev, err := device.New(device.Config{Telemetry: telemetry.New(telemetry.Options{})})
		if err != nil {
			t.Fatal(err)
		}
		wd, err := NewWatchdog(dev, WatchdogOptions{Window: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		wd.Start()
		dev.Engine.Every(sim.Duration(time.Second), "feed", func() {
			now := dev.Engine.Now()
			j := 0.005
			if time.Duration(now) >= 50*time.Second {
				j = 5.0
			}
			if touch {
				// The user keeps tapping: every window is interactive.
				dev.Power.UserActivity()
			}
			dev.Telemetry.RecordAttribution(now, 10001, j)
		})
		if err := dev.Run(70 * time.Second); err != nil {
			t.Fatal(err)
		}
		return wd.Finish()
	}
	if f := run(true); len(f) != 0 {
		t.Fatalf("interactive windows were judged: %+v", f)
	}
	if f := run(false); len(f) == 0 {
		t.Fatal("user-absent burst not flagged")
	}
}

// TestWatchdogFinishIdempotent: Finish twice returns the same findings
// and releases the tap.
func TestWatchdogFinishIdempotent(t *testing.T) {
	dev, err := device.New(device.Config{Telemetry: telemetry.New(telemetry.Options{})})
	if err != nil {
		t.Fatal(err)
	}
	wd, err := NewWatchdog(dev, WatchdogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wd.Start()
	if err := dev.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	a := wd.Finish()
	b := wd.Finish()
	if len(a) != len(b) {
		t.Fatalf("Finish not idempotent: %d vs %d findings", len(a), len(b))
	}
}
