package obsv

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func promSnapshot(t *testing.T) *telemetry.Snapshot {
	t.Helper()
	r := telemetry.New(telemetry.Options{})
	r.RecordSimEvent(0, "boot", 1)
	r.RecordAttribution(1e9, 10001, 2.5)
	r.RecordAnomaly(2e9, 10001, "drain-spike", "x", 120, 20)
	r.Metrics().Histogram("hw.mw.cpu", telemetry.PowerBuckets).Observe(42)
	return r.Metrics().Snapshot()
}

// parseProm validates the text exposition line grammar and returns
// sample values by series name.
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			// HELP and other comments are legal exposition.
			continue
		}
		// Exemplars ride after a '#' on bucket sample lines; the sample
		// value is what precedes them.
		if i := strings.Index(line, " # "); i >= 0 {
			line = line[:i]
		}
		// "name value" or `name_bucket{le="x"} value`.
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		samples[line[:idx]] = v
	}
	return samples
}

func TestWritePrometheusShapeAndValues(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, promSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	samples := parseProm(t, text)
	if v := samples["obsv_anomalies"]; v != 1 {
		t.Fatalf("obsv_anomalies = %v, want 1", v)
	}
	if v := samples["acct_attributions"]; v != 1 {
		t.Fatalf("acct_attributions = %v, want 1", v)
	}
	if v := samples["hw_mw_cpu_count"]; v != 1 {
		t.Fatalf("hw_mw_cpu_count = %v, want 1", v)
	}
	if v := samples["hw_mw_cpu_sum"]; v != 42 {
		t.Fatalf("hw_mw_cpu_sum = %v, want 42", v)
	}
	if !strings.Contains(text, `_bucket{le="+Inf"} 1`) {
		t.Fatalf("missing +Inf bucket:\n%s", text)
	}
	// Cumulative buckets never decrease.
	var last float64 = -1
	for _, line := range strings.Split(text, "\n") {
		if !strings.Contains(line, "hw_mw_cpu_bucket") {
			continue
		}
		v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < last {
			t.Fatalf("bucket counts decreased at %q", line)
		}
		last = v
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	s := promSnapshot(t)
	var a, b strings.Builder
	if err := WritePrometheus(&a, s); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, s); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two renders of the same snapshot differ")
	}
}

func TestWritePrometheusNilSnapshot(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, nil); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("nil snapshot rendered %q", b.String())
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"hw.mw.cpu":     "hw_mw_cpu",
		"sim:events":    "sim:events",
		"9lives":        "_lives",
		"ok_name":       "ok_name",
		"weird-name/x!": "weird_name_x_",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
