package obsv

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Version labels the eandroid_build_info metric; release builds may
// override it via -ldflags "-X repro/internal/obsv.Version=...".
var Version = "dev"

// traceRing bounds how many finished trace summaries /trace retains
// (newest last; older summaries roll off).
const traceRing = 32

// Server is the live observability plane: a stdlib net/http server
// exposing
//
//	/metrics          Prometheus text exposition of the latest snapshot
//	/healthz, /readyz liveness / readiness
//	/debug/pprof/     the standard Go profiling endpoints
//	/fleet            JSON fleet progress; /fleet/events is its SSE feed
//	/watchdog         JSON findings; /watchdog/events is its SSE feed
//	/flame            HTML energy flame report; /flame.txt collapsed stacks
//
// The simulation side stays single-goroutine: it publishes immutable
// values (snapshots, findings, flames) through atomic pointers and a
// mutex-guarded broker, and HTTP handlers only ever read those
// published values — the engine itself is never touched from a request
// goroutine, which is what keeps live serving compatible with the
// simulator's determinism.
type Server struct {
	mux *http.ServeMux
	srv *http.Server
	ln  net.Listener

	snap  atomic.Pointer[telemetry.Snapshot]
	flame atomic.Pointer[Flame]
	ready atomic.Bool

	watchMu  sync.Mutex
	findings []Finding

	watchSSE *SSEBroker
	fleetSSE *SSEBroker
	traceSSE *SSEBroker

	traceMu sync.Mutex
	traces  []*trace.Summary

	// wstats is the latest watchdog window-counter publication,
	// rendered as gauges on /metrics.
	wstats atomic.Pointer[WindowStats]

	// start anchors the process uptime gauge.
	start time.Time

	trackMu sync.Mutex
	tracker *FleetTracker

	// srcMu guards the extra metrics sources, raw-text appenders and
	// shutdown hooks that mounted subsystems (the jobs control plane)
	// register.
	srcMu    sync.Mutex
	sources  []func() *telemetry.Snapshot
	texts    []func(io.Writer)
	onClose  []func()
	hooksRan bool
}

// NewServer builds a server with all routes registered; nothing listens
// until Start.
func NewServer() *Server {
	s := &Server{
		mux:      http.NewServeMux(),
		watchSSE: NewSSEBroker(),
		fleetSSE: NewSSEBroker(),
		traceSSE: NewSSEBroker(),
		start:    time.Now(),
	}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.ready.Load() {
			http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux.HandleFunc("/fleet", s.handleFleet)
	s.mux.HandleFunc("/fleet/events", func(w http.ResponseWriter, r *http.Request) {
		s.fleetSSE.Serve(w, r, s.fleetStateFrame())
	})
	s.mux.HandleFunc("/watchdog", s.handleWatchdog)
	s.mux.HandleFunc("/watchdog/events", func(w http.ResponseWriter, r *http.Request) {
		s.watchSSE.Serve(w, r, s.watchdogStateFrame())
	})
	s.mux.HandleFunc("/flame", s.handleFlame)
	s.mux.HandleFunc("/flame.txt", s.handleFlameTxt)
	s.mux.HandleFunc("/trace", s.handleTrace)
	s.mux.HandleFunc("/trace/events", func(w http.ResponseWriter, r *http.Request) {
		s.traceSSE.Serve(w, r, s.traceStateFrame())
	})
	// ReadHeaderTimeout bounds how long a connection may dribble its
	// request headers (the slowloris hole an unset value leaves open);
	// IdleTimeout reclaims keep-alive connections that went quiet. SSE
	// streams are unaffected: both timers apply between requests, not to
	// a streaming response body.
	s.srv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	return s
}

// Handler exposes the route mux (for tests driving it without a
// listener).
func (s *Server) Handler() http.Handler { return s.mux }

// Mount registers an extra handler on the server's mux under pattern
// (Go 1.22 patterns: methods and wildcards allowed). The jobs control
// plane mounts its /jobs routes here so one server carries both planes.
func (s *Server) Mount(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// AddMetricsSource registers a snapshot source merged into every
// /metrics response alongside the published snapshot. Sources are
// called on each scrape and must be safe for concurrent use.
func (s *Server) AddMetricsSource(fn func() *telemetry.Snapshot) {
	s.srcMu.Lock()
	defer s.srcMu.Unlock()
	s.sources = append(s.sources, fn)
}

// AddTextSource registers a raw Prometheus-text appender written after
// the merged snapshot on every /metrics scrape. Labelled series (the
// jobs RED histograms with exemplars) use this path — the snapshot
// writer is label-free by design. Appenders must be safe for
// concurrent use.
func (s *Server) AddTextSource(fn func(io.Writer)) {
	s.srcMu.Lock()
	defer s.srcMu.Unlock()
	s.texts = append(s.texts, fn)
}

// OnShutdown registers a hook run at the start of Shutdown, before the
// HTTP server begins waiting for in-flight requests. Mounted subsystems
// use it to close their own SSE brokers so lingering streams end
// promptly instead of holding Shutdown to its deadline.
func (s *Server) OnShutdown(fn func()) {
	s.srcMu.Lock()
	defer s.srcMu.Unlock()
	s.onClose = append(s.onClose, fn)
}

// runShutdownHooks runs the registered hooks exactly once.
func (s *Server) runShutdownHooks() {
	s.srcMu.Lock()
	hooks := s.onClose
	ran := s.hooksRan
	s.hooksRan = true
	s.srcMu.Unlock()
	if ran {
		return
	}
	for _, fn := range hooks {
		fn()
	}
}

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// serves in a background goroutine. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Shutdown stops the server, waiting for in-flight requests up to ctx's
// deadline. SSE streams are closed first so Shutdown does not wait out
// their subscribers.
func (s *Server) Shutdown(ctx context.Context) error {
	s.runShutdownHooks()
	s.watchSSE.CloseAll()
	s.fleetSSE.CloseAll()
	s.traceSSE.CloseAll()
	return s.srv.Shutdown(ctx)
}

// AwaitShutdown blocks until SIGINT/SIGTERM arrives (or stop, when
// non-nil, closes — CLI tests use it to end a -serve wait immediately),
// then shuts the started server down with a short grace period. This is
// the CLIs' -serve tail: start early, publish after the run, then hand
// the process to the operator until Ctrl-C.
func (s *Server) AwaitShutdown(stop <-chan struct{}) error {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case <-sig:
	case <-stop:
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

// PublishSnapshot makes snap the /metrics payload. Call it from the
// simulation goroutine at safe points (between runs, after flushes);
// the handler only ever reads whole published snapshots.
func (s *Server) PublishSnapshot(snap *telemetry.Snapshot) {
	if snap == nil {
		return
	}
	s.snap.Store(snap)
	s.ready.Store(true)
}

// PublishFlame makes f the /flame payload.
func (s *Server) PublishFlame(f *Flame) {
	if f == nil {
		return
	}
	s.flame.Store(f)
}

// PublishFinding records a watchdog finding and pushes it on the
// /watchdog/events SSE channel. Wire it with wd.Subscribe(srv.PublishFinding).
func (s *Server) PublishFinding(f Finding) {
	s.watchMu.Lock()
	s.findings = append(s.findings, f)
	s.watchMu.Unlock()
	if data, err := json.Marshal(f); err == nil {
		s.watchSSE.Publish(SSEFrame("finding", string(data)))
	}
}

// PublishTrace records one finished operation's trace summary and
// pushes it on the /trace/events SSE channel. Like fleet progress this
// is the live, wall-clock side of the tracing split — the
// deterministic span tree ships in the job's trace.json artifact.
func (s *Server) PublishTrace(sum *trace.Summary) {
	if sum == nil {
		return
	}
	s.traceMu.Lock()
	s.traces = append(s.traces, sum)
	if len(s.traces) > traceRing {
		s.traces = s.traces[len(s.traces)-traceRing:]
	}
	s.traceMu.Unlock()
	if data, err := json.Marshal(sum); err == nil {
		s.traceSSE.Publish(SSEFrame("trace", string(data)))
	}
}

// PublishWindowStats makes st the watchdog window-counter gauges on
// /metrics (obsv.watchdog.windows_*). Call it whenever the counters
// advance — typically alongside PublishSnapshot, or per finding via
// wd.Stats().
func (s *Server) PublishWindowStats(st WindowStats) {
	s.wstats.Store(&st)
}

// TrackFleet installs a progress tracker for a fleet of total devices
// and returns the hook to place in fleet.Spec.Progress. Each call
// resets the tracked state (one fleet run at a time).
func (s *Server) TrackFleet(total int) func(fleet.Progress) {
	t := NewFleetTracker(total)
	s.trackMu.Lock()
	s.tracker = t
	s.trackMu.Unlock()
	hook := t.Hook()
	return func(p fleet.Progress) {
		hook(p)
		if data, err := json.Marshal(p); err == nil {
			s.fleetSSE.Publish(SSEFrame("progress", string(data)))
		}
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `e-android observability plane
  /metrics          prometheus text exposition
  /healthz /readyz  liveness, readiness
  /debug/pprof/     go profiling
  /fleet            fleet progress (JSON); /fleet/events (SSE)
  /watchdog         drain-anomaly findings (JSON); /watchdog/events (SSE)
  /flame            energy flame graph (HTML); /flame.txt (collapsed stacks)
  /trace            recent trace summaries (JSON); /trace/events (SSE)
`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.srcMu.Lock()
	sources := s.sources
	texts := s.texts
	s.srcMu.Unlock()
	snaps := []*telemetry.Snapshot{s.snap.Load(), s.ownMetrics()}
	for _, fn := range sources {
		snaps = append(snaps, fn())
	}
	merged, err := telemetry.MergeSnapshots(snaps)
	if err != nil {
		http.Error(w, "merge metrics: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WritePrometheus(w, merged)
	s.writeProcessMetrics(w)
	for _, fn := range texts {
		fn(w)
	}
}

// writeProcessMetrics appends the standard process hygiene gauges:
// build identity, uptime, goroutines, heap in use. Rendered directly —
// build_info needs labels, which the snapshot writer does not carry.
func (s *Server) writeProcessMetrics(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# HELP eandroid_build_info Build identity (value is constant 1).\n")
	fmt.Fprintf(w, "# TYPE eandroid_build_info gauge\n")
	fmt.Fprintf(w, "eandroid_build_info{version=%q,go=%q} 1\n", Version, runtime.Version())
	fmt.Fprintf(w, "# HELP eandroid_process_uptime_seconds Seconds since the obsv server was built.\n")
	fmt.Fprintf(w, "# TYPE eandroid_process_uptime_seconds gauge\n")
	fmt.Fprintf(w, "eandroid_process_uptime_seconds %.3f\n", time.Since(s.start).Seconds())
	fmt.Fprintf(w, "# HELP eandroid_process_goroutines Current goroutine count.\n")
	fmt.Fprintf(w, "# TYPE eandroid_process_goroutines gauge\n")
	fmt.Fprintf(w, "eandroid_process_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "# HELP eandroid_process_heap_inuse_bytes Bytes in in-use heap spans.\n")
	fmt.Fprintf(w, "# TYPE eandroid_process_heap_inuse_bytes gauge\n")
	fmt.Fprintf(w, "eandroid_process_heap_inuse_bytes %d\n", ms.HeapInuse)
}

// ownMetrics is the server's self-instrumentation: the SSE brokers'
// stuck-subscriber drop counts, always present on /metrics so a
// misbehaving scraper is visible from any other scraper.
func (s *Server) ownMetrics() *telemetry.Snapshot {
	m := telemetry.NewMetrics()
	m.Counter("obsv.sse.dropped_subscribers").Add(
		float64(s.watchSSE.Dropped() + s.fleetSSE.Dropped() + s.traceSSE.Dropped()))
	if st := s.wstats.Load(); st != nil {
		m.Gauge("obsv.watchdog.windows_total").Set(float64(st.Total))
		m.Gauge("obsv.watchdog.windows_interactive").Set(float64(st.Interactive))
		m.Gauge("obsv.watchdog.windows_judged").Set(float64(st.Judged))
		m.Gauge("obsv.watchdog.windows_flagged").Set(float64(st.Flagged))
	}
	return m.Snapshot()
}

func (s *Server) handleFleet(w http.ResponseWriter, _ *http.Request) {
	s.trackMu.Lock()
	t := s.tracker
	s.trackMu.Unlock()
	if t == nil {
		http.Error(w, "no fleet tracked", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(t.State())
}

func (s *Server) handleWatchdog(w http.ResponseWriter, _ *http.Request) {
	s.watchMu.Lock()
	out := make([]Finding, len(s.findings))
	copy(out, s.findings)
	s.watchMu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Findings []Finding `json:"findings"`
	}{out})
}

func (s *Server) handleFlame(w http.ResponseWriter, _ *http.Request) {
	f := s.flame.Load()
	if f == nil {
		http.Error(w, "no flame published", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = f.WriteHTML(w, "energy flame graph")
}

func (s *Server) handleFlameTxt(w http.ResponseWriter, _ *http.Request) {
	f := s.flame.Load()
	if f == nil {
		http.Error(w, "no flame published", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = f.WriteCollapsed(w)
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	s.traceMu.Lock()
	out := make([]*trace.Summary, len(s.traces))
	copy(out, s.traces)
	s.traceMu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Traces []*trace.Summary `json:"traces"`
	}{out})
}

// traceStateFrame replays the retained trace summaries as the initial
// /trace/events frame.
func (s *Server) traceStateFrame() []string {
	s.traceMu.Lock()
	out := make([]*trace.Summary, len(s.traces))
	copy(out, s.traces)
	s.traceMu.Unlock()
	data, err := json.Marshal(struct {
		Traces []*trace.Summary `json:"traces"`
	}{out})
	if err != nil {
		return nil
	}
	return []string{SSEFrame("state", string(data))}
}

// fleetStateFrame is the initial SSE frame for /fleet/events: the
// current fleet state, so a subscriber always gets one tick
// immediately.
func (s *Server) fleetStateFrame() []string {
	s.trackMu.Lock()
	t := s.tracker
	s.trackMu.Unlock()
	var st any
	if t != nil {
		st = t.State()
	} else {
		st = FleetState{}
	}
	data, err := json.Marshal(st)
	if err != nil {
		return nil
	}
	return []string{SSEFrame("state", string(data))}
}

// watchdogStateFrame replays all findings so far as the initial frame.
func (s *Server) watchdogStateFrame() []string {
	s.watchMu.Lock()
	out := make([]Finding, len(s.findings))
	copy(out, s.findings)
	s.watchMu.Unlock()
	data, err := json.Marshal(struct {
		Findings []Finding `json:"findings"`
	}{out})
	if err != nil {
		return nil
	}
	return []string{SSEFrame("state", string(data))}
}

// FleetState is the /fleet JSON payload.
type FleetState struct {
	Total   int              `json:"total"`
	Done    int              `json:"done"`
	Failed  int              `json:"failed"`
	Devices []fleet.Progress `json:"devices"`
}

// FleetTracker accumulates fleet.Progress ticks. Its hook is safe for
// concurrent calls from fleet workers.
type FleetTracker struct {
	mu      sync.Mutex
	total   int
	devices map[int]fleet.Progress
}

// NewFleetTracker builds a tracker for a fleet of total devices.
func NewFleetTracker(total int) *FleetTracker {
	return &FleetTracker{total: total, devices: make(map[int]fleet.Progress)}
}

// Hook returns the function to install as fleet.Spec.Progress.
func (t *FleetTracker) Hook() func(fleet.Progress) {
	return func(p fleet.Progress) {
		t.mu.Lock()
		t.devices[p.Index] = p
		t.mu.Unlock()
	}
}

// State freezes the tracker: devices sorted by index.
func (t *FleetTracker) State() FleetState {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := FleetState{Total: t.total, Done: len(t.devices)}
	st.Devices = make([]fleet.Progress, 0, len(t.devices))
	for _, p := range t.devices {
		st.Devices = append(st.Devices, p)
		if p.Failed {
			st.Failed++
		}
	}
	sort.Slice(st.Devices, func(i, j int) bool { return st.Devices[i].Index < st.Devices[j].Index })
	return st
}
