package obsv

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/telemetry"
)

// Server is the live observability plane: a stdlib net/http server
// exposing
//
//	/metrics          Prometheus text exposition of the latest snapshot
//	/healthz, /readyz liveness / readiness
//	/debug/pprof/     the standard Go profiling endpoints
//	/fleet            JSON fleet progress; /fleet/events is its SSE feed
//	/watchdog         JSON findings; /watchdog/events is its SSE feed
//	/flame            HTML energy flame report; /flame.txt collapsed stacks
//
// The simulation side stays single-goroutine: it publishes immutable
// values (snapshots, findings, flames) through atomic pointers and a
// mutex-guarded broker, and HTTP handlers only ever read those
// published values — the engine itself is never touched from a request
// goroutine, which is what keeps live serving compatible with the
// simulator's determinism.
type Server struct {
	mux *http.ServeMux
	srv *http.Server
	ln  net.Listener

	snap  atomic.Pointer[telemetry.Snapshot]
	flame atomic.Pointer[Flame]
	ready atomic.Bool

	watchMu  sync.Mutex
	findings []Finding

	watchSSE *sseBroker
	fleetSSE *sseBroker

	trackMu sync.Mutex
	tracker *FleetTracker
}

// NewServer builds a server with all routes registered; nothing listens
// until Start.
func NewServer() *Server {
	s := &Server{
		mux:      http.NewServeMux(),
		watchSSE: newSSEBroker(),
		fleetSSE: newSSEBroker(),
	}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.ready.Load() {
			http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux.HandleFunc("/fleet", s.handleFleet)
	s.mux.HandleFunc("/fleet/events", func(w http.ResponseWriter, r *http.Request) {
		s.fleetSSE.serve(w, r, s.fleetStateFrame())
	})
	s.mux.HandleFunc("/watchdog", s.handleWatchdog)
	s.mux.HandleFunc("/watchdog/events", func(w http.ResponseWriter, r *http.Request) {
		s.watchSSE.serve(w, r, s.watchdogStateFrame())
	})
	s.mux.HandleFunc("/flame", s.handleFlame)
	s.mux.HandleFunc("/flame.txt", s.handleFlameTxt)
	s.srv = &http.Server{Handler: s.mux}
	return s
}

// Handler exposes the route mux (for tests driving it without a
// listener).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// serves in a background goroutine. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Shutdown stops the server, waiting for in-flight requests up to ctx's
// deadline. SSE streams are closed first so Shutdown does not wait out
// their subscribers.
func (s *Server) Shutdown(ctx context.Context) error {
	s.watchSSE.closeAll()
	s.fleetSSE.closeAll()
	return s.srv.Shutdown(ctx)
}

// AwaitShutdown blocks until SIGINT/SIGTERM arrives (or stop, when
// non-nil, closes — CLI tests use it to end a -serve wait immediately),
// then shuts the started server down with a short grace period. This is
// the CLIs' -serve tail: start early, publish after the run, then hand
// the process to the operator until Ctrl-C.
func (s *Server) AwaitShutdown(stop <-chan struct{}) error {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case <-sig:
	case <-stop:
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

// PublishSnapshot makes snap the /metrics payload. Call it from the
// simulation goroutine at safe points (between runs, after flushes);
// the handler only ever reads whole published snapshots.
func (s *Server) PublishSnapshot(snap *telemetry.Snapshot) {
	if snap == nil {
		return
	}
	s.snap.Store(snap)
	s.ready.Store(true)
}

// PublishFlame makes f the /flame payload.
func (s *Server) PublishFlame(f *Flame) {
	if f == nil {
		return
	}
	s.flame.Store(f)
}

// PublishFinding records a watchdog finding and pushes it on the
// /watchdog/events SSE channel. Wire it with wd.Subscribe(srv.PublishFinding).
func (s *Server) PublishFinding(f Finding) {
	s.watchMu.Lock()
	s.findings = append(s.findings, f)
	s.watchMu.Unlock()
	if data, err := json.Marshal(f); err == nil {
		s.watchSSE.publish(sseFrame("finding", string(data)))
	}
}

// TrackFleet installs a progress tracker for a fleet of total devices
// and returns the hook to place in fleet.Spec.Progress. Each call
// resets the tracked state (one fleet run at a time).
func (s *Server) TrackFleet(total int) func(fleet.Progress) {
	t := NewFleetTracker(total)
	s.trackMu.Lock()
	s.tracker = t
	s.trackMu.Unlock()
	hook := t.Hook()
	return func(p fleet.Progress) {
		hook(p)
		if data, err := json.Marshal(p); err == nil {
			s.fleetSSE.publish(sseFrame("progress", string(data)))
		}
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `e-android observability plane
  /metrics          prometheus text exposition
  /healthz /readyz  liveness, readiness
  /debug/pprof/     go profiling
  /fleet            fleet progress (JSON); /fleet/events (SSE)
  /watchdog         drain-anomaly findings (JSON); /watchdog/events (SSE)
  /flame            energy flame graph (HTML); /flame.txt (collapsed stacks)
`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WritePrometheus(w, s.snap.Load())
}

func (s *Server) handleFleet(w http.ResponseWriter, _ *http.Request) {
	s.trackMu.Lock()
	t := s.tracker
	s.trackMu.Unlock()
	if t == nil {
		http.Error(w, "no fleet tracked", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(t.State())
}

func (s *Server) handleWatchdog(w http.ResponseWriter, _ *http.Request) {
	s.watchMu.Lock()
	out := make([]Finding, len(s.findings))
	copy(out, s.findings)
	s.watchMu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Findings []Finding `json:"findings"`
	}{out})
}

func (s *Server) handleFlame(w http.ResponseWriter, _ *http.Request) {
	f := s.flame.Load()
	if f == nil {
		http.Error(w, "no flame published", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = f.WriteHTML(w, "energy flame graph")
}

func (s *Server) handleFlameTxt(w http.ResponseWriter, _ *http.Request) {
	f := s.flame.Load()
	if f == nil {
		http.Error(w, "no flame published", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = f.WriteCollapsed(w)
}

// fleetStateFrame is the initial SSE frame for /fleet/events: the
// current fleet state, so a subscriber always gets one tick
// immediately.
func (s *Server) fleetStateFrame() []string {
	s.trackMu.Lock()
	t := s.tracker
	s.trackMu.Unlock()
	var st any
	if t != nil {
		st = t.State()
	} else {
		st = FleetState{}
	}
	data, err := json.Marshal(st)
	if err != nil {
		return nil
	}
	return []string{sseFrame("state", string(data))}
}

// watchdogStateFrame replays all findings so far as the initial frame.
func (s *Server) watchdogStateFrame() []string {
	s.watchMu.Lock()
	out := make([]Finding, len(s.findings))
	copy(out, s.findings)
	s.watchMu.Unlock()
	data, err := json.Marshal(struct {
		Findings []Finding `json:"findings"`
	}{out})
	if err != nil {
		return nil
	}
	return []string{sseFrame("state", string(data))}
}

// FleetState is the /fleet JSON payload.
type FleetState struct {
	Total   int              `json:"total"`
	Done    int              `json:"done"`
	Failed  int              `json:"failed"`
	Devices []fleet.Progress `json:"devices"`
}

// FleetTracker accumulates fleet.Progress ticks. Its hook is safe for
// concurrent calls from fleet workers.
type FleetTracker struct {
	mu      sync.Mutex
	total   int
	devices map[int]fleet.Progress
}

// NewFleetTracker builds a tracker for a fleet of total devices.
func NewFleetTracker(total int) *FleetTracker {
	return &FleetTracker{total: total, devices: make(map[int]fleet.Progress)}
}

// Hook returns the function to install as fleet.Spec.Progress.
func (t *FleetTracker) Hook() func(fleet.Progress) {
	return func(p fleet.Progress) {
		t.mu.Lock()
		t.devices[p.Index] = p
		t.mu.Unlock()
	}
}

// State freezes the tracker: devices sorted by index.
func (t *FleetTracker) State() FleetState {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := FleetState{Total: t.total, Done: len(t.devices)}
	st.Devices = make([]fleet.Progress, 0, len(t.devices))
	for _, p := range t.devices {
		st.Devices = append(st.Devices, p)
		if p.Failed {
			st.Failed++
		}
	}
	sort.Slice(st.Devices, func(i, j int) bool { return st.Devices[i].Index < st.Devices[j].Index })
	return st
}

// sseFrame renders one server-sent event.
func sseFrame(event, data string) string {
	return "event: " + event + "\ndata: " + data + "\n\n"
}

// sseBroker fans frames out to subscribers. Slow subscribers drop
// frames (non-blocking send into a buffered channel) rather than stall
// the publisher — the publisher is a fleet worker or the simulation
// loop, which must never wait on a network peer.
type sseBroker struct {
	mu     sync.Mutex
	subs   map[chan string]struct{}
	closed bool
}

func newSSEBroker() *sseBroker {
	return &sseBroker{subs: make(map[chan string]struct{})}
}

func (b *sseBroker) publish(frame string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for ch := range b.subs {
		select {
		case ch <- frame:
		default: // slow subscriber: drop
		}
	}
}

func (b *sseBroker) subscribe() chan string {
	ch := make(chan string, 64)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		close(ch)
		return ch
	}
	b.subs[ch] = struct{}{}
	return ch
}

func (b *sseBroker) unsubscribe(ch chan string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[ch]; ok {
		delete(b.subs, ch)
	}
}

func (b *sseBroker) closeAll() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	for ch := range b.subs {
		close(ch)
		delete(b.subs, ch)
	}
}

// serve runs one SSE subscription: initial frames first (so every
// subscriber sees at least one event immediately), then the live feed
// until the client disconnects or the broker closes.
func (b *sseBroker) serve(w http.ResponseWriter, r *http.Request, initial []string) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	for _, f := range initial {
		_, _ = fmt.Fprint(w, f)
	}
	fl.Flush()
	ch := b.subscribe()
	defer b.unsubscribe(ch)
	for {
		select {
		case <-r.Context().Done():
			return
		case frame, ok := <-ch:
			if !ok {
				return
			}
			if _, err := fmt.Fprint(w, frame); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
