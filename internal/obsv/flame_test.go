package obsv

import (
	"math"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/accounting"
	"repro/internal/device"
	"repro/internal/scenario"
)

// flameWorld runs scene #1 with a collector attached and returns the
// folded flame plus the device's total drain.
func flameWorld(t *testing.T) (*Flame, float64) {
	t.Helper()
	w, err := scenario.NewWorld(device.Config{EAndroid: true, Policy: accounting.BatteryStats})
	if err != nil {
		t.Fatal(err)
	}
	fc := AttachFlame(w.Dev)
	if err := w.Scene1MessageFilm(); err != nil {
		t.Fatal(err)
	}
	w.Dev.Flush()
	return fc.Fold(), w.Dev.DrainedJ()
}

// TestFlameTotalsMatchDrain: the flame is a lossless re-bucketing of
// the meter's output — its total must equal the battery's drain.
func TestFlameTotalsMatchDrain(t *testing.T) {
	f, drained := flameWorld(t)
	if len(f.Stacks) == 0 {
		t.Fatal("empty flame")
	}
	if diff := math.Abs(f.TotalJ() - drained); diff > 1e-6 {
		t.Fatalf("flame total %.9f J vs drained %.9f J (diff %g)", f.TotalJ(), drained, diff)
	}
}

// TestFlameCollapsedFormat: Brendan Gregg grammar — "a;b;c weight",
// sorted lines, positive integer weights, three-frame stacks.
func TestFlameCollapsedFormat(t *testing.T) {
	f, _ := flameWorld(t)
	var b strings.Builder
	if err := f.WriteCollapsed(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("no collapsed lines")
	}
	var sawCamera bool
	for i, line := range lines {
		if i > 0 && lines[i-1] >= line {
			t.Fatalf("lines not strictly sorted: %q then %q", lines[i-1], line)
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("malformed line %q", line)
		}
		stack, weight := line[:idx], line[idx+1:]
		uj, err := strconv.ParseInt(weight, 10, 64)
		if err != nil || uj <= 0 {
			t.Fatalf("bad weight in %q", line)
		}
		if got := len(strings.Split(stack, ";")); got != 3 {
			t.Fatalf("stack %q has %d frames, want 3 (component;app;entity)", stack, got)
		}
		if strings.Contains(stack, "Camera") {
			sawCamera = true
		}
	}
	if !sawCamera {
		t.Fatalf("no Camera stack in scene #1 flame:\n%s", out)
	}
}

func TestFlameDeterministicAcrossRuns(t *testing.T) {
	render := func() string {
		f, _ := flameWorld(t)
		var b strings.Builder
		if err := f.WriteCollapsed(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatal("two identical runs produced different collapsed flames")
	}
}

func TestMergeFlames(t *testing.T) {
	a := &Flame{Stacks: map[string]float64{"x;a;e": 1, "y;b;e": 2}}
	b := &Flame{Stacks: map[string]float64{"x;a;e": 3}}
	m := MergeFlames(a, nil, b)
	if m.Stacks["x;a;e"] != 4 || m.Stacks["y;b;e"] != 2 || len(m.Stacks) != 2 {
		t.Fatalf("merge = %+v", m.Stacks)
	}
}

func TestFlameHTMLReport(t *testing.T) {
	f, _ := flameWorld(t)
	var b strings.Builder
	if err := f.WriteHTML(&b, "test <title>"); err != nil {
		t.Fatal(err)
	}
	html := b.String()
	for _, want := range []string{"<!DOCTYPE html>", "test &lt;title&gt;", "class=\"frame", "</html>"} {
		if !strings.Contains(html, want) {
			t.Fatalf("HTML report missing %q", want)
		}
	}
	var c strings.Builder
	if err := f.WriteHTML(&c, "test <title>"); err != nil {
		t.Fatal(err)
	}
	if html != c.String() {
		t.Fatal("HTML report is not byte-deterministic")
	}
}

func TestSanitizeFrame(t *testing.T) {
	if got := sanitizeFrame("a;b c\td\ne"); got != "a_b_c_d_e" {
		t.Fatalf("sanitizeFrame = %q", got)
	}
}

// TestFlameSplitsCPUByUtil: an app's CPU joules split across its
// entities proportionally to their utilization demand.
func TestFlameSplitsCPUByUtil(t *testing.T) {
	w, err := scenario.NewWorld(device.Config{EAndroid: true, Policy: accounting.BatteryStats})
	if err != nil {
		t.Fatal(err)
	}
	fc := AttachFlame(w.Dev)
	if err := w.ForceScreenOn(); err != nil {
		t.Fatal(err)
	}
	if err := w.Attack3ServicePin(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	w.Dev.Flush()
	f := fc.Fold()
	var victimCPU float64
	for stack, j := range f.Stacks {
		if strings.HasPrefix(stack, "cpu;") && strings.Contains(stack, "Victim") {
			victimCPU += j
		}
	}
	if victimCPU <= 0 {
		t.Fatalf("no victim CPU energy in flame: %v", f.Stacks)
	}
}
