package obsv

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"

	"repro/internal/sim"
)

// LogHandler is a deterministic slog.Handler: records render as one
// line of virtual-time timestamp, level, message and key=value attrs,
// in the exact order the call site supplied them. Wall-clock times
// (slog.Record.Time) are ignored entirely — the timestamp comes from
// the injected virtual clock, so two identical simulations log
// byte-identical streams. Writes are mutex-serialized, so one handler
// may be shared across fleet workers.
type LogHandler struct {
	mu    *sync.Mutex
	w     io.Writer
	now   func() sim.Time
	level slog.Leveler

	// prefix is the pre-rendered WithAttrs state; groups qualifies
	// subsequent attr keys (WithGroup).
	prefix string
	groups []string
}

var _ slog.Handler = (*LogHandler)(nil)

// NewLogHandler builds a handler writing to w. now supplies the virtual
// timestamp (typically engine.Now); nil omits the timestamp column.
// level is the minimum level, nil means slog.LevelInfo.
func NewLogHandler(w io.Writer, now func() sim.Time, level slog.Leveler) *LogHandler {
	if level == nil {
		level = slog.LevelInfo
	}
	return &LogHandler{mu: &sync.Mutex{}, w: w, now: now, level: level}
}

// Enabled implements slog.Handler.
func (h *LogHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= h.level.Level()
}

// Handle implements slog.Handler.
func (h *LogHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	if h.now != nil {
		fmt.Fprintf(&b, "%v ", h.now())
	}
	b.WriteString(r.Level.String())
	b.WriteByte(' ')
	b.WriteString(r.Message)
	b.WriteString(h.prefix)
	r.Attrs(func(a slog.Attr) bool {
		appendAttr(&b, h.groups, a)
		return true
	})
	b.WriteByte('\n')
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := io.WriteString(h.w, b.String())
	return err
}

// WithAttrs implements slog.Handler: attrs are pre-rendered into the
// line prefix, preserving supplied order.
func (h *LogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	h2 := *h
	var b strings.Builder
	b.WriteString(h.prefix)
	for _, a := range attrs {
		appendAttr(&b, h.groups, a)
	}
	h2.prefix = b.String()
	return &h2
}

// WithGroup implements slog.Handler: subsequent attr keys are qualified
// as group.key.
func (h *LogHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	h2 := *h
	h2.groups = append(append([]string(nil), h.groups...), name)
	return &h2
}

// appendAttr renders one attr as " key=value", flattening groups into
// dotted keys and dropping empty attrs, per the slog handler contract.
func appendAttr(b *strings.Builder, groups []string, a slog.Attr) {
	v := a.Value.Resolve()
	if v.Kind() == slog.KindGroup {
		gs := v.Group()
		if len(gs) == 0 {
			return
		}
		inner := groups
		if a.Key != "" {
			inner = append(append([]string(nil), groups...), a.Key)
		}
		for _, ga := range gs {
			appendAttr(b, inner, ga)
		}
		return
	}
	if a.Key == "" {
		return
	}
	b.WriteByte(' ')
	for _, g := range groups {
		b.WriteString(g)
		b.WriteByte('.')
	}
	b.WriteString(a.Key)
	b.WriteByte('=')
	b.WriteString(formatLogValue(v))
}

// formatLogValue renders a resolved value deterministically: floats use
// shortest-exact formatting (slog's own float rendering), strings are
// quoted only when they contain whitespace, '=' or quotes.
func formatLogValue(v slog.Value) string {
	s := v.String()
	if v.Kind() == slog.KindString && strings.ContainsAny(s, " \t\n\"=") {
		return fmt.Sprintf("%q", s)
	}
	return s
}
