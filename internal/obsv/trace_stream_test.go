package obsv

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// traceSummary fabricates a distinct live-feed summary for publish i.
func traceSummary(i int) *trace.Summary {
	return &trace.Summary{
		Root:  trace.RootID(fmt.Sprintf("stream-%d", i)),
		Name:  "POST /jobs",
		State: "done",
	}
}

// TestTraceStreamStalledSubscriber is the broker-stress satellite: a
// stalled /trace subscriber under a live trace stream is dropped (and
// counted) after its miss budget, while a fast subscriber on the same
// broker receives every frame undisturbed, and the drop surfaces on
// /metrics. Runs under -race in the Makefile's race gate.
func TestTraceStreamStalledSubscriber(t *testing.T) {
	s := NewServer()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	// A real HTTP subscriber keeps the stream live end to end; it reads
	// continuously and must see trace frames despite the stalled peer.
	httpCtx, httpCancel := context.WithCancel(context.Background())
	defer httpCancel()
	req, _ := http.NewRequestWithContext(httpCtx, "GET", "http://"+addr+"/trace/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	httpFrames := make(chan string, 8)
	go func() {
		defer close(httpFrames)
		br := bufio.NewReader(resp.Body)
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				return
			}
			if strings.HasPrefix(line, "event: ") {
				select {
				case httpFrames <- strings.TrimSpace(strings.TrimPrefix(line, "event: ")):
				default:
				}
			}
		}
	}()
	// The initial replay frame proves the subscription is fully live
	// before the storm starts.
	select {
	case ev := <-httpFrames:
		if ev != "state" {
			t.Fatalf("initial frame event = %q, want state", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no initial state frame on /trace/events")
	}

	// One stalled subscriber (never drains) and one fast subscriber
	// (drained in lockstep with each publish, so delivery to it is
	// guaranteed, not timing-dependent).
	stalled := s.traceSSE.Subscribe()
	fast := s.traceSSE.Subscribe()
	total := sseSubBuffer + sseMaxMisses
	for i := 0; i < total; i++ {
		s.PublishTrace(traceSummary(i))
		select {
		case <-fast:
		case <-time.After(5 * time.Second):
			t.Fatalf("fast subscriber starved at frame %d", i)
		}
	}
	if got := s.traceSSE.Dropped(); got != 1 {
		t.Fatalf("Dropped() = %d after %d frames against a stalled subscriber, want 1", got, total)
	}
	// The stalled channel was closed after its buffered backlog.
	n := 0
	for range stalled {
		n++
	}
	if n != sseSubBuffer {
		t.Fatalf("stalled subscriber drained %d buffered frames, want %d", n, sseSubBuffer)
	}
	s.traceSSE.Unsubscribe(fast)

	// The HTTP subscriber rode out the storm: it must have seen live
	// trace frames (not just the initial state).
	sawTrace := false
	deadline := time.After(5 * time.Second)
	for !sawTrace {
		select {
		case ev, ok := <-httpFrames:
			if !ok {
				t.Fatal("HTTP trace stream closed during the storm")
			}
			sawTrace = ev == "trace"
		case <-deadline:
			t.Fatal("HTTP subscriber never saw a trace frame")
		}
	}

	// Concurrent publishers against the live stream: exercises the
	// broker's locking under -race; the HTTP reader keeps draining.
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				s.PublishTrace(traceSummary(1000 + p*100 + i))
			}
		}(p)
	}
	wg.Wait()

	// The drop is visible to any other scraper.
	mresp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(prom), "obsv_sse_dropped_subscribers 1") {
		t.Fatalf("/metrics missing the SSE drop:\n%s", grepLines(string(prom), "dropped"))
	}
}

// grepLines filters text to lines containing sub, for focused failure
// output.
func grepLines(text, sub string) string {
	var b strings.Builder
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, sub) {
			b.WriteString(line)
			b.WriteString("\n")
		}
	}
	return b.String()
}
