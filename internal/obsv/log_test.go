package obsv

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func virtualClock(at time.Duration) func() sim.Time {
	return func() sim.Time { return sim.Time(at) }
}

func TestLogHandlerLineFormat(t *testing.T) {
	var buf bytes.Buffer
	lg := slog.New(NewLogHandler(&buf, virtualClock(30*time.Second), nil))
	lg.Info("hello", "k", "v", "n", 3)
	got := buf.String()
	want := "T+30s INFO hello k=v n=3\n"
	if got != want {
		t.Fatalf("log line = %q, want %q", got, want)
	}
}

func TestLogHandlerIgnoresWallClock(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		lg := slog.New(NewLogHandler(&buf, virtualClock(time.Second), nil))
		lg.Warn("w", "rate_mw", 120.5)
		return buf.String()
	}
	a := render()
	time.Sleep(2 * time.Millisecond) // wall time moves; output must not
	if b := render(); a != b {
		t.Fatalf("wall clock leaked into output: %q vs %q", a, b)
	}
	if !strings.HasPrefix(a, "T+1s WARN w rate_mw=120.5") {
		t.Fatalf("unexpected line %q", a)
	}
}

func TestLogHandlerNilClockOmitsTimestamp(t *testing.T) {
	var buf bytes.Buffer
	lg := slog.New(NewLogHandler(&buf, nil, nil))
	lg.Info("m")
	if got := buf.String(); got != "INFO m\n" {
		t.Fatalf("line = %q", got)
	}
}

func TestLogHandlerLevelGate(t *testing.T) {
	var buf bytes.Buffer
	lg := slog.New(NewLogHandler(&buf, nil, slog.LevelWarn))
	lg.Info("dropped")
	lg.Warn("kept")
	if got := buf.String(); got != "WARN kept\n" {
		t.Fatalf("output = %q", got)
	}
}

func TestLogHandlerGroupsAndAttrs(t *testing.T) {
	var buf bytes.Buffer
	lg := slog.New(NewLogHandler(&buf, nil, nil))
	lg.WithGroup("fleet").With("device", 3).Info("done", "drained_j", 1.5)
	if got := buf.String(); got != "INFO done fleet.device=3 fleet.drained_j=1.5\n" {
		t.Fatalf("output = %q", got)
	}

	buf.Reset()
	lg.Info("g", slog.Group("inner", slog.String("a", "b")))
	if got := buf.String(); got != "INFO g inner.a=b\n" {
		t.Fatalf("output = %q", got)
	}
}

func TestLogHandlerQuotesAwkwardStrings(t *testing.T) {
	var buf bytes.Buffer
	lg := slog.New(NewLogHandler(&buf, nil, nil))
	lg.Info("m", "d", "two words", "e", "k=v")
	if got := buf.String(); got != "INFO m d=\"two words\" e=\"k=v\"\n" {
		t.Fatalf("output = %q", got)
	}
}
