// Package obsv is the simulation's live observability plane, layered
// over the telemetry recorder (PR 2), the fleet runner (PR 1) and the
// check subsystem (PR 3):
//
//   - Server: an HTTP surface (stdlib net/http only) exposing the
//     latest telemetry snapshot in Prometheus text exposition format,
//     health/readiness probes, net/http/pprof, fleet progress as JSON
//     plus a server-sent-events stream, watchdog findings, and the
//     energy flame graph.
//   - FlameCollector / Flame: folds the meter's attribution stream
//     into Brendan Gregg collapsed stacks ("component;app;entity"
//     weighted by joules) and a self-contained HTML icicle report.
//   - Watchdog: a rolling-window drain-anomaly detector flagging
//     per-UID drain-rate spikes and collateral-vs-direct divergence —
//     the paper's esDiagnose signal — as structured telemetry events,
//     log lines and an SSE channel.
//   - LogHandler: a deterministic log/slog handler stamped with
//     virtual time.
//
// The split of responsibilities mirrors the rest of the repo: the
// simulation side stays single-goroutine and deterministic (collector,
// watchdog and log output are byte-identical run-to-run and across
// fleet worker counts), while the server holds only immutable published
// values and may be hit from any number of request goroutines.
package obsv
