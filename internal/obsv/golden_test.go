package obsv

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/accounting"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/powersig"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

// obsvFleetExports runs a 4-device stealth fleet on the given worker
// count and renders the two live-export surfaces: the merged Prometheus
// text and the merged collapsed flame. Per-device flames ride from
// Scenario (attach) to Collect (fold) through a worker-owned slice —
// workers own disjoint indices, so the slice needs no lock — and merge
// in device-index order.
func obsvFleetExports(t *testing.T, workers int) (string, string) {
	t.Helper()
	const devices = 4
	collectors := make([]*FlameCollector, devices)
	fr, err := fleet.Run(context.Background(), fleet.Spec{
		Devices:       devices,
		Workers:       workers,
		Seed:          42,
		RetainResults: true, // the flame fold reads Result.Custom below
		Config:        device.Config{EAndroid: true, Policy: accounting.BatteryStats},
		Telemetry:     &telemetry.Options{},
		Scenario: func(i int, dev *device.Device) error {
			collectors[i] = AttachFlame(dev)
			w, err := scenario.Populate(dev)
			if err != nil {
				return err
			}
			det, err := powersig.NewDetector(dev.Engine, dev.Meter, dev.Packages, 0)
			if err != nil {
				return err
			}
			det.Start()
			if err := w.ForceScreenOn(); err != nil {
				return err
			}
			return w.StealthAutoLaunch(60 * time.Second)
		},
		Horizon: 5 * time.Minute,
		Collect: func(i int, dev *device.Device) (any, error) {
			return collectors[i].Fold(), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	flames := make([]*Flame, devices)
	for _, r := range fr.Results {
		if r.Err != nil {
			t.Fatalf("device %d: %v", r.Index, r.Err)
		}
		flames[r.Index] = r.Custom.(*Flame)
	}

	var prom strings.Builder
	if err := WritePrometheus(&prom, fr.Metrics); err != nil {
		t.Fatal(err)
	}
	var flame strings.Builder
	if err := MergeFlames(flames...).WriteCollapsed(&flame); err != nil {
		t.Fatal(err)
	}
	return prom.String(), flame.String()
}

// TestLiveExportsByteStableAcrossWorkerCounts is the determinism golden
// for the observability plane: the Prometheus exposition and the energy
// flame rendered from a fleet run must be byte-identical whether the
// fleet ran on 1 worker or 8.
func TestLiveExportsByteStableAcrossWorkerCounts(t *testing.T) {
	prom1, flame1 := obsvFleetExports(t, 1)
	prom8, flame8 := obsvFleetExports(t, 8)
	if prom1 != prom8 {
		t.Errorf("prometheus text differs between 1 and 8 workers:\n--- w1 ---\n%s--- w8 ---\n%s", prom1, prom8)
	}
	if flame1 != flame8 {
		t.Errorf("collapsed flame differs between 1 and 8 workers:\n--- w1 ---\n%s--- w8 ---\n%s", flame1, flame8)
	}
	if !strings.Contains(prom1, "acct_attributions") {
		t.Fatalf("prometheus text looks empty:\n%s", prom1)
	}
	if !strings.Contains(flame1, " ") || len(flame1) == 0 {
		t.Fatalf("flame looks empty: %q", flame1)
	}
}
