package obsv

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
)

// sseMaxMisses is how many consecutive frames a subscriber may fail to
// accept (full channel) before the broker drops it. Combined with the
// channel buffer this gives a stuck client ~two buffers of grace; after
// that it is disconnected rather than silently starved forever, so the
// broker's subscriber map cannot accumulate dead readers.
const sseMaxMisses = 64

// sseSubBuffer is each subscriber's frame buffer. Publishers never
// block: a full buffer costs the subscriber one miss.
const sseSubBuffer = 64

// SSEFrame renders one server-sent event.
func SSEFrame(event, data string) string {
	return "event: " + event + "\ndata: " + data + "\n\n"
}

// SSEBroker fans frames out to subscribers. Publishers never block:
// a send into a full subscriber buffer is a miss, and a subscriber that
// misses sseMaxMisses frames in a row is dropped (closed and removed)
// instead of being silently skipped forever — the publisher is a fleet
// worker, a job runner or the simulation loop, none of which may wait
// on a network peer, and none of which should carry dead readers
// either. Dropped() counts the casualties so telemetry can surface
// them.
type SSEBroker struct {
	mu      sync.Mutex
	subs    map[chan string]*sseSub
	closed  bool
	dropped atomic.Int64
}

type sseSub struct {
	// misses counts consecutive undelivered frames; any delivery
	// resets it.
	misses int
}

// NewSSEBroker returns an empty broker.
func NewSSEBroker() *SSEBroker {
	return &SSEBroker{subs: make(map[chan string]*sseSub)}
}

// Publish fans one frame out to every subscriber, dropping those that
// have been stuck for sseMaxMisses consecutive frames.
func (b *SSEBroker) Publish(frame string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for ch, sub := range b.subs {
		select {
		case ch <- frame:
			sub.misses = 0
		default:
			sub.misses++
			if sub.misses >= sseMaxMisses {
				close(ch)
				delete(b.subs, ch)
				b.dropped.Add(1)
			}
		}
	}
}

// Subscribe registers a new subscriber channel. On a closed broker the
// returned channel is already closed.
func (b *SSEBroker) Subscribe() chan string {
	ch := make(chan string, sseSubBuffer)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		close(ch)
		return ch
	}
	b.subs[ch] = &sseSub{}
	return ch
}

// Unsubscribe removes a subscriber. Safe to call after the broker
// already dropped or closed it.
func (b *SSEBroker) Unsubscribe(ch chan string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[ch]; ok {
		delete(b.subs, ch)
	}
}

// CloseAll closes every subscriber and marks the broker closed; later
// Publish calls are no-ops and later Subscribes return closed channels.
// Idempotent.
func (b *SSEBroker) CloseAll() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	for ch := range b.subs {
		close(ch)
		delete(b.subs, ch)
	}
}

// Dropped reports how many stuck subscribers the broker has
// disconnected.
func (b *SSEBroker) Dropped() int64 { return b.dropped.Load() }

// Subscribers reports the current subscriber count.
func (b *SSEBroker) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Serve runs one SSE subscription: initial frames first (so every
// subscriber sees at least one event immediately), then the live feed
// until the client disconnects, the broker closes, or the subscriber is
// dropped for being stuck.
func (b *SSEBroker) Serve(w http.ResponseWriter, r *http.Request, initial []string) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	for _, f := range initial {
		_, _ = fmt.Fprint(w, f)
	}
	fl.Flush()
	ch := b.Subscribe()
	defer b.Unsubscribe(ch)
	for {
		select {
		case <-r.Context().Done():
			return
		case frame, ok := <-ch:
			if !ok {
				return
			}
			if _, err := fmt.Fprint(w, frame); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
