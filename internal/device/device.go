// Package device wires the simulated substrates into a complete
// smartphone: activity/service/power/display managers, hardware power
// model, battery, a baseline accountant, and (optionally) the E-Android
// collateral monitor. The module root package re-exports this as the
// public API.
package device

import (
	"fmt"
	"log/slog"
	"strings"
	"time"

	"repro/internal/accounting"
	"repro/internal/activity"
	"repro/internal/alarm"
	"repro/internal/app"
	"repro/internal/batteryui"
	"repro/internal/broadcast"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/hw"
	"repro/internal/intent"
	"repro/internal/network"
	"repro/internal/power"
	"repro/internal/provider"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/surfaceflinger"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config controls device construction. The zero value is usable: it
// builds a stock-Android Nexus 4-like device with BatteryStats
// accounting and no E-Android monitor.
type Config struct {
	// Seed seeds the simulation's random source.
	Seed int64
	// Profile is the hardware power model; zero means hw.Nexus4().
	Profile hw.Profile
	// BatteryJ is battery capacity in joules; zero means the Nexus 4
	// pack (~28.7 kJ).
	BatteryJ float64
	// Policy selects the baseline accounting policy; zero means
	// BatteryStats.
	Policy accounting.Policy
	// EAndroid enables the E-Android monitor.
	EAndroid bool
	// MonitorMode selects the monitor mode when EAndroid is true; zero
	// means core.Complete.
	MonitorMode core.Mode
	// CollateralPolicy selects the monitor's superimposition rule; zero
	// means core.ChargeFullToEach (the paper's policy).
	CollateralPolicy core.ChargePolicy
	// ScreenTimeout overrides the 30 s screen auto-off timeout.
	ScreenTimeout time.Duration
	// Telemetry, when non-nil, is instrumented into the kernel, meter,
	// activity manager and accountant. A recorder is single-goroutine
	// like the device itself: give every device its own (fleet runs
	// build one per device from Spec.Telemetry).
	Telemetry *telemetry.Recorder
	// Checks, when non-nil, wires the runtime invariant checker (see
	// internal/check) into the meter and the activity/service managers.
	// When nil, the EANDROID_CHECK environment variable is consulted
	// (check.FromEnv), so whole test suites can run checked without
	// touching call sites. Like a telemetry recorder, a checker is
	// single-goroutine: one per device.
	Checks *check.Options
	// Events, when non-nil, is the kernel event arena this device's
	// engine recycles through. Pools are single-goroutine: share one
	// only across devices run sequentially on the same goroutine (a
	// fleet worker), never across concurrent devices.
	Events *sim.EventPool
	// Logger, when non-nil, receives structured logs from the device's
	// subsystems (check violations, the obsv watchdog). Use
	// obsv.NewLogHandler for a deterministic, virtual-time handler; nil
	// keeps the device silent (every log site is nil-checked).
	Logger *slog.Logger
	// Trace, when non-nil, collects this device's engine-phase spans
	// (meter flushes via the sink below; watchdog windows and kernel
	// dispatch batches via their own layers). Like a telemetry
	// recorder it is single-goroutine: one per device, handed out by
	// trace.FleetTrace for sampled indices only.
	Trace *trace.DeviceTracer
}

// Device is a fully wired simulated smartphone.
type Device struct {
	Engine     *sim.Engine
	Packages   *app.PackageManager
	Resolver   *intent.Resolver
	Activities *activity.Manager
	Services   *service.Manager
	Broadcasts *broadcast.Manager
	Providers  *provider.Manager
	Alarms     *alarm.Manager
	Network    *network.Manager
	// Flinger models the renderer's shared-memory side channel.
	Flinger *surfaceflinger.Flinger
	Power   *power.Manager
	Display *display.Display
	Meter   *hw.Meter
	Battery *hw.Battery
	// Aggregator is the shared per-UID hardware demand aggregator the
	// component managers write through.
	Aggregator *hw.Aggregator
	// Android is the baseline accountant (always present: E-Android's
	// views are layered on top of it, mirroring the paper's "revised
	// battery interface").
	Android *accounting.Accountant
	// EAndroid is the collateral monitor, nil unless Config.EAndroid.
	EAndroid *core.Monitor
	// Telemetry is the recorder from Config.Telemetry, nil when the
	// device runs uninstrumented.
	Telemetry *telemetry.Recorder
	// Checker is the runtime invariant checker, nil when the device
	// runs unchecked. Read violations with FinishChecks.
	Checker *check.Checker
	// Log is the structured logger from Config.Logger, nil when the
	// device runs silent.
	Log *slog.Logger
	// Trace is the span tracer from Config.Trace, nil when the device
	// runs untraced.
	Trace *trace.DeviceTracer
}

// foregroundAdapter feeds foreground changes into the accountant,
// flushing the meter first so screen energy earned before the change is
// attributed to the old foreground app.
type foregroundAdapter struct {
	meter *hw.Meter
	acc   *accounting.Accountant
}

func (f *foregroundAdapter) ActivityStarted(sim.Time, app.UID, *activity.Activity, bool) {}

func (f *foregroundAdapter) ForegroundChanged(t sim.Time, prev, cur app.UID, cause activity.Cause) {
	f.meter.Flush()
	f.acc.SetForeground(cur)
}

func (f *foregroundAdapter) Lifecycle(sim.Time, *activity.Activity, activity.State, activity.State) {
}

// New builds and wires a device.
func New(cfg Config) (*Device, error) {
	if cfg.Profile.CPUFull == 0 && cfg.Profile.ScreenBase == 0 {
		cfg.Profile = hw.Nexus4()
	}
	if cfg.BatteryJ == 0 {
		cfg.BatteryJ = hw.NexusBatteryJ
	}
	if cfg.Policy == 0 {
		cfg.Policy = accounting.BatteryStats
	}
	if cfg.MonitorMode == 0 {
		cfg.MonitorMode = core.Complete
	}

	engine := sim.NewEngine(cfg.Seed)
	if cfg.Events != nil {
		engine.SetEventPool(cfg.Events)
	}
	battery, err := hw.NewBattery(cfg.BatteryJ)
	if err != nil {
		return nil, err
	}
	meter, err := hw.NewMeter(engine.Now, cfg.Profile, battery)
	if err != nil {
		return nil, err
	}
	agg, err := hw.NewAggregator(meter)
	if err != nil {
		return nil, err
	}
	pm := app.NewPackageManager()
	res := intent.NewResolver(pm)

	acc, err := accounting.New(cfg.Policy)
	if err != nil {
		return nil, err
	}
	meter.AddSink(acc)

	am, err := activity.NewManager(engine, pm, res, agg)
	if err != nil {
		return nil, err
	}
	svm, err := service.NewManager(engine, pm, res, agg)
	if err != nil {
		return nil, err
	}
	bcm, err := broadcast.NewManager(engine, pm, res, agg)
	if err != nil {
		return nil, err
	}
	pvm, err := provider.NewManager(engine, pm, res, agg)
	if err != nil {
		return nil, err
	}
	alm, err := alarm.NewManager(engine, pm, am, bcm)
	if err != nil {
		return nil, err
	}
	net, err := network.NewManager(engine, pm, agg)
	if err != nil {
		return nil, err
	}
	pwm, err := power.NewManager(engine, meter, pm)
	if err != nil {
		return nil, err
	}
	dsp, err := display.New(engine, meter, pm)
	if err != nil {
		return nil, err
	}
	fl, err := surfaceflinger.New(engine)
	if err != nil {
		return nil, err
	}
	am.AddHooks(fl)
	fl.Sync(am.Stack())
	am.SetUserInteractionFunc(pwm.UserActivity)
	am.AddHooks(&foregroundAdapter{meter: meter, acc: acc})
	acc.SetForeground(am.Foreground())

	if cfg.Telemetry != nil {
		telemetry.InstrumentEngine(engine, cfg.Telemetry)
		meter.SetTelemetry(cfg.Telemetry)
		am.SetTelemetry(cfg.Telemetry)
		acc.SetTelemetry(cfg.Telemetry)
	}
	if cfg.Trace != nil {
		// The tracer's sink reads only the interval endpoints and energy
		// totals, so its position among the sinks is immaterial; it sits
		// with the other observers, before the checker.
		meter.AddSink(cfg.Trace)
	}

	dev := &Device{
		Engine:     engine,
		Packages:   pm,
		Resolver:   res,
		Activities: am,
		Services:   svm,
		Broadcasts: bcm,
		Providers:  pvm,
		Alarms:     alm,
		Network:    net,
		Flinger:    fl,
		Power:      pwm,
		Display:    dsp,
		Meter:      meter,
		Battery:    battery,
		Aggregator: agg,
		Android:    acc,
		Telemetry:  cfg.Telemetry,
		Log:        cfg.Logger,
		Trace:      cfg.Trace,
	}

	if cfg.EAndroid {
		mon, err := core.NewMonitor(engine, pm, cfg.MonitorMode)
		if err != nil {
			return nil, err
		}
		mon.SetFlushFunc(meter.Flush)
		if cfg.CollateralPolicy != 0 {
			if err := mon.SetChargePolicy(cfg.CollateralPolicy); err != nil {
				return nil, err
			}
		}
		mon.NoteForeground(am.Foreground())
		pm.AddUninstallHook(func(a *app.App) { mon.NoteUninstalled(a.UID) })
		am.AddHooks(mon)
		svm.AddHooks(mon)
		bcm.AddHooks(mon)
		pvm.AddHooks(mon)
		pwm.AddHooks(mon)
		dsp.AddHooks(mon)
		meter.AddSink(mon)
		dev.EAndroid = mon
	}

	// The checker attaches last: its sink must run after the accountant
	// (so cumulative conservation compares a settled ledger) and after
	// the monitor (whose collateral maps superimpose by design and are
	// deliberately outside the conservation sum).
	checks := cfg.Checks
	if checks == nil {
		checks = check.FromEnv()
	}
	if checks != nil && !checks.Disabled {
		ck, err := check.New(*checks, check.Deps{
			Engine:     engine,
			Battery:    battery,
			Meter:      meter,
			Aggregator: agg,
			Ledger:     acc,
			Packages:   pm,
			Telemetry:  cfg.Telemetry,
			Logger:     cfg.Logger,
		})
		if err != nil {
			return nil, err
		}
		meter.AddSink(ck)
		am.AddHooks(ck)
		svm.AddHooks(ck)
		dev.Checker = ck
	}

	if cfg.ScreenTimeout != 0 {
		if err := pwm.SetScreenTimeout(cfg.ScreenTimeout); err != nil {
			return nil, err
		}
	}
	return dev, nil
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(cfg Config) *Device {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Run advances the simulation by d, firing all scheduled events.
func (d *Device) Run(dur time.Duration) error {
	return d.Engine.RunFor(dur)
}

// At schedules fn at an absolute instant (offset from boot).
func (d *Device) At(offset time.Duration, name string, fn func()) {
	d.Engine.Schedule(sim.Time(offset), name, fn)
}

// Flush settles energy accounting up to the current instant. Call before
// reading views.
func (d *Device) Flush() { d.Meter.Flush() }

// FinishChecks settles accounting, runs the checker's end-of-run passes
// (final aggregator audit; differential error envelope) and returns
// every recorded violation. Nil-safe and idempotent; returns nil when
// the device runs unchecked.
func (d *Device) FinishChecks() []check.Violation {
	if d.Checker == nil {
		return nil
	}
	return d.Checker.Finish()
}

// UserUnlock simulates the user unlocking the device: the screen wakes
// and the system dispatches the ACTION_USER_PRESENT broadcast that
// auto-launching apps (including the paper's malware) listen for.
func (d *Device) UserUnlock() ([]*broadcast.Delivery, error) {
	d.Power.UserActivity()
	return d.Broadcasts.SendUserPresent()
}

// DrainedJ reports total battery energy drained so far.
func (d *Device) DrainedJ() float64 {
	d.Flush()
	return d.Battery.DrainedJ()
}

// BatteryPercent reports the remaining charge.
func (d *Device) BatteryPercent() float64 {
	d.Flush()
	return d.Battery.Percent()
}

// StartActivity dispatches an explicit activity intent from sender.
func (d *Device) StartActivity(sender app.UID, component string, opts ...activity.StartOption) (*activity.Activity, error) {
	return d.Activities.StartActivity(intent.Intent{Sender: sender, Component: component}, opts...)
}

// StartService dispatches an explicit startService intent from sender.
func (d *Device) StartService(sender app.UID, component string) (*service.Service, error) {
	return d.Services.Start(intent.Intent{Sender: sender, Component: component})
}

// BindService dispatches an explicit bindService intent from sender.
func (d *Device) BindService(sender app.UID, component string) (*service.Connection, error) {
	return d.Services.Bind(intent.Intent{Sender: sender, Component: component})
}

// AndroidView renders the baseline battery interface as text.
func (d *Device) AndroidView() string {
	d.Flush()
	return batteryui.RenderBaseline(d.Packages, d.Android, d.Battery)
}

// EAndroidView renders E-Android's revised battery interface as text.
// It returns a note instead if the monitor is disabled.
func (d *Device) EAndroidView() string {
	d.Flush()
	if d.EAndroid == nil {
		return "E-Android monitor disabled\n"
	}
	return batteryui.RenderEAndroid(d.Packages, d.Android, d.EAndroid, d.Battery)
}

// Report renders a one-stop device status report: clock, battery,
// screen, foreground app, top consumers and (when the monitor is on)
// the attack log — the diagnostic view the CLI prints.
func (d *Device) Report() string {
	d.Flush()
	var b strings.Builder
	fmt.Fprintf(&b, "Device report at %v\n", d.Engine.Now())
	fmt.Fprintf(&b, "  battery:    %.1f%% (%.1f J drained of %.1f J)\n",
		d.Battery.Percent(), d.Battery.DrainedJ(), d.Battery.CapacityJ())
	screen := "off"
	if d.Power.ScreenOn() {
		screen = fmt.Sprintf("on, brightness %d", d.Meter.Brightness())
		if d.Meter.ScreenDimmed() {
			screen += " (dimmed)"
		}
	}
	fmt.Fprintf(&b, "  screen:     %s (on for %s total)\n",
		screen, d.Android.ScreenOnTime().Round(time.Second))
	fmt.Fprintf(&b, "  foreground: %s\n", d.Packages.Label(d.Activities.Foreground()))
	fmt.Fprintf(&b, "  suspended:  %v\n", d.Meter.Suspended())
	b.WriteString(d.AndroidView())
	if d.EAndroid != nil {
		b.WriteString(d.EAndroidView())
		b.WriteString(d.AttackView())
	}
	return b.String()
}

// AttackView renders the monitor's attack log, or a note if disabled.
func (d *Device) AttackView() string {
	if d.EAndroid == nil {
		return "E-Android monitor disabled\n"
	}
	return batteryui.RenderAttacks(d.Packages, d.EAndroid)
}
