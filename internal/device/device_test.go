package device

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/accounting"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/manifest"
)

func TestDefaultsApplied(t *testing.T) {
	dev, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if dev.Android.Policy() != accounting.BatteryStats {
		t.Fatalf("policy = %v", dev.Android.Policy())
	}
	if dev.Battery.CapacityJ() != hw.NexusBatteryJ {
		t.Fatalf("capacity = %v", dev.Battery.CapacityJ())
	}
	if dev.EAndroid != nil {
		t.Fatal("monitor present by default")
	}
	if !dev.Power.ScreenOn() {
		t.Fatal("screen should start on")
	}
	// Launcher and resolver are installed.
	if dev.Packages.ByPackage("android.launcher") == nil ||
		dev.Packages.ByPackage("android.resolver") == nil {
		t.Fatal("system apps missing")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	if _, err := New(Config{BatteryJ: -5}); err == nil {
		t.Fatal("negative battery accepted")
	}
	bad := hw.Nexus4()
	bad.CPUFull = -1
	if _, err := New(Config{Profile: bad}); err == nil {
		t.Fatal("invalid profile accepted")
	}
	if _, err := New(Config{ScreenTimeout: -time.Second}); err == nil {
		t.Fatal("negative timeout accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(Config{BatteryJ: -1})
}

func TestForegroundFeedsAccountant(t *testing.T) {
	dev, err := New(Config{Policy: accounting.PowerTutor})
	if err != nil {
		t.Fatal(err)
	}
	a := dev.Packages.MustInstall(manifest.NewBuilder("com.a", "A").
		Activity("Main", true).MustBuild())
	if _, err := dev.Activities.UserStartApp("com.a"); err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	dev.Flush()
	// Under PowerTutor the foreground app (A) is charged the screen.
	if dev.Android.AppUsage(a.UID)[hw.Screen] <= 0 {
		t.Fatal("foreground screen attribution missing")
	}
}

func TestScreenAttributionSplitsAtForegroundChange(t *testing.T) {
	// The meter must flush before the accountant's foreground switches,
	// or screen energy earned by the old app bleeds onto the new one.
	dev, err := New(Config{Policy: accounting.PowerTutor})
	if err != nil {
		t.Fatal(err)
	}
	a := dev.Packages.MustInstall(manifest.NewBuilder("com.a", "A").
		Activity("Main", true).MustBuild())
	b := dev.Packages.MustInstall(manifest.NewBuilder("com.b", "B").
		Activity("Main", true).MustBuild())
	if _, err := dev.Activities.UserStartApp("com.a"); err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Activities.UserStartApp("com.b"); err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	dev.Flush()
	sa := dev.Android.AppUsage(a.UID)[hw.Screen]
	sb := dev.Android.AppUsage(b.UID)[hw.Screen]
	if sa <= 0 || sb <= 0 {
		t.Fatalf("screen split missing: a=%v b=%v", sa, sb)
	}
	if math.Abs(sa/sb-2.0) > 0.01 {
		t.Fatalf("screen ratio = %v, want 2.0 (20s vs 10s)", sa/sb)
	}
}

func TestMonitorWiring(t *testing.T) {
	dev, err := New(Config{EAndroid: true})
	if err != nil {
		t.Fatal(err)
	}
	if dev.EAndroid == nil || dev.EAndroid.Mode() != core.Complete {
		t.Fatal("monitor not wired")
	}
	views := dev.EAndroidView() + dev.AttackView() + dev.AndroidView()
	if strings.Contains(views, "disabled") {
		t.Fatal("views should be live")
	}
}

func TestBatteryHelpers(t *testing.T) {
	dev, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if dev.BatteryPercent() >= 100 || dev.DrainedJ() <= 0 {
		t.Fatalf("pct=%v drained=%v", dev.BatteryPercent(), dev.DrainedJ())
	}
}

func TestAtScheduling(t *testing.T) {
	dev, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	dev.At(5*time.Second, "x", func() { ran = true })
	if err := dev.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("scheduled fn did not run")
	}
}

func TestReport(t *testing.T) {
	dev, err := New(Config{EAndroid: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	rep := dev.Report()
	for _, want := range []string{"Device report", "battery:", "screen:", "foreground:", "Launcher", "Battery view"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	// A stock device's report omits the monitor sections.
	stock, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(stock.Report(), "E-Android over") {
		t.Fatal("stock report should omit monitor view")
	}
}
