// Package alarm implements the AlarmManager slice relevant to the paper:
// apps schedule intents to fire later, and the framework performs the
// action *on behalf of the scheduling app* when the alarm goes off. The
// paper's attack analysis notes that "a foreground activity could be
// easily interrupted by popup activities, e.g., the activity invoked by
// a notification, an incoming call or an alarm" — and because the fired
// intent carries the scheduler's UID, E-Android attributes the resulting
// interrupt or collateral period to the app that armed the alarm, even
// though it was nowhere near the foreground when the popup landed.
package alarm

import (
	"fmt"
	"time"

	"repro/internal/activity"
	"repro/internal/app"
	"repro/internal/broadcast"
	"repro/internal/intent"
	"repro/internal/sim"
)

// Kind selects what an alarm fires.
type Kind int

// Alarm kinds.
const (
	// FireActivity starts an activity (a popup) when the alarm goes off.
	FireActivity Kind = iota + 1
	// FireBroadcast dispatches a broadcast when the alarm goes off.
	FireBroadcast
)

func (k Kind) String() string {
	switch k {
	case FireActivity:
		return "activity"
	case FireBroadcast:
		return "broadcast"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Alarm is one scheduled intent.
type Alarm struct {
	Owner app.UID
	Kind  Kind
	In    intent.Intent
	At    sim.Time

	event sim.Handle
	fired bool
	err   error
}

// Fired reports whether the alarm already went off.
func (a *Alarm) Fired() bool { return a.fired }

// Err reports the delivery error, if firing failed.
func (a *Alarm) Err() error { return a.err }

// Cancel unschedules a pending alarm. Cancelling a fired alarm errors.
func (a *Alarm) Cancel() error {
	if a.fired {
		return fmt.Errorf("alarm: already fired")
	}
	a.event.Cancel()
	return nil
}

// Manager is the simulated AlarmManager.
type Manager struct {
	engine     *sim.Engine
	pm         *app.PackageManager
	activities *activity.Manager
	broadcasts *broadcast.Manager
}

// NewManager builds the alarm manager.
func NewManager(engine *sim.Engine, pm *app.PackageManager, am *activity.Manager, bm *broadcast.Manager) (*Manager, error) {
	if engine == nil || pm == nil || am == nil || bm == nil {
		return nil, fmt.Errorf("alarm: nil dependency")
	}
	return &Manager{engine: engine, pm: pm, activities: am, broadcasts: bm}, nil
}

// Schedule arms an alarm firing after delay. The fired intent's sender
// is forced to the scheduling app's UID — alarms cannot launder
// attribution by pretending someone else sent the intent.
func (m *Manager) Schedule(owner app.UID, kind Kind, in intent.Intent, delay time.Duration) (*Alarm, error) {
	if kind != FireActivity && kind != FireBroadcast {
		return nil, fmt.Errorf("alarm: invalid kind %d", int(kind))
	}
	o := m.pm.ByUID(owner)
	if o == nil {
		return nil, fmt.Errorf("alarm: unknown uid %d", owner)
	}
	if delay < 0 {
		return nil, fmt.Errorf("alarm: negative delay %v", delay)
	}
	in.Sender = owner
	a := &Alarm{Owner: owner, Kind: kind, In: in, At: m.engine.Now().Add(delay)}
	a.event = m.engine.After(delay, "alarm.fire", func() {
		a.fired = true
		switch kind {
		case FireActivity:
			_, a.err = m.activities.StartActivity(a.In)
		case FireBroadcast:
			_, a.err = m.broadcasts.Send(a.In)
		}
	})
	return a, nil
}

// SystemPopup simulates a legitimate system interruption (an incoming
// call or alarm-clock dialog): a system-owned popup covers the current
// foreground app. It returns the popup activity so the call can be
// "answered" (finished).
func (m *Manager) SystemPopup(component string) (*activity.Activity, error) {
	return m.activities.StartActivity(intent.Intent{
		Sender:    m.systemUID(),
		Component: component,
	})
}

func (m *Manager) systemUID() app.UID {
	return m.activities.Launcher().UID
}
