package alarm_test

import (
	"testing"
	"time"

	"repro/internal/alarm"
	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/intent"
	"repro/internal/manifest"
)

func fixture(t *testing.T) (*device.Device, *app.App, *app.App) {
	t.Helper()
	dev, err := device.New(device.Config{EAndroid: true})
	if err != nil {
		t.Fatal(err)
	}
	victim := dev.Packages.MustInstall(manifest.NewBuilder("com.victim", "Victim").
		Activity("Main", true).
		Receiver("Ping", true, manifest.IntentFilter{Actions: []string{"act.PING"}}).
		MustBuild())
	if err := victim.SetWorkload("Main", app.Workload{CPUActive: 0.3, CPUBackground: 0.05}); err != nil {
		t.Fatal(err)
	}
	mal := dev.Packages.MustInstall(manifest.NewBuilder("com.mal", "Mal").
		Activity("Main", true).
		Activity("Popup", true).
		MustBuild())
	return dev, victim, mal
}

func TestAlarmFiresActivityLater(t *testing.T) {
	dev, victim, mal := fixture(t)
	a, err := dev.Alarms.Schedule(mal.UID, alarm.FireActivity, intent.Intent{
		Component: "com.victim/Main",
	}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fired() {
		t.Fatal("alarm fired early")
	}
	if err := dev.Run(31 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !a.Fired() || a.Err() != nil {
		t.Fatalf("fired=%v err=%v", a.Fired(), a.Err())
	}
	if dev.Activities.Foreground() != victim.UID {
		t.Fatal("alarm should have started the victim's activity")
	}
}

func TestAlarmAttributionToScheduler(t *testing.T) {
	// The delayed start is a collateral attack by the *scheduling* app,
	// even though it is idle when the alarm fires — and the intent's
	// sender cannot be spoofed.
	dev, victim, mal := fixture(t)
	if _, err := dev.Alarms.Schedule(mal.UID, alarm.FireActivity, intent.Intent{
		Sender:    victim.UID, // spoof attempt: must be overwritten
		Component: "com.victim/Main",
	}, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(11 * time.Second); err != nil {
		t.Fatal(err)
	}
	atks := dev.EAndroid.ActiveAttacks()
	if len(atks) != 1 || atks[0].Vector != core.VectorActivity ||
		atks[0].Driving != mal.UID || atks[0].Driven != victim.UID {
		t.Fatalf("attacks = %v", atks)
	}
}

func TestAlarmPopupInterruptsForeground(t *testing.T) {
	// The paper's attack-#4 enabler: a popup (here the malware's own
	// page fired via alarm) forces the foreground app to background.
	dev, victim, mal := fixture(t)
	if _, err := dev.Activities.UserStartApp("com.victim"); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Alarms.Schedule(mal.UID, alarm.FireActivity, intent.Intent{
		Component: "com.mal/Popup",
	}, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range dev.EAndroid.ActiveAttacks() {
		if a.Vector == core.VectorInterrupt && a.Driving == mal.UID && a.Driven == victim.UID {
			found = true
		}
	}
	if !found {
		t.Fatalf("interrupt not attributed to scheduler: %v", dev.EAndroid.ActiveAttacks())
	}
}

func TestAlarmFiresBroadcast(t *testing.T) {
	dev, victim, mal := fixture(t)
	if _, err := dev.Alarms.Schedule(mal.UID, alarm.FireBroadcast, intent.Intent{
		Action: "act.PING",
	}, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The receiver's handler window opened: victim is billed and the
	// broadcast attack names the scheduler.
	if dev.Meter.CPUUtil(victim.UID) == 0 {
		t.Fatal("receiver not billed")
	}
	found := false
	for _, a := range dev.EAndroid.ActiveAttacks() {
		if a.Vector == core.VectorBroadcast && a.Driving == mal.UID {
			found = true
		}
	}
	if !found {
		t.Fatal("broadcast attack missing")
	}
}

func TestAlarmCancel(t *testing.T) {
	dev, _, mal := fixture(t)
	a, err := dev.Alarms.Schedule(mal.UID, alarm.FireActivity, intent.Intent{
		Component: "com.victim/Main",
	}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Cancel(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if a.Fired() {
		t.Fatal("cancelled alarm fired")
	}
	// Cancel after firing errors.
	b, _ := dev.Alarms.Schedule(mal.UID, alarm.FireActivity, intent.Intent{
		Component: "com.victim/Main",
	}, time.Second)
	if err := dev.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := b.Cancel(); err == nil {
		t.Fatal("cancel after fire accepted")
	}
}

func TestAlarmDeliveryErrorSurfaces(t *testing.T) {
	dev, _, mal := fixture(t)
	a, err := dev.Alarms.Schedule(mal.UID, alarm.FireActivity, intent.Intent{
		Component: "com.missing/Main",
	}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if a.Err() == nil {
		t.Fatal("delivery error not recorded")
	}
}

func TestSystemPopupNotAnAttack(t *testing.T) {
	// An incoming call interrupts the foreground app legitimately.
	dev, victim, _ := fixture(t)
	phone, err := dev.Packages.InstallSystem(manifest.NewBuilder("android.phone", "Phone").
		Activity("IncomingCall", true).MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	_ = phone
	rec, err := dev.Activities.UserStartApp("com.victim")
	if err != nil {
		t.Fatal(err)
	}
	popup, err := dev.Alarms.SystemPopup("android.phone/IncomingCall")
	if err != nil {
		t.Fatal(err)
	}
	if rec.State() == 0 {
		t.Fatal("sanity")
	}
	if len(dev.EAndroid.ActiveAttacks()) != 0 {
		t.Fatalf("system popup registered attacks: %v", dev.EAndroid.ActiveAttacks())
	}
	// Hanging up restores the victim.
	if err := dev.Activities.Finish(popup); err != nil {
		t.Fatal(err)
	}
	if dev.Activities.Foreground() != victim.UID {
		t.Fatal("victim should return to foreground after the call")
	}
}

func TestScheduleValidation(t *testing.T) {
	dev, _, mal := fixture(t)
	if _, err := dev.Alarms.Schedule(999, alarm.FireActivity, intent.Intent{}, time.Second); err == nil {
		t.Fatal("unknown uid accepted")
	}
	if _, err := dev.Alarms.Schedule(mal.UID, alarm.Kind(0), intent.Intent{}, time.Second); err == nil {
		t.Fatal("invalid kind accepted")
	}
	if _, err := dev.Alarms.Schedule(mal.UID, alarm.FireActivity, intent.Intent{}, -time.Second); err == nil {
		t.Fatal("negative delay accepted")
	}
	if alarm.FireActivity.String() != "activity" || alarm.FireBroadcast.String() != "broadcast" {
		t.Fatal("kind names")
	}
	if alarm.Kind(9).String() == "" {
		t.Fatal("unknown kind stringer")
	}
}

func TestNewManagerNilDeps(t *testing.T) {
	if _, err := alarm.NewManager(nil, nil, nil, nil); err == nil {
		t.Fatal("nil deps accepted")
	}
}
