package fleet

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/app"
	"repro/internal/check"
	"repro/internal/core"
)

// Summary is the fleet-level merge of every successful device result.
// All maps are keyed the same way as the per-device results; because
// every device installs apps in the same order, a UID means the same
// app on every device in the fleet.
type Summary struct {
	// Devices and Failed count the fleet's outcomes; Detected counts
	// devices whose monitor recorded at least one attack.
	Devices  int
	Failed   int
	Detected int
	// TotalDrainedJ sums battery drain across successful devices.
	TotalDrainedJ float64
	// EnergyByUID merges the baseline ledgers.
	EnergyByUID map[app.UID]float64
	// CollateralByUID merges E-Android's collateral maps.
	CollateralByUID map[app.UID]float64
	// AttacksByVector merges the attack logs.
	AttacksByVector map[core.Vector]int
	// Attacks is the fleet-wide attack total.
	Attacks int
	// Labels maps each UID to its label (taken from the first device
	// that reported a non-empty one; "uid:<n>" when none did).
	Labels map[app.UID]string
	// Violations is the fleet-wide invariant violation total; zero
	// when checking is off or everything held.
	Violations int
	// ViolationsByInvariant counts violations per checker family.
	ViolationsByInvariant map[check.Invariant]int
}

// DetectionRate reports the fraction of successful devices whose
// monitor recorded at least one attack (NaN-free: zero when no device
// succeeded).
func (s Summary) DetectionRate() float64 {
	ok := s.Devices - s.Failed
	if ok == 0 {
		return 0
	}
	return float64(s.Detected) / float64(ok)
}

// MeanDrainedJ reports average battery drain per successful device.
func (s Summary) MeanDrainedJ() float64 {
	ok := s.Devices - s.Failed
	if ok == 0 {
		return 0
	}
	return s.TotalDrainedJ / float64(ok)
}

// summarize merges results in index order. Iterating the sorted slice
// (not the maps) keeps every floating-point sum order-stable, which is
// what makes the rendered aggregate byte-identical across worker
// counts.
func summarize(results []Result) Summary {
	s := Summary{
		Devices:               len(results),
		EnergyByUID:           make(map[app.UID]float64),
		CollateralByUID:       make(map[app.UID]float64),
		AttacksByVector:       make(map[core.Vector]int),
		Labels:                make(map[app.UID]string),
		ViolationsByInvariant: make(map[check.Invariant]int),
	}
	for _, r := range results {
		if r.Err != nil {
			s.Failed++
			continue
		}
		s.TotalDrainedJ += r.DrainedJ
		s.Attacks += r.Attacks
		if r.Detected {
			s.Detected++
		}
		for uid, j := range r.EnergyByUID {
			s.EnergyByUID[uid] += j
		}
		for uid, j := range r.CollateralByUID {
			s.CollateralByUID[uid] += j
		}
		for v, n := range r.AttacksByVector {
			s.AttacksByVector[v] += n
		}
		// First non-empty label wins: a device can report a UID whose
		// label it never learned (e.g. an app uninstalled before
		// harvest), and taking that empty string first-come blinded
		// Render for the whole fleet.
		for uid, label := range r.Labels {
			if label == "" {
				continue
			}
			if _, ok := s.Labels[uid]; !ok {
				s.Labels[uid] = label
			}
		}
		for _, v := range r.Violations {
			s.Violations++
			s.ViolationsByInvariant[v.Invariant]++
		}
	}
	// Backfill: Render indexes Labels by every ledger UID, and a UID no
	// device could label must still print something identifiable.
	for uid := range s.EnergyByUID {
		if s.Labels[uid] == "" {
			s.Labels[uid] = fmt.Sprintf("uid:%d", uid)
		}
	}
	for uid := range s.CollateralByUID {
		if s.Labels[uid] == "" {
			s.Labels[uid] = fmt.Sprintf("uid:%d", uid)
		}
	}
	return s
}

// sortedUIDs returns m's keys in ascending UID order.
func sortedUIDs(m map[app.UID]float64) []app.UID {
	uids := make([]app.UID, 0, len(m))
	for uid := range m {
		uids = append(uids, uid)
	}
	sort.Slice(uids, func(i, j int) bool { return uids[i] < uids[j] })
	return uids
}

// Render prints the fleet report: outcome counts, merged energy
// ledgers, attack totals and per-device one-liners, all in deterministic
// order.
func (fr *FleetResult) Render() string {
	var b strings.Builder
	s := fr.Summary
	fmt.Fprintf(&b, "=== Fleet: %d devices, seed %d ===\n", s.Devices, fr.Seed)
	fmt.Fprintf(&b, "outcome:   %d ok, %d failed\n", s.Devices-s.Failed, s.Failed)
	fmt.Fprintf(&b, "drain:     %.3f J total, %.3f J mean/device\n", s.TotalDrainedJ, s.MeanDrainedJ())
	fmt.Fprintf(&b, "attacks:   %d total, detection rate %.1f%%\n", s.Attacks, s.DetectionRate()*100)
	if s.Violations > 0 {
		fmt.Fprintf(&b, "checks:    %d invariant violations\n", s.Violations)
		invs := make([]check.Invariant, 0, len(s.ViolationsByInvariant))
		for inv := range s.ViolationsByInvariant {
			invs = append(invs, inv)
		}
		sort.Slice(invs, func(i, j int) bool { return invs[i] < invs[j] })
		b.WriteString("  by invariant:")
		for _, inv := range invs {
			fmt.Fprintf(&b, " %s=%d", inv, s.ViolationsByInvariant[inv])
		}
		b.WriteString("\n")
	}
	if len(s.AttacksByVector) > 0 {
		vectors := make([]core.Vector, 0, len(s.AttacksByVector))
		for v := range s.AttacksByVector {
			vectors = append(vectors, v)
		}
		sort.Slice(vectors, func(i, j int) bool { return vectors[i] < vectors[j] })
		b.WriteString("  by vector:")
		for _, v := range vectors {
			fmt.Fprintf(&b, " %s=%d", v, s.AttacksByVector[v])
		}
		b.WriteString("\n")
	}
	if len(s.EnergyByUID) > 0 {
		b.WriteString("energy by app (fleet total):\n")
		for _, uid := range sortedUIDs(s.EnergyByUID) {
			fmt.Fprintf(&b, "  %-24s %12.3f J\n", s.Labels[uid], s.EnergyByUID[uid])
		}
	}
	if len(s.CollateralByUID) > 0 {
		b.WriteString("collateral by driving app (fleet total):\n")
		for _, uid := range sortedUIDs(s.CollateralByUID) {
			fmt.Fprintf(&b, "  %-24s %12.3f J\n", s.Labels[uid], s.CollateralByUID[uid])
		}
	}
	b.WriteString("devices:\n")
	for _, r := range fr.Results {
		if r.Err != nil {
			fmt.Fprintf(&b, "  #%03d seed=%-20d FAILED: %v\n", r.Index, r.Seed, firstLine(r.Err.Error()))
			continue
		}
		line := fmt.Sprintf("  #%03d seed=%-20d drained %10.3f J  battery %6.2f%%  attacks %d",
			r.Index, r.Seed, r.DrainedJ, r.BatteryPct, r.Attacks)
		if n := len(r.Violations); n > 0 {
			line += fmt.Sprintf("  VIOLATIONS %d (first: %s)", n, firstLine(r.Violations[0].String()))
		}
		b.WriteString(line + "\n")
	}
	return b.String()
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
