package fleet

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/app"
	"repro/internal/check"
	"repro/internal/core"
)

// Summary is the fleet-level merge of every successful device result.
// All maps are keyed the same way as the per-device results; because
// every device installs apps in the same order, a UID means the same
// app on every device in the fleet.
//
// Maps are allocated lazily: a fleet where every device failed, or one
// whose monitor is off, carries nil maps rather than five empty
// allocations per accumulator block. Nil and empty render identically
// (every map section is length-guarded), so laziness is invisible in
// the byte-determinism surface.
type Summary struct {
	// Devices and Failed count the fleet's outcomes; Detected counts
	// devices whose monitor recorded at least one attack.
	Devices  int
	Failed   int
	Detected int
	// TotalDrainedJ sums battery drain across successful devices.
	TotalDrainedJ float64
	// TotalSimH sums simulated hours across successful devices — the
	// numerator of the device-sim-hours/sec throughput stat.
	TotalSimH float64
	// EnergyByUID merges the baseline ledgers.
	EnergyByUID map[app.UID]float64
	// CollateralByUID merges E-Android's collateral maps.
	CollateralByUID map[app.UID]float64
	// AttacksByVector merges the attack logs.
	AttacksByVector map[core.Vector]int
	// Attacks is the fleet-wide attack total.
	Attacks int
	// Labels maps each UID to its label (taken from the first device
	// that reported a non-empty one; "uid:<n>" when none did).
	Labels map[app.UID]string
	// Violations is the fleet-wide invariant violation total; zero
	// when checking is off or everything held.
	Violations int
	// ViolationsByInvariant counts violations per checker family.
	ViolationsByInvariant map[check.Invariant]int
	// Failures samples the first maxFailures failed devices in index
	// order, so a streaming run (no retained []Result) can still report
	// which devices broke and why. Failed is the authoritative count.
	Failures []Failure
}

// Failure is one failed device's identity and error, sampled into
// Summary.Failures for streaming runs.
type Failure struct {
	Index int    `json:"index"`
	Seed  int64  `json:"seed"`
	Err   string `json:"err"`
}

// maxFailures bounds Summary.Failures: enough to diagnose, O(1) in
// fleet size.
const maxFailures = 8

// DetectionRate reports the fraction of successful devices whose
// monitor recorded at least one attack (NaN-free: zero when no device
// succeeded).
func (s Summary) DetectionRate() float64 {
	ok := s.Devices - s.Failed
	if ok == 0 {
		return 0
	}
	return float64(s.Detected) / float64(ok)
}

// MeanDrainedJ reports average battery drain per successful device.
func (s Summary) MeanDrainedJ() float64 {
	ok := s.Devices - s.Failed
	if ok == 0 {
		return 0
	}
	return s.TotalDrainedJ / float64(ok)
}

// fold reduces one device result into the summary. Callers must fold
// in index order within a block (the folder enforces this); iterating
// results — never maps — keeps every floating-point sum order-stable.
func (s *Summary) fold(r *Result) {
	s.Devices++
	if r.Err != nil {
		s.Failed++
		if len(s.Failures) < maxFailures {
			s.Failures = append(s.Failures, Failure{Index: r.Index, Seed: r.Seed, Err: r.Err.Error()})
		}
		return
	}
	s.TotalDrainedJ += r.DrainedJ
	s.TotalSimH += r.SimEnd.Hours()
	s.Attacks += r.Attacks
	if r.Detected {
		s.Detected++
	}
	if len(r.EnergyByUID) > 0 {
		if s.EnergyByUID == nil {
			s.EnergyByUID = make(map[app.UID]float64)
		}
		for uid, j := range r.EnergyByUID {
			s.EnergyByUID[uid] += j
		}
	}
	if len(r.CollateralByUID) > 0 {
		if s.CollateralByUID == nil {
			s.CollateralByUID = make(map[app.UID]float64)
		}
		for uid, j := range r.CollateralByUID {
			s.CollateralByUID[uid] += j
		}
	}
	if len(r.AttacksByVector) > 0 {
		if s.AttacksByVector == nil {
			s.AttacksByVector = make(map[core.Vector]int)
		}
		for v, n := range r.AttacksByVector {
			s.AttacksByVector[v] += n
		}
	}
	// First non-empty label wins: a device can report a UID whose
	// label it never learned (e.g. an app uninstalled before
	// harvest), and taking that empty string first-come blinded
	// Render for the whole fleet.
	for uid, label := range r.Labels {
		if label == "" {
			continue
		}
		if s.Labels == nil {
			s.Labels = make(map[app.UID]string)
		}
		if _, ok := s.Labels[uid]; !ok {
			s.Labels[uid] = label
		}
	}
	if len(r.Violations) > 0 {
		if s.ViolationsByInvariant == nil {
			s.ViolationsByInvariant = make(map[check.Invariant]int)
		}
		for _, v := range r.Violations {
			s.Violations++
			s.ViolationsByInvariant[v.Invariant]++
		}
	}
}

// merge absorbs a completed block partial. Blocks merge strictly in
// block order, so cross-block float sums follow the same fixed tree
// for every shard × worker combination.
func (s *Summary) merge(o *Summary) {
	s.Devices += o.Devices
	s.Failed += o.Failed
	s.Detected += o.Detected
	s.TotalDrainedJ += o.TotalDrainedJ
	s.TotalSimH += o.TotalSimH
	s.Attacks += o.Attacks
	s.Violations += o.Violations
	if len(o.EnergyByUID) > 0 {
		if s.EnergyByUID == nil {
			s.EnergyByUID = make(map[app.UID]float64)
		}
		for uid, j := range o.EnergyByUID {
			s.EnergyByUID[uid] += j
		}
	}
	if len(o.CollateralByUID) > 0 {
		if s.CollateralByUID == nil {
			s.CollateralByUID = make(map[app.UID]float64)
		}
		for uid, j := range o.CollateralByUID {
			s.CollateralByUID[uid] += j
		}
	}
	if len(o.AttacksByVector) > 0 {
		if s.AttacksByVector == nil {
			s.AttacksByVector = make(map[core.Vector]int)
		}
		for v, n := range o.AttacksByVector {
			s.AttacksByVector[v] += n
		}
	}
	for uid, label := range o.Labels {
		if s.Labels == nil {
			s.Labels = make(map[app.UID]string)
		}
		if _, ok := s.Labels[uid]; !ok {
			s.Labels[uid] = label
		}
	}
	if len(o.ViolationsByInvariant) > 0 {
		if s.ViolationsByInvariant == nil {
			s.ViolationsByInvariant = make(map[check.Invariant]int)
		}
		for inv, n := range o.ViolationsByInvariant {
			s.ViolationsByInvariant[inv] += n
		}
	}
	for _, f := range o.Failures {
		if len(s.Failures) >= maxFailures {
			break
		}
		s.Failures = append(s.Failures, f)
	}
}

// backfillLabels gives every ledger UID a printable name: Render
// indexes Labels by every ledger UID, and a UID no device could label
// must still print something identifiable. Runs once, after the final
// block merge.
func (s *Summary) backfillLabels() {
	if len(s.EnergyByUID)+len(s.CollateralByUID) > 0 && s.Labels == nil {
		s.Labels = make(map[app.UID]string)
	}
	for uid := range s.EnergyByUID {
		if s.Labels[uid] == "" {
			s.Labels[uid] = fmt.Sprintf("uid:%d", uid)
		}
	}
	for uid := range s.CollateralByUID {
		if s.Labels[uid] == "" {
			s.Labels[uid] = fmt.Sprintf("uid:%d", uid)
		}
	}
}

// summarize merges retained results through the same fold tree the
// streaming runner uses, so both paths are byte-identical by
// construction (and, for fleets of at most blockSize devices,
// identical to the original sequential merge).
func summarize(results []Result) Summary {
	var final Summary
	for start := 0; start < len(results); start += blockSize {
		var bs Summary
		for i := start; i < min(start+blockSize, len(results)); i++ {
			bs.fold(&results[i])
		}
		final.merge(&bs)
	}
	final.backfillLabels()
	return final
}

// sortedUIDs returns m's keys in ascending UID order.
func sortedUIDs(m map[app.UID]float64) []app.UID {
	uids := make([]app.UID, 0, len(m))
	for uid := range m {
		uids = append(uids, uid)
	}
	sort.Slice(uids, func(i, j int) bool { return uids[i] < uids[j] })
	return uids
}

// renderTo writes the merged report (outcome counts, ledgers, attack
// totals) without per-device lines — the part of the render both the
// streaming and retained paths share byte-for-byte.
func (s *Summary) renderTo(b *strings.Builder, seed int64) {
	fmt.Fprintf(b, "=== Fleet: %d devices, seed %d ===\n", s.Devices, seed)
	fmt.Fprintf(b, "outcome:   %d ok, %d failed\n", s.Devices-s.Failed, s.Failed)
	fmt.Fprintf(b, "drain:     %.3f J total, %.3f J mean/device\n", s.TotalDrainedJ, s.MeanDrainedJ())
	fmt.Fprintf(b, "attacks:   %d total, detection rate %.1f%%\n", s.Attacks, s.DetectionRate()*100)
	if s.Violations > 0 {
		fmt.Fprintf(b, "checks:    %d invariant violations\n", s.Violations)
		invs := make([]check.Invariant, 0, len(s.ViolationsByInvariant))
		for inv := range s.ViolationsByInvariant {
			invs = append(invs, inv)
		}
		sort.Slice(invs, func(i, j int) bool { return invs[i] < invs[j] })
		b.WriteString("  by invariant:")
		for _, inv := range invs {
			fmt.Fprintf(b, " %s=%d", inv, s.ViolationsByInvariant[inv])
		}
		b.WriteString("\n")
	}
	if len(s.AttacksByVector) > 0 {
		vectors := make([]core.Vector, 0, len(s.AttacksByVector))
		for v := range s.AttacksByVector {
			vectors = append(vectors, v)
		}
		sort.Slice(vectors, func(i, j int) bool { return vectors[i] < vectors[j] })
		b.WriteString("  by vector:")
		for _, v := range vectors {
			fmt.Fprintf(b, " %s=%d", v, s.AttacksByVector[v])
		}
		b.WriteString("\n")
	}
	if len(s.EnergyByUID) > 0 {
		b.WriteString("energy by app (fleet total):\n")
		for _, uid := range sortedUIDs(s.EnergyByUID) {
			fmt.Fprintf(b, "  %-24s %12.3f J\n", s.Labels[uid], s.EnergyByUID[uid])
		}
	}
	if len(s.CollateralByUID) > 0 {
		b.WriteString("collateral by driving app (fleet total):\n")
		for _, uid := range sortedUIDs(s.CollateralByUID) {
			fmt.Fprintf(b, "  %-24s %12.3f J\n", s.Labels[uid], s.CollateralByUID[uid])
		}
	}
}

// Render prints the shared merged report for a fleet run with the
// given seed. Byte-identical between the streaming and retained paths
// for the same spec, which is the acceptance surface the shard goldens
// pin.
func (s *Summary) Render(seed int64) string {
	var b strings.Builder
	s.renderTo(&b, seed)
	return b.String()
}

// Render prints the fleet report: the merged summary, then — when
// per-device results were retained — per-device one-liners, or — when
// streaming dropped them — the sampled failure list. All output is in
// deterministic order.
func (fr *FleetResult) Render() string {
	var b strings.Builder
	s := fr.Summary
	s.renderTo(&b, fr.Seed)
	if fr.Results != nil {
		b.WriteString("devices:\n")
		for _, r := range fr.Results {
			if r.Err != nil {
				fmt.Fprintf(&b, "  #%03d seed=%-20d FAILED: %v\n", r.Index, r.Seed, firstLine(r.Err.Error()))
				continue
			}
			line := fmt.Sprintf("  #%03d seed=%-20d drained %10.3f J  battery %6.2f%%  attacks %d",
				r.Index, r.Seed, r.DrainedJ, r.BatteryPct, r.Attacks)
			if n := len(r.Violations); n > 0 {
				line += fmt.Sprintf("  VIOLATIONS %d (first: %s)", n, firstLine(r.Violations[0].String()))
			}
			b.WriteString(line + "\n")
		}
		return b.String()
	}
	if len(s.Failures) > 0 {
		fmt.Fprintf(&b, "failures (first %d of %d):\n", len(s.Failures), s.Failed)
		for _, f := range s.Failures {
			fmt.Fprintf(&b, "  #%03d seed=%-20d FAILED: %s\n", f.Index, f.Seed, firstLine(f.Err))
		}
	}
	return b.String()
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
