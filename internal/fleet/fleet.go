// Package fleet runs many independent device simulations concurrently.
//
// The per-device engine stays strictly single-threaded — determinism is
// the simulation's hard requirement — so the unit of parallelism is the
// whole device: one engine per goroutine, never two goroutines in one
// engine. A bounded worker pool (default GOMAXPROCS) pulls device
// indices from a queue, builds each device from the shared Config
// template with a per-device seed derived from the fleet seed via
// splitmix64, runs its scenario plus horizon, and harvests a Result.
//
// Execution is streaming and memory-bounded by default: finished
// devices fold into a sharded accumulator (see accum.go) and are
// dropped, with a dispatch-permit window bounding how many results can
// be in flight or parked at once. Per-device retention is opt-in via
// Spec.RetainResults, and Spec.Stream hands every Result to a caller-
// owned sink exactly once. Aggregation is order-stable — the fold tree
// is fixed by the fleet size — so the merged summary and metrics are
// byte-identical for any shards × workers combination.
package fleet

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/app"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Spec describes one fleet run: N devices built from a common template,
// each scripted by Scenario and advanced to Horizon.
type Spec struct {
	// Devices is the fleet size. Must be at least 1.
	Devices int
	// Workers bounds concurrency; zero or negative means GOMAXPROCS.
	Workers int
	// Shards partitions the accumulator's fold blocks across
	// independent mutexes (block b belongs to shard b % Shards). Shards
	// tune lock contention only: the fold tree is fixed by the fleet
	// size, so the merged summary is byte-identical for every
	// shards × workers combination. Zero means Workers; values above
	// the block count are clamped.
	Shards int
	// Seed is the fleet seed. Device i runs with DeviceSeed(Seed, i),
	// so the whole fleet is reproducible from one number.
	Seed int64
	// Config is the device template. Its Seed field is overridden per
	// device; everything else is shared.
	Config device.Config
	// Configure, when non-nil, customizes device i's config after the
	// template copy and per-device seed assignment but before device
	// construction — the population layer's hardware-cohort hook. It
	// runs on worker goroutines and must be pure: the same i must
	// always produce the same mutation. The per-device Seed it sees is
	// the fleet's derivation and cannot be overridden.
	Configure func(i int, cfg *device.Config)
	// Scenario scripts device i. It may drive the device's virtual
	// clock itself (dev.Run) or rely on Horizon; a nil Scenario runs an
	// idle device. It must not retain dev past its return.
	Scenario func(i int, dev *device.Device) error
	// RetainResults keeps every per-device Result in
	// FleetResult.Results (the pre-streaming behaviour). Off by
	// default: a streaming fleet folds each finished device into the
	// bounded accumulator and drops it, so memory stays O(MaxPending)
	// instead of O(Devices).
	RetainResults bool
	// Stream, when non-nil, receives every finished Result exactly
	// once, from the worker goroutine that ran it (or the dispatcher,
	// for devices cancelled before dispatch). Delivery order is
	// scheduling-dependent — consumers needing order can index by
	// Result.Index. The Result must not be mutated: the accumulator
	// reads it after Stream returns.
	Stream func(Result)
	// MaxPending bounds how many dispatched devices may be unfolded
	// (in flight or parked out-of-order) at once — the streaming
	// path's memory high-water mark. Zero means max(4×Workers, 8);
	// values below Workers are raised to Workers so the pool never
	// starves.
	MaxPending int
	// Horizon is additional virtual time to run after Scenario returns.
	Horizon time.Duration
	// Collect, when non-nil, extracts a scenario-specific payload from
	// device i after the run; it lands in Result.Custom.
	Collect func(i int, dev *device.Device) (any, error)
	// Telemetry, when non-nil, builds one recorder per device with these
	// options (a recorder is single-goroutine, like the engine it
	// observes). Each device's metrics snapshot lands in Result.Metrics
	// and the index-order merge in FleetResult.Metrics, which is
	// byte-identical across worker counts.
	Telemetry *telemetry.Options
	// Progress, when non-nil, is called once per finished device, from
	// the worker goroutine that ran it. It MUST be safe for concurrent
	// calls (the obsv.FleetTracker hook is); completion order is
	// scheduling-dependent, so treat it as a live feed, not a
	// determinism surface.
	Progress func(Progress)
	// Logger, when non-nil, receives one structured Info per finished
	// device (Warn on failure). Like Progress it is called from worker
	// goroutines; obsv.NewLogHandler serializes writes internally.
	Logger *slog.Logger
	// Trace, when non-nil, threads causal span collection through the
	// run: head-sampled devices get a single-goroutine DeviceTracer
	// (wired into the device as Config.Trace), every device reports
	// its final virtual instant for the shard/job rollup, and kernel
	// dispatch batches are folded into spans from the telemetry trace
	// log after each device finishes. The assembled tree is a pure
	// function of the fleet's seed chain and per-device virtual
	// behaviour — byte-identical across workers × shards.
	Trace *trace.FleetTrace
}

// Progress is one device-completion tick of a fleet run: the live feed
// behind the obsv server's /fleet endpoint.
type Progress struct {
	// Index is the finished device's position in the fleet; Shard is
	// the accumulator shard its fold block belongs to.
	Index int `json:"index"`
	Shard int `json:"shard"`
	// Done is how many devices have finished so far (including this
	// one); Total is the fleet size.
	Done  int `json:"done"`
	Total int `json:"total"`
	// BatteryPct and DrainedJ summarize the device's battery at harvest.
	BatteryPct float64 `json:"battery_pct"`
	DrainedJ   float64 `json:"drained_j"`
	// Attacks counts the monitor's recorded attacks (zero when the
	// monitor is off); Violations counts invariant violations.
	Attacks    int `json:"attacks"`
	Violations int `json:"violations"`
	// Failed reports a device that ended in error; Err carries its text.
	Failed bool   `json:"failed"`
	Err    string `json:"err,omitempty"`
}

// Result is the harvest of one device's run. The standard energy and
// attack summaries are always populated on success; Custom holds
// whatever Spec.Collect returned.
type Result struct {
	// Index is the device's position in the fleet, 0-based.
	Index int
	// Seed is the derived per-device seed the run used.
	Seed int64
	// Err is non-nil when the device failed: build error, scenario
	// error, captured panic, or context cancellation. All other fields
	// except Index and Seed are zero when Err is set.
	Err error

	// SimEnd is the device's virtual clock at harvest time.
	SimEnd sim.Time
	// DrainedJ is total battery energy drained.
	DrainedJ float64
	// BatteryPct is the remaining charge percentage.
	BatteryPct float64
	// EnergyByUID is the baseline accountant's per-UID ledger
	// (including the screen and system pseudo-UIDs).
	EnergyByUID map[app.UID]float64
	// CollateralByUID is E-Android's per-driving-app collateral energy;
	// nil when the monitor is disabled.
	CollateralByUID map[app.UID]float64
	// AttacksByVector counts the monitor's recorded attacks per vector;
	// nil when the monitor is disabled.
	AttacksByVector map[core.Vector]int
	// Attacks is the total attack count.
	Attacks int
	// Detected reports whether the monitor recorded at least one
	// attack on this device.
	Detected bool
	// Labels maps every UID seen in this device's ledgers to its
	// human-readable label.
	Labels map[app.UID]string
	// Violations holds the device's runtime invariant violations; nil
	// unless the device template enables Config.Checks (or the
	// EANDROID_CHECK environment variable does) and something broke.
	Violations []check.Violation
	// Custom is Spec.Collect's payload, if any.
	Custom any
	// Metrics is the device's telemetry snapshot; nil unless
	// Spec.Telemetry was set and the device succeeded.
	Metrics *telemetry.Snapshot
}

// FleetResult is a completed fleet run: the merged summary, plus —
// only when Spec.RetainResults was set — the per-device results in
// index order.
type FleetResult struct {
	Seed    int64
	Workers int
	// Shards is the effective accumulator shard count the run used
	// (after clamping to the fold-block count).
	Shards int
	// Results holds every per-device result in index order; nil unless
	// Spec.RetainResults. Streaming runs consume results via
	// Spec.Stream and keep only the Summary.
	Results []Result
	Summary Summary
	// Metrics merges the per-device telemetry snapshots in device-index
	// order; nil unless Spec.Telemetry was set. Byte-identical across
	// worker counts (unlike WorkerStats, which measures the pool
	// itself).
	Metrics *telemetry.Snapshot
	// WorkerStats reports per-worker utilization of this run. It is
	// wall-clock measured and scheduling-dependent, hence deliberately
	// excluded from Metrics and Render, which are determinism-gated.
	WorkerStats []WorkerStat
}

// WorkerStat is one pool worker's share of a fleet run.
type WorkerStat struct {
	// Worker is the worker's index in the pool.
	Worker int
	// Devices is how many devices the worker ran.
	Devices int
	// Busy is wall-clock time spent running devices.
	Busy time.Duration
	// Utilization is Busy over the pool's total wall time, in [0, 1].
	Utilization float64
}

// WorkerUtilization renders the worker stats as a fleet-level telemetry
// snapshot (gauges fleet.worker<i>.devices / .busy_ms / .utilization).
// Keep it out of determinism comparisons: the values are wall-clock.
func (fr *FleetResult) WorkerUtilization() *telemetry.Snapshot {
	m := telemetry.NewMetrics()
	for _, ws := range fr.WorkerStats {
		prefix := fmt.Sprintf("fleet.worker%d.", ws.Worker)
		m.Gauge(prefix + "devices").Set(float64(ws.Devices))
		m.Gauge(prefix + "busy_ms").Set(float64(ws.Busy.Microseconds()) / 1000)
		m.Gauge(prefix + "utilization").Set(ws.Utilization)
	}
	return m.Snapshot()
}

// panicError preserves a captured scenario panic, including its stack,
// without tearing down the rest of the fleet.
type panicError struct {
	index int
	value any
	stack []byte
}

func (p *panicError) Error() string {
	return fmt.Sprintf("fleet: device %d panicked: %v\n%s", p.index, p.value, p.stack)
}

// splitmix64 is the SplitMix64 finalizer (Steele, Lea & Flood 2014) —
// one multiply-xorshift pipeline that spreads consecutive inputs across
// the full 64-bit space. It is the standard way to derive independent
// stream seeds from a master seed plus an index.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeviceSeed derives device i's engine seed from the fleet seed. The
// derivation is pure, so any subset of the fleet can be re-run in
// isolation and still see the same random stream.
func DeviceSeed(fleetSeed int64, i int) int64 {
	return int64(splitmix64(uint64(fleetSeed) + uint64(i)*0x9e3779b97f4a7c15))
}

// Run executes the fleet described by spec. Per-device failures (errors
// or panics) are captured in the matching Result.Err and never abort
// the rest of the fleet; Run itself returns an error only for an
// invalid spec. Cancelling ctx stops dispatching new devices and halts
// in-flight horizon runs at their next check; affected devices report
// ctx's error and still emit their Progress/Logger/Stream ticks, so a
// live feed always reaches Done == Total.
func Run(ctx context.Context, spec Spec) (*FleetResult, error) {
	if spec.Devices < 1 {
		return nil, fmt.Errorf("fleet: need at least 1 device, got %d", spec.Devices)
	}
	if spec.Horizon < 0 {
		return nil, fmt.Errorf("fleet: negative horizon %v", spec.Horizon)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > spec.Devices {
		workers = spec.Devices
	}
	shards := spec.Shards
	if shards <= 0 {
		shards = workers
	}
	window := spec.MaxPending
	if window <= 0 {
		window = 4 * workers
		if window < 8 {
			window = 8
		}
	}
	if window < workers {
		window = workers
	}

	f := newFolder(&spec, shards, window)
	stats := make([]WorkerStat, workers)
	var done atomic.Int64
	poolStart := time.Now()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stats[w].Worker = w
			// One event arena per worker: devices on this goroutine run
			// strictly sequentially, so each reuses its predecessor's
			// kernel Event allocations instead of growing a fresh heap
			// for the GC to sweep — the cross-worker GC pressure that
			// serialized high worker counts.
			pool := sim.NewEventPool()
			for i := range jobs {
				start := time.Now()
				res := runDevice(ctx, spec, i, pool)
				stats[w].Busy += time.Since(start)
				stats[w].Devices++
				if spec.Stream != nil {
					spec.Stream(res)
				}
				f.complete(i, res, true)
				notifyProgress(&spec, &res, int(done.Add(1)), f.shards)
			}
		}(w)
	}
dispatch:
	for i := 0; i < spec.Devices; i++ {
		// Acquire a dispatch permit first: it is released only when the
		// device's result folds, so the permit count bounds finished-
		// but-unfolded results — the streaming memory high-water mark.
		if !f.acquire(ctx.Done()) {
			cancelTail(&spec, f, &done, i, ctx.Err())
			break dispatch
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			f.unacquire() // device i was never handed to a worker
			cancelTail(&spec, f, &done, i, ctx.Err())
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	if wall := time.Since(poolStart); wall > 0 {
		for w := range stats {
			stats[w].Utilization = float64(stats[w].Busy) / float64(wall)
		}
	}

	summary, metrics, err := f.finalize()
	if err != nil {
		return nil, fmt.Errorf("fleet: merge metrics: %w", err)
	}
	return &FleetResult{
		Seed:        spec.Seed,
		Workers:     workers,
		Shards:      f.shards,
		Results:     f.results, // nil unless spec.RetainResults
		Summary:     summary,
		Metrics:     metrics,
		WorkerStats: stats,
	}, nil
}

// cancelTail marks devices [from, Devices) — never dispatched — as
// cancelled, feeding each through the same Stream/fold/Progress path a
// finished device takes. Emitting the ticks here is what lets SSE and
// jobs consumers observe the terminal Done == Total state after a
// cancellation instead of hanging at the last dispatched device.
func cancelTail(spec *Spec, f *folder, done *atomic.Int64, from int, cause error) {
	for j := from; j < spec.Devices; j++ {
		res := Result{Index: j, Seed: DeviceSeed(spec.Seed, j), Err: cause}
		if spec.Stream != nil {
			spec.Stream(res)
		}
		f.complete(j, res, false)
		notifyProgress(spec, &res, int(done.Add(1)), f.shards)
	}
}

// notifyProgress feeds one finished device into the Progress hook and
// the fleet logger. done is the completion count including this device.
func notifyProgress(spec *Spec, res *Result, done, shards int) {
	if spec.Progress == nil && spec.Logger == nil {
		return
	}
	p := Progress{
		Index:      res.Index,
		Shard:      (res.Index / blockSize) % shards,
		Done:       done,
		Total:      spec.Devices,
		BatteryPct: res.BatteryPct,
		DrainedJ:   res.DrainedJ,
		Attacks:    res.Attacks,
		Violations: len(res.Violations),
	}
	if res.Err != nil {
		p.Failed = true
		p.Err = res.Err.Error()
	}
	if spec.Logger != nil {
		if p.Failed {
			spec.Logger.Warn("fleet device failed",
				"device", p.Index, "done", p.Done, "total", p.Total, "err", p.Err)
		} else {
			spec.Logger.Info("fleet device done",
				"device", p.Index, "done", p.Done, "total", p.Total,
				"battery_pct", p.BatteryPct, "drained_j", p.DrainedJ,
				"attacks", p.Attacks, "violations", p.Violations)
		}
	}
	if spec.Progress != nil {
		spec.Progress(p)
	}
}

// runDevice builds, scripts, runs and harvests one device, converting
// panics into errors so a bad scenario cannot take down the pool. pool
// is the calling worker's private event arena (may be nil).
func runDevice(ctx context.Context, spec Spec, i int, pool *sim.EventPool) (res Result) {
	res = Result{Index: i, Seed: DeviceSeed(spec.Seed, i)}
	defer func() {
		if r := recover(); r != nil {
			res = Result{Index: res.Index, Seed: res.Seed,
				Err: &panicError{index: i, value: r, stack: debug.Stack()}}
		}
	}()
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}

	cfg := spec.Config
	cfg.Seed = res.Seed
	if spec.Configure != nil {
		spec.Configure(i, &cfg)
		cfg.Seed = res.Seed // seed derivation is the fleet's, not the hook's
	}
	cfg.Events = pool
	if spec.Telemetry != nil {
		// One recorder per device: recorders are single-goroutine, and
		// per-device registries are what make the merged snapshot
		// independent of worker scheduling.
		cfg.Telemetry = telemetry.New(*spec.Telemetry)
	}
	dt := spec.Trace.Device(i) // nil for unsampled indices
	cfg.Trace = dt
	dev, err := device.New(cfg)
	if err != nil {
		res.Err = fmt.Errorf("fleet: device %d: %w", i, err)
		return res
	}
	// Hand the device's timing wheel (and resident events) back to the
	// worker's pool once we are done with it — finished or failed — so
	// the next device on this worker starts with warm arenas.
	defer dev.Engine.Recycle()
	if spec.Scenario != nil {
		if err := spec.Scenario(i, dev); err != nil {
			res.Err = fmt.Errorf("fleet: device %d scenario: %w", i, err)
			return res
		}
	}
	if err := runHorizon(ctx, dev, spec.Horizon); err != nil {
		res.Err = fmt.Errorf("fleet: device %d: %w", i, err)
		return res
	}
	harvest(&res, dev)
	res.Violations = dev.FinishChecks()
	if dev.Telemetry != nil {
		res.Metrics = dev.Telemetry.Metrics().Snapshot()
	}
	if spec.Trace != nil {
		// Fold same-instant wheel dispatch runs from the kernel trace
		// log into batch spans. The fold lives here — not in the trace
		// package — so trace never imports telemetry.
		if dt != nil && dev.Telemetry != nil {
			dev.Telemetry.ForEachKernelBatch(func(b telemetry.KernelBatch) {
				dt.Phase(trace.PhaseKernelBatch, b.T, b.T, float64(b.N))
			})
		}
		spec.Trace.Finish(i, dt, res.SimEnd)
	}
	if spec.Collect != nil {
		custom, err := spec.Collect(i, dev)
		if err != nil {
			res.Err = fmt.Errorf("fleet: device %d collect: %w", i, err)
			return res
		}
		res.Custom = custom
	}
	return res
}

// horizonChecks is how many times a horizon run polls for cancellation.
// Running to an absolute target in slices is behaviour-identical to one
// RunUntil call — the event stream and random draws are untouched — so
// chunking costs nothing in determinism.
const horizonChecks = 32

func runHorizon(ctx context.Context, dev *device.Device, horizon time.Duration) error {
	if horizon <= 0 {
		return nil
	}
	target := dev.Engine.Now().Add(horizon)
	chunk := horizon / horizonChecks
	for dev.Engine.Now().Before(target) {
		if err := ctx.Err(); err != nil {
			return err
		}
		next := dev.Engine.Now().Add(chunk)
		if chunk <= 0 || next.After(target) {
			next = target
		}
		if err := dev.Engine.RunUntil(next); err != nil {
			return err
		}
	}
	return nil
}

// harvest reads the device's ledgers into res. It flushes first, so the
// numbers are settled up to the device's current instant.
func harvest(res *Result, dev *device.Device) {
	dev.Flush()
	res.SimEnd = dev.Engine.Now()
	res.DrainedJ = dev.Battery.DrainedJ()
	res.BatteryPct = dev.Battery.Percent()
	res.EnergyByUID = make(map[app.UID]float64)
	res.Labels = make(map[app.UID]string)
	for _, e := range dev.Android.Entries() {
		res.EnergyByUID[e.UID] += e.TotalJ
		res.Labels[e.UID] = dev.Packages.Label(e.UID)
	}
	if dev.EAndroid == nil {
		return
	}
	res.AttacksByVector = make(map[core.Vector]int)
	drivers := make(map[app.UID]bool)
	for _, a := range dev.EAndroid.Attacks() {
		res.AttacksByVector[a.Vector]++
		res.Attacks++
		drivers[a.Driving] = true
	}
	res.Detected = res.Attacks > 0
	res.CollateralByUID = make(map[app.UID]float64)
	for uid := range drivers {
		res.CollateralByUID[uid] = dev.EAndroid.CollateralJ(uid)
		if _, ok := res.Labels[uid]; !ok {
			res.Labels[uid] = dev.Packages.Label(uid)
		}
	}
}
