package fleet

import (
	"strings"
	"testing"

	"repro/internal/app"
	"repro/internal/check"
)

// Regression: the label merge used to take the first label seen for a
// UID — including the empty string a device reports for an app it could
// no longer name (e.g. uninstalled before harvest) — which blanked the
// fleet render for everyone. First NON-empty label wins now, with a
// "uid:<n>" fallback when no device could name the UID.
func TestSummarizeLabelFallback(t *testing.T) {
	rs := []Result{
		{Index: 0,
			EnergyByUID: map[app.UID]float64{10: 5, 11: 2},
			Labels:      map[app.UID]string{10: "", 11: ""}},
		{Index: 1,
			EnergyByUID:     map[app.UID]float64{10: 3},
			CollateralByUID: map[app.UID]float64{12: 1},
			Labels:          map[app.UID]string{10: "Victim"}},
	}
	s := summarize(rs)
	if got := s.Labels[10]; got != "Victim" {
		t.Fatalf("Labels[10] = %q, want the later device's non-empty label", got)
	}
	if got := s.Labels[11]; got != "uid:11" {
		t.Fatalf("Labels[11] = %q, want the uid fallback", got)
	}
	if got := s.Labels[12]; got != "uid:12" {
		t.Fatalf("Labels[12] = %q, want the uid fallback for collateral-only UIDs", got)
	}
	fr := &FleetResult{Results: rs, Summary: s}
	for i, line := range strings.Split(fr.Render(), "\n") {
		if strings.Contains(line, " J") && strings.HasPrefix(strings.TrimSpace(line), "J") {
			t.Fatalf("render line %d has an empty label: %q", i, line)
		}
	}
}

func TestSummarizeCountsViolations(t *testing.T) {
	rs := []Result{
		{Index: 0, Violations: []check.Violation{
			{Invariant: check.InvConservation, Detail: "d0"},
			{Invariant: check.InvLifecycle, Detail: "d1"},
		}},
		{Index: 1, Violations: []check.Violation{
			{Invariant: check.InvConservation, Detail: "d2"},
		}},
		{Index: 2},
	}
	s := summarize(rs)
	if s.Violations != 3 {
		t.Fatalf("Violations = %d, want 3", s.Violations)
	}
	if s.ViolationsByInvariant[check.InvConservation] != 2 ||
		s.ViolationsByInvariant[check.InvLifecycle] != 1 {
		t.Fatalf("ViolationsByInvariant = %v", s.ViolationsByInvariant)
	}
	out := (&FleetResult{Results: rs, Summary: s}).Render()
	if !strings.Contains(out, "checks:    3 invariant violations") {
		t.Fatalf("render missing fleet violation total:\n%s", out)
	}
	if !strings.Contains(out, "conservation=2") || !strings.Contains(out, "lifecycle=1") {
		t.Fatalf("render missing per-invariant counts:\n%s", out)
	}
	if !strings.Contains(out, "VIOLATIONS 2") {
		t.Fatalf("render missing per-device violation flag:\n%s", out)
	}
}

// A clean fleet must render byte-identically to the pre-checker format:
// no "checks:" line, no per-device VIOLATIONS suffix.
func TestRenderOmitsCheckLinesWhenClean(t *testing.T) {
	rs := []Result{{Index: 0, DrainedJ: 1}}
	out := (&FleetResult{Results: rs, Summary: summarize(rs)}).Render()
	if strings.Contains(out, "checks:") || strings.Contains(out, "VIOLATIONS") {
		t.Fatalf("clean fleet render mentions checks:\n%s", out)
	}
}

// Regression for the eager-map bug: summarize used to allocate all
// five merge maps even when no device contributed to them. The
// accumulator now allocates lazily, and the render must stay
// byte-identical (length-guarded sections treat nil and empty alike).
func TestSummaryMapsAllocatedLazily(t *testing.T) {
	rs := []Result{
		{Index: 0, Err: errForTest("down")},
		{Index: 1, Err: errForTest("down")},
	}
	s := summarize(rs)
	if s.EnergyByUID != nil || s.CollateralByUID != nil || s.AttacksByVector != nil ||
		s.Labels != nil || s.ViolationsByInvariant != nil {
		t.Fatalf("all-failed summary allocated merge maps: %+v", s)
	}
	if s.Failed != 2 || len(s.Failures) != 2 {
		t.Fatalf("failed = %d, failures = %d, want 2/2", s.Failed, len(s.Failures))
	}

	// Monitor-off devices contribute ledgers and labels but no attack
	// or collateral maps.
	rs = []Result{{Index: 0, DrainedJ: 3,
		EnergyByUID: map[app.UID]float64{10: 3},
		Labels:      map[app.UID]string{10: "App"}}}
	s = summarize(rs)
	if s.EnergyByUID == nil || s.Labels == nil {
		t.Fatal("contributing maps not built")
	}
	if s.CollateralByUID != nil || s.AttacksByVector != nil || s.ViolationsByInvariant != nil {
		t.Fatal("monitor-off summary allocated monitor maps")
	}
	out := s.Render(0)
	if !strings.Contains(out, "energy by app") || strings.Contains(out, "collateral") {
		t.Fatalf("lazy summary render wrong:\n%s", out)
	}
}

// Streaming renders list the sampled failures in place of the dropped
// per-device lines.
func TestRenderFailuresSampleWithoutResults(t *testing.T) {
	rs := make([]Result, 12)
	for i := range rs {
		rs[i] = Result{Index: i, Seed: int64(i), Err: errForTest("boom")}
	}
	fr := &FleetResult{Summary: summarize(rs)} // Results nil: streaming run
	out := fr.Render()
	if !strings.Contains(out, "failures (first 8 of 12):") {
		t.Fatalf("streaming render missing failure sample header:\n%s", out)
	}
	if strings.Contains(out, "devices:") {
		t.Fatalf("streaming render printed a devices section:\n%s", out)
	}
	if got := strings.Count(out, "FAILED: boom"); got != 8 {
		t.Fatalf("failure lines = %d, want maxFailures (8)", got)
	}
}

type errForTest string

func (e errForTest) Error() string { return string(e) }
