package fleet

import (
	"strings"
	"testing"

	"repro/internal/app"
	"repro/internal/check"
)

// Regression: the label merge used to take the first label seen for a
// UID — including the empty string a device reports for an app it could
// no longer name (e.g. uninstalled before harvest) — which blanked the
// fleet render for everyone. First NON-empty label wins now, with a
// "uid:<n>" fallback when no device could name the UID.
func TestSummarizeLabelFallback(t *testing.T) {
	rs := []Result{
		{Index: 0,
			EnergyByUID: map[app.UID]float64{10: 5, 11: 2},
			Labels:      map[app.UID]string{10: "", 11: ""}},
		{Index: 1,
			EnergyByUID:     map[app.UID]float64{10: 3},
			CollateralByUID: map[app.UID]float64{12: 1},
			Labels:          map[app.UID]string{10: "Victim"}},
	}
	s := summarize(rs)
	if got := s.Labels[10]; got != "Victim" {
		t.Fatalf("Labels[10] = %q, want the later device's non-empty label", got)
	}
	if got := s.Labels[11]; got != "uid:11" {
		t.Fatalf("Labels[11] = %q, want the uid fallback", got)
	}
	if got := s.Labels[12]; got != "uid:12" {
		t.Fatalf("Labels[12] = %q, want the uid fallback for collateral-only UIDs", got)
	}
	fr := &FleetResult{Results: rs, Summary: s}
	for i, line := range strings.Split(fr.Render(), "\n") {
		if strings.Contains(line, " J") && strings.HasPrefix(strings.TrimSpace(line), "J") {
			t.Fatalf("render line %d has an empty label: %q", i, line)
		}
	}
}

func TestSummarizeCountsViolations(t *testing.T) {
	rs := []Result{
		{Index: 0, Violations: []check.Violation{
			{Invariant: check.InvConservation, Detail: "d0"},
			{Invariant: check.InvLifecycle, Detail: "d1"},
		}},
		{Index: 1, Violations: []check.Violation{
			{Invariant: check.InvConservation, Detail: "d2"},
		}},
		{Index: 2},
	}
	s := summarize(rs)
	if s.Violations != 3 {
		t.Fatalf("Violations = %d, want 3", s.Violations)
	}
	if s.ViolationsByInvariant[check.InvConservation] != 2 ||
		s.ViolationsByInvariant[check.InvLifecycle] != 1 {
		t.Fatalf("ViolationsByInvariant = %v", s.ViolationsByInvariant)
	}
	out := (&FleetResult{Results: rs, Summary: s}).Render()
	if !strings.Contains(out, "checks:    3 invariant violations") {
		t.Fatalf("render missing fleet violation total:\n%s", out)
	}
	if !strings.Contains(out, "conservation=2") || !strings.Contains(out, "lifecycle=1") {
		t.Fatalf("render missing per-invariant counts:\n%s", out)
	}
	if !strings.Contains(out, "VIOLATIONS 2") {
		t.Fatalf("render missing per-device violation flag:\n%s", out)
	}
}

// A clean fleet must render byte-identically to the pre-checker format:
// no "checks:" line, no per-device VIOLATIONS suffix.
func TestRenderOmitsCheckLinesWhenClean(t *testing.T) {
	rs := []Result{{Index: 0, DrainedJ: 1}}
	out := (&FleetResult{Results: rs, Summary: summarize(rs)}).Render()
	if strings.Contains(out, "checks:") || strings.Contains(out, "VIOLATIONS") {
		t.Fatalf("clean fleet render mentions checks:\n%s", out)
	}
}
