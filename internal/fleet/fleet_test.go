package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// attackSpec is the canonical test fleet: every device installs the
// demo cast and mounts the service-pin attack, so the monitor has real
// collateral energy and attacks to aggregate. Tests that read
// fr.Results rely on the RetainResults here; streaming tests clear it.
func attackSpec(devices, workers int, seed int64) Spec {
	return Spec{
		Devices:       devices,
		Workers:       workers,
		Seed:          seed,
		RetainResults: true,
		Config:        device.Config{EAndroid: true},
		Scenario: func(i int, dev *device.Device) error {
			w, err := scenario.Populate(dev)
			if err != nil {
				return err
			}
			if err := w.ForceScreenOn(); err != nil {
				return err
			}
			return w.Attack3ServicePin(10 * time.Second)
		},
		Horizon: 5 * time.Second,
	}
}

func TestRunRejectsBadSpec(t *testing.T) {
	if _, err := Run(context.Background(), Spec{Devices: 0}); err == nil {
		t.Fatal("expected error for zero devices")
	}
	if _, err := Run(context.Background(), Spec{Devices: 1, Horizon: -time.Second}); err == nil {
		t.Fatal("expected error for negative horizon")
	}
}

func TestFleetRunsEveryDevice(t *testing.T) {
	fr, err := Run(context.Background(), attackSpec(6, 3, 42))
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Results) != 6 {
		t.Fatalf("results = %d, want 6", len(fr.Results))
	}
	for i, r := range fr.Results {
		if r.Index != i {
			t.Fatalf("results not index-ordered: results[%d].Index = %d", i, r.Index)
		}
		if r.Err != nil {
			t.Fatalf("device %d failed: %v", i, r.Err)
		}
		if r.Seed != DeviceSeed(42, i) {
			t.Fatalf("device %d seed = %d, want %d", i, r.Seed, DeviceSeed(42, i))
		}
		if r.DrainedJ <= 0 {
			t.Fatalf("device %d drained %v J, want > 0", i, r.DrainedJ)
		}
		if !r.Detected || r.AttacksByVector[core.VectorServiceBind] == 0 {
			t.Fatalf("device %d: service-bind attack not recorded: %+v", i, r.AttacksByVector)
		}
	}
	s := fr.Summary
	if s.Failed != 0 || s.Devices != 6 {
		t.Fatalf("summary outcome = %d/%d", s.Devices-s.Failed, s.Devices)
	}
	if s.DetectionRate() != 1 {
		t.Fatalf("detection rate = %v, want 1", s.DetectionRate())
	}
	if s.AttacksByVector[core.VectorServiceBind] != 6 {
		t.Fatalf("merged service-bind count = %d, want 6", s.AttacksByVector[core.VectorServiceBind])
	}
	if s.TotalDrainedJ <= 0 {
		t.Fatal("summary drained nothing")
	}
}

func TestDeviceSeedsDifferAndAreStable(t *testing.T) {
	seen := make(map[int64]int)
	for i := 0; i < 1000; i++ {
		s := DeviceSeed(7, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between device %d and %d", prev, i)
		}
		seen[s] = i
		if s != DeviceSeed(7, i) {
			t.Fatal("DeviceSeed is not pure")
		}
	}
	if DeviceSeed(7, 0) == DeviceSeed(8, 0) {
		t.Fatal("different fleet seeds produced the same device seed")
	}
}

// The acceptance gate: the rendered aggregate must be byte-identical
// for any worker × shard combination, because per-device seeds depend
// only on the fleet seed and the accumulator's fold tree is fixed by
// the fleet size.
func TestAggregateByteIdenticalAcrossWorkerCounts(t *testing.T) {
	var golden string
	for _, workers := range []int{1, 4, 8} {
		for _, shards := range []int{1, 8} {
			spec := attackSpec(9, workers, 1234)
			spec.Shards = shards
			fr, err := Run(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			got := fr.Render()
			if golden == "" {
				golden = got
				continue
			}
			if got != golden {
				t.Fatalf("aggregate differs at workers=%d shards=%d:\n--- golden ---\n%s\n--- got ---\n%s",
					workers, shards, golden, got)
			}
		}
	}
}

// The streaming acceptance gate: with retention off, every
// shards × workers combination must produce a summary render
// byte-identical to the retained-results path on the same seed, and
// the Stream sink must see every device exactly once.
func TestStreamingMatchesRetainedAcrossShardCounts(t *testing.T) {
	retained, err := Run(context.Background(), attackSpec(9, 1, 1234))
	if err != nil {
		t.Fatal(err)
	}
	golden := retained.Summary.Render(retained.Seed)
	for _, workers := range []int{1, 8} {
		for _, shards := range []int{1, 8} {
			spec := attackSpec(9, workers, 1234)
			spec.RetainResults = false
			var streamed atomic.Int64
			spec.Stream = func(r Result) {
				if r.Err == nil && r.DrainedJ > 0 {
					streamed.Add(1)
				}
			}
			spec.Shards = shards
			fr, err := Run(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			if fr.Results != nil {
				t.Fatal("streaming run retained results")
			}
			if got := fr.Summary.Render(fr.Seed); got != golden {
				t.Fatalf("streaming summary differs at workers=%d shards=%d:\n--- golden ---\n%s\n--- got ---\n%s",
					workers, shards, golden, got)
			}
			if n := streamed.Load(); n != 9 {
				t.Fatalf("stream sink saw %d successful devices, want 9", n)
			}
			// The full streaming render is the summary plus the sampled
			// failure list — for a clean run, exactly the shared prefix of
			// the retained render.
			if !strings.HasPrefix(retained.Render(), fr.Render()) {
				t.Fatalf("streaming render is not a prefix of the retained render:\n%s", fr.Render())
			}
		}
	}
}

// Multi-block determinism: a fleet wider than one fold block (1024
// devices) must still merge byte-identically across shard and worker
// counts, with out-of-order completions parking in the pending maps.
// Runs under -race in CI, which is what makes the concurrent shard
// folding + Stream sink combination a satellite acceptance test.
func TestStreamingMultiBlockByteIdentical(t *testing.T) {
	const devices = blockSize + 137
	build := func(workers, shards int) Spec {
		return Spec{
			Devices: devices,
			Workers: workers,
			Shards:  shards,
			Seed:    99,
			Scenario: func(i int, dev *device.Device) error {
				w, err := scenario.Populate(dev)
				if err != nil {
					return err
				}
				if i%3 == 0 {
					return w.ForceScreenOn()
				}
				return nil
			},
			Horizon: 2 * time.Second,
		}
	}
	var golden string
	var outOfOrder atomic.Int64
	for _, workers := range []int{1, 8} {
		for _, shards := range []int{1, 8} {
			spec := build(workers, shards)
			var last atomic.Int64
			last.Store(-1)
			spec.Stream = func(r Result) {
				// Record scheduling-dependent out-of-order delivery: the
				// whole point of the fold tree is that it cannot leak into
				// the summary.
				if prev := last.Swap(int64(r.Index)); int64(r.Index) < prev {
					outOfOrder.Add(1)
				}
			}
			fr, err := Run(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			if fr.Summary.Devices != devices || fr.Summary.Failed != 0 {
				t.Fatalf("outcome %d/%d", fr.Summary.Devices-fr.Summary.Failed, fr.Summary.Devices)
			}
			if fr.Summary.TotalSimH <= 0 {
				t.Fatal("TotalSimH not accumulated")
			}
			got := fr.Summary.Render(fr.Seed)
			if golden == "" {
				golden = got
				continue
			}
			if got != golden {
				t.Fatalf("multi-block summary differs at workers=%d shards=%d", workers, shards)
			}
		}
	}
	// Delivery order is scheduling-dependent, so the count is not
	// asserted — the gate is that it cannot leak into the summary.
	t.Logf("out-of-order stream deliveries observed: %d", outOfOrder.Load())
}

// Regression for the cancellation feed bug: cancelled and undispatched
// devices must still emit Progress ticks, so a live consumer (obsv
// /fleet SSE, jobs status) observes the terminal Done == Total state.
func TestCancellationProgressReachesTotal(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ticks, maxDone atomic.Int64
	spec := Spec{
		Devices: 64,
		Workers: 2,
		Seed:    3,
		Scenario: func(i int, dev *device.Device) error {
			if i == 0 {
				cancel()
			}
			return nil
		},
		Horizon: time.Hour,
		Progress: func(p Progress) {
			ticks.Add(1)
			for {
				cur := maxDone.Load()
				if int64(p.Done) <= cur || maxDone.CompareAndSwap(cur, int64(p.Done)) {
					break
				}
			}
		},
	}
	fr, err := Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := ticks.Load(); got != 64 {
		t.Fatalf("progress ticks = %d, want one per device (64)", got)
	}
	if got := maxDone.Load(); got != 64 {
		t.Fatalf("max Done = %d, want Total (64): cancelled devices missing from the feed", got)
	}
	if fr.Summary.Devices != 64 {
		t.Fatalf("summary devices = %d, want 64", fr.Summary.Devices)
	}
	if fr.Summary.Failed == 0 || len(fr.Summary.Failures) == 0 {
		t.Fatal("cancellation produced no sampled failures")
	}
}

// The dispatch-permit window must bound how many devices can be
// dispatched while nothing folds: with the block head stalled, at most
// MaxPending devices may start.
func TestMaxPendingBoundsDispatch(t *testing.T) {
	const window = 6
	release := make(chan struct{})
	var started, finished, startedBeforeRelease atomic.Int64
	var once sync.Once
	spec := Spec{
		Devices:    32,
		Workers:    2,
		Seed:       7,
		MaxPending: window,
		Scenario: func(i int, dev *device.Device) error {
			started.Add(1)
			if i == 0 {
				<-release // stall the block head: nothing can fold
				return nil
			}
			if finished.Add(1) == 4 {
				once.Do(func() {
					startedBeforeRelease.Store(started.Load())
					close(release)
				})
			}
			return nil
		},
	}
	if _, err := Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if got := startedBeforeRelease.Load(); got > window {
		t.Fatalf("%d devices started while the fold was stalled, want <= MaxPending (%d)", got, window)
	}
	if got := started.Load(); got != 32 {
		t.Fatalf("started = %d, want 32", got)
	}
}

func TestScenarioErrorIsIsolated(t *testing.T) {
	boom := errors.New("boom")
	spec := attackSpec(4, 2, 9)
	inner := spec.Scenario
	spec.Scenario = func(i int, dev *device.Device) error {
		if i == 2 {
			return boom
		}
		return inner(i, dev)
	}
	fr, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Results[2].Err == nil || !errors.Is(fr.Results[2].Err, boom) {
		t.Fatalf("device 2 err = %v, want boom", fr.Results[2].Err)
	}
	if fr.Summary.Failed != 1 {
		t.Fatalf("failed = %d, want 1", fr.Summary.Failed)
	}
	for _, i := range []int{0, 1, 3} {
		if fr.Results[i].Err != nil {
			t.Fatalf("healthy device %d infected by failure: %v", i, fr.Results[i].Err)
		}
	}
}

func TestPanicIsCapturedPerDevice(t *testing.T) {
	spec := attackSpec(3, 3, 5)
	inner := spec.Scenario
	spec.Scenario = func(i int, dev *device.Device) error {
		if i == 1 {
			panic("scripted panic")
		}
		return inner(i, dev)
	}
	fr, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	got := fr.Results[1].Err
	if got == nil || !strings.Contains(got.Error(), "scripted panic") {
		t.Fatalf("device 1 err = %v, want captured panic", got)
	}
	if !strings.Contains(got.Error(), "fleet_test.go") {
		t.Fatalf("panic error lost its stack: %v", got)
	}
	if fr.Results[0].Err != nil || fr.Results[2].Err != nil {
		t.Fatal("panic leaked into sibling devices")
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 64)
	spec := Spec{
		Devices:       64,
		Workers:       2,
		Seed:          3,
		RetainResults: true,
		Scenario: func(i int, dev *device.Device) error {
			started <- struct{}{}
			if i == 0 {
				cancel()
			}
			return nil
		},
		Horizon: time.Hour, // long horizon: cancellation must interrupt it
	}
	fr, err := Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	cancelled := 0
	for _, r := range fr.Results {
		if errors.Is(r.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("no device observed the cancellation")
	}
	if fr.Summary.Failed != cancelled {
		t.Fatalf("summary failed = %d, want %d", fr.Summary.Failed, cancelled)
	}
}

func TestCollectPayload(t *testing.T) {
	spec := attackSpec(3, 0, 11)
	spec.Collect = func(i int, dev *device.Device) (any, error) {
		return fmt.Sprintf("device-%d", i), nil
	}
	fr, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range fr.Results {
		if r.Custom != fmt.Sprintf("device-%d", i) {
			t.Fatalf("device %d custom = %v", i, r.Custom)
		}
	}
}

func TestNilScenarioIdleFleet(t *testing.T) {
	fr, err := Run(context.Background(), Spec{Devices: 2, Seed: 1, Horizon: time.Second, RetainResults: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range fr.Results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.SimEnd != 0 && r.SimEnd.Seconds() != 1 {
			t.Fatalf("idle device clock = %v", r.SimEnd)
		}
	}
}

// telemetrySpec is attackSpec plus one recorder per device.
func telemetrySpec(devices, workers int, seed int64) Spec {
	spec := attackSpec(devices, workers, seed)
	spec.Telemetry = &telemetry.Options{}
	return spec
}

// The telemetry acceptance gate: the merged metric snapshot must be
// byte-identical for any worker count, because each device gets its own
// recorder and the merge runs in device-index order.
func TestMetricsByteIdenticalAcrossWorkerCounts(t *testing.T) {
	var golden string
	for _, workers := range []int{1, 8} {
		fr, err := Run(context.Background(), telemetrySpec(8, workers, 77))
		if err != nil {
			t.Fatal(err)
		}
		if fr.Metrics == nil {
			t.Fatal("fleet metrics snapshot missing")
		}
		for i, r := range fr.Results {
			if r.Metrics == nil {
				t.Fatalf("device %d metrics snapshot missing", i)
			}
		}
		got := fr.Metrics.Text()
		if got == "" {
			t.Fatal("fleet metrics snapshot empty")
		}
		if !strings.Contains(got, "sim.events_fired") {
			t.Fatalf("merged snapshot missing kernel counter:\n%s", got)
		}
		if golden == "" {
			golden = got
			continue
		}
		if got != golden {
			t.Fatalf("metrics differ between workers=1 and workers=%d:\n--- golden ---\n%s\n--- got ---\n%s",
				workers, golden, got)
		}
	}
}

func TestNoTelemetryMeansNoSnapshots(t *testing.T) {
	fr, err := Run(context.Background(), attackSpec(2, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if fr.Metrics != nil {
		t.Fatal("fleet built a metrics snapshot without Spec.Telemetry")
	}
	for i, r := range fr.Results {
		if r.Metrics != nil {
			t.Fatalf("device %d has a metrics snapshot without Spec.Telemetry", i)
		}
	}
}

// A panicking tracer must follow the same policy as a panicking
// scenario: the engine contains it, the run surfaces it, and the fleet
// marks only that device failed.
func TestTracerPanicMarksDeviceFailed(t *testing.T) {
	spec := telemetrySpec(3, 3, 13)
	inner := spec.Scenario
	spec.Scenario = func(i int, dev *device.Device) error {
		if err := inner(i, dev); err != nil {
			return err
		}
		if i == 1 {
			dev.Engine.Trace(func(sim.Time, string, int) { panic("tracer boom") })
			// The attack scenario mutates state synchronously, so give
			// the tracer a kernel event to fire on inside the horizon.
			dev.Engine.After(time.Second, "bait", func() {})
		}
		return nil
	}
	fr, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var tpe *sim.TracerPanicError
	if fr.Results[1].Err == nil || !errors.As(fr.Results[1].Err, &tpe) {
		t.Fatalf("device 1 err = %v, want *sim.TracerPanicError", fr.Results[1].Err)
	}
	if fr.Summary.Failed != 1 {
		t.Fatalf("failed = %d, want 1", fr.Summary.Failed)
	}
	if fr.Results[0].Err != nil || fr.Results[2].Err != nil {
		t.Fatal("tracer panic leaked into sibling devices")
	}
	// The merge still covers the healthy devices.
	if fr.Metrics == nil || len(fr.Metrics.Counters) == 0 {
		t.Fatal("healthy devices' metrics lost after a sibling tracer panic")
	}
}

func TestWorkerStatsCoverFleet(t *testing.T) {
	fr, err := Run(context.Background(), telemetrySpec(6, 3, 21))
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.WorkerStats) != 3 {
		t.Fatalf("worker stats = %d entries, want 3", len(fr.WorkerStats))
	}
	devices := 0
	for i, ws := range fr.WorkerStats {
		if ws.Worker != i {
			t.Fatalf("stats[%d].Worker = %d", i, ws.Worker)
		}
		if ws.Utilization < 0 || ws.Utilization > 1 {
			t.Fatalf("worker %d utilization = %v, want [0,1]", i, ws.Utilization)
		}
		devices += ws.Devices
	}
	if devices != 6 {
		t.Fatalf("worker device counts sum to %d, want 6", devices)
	}
	snap := fr.WorkerUtilization()
	if snap == nil || len(snap.Gauges) != 3*3 {
		t.Fatalf("utilization snapshot = %+v, want 9 gauges", snap)
	}
}
