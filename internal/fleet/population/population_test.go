package population

import (
	"context"
	"testing"

	"repro/internal/corpus"
	"repro/internal/fleet"
)

// Assignment must be a pure function of (seed, index) and must track
// the cohort weights over a large draw.
func TestAssignDeterministicAndWeighted(t *testing.T) {
	pop := Default()
	if err := pop.Validate(); err != nil {
		t.Fatal(err)
	}
	const n = 20000
	total := pop.totalWeight()
	counts := make([]int, len(pop.Cohorts))
	for i := 0; i < n; i++ {
		ci := pop.Assign(42, i)
		if again := pop.Assign(42, i); again != ci {
			t.Fatalf("Assign(42, %d) unstable: %d then %d", i, ci, again)
		}
		counts[ci]++
	}
	for ci, c := range pop.Cohorts {
		want := float64(n) * float64(c.Weight) / float64(total)
		got := float64(counts[ci])
		// ±25% relative tolerance: generous enough for a 20k uniform
		// draw, tight enough to catch a broken modulus or an off-by-one
		// walking the weight table.
		if got < want*0.75 || got > want*1.25 {
			t.Errorf("cohort %s: %d devices, want ~%.0f (weight %d/%d)",
				c.Name, counts[ci], want, c.Weight, total)
		}
	}
	// A different seed must produce a different assignment somewhere.
	same := true
	for i := 0; i < n && same; i++ {
		same = pop.Assign(42, i) == pop.Assign(43, i)
	}
	if same {
		t.Error("assignment ignores the seed")
	}
}

func TestValidateRejectsBadPopulations(t *testing.T) {
	if err := (&Population{}).Validate(); err == nil {
		t.Error("empty population validated")
	}
	bad := Default()
	bad.Cohorts[0].Weight = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero-weight cohort validated")
	}
	short := Default()
	short.Horizon = corpus.MinHorizon / 2
	if err := short.Validate(); err == nil {
		t.Error("sub-minimum horizon validated")
	}
}

// A population fleet must run the streaming path end to end: no
// retained results, every device folded, and the merged summary
// byte-identical across worker and shard counts.
func TestFleetSpecStreamsByteIdentical(t *testing.T) {
	const devices = 12
	run := func(workers, shards int) *fleet.FleetResult {
		pop := Default()
		spec, err := pop.FleetSpec(devices, workers, shards, 7)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := fleet.Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		return fr
	}
	base := run(1, 1)
	if base.Results != nil {
		t.Fatal("population fleet retained per-device results")
	}
	if base.Summary.Devices != devices || base.Summary.Failed != 0 {
		t.Fatalf("summary devices=%d failed=%d, want %d/0 (failures: %v)",
			base.Summary.Devices, base.Summary.Failed, devices, base.Summary.Failures)
	}
	if base.Summary.TotalDrainedJ <= 0 || base.Summary.TotalSimH <= 0 {
		t.Fatalf("population fleet simulated nothing: drained %.1f J over %.2f sim-h",
			base.Summary.TotalDrainedJ, base.Summary.TotalSimH)
	}
	golden := base.Summary.Render(7)
	for _, wc := range []struct{ workers, shards int }{{4, 1}, {4, 4}} {
		fr := run(wc.workers, wc.shards)
		if got := fr.Summary.Render(7); got != golden {
			t.Errorf("summary differs at workers=%d shards=%d:\n--- base ---\n%s\n--- got ---\n%s",
				wc.workers, wc.shards, golden, got)
		}
	}
}
