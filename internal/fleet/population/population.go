// Package population composes realistic fleet mixtures: instead of N
// clones of one device running one scenario, a Population is a weighted
// set of cohorts — a hardware model (power profile + battery pack)
// crossed with a corpus cell (user archetype × attack variant) — and a
// deterministic assignment of devices to cohorts.
//
// The package exists for the streaming fleet path: a 100k-device run is
// only meaningful as a memory or throughput benchmark if the devices
// are heterogeneous the way a real install base is. Assignment is a
// pure function of (fleet seed, device index), so any single device of
// a population run can be re-created in isolation, and the fleet's
// merged summary stays byte-identical across worker and shard counts.
package population

import (
	"fmt"
	"time"

	"repro/internal/accounting"
	"repro/internal/check"
	"repro/internal/corpus"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/hw"
	"repro/internal/scenario"
)

// Hardware is a named power model plus battery pack.
type Hardware struct {
	Name     string
	Profile  hw.Profile
	BatteryJ float64
}

// Cohort is one slice of the population: Weight devices out of the
// population's total weight run this hardware through this corpus cell.
type Cohort struct {
	Name     string
	Weight   int
	Hardware Hardware
	Cell     corpus.Cell
}

// Population is a weighted cohort mixture.
type Population struct {
	Cohorts []Cohort
	// Horizon is each device's script span; zero means corpus.MinHorizon
	// — the shortest span the generator accepts, which keeps 100k-device
	// runs tractable while still exercising the diurnal charge window.
	Horizon time.Duration
}

// Default returns the standard mixture: four benign archetypes over two
// hardware tiers, plus a small compromised tail running the
// population-scale attack variants. Weights are percentages.
func Default() Population {
	flagship := Hardware{Name: "flagship-dvfs", Profile: hw.Nexus4DVFS(), BatteryJ: hw.NexusBatteryJ}
	midrange := Hardware{Name: "midrange", Profile: hw.Nexus4(), BatteryJ: hw.NexusBatteryJ}
	budget := Hardware{Name: "budget", Profile: hw.Nexus4(), BatteryJ: hw.NexusBatteryJ * 0.75}
	return Population{
		Cohorts: []Cohort{
			{Name: "commuter-flagship", Weight: 25, Hardware: flagship,
				Cell: corpus.Cell{Archetype: corpus.ArchCommuter, Variant: corpus.VarBenign}},
			{Name: "gamer-flagship", Weight: 15, Hardware: flagship,
				Cell: corpus.Cell{Archetype: corpus.ArchGamer, Variant: corpus.VarBenign}},
			{Name: "background-midrange", Weight: 20, Hardware: midrange,
				Cell: corpus.Cell{Archetype: corpus.ArchBackgroundHeavy, Variant: corpus.VarBenign}},
			{Name: "idle-budget", Weight: 30, Hardware: budget,
				Cell: corpus.Cell{Archetype: corpus.ArchIdleMostly, Variant: corpus.VarBenign}},
			{Name: "compromised-intermittent", Weight: 6, Hardware: midrange,
				Cell: corpus.Cell{Archetype: corpus.ArchCommuter, Variant: corpus.VarIntermittent}},
			{Name: "compromised-charging", Weight: 4, Hardware: budget,
				Cell: corpus.Cell{Archetype: corpus.ArchIdleMostly, Variant: corpus.VarChargingAware}},
		},
	}
}

// Validate rejects empty or non-positive-weight populations.
func (p *Population) Validate() error {
	if len(p.Cohorts) == 0 {
		return fmt.Errorf("population: no cohorts")
	}
	for i, c := range p.Cohorts {
		if c.Weight <= 0 {
			return fmt.Errorf("population: cohort %d (%s) weight %d not positive", i, c.Name, c.Weight)
		}
	}
	if p.Horizon != 0 && p.Horizon < corpus.MinHorizon {
		return fmt.Errorf("population: horizon %v below corpus minimum %v", p.Horizon, corpus.MinHorizon)
	}
	return nil
}

func (p *Population) totalWeight() int {
	total := 0
	for _, c := range p.Cohorts {
		total += c.Weight
	}
	return total
}

func (p *Population) horizon() time.Duration {
	if p.Horizon != 0 {
		return p.Horizon
	}
	return corpus.MinHorizon
}

// Assign returns the cohort index for device i of a fleet rooted at
// seed. It hashes (seed, i) through the corpus's SplitMix64 chain and
// reduces modulo the total weight, so the draw is uniform over weights,
// independent per device, and reproducible without running the rest of
// the fleet.
func (p *Population) Assign(seed int64, i int) int {
	total := p.totalWeight()
	if total <= 0 {
		return 0
	}
	// rep -1 keeps the draw disjoint from the ScriptSeed(seed, ·, i)
	// chain used for the device's script below.
	draw := int(uint64(corpus.ScriptSeed(seed, i, -1)) % uint64(total))
	for ci, c := range p.Cohorts {
		if draw < c.Weight {
			return ci
		}
		draw -= c.Weight
	}
	return len(p.Cohorts) - 1
}

// FleetSpec builds a streaming fleet.Spec over the population: device i
// draws its cohort from Assign(seed, i), Configure installs the
// cohort's hardware, and Scenario generates and applies the cohort
// cell's corpus script from a per-device seed. The spec retains no
// per-device results; callers wanting them set RetainResults or Stream
// on the returned spec.
func (p *Population) FleetSpec(devices, workers, shards int, seed int64) (fleet.Spec, error) {
	if err := p.Validate(); err != nil {
		return fleet.Spec{}, err
	}
	params := corpus.Params{Horizon: p.horizon()}
	return fleet.Spec{
		Devices: devices,
		Workers: workers,
		Shards:  shards,
		Seed:    seed,
		Config: device.Config{
			EAndroid: true,
			Policy:   accounting.BatteryStats,
			Checks:   &check.Options{},
		},
		Configure: func(i int, cfg *device.Config) {
			h := p.Cohorts[p.Assign(seed, i)].Hardware
			cfg.Profile = h.Profile
			cfg.BatteryJ = h.BatteryJ
		},
		Scenario: func(i int, dev *device.Device) error {
			ci := p.Assign(seed, i)
			w, err := scenario.Populate(dev)
			if err != nil {
				return err
			}
			script, err := corpus.Generate(p.Cohorts[ci].Cell,
				corpus.ScriptSeed(seed, ci, i), params)
			if err != nil {
				return err
			}
			return script.Apply(w)
		},
	}, nil
}
