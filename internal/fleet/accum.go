package fleet

import (
	"sync"

	"repro/internal/telemetry"
)

// The streaming accumulator. Folding finished devices into a running
// Summary instead of retaining []Result is what bounds fleet memory,
// but a naive "each shard sums its own devices, merge at the end"
// breaks the byte-determinism contract: float addition is not
// associative, so different shard counts would produce different bit
// patterns. The fix is a fold tree that depends only on the fleet
// size, never on shards or workers:
//
//   - Device indices are partitioned into fixed blocks of blockSize.
//   - Within a block, results fold strictly in index order (a result
//     arriving early parks in a small pending map until its
//     predecessor lands).
//   - Finished blocks merge into the final Summary in block order.
//
// Shards only decide which mutex guards which block (block b belongs
// to shard b % shards), i.e. they partition lock contention, not the
// arithmetic. Any shards × workers combination therefore folds the
// exact same float operation tree and renders byte-identically. For
// fleets of at most blockSize devices the tree degenerates to one
// sequential fold — bit-for-bit the order the pre-streaming runner
// used, which is what keeps the committed goldens valid.
const blockSize = 1024

// pendRes parks an out-of-order result until its block predecessor
// folds. dispatched records whether the result's device consumed a
// dispatch permit (cancelled-before-dispatch devices never did).
type pendRes struct {
	res        Result
	dispatched bool
}

// accBlock is one fold block: a sequential reducer over a fixed index
// range [start, end).
type accBlock struct {
	next    int // next index to fold
	end     int
	pending map[int]pendRes
	sum     Summary
	metrics *telemetry.Snapshot
	merr    error
}

// folder is the fleet's streaming accumulator: blockSize-wide fold
// blocks, sharded mutexes, and a permit semaphore that bounds how many
// results can be finished-but-unfolded (plus in flight) at once — the
// backpressure that keeps the pending maps O(MaxPending) instead of
// O(devices).
type folder struct {
	spec    *Spec
	shards  int
	mus     []sync.Mutex // shard s guards blocks b with b%shards == s
	blocks  []accBlock
	permits chan struct{} // acquire = dispatch one device; release = fold one
	results []Result      // non-nil only when Spec.RetainResults
}

func newFolder(spec *Spec, shards, window int) *folder {
	n := spec.Devices
	nb := (n + blockSize - 1) / blockSize
	if shards > nb {
		shards = nb
	}
	if shards < 1 {
		shards = 1
	}
	f := &folder{
		spec:    spec,
		shards:  shards,
		mus:     make([]sync.Mutex, shards),
		blocks:  make([]accBlock, nb),
		permits: make(chan struct{}, window),
	}
	for b := range f.blocks {
		f.blocks[b].next = b * blockSize
		f.blocks[b].end = min((b+1)*blockSize, n)
	}
	if spec.RetainResults {
		f.results = make([]Result, n)
	}
	return f
}

// acquire takes one dispatch permit, or returns false if ctx-style
// abort fired first (the caller passes its cancellation channel).
func (f *folder) acquire(cancel <-chan struct{}) bool {
	select {
	case f.permits <- struct{}{}:
		return true
	case <-cancel:
		return false
	}
}

// unacquire returns a permit taken by acquire for a device that was
// never handed to a worker.
func (f *folder) unacquire() { <-f.permits }

// complete feeds one finished device into the fold tree. It folds the
// result immediately when it is the block's next index — cascading
// through any parked successors — and parks it otherwise. Permits are
// released one per folded dispatched result, which is what unblocks
// the dispatcher.
func (f *folder) complete(i int, res Result, dispatched bool) {
	if f.results != nil {
		f.results[i] = res
	}
	b := i / blockSize
	mu := &f.mus[b%f.shards]
	mu.Lock()
	blk := &f.blocks[b]
	if i != blk.next {
		if blk.pending == nil {
			blk.pending = make(map[int]pendRes)
		}
		blk.pending[i] = pendRes{res: res, dispatched: dispatched}
		mu.Unlock()
		return
	}
	released := 0
	cur := pendRes{res: res, dispatched: dispatched}
	for {
		blk.fold(f.spec, &cur.res)
		if cur.dispatched {
			released++
		}
		blk.next++
		if blk.next >= blk.end {
			break
		}
		nxt, ok := blk.pending[blk.next]
		if !ok {
			break
		}
		delete(blk.pending, blk.next)
		cur = nxt
	}
	mu.Unlock()
	// Every released permit matches a dispatched device whose acquire
	// happened before its fold, so the receives cannot block.
	for ; released > 0; released-- {
		<-f.permits
	}
}

// fold reduces one result into the block's partial summary (and, when
// telemetry is on, its pairwise-merged snapshot — MergeSnapshots is a
// left fold, so incremental pairwise merging is bit-identical to the
// one-shot merge the retained path used).
func (blk *accBlock) fold(spec *Spec, res *Result) {
	blk.sum.fold(res)
	if spec.Telemetry != nil && res.Metrics != nil && blk.merr == nil {
		merged, err := telemetry.MergeSnapshots([]*telemetry.Snapshot{blk.metrics, res.Metrics})
		if err != nil {
			blk.merr = err
			return
		}
		blk.metrics = merged
	}
}

// finalize merges the per-block partials in block order and returns
// the fleet summary plus the merged telemetry snapshot. Called after
// every device has completed; no locking needed.
func (f *folder) finalize() (Summary, *telemetry.Snapshot, error) {
	var sum Summary
	var snaps []*telemetry.Snapshot
	for b := range f.blocks {
		blk := &f.blocks[b]
		if blk.merr != nil {
			return Summary{}, nil, blk.merr
		}
		sum.merge(&blk.sum)
		if f.spec.Telemetry != nil {
			snaps = append(snaps, blk.metrics) // nil for all-failed blocks
		}
	}
	sum.backfillLabels()
	var metrics *telemetry.Snapshot
	if f.spec.Telemetry != nil {
		m, err := telemetry.MergeSnapshots(snaps)
		if err != nil {
			return Summary{}, nil, err
		}
		metrics = m
	}
	return sum, metrics, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
