package jobs

import (
	"bytes"
	"fmt"
	"testing"
)

func arts(size int) Artifacts {
	return Artifacts{Files: map[string][]byte{"a": bytes.Repeat([]byte("x"), size)}}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(1000)
	if _, ok := c.get("k1"); ok {
		t.Fatal("hit on empty cache")
	}
	c.put("k1", arts(10))
	got, ok := c.get("k1")
	if !ok || len(got.Files["a"]) != 10 {
		t.Fatalf("get after put = %v, %v", got, ok)
	}
	st := c.stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(30)
	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("k%d", i), arts(10))
	}
	// Touch k0 so k1 is the least recently used.
	if _, ok := c.get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.put("k3", arts(10)) // budget full: must evict exactly k1
	if _, ok := c.get("k1"); ok {
		t.Fatal("k1 survived eviction despite being LRU")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s evicted, want k1 only", k)
		}
	}
	st := c.stats()
	if st.Evictions != 1 || st.Bytes != 30 || st.Entries != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheOversizeNotStored(t *testing.T) {
	c := NewCache(20)
	c.put("small", arts(10))
	c.put("huge", arts(100)) // bigger than the whole budget: skip, don't flush
	if _, ok := c.get("huge"); ok {
		t.Fatal("oversize artifact cached")
	}
	if _, ok := c.get("small"); !ok {
		t.Fatal("oversize put evicted existing entries")
	}
	if st := c.stats(); st.Evictions != 0 {
		t.Fatalf("evictions = %d, want 0", st.Evictions)
	}
}

func TestCacheDuplicatePutIgnored(t *testing.T) {
	c := NewCache(100)
	c.put("k", arts(10))
	c.put("k", arts(10))
	if st := c.stats(); st.Entries != 1 || st.Bytes != 10 {
		t.Fatalf("duplicate put double-counted: %+v", st)
	}
}

func TestArtifactsNamesSorted(t *testing.T) {
	a := Artifacts{Files: map[string][]byte{"z": nil, "a": nil, "m": nil}}
	got := a.Names()
	want := []string{"a", "m", "z"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}
