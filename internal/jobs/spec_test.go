package jobs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
)

func TestDurationJSON(t *testing.T) {
	// Marshal: human-readable string.
	b, err := json.Marshal(Duration(90 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"1h30m0s"` {
		t.Fatalf("marshal = %s, want \"1h30m0s\"", b)
	}
	// Unmarshal: string form.
	var d Duration
	if err := json.Unmarshal([]byte(`"2h"`), &d); err != nil {
		t.Fatal(err)
	}
	if d.std() != 2*time.Hour {
		t.Fatalf("from string = %v, want 2h", d.std())
	}
	// Unmarshal: nanosecond number.
	if err := json.Unmarshal([]byte(`3600000000000`), &d); err != nil {
		t.Fatal(err)
	}
	if d.std() != time.Hour {
		t.Fatalf("from ns = %v, want 1h", d.std())
	}
	// Garbage.
	if err := json.Unmarshal([]byte(`"not-a-duration"`), &d); err == nil {
		t.Fatal("bad duration string accepted")
	}
}

func TestNormalizeDefaults(t *testing.T) {
	lim := Limits{}
	s, err := Spec{Kind: KindScenario, Cell: "idle-mostly/benign", Seed: 1}.Normalize(lim)
	if err != nil {
		t.Fatal(err)
	}
	if s.Devices != 1 || s.Reps != 0 {
		t.Fatalf("scenario shape = %d devices, %d reps; want 1, 0", s.Devices, s.Reps)
	}
	if s.Horizon.std() != corpus.DefaultHorizon {
		t.Fatalf("horizon = %v, want default %v", s.Horizon.std(), corpus.DefaultHorizon)
	}

	s, err = Spec{Kind: KindFleet, Cell: "gamer/coordinated-collateral", Seed: 2}.Normalize(lim)
	if err != nil {
		t.Fatal(err)
	}
	if s.Devices != DefaultFleetDevices {
		t.Fatalf("fleet devices = %d, want default %d", s.Devices, DefaultFleetDevices)
	}

	s, err = Spec{Kind: KindCorpus, Cell: "commuter/benign", Seed: 3}.Normalize(lim)
	if err != nil {
		t.Fatal(err)
	}
	if s.Reps != DefaultCorpusReps || s.Devices != 0 {
		t.Fatalf("corpus shape = %d devices, %d reps; want 0, %d", s.Devices, s.Reps, DefaultCorpusReps)
	}
}

func TestNormalizeRejects(t *testing.T) {
	lim := Limits{}
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"unknown kind", Spec{Kind: "batch", Cell: "idle-mostly/benign"}, "unknown kind"},
		{"unknown cell", Spec{Kind: KindScenario, Cell: "desktop/benign"}, "unknown cell"},
		{"short horizon", Spec{Kind: KindScenario, Cell: "idle-mostly/benign", Horizon: Duration(time.Minute)}, "below corpus minimum"},
		{"negative devices", Spec{Kind: KindFleet, Cell: "idle-mostly/benign", Devices: -2}, "< 1"},
		{"negative reps", Spec{Kind: KindCorpus, Cell: "idle-mostly/benign", Reps: -1}, "< 1"},
	}
	for _, c := range cases {
		if _, err := c.spec.Normalize(lim); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestNormalizeLimits(t *testing.T) {
	lim := Limits{MaxDevices: 8, MaxSimHours: 10}
	if _, err := (Spec{Kind: KindFleet, Cell: "idle-mostly/benign", Devices: 9}).Normalize(lim); err == nil {
		t.Fatal("9 devices accepted against MaxDevices 8")
	}
	// 8 devices × 4h default horizon = 32 sim-hours > 10.
	if _, err := (Spec{Kind: KindFleet, Cell: "idle-mostly/benign", Devices: 8}).Normalize(lim); err == nil {
		t.Fatal("32 sim-hours accepted against MaxSimHours 10")
	}
	// 8 × 1h = 8 sim-hours fits.
	if _, err := (Spec{Kind: KindFleet, Cell: "idle-mostly/benign", Devices: 8,
		Horizon: Duration(time.Hour)}).Normalize(lim); err != nil {
		t.Fatalf("8 sim-hours rejected: %v", err)
	}
}

// TestKeyCanonical: the content address is stable across representation
// differences that normalize away, and differs when any semantic field
// differs.
func TestKeyCanonical(t *testing.T) {
	lim := Limits{}
	base, err := Spec{Kind: KindScenario, Cell: "idle-mostly/benign", Seed: 42}.Normalize(lim)
	if err != nil {
		t.Fatal(err)
	}
	// Explicit defaults hash identically to omitted ones.
	explicit, err := Spec{Kind: KindScenario, Cell: "idle-mostly/benign", Seed: 42,
		Devices: 7, // scenario forces 1; shape noise must not leak into the key
		Horizon: Duration(corpus.DefaultHorizon)}.Normalize(lim)
	if err != nil {
		t.Fatal(err)
	}
	if base.Key() != explicit.Key() {
		t.Fatalf("normalized-equal specs hash differently:\n%s\n%s", base.Key(), explicit.Key())
	}
	// Any semantic change changes the key.
	for name, alt := range map[string]Spec{
		"seed":    {Kind: KindScenario, Cell: "idle-mostly/benign", Seed: 43},
		"cell":    {Kind: KindScenario, Cell: "gamer/benign", Seed: 42},
		"kind":    {Kind: KindFleet, Cell: "idle-mostly/benign", Seed: 42},
		"horizon": {Kind: KindScenario, Cell: "idle-mostly/benign", Seed: 42, Horizon: Duration(2 * time.Hour)},
	} {
		n, err := alt.Normalize(lim)
		if err != nil {
			t.Fatal(err)
		}
		if n.Key() == base.Key() {
			t.Errorf("%s change did not change the key", name)
		}
	}
	if len(base.Key()) != 64 {
		t.Fatalf("key length = %d, want 64 hex chars", len(base.Key()))
	}
}
