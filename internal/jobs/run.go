package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/accounting"
	"repro/internal/check"
	"repro/internal/corpus"
	"repro/internal/corpus/replay"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/obsv"
	"repro/internal/scenario"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// deviceOut is one device's harvest in a scenario/fleet job. Workers
// write only their own index — disjoint-index writes, no locking.
type deviceOut struct {
	flame    *obsv.Flame
	findings []obsv.Finding
	stats    obsv.WindowStats
	detected bool
}

// deviceRow is summary.json's per-device line.
type deviceRow struct {
	Index      int     `json:"index"`
	Seed       int64   `json:"seed"`
	BatteryPct float64 `json:"battery_pct"`
	DrainedJ   float64 `json:"drained_j"`
	Findings   int     `json:"findings"`
	Judged     int     `json:"judged"`
	Flagged    int     `json:"flagged"`
	Detected   bool    `json:"detected"`
	Violations int     `json:"violations"`
}

// execute runs the job and renders its artifacts. Every byte written
// here is a pure function of the normalized spec — worker count,
// scheduling and wall time never leak in — which is the contract the
// content-addressed cache depends on.
func (m *Manager) execute(ctx context.Context, j *Job) (Artifacts, error) {
	switch j.Spec.Kind {
	case KindScenario, KindFleet:
		return m.runFleet(ctx, j)
	case KindCorpus:
		return m.runCorpus(ctx, j)
	default:
		return Artifacts{}, fmt.Errorf("jobs: unknown kind %q", j.Spec.Kind)
	}
}

// progressHook bridges fleet progress ticks into the job: it bumps the
// done counter (for /jobs/{id}) and publishes one SSE frame per
// finished device.
func (j *Job) progressHook() func(fleet.Progress) {
	return func(p fleet.Progress) {
		j.mu.Lock()
		if p.Done > j.done {
			j.done = p.Done
		}
		j.mu.Unlock()
		data, err := json.Marshal(p)
		if err != nil {
			return
		}
		j.events.Publish(obsv.SSEFrame("progress", string(data)))
	}
}

// runFleet executes scenario and fleet jobs: N devices through one
// corpus cell, each with a watchdog and a flame collector attached.
func (m *Manager) runFleet(ctx context.Context, j *Job) (Artifacts, error) {
	spec := j.Spec
	cell, cellIdx, err := cellByName(spec.Cell)
	if err != nil {
		return Artifacts{}, err
	}
	n := spec.Devices
	params := corpus.Params{Horizon: spec.Horizon.std()}
	outs := make([]deviceOut, n)
	rows := make([]deviceRow, n)

	fr, err := fleet.Run(ctx, fleet.Spec{
		Devices: n,
		Workers: m.opts.Limits.Workers,
		Seed:    spec.Seed,
		Config: device.Config{
			EAndroid: true,
			Policy:   accounting.BatteryStats,
			Checks:   &check.Options{},
		},
		Telemetry: &telemetry.Options{},
		Progress:  j.progressHook(),
		Trace:     j.tr.Fleet(n),
		// Streaming: per-device Results fold into the bounded
		// accumulator and are dropped; the summary rows capture the few
		// scalars the artifact needs via disjoint-index writes. This is
		// what lets the fleet device limit sit at 4096 without the
		// control plane holding 4096 ledger maps alive.
		Stream: func(r fleet.Result) {
			rows[r.Index] = deviceRow{
				Index:      r.Index,
				Seed:       r.Seed,
				BatteryPct: r.BatteryPct,
				DrainedJ:   r.DrainedJ,
				Violations: len(r.Violations),
			}
		},
		Scenario: func(i int, dev *device.Device) error {
			w, err := scenario.Populate(dev)
			if err != nil {
				return err
			}
			wd, err := obsv.NewWatchdog(dev, obsv.WatchdogOptions{})
			if err != nil {
				return err
			}
			wd.Start()
			fc := obsv.AttachFlame(dev)
			script, err := corpus.Generate(cell,
				corpus.ScriptSeed(spec.Seed, cellIdx, i), params)
			if err != nil {
				return err
			}
			if err := script.Apply(w); err != nil {
				return err
			}
			o := &outs[i]
			o.findings = wd.Finish()
			for _, f := range o.findings {
				if f.Signal == obsv.SignalDivergence && f.UID == w.Malware.UID {
					o.detected = true
				}
			}
			o.stats = wd.Stats()
			o.flame = fc.Fold()
			return nil
		},
	})
	if err != nil {
		return Artifacts{}, err
	}
	// Streaming failures carry only sampled message strings, not error
	// chains, so a cancelled run must be classified from the context —
	// finish() needs errors.Is(err, context.Canceled) to hold.
	if ctxErr := ctx.Err(); ctxErr != nil {
		return Artifacts{}, ctxErr
	}
	for _, f := range fr.Summary.Failures {
		return Artifacts{}, fmt.Errorf("jobs: device %d: %s", f.Index, f.Err)
	}
	artStart := time.Now() // the artifact-write lifecycle stage

	// summary.json: finish the per-device rows (watchdog fields come
	// from the scenario closure's outs) and reduce totals in index
	// order, so the artifact bytes stay scheduling-independent.
	var totalJ float64
	var totalFindings, detected int
	for i := range rows {
		o := &outs[i]
		rows[i].Findings = len(o.findings)
		rows[i].Judged = o.stats.Judged
		rows[i].Flagged = o.stats.Flagged
		rows[i].Detected = o.detected
		totalJ += rows[i].DrainedJ
		totalFindings += len(o.findings)
		if o.detected {
			detected++
		}
	}
	summary := struct {
		Spec          Spec        `json:"spec"`
		Key           string      `json:"key"`
		Devices       []deviceRow `json:"devices"`
		TotalDrainedJ float64     `json:"total_drained_j"`
		TotalFindings int         `json:"total_findings"`
		DetectedRuns  int         `json:"detected_runs"`
	}{spec, j.Key, rows, totalJ, totalFindings, detected}
	summaryJSON, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		return Artifacts{}, err
	}

	// watchdog.json: per-device findings, index order.
	findings := make([][]obsv.Finding, n)
	for i := range outs {
		findings[i] = outs[i].findings
		if findings[i] == nil {
			findings[i] = []obsv.Finding{}
		}
	}
	watchdogJSON, err := json.MarshalIndent(findings, "", "  ")
	if err != nil {
		return Artifacts{}, err
	}

	// Flame graph: merge in index order (MergeFlames is deterministic
	// in argument order). The title carries the cell and content
	// address — never the job ID, which differs between identical
	// submissions.
	flames := make([]*obsv.Flame, 0, n)
	for i := range outs {
		if outs[i].flame != nil {
			flames = append(flames, outs[i].flame)
		}
	}
	merged := obsv.MergeFlames(flames...)
	var collapsed, html bytes.Buffer
	if err := merged.WriteCollapsed(&collapsed); err != nil {
		return Artifacts{}, err
	}
	title := fmt.Sprintf("%s %s [%s]", spec.Kind, spec.Cell, j.Key[:12])
	if err := merged.WriteHTML(&html, title); err != nil {
		return Artifacts{}, err
	}

	var prom bytes.Buffer
	if fr.Metrics != nil {
		if err := obsv.WritePrometheus(&prom, fr.Metrics); err != nil {
			return Artifacts{}, err
		}
	}

	// Fold the per-device watchdog window counters into the manager's
	// /metrics totals (index order is irrelevant to a sum).
	var wdTotals obsv.WindowStats
	for i := range outs {
		wdTotals.Total += outs[i].stats.Total
		wdTotals.Interactive += outs[i].stats.Interactive
		wdTotals.Judged += outs[i].stats.Judged
		wdTotals.Flagged += outs[i].stats.Flagged
	}
	m.noteWatchdog(wdTotals)

	// trace.json: the deterministic span tree as Chrome trace JSON.
	// Spans carry virtual-ns windows only and IDs derived from the
	// spec's content address, so the bytes — like every other artifact
	// — are a pure function of the normalized spec. The wall-clock
	// lifecycle stages live on the /trace feed instead.
	var traceJSON bytes.Buffer
	if err := trace.WriteChrome(&traceJSON, j.tr.Spans()); err != nil {
		return Artifacts{}, err
	}
	j.tr.AddStage("artifact-write", time.Since(artStart))

	return Artifacts{Files: map[string][]byte{
		"summary.json":  summaryJSON,
		"watchdog.json": watchdogJSON,
		"flame.txt":     collapsed.Bytes(),
		"flame.html":    html.Bytes(),
		"metrics.prom":  prom.Bytes(),
		"trace.json":    traceJSON.Bytes(),
	}}, nil
}

// runCorpus executes corpus jobs: one cell × reps through the
// statistical replay harness.
func (m *Manager) runCorpus(ctx context.Context, j *Job) (Artifacts, error) {
	spec := j.Spec
	cell, _, err := cellByName(spec.Cell)
	if err != nil {
		return Artifacts{}, err
	}
	res, err := replay.Run(ctx, replay.Options{
		RootSeed: spec.Seed,
		Reps:     spec.Reps,
		Workers:  m.opts.Limits.Workers,
		Horizon:  spec.Horizon.std(),
		Cells:    []corpus.Cell{cell},
		Progress: j.progressHook(),
	})
	if err != nil {
		// The replay reports cancelled devices as sampled failure
		// strings; recover the error chain from the context.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return Artifacts{}, ctxErr
		}
		return Artifacts{}, err
	}
	cellsJSON, err := res.MarshalCells()
	if err != nil {
		return Artifacts{}, err
	}
	// Corpus jobs have no fleet handle to hang device spans off; the
	// trace is the control-plane pair (request → job) over the corpus
	// horizon.
	j.tr.SetHorizon(spec.Horizon.std())
	var traceJSON bytes.Buffer
	if err := trace.WriteChrome(&traceJSON, j.tr.Spans()); err != nil {
		return Artifacts{}, err
	}
	return Artifacts{Files: map[string][]byte{
		"summary.json": cellsJSON,
		"summary.txt":  []byte(res.Render()),
		"trace.json":   traceJSON.Bytes(),
	}}, nil
}
