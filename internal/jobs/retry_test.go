package jobs

import (
	"testing"
	"time"
)

// The Retry-After computation's two satellite cases — empty history
// and a saturated queue — plus the floor/ceiling clamps.
func TestRetryAfterSecs(t *testing.T) {
	const maxWall = 2 * time.Minute
	cases := []struct {
		name    string
		depth   int
		runners int
		mean    time.Duration
		want    int
	}{
		// Empty history: nothing to extrapolate, keep the old 1 s hint.
		{"empty history", 16, 2, 0, 1},
		// Saturated: 16 queued × 30 s / 2 runners = 240 s, clamped to
		// the 120 s wall deadline — one slot must free up within it.
		{"saturated clamps to deadline", 16, 2, 30 * time.Second, 120},
		// Sub-second backlog floors at 1 s.
		{"floor", 2, 2, 100 * time.Millisecond, 1},
		// Plain middle case: ceil(4 × 10 s / 2) = 20 s.
		{"rounds up", 4, 2, 10 * time.Second, 20},
		// Fractional seconds round up, never down.
		{"ceil fraction", 3, 2, time.Second, 2},
		// An empty queue with history still answers the floor.
		{"empty queue", 0, 2, 30 * time.Second, 1},
	}
	for _, tc := range cases {
		if got := retryAfterSecs(tc.depth, tc.runners, tc.mean, maxWall); got != tc.want {
			t.Errorf("%s: retryAfterSecs(%d, %d, %v) = %d, want %d",
				tc.name, tc.depth, tc.runners, tc.mean, got, tc.want)
		}
	}
}

// Manager-level: a fresh manager answers the 1 s floor; recorded wall
// times feed the rolling mean, and the ring keeps only the most recent
// wallHistLen entries.
func TestManagerRetryAfterUsesWallHistory(t *testing.T) {
	m := NewManager(Options{Runners: 1, QueueDepth: 4})
	defer m.Close()
	if got := m.RetryAfter(); got != 1 {
		t.Fatalf("empty-history RetryAfter = %d, want 1", got)
	}
	// Age out any notion of "recent" with wallHistLen fast jobs, then
	// verify the mean tracks them.
	for i := 0; i < wallHistLen; i++ {
		m.noteWall(10 * time.Second)
	}
	// Queue empty: floor still applies regardless of history.
	if got := m.RetryAfter(); got != 1 {
		t.Fatalf("empty-queue RetryAfter = %d, want 1", got)
	}
	// The ring must overwrite, not grow: push wallHistLen new values
	// and confirm the old ones no longer contribute.
	for i := 0; i < wallHistLen; i++ {
		m.noteWall(2 * time.Second)
	}
	m.mu.Lock()
	var sum time.Duration
	for i := 0; i < wallHistLen; i++ {
		sum += m.wallHist[i]
	}
	m.mu.Unlock()
	if want := time.Duration(wallHistLen) * 2 * time.Second; sum != want {
		t.Fatalf("ring sum = %v, want %v (stale entries survived)", sum, want)
	}
}
