package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obsv"
	"repro/internal/trace"
)

// maxSpecBytes bounds a POST /jobs body; a job spec is a handful of
// scalar fields, so anything near this limit is garbage.
const maxSpecBytes = 1 << 20

// redInfo carries per-request RED annotations (job kind, exemplar
// span) from a handler back to the observing middleware via context.
type redInfo struct {
	kind string
	ex   trace.SpanID
}

type redCtxKey struct{}

// annotate fills the request's RED info, if the middleware installed
// one.
func annotate(r *http.Request, kind string, ex trace.SpanID) {
	if info, ok := r.Context().Value(redCtxKey{}).(*redInfo); ok {
		info.kind = kind
		info.ex = ex
	}
}

// statusWriter captures the response status for RED observation. It
// forwards Flush so SSE streaming keeps working under the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// observe wraps a handler with RED collection: one rate/error/duration
// observation per request under the endpoint's pattern label, with the
// handler's annotations (job kind, exemplar span ID) attached.
func observe(m *Manager, endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		info := &redInfo{}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sw, r.WithContext(context.WithValue(r.Context(), redCtxKey{}, info)))
		m.red.Observe(endpoint, info.kind, sw.code, time.Since(start), info.ex)
	}
}

// Register mounts the jobs API onto mux using Go 1.22 method+wildcard
// patterns:
//
//	POST   /jobs                      submit a spec; 200 cached, 202 queued, 429 full
//	GET    /jobs                      list all jobs
//	GET    /jobs/{id}                 one job's status
//	POST   /jobs/{id}/cancel          cancel (also DELETE /jobs/{id})
//	GET    /jobs/{id}/events          SSE progress stream
//	GET    /jobs/{id}/artifacts       sorted artifact name list
//	GET    /jobs/{id}/artifacts/{name...}  one artifact's bytes
func Register(mux *http.ServeMux, m *Manager) {
	mux.HandleFunc("POST /jobs", observe(m, "POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		body := http.MaxBytesReader(w, r.Body, maxSpecBytes)
		if err := json.NewDecoder(body).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad spec: %v", err))
			return
		}
		annotate(r, spec.Kind, 0)
		j, err := m.Submit(spec)
		switch {
		case errors.Is(err, ErrQueueFull):
			// Explicit backpressure: the queue is bounded, the client
			// retries, the server never buffers unbounded work. The
			// hint is computed from queue depth × the rolling mean job
			// wall time, not a hardcoded constant.
			w.Header().Set("Retry-After", strconv.Itoa(m.RetryAfter()))
			httpError(w, http.StatusTooManyRequests, err.Error())
			return
		case errors.Is(err, ErrClosed):
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		case err != nil:
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		annotate(r, j.Spec.Kind, j.tr.Root())
		code := http.StatusAccepted
		if j.Status().Cached {
			code = http.StatusOK
		}
		writeJSON(w, code, j.Status())
	}))

	mux.HandleFunc("GET /jobs", observe(m, "GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		list := m.List()
		out := make([]Status, len(list))
		for i, j := range list {
			out[i] = j.Status()
		}
		writeJSON(w, http.StatusOK, out)
	}))

	mux.HandleFunc("GET /jobs/{id}", observe(m, "GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		annotate(r, j.Spec.Kind, j.tr.Root())
		writeJSON(w, http.StatusOK, j.Status())
	}))

	cancel := func(w http.ResponseWriter, r *http.Request) {
		if !m.Cancel(r.PathValue("id")) {
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		w.WriteHeader(http.StatusAccepted)
	}
	mux.HandleFunc("POST /jobs/{id}/cancel", observe(m, "POST /jobs/{id}/cancel", cancel))
	mux.HandleFunc("DELETE /jobs/{id}", observe(m, "DELETE /jobs/{id}", cancel))

	mux.HandleFunc("GET /jobs/{id}/events", observe(m, "GET /jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		annotate(r, j.Spec.Kind, j.tr.Root())
		j.mu.Lock()
		initial := j.stateFrameLocked()
		j.mu.Unlock()
		j.events.Serve(w, r, []string{initial})
	}))

	mux.HandleFunc("GET /jobs/{id}/artifacts", observe(m, "GET /jobs/{id}/artifacts", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		arts, ready := j.Artifacts()
		if !ready {
			httpError(w, http.StatusConflict, "job not done")
			return
		}
		annotate(r, j.Spec.Kind, j.tr.Root())
		writeJSON(w, http.StatusOK, arts.Names())
	}))

	mux.HandleFunc("GET /jobs/{id}/artifacts/{name...}", observe(m, "GET /jobs/{id}/artifacts/{name}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		arts, ready := j.Artifacts()
		if !ready {
			httpError(w, http.StatusConflict, "job not done")
			return
		}
		name := r.PathValue("name")
		b, ok := arts.Files[name]
		if !ok {
			httpError(w, http.StatusNotFound, "no such artifact")
			return
		}
		annotate(r, j.Spec.Kind, j.tr.Root())
		w.Header().Set("Content-Type", contentType(name))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(b)
	}))
}

// Attach wires a manager into an obsv server: jobs routes on its mux,
// manager counters merged into its /metrics, and broker shutdown hooked
// so Shutdown does not wait out live job streams.
func Attach(srv *obsv.Server, m *Manager) {
	mux := http.NewServeMux()
	Register(mux, m)
	srv.Mount("/jobs", mux)
	srv.Mount("/jobs/", mux)
	srv.AddMetricsSource(m.Snapshot)
	srv.AddTextSource(m.red.WritePrometheus)
	m.SetTracePublisher(srv.PublishTrace)
	srv.OnShutdown(m.Close)
}

func contentType(name string) string {
	switch {
	case strings.HasSuffix(name, ".json"):
		return "application/json"
	case strings.HasSuffix(name, ".html"):
		return "text/html; charset=utf-8"
	default:
		return "text/plain; charset=utf-8"
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
