package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obsv"
)

// startPlane boots an obsv server with the jobs API attached and
// returns its base URL plus a shutdown func.
func startPlane(t *testing.T, opts Options) (string, *Manager, func()) {
	t.Helper()
	srv := obsv.NewServer()
	m := NewManager(opts)
	Attach(srv, m)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return "http://" + addr, m, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}
}

func postSpec(t *testing.T, base string, spec Spec) (int, Status) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, st
}

func waitDone(t *testing.T, base, id string) Status {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return Status{}
}

func getArtifact(t *testing.T, base, id, name string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/artifacts/" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact %s for %s: HTTP %d", name, id, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestLoadConcurrentSubmitScrape is the load-test satellite: concurrent
// submitters racing a small queue while scrapers hammer /metrics, /jobs
// and the SSE streams. Run under -race in the Makefile's race gate. It
// asserts: no deadlock (everything returns), overload surfaces as
// 429 + Retry-After, no submitter sees any other status, and the
// metrics endpoint keeps serving throughout.
func TestLoadConcurrentSubmitScrape(t *testing.T) {
	base, _, stop := startPlane(t, Options{
		Runners:    2,
		QueueDepth: 2,
		Limits:     Limits{Workers: 2},
	})
	defer stop()

	const (
		submitters   = 4
		scrapers     = 2
		scrapePeriod = 2 * time.Millisecond
	)
	var (
		rejected  atomic.Int64
		accepted  atomic.Int64
		badStatus atomic.Int64
		scraping  = make(chan struct{})
		wg        sync.WaitGroup
	)

	// Saturate the plane first: four long fleet jobs (two running, two
	// queued) make the following burst's 429s deterministic instead of
	// a race against millisecond-scale scenario jobs.
	bigSpec := func(seed int64) Spec {
		return Spec{Kind: KindFleet, Cell: "gamer/coordinated-collateral",
			Seed: seed, Devices: 64, Horizon: Duration(8 * time.Hour)}
	}
	for i := 0; i < 4; i++ {
		for {
			code, _ := postSpec(t, base, bigSpec(int64(9000+i)))
			if code == http.StatusAccepted {
				break
			}
			if code != http.StatusTooManyRequests {
				t.Fatalf("big job submit: HTTP %d", code)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Scrapers: /metrics and /jobs until the submitters finish.
	for s := 0; s < scrapers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-scraping:
					return
				default:
				}
				for _, path := range []string{"/metrics", "/jobs"} {
					resp, err := http.Get(base + path)
					if err != nil {
						t.Errorf("scrape %s: %v", path, err)
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				time.Sleep(scrapePeriod)
			}
		}()
	}

	// SSE reader: follow the watchdog stream (always mounted) while the
	// storm runs, proving streams and submissions coexist.
	sseCtx, sseCancel := context.WithCancel(context.Background())
	wg.Add(1)
	go func() {
		defer wg.Done()
		req, _ := http.NewRequestWithContext(sseCtx, "GET", base+"/watchdog/events", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return // cancelled before connect is fine
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
	}()

	// Submitters: unique seeds (every job a cache miss) against the
	// saturated plane — each keeps submitting until it has personally
	// seen both a 429 (while the big jobs occupy the queue) and a 2xx
	// (after they drain). Overload must surface as 429, never as a hang
	// or a 5xx.
	deadline := time.Now().Add(2 * time.Minute)
	var swg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		swg.Add(1)
		go func(s int) {
			defer swg.Done()
			sawReject, sawAccept := false, false
			for k := 0; !(sawReject && sawAccept); k++ {
				if time.Now().After(deadline) {
					t.Errorf("submitter %d: deadline (reject=%v accept=%v)", s, sawReject, sawAccept)
					return
				}
				spec := cheapSpec(int64(1 + s*100000 + k))
				body, _ := json.Marshal(spec)
				resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK, http.StatusAccepted:
					accepted.Add(1)
					sawAccept = true
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						t.Error("429 without Retry-After")
					}
					rejected.Add(1)
					sawReject = true
				default:
					badStatus.Add(1)
					t.Errorf("submit: unexpected HTTP %d", resp.StatusCode)
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				time.Sleep(time.Millisecond)
			}
		}(s)
	}
	swg.Wait()
	close(scraping)
	sseCancel()
	wg.Wait()

	if badStatus.Load() != 0 {
		t.Fatalf("%d submissions got a status outside {200,202,429}", badStatus.Load())
	}
	if rejected.Load() == 0 {
		t.Fatal("no 429s observed: backpressure never engaged against a depth-2 queue")
	}
	if accepted.Load() == 0 {
		t.Fatal("every submission rejected")
	}
	t.Logf("accepted %d, rejected %d", accepted.Load(), rejected.Load())

	// The rejected counter must surface on /metrics.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"jobs_rejected", "jobs_cache_misses", "jobs_submitted"} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestLoadCacheByteIdentityOverHTTP: the full round trip — submit, wait,
// fetch bytes; resubmit, get an immediate 200 cached job, fetch the
// same artifact names and compare byte-for-byte.
func TestLoadCacheByteIdentityOverHTTP(t *testing.T) {
	base, _, stop := startPlane(t, Options{Runners: 1})
	defer stop()

	code, st := postSpec(t, base, cheapSpec(777))
	if code != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d, want 202", code)
	}
	first := waitDone(t, base, st.ID)
	if first.State != StateDone || first.Cached {
		t.Fatalf("first run = %+v", first)
	}

	code, st2 := postSpec(t, base, cheapSpec(777))
	if code != http.StatusOK {
		t.Fatalf("resubmit: HTTP %d, want 200 (cached)", code)
	}
	if !st2.Cached || st2.State != StateDone {
		t.Fatalf("resubmit = %+v, want immediate cached done", st2)
	}
	for _, name := range first.Artifacts {
		a := getArtifact(t, base, first.ID, name)
		b := getArtifact(t, base, st2.ID, name)
		if !bytes.Equal(a, b) {
			t.Errorf("artifact %s differs between original and cached job", name)
		}
		if len(a) == 0 {
			t.Errorf("artifact %s is empty", name)
		}
	}
}

// TestLoadMidJobCancellation: cancel a running fleet job over HTTP and
// watch it reach the canceled state instead of done.
func TestLoadMidJobCancellation(t *testing.T) {
	base, _, stop := startPlane(t, Options{Runners: 1, Limits: Limits{Workers: 1}})
	defer stop()

	// Big enough to still be running when the cancel lands: 256 devices
	// × 16h on one worker — the full default sim-hours budget, seconds
	// of wall time.
	spec := Spec{Kind: KindFleet, Cell: "gamer/coordinated-collateral", Seed: 99,
		Devices: 256, Horizon: Duration(16 * time.Hour)}
	code, st := postSpec(t, base, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}

	// Wait for it to start running, then cancel.
	deadline := time.Now().Add(time.Minute)
	for {
		resp, err := http.Get(base + "/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur Status
		_ = json.NewDecoder(resp.Body).Decode(&cur)
		resp.Body.Close()
		if cur.State == StateRunning {
			break
		}
		if cur.State != StateQueued {
			t.Fatalf("job reached %s before cancel (too fast for this test?)", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		// No sleep: the poll loop must catch the running window.
	}
	resp, err := http.Post(base+"/jobs/"+st.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: HTTP %d", resp.StatusCode)
	}
	final := waitDone(t, base, st.ID)
	if final.State != StateCanceled {
		t.Fatalf("state after cancel = %s, want canceled", final.State)
	}
	// Artifacts must not exist for a canceled job.
	aresp, err := http.Get(base + "/jobs/" + st.ID + "/artifacts")
	if err != nil {
		t.Fatal(err)
	}
	aresp.Body.Close()
	if aresp.StatusCode != http.StatusConflict {
		t.Fatalf("artifacts of canceled job: HTTP %d, want 409", aresp.StatusCode)
	}
}

// TestQueueCancelWhileQueued: cancelling a job that is still queued
// resolves it as canceled without running.
func TestQueueCancelWhileQueued(t *testing.T) {
	m := NewManager(Options{Runners: 1, QueueDepth: 4, Limits: Limits{Workers: 1}})
	defer m.Close()

	// Occupy the single runner with a long job, then queue a victim.
	long, err := m.Submit(Spec{Kind: KindFleet, Cell: "gamer/benign", Seed: 1,
		Devices: 64, Horizon: Duration(8 * time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := m.Submit(cheapSpec(12345))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Cancel(victim.ID) {
		t.Fatal("cancel returned false")
	}
	select {
	case <-victim.Done():
	case <-time.After(2 * time.Minute):
		t.Fatal("queued victim never resolved")
	}
	if st := victim.Status(); st.State != StateCanceled {
		t.Fatalf("victim state = %s, want canceled", st.State)
	}
	<-long.Done()
}

// TestSubmitAfterClose: Close is terminal and Submit reports it.
func TestSubmitAfterClose(t *testing.T) {
	m := NewManager(Options{Runners: 1})
	m.Close()
	m.Close() // idempotent
	if _, err := m.Submit(cheapSpec(1)); err != ErrClosed {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

// TestJobSSEStream: a subscriber on /jobs/{id}/events sees the initial
// state frame and, for a completed job, the stream closes with the
// broker.
func TestJobSSEStream(t *testing.T) {
	base, m, stop := startPlane(t, Options{Runners: 1})
	defer stop()

	_, st := postSpec(t, base, cheapSpec(31))
	waitDone(t, base, st.ID)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", fmt.Sprintf("%s/jobs/%s/events", base, st.ID), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	// The job is done, so its broker is closed: the initial frame
	// arrives and then the stream ends.
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"state":"done"`) {
		t.Fatalf("SSE initial frame = %q, want done state", b)
	}
	_ = m
}
