package jobs

import (
	"container/list"
	"sort"
)

// Artifacts is the complete output of one job: named files, each a
// deterministic byte string. Stored whole in the cache — a hit returns
// exactly the bytes the original run produced.
type Artifacts struct {
	// Files maps artifact name (e.g. "summary.json", "flame.html") to
	// contents.
	Files map[string][]byte
}

// Bytes is the total payload size, the unit the cache budget is
// accounted in.
func (a Artifacts) Bytes() int64 {
	var n int64
	for _, b := range a.Files {
		n += int64(len(b))
	}
	return n
}

// Names lists the artifact names in sorted order.
func (a Artifacts) Names() []string {
	names := make([]string, 0, len(a.Files))
	for n := range a.Files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Cache is the content-addressed result store: spec key → artifacts,
// bounded by a byte budget with LRU eviction. Everything the control
// plane promises about O(1) resubmission rests here, so the accounting
// is deliberately simple: one mutex, one map, one intrusive list.
type Cache struct {
	budget  int64
	bytes   int64
	entries map[string]*list.Element
	lru     *list.List // front = most recent

	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key  string
	arts Artifacts
	size int64
}

// NewCache returns a cache holding at most budget bytes of artifacts.
func NewCache(budget int64) *Cache {
	return &Cache{
		budget:  budget,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// get looks up a key, refreshing its recency. Caller holds the
// manager's lock (the cache has no lock of its own: it is only touched
// under Manager.mu, which also guards the counters surfaced in
// telemetry).
func (c *Cache) get(key string) (Artifacts, bool) {
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).arts, true
	}
	c.misses++
	return Artifacts{}, false
}

// put stores artifacts under key, evicting least-recently-used entries
// until the budget holds. An artifact set larger than the entire budget
// is not stored at all — caching it would mean evicting everything for
// an entry that is itself immediately evicted by the next put.
func (c *Cache) put(key string, arts Artifacts) {
	if _, ok := c.entries[key]; ok {
		return // already cached; deterministic artifacts never change
	}
	size := arts.Bytes()
	if size > c.budget {
		return
	}
	for c.bytes+size > c.budget {
		back := c.lru.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, ent.key)
		c.bytes -= ent.size
		c.evictions++
	}
	el := c.lru.PushFront(&cacheEntry{key: key, arts: arts, size: size})
	c.entries[key] = el
	c.bytes += size
}

// CacheStats is a point-in-time view of the cache counters.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

func (c *Cache) stats() CacheStats {
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.entries),
		Bytes:     c.bytes,
	}
}
