// Package jobs is the simulation-as-a-service control plane: a bounded
// job queue and runner pool layered over the fleet runner, the scenario
// corpus and the obsv observability plane. Clients POST a job spec
// (single scenario, fleet, or corpus cell × reps), stream progress over
// SSE, and fetch artifacts (summary JSON, flame HTML, Prometheus text,
// watchdog findings) once the job completes.
//
// Because every simulation in this repo is byte-deterministic — pinned
// since the fleet runner's workers-1-vs-8 goldens — a job's artifacts
// are a pure function of its normalized spec. Results therefore live in
// a content-addressed cache keyed by a canonical hash of (kind, cell,
// seed, shape): resubmitting an identical spec is an O(1) lookup
// returning byte-identical artifacts, which is the honest path to high
// request throughput on modest hardware. The cache carries an LRU byte
// budget; the queue is bounded and overload answers 429 + Retry-After
// rather than queueing without limit.
package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/corpus"
)

// Job kinds.
const (
	// KindScenario runs one device through one corpus cell script.
	KindScenario = "scenario"
	// KindFleet runs N devices through the same cell at per-device
	// derived seeds — a small population of that behaviour.
	KindFleet = "fleet"
	// KindCorpus runs a corpus cell × reps through the statistical
	// replay harness, returning Wilson-interval detection statistics.
	KindCorpus = "corpus"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("4h0m0s") and unmarshals from either a duration string or a
// nanosecond number, so job specs read naturally as JSON.
type Duration time.Duration

// MarshalJSON renders the duration as its String form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// std converts back to the standard library type.
func (d Duration) std() time.Duration { return time.Duration(d) }

// UnmarshalJSON accepts "1h30m" strings or nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		dur, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("jobs: bad duration %q: %w", s, err)
		}
		*d = Duration(dur)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("jobs: duration must be a string or nanoseconds: %w", err)
	}
	*d = Duration(ns)
	return nil
}

// Spec is a job request: what to simulate. The zero values of optional
// fields are filled by Normalize; everything that survives
// normalization participates in the content-address (except nothing —
// every normalized field is hashed; runtime knobs like worker count
// live in Limits, not here, precisely because they cannot change the
// artifacts).
type Spec struct {
	// Kind is one of KindScenario, KindFleet, KindCorpus.
	Kind string `json:"kind"`
	// Cell names the corpus cell "archetype/variant" (see
	// internal/corpus); it selects the behaviour simulated.
	Cell string `json:"cell"`
	// Seed is the job's root seed; per-device script seeds derive from
	// it.
	Seed int64 `json:"seed"`
	// Devices is the fleet size (KindFleet only; scenario jobs are
	// forced to 1). Zero means DefaultFleetDevices.
	Devices int `json:"devices,omitempty"`
	// Reps is the per-cell repetition count (KindCorpus only). Zero
	// means DefaultCorpusReps.
	Reps int `json:"reps,omitempty"`
	// Horizon is the virtual span of each simulated device; zero means
	// corpus.DefaultHorizon.
	Horizon Duration `json:"horizon,omitempty"`
}

// Normalization defaults.
const (
	// DefaultFleetDevices is a KindFleet job's device count when unset.
	DefaultFleetDevices = 4
	// DefaultCorpusReps is a KindCorpus job's repetition count when
	// unset — small: service jobs are interactive, the committed
	// 40-rep statistics live in BENCH_corpus.json.
	DefaultCorpusReps = 5
)

// Limits are the server-side per-job resource bounds. Zero fields take
// the defaults below.
type Limits struct {
	// MaxDevices bounds a single job's device count (fleet devices or
	// corpus reps). Since the fleet runner went streaming (bounded
	// accumulator, no per-device retention) memory no longer scales
	// with fleet size, so this bound is generous; MaxSimHours remains
	// the binding limit on total simulated work.
	MaxDevices int
	// MaxSimHours bounds devices × horizon, the job's total simulated
	// time.
	MaxSimHours float64
	// MaxWall is the per-job wall-clock deadline; the job's context is
	// cancelled when it expires.
	MaxWall time.Duration
	// Workers bounds the fleet worker pool each job runs on (0 =
	// GOMAXPROCS). Deliberately absent from Spec: artifacts are
	// byte-identical for any worker count, so parallelism is the
	// server's business, not the content address's.
	Workers int
}

// Default limits. MaxDevices was 256 when the fleet runner retained
// every per-device Result; the streaming accumulator made job memory
// O(pending window), so the device bound now tracks what a job can
// simulate inside MaxSimHours (4096 devices × the 1-hour corpus
// minimum horizon). Raising a Limits field never changes Spec.Key —
// limits gate admission, they are not part of the content address —
// so cached artifacts stay valid across the raise.
const (
	DefaultMaxDevices  = 4096
	DefaultMaxSimHours = 4096
	DefaultMaxWall     = 2 * time.Minute
)

func (l *Limits) fill() {
	if l.MaxDevices <= 0 {
		l.MaxDevices = DefaultMaxDevices
	}
	if l.MaxSimHours <= 0 {
		l.MaxSimHours = DefaultMaxSimHours
	}
	if l.MaxWall <= 0 {
		l.MaxWall = DefaultMaxWall
	}
}

// cellByName resolves "archetype/variant" against the canonical corpus
// grid, returning the cell and its canonical index (the same index the
// replay harness uses in its seed chain).
func cellByName(name string) (corpus.Cell, int, error) {
	for i, c := range corpus.Cells() {
		if c.String() == name {
			return c, i, nil
		}
	}
	return corpus.Cell{}, 0, fmt.Errorf("jobs: unknown cell %q (want archetype/variant from the corpus grid, e.g. %q)",
		name, corpus.Cells()[0].String())
}

// Normalize validates the spec against the limits and fills defaults.
// The returned spec is canonical: two requests that mean the same job
// normalize to identical specs and therefore identical content
// addresses.
func (s Spec) Normalize(lim Limits) (Spec, error) {
	lim.fill()
	switch s.Kind {
	case KindScenario:
		s.Devices = 1
		s.Reps = 0
	case KindFleet:
		if s.Devices == 0 {
			s.Devices = DefaultFleetDevices
		}
		if s.Devices < 1 {
			return Spec{}, fmt.Errorf("jobs: fleet devices %d < 1", s.Devices)
		}
		s.Reps = 0
	case KindCorpus:
		if s.Reps == 0 {
			s.Reps = DefaultCorpusReps
		}
		if s.Reps < 1 {
			return Spec{}, fmt.Errorf("jobs: corpus reps %d < 1", s.Reps)
		}
		s.Devices = 0
	default:
		return Spec{}, fmt.Errorf("jobs: unknown kind %q (want %s, %s or %s)",
			s.Kind, KindScenario, KindFleet, KindCorpus)
	}
	if _, _, err := cellByName(s.Cell); err != nil {
		return Spec{}, err
	}
	if s.Horizon == 0 {
		s.Horizon = Duration(corpus.DefaultHorizon)
	}
	if time.Duration(s.Horizon) < corpus.MinHorizon {
		return Spec{}, fmt.Errorf("jobs: horizon %v below corpus minimum %v",
			time.Duration(s.Horizon), corpus.MinHorizon)
	}
	n := s.totalDevices()
	if n > lim.MaxDevices {
		return Spec{}, fmt.Errorf("jobs: %d devices exceeds the per-job limit %d", n, lim.MaxDevices)
	}
	if hrs := float64(n) * time.Duration(s.Horizon).Hours(); hrs > lim.MaxSimHours {
		return Spec{}, fmt.Errorf("jobs: %.1f sim-hours (%d devices × %v) exceeds the per-job limit %.1f",
			hrs, n, time.Duration(s.Horizon), lim.MaxSimHours)
	}
	return s, nil
}

// totalDevices is how many device simulations the job fans out to.
func (s Spec) totalDevices() int {
	if s.Kind == KindCorpus {
		return s.Reps
	}
	return s.Devices
}

// Key is the job's content address: a SHA-256 over a fixed-order
// rendering of every normalized field. Two specs with equal keys
// produce byte-identical artifacts (determinism is the repo's standing
// gate), which is what makes the result cache sound.
func (s Spec) Key() string {
	canon := fmt.Sprintf("jobs/v1|kind=%s|cell=%s|seed=%d|devices=%d|reps=%d|horizon=%d",
		s.Kind, s.Cell, s.Seed, s.Devices, s.Reps, int64(s.Horizon))
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:])
}
