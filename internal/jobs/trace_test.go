package jobs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// chromeEv mirrors the trace.json event shape for test-side parsing.
type chromeEv struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args"`
}

const zeroSpan = "0000000000000000"

// TestTraceSmoke is the end-to-end smoke behind `make trace-smoke`:
// one traced fleet job over HTTP with every device sampled must yield a
// trace.json artifact that parses as Chrome trace JSON and forms a
// single rooted, properly nested span tree; the job status carries the
// root span ID; /trace lists the finished job; and /metrics carries
// the RED series with an exemplar pointing at that root.
func TestTraceSmoke(t *testing.T) {
	base, _, stop := startPlane(t, Options{
		Runners:         1,
		TraceSampleRate: 1,
		Limits:          Limits{Workers: 2},
	})
	defer stop()

	spec := Spec{
		Kind:    KindFleet,
		Cell:    "idle-mostly/intermittent-drain",
		Seed:    41,
		Devices: 4,
		Horizon: Duration(time.Hour),
	}
	code, st := postSpec(t, base, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d, want 202", code)
	}
	final := waitDone(t, base, st.ID)
	if final.State != StateDone {
		t.Fatalf("job state = %s (%s)", final.State, final.Error)
	}
	if len(final.Trace) != 16 {
		t.Fatalf("status trace root = %q, want 16 hex digits", final.Trace)
	}

	// The artifact must parse as a Chrome trace-event array.
	raw := getArtifact(t, base, st.ID, "trace.json")
	var events []chromeEv
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace.json does not parse: %v", err)
	}

	// Index the X events by span ID and count kinds.
	type span struct {
		parent  string
		kind    string
		ts, end float64
	}
	byID := map[string]span{}
	kinds := map[string]int{}
	var rootID string
	for _, ev := range events {
		if ev.Ph != "X" {
			continue
		}
		id, _ := ev.Args["id"].(string)
		parent, _ := ev.Args["parent"].(string)
		kind, _ := ev.Args["kind"].(string)
		if id == "" || kind == "" {
			t.Fatalf("X event %q missing id/kind args: %+v", ev.Name, ev.Args)
		}
		byID[id] = span{parent: parent, kind: kind, ts: ev.Ts, end: ev.Ts + ev.Dur}
		kinds[kind]++
		if parent == zeroSpan {
			if rootID != "" {
				t.Fatalf("two roots: %s and %s", rootID, id)
			}
			rootID = id
		}
	}
	if rootID == "" {
		t.Fatal("trace has no root span")
	}
	if rootID != final.Trace {
		t.Fatalf("artifact root %s != status trace %s", rootID, final.Trace)
	}
	if kinds["device"] != spec.Devices {
		t.Fatalf("trace has %d device spans, want %d (sample rate 1)", kinds["device"], spec.Devices)
	}
	for _, k := range []string{"request", "job", "shard", "phase"} {
		if kinds[k] == 0 {
			t.Fatalf("trace has no %q spans (kinds: %v)", k, kinds)
		}
	}
	// Every non-root span's parent exists, and device/phase spans nest
	// inside their parent's window.
	for id, s := range byID {
		if s.parent == zeroSpan {
			continue
		}
		p, ok := byID[s.parent]
		if !ok {
			t.Fatalf("span %s (%s) has unknown parent %s", id, s.kind, s.parent)
		}
		if s.kind == "device" || s.kind == "phase" {
			if s.ts < p.ts || s.end > p.end {
				t.Fatalf("%s span %s [%v,%v] escapes parent [%v,%v]",
					s.kind, id, s.ts, s.end, p.ts, p.end)
			}
		}
	}

	// The live /trace endpoint lists the finished job's summary.
	resp, err := http.Get(base + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	traceBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var feed struct {
		Traces []struct {
			Root  string `json:"root"`
			JobID string `json:"job_id"`
			State string `json:"state"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(traceBody, &feed); err != nil {
		t.Fatalf("/trace does not parse: %v\n%s", err, traceBody)
	}
	found := false
	for _, tr := range feed.Traces {
		if tr.Root == rootID {
			found = true
			if tr.JobID != st.ID || tr.State != StateDone {
				t.Fatalf("/trace summary = %+v, want job %s done", tr, st.ID)
			}
		}
	}
	if !found {
		t.Fatalf("/trace missing root %s:\n%s", rootID, traceBody)
	}

	// RED series with the root span as exemplar on /metrics.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`eandroid_jobs_requests_total{endpoint="POST /jobs",kind="fleet"}`,
		`# {span="` + rootID + `"}`,
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}
