package jobs

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/obsv"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ErrQueueFull is returned by Submit when the bounded queue has no
// room. The HTTP layer translates it to 429 + Retry-After: overload is
// pushed back to the client, never absorbed as unbounded memory.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("jobs: manager closed")

// Options configures a Manager. Zero fields take the defaults.
type Options struct {
	// Runners is the worker-pool size: how many jobs execute
	// concurrently. Default 2 — each job already parallelizes across
	// fleet workers, so a small runner pool saturates the machine.
	Runners int
	// QueueDepth bounds the number of queued-but-not-running jobs;
	// submissions beyond it fail with ErrQueueFull. Default 16.
	QueueDepth int
	// CacheBytes is the artifact cache's byte budget. Default 64 MiB.
	CacheBytes int64
	// Limits are the per-job resource bounds.
	Limits Limits
	// Logger, when non-nil, receives structured lifecycle logs (accept,
	// cache hit, reject, start, finish, cancel) — the same funnel
	// device.Config.Logger uses. Nil keeps the manager silent.
	Logger *slog.Logger
	// TraceSampleRate head-samples 1 in N devices for engine-phase
	// tracing (1 = every device, 0 = trace.DefaultSampleRate). It is
	// server configuration, uniform across jobs, so cached artifacts
	// stay consistent with fresh runs on the same server.
	TraceSampleRate int
	// TraceDisabled turns per-device tracing off entirely; control-
	// plane spans (request/job/shard) are still assembled.
	TraceDisabled bool
}

// Default manager options.
const (
	DefaultRunners    = 2
	DefaultQueueDepth = 16
	DefaultCacheBytes = 64 << 20
)

func (o *Options) fill() {
	if o.Runners <= 0 {
		o.Runners = DefaultRunners
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = DefaultQueueDepth
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = DefaultCacheBytes
	}
	o.Limits.fill()
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Job is one submitted simulation. All mutable fields are guarded by
// mu; Done() exposes completion to waiters without polling.
type Job struct {
	// ID is the manager-assigned handle ("j1", "j2", ...).
	ID string
	// Key is the spec's content address.
	Key string
	// Spec is the normalized request.
	Spec Spec

	events *obsv.SSEBroker
	doneCh chan struct{}
	cancel context.CancelFunc
	jctx   context.Context

	// tr is the job's causal tracer, rooted at the spec's content
	// address; queuedAt anchors the queued lifecycle stage.
	tr       *trace.Tracer
	queuedAt time.Time

	mu       sync.Mutex
	state    string
	cached   bool
	errMsg   string
	done     int
	total    int
	artifact Artifacts
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.doneCh }

// Trace returns the job's causal tracer.
func (j *Job) Trace() *trace.Tracer { return j.tr }

// Events is the job's SSE broker; progress and state frames are
// published here.
func (j *Job) Events() *obsv.SSEBroker { return j.events }

// Status is the JSON view of a job served at /jobs/{id}.
type Status struct {
	ID     string `json:"id"`
	Key    string `json:"key"`
	Spec   Spec   `json:"spec"`
	State  string `json:"state"`
	Cached bool   `json:"cached"`
	// Trace is the job's root span ID (hex) — the handle /metrics
	// exemplars and the trace.json artifact share.
	Trace     string   `json:"trace,omitempty"`
	Error     string   `json:"error,omitempty"`
	Done      int      `json:"done"`
	Total     int      `json:"total"`
	Artifacts []string `json:"artifacts,omitempty"`
}

// Status snapshots the job under its lock.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID:        j.ID,
		Key:       j.Key,
		Spec:      j.Spec,
		State:     j.state,
		Cached:    j.cached,
		Trace:     j.tr.Root().String(),
		Error:     j.errMsg,
		Done:      j.done,
		Total:     j.total,
		Artifacts: j.artifact.Names(),
	}
}

// Artifacts returns the job's outputs and whether they are ready.
func (j *Job) Artifacts() (Artifacts, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return Artifacts{}, false
	}
	return j.artifact, true
}

// stateFrame renders the job's current status as an SSE frame; called
// with j.mu held by publishState.
func (j *Job) stateFrameLocked() string {
	data := fmt.Sprintf(`{"id":%q,"state":%q,"cached":%v,"done":%d,"total":%d}`,
		j.ID, j.state, j.cached, j.done, j.total)
	return obsv.SSEFrame("job", data)
}

// publishState pushes a state frame to the job's SSE subscribers.
func (j *Job) publishState() {
	j.mu.Lock()
	frame := j.stateFrameLocked()
	j.mu.Unlock()
	j.events.Publish(frame)
}

// Manager is the control plane: a bounded queue feeding a fixed runner
// pool, a content-addressed result cache, and per-job SSE brokers. It
// keeps its own counters (telemetry.Metrics is single-goroutine by
// contract, so the manager builds a fresh Snapshot per scrape instead).
type Manager struct {
	opts Options
	log  *slog.Logger
	red  *trace.RED

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu     sync.Mutex
	seq    int
	jobs   map[string]*Job
	order  []string // submission order, for stable listings
	queue  chan *Job
	closed bool
	cache  *Cache

	submitted int64
	completed int64
	failed    int64
	canceled  int64
	rejected  int64
	running   int

	// Watchdog window counters summed across completed fleet jobs —
	// the per-device Watchdog.Stats() surfaced on /metrics.
	wdStats obsv.WindowStats

	// pubTrace, when set (Attach wires it to obsv.Server.PublishTrace),
	// receives every finished job's trace summary.
	pubTrace func(*trace.Summary)

	// wallHist is a ring of the most recent executed jobs' wall times;
	// RetryAfter turns its rolling mean into an honest 429 hint.
	wallHist [wallHistLen]time.Duration
	wallN    int // total recorded; min(wallN, wallHistLen) are valid
}

// wallHistLen bounds the wall-time history ring.
const wallHistLen = 32

// NewManager starts a manager with opts.Runners worker goroutines.
func NewManager(opts Options) *Manager {
	opts.fill()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		opts:       opts,
		log:        opts.Logger,
		red:        trace.NewRED(),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		queue:      make(chan *Job, opts.QueueDepth),
		cache:      NewCache(opts.CacheBytes),
	}
	for i := 0; i < opts.Runners; i++ {
		m.wg.Add(1)
		go m.runner()
	}
	return m
}

// Limits exposes the effective per-job bounds.
func (m *Manager) Limits() Limits { return m.opts.Limits }

// RED is the manager's request-metrics collector (rate / errors /
// duration with exemplar span IDs); the HTTP layer feeds it and the
// obsv server renders it via AddTextSource.
func (m *Manager) RED() *trace.RED { return m.red }

// SetTracePublisher wires the sink for finished jobs' trace summaries
// (Attach points it at obsv.Server.PublishTrace). Call before traffic.
func (m *Manager) SetTracePublisher(fn func(*trace.Summary)) {
	m.mu.Lock()
	m.pubTrace = fn
	m.mu.Unlock()
}

// traceConfig is the per-job tracer configuration from the manager's
// options.
func (m *Manager) traceConfig() trace.Config {
	return trace.Config{
		SampleRate: m.opts.TraceSampleRate,
		Disabled:   m.opts.TraceDisabled,
	}
}

// Submit normalizes the spec and either returns an already-done job
// from the cache (Cached=true, artifacts ready) or enqueues a fresh
// run. A full queue fails fast with ErrQueueFull.
func (m *Manager) Submit(spec Spec) (*Job, error) {
	t0 := time.Now()
	norm, err := spec.Normalize(m.opts.Limits)
	if err != nil {
		return nil, err
	}
	key := norm.Key()

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	m.seq++
	jctx, cancel := context.WithCancel(m.baseCtx)
	j := &Job{
		ID:     fmt.Sprintf("j%d", m.seq),
		Key:    key,
		Spec:   norm,
		events: obsv.NewSSEBroker(),
		doneCh: make(chan struct{}),
		cancel: cancel,
		jctx:   jctx,
		// The root span is named for the canonical submission path
		// regardless of origin (HTTP or direct Submit), so identical
		// specs yield identical trace artifacts.
		tr:       trace.New(key, "POST /jobs", m.traceConfig()),
		queuedAt: t0,
		state:    StateQueued,
		total:    norm.totalDevices(),
	}
	j.tr.SetJobName(fmt.Sprintf("%s %s", norm.Kind, norm.Cell))
	if arts, ok := m.cache.get(key); ok {
		// Cache hit: the job is born terminal with the original bytes.
		j.state = StateDone
		j.cached = true
		j.done = j.total
		j.artifact = arts
		close(j.doneCh)
		cancel()
		m.jobs[j.ID] = j
		m.order = append(m.order, j.ID)
		m.submitted++
		m.completed++
		j.tr.AddStage("cache-hit", time.Since(t0))
		j.tr.Finish()
		m.publishTraceLocked(j, StateDone)
		if m.log != nil {
			m.log.Info("job cache hit", "job", j.ID, "key", j.Key,
				"kind", string(norm.Kind), "cell", norm.Cell)
		}
		return j, nil
	}
	select {
	case m.queue <- j:
	default:
		m.seq-- // not admitted; don't burn the ID
		cancel()
		m.rejected++
		if m.log != nil {
			m.log.Warn("job rejected: queue full", "key", key,
				"kind", string(norm.Kind), "cell", norm.Cell,
				"queue_depth", len(m.queue), "retry_after_s", m.retryAfterLocked())
		}
		return nil, ErrQueueFull
	}
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.submitted++
	if m.log != nil {
		m.log.Info("job accepted", "job", j.ID, "key", j.Key,
			"kind", string(norm.Kind), "cell", norm.Cell,
			"devices", j.total, "queue_depth", len(m.queue))
	}
	return j, nil
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns all jobs in submission order.
func (m *Manager) List() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Cancel cancels a job's context. A queued job is skipped when a
// runner picks it up; a running job unwinds at the fleet runner's next
// cancellation check.
func (m *Manager) Cancel(id string) bool {
	j, ok := m.Get(id)
	if !ok {
		return false
	}
	if m.log != nil {
		m.log.Info("job cancel requested", "job", j.ID, "key", j.Key)
	}
	j.cancel()
	return true
}

// noteWall records one executed job's wall-clock time in the rolling
// history.
func (m *Manager) noteWall(d time.Duration) {
	m.mu.Lock()
	m.wallHist[m.wallN%wallHistLen] = d
	m.wallN++
	m.mu.Unlock()
}

// RetryAfter estimates, in whole seconds, how long a client should
// wait after a 429 before resubmitting: the current queue depth times
// the rolling mean job wall time, divided across the runner pool.
// Floor 1 s (the pre-computed hint never vanishes); ceiling the
// per-job wall deadline (a single slot must free up within MaxWall).
func (m *Manager) RetryAfter() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.retryAfterLocked()
}

// retryAfterLocked computes the hint with m.mu held (Submit logs it
// from inside its critical section).
func (m *Manager) retryAfterLocked() int {
	n := m.wallN
	if n > wallHistLen {
		n = wallHistLen
	}
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += m.wallHist[i]
	}
	var mean time.Duration
	if n > 0 {
		mean = sum / time.Duration(n)
	}
	return retryAfterSecs(len(m.queue), m.opts.Runners, mean, m.opts.Limits.MaxWall)
}

// publishTraceLocked freezes j's tracer into a live summary and hands
// it to the trace publisher; called with m.mu held.
func (m *Manager) publishTraceLocked(j *Job, state string) {
	if m.pubTrace == nil {
		return
	}
	sum := j.tr.Summarize(state)
	sum.JobID, sum.Key = j.ID, j.Key
	sum.Cached = j.cached
	m.pubTrace(sum)
}

// noteWatchdog folds one completed fleet job's summed per-device
// window counters into the manager's running totals.
func (m *Manager) noteWatchdog(st obsv.WindowStats) {
	m.mu.Lock()
	m.wdStats.Total += st.Total
	m.wdStats.Interactive += st.Interactive
	m.wdStats.Judged += st.Judged
	m.wdStats.Flagged += st.Flagged
	m.mu.Unlock()
}

// retryAfterSecs is the pure Retry-After computation: ceil(depth ×
// mean / runners) in seconds, clamped to [1, ceil(maxWall)]. With no
// history (mean 0) there is nothing to extrapolate and the old
// constant 1 s is the only honest answer.
func retryAfterSecs(depth, runners int, mean, maxWall time.Duration) int {
	if mean <= 0 {
		return 1
	}
	if runners < 1 {
		runners = 1
	}
	wait := time.Duration(depth) * mean / time.Duration(runners)
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if ceil := int((maxWall + time.Second - 1) / time.Second); ceil >= 1 && secs > ceil {
		secs = ceil
	}
	return secs
}

// CacheStats returns the result cache's counters.
func (m *Manager) CacheStats() CacheStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cache.stats()
}

// Snapshot builds a fresh telemetry snapshot of the control plane's
// counters and gauges, suitable for merging into an obsv server's
// /metrics via AddMetricsSource.
func (m *Manager) Snapshot() *telemetry.Snapshot {
	m.mu.Lock()
	cs := m.cache.stats()
	submitted, completed := m.submitted, m.completed
	failed, canceled, rejected := m.failed, m.canceled, m.rejected
	depth, running := len(m.queue), m.running
	wd := m.wdStats
	var dropped int64
	for _, id := range m.order {
		dropped += m.jobs[id].events.Dropped()
	}
	m.mu.Unlock()

	t := telemetry.NewMetrics()
	t.Counter("jobs.submitted").Add(float64(submitted))
	t.Counter("jobs.completed").Add(float64(completed))
	t.Counter("jobs.failed").Add(float64(failed))
	t.Counter("jobs.canceled").Add(float64(canceled))
	t.Counter("jobs.rejected").Add(float64(rejected))
	t.Counter("jobs.cache.hits").Add(float64(cs.Hits))
	t.Counter("jobs.cache.misses").Add(float64(cs.Misses))
	t.Counter("jobs.cache.evictions").Add(float64(cs.Evictions))
	t.Counter("jobs.sse.dropped_subscribers").Add(float64(dropped))
	t.Counter("jobs.watchdog.windows_total").Add(float64(wd.Total))
	t.Counter("jobs.watchdog.windows_interactive").Add(float64(wd.Interactive))
	t.Counter("jobs.watchdog.windows_judged").Add(float64(wd.Judged))
	t.Counter("jobs.watchdog.windows_flagged").Add(float64(wd.Flagged))
	t.Gauge("jobs.queue.depth").Set(float64(depth))
	t.Gauge("jobs.running").Set(float64(running))
	t.Gauge("jobs.cache.bytes").Set(float64(cs.Bytes))
	t.Gauge("jobs.cache.entries").Set(float64(cs.Entries))
	return t.Snapshot()
}

// Close stops the manager: no new submissions, queued jobs are
// cancelled, runners drain and exit, every job's SSE broker closes.
// Idempotent.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	close(m.queue)
	m.mu.Unlock()

	m.baseCancel()
	m.wg.Wait()

	m.mu.Lock()
	for _, id := range m.order {
		m.jobs[id].events.CloseAll()
	}
	m.mu.Unlock()
}

// runner is one worker goroutine: it drains the queue until Close.
func (m *Manager) runner() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

// finish moves a job to a terminal state, caches successful artifacts,
// publishes the final SSE frame and releases waiters.
func (m *Manager) finish(j *Job, arts Artifacts, runErr error) {
	state := StateDone
	if runErr != nil {
		if errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded) {
			state = StateCanceled
		} else {
			state = StateFailed
		}
	}

	j.mu.Lock()
	j.state = state
	if runErr != nil {
		j.errMsg = runErr.Error()
	} else {
		j.artifact = arts
	}
	frame := j.stateFrameLocked()
	j.mu.Unlock()

	j.tr.Finish()

	m.mu.Lock()
	m.running--
	switch state {
	case StateDone:
		m.cache.put(j.Key, arts)
		m.completed++
	case StateCanceled:
		m.canceled++
	case StateFailed:
		m.failed++
	}
	m.publishTraceLocked(j, state)
	m.mu.Unlock()

	if m.log != nil {
		if state == StateDone {
			m.log.Info("job finished", "job", j.ID, "state", state,
				"trace", j.tr.Root().String())
		} else {
			m.log.Warn("job finished", "job", j.ID, "state", state,
				"trace", j.tr.Root().String(), "err", runErr)
		}
	}

	j.events.Publish(frame)
	j.events.CloseAll()
	close(j.doneCh)
	j.cancel()
}

// runJob executes one job under its wall-clock deadline.
func (m *Manager) runJob(j *Job) {
	if err := j.jctx.Err(); err != nil {
		// Cancelled while queued: never ran.
		m.mu.Lock()
		m.running++ // finish decrements
		m.mu.Unlock()
		m.finish(j, Artifacts{}, context.Canceled)
		return
	}
	m.mu.Lock()
	m.running++
	m.mu.Unlock()
	j.mu.Lock()
	j.state = StateRunning
	j.mu.Unlock()
	j.tr.AddStage("queued", time.Since(j.queuedAt))
	if m.log != nil {
		m.log.Info("job started", "job", j.ID, "key", j.Key,
			"queued_ms", time.Since(j.queuedAt).Milliseconds())
	}
	j.publishState()

	ctx, cancel := context.WithTimeout(j.jctx, m.opts.Limits.MaxWall)
	wallStart := time.Now()
	arts, err := m.execute(ctx, j)
	m.noteWall(time.Since(wallStart))
	j.tr.AddStage("running", time.Since(wallStart))
	cancel()
	if err == nil && j.jctx.Err() != nil {
		// The run raced a cancellation to the finish line; honor the
		// client's intent.
		err = context.Canceled
	}
	m.finish(j, arts, err)
}
