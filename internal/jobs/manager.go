package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obsv"
	"repro/internal/telemetry"
)

// ErrQueueFull is returned by Submit when the bounded queue has no
// room. The HTTP layer translates it to 429 + Retry-After: overload is
// pushed back to the client, never absorbed as unbounded memory.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("jobs: manager closed")

// Options configures a Manager. Zero fields take the defaults.
type Options struct {
	// Runners is the worker-pool size: how many jobs execute
	// concurrently. Default 2 — each job already parallelizes across
	// fleet workers, so a small runner pool saturates the machine.
	Runners int
	// QueueDepth bounds the number of queued-but-not-running jobs;
	// submissions beyond it fail with ErrQueueFull. Default 16.
	QueueDepth int
	// CacheBytes is the artifact cache's byte budget. Default 64 MiB.
	CacheBytes int64
	// Limits are the per-job resource bounds.
	Limits Limits
}

// Default manager options.
const (
	DefaultRunners    = 2
	DefaultQueueDepth = 16
	DefaultCacheBytes = 64 << 20
)

func (o *Options) fill() {
	if o.Runners <= 0 {
		o.Runners = DefaultRunners
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = DefaultQueueDepth
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = DefaultCacheBytes
	}
	o.Limits.fill()
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Job is one submitted simulation. All mutable fields are guarded by
// mu; Done() exposes completion to waiters without polling.
type Job struct {
	// ID is the manager-assigned handle ("j1", "j2", ...).
	ID string
	// Key is the spec's content address.
	Key string
	// Spec is the normalized request.
	Spec Spec

	events *obsv.SSEBroker
	doneCh chan struct{}
	cancel context.CancelFunc
	jctx   context.Context

	mu       sync.Mutex
	state    string
	cached   bool
	errMsg   string
	done     int
	total    int
	artifact Artifacts
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.doneCh }

// Events is the job's SSE broker; progress and state frames are
// published here.
func (j *Job) Events() *obsv.SSEBroker { return j.events }

// Status is the JSON view of a job served at /jobs/{id}.
type Status struct {
	ID        string   `json:"id"`
	Key       string   `json:"key"`
	Spec      Spec     `json:"spec"`
	State     string   `json:"state"`
	Cached    bool     `json:"cached"`
	Error     string   `json:"error,omitempty"`
	Done      int      `json:"done"`
	Total     int      `json:"total"`
	Artifacts []string `json:"artifacts,omitempty"`
}

// Status snapshots the job under its lock.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID:        j.ID,
		Key:       j.Key,
		Spec:      j.Spec,
		State:     j.state,
		Cached:    j.cached,
		Error:     j.errMsg,
		Done:      j.done,
		Total:     j.total,
		Artifacts: j.artifact.Names(),
	}
}

// Artifacts returns the job's outputs and whether they are ready.
func (j *Job) Artifacts() (Artifacts, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return Artifacts{}, false
	}
	return j.artifact, true
}

// stateFrame renders the job's current status as an SSE frame; called
// with j.mu held by publishState.
func (j *Job) stateFrameLocked() string {
	data := fmt.Sprintf(`{"id":%q,"state":%q,"cached":%v,"done":%d,"total":%d}`,
		j.ID, j.state, j.cached, j.done, j.total)
	return obsv.SSEFrame("job", data)
}

// publishState pushes a state frame to the job's SSE subscribers.
func (j *Job) publishState() {
	j.mu.Lock()
	frame := j.stateFrameLocked()
	j.mu.Unlock()
	j.events.Publish(frame)
}

// Manager is the control plane: a bounded queue feeding a fixed runner
// pool, a content-addressed result cache, and per-job SSE brokers. It
// keeps its own counters (telemetry.Metrics is single-goroutine by
// contract, so the manager builds a fresh Snapshot per scrape instead).
type Manager struct {
	opts Options

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu     sync.Mutex
	seq    int
	jobs   map[string]*Job
	order  []string // submission order, for stable listings
	queue  chan *Job
	closed bool
	cache  *Cache

	submitted int64
	completed int64
	failed    int64
	canceled  int64
	rejected  int64
	running   int

	// wallHist is a ring of the most recent executed jobs' wall times;
	// RetryAfter turns its rolling mean into an honest 429 hint.
	wallHist [wallHistLen]time.Duration
	wallN    int // total recorded; min(wallN, wallHistLen) are valid
}

// wallHistLen bounds the wall-time history ring.
const wallHistLen = 32

// NewManager starts a manager with opts.Runners worker goroutines.
func NewManager(opts Options) *Manager {
	opts.fill()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		opts:       opts,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		queue:      make(chan *Job, opts.QueueDepth),
		cache:      NewCache(opts.CacheBytes),
	}
	for i := 0; i < opts.Runners; i++ {
		m.wg.Add(1)
		go m.runner()
	}
	return m
}

// Limits exposes the effective per-job bounds.
func (m *Manager) Limits() Limits { return m.opts.Limits }

// Submit normalizes the spec and either returns an already-done job
// from the cache (Cached=true, artifacts ready) or enqueues a fresh
// run. A full queue fails fast with ErrQueueFull.
func (m *Manager) Submit(spec Spec) (*Job, error) {
	norm, err := spec.Normalize(m.opts.Limits)
	if err != nil {
		return nil, err
	}
	key := norm.Key()

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	m.seq++
	jctx, cancel := context.WithCancel(m.baseCtx)
	j := &Job{
		ID:     fmt.Sprintf("j%d", m.seq),
		Key:    key,
		Spec:   norm,
		events: obsv.NewSSEBroker(),
		doneCh: make(chan struct{}),
		cancel: cancel,
		jctx:   jctx,
		state:  StateQueued,
		total:  norm.totalDevices(),
	}
	if arts, ok := m.cache.get(key); ok {
		// Cache hit: the job is born terminal with the original bytes.
		j.state = StateDone
		j.cached = true
		j.done = j.total
		j.artifact = arts
		close(j.doneCh)
		cancel()
		m.jobs[j.ID] = j
		m.order = append(m.order, j.ID)
		m.submitted++
		m.completed++
		return j, nil
	}
	select {
	case m.queue <- j:
	default:
		m.seq-- // not admitted; don't burn the ID
		cancel()
		m.rejected++
		return nil, ErrQueueFull
	}
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.submitted++
	return j, nil
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns all jobs in submission order.
func (m *Manager) List() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Cancel cancels a job's context. A queued job is skipped when a
// runner picks it up; a running job unwinds at the fleet runner's next
// cancellation check.
func (m *Manager) Cancel(id string) bool {
	j, ok := m.Get(id)
	if !ok {
		return false
	}
	j.cancel()
	return true
}

// noteWall records one executed job's wall-clock time in the rolling
// history.
func (m *Manager) noteWall(d time.Duration) {
	m.mu.Lock()
	m.wallHist[m.wallN%wallHistLen] = d
	m.wallN++
	m.mu.Unlock()
}

// RetryAfter estimates, in whole seconds, how long a client should
// wait after a 429 before resubmitting: the current queue depth times
// the rolling mean job wall time, divided across the runner pool.
// Floor 1 s (the pre-computed hint never vanishes); ceiling the
// per-job wall deadline (a single slot must free up within MaxWall).
func (m *Manager) RetryAfter() int {
	m.mu.Lock()
	depth := len(m.queue)
	n := m.wallN
	if n > wallHistLen {
		n = wallHistLen
	}
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += m.wallHist[i]
	}
	runners := m.opts.Runners
	maxWall := m.opts.Limits.MaxWall
	m.mu.Unlock()
	var mean time.Duration
	if n > 0 {
		mean = sum / time.Duration(n)
	}
	return retryAfterSecs(depth, runners, mean, maxWall)
}

// retryAfterSecs is the pure Retry-After computation: ceil(depth ×
// mean / runners) in seconds, clamped to [1, ceil(maxWall)]. With no
// history (mean 0) there is nothing to extrapolate and the old
// constant 1 s is the only honest answer.
func retryAfterSecs(depth, runners int, mean, maxWall time.Duration) int {
	if mean <= 0 {
		return 1
	}
	if runners < 1 {
		runners = 1
	}
	wait := time.Duration(depth) * mean / time.Duration(runners)
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if ceil := int((maxWall + time.Second - 1) / time.Second); ceil >= 1 && secs > ceil {
		secs = ceil
	}
	return secs
}

// CacheStats returns the result cache's counters.
func (m *Manager) CacheStats() CacheStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cache.stats()
}

// Snapshot builds a fresh telemetry snapshot of the control plane's
// counters and gauges, suitable for merging into an obsv server's
// /metrics via AddMetricsSource.
func (m *Manager) Snapshot() *telemetry.Snapshot {
	m.mu.Lock()
	cs := m.cache.stats()
	submitted, completed := m.submitted, m.completed
	failed, canceled, rejected := m.failed, m.canceled, m.rejected
	depth, running := len(m.queue), m.running
	var dropped int64
	for _, id := range m.order {
		dropped += m.jobs[id].events.Dropped()
	}
	m.mu.Unlock()

	t := telemetry.NewMetrics()
	t.Counter("jobs.submitted").Add(float64(submitted))
	t.Counter("jobs.completed").Add(float64(completed))
	t.Counter("jobs.failed").Add(float64(failed))
	t.Counter("jobs.canceled").Add(float64(canceled))
	t.Counter("jobs.rejected").Add(float64(rejected))
	t.Counter("jobs.cache.hits").Add(float64(cs.Hits))
	t.Counter("jobs.cache.misses").Add(float64(cs.Misses))
	t.Counter("jobs.cache.evictions").Add(float64(cs.Evictions))
	t.Counter("jobs.sse.dropped_subscribers").Add(float64(dropped))
	t.Gauge("jobs.queue.depth").Set(float64(depth))
	t.Gauge("jobs.running").Set(float64(running))
	t.Gauge("jobs.cache.bytes").Set(float64(cs.Bytes))
	t.Gauge("jobs.cache.entries").Set(float64(cs.Entries))
	return t.Snapshot()
}

// Close stops the manager: no new submissions, queued jobs are
// cancelled, runners drain and exit, every job's SSE broker closes.
// Idempotent.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	close(m.queue)
	m.mu.Unlock()

	m.baseCancel()
	m.wg.Wait()

	m.mu.Lock()
	for _, id := range m.order {
		m.jobs[id].events.CloseAll()
	}
	m.mu.Unlock()
}

// runner is one worker goroutine: it drains the queue until Close.
func (m *Manager) runner() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

// finish moves a job to a terminal state, caches successful artifacts,
// publishes the final SSE frame and releases waiters.
func (m *Manager) finish(j *Job, arts Artifacts, runErr error) {
	state := StateDone
	if runErr != nil {
		if errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded) {
			state = StateCanceled
		} else {
			state = StateFailed
		}
	}

	j.mu.Lock()
	j.state = state
	if runErr != nil {
		j.errMsg = runErr.Error()
	} else {
		j.artifact = arts
	}
	frame := j.stateFrameLocked()
	j.mu.Unlock()

	m.mu.Lock()
	m.running--
	switch state {
	case StateDone:
		m.cache.put(j.Key, arts)
		m.completed++
	case StateCanceled:
		m.canceled++
	case StateFailed:
		m.failed++
	}
	m.mu.Unlock()

	j.events.Publish(frame)
	j.events.CloseAll()
	close(j.doneCh)
	j.cancel()
}

// runJob executes one job under its wall-clock deadline.
func (m *Manager) runJob(j *Job) {
	if err := j.jctx.Err(); err != nil {
		// Cancelled while queued: never ran.
		m.mu.Lock()
		m.running++ // finish decrements
		m.mu.Unlock()
		m.finish(j, Artifacts{}, context.Canceled)
		return
	}
	m.mu.Lock()
	m.running++
	m.mu.Unlock()
	j.mu.Lock()
	j.state = StateRunning
	j.mu.Unlock()
	j.publishState()

	ctx, cancel := context.WithTimeout(j.jctx, m.opts.Limits.MaxWall)
	wallStart := time.Now()
	arts, err := m.execute(ctx, j)
	m.noteWall(time.Since(wallStart))
	cancel()
	if err == nil && j.jctx.Err() != nil {
		// The run raced a cancellation to the finish line; honor the
		// client's intent.
		err = context.Canceled
	}
	m.finish(j, arts, err)
}
