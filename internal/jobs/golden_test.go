package jobs

import (
	"bytes"
	"testing"
	"time"
)

// cheapSpec is the test workhorse: one device, the corpus's minimum
// horizon, the quietest archetype.
func cheapSpec(seed int64) Spec {
	return Spec{
		Kind:    KindScenario,
		Cell:    "idle-mostly/benign",
		Seed:    seed,
		Horizon: Duration(time.Hour),
	}
}

func submitAndWait(t *testing.T, m *Manager, spec Spec) *Job {
	t.Helper()
	j, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(2 * time.Minute):
		t.Fatalf("job %s did not finish", j.ID)
	}
	st := j.Status()
	if st.State != StateDone {
		t.Fatalf("job %s state = %s (%s), want done", j.ID, st.State, st.Error)
	}
	return j
}

func assertSameArtifacts(t *testing.T, a, b Artifacts, what string) {
	t.Helper()
	an, bn := a.Names(), b.Names()
	if len(an) != len(bn) {
		t.Fatalf("%s: artifact sets differ: %v vs %v", what, an, bn)
	}
	for _, name := range an {
		if !bytes.Equal(a.Files[name], b.Files[name]) {
			t.Errorf("%s: artifact %s differs (%d vs %d bytes)",
				what, name, len(a.Files[name]), len(b.Files[name]))
		}
	}
}

// TestGoldenResubmitCacheHit is the tentpole's core acceptance test:
// resubmitting an identical spec must return Cached=true and
// byte-identical artifacts, with the hit counted.
func TestGoldenResubmitCacheHit(t *testing.T) {
	m := NewManager(Options{Runners: 1})
	defer m.Close()

	first := submitAndWait(t, m, cheapSpec(7))
	if first.Status().Cached {
		t.Fatal("first submission reported cached")
	}
	firstArts, _ := first.Artifacts()
	if len(firstArts.Files) == 0 {
		t.Fatal("first run produced no artifacts")
	}

	second := submitAndWait(t, m, cheapSpec(7))
	st := second.Status()
	if !st.Cached {
		t.Fatal("identical resubmission not served from cache")
	}
	if second.ID == first.ID {
		t.Fatal("cached job reused the original's ID")
	}
	if second.Key != first.Key {
		t.Fatalf("keys differ: %s vs %s", second.Key, first.Key)
	}
	secondArts, _ := second.Artifacts()
	assertSameArtifacts(t, firstArts, secondArts, "resubmit")

	cs := m.CacheStats()
	if cs.Hits != 1 || cs.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss", cs)
	}
}

// TestGoldenIndependentManagers: two fresh managers given the same spec
// produce byte-identical artifacts — the determinism claim the content
// address rests on, checked across processes' worth of state.
func TestGoldenIndependentManagers(t *testing.T) {
	m1 := NewManager(Options{Runners: 1})
	defer m1.Close()
	m2 := NewManager(Options{Runners: 1})
	defer m2.Close()

	a1, _ := submitAndWait(t, m1, cheapSpec(11)).Artifacts()
	a2, _ := submitAndWait(t, m2, cheapSpec(11)).Artifacts()
	assertSameArtifacts(t, a1, a2, "independent managers")
}

// TestGoldenWorkerIndependence: a fleet job's artifacts are
// byte-identical at Workers=1 and Workers=8 — which is exactly why
// Workers lives in Limits, outside the content address.
func TestGoldenWorkerIndependence(t *testing.T) {
	spec := Spec{
		Kind:    KindFleet,
		Cell:    "idle-mostly/intermittent-drain",
		Seed:    23,
		Devices: 4,
		Horizon: Duration(time.Hour),
	}
	m1 := NewManager(Options{Runners: 1, Limits: Limits{Workers: 1}})
	defer m1.Close()
	m8 := NewManager(Options{Runners: 1, Limits: Limits{Workers: 8}})
	defer m8.Close()

	a1, _ := submitAndWait(t, m1, spec).Artifacts()
	a8, _ := submitAndWait(t, m8, spec).Artifacts()
	assertSameArtifacts(t, a1, a8, "workers 1 vs 8")
}

// TestCorpusJobArtifacts: the corpus kind runs the replay harness and
// returns its deterministic table plus render.
func TestCorpusJobArtifacts(t *testing.T) {
	m := NewManager(Options{Runners: 1})
	defer m.Close()
	spec := Spec{
		Kind:    KindCorpus,
		Cell:    "idle-mostly/benign",
		Seed:    5,
		Reps:    2,
		Horizon: Duration(time.Hour),
	}
	j := submitAndWait(t, m, spec)
	a, _ := j.Artifacts()
	for _, name := range []string{"summary.json", "summary.txt"} {
		if len(a.Files[name]) == 0 {
			t.Errorf("corpus job missing artifact %s", name)
		}
	}
	// Resubmit hits the cache.
	if !submitAndWait(t, m, spec).Status().Cached {
		t.Fatal("corpus resubmission not cached")
	}
}

// TestScenarioArtifactSet pins the artifact inventory of a
// scenario/fleet job.
func TestScenarioArtifactSet(t *testing.T) {
	m := NewManager(Options{Runners: 1})
	defer m.Close()
	a, _ := submitAndWait(t, m, cheapSpec(3)).Artifacts()
	want := []string{"flame.html", "flame.txt", "metrics.prom", "summary.json", "trace.json", "watchdog.json"}
	got := a.Names()
	if len(got) != len(want) {
		t.Fatalf("artifacts = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("artifacts = %v, want %v", got, want)
		}
		if len(a.Files[want[i]]) == 0 {
			t.Errorf("artifact %s is empty", want[i])
		}
	}
}
