// Package activity reimplements the slice of Android's ActivityManager
// ("am") that the paper's attacks and E-Android's monitoring depend on:
// a task stack with z-ordering, the activity lifecycle
// (resumed/paused/stopped/destroyed), foreground tracking, launcher and
// resolver-activity indirection, and task reordering.
//
// Lifecycle rules follow the paper's description: the top activity is
// resumed; an activity covered only by transparent activities is paused;
// anything else in the stack is stopped; destroyed activities leave the
// stack. Background activities keep draining their background CPU share,
// which is what makes attack #2 effective.
package activity

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/hw"
	"repro/internal/intent"
	"repro/internal/manifest"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// State is an activity lifecycle state.
type State int

// Lifecycle states.
const (
	// Resumed is the foreground, interactive state.
	Resumed State = iota + 1
	// Paused is visible but covered by a transparent activity.
	Paused
	// Stopped is fully covered / in the background.
	Stopped
	// Destroyed means the activity has been finished and removed.
	Destroyed
)

func (s State) String() string {
	switch s {
	case Resumed:
		return "resumed"
	case Paused:
		return "paused"
	case Stopped:
		return "stopped"
	case Destroyed:
		return "destroyed"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// CauseKind classifies what triggered a foreground change.
type CauseKind int

// Foreground change causes.
const (
	// CauseStart is an activity start bringing a new activity on top.
	CauseStart CauseKind = iota + 1
	// CauseMoveToFront is a task reorder.
	CauseMoveToFront
	// CauseHome is the launcher coming to the front.
	CauseHome
	// CauseBack is the user popping the top activity.
	CauseBack
	// CauseFinish is an activity finishing programmatically.
	CauseFinish
	// CauseProcessDeath is the owning process dying.
	CauseProcessDeath
)

func (c CauseKind) String() string {
	switch c {
	case CauseStart:
		return "start"
	case CauseMoveToFront:
		return "move-to-front"
	case CauseHome:
		return "home"
	case CauseBack:
		return "back"
	case CauseFinish:
		return "finish"
	case CauseProcessDeath:
		return "process-death"
	}
	return fmt.Sprintf("CauseKind(%d)", int(c))
}

// Cause pairs a change kind with the UID that initiated it
// (app.UIDSystem for direct user input).
type Cause struct {
	Kind      CauseKind
	Initiator app.UID
}

// Activity is one live activity record in the task stack.
type Activity struct {
	app         *app.App
	component   string
	transparent bool
	state       State
}

// App returns the owning application.
func (a *Activity) App() *app.App { return a.app }

// Component returns the short component name.
func (a *Activity) Component() string { return a.component }

// State returns the current lifecycle state.
func (a *Activity) State() State { return a.state }

// Transparent reports whether the activity only partially covers the one
// beneath it.
func (a *Activity) Transparent() bool { return a.transparent }

// FullName returns "package/Component".
func (a *Activity) FullName() string {
	return manifest.FullComponentName(a.app.Package(), a.component)
}

// Hooks receive activity manager events; both the accounting layer (for
// foreground-based screen attribution) and E-Android's monitor implement
// this.
type Hooks interface {
	// ActivityStarted fires when an activity is created by an intent.
	// caller is the original sender (the resolver indirection is already
	// unwound).
	ActivityStarted(t sim.Time, caller app.UID, target *Activity, explicit bool)
	// ForegroundChanged fires when the app owning the top activity
	// changes.
	ForegroundChanged(t sim.Time, prev, cur app.UID, cause Cause)
	// Lifecycle fires on every activity state transition.
	Lifecycle(t sim.Time, a *Activity, old, new State)
}

// StartOption customizes an activity start.
type StartOption func(*startConfig)

type startConfig struct {
	transparent bool
}

// Transparent marks the started activity as transparent, so the activity
// beneath it pauses instead of stopping — the overlay trick the paper's
// malware #4 uses.
func Transparent() StartOption {
	return func(c *startConfig) { c.transparent = true }
}

// Manager is the simulated activity manager service.
type Manager struct {
	engine   *sim.Engine
	pm       *app.PackageManager
	resolver *intent.Resolver
	agg      *hw.Aggregator
	hooks    []Hooks

	stack          []*Activity // index 0 = bottom, last = top (z-order)
	launcher       *app.App
	lastForeground app.UID

	// pending implicit resolution awaiting a user choice.
	pending *pendingResolution

	deathWatched map[app.UID]bool

	// onUserInteraction, when set, is invoked for every user-driven
	// operation (start from launcher, home, back, reorder) so the power
	// manager can reset the screen timeout.
	onUserInteraction func()

	// tel receives lifecycle transitions; nil costs one branch per
	// transition.
	tel *telemetry.Recorder
}

type pendingResolution struct {
	in      intent.Intent
	matches []intent.Match
	record  *Activity // the resolver activity record on the stack
}

// LauncherPackage is the built-in home screen package name.
const LauncherPackage = "android.launcher"

// ResolverPackage is the built-in resolver activity's package name.
const ResolverPackage = "android.resolver"

// NewManager builds the activity manager, installing the launcher and
// resolver system apps and putting the launcher's home activity at the
// bottom of the stack.
func NewManager(engine *sim.Engine, pm *app.PackageManager, res *intent.Resolver, agg *hw.Aggregator) (*Manager, error) {
	if engine == nil || pm == nil || res == nil || agg == nil {
		return nil, fmt.Errorf("activity: nil dependency")
	}
	m := &Manager{
		engine:       engine,
		pm:           pm,
		resolver:     res,
		agg:          agg,
		deathWatched: make(map[app.UID]bool),
	}
	launcher, err := pm.InstallSystem(manifest.NewBuilder(LauncherPackage, "Launcher").
		Activity("Home", true).MustBuild())
	if err != nil {
		return nil, err
	}
	if _, err := pm.InstallSystem(manifest.NewBuilder(ResolverPackage, "Android System").
		Activity("ResolverActivity", true).MustBuild()); err != nil {
		return nil, err
	}
	m.launcher = launcher
	m.lastForeground = app.UIDNone
	home := &Activity{app: launcher, component: "Home", state: Stopped}
	m.stack = append(m.stack, home)
	m.recompute(Cause{Kind: CauseHome, Initiator: app.UIDSystem})
	return m, nil
}

// AddHooks registers an event consumer.
func (m *Manager) AddHooks(h Hooks) { m.hooks = append(m.hooks, h) }

// SetTelemetry wires a telemetry recorder (nil detaches it).
func (m *Manager) SetTelemetry(rec *telemetry.Recorder) { m.tel = rec }

// SetUserInteractionFunc wires user-driven operations to fn (typically
// the power manager's UserActivity).
func (m *Manager) SetUserInteractionFunc(fn func()) { m.onUserInteraction = fn }

// Launcher returns the built-in launcher app.
func (m *Manager) Launcher() *app.App { return m.launcher }

// Foreground returns the UID owning the top activity (UIDNone for an
// empty stack, which cannot happen after construction).
func (m *Manager) Foreground() app.UID {
	if len(m.stack) == 0 {
		return app.UIDNone
	}
	return m.stack[len(m.stack)-1].app.UID
}

// Top returns the foreground activity.
func (m *Manager) Top() *Activity {
	if len(m.stack) == 0 {
		return nil
	}
	return m.stack[len(m.stack)-1]
}

// Stack returns a copy of the task stack, bottom first.
func (m *Manager) Stack() []*Activity {
	out := make([]*Activity, len(m.stack))
	copy(out, m.stack)
	return out
}

// ActivitiesOf returns the live activities of uid, bottom first.
func (m *Manager) ActivitiesOf(uid app.UID) []*Activity {
	var out []*Activity
	for _, a := range m.stack {
		if a.app.UID == uid {
			out = append(out, a)
		}
	}
	return out
}

func (m *Manager) userInteraction() {
	if m.onUserInteraction != nil {
		m.onUserInteraction()
	}
}

// StartActivity starts an activity via an explicit intent. The caller is
// in.Sender; export rules are enforced by the resolver.
func (m *Manager) StartActivity(in intent.Intent, opts ...StartOption) (*Activity, error) {
	match, err := m.resolver.ResolveExplicit(in, manifest.KindActivity)
	if err != nil {
		return nil, err
	}
	return m.startResolved(in.Sender, match, true, opts...), nil
}

// StartActivityImplicit starts an activity via an implicit intent.
//
// With a single match the activity starts immediately and the returned
// Activity is non-nil. With several matches Android interposes the
// resolver activity: the resolver record comes to the foreground, the
// matches are returned, and the start completes only when
// ChooseResolverOption is called. E-Android's monitor attributes the
// eventual start to the original sender, not the resolver.
func (m *Manager) StartActivityImplicit(in intent.Intent, opts ...StartOption) ([]intent.Match, *Activity, error) {
	matches, err := m.resolver.ResolveImplicit(in, manifest.KindActivity)
	if err != nil {
		return nil, nil, err
	}
	if len(matches) == 0 {
		return nil, nil, fmt.Errorf("activity: no activity matches %v", in)
	}
	if len(matches) == 1 {
		return matches, m.startResolved(in.Sender, matches[0], false, opts...), nil
	}
	if m.pending != nil {
		return nil, nil, fmt.Errorf("activity: resolver already pending")
	}
	resApp := m.pm.ByPackage(ResolverPackage)
	rec := &Activity{app: resApp, component: "ResolverActivity", state: Stopped, transparent: true}
	m.stack = append(m.stack, rec)
	m.pending = &pendingResolution{in: in, matches: matches, record: rec}
	m.recompute(Cause{Kind: CauseStart, Initiator: in.Sender})
	return matches, nil, nil
}

// ChooseResolverOption completes a pending implicit start with the user's
// choice. The resolver activity pops and the chosen activity starts,
// attributed to the original intent sender.
func (m *Manager) ChooseResolverOption(idx int, opts ...StartOption) (*Activity, error) {
	if m.pending == nil {
		return nil, fmt.Errorf("activity: no pending resolution")
	}
	p := m.pending
	if idx < 0 || idx >= len(p.matches) {
		return nil, fmt.Errorf("activity: resolver choice %d out of range [0,%d)", idx, len(p.matches))
	}
	m.pending = nil
	m.userInteraction()
	m.removeRecord(p.record)
	p.record.state = Destroyed
	// No lifecycle hook for the system resolver teardown: E-Android
	// "ignores the Android system's UI" in this flow.
	return m.startResolved(p.in.Sender, p.matches[idx], false, opts...), nil
}

// PendingResolver reports whether a resolver choice is awaited.
func (m *Manager) PendingResolver() bool { return m.pending != nil }

func (m *Manager) startResolved(caller app.UID, match intent.Match, explicit bool, opts ...StartOption) *Activity {
	var cfg startConfig
	for _, o := range opts {
		o(&cfg)
	}
	target := match.App
	if !target.Alive() {
		target.Revive()
	}
	m.watchDeath(target)
	rec := &Activity{
		app:         target,
		component:   match.Component,
		transparent: cfg.transparent,
		state:       Stopped,
	}
	m.stack = append(m.stack, rec)
	for _, h := range m.hooks {
		h.ActivityStarted(m.engine.Now(), caller, rec, explicit)
	}
	m.recompute(Cause{Kind: CauseStart, Initiator: caller})
	return rec
}

// UserStartApp simulates the user tapping an app icon: the launcher
// dispatches an explicit intent for the app's first exported activity.
func (m *Manager) UserStartApp(pkg string) (*Activity, error) {
	target := m.pm.ByPackage(pkg)
	if target == nil {
		return nil, fmt.Errorf("activity: no such package %q", pkg)
	}
	var comp string
	for _, c := range target.Manifest.Components {
		if c.Kind == manifest.KindActivity {
			comp = c.Name
			break
		}
	}
	if comp == "" {
		return nil, fmt.Errorf("activity: %s declares no activities", pkg)
	}
	m.userInteraction()
	return m.StartActivity(intent.Intent{
		Sender:    m.launcher.UID,
		Component: manifest.FullComponentName(pkg, comp),
	})
}

// Home simulates the home button (initiator app.UIDSystem) or an app
// sending a home intent (initiator = that app's UID, the trick malware #4
// plays). The launcher's task moves to the front.
func (m *Manager) Home(initiator app.UID) {
	if initiator == app.UIDSystem {
		m.userInteraction()
	}
	m.moveAppToTop(m.launcher.UID)
	m.recompute(Cause{Kind: CauseHome, Initiator: initiator})
}

// MoveAppToFront reorders the stack to bring an app's task (all of its
// activities, preserving relative order) to the front.
func (m *Manager) MoveAppToFront(initiator app.UID, pkg string) error {
	target := m.pm.ByPackage(pkg)
	if target == nil {
		return fmt.Errorf("activity: no such package %q", pkg)
	}
	if len(m.ActivitiesOf(target.UID)) == 0 {
		return fmt.Errorf("activity: %s has no live activities", pkg)
	}
	if initiator == app.UIDSystem {
		m.userInteraction()
	}
	m.moveAppToTop(target.UID)
	m.recompute(Cause{Kind: CauseMoveToFront, Initiator: initiator})
	return nil
}

func (m *Manager) moveAppToTop(uid app.UID) {
	var kept, moved []*Activity
	for _, a := range m.stack {
		if a.app.UID == uid {
			moved = append(moved, a)
		} else {
			kept = append(kept, a)
		}
	}
	m.stack = append(kept, moved...)
}

// Back simulates the back button: the top non-launcher activity finishes.
func (m *Manager) Back() {
	m.userInteraction()
	top := m.Top()
	if top == nil || top.app.UID == m.launcher.UID {
		return
	}
	m.finish(top, Cause{Kind: CauseBack, Initiator: app.UIDSystem})
}

// Finish destroys a specific activity (programmatic finish()).
func (m *Manager) Finish(a *Activity) error {
	if a.state == Destroyed {
		return fmt.Errorf("activity: %s already destroyed", a.FullName())
	}
	m.finish(a, Cause{Kind: CauseFinish, Initiator: a.app.UID})
	return nil
}

func (m *Manager) finish(a *Activity, cause Cause) {
	m.removeRecord(a)
	m.setState(a, Destroyed)
	m.recompute(cause)
}

// UserQuitApp simulates the user properly exiting an app through its exit
// dialog: all of its activities finish and its process dies (releasing
// wakelocks via link-to-death).
func (m *Manager) UserQuitApp(pkg string) error {
	target := m.pm.ByPackage(pkg)
	if target == nil {
		return fmt.Errorf("activity: no such package %q", pkg)
	}
	m.userInteraction()
	for _, a := range m.ActivitiesOf(target.UID) {
		m.removeRecord(a)
		m.setState(a, Destroyed)
	}
	m.recompute(Cause{Kind: CauseBack, Initiator: app.UIDSystem})
	target.Kill()
	return nil
}

func (m *Manager) watchDeath(a *app.App) {
	if m.deathWatched[a.UID] {
		return
	}
	m.deathWatched[a.UID] = true
	a.LinkToDeath(func() {
		m.deathWatched[a.UID] = false
		changed := false
		for _, rec := range m.ActivitiesOf(a.UID) {
			m.removeRecord(rec)
			m.setState(rec, Destroyed)
			changed = true
		}
		if changed {
			m.recompute(Cause{Kind: CauseProcessDeath, Initiator: a.UID})
		}
	})
}

func (m *Manager) removeRecord(a *Activity) {
	for i, rec := range m.stack {
		if rec == a {
			m.stack = append(m.stack[:i], m.stack[i+1:]...)
			return
		}
	}
}

// recompute reapplies lifecycle states from the current stack order and
// fires ForegroundChanged when the top app changed.
func (m *Manager) recompute(cause Cause) {
	prevFg := m.lastForeground
	// Top is resumed; records covered only by transparent activities are
	// paused; everything else is stopped.
	allTransparentAbove := true
	for i := len(m.stack) - 1; i >= 0; i-- {
		rec := m.stack[i]
		var want State
		switch {
		case i == len(m.stack)-1:
			want = Resumed
		case allTransparentAbove:
			want = Paused
		default:
			want = Stopped
		}
		if !rec.transparent {
			allTransparentAbove = false
		}
		m.setState(rec, want)
	}
	cur := m.Foreground()
	m.lastForeground = cur
	if cur != prevFg {
		for _, h := range m.hooks {
			h.ForegroundChanged(m.engine.Now(), prevFg, cur, cause)
		}
	}
}

func (m *Manager) setState(a *Activity, s State) {
	if a.state == s {
		return
	}
	old := a.state
	a.state = s
	m.tel.RecordLifecycle(m.engine.Now(), a.app.UID, a.FullName(), old.String(), s.String())
	m.applyDemand(a)
	for _, h := range m.hooks {
		h.Lifecycle(m.engine.Now(), a, old, s)
	}
}

func (m *Manager) applyDemand(a *Activity) {
	w := a.app.Workload(a.component)
	switch a.state {
	case Resumed:
		_ = m.agg.Set(a, a.app.UID, hw.Demand{
			CPUUtil: w.CPUActive,
			Camera:  w.Camera,
			GPS:     w.GPS,
			WiFi:    w.WiFi,
			Audio:   w.Audio,
		})
	case Paused, Stopped:
		// Background activities keep a residual CPU share but lose
		// peripherals (Android revokes the camera from background apps).
		_ = m.agg.Set(a, a.app.UID, hw.Demand{CPUUtil: w.CPUBackground})
	case Destroyed:
		_ = m.agg.Clear(a)
	}
}
