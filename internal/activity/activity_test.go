package activity

import (
	"fmt"
	"testing"

	"repro/internal/app"
	"repro/internal/hw"
	"repro/internal/intent"
	"repro/internal/manifest"
	"repro/internal/sim"
)

type recorder struct {
	started    []string // "caller->pkg/Comp"
	foreground []string // "prev->cur:kind"
	lifecycle  []string // "pkg/Comp:old->new"
	pm         *app.PackageManager
}

func (r *recorder) ActivityStarted(t sim.Time, caller app.UID, target *Activity, explicit bool) {
	r.started = append(r.started, fmt.Sprintf("%s->%s", r.pm.Label(caller), target.FullName()))
}

func (r *recorder) ForegroundChanged(t sim.Time, prev, cur app.UID, cause Cause) {
	r.foreground = append(r.foreground,
		fmt.Sprintf("%s->%s:%s", r.pm.Label(prev), r.pm.Label(cur), cause.Kind))
}

func (r *recorder) Lifecycle(t sim.Time, a *Activity, old, new State) {
	r.lifecycle = append(r.lifecycle, fmt.Sprintf("%s:%s->%s", a.FullName(), old, new))
}

type fx struct {
	engine *sim.Engine
	meter  *hw.Meter
	pm     *app.PackageManager
	mgr    *Manager
	rec    *recorder
}

func newFx(t *testing.T) *fx {
	t.Helper()
	e := sim.NewEngine(1)
	b, err := hw.NewBattery(hw.NexusBatteryJ)
	if err != nil {
		t.Fatal(err)
	}
	meter, err := hw.NewMeter(e.Now, hw.Nexus4(), b)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := hw.NewAggregator(meter)
	if err != nil {
		t.Fatal(err)
	}
	pm := app.NewPackageManager()
	res := intent.NewResolver(pm)
	mgr, err := NewManager(e, pm, res, agg)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{pm: pm}
	mgr.AddHooks(rec)
	return &fx{engine: e, meter: meter, pm: pm, mgr: mgr, rec: rec}
}

func (f *fx) install(t *testing.T, pkg, label string) *app.App {
	t.Helper()
	a := f.pm.MustInstall(manifest.NewBuilder(pkg, label).
		Activity("Main", true, manifest.IntentFilter{
			Actions:    []string{intent.ActionSend},
			Categories: []string{intent.CategoryDefault},
		}).
		Activity("Second", true).
		MustBuild())
	if err := a.SetWorkload("Main", app.Workload{CPUActive: 0.4, CPUBackground: 0.05}); err != nil {
		t.Fatal(err)
	}
	return a
}

func (f *fx) userStart(t *testing.T, pkg string) *Activity {
	t.Helper()
	a, err := f.mgr.UserStartApp(pkg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestLauncherStartsForeground(t *testing.T) {
	f := newFx(t)
	if f.mgr.Foreground() != f.mgr.Launcher().UID {
		t.Fatal("launcher should be foreground at boot")
	}
	if f.mgr.Top().State() != Resumed {
		t.Fatal("home activity should be resumed")
	}
}

func TestUserStartAppBringsToForeground(t *testing.T) {
	f := newFx(t)
	a := f.install(t, "com.a", "A")
	rec := f.userStart(t, "com.a")
	if f.mgr.Foreground() != a.UID {
		t.Fatal("app should be foreground")
	}
	if rec.State() != Resumed {
		t.Fatalf("state = %v", rec.State())
	}
	// The launcher beneath is stopped (opaque activity above).
	if got := f.mgr.Stack()[0].State(); got != Stopped {
		t.Fatalf("launcher state = %v", got)
	}
	// Workload applied.
	if got := f.meter.CPUUtil(a.UID); got != 0.4 {
		t.Fatalf("cpu util = %v, want 0.4", got)
	}
}

func TestCrossAppStartAttribution(t *testing.T) {
	f := newFx(t)
	f.install(t, "com.a", "A")
	f.install(t, "com.b", "B")
	f.userStart(t, "com.a")
	aUID := f.pm.ByPackage("com.a").UID
	_, err := f.mgr.StartActivity(intent.Intent{Sender: aUID, Component: "com.b/Main"})
	if err != nil {
		t.Fatal(err)
	}
	want := "A->com.b/Main"
	found := false
	for _, s := range f.rec.started {
		if s == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("started = %v, want %s", f.rec.started, want)
	}
}

func TestBackgroundAppKeepsResidualCPU(t *testing.T) {
	f := newFx(t)
	a := f.install(t, "com.a", "A")
	f.install(t, "com.b", "B")
	f.userStart(t, "com.a")
	f.userStart(t, "com.b")
	if got := f.meter.CPUUtil(a.UID); got != 0.05 {
		t.Fatalf("background util = %v, want 0.05", got)
	}
}

func TestTransparentOverlayPausesNotStops(t *testing.T) {
	f := newFx(t)
	f.install(t, "com.a", "A")
	mal := f.install(t, "com.mal", "Mal")
	victim := f.userStart(t, "com.a")
	_, err := f.mgr.StartActivity(
		intent.Intent{Sender: mal.UID, Component: "com.mal/Main"}, Transparent())
	if err != nil {
		t.Fatal(err)
	}
	if victim.State() != Paused {
		t.Fatalf("victim state = %v, want paused under transparent overlay", victim.State())
	}
	// An opaque activity stops it instead.
	if _, err := f.mgr.StartActivity(intent.Intent{Sender: mal.UID, Component: "com.mal/Second"}); err != nil {
		t.Fatal(err)
	}
	if victim.State() != Stopped {
		t.Fatalf("victim state = %v, want stopped", victim.State())
	}
}

func TestCameraHeldOnlyWhileResumed(t *testing.T) {
	f := newFx(t)
	cam := f.pm.MustInstall(manifest.NewBuilder("com.camera", "Camera").
		Activity("Video", true).MustBuild())
	if err := cam.SetWorkload("Video", app.Workload{CPUActive: 0.6, Camera: true}); err != nil {
		t.Fatal(err)
	}
	f.install(t, "com.b", "B")
	f.userStart(t, "com.camera")
	if !f.meter.Holding(hw.Camera, cam.UID) {
		t.Fatal("camera should be held while resumed")
	}
	f.userStart(t, "com.b")
	if f.meter.Holding(hw.Camera, cam.UID) {
		t.Fatal("camera must be released in background")
	}
}

func TestHomeMovesLauncherToFront(t *testing.T) {
	f := newFx(t)
	a := f.install(t, "com.a", "A")
	rec := f.userStart(t, "com.a")
	f.mgr.Home(app.UIDSystem)
	if f.mgr.Foreground() != f.mgr.Launcher().UID {
		t.Fatal("launcher should be foreground after home")
	}
	if rec.State() != Stopped {
		t.Fatalf("app state after home = %v, want stopped (the no-sleep hazard)", rec.State())
	}
	_ = a
}

func TestMoveAppToFrontRestoresWithoutRestart(t *testing.T) {
	f := newFx(t)
	a := f.install(t, "com.a", "A")
	rec := f.userStart(t, "com.a")
	f.mgr.Home(app.UIDSystem)
	nStarts := len(f.rec.started)
	if err := f.mgr.MoveAppToFront(app.UIDSystem, "com.a"); err != nil {
		t.Fatal(err)
	}
	if f.mgr.Foreground() != a.UID || rec.State() != Resumed {
		t.Fatal("move-to-front should resume the same record")
	}
	if len(f.rec.started) != nStarts {
		t.Fatal("move-to-front must not create a new activity")
	}
}

func TestMoveAppToFrontErrors(t *testing.T) {
	f := newFx(t)
	f.install(t, "com.a", "A")
	if err := f.mgr.MoveAppToFront(app.UIDSystem, "com.missing"); err == nil {
		t.Fatal("missing package accepted")
	}
	if err := f.mgr.MoveAppToFront(app.UIDSystem, "com.a"); err == nil {
		t.Fatal("app with no activities accepted")
	}
}

func TestBackFinishesTop(t *testing.T) {
	f := newFx(t)
	f.install(t, "com.a", "A")
	rec := f.userStart(t, "com.a")
	f.mgr.Back()
	if rec.State() != Destroyed {
		t.Fatalf("state = %v, want destroyed", rec.State())
	}
	if f.mgr.Foreground() != f.mgr.Launcher().UID {
		t.Fatal("launcher should be foreground after back")
	}
	// Back on the bare launcher is a no-op.
	f.mgr.Back()
	if f.mgr.Top() == nil || f.mgr.Top().App().UID != f.mgr.Launcher().UID {
		t.Fatal("launcher must survive back")
	}
}

func TestFinish(t *testing.T) {
	f := newFx(t)
	f.install(t, "com.a", "A")
	rec := f.userStart(t, "com.a")
	if err := f.mgr.Finish(rec); err != nil {
		t.Fatal(err)
	}
	if err := f.mgr.Finish(rec); err == nil {
		t.Fatal("double finish accepted")
	}
}

func TestUserQuitKillsProcess(t *testing.T) {
	f := newFx(t)
	a := f.install(t, "com.a", "A")
	rec := f.userStart(t, "com.a")
	if err := f.mgr.UserQuitApp("com.a"); err != nil {
		t.Fatal(err)
	}
	if rec.State() != Destroyed || a.Alive() {
		t.Fatal("quit should destroy activities and kill the process")
	}
	if f.meter.CPUUtil(a.UID) != 0 {
		t.Fatal("dead app must not draw CPU")
	}
	if err := f.mgr.UserQuitApp("com.nope"); err == nil {
		t.Fatal("unknown package accepted")
	}
}

func TestProcessDeathDestroysActivities(t *testing.T) {
	f := newFx(t)
	a := f.install(t, "com.a", "A")
	rec := f.userStart(t, "com.a")
	a.Kill()
	if rec.State() != Destroyed {
		t.Fatalf("state = %v, want destroyed after process death", rec.State())
	}
	if f.mgr.Foreground() != f.mgr.Launcher().UID {
		t.Fatal("launcher should take over after death")
	}
}

func TestStartRevivesDeadProcess(t *testing.T) {
	f := newFx(t)
	a := f.install(t, "com.a", "A")
	f.userStart(t, "com.a")
	if err := f.mgr.UserQuitApp("com.a"); err != nil {
		t.Fatal(err)
	}
	if a.Alive() {
		t.Fatal("precondition: dead")
	}
	f.userStart(t, "com.a")
	if !a.Alive() {
		t.Fatal("start should revive the process")
	}
	if f.mgr.Foreground() != a.UID {
		t.Fatal("restarted app should be foreground")
	}
}

func TestImplicitSingleMatchStartsDirectly(t *testing.T) {
	f := newFx(t)
	f.install(t, "com.a", "A")
	b := f.install(t, "com.b", "B")
	// Only com.a declares the SEND filter? Both do. Restrict: use two
	// apps where only one matches a custom action.
	custom := f.pm.MustInstall(manifest.NewBuilder("com.only", "Only").
		Activity("Target", true, manifest.IntentFilter{Actions: []string{"act.UNIQUE"}}).
		MustBuild())
	matches, rec, err := f.mgr.StartActivityImplicit(intent.Intent{Sender: b.UID, Action: "act.UNIQUE"})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || rec == nil {
		t.Fatalf("matches=%d rec=%v", len(matches), rec)
	}
	if f.mgr.Foreground() != custom.UID {
		t.Fatal("single-match implicit start should be immediate")
	}
}

func TestImplicitMultiMatchGoesThroughResolver(t *testing.T) {
	f := newFx(t)
	a := f.install(t, "com.a", "A")
	b := f.install(t, "com.b", "B")
	sender := f.install(t, "com.sender", "Sender")
	f.userStart(t, "com.sender")

	matches, rec, err := f.mgr.StartActivityImplicit(intent.Intent{
		Sender:     sender.UID,
		Action:     intent.ActionSend,
		Categories: []string{intent.CategoryDefault},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		t.Fatal("multi-match should await resolver choice")
	}
	if len(matches) < 2 || !f.mgr.PendingResolver() {
		t.Fatalf("matches = %d, pending = %v", len(matches), f.mgr.PendingResolver())
	}
	// Resolver (system UI) is now foreground.
	if f.mgr.Top().App().Package() != ResolverPackage {
		t.Fatalf("top = %s, want resolver", f.mgr.Top().FullName())
	}
	// User picks com.b.
	choice := -1
	for i, mt := range matches {
		if mt.App == b {
			choice = i
		}
	}
	started, err := f.mgr.ChooseResolverOption(choice)
	if err != nil {
		t.Fatal(err)
	}
	if started.App() != b || f.mgr.Foreground() != b.UID {
		t.Fatal("chosen app should be foreground")
	}
	// Attribution unwinds the resolver: caller is the original sender.
	want := "Sender->com.b/Main"
	found := false
	for _, s := range f.rec.started {
		if s == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("started = %v, want %s", f.rec.started, want)
	}
	if f.mgr.PendingResolver() {
		t.Fatal("pending should be cleared")
	}
	_ = a
}

func TestChooseResolverErrors(t *testing.T) {
	f := newFx(t)
	if _, err := f.mgr.ChooseResolverOption(0); err == nil {
		t.Fatal("choice without pending accepted")
	}
	f.install(t, "com.a", "A")
	f.install(t, "com.b", "B")
	s := f.install(t, "com.s", "S")
	if _, _, err := f.mgr.StartActivityImplicit(intent.Intent{
		Sender: s.UID, Action: intent.ActionSend, Categories: []string{intent.CategoryDefault},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.mgr.ChooseResolverOption(99); err == nil {
		t.Fatal("out-of-range choice accepted")
	}
	// A second implicit multi-match while one is pending is rejected.
	if _, _, err := f.mgr.StartActivityImplicit(intent.Intent{
		Sender: s.UID, Action: intent.ActionSend, Categories: []string{intent.CategoryDefault},
	}); err == nil {
		t.Fatal("second pending resolution accepted")
	}
}

func TestImplicitNoMatchErrors(t *testing.T) {
	f := newFx(t)
	s := f.install(t, "com.s", "S")
	if _, _, err := f.mgr.StartActivityImplicit(intent.Intent{Sender: s.UID, Action: "act.NONE"}); err == nil {
		t.Fatal("no-match implicit start accepted")
	}
}

func TestForegroundChangeEvents(t *testing.T) {
	f := newFx(t)
	f.install(t, "com.a", "A")
	f.userStart(t, "com.a")
	f.mgr.Home(app.UIDSystem)
	// The boot transition (none->Launcher) fires during construction,
	// before hooks attach, so the recorder sees only post-boot changes.
	want := []string{
		"Launcher->A:start",
		"A->Launcher:home",
	}
	if len(f.rec.foreground) != len(want) {
		t.Fatalf("foreground events = %v, want %v", f.rec.foreground, want)
	}
	for i := range want {
		if f.rec.foreground[i] != want[i] {
			t.Fatalf("foreground events = %v, want %v", f.rec.foreground, want)
		}
	}
}

func TestUserInteractionCallback(t *testing.T) {
	f := newFx(t)
	n := 0
	f.mgr.SetUserInteractionFunc(func() { n++ })
	f.install(t, "com.a", "A")
	f.userStart(t, "com.a")
	f.mgr.Home(app.UIDSystem)
	f.mgr.Back()
	if n != 3 {
		t.Fatalf("user interactions = %d, want 3", n)
	}
	// App-initiated home is not a user interaction.
	f.userStart(t, "com.a")
	n = 0
	f.mgr.Home(f.pm.ByPackage("com.a").UID)
	if n != 0 {
		t.Fatal("app-driven home must not reset user-activity timeout")
	}
}

func TestUserStartAppErrors(t *testing.T) {
	f := newFx(t)
	if _, err := f.mgr.UserStartApp("com.none"); err == nil {
		t.Fatal("unknown package accepted")
	}
	f.pm.MustInstall(manifest.NewBuilder("com.svc", "Svc").Service("S", true).MustBuild())
	if _, err := f.mgr.UserStartApp("com.svc"); err == nil {
		t.Fatal("activity-less app accepted")
	}
}

func TestStackSnapshotIsCopy(t *testing.T) {
	f := newFx(t)
	s := f.mgr.Stack()
	s[0] = nil
	if f.mgr.Stack()[0] == nil {
		t.Fatal("Stack() must return a copy")
	}
}

func TestStateAndCauseStrings(t *testing.T) {
	if Resumed.String() != "resumed" || Destroyed.String() != "destroyed" {
		t.Fatal("state names")
	}
	if CauseStart.String() != "start" || CauseProcessDeath.String() != "process-death" {
		t.Fatal("cause names")
	}
	if State(0).String() == "" || CauseKind(0).String() == "" {
		t.Fatal("zero stringers empty")
	}
}

func TestNewManagerNilDeps(t *testing.T) {
	if _, err := NewManager(nil, nil, nil, nil); err == nil {
		t.Fatal("nil deps accepted")
	}
}
