package check

import (
	"fmt"

	"repro/internal/activity"
	"repro/internal/app"
	"repro/internal/service"
	"repro/internal/sim"
)

// Checker family 3: lifecycle legality. The activity and service
// managers apply their aggregator demand transitions before firing
// hooks, so on hook entry the checker can assert both the transition
// itself and its hardware-demand consequence.

// ActivityStarted implements activity.Hooks: it seeds the continuity
// tracker with the record's state at creation.
func (c *Checker) ActivityStarted(t sim.Time, caller app.UID, a *activity.Activity, explicit bool) {
	if c == nil {
		return
	}
	c.states[a] = a.State()
}

// ForegroundChanged implements activity.Hooks (no invariant attaches to
// foreground identity itself).
func (c *Checker) ForegroundChanged(t sim.Time, prev, cur app.UID, cause activity.Cause) {}

// Lifecycle implements activity.Hooks: transition legality, hook-stream
// continuity, destroyed-holds-nothing, and an aggregator audit.
func (c *Checker) Lifecycle(t sim.Time, a *activity.Activity, old, new activity.State) {
	if c == nil {
		return
	}
	if prev, ok := c.states[a]; ok && prev != old {
		c.report(InvLifecycle,
			fmt.Sprintf("activity %s transition %v->%v discontinuous with last observed state %v",
				a.FullName(), old, new, prev), float64(old), float64(prev), 0)
	}
	if old == activity.Destroyed {
		c.report(InvLifecycle,
			fmt.Sprintf("activity %s left Destroyed for %v", a.FullName(), new),
			float64(new), float64(activity.Destroyed), 0)
	}
	if new == old {
		c.report(InvLifecycle,
			fmt.Sprintf("activity %s self-transition %v->%v", a.FullName(), old, new),
			float64(new), float64(old), 0)
	}
	if new == activity.Destroyed {
		delete(c.states, a)
		if c.deps.Aggregator.Has(a) {
			c.report(InvLifecycle,
				fmt.Sprintf("destroyed activity %s still holds hardware demand", a.FullName()),
				1, 0, 0)
		}
	} else {
		c.states[a] = new
	}
	c.auditAggregator()
}

// ServiceStarted implements service.Hooks.
func (c *Checker) ServiceStarted(t sim.Time, caller app.UID, svc *service.Service) {}

// ServiceStopped implements service.Hooks.
func (c *Checker) ServiceStopped(t sim.Time, caller app.UID, svc *service.Service, kind service.StopKind) {
}

// ServiceBound implements service.Hooks.
func (c *Checker) ServiceBound(t sim.Time, conn *service.Connection) {}

// ServiceUnbound implements service.Hooks.
func (c *Checker) ServiceUnbound(t sim.Time, conn *service.Connection, cause service.UnbindCause) {}

// ServiceRunning implements service.Hooks: the hook's running flag, the
// record's own view, and the aggregator entry must all agree — a
// service that stopped drawing power must not keep hardware demand, and
// a running one must have an entry (zero demand still counts).
func (c *Checker) ServiceRunning(t sim.Time, svc *service.Service, running bool) {
	if c == nil {
		return
	}
	if running != svc.Running() {
		c.report(InvLifecycle,
			fmt.Sprintf("service %s running hook (%v) disagrees with record (%v)",
				svc.FullName(), running, svc.Running()), b2f(svc.Running()), b2f(running), 0)
	}
	if has := c.deps.Aggregator.Has(svc); has != running {
		what := "not running but still holds hardware demand"
		if !has {
			what = "running but holds no hardware demand entry"
		}
		c.report(InvLifecycle,
			fmt.Sprintf("service %s %s", svc.FullName(), what), b2f(has), b2f(running), 0)
	}
	c.auditAggregator()
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
