package check_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/accounting"
	"repro/internal/activity"
	"repro/internal/check"
	"repro/internal/device"
	"repro/internal/hw"
	"repro/internal/intent"
	"repro/internal/scenario"
)

// checkedWorld builds the demo cast on a device with the given checker
// options (EANDROID_CHECK is pinned off so the ambient environment
// cannot interfere with the A/B under test).
func checkedWorld(t *testing.T, opts *check.Options) *scenario.World {
	t.Helper()
	t.Setenv("EANDROID_CHECK", "off")
	w, err := scenario.NewWorld(device.Config{EAndroid: true, Checks: opts})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// mustClean fails the test if the device's checker recorded anything.
func mustClean(t *testing.T, w *scenario.World) {
	t.Helper()
	if vs := w.Dev.FinishChecks(); len(vs) > 0 {
		t.Fatalf("%d violations, first: %v", len(vs), vs[0])
	}
}

// TestScenariosCleanUnderPassiveChecks runs every scripted scene and
// attack with checker families 1-4 enabled: a healthy simulator must
// conserve energy and keep its lifecycle/aggregator state consistent
// through all of them.
func TestScenariosCleanUnderPassiveChecks(t *testing.T) {
	cases := []struct {
		name string
		run  func(*scenario.World) error
	}{
		{"scene1", (*scenario.World).Scene1MessageFilm},
		{"scene2", (*scenario.World).Scene2ContactsChain},
		{"attack1", func(w *scenario.World) error { return w.Attack1ComponentHijack(5 * time.Minute) }},
		{"attack2", func(w *scenario.World) error { return w.Attack2BackgroundApps(5 * time.Minute) }},
		{"attack3", func(w *scenario.World) error { return w.Attack3ServicePin(5 * time.Minute) }},
		{"attack4", func(w *scenario.World) error { return w.Attack4InterruptQuit(5 * time.Minute) }},
		{"attack5", func(w *scenario.World) error { return w.Attack5Brightness(time.Minute, 5*time.Minute) }},
		{"attack6", func(w *scenario.World) error { return w.Attack6WakelockScreen(5 * time.Minute) }},
		{"stealth", func(w *scenario.World) error { return w.StealthAutoLaunch(5 * time.Minute) }},
		{"combined", func(w *scenario.World) error { return w.CombinedAttack(5 * time.Minute) }},
		{"multi-collateral", (*scenario.World).MultiCollateral},
		{"hybrid-chain", (*scenario.World).HybridChain},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := checkedWorld(t, &check.Options{})
			if w.Dev.Checker == nil {
				t.Fatal("checker not attached")
			}
			if err := tc.run(w); err != nil {
				t.Fatal(err)
			}
			mustClean(t, w)
		})
	}
}

// TestDifferentialEnvelopeOnAttacks runs the six attacks with the
// shadow sampled accountant and asserts the paper's claim: sampling
// error is real but bounded — the sampled total stays inside the error
// envelope of the exact total.
func TestDifferentialEnvelopeOnAttacks(t *testing.T) {
	cases := []struct {
		name string
		run  func(*scenario.World) error
	}{
		{"attack1", func(w *scenario.World) error { return w.Attack1ComponentHijack(10 * time.Minute) }},
		{"attack2", func(w *scenario.World) error { return w.Attack2BackgroundApps(10 * time.Minute) }},
		{"attack3", func(w *scenario.World) error { return w.Attack3ServicePin(10 * time.Minute) }},
		{"attack4", func(w *scenario.World) error { return w.Attack4InterruptQuit(10 * time.Minute) }},
		{"attack5", func(w *scenario.World) error { return w.Attack5Brightness(time.Minute, 10*time.Minute) }},
		{"attack6", func(w *scenario.World) error { return w.Attack6WakelockScreen(10 * time.Minute) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := checkedWorld(t, &check.Options{Differential: true})
			if err := tc.run(w); err != nil {
				t.Fatal(err)
			}
			mustClean(t, w)
			// The envelope held; report the actual sampling error so a
			// -v run doubles as a small accuracy study.
			exact := w.Dev.Android.TotalJ()
			sampled := w.Dev.Checker.Sampled().TotalJ()
			re := accounting.RelativeError(sampled, exact)
			if exact >= check.MinDifferentialJ && re > check.DefaultErrorEnvelope {
				t.Fatalf("relative error %.4f above envelope %.2f (sampled %v, exact %v)",
					re, check.DefaultErrorEnvelope, sampled, exact)
			}
			t.Logf("sampled %.3f J vs exact %.3f J: relative error %.4f", sampled, exact, re)
		})
	}
}

// mutatedDevice builds an unchecked device, registers a sink that
// corrupts every interval's attribution (adding energy to a UID that
// never earned it), then wires a checker AFTER the corrupter — the
// seeded-mutation half of the oracle test: a checker that cannot catch
// a deliberately broken ledger proves nothing.
func mutatedDevice(t *testing.T, opts check.Options) (*device.Device, *check.Checker) {
	t.Helper()
	t.Setenv("EANDROID_CHECK", "off")
	dev, err := device.New(device.Config{})
	if err != nil {
		t.Fatal(err)
	}
	dev.Meter.AddSink(hw.SinkFunc(func(iv hw.Interval) {
		if iv.Duration() > 0 {
			// Rows on a borrowed interval mutate the shared table — the
			// corruption the checker must catch.
			iv.Row(9999).Add(hw.CPU, 0.5)
		}
	}))
	ck, err := check.New(opts, check.Deps{
		Engine:     dev.Engine,
		Battery:    dev.Battery,
		Meter:      dev.Meter,
		Aggregator: dev.Aggregator,
		Ledger:     dev.Android,
		Packages:   dev.Packages,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev.Meter.AddSink(ck)
	return dev, ck
}

func TestMutatedIntervalCaughtByConservation(t *testing.T) {
	dev, ck := mutatedDevice(t, check.Options{})
	if err := dev.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	dev.Flush()
	vs := ck.Finish()
	if len(vs) == 0 {
		t.Fatal("mis-attributed intervals went undetected")
	}
	found := false
	for _, v := range vs {
		if v.Invariant == check.InvConservation && strings.Contains(v.Detail, "interval") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no per-interval conservation violation among %d violations, first: %v", len(vs), vs[0])
	}
}

func TestFailFastSurfacesViolationError(t *testing.T) {
	dev, _ := mutatedDevice(t, check.Options{FailFast: true})
	err := dev.Run(time.Minute)
	if err == nil {
		t.Fatal("fail-fast run returned nil on a corrupted device")
	}
	var ve *check.ViolationError
	if !errors.As(err, &ve) {
		t.Fatalf("err = %v, want *check.ViolationError", err)
	}
	if ve.V.Invariant != check.InvConservation {
		t.Fatalf("violation family = %v, want conservation", ve.V.Invariant)
	}
}

// skimmingLedger under-reports the exact accountant's total — the
// "energy quietly disappears from the books" mutation.
type skimmingLedger struct{ acc *accounting.Accountant }

func (s skimmingLedger) TotalJ() float64 { return s.acc.TotalJ() * 0.9 }

func TestSkimmingLedgerCaughtByCumulativeConservation(t *testing.T) {
	t.Setenv("EANDROID_CHECK", "off")
	dev, err := device.New(device.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := check.New(check.Options{}, check.Deps{
		Engine:     dev.Engine,
		Battery:    dev.Battery,
		Meter:      dev.Meter,
		Aggregator: dev.Aggregator,
		Ledger:     skimmingLedger{dev.Android},
	})
	if err != nil {
		t.Fatal(err)
	}
	dev.Meter.AddSink(ck)
	if err := dev.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	dev.Flush()
	vs := ck.Finish()
	found := false
	for _, v := range vs {
		if v.Invariant == check.InvConservation && strings.Contains(v.Detail, "cumulative") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("skimmed ledger went undetected (%d violations)", len(vs))
	}
}

func TestEnvDrivesCheckerConstruction(t *testing.T) {
	t.Setenv("EANDROID_CHECK", "1")
	dev, err := device.New(device.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if dev.Checker == nil {
		t.Fatal("EANDROID_CHECK=1 did not attach a checker")
	}

	t.Setenv("EANDROID_CHECK", "off")
	dev, err = device.New(device.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if dev.Checker != nil {
		t.Fatal("EANDROID_CHECK=off still attached a checker")
	}
	if vs := dev.FinishChecks(); vs != nil {
		t.Fatalf("unchecked device returned violations: %v", vs)
	}

	// An explicit Disabled config beats the environment: benchmark
	// baselines must stay unchecked under EANDROID_CHECK=1.
	t.Setenv("EANDROID_CHECK", "1")
	dev, err = device.New(device.Config{Checks: &check.Options{Disabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	if dev.Checker != nil {
		t.Fatal("Options.Disabled did not override EANDROID_CHECK=1")
	}
}

// TestLifecycleViolationsDetected drives the family-3 hooks directly
// with illegal transitions — the managers never produce these, so the
// only way to prove the assertions live is to call the hook interface
// the way a broken manager would.
func TestLifecycleViolationsDetected(t *testing.T) {
	w := checkedWorld(t, &check.Options{})
	ck := w.Dev.Checker
	a, err := w.Dev.Activities.UserStartApp(scenario.PkgVictim)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Dev.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	before := len(ck.Violations())

	// Leaving Destroyed is never legal.
	ck.Lifecycle(w.Dev.Engine.Now(), a, activity.Destroyed, activity.Resumed)
	vs := ck.Violations()
	if len(vs) <= before {
		t.Fatal("Destroyed->Resumed transition went undetected")
	}
	sawLeft, sawDiscontinuous := false, false
	for _, v := range vs[before:] {
		if v.Invariant != check.InvLifecycle {
			t.Fatalf("unexpected family %v: %v", v.Invariant, v)
		}
		if strings.Contains(v.Detail, "left Destroyed") {
			sawLeft = true
		}
		if strings.Contains(v.Detail, "discontinuous") {
			sawDiscontinuous = true
		}
	}
	if !sawLeft {
		t.Fatal("no left-Destroyed violation recorded")
	}
	// The activity is actually Resumed, so claiming its old state was
	// Destroyed is also a continuity break.
	if !sawDiscontinuous {
		t.Fatal("no continuity violation recorded")
	}
}

func TestServiceRunningMismatchDetected(t *testing.T) {
	w := checkedWorld(t, &check.Options{})
	ck := w.Dev.Checker
	svc, err := w.Dev.Services.Start(intent.Intent{
		Sender:    w.Victim.UID,
		Component: scenario.PkgVictim + "/Work",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Dev.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	before := len(ck.Violations())

	// A hook claiming the running service stopped contradicts both the
	// record and the aggregator entry it still holds.
	ck.ServiceRunning(w.Dev.Engine.Now(), svc, false)
	vs := ck.Violations()
	if len(vs) < before+2 {
		t.Fatalf("want >=2 new violations (record mismatch + demand mismatch), got %d", len(vs)-before)
	}
	for _, v := range vs[before:] {
		if v.Invariant != check.InvLifecycle {
			t.Fatalf("unexpected family %v: %v", v.Invariant, v)
		}
	}
}

func TestMaxViolationsBoundsStorage(t *testing.T) {
	w := checkedWorld(t, &check.Options{MaxViolations: 2})
	ck := w.Dev.Checker
	a, err := w.Dev.Activities.UserStartApp(scenario.PkgVictim)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ck.Lifecycle(w.Dev.Engine.Now(), a, activity.Destroyed, activity.Resumed)
	}
	if got := len(ck.Violations()); got != 2 {
		t.Fatalf("stored %d violations, want the MaxViolations bound 2", got)
	}
	if ck.Dropped() == 0 {
		t.Fatal("overflow violations were not counted as dropped")
	}
}

func TestNilCheckerIsInert(t *testing.T) {
	var ck *check.Checker
	ck.Accrue(hw.Interval{})
	ck.Lifecycle(0, nil, activity.Resumed, activity.Paused)
	ck.ServiceRunning(0, nil, false)
	if vs := ck.Finish(); vs != nil {
		t.Fatalf("nil checker returned violations: %v", vs)
	}
	if ck.Violations() != nil || ck.Dropped() != 0 || ck.Sampled() != nil {
		t.Fatal("nil checker accessors not inert")
	}
}

func TestDifferentialNeedsPackages(t *testing.T) {
	t.Setenv("EANDROID_CHECK", "off")
	dev, err := device.New(device.Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = check.New(check.Options{Differential: true}, check.Deps{
		Engine:     dev.Engine,
		Battery:    dev.Battery,
		Meter:      dev.Meter,
		Aggregator: dev.Aggregator,
		Ledger:     dev.Android,
	})
	if err == nil {
		t.Fatal("differential checker built without a package manager")
	}
}
