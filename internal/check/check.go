// Package check is the simulation's always-available runtime invariant
// and differential-oracle subsystem. The paper's core claim is
// attribution *correctness* — battery drain must equal the sum of the
// per-app ledger entries plus screen and system (the energy-conservation
// argument behind E-Android's exact interval accounting) — and this
// package machine-checks that claim, and its structural preconditions,
// on every run rather than only in golden tests.
//
// Five checker families:
//
//  1. Interval energy conservation: each integrated interval's battery
//     delta equals the interval's attributed sum within an epsilon, and
//     the cumulative ledger total tracks cumulative battery drain.
//  2. Battery monotonicity and bounds: drained energy never decreases
//     and stays within [0, capacity]; the charge percentage stays in
//     [0, 100].
//  3. Lifecycle legality: no activity leaves Destroyed, hook-observed
//     transitions are continuous, and no destroyed activity or stopped
//     service still holds hardware demand.
//  4. Aggregator consistency: the per-UID CPU sums cached by
//     hw.Aggregator equal the sums recomputed from its live entries,
//     and the meter's clamped view matches.
//  5. Differential oracle: a PowerTutor-style SampledAccountant runs
//     alongside the exact Accountant on the same engine, and at Finish
//     the sampling error must stay inside the paper's error envelope.
//
// The wiring mirrors the telemetry subsystem: a nil *Checker is the
// "not built" state and every hook no-ops on it, so device construction
// attaches it unconditionally through nil-checked hooks. Violations are
// recorded as structured Violation values, mirrored into telemetry
// events, and — with Options.FailFast — injected into the engine so the
// Run variant in flight returns a *ViolationError.
package check

import (
	"fmt"
	"log/slog"
	"os"
	"time"

	"repro/internal/accounting"
	"repro/internal/activity"
	"repro/internal/app"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Invariant identifies which checker family a violation belongs to.
type Invariant uint8

// Checker families.
const (
	// InvConservation is interval / cumulative energy conservation.
	InvConservation Invariant = iota + 1
	// InvBatteryMonotonic is battery drain monotonicity.
	InvBatteryMonotonic
	// InvBatteryBounds is battery drain / percentage range legality.
	InvBatteryBounds
	// InvLifecycle is activity/service lifecycle legality.
	InvLifecycle
	// InvAggregator is hw.Aggregator sum consistency.
	InvAggregator
	// InvDifferential is the sampled-vs-exact error envelope.
	InvDifferential
)

func (i Invariant) String() string {
	switch i {
	case InvConservation:
		return "conservation"
	case InvBatteryMonotonic:
		return "battery-monotonic"
	case InvBatteryBounds:
		return "battery-bounds"
	case InvLifecycle:
		return "lifecycle"
	case InvAggregator:
		return "aggregator"
	case InvDifferential:
		return "differential"
	}
	return fmt.Sprintf("Invariant(%d)", int(i))
}

// Violation is one detected invariant breach.
type Violation struct {
	// T is the virtual instant the breach was detected.
	T sim.Time
	// Invariant names the checker family.
	Invariant Invariant
	// Detail is a human-readable description of the breach.
	Detail string
	// Got and Want are the compared quantities, when numeric.
	Got, Want float64
	// Epsilon is the tolerance the comparison used, when numeric.
	Epsilon float64
}

func (v Violation) String() string {
	return fmt.Sprintf("%v [%s] %s (got %g, want %g ± %g)",
		v.T, v.Invariant, v.Detail, v.Got, v.Want, v.Epsilon)
}

// ViolationError wraps the first violation when Options.FailFast is set;
// Engine.RunUntil (and kin) surface it.
type ViolationError struct {
	V Violation
}

func (e *ViolationError) Error() string {
	return "check: invariant violated: " + e.V.String()
}

// Defaults for Options' zero values.
const (
	// DefaultEpsilon is the absolute per-interval conservation
	// tolerance in joules — far below any single integrated segment,
	// far above float64 accumulation noise.
	DefaultEpsilon = 1e-6
	// DefaultRelEpsilon is the additional relative slack the cumulative
	// ledger-vs-battery comparison gets: the two totals accumulate the
	// same energy in different summation orders, so they drift apart by
	// a few ulps per segment.
	DefaultRelEpsilon = 1e-9
	// DefaultErrorEnvelope bounds the differential oracle: the paper's
	// related-work survey puts sampling-profiler error "as high as
	// about 20%", so a sampled total further than 25% from the exact
	// total indicates an oracle bug, not expected sampling error.
	DefaultErrorEnvelope = 0.25
	// DefaultMaxViolations bounds the recorded slice so a systemic
	// breach (one violation per interval over a long horizon) cannot
	// balloon memory; further violations are counted, not stored.
	DefaultMaxViolations = 1000
	// MinDifferentialJ is the smallest exact total the envelope is
	// asserted against: below it the relative error's denominator is
	// noise-dominated.
	MinDifferentialJ = 1.0
)

// Options configures a Checker. The zero value enables checker families
// 1–4 with default tolerances, recording violations passively.
type Options struct {
	// Disabled suppresses checker construction entirely. It exists so
	// benchmark baselines can force checking off even when the
	// EANDROID_CHECK environment variable would turn it on.
	Disabled bool
	// Epsilon is the absolute per-interval conservation tolerance in
	// joules; zero means DefaultEpsilon.
	Epsilon float64
	// RelEpsilon is the relative slack added to cumulative
	// comparisons; zero means DefaultRelEpsilon.
	RelEpsilon float64
	// FailFast injects the first violation into the engine, so the Run
	// variant in flight returns a *ViolationError instead of recording
	// passively.
	FailFast bool
	// Differential enables family 5: a SampledAccountant polling on
	// SamplePeriod, with the envelope asserted at Finish. Off by
	// default because the sampling ticker adds events to the engine's
	// stream, which changes event-level goldens.
	Differential bool
	// SamplePeriod is the differential oracle's polling period; zero
	// means accounting.DefaultSamplePeriod (1 Hz).
	SamplePeriod time.Duration
	// ErrorEnvelope is the maximum sampled-vs-exact relative error;
	// zero means DefaultErrorEnvelope.
	ErrorEnvelope float64
	// MaxViolations bounds the stored violation slice; zero means
	// DefaultMaxViolations.
	MaxViolations int
}

// Ledger is the cumulative total the conservation checker compares
// against battery drain; *accounting.Accountant satisfies it. Tests
// substitute mutated ledgers to prove the checker catches
// mis-attribution.
type Ledger interface {
	TotalJ() float64
}

// Deps are the substrates a Checker observes. Engine, Battery, Meter,
// Aggregator and Ledger are required; Packages only when Differential
// is set; Telemetry is optional.
type Deps struct {
	Engine     *sim.Engine
	Battery    *hw.Battery
	Meter      *hw.Meter
	Aggregator *hw.Aggregator
	Ledger     Ledger
	Packages   *app.PackageManager
	Telemetry  *telemetry.Recorder
	// Logger, when non-nil, receives one structured Warn per recorded
	// violation (virtual-time deterministic when built with
	// obsv.NewLogHandler).
	Logger *slog.Logger
}

// Checker observes a device through the meter's sink interface and the
// activity/service manager hooks. It is single-goroutine, like the
// engine it checks. A nil Checker is valid and checks nothing.
type Checker struct {
	opts Options
	deps Deps

	// sampled is the differential oracle, nil unless Options.Differential.
	sampled *accounting.SampledAccountant

	// lastDrained is the battery reading after the previous interval.
	lastDrained float64
	// states tracks each live activity's last hook-observed state.
	states map[*activity.Activity]activity.State

	violations []Violation
	dropped    int
	failed     bool
	finished   bool
}

// New builds a checker. The caller wires it in: meter.AddSink (last, so
// the exact accountant's ledger is settled before the cumulative
// comparison runs), activities.AddHooks, services.AddHooks.
func New(opts Options, deps Deps) (*Checker, error) {
	if deps.Engine == nil || deps.Battery == nil || deps.Meter == nil ||
		deps.Aggregator == nil || deps.Ledger == nil {
		return nil, fmt.Errorf("check: nil dependency")
	}
	if opts.Epsilon <= 0 {
		opts.Epsilon = DefaultEpsilon
	}
	if opts.RelEpsilon <= 0 {
		opts.RelEpsilon = DefaultRelEpsilon
	}
	if opts.ErrorEnvelope <= 0 {
		opts.ErrorEnvelope = DefaultErrorEnvelope
	}
	if opts.MaxViolations <= 0 {
		opts.MaxViolations = DefaultMaxViolations
	}
	c := &Checker{
		opts:        opts,
		deps:        deps,
		lastDrained: deps.Battery.DrainedJ(),
		states:      make(map[*activity.Activity]activity.State),
	}
	if opts.Differential {
		if deps.Packages == nil {
			return nil, fmt.Errorf("check: differential oracle needs Packages")
		}
		s, err := accounting.NewSampled(deps.Engine, deps.Meter, deps.Packages, opts.SamplePeriod)
		if err != nil {
			return nil, err
		}
		c.sampled = s
		s.Start()
	}
	return c, nil
}

// FromEnv translates the EANDROID_CHECK environment variable into
// options: unset/"0"/"off" means no checker, "fatal" means fail-fast,
// anything else enables passive checking (families 1–4). device.New
// consults it when Config.Checks is nil, which is how CI runs the whole
// suite with checkers enabled without touching call sites.
func FromEnv() *Options {
	switch os.Getenv("EANDROID_CHECK") {
	case "", "0", "off":
		return nil
	case "fatal":
		return &Options{FailFast: true}
	default:
		return &Options{}
	}
}

// report records one violation: bounded slice, telemetry mirror, and —
// under FailFast — engine injection (first violation only).
func (c *Checker) report(inv Invariant, detail string, got, want, eps float64) {
	v := Violation{
		T:         c.deps.Engine.Now(),
		Invariant: inv,
		Detail:    detail,
		Got:       got,
		Want:      want,
		Epsilon:   eps,
	}
	if len(c.violations) < c.opts.MaxViolations {
		c.violations = append(c.violations, v)
	} else {
		c.dropped++
	}
	c.deps.Telemetry.RecordViolation(v.T, inv.String(), detail, got, want)
	if c.deps.Logger != nil {
		c.deps.Logger.Warn("invariant violation",
			"invariant", inv.String(), "detail", detail, "got", got, "want", want)
	}
	if c.opts.FailFast && !c.failed {
		c.failed = true
		c.deps.Engine.Fail(&ViolationError{V: v})
	}
}

// Violations returns a copy of the recorded violations.
func (c *Checker) Violations() []Violation {
	if c == nil || len(c.violations) == 0 {
		return nil
	}
	out := make([]Violation, len(c.violations))
	copy(out, c.violations)
	return out
}

// Dropped reports how many violations exceeded MaxViolations and were
// counted but not stored.
func (c *Checker) Dropped() int {
	if c == nil {
		return 0
	}
	return c.dropped
}

// Sampled exposes the differential oracle, nil unless Differential.
func (c *Checker) Sampled() *accounting.SampledAccountant {
	if c == nil {
		return nil
	}
	return c.sampled
}

// Accrue implements hw.Sink: checker families 1 and 2 run on every
// integrated interval. The meter drains the battery before calling
// sinks, so the battery delta observed here is exactly the interval
// under inspection.
func (c *Checker) Accrue(iv hw.Interval) {
	if c == nil {
		return
	}
	drained := c.deps.Battery.DrainedJ()
	capJ := c.deps.Battery.CapacityJ()

	// Family 2: monotonicity and bounds.
	if drained < c.lastDrained {
		c.report(InvBatteryMonotonic, "battery drained energy decreased", drained, c.lastDrained, 0)
	}
	if drained < 0 || drained > capJ {
		c.report(InvBatteryBounds, "battery drained energy out of [0, capacity]", drained, capJ, 0)
	}
	if pct := c.deps.Battery.Percent(); pct < 0 || pct > 100 {
		c.report(InvBatteryBounds, "battery percentage out of [0, 100]", pct, 0, 0)
	}

	// Family 1, per interval: battery ΔJ == interval attribution sum.
	// Skipped once the battery is dead: Drain clamps at capacity, so a
	// depleted battery legitimately absorbs less than the attributed sum.
	if !c.deps.Battery.Dead() {
		sum := intervalSum(iv)
		delta := drained - c.lastDrained
		if diff := abs(delta - sum); diff > c.opts.Epsilon {
			c.report(InvConservation,
				fmt.Sprintf("interval [%v, %v] battery delta != attributed sum", iv.From, iv.To),
				delta, sum, c.opts.Epsilon)
		}
		// Family 1, cumulative: the exact ledger tracks total drain. The
		// checker is the last sink, so the ledger has already consumed
		// this interval.
		ledger := c.deps.Ledger.TotalJ()
		tol := c.opts.Epsilon + c.opts.RelEpsilon*drained
		if diff := abs(ledger - drained); diff > tol {
			c.report(InvConservation, "cumulative ledger total != battery drained",
				ledger, drained, tol)
		}
	}
	c.lastDrained = drained
}

// intervalSum adds up everything the interval attributes: per-UID usage
// (the dense table iterates in sorted UID order, so the sum is
// reproducible without re-collecting keys), screen and system.
func intervalSum(iv hw.Interval) float64 {
	return iv.AppsTotalJ() + iv.ScreenJ + iv.SystemJ
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Finish runs the end-of-run checks — a final aggregator audit and the
// differential envelope — and returns every recorded violation. It is
// idempotent: the first call stops the differential oracle (flushing
// its final partial period) and later calls just return the slice.
func (c *Checker) Finish() []Violation {
	if c == nil {
		return nil
	}
	if !c.finished {
		c.finished = true
		c.deps.Meter.Flush()
		c.auditAggregator()
		if c.sampled != nil {
			c.sampled.Stop()
			exact := c.deps.Ledger.TotalJ()
			if exact >= MinDifferentialJ {
				if re := accounting.RelativeError(c.sampled.TotalJ(), exact); re > c.opts.ErrorEnvelope {
					c.report(InvDifferential, "sampled total outside the exact-accounting error envelope",
						c.sampled.TotalJ(), exact, c.opts.ErrorEnvelope*exact)
				}
			}
		}
	}
	return c.Violations()
}

// auditAggregator runs checker family 4.
func (c *Checker) auditAggregator() {
	if err := c.deps.Aggregator.Audit(); err != nil {
		c.report(InvAggregator, err.Error(), 0, 0, 0)
	}
}
