package check_test

import (
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/device"
	"repro/internal/display"
	"repro/internal/intent"
	"repro/internal/power"
	"repro/internal/scenario"
	"repro/internal/service"
)

// FuzzInvariants drives a checked world with a byte-coded op stream —
// random but legal framework calls (starts, stops, binds, brightness,
// wakelocks, uninstalls, time) — and asserts the invariant checker
// stays silent. Individual op errors are expected (the fuzzer will
// gleefully stop services that never started); what may never happen is
// a sequence of legal API calls that breaks energy conservation,
// lifecycle legality or aggregator consistency. Corpus seeds live in
// testdata/fuzz/FuzzInvariants.
func FuzzInvariants(f *testing.F) {
	// Seeds: a quiet run, a start-heavy run, and a churny mix of
	// service, wakelock, brightness and uninstall ops.
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 30, 1, 1, 3, 0, 60, 4, 0, 120})
	f.Add([]byte{5, 7, 0, 10, 6, 8, 9, 2, 0, 45, 10, 200, 11, 1, 0, 90, 12, 0, 30})
	f.Fuzz(func(t *testing.T, ops []byte) {
		w, err := scenario.NewWorld(device.Config{
			EAndroid: true,
			Checks:   &check.Options{},
		})
		if err != nil {
			t.Fatal(err)
		}
		dev := w.Dev
		pkgs := []string{scenario.PkgMessage, scenario.PkgCamera,
			scenario.PkgContacts, scenario.PkgVictim, scenario.PkgMalware}
		var conns []*service.Connection
		var locks []*power.Wakelock
		next := func(i *int) byte {
			if *i >= len(ops) {
				return 0
			}
			b := ops[*i]
			*i++
			return b
		}
		for i := 0; i < len(ops); {
			switch next(&i) % 13 {
			case 0: // advance time 1..255 virtual seconds
				d := time.Duration(next(&i))*time.Second + time.Second
				if err := dev.Run(d); err != nil {
					t.Fatal(err)
				}
			case 1: // user opens an app
				_, _ = dev.Activities.UserStartApp(pkgs[int(next(&i))%len(pkgs)])
			case 2: // malware cross-starts the victim
				_, _ = dev.Activities.StartActivity(intent.Intent{
					Sender:    w.Malware.UID,
					Component: scenario.PkgVictim + "/Main",
				})
			case 3: // home button
				dev.Activities.Home(w.Malware.UID)
			case 4: // back button
				dev.Activities.Back()
			case 5: // start the victim's service
				_, _ = dev.Services.Start(intent.Intent{
					Sender:    w.Victim.UID,
					Component: scenario.PkgVictim + "/Work",
				})
			case 6: // stop it (may legally fail)
				_ = dev.Services.Stop(w.Victim.UID, scenario.PkgVictim+"/Work")
			case 7: // malware binds the victim's service
				if c, err := dev.Services.Bind(intent.Intent{
					Sender:    w.Malware.UID,
					Component: scenario.PkgVictim + "/Work",
				}); err == nil {
					conns = append(conns, c)
				}
			case 8: // unbind the oldest live connection
				if len(conns) > 0 {
					_ = dev.Services.Unbind(conns[0])
					conns = conns[1:]
				}
			case 9: // acquire a screen wakelock
				if wl, err := dev.Power.Acquire(w.Malware.UID, power.ScreenBright, "fuzz"); err == nil {
					locks = append(locks, wl)
				}
			case 10: // set brightness (camera holds WRITE_SETTINGS)
				_ = dev.Display.SetBrightness(w.Camera.UID, display.SourceApp, int(next(&i)))
			case 11: // release the oldest wakelock
				if len(locks) > 0 {
					_ = locks[0].Release()
					locks = locks[1:]
				}
			case 12: // uninstall + drop dangling handles
				_ = dev.Packages.Uninstall(pkgs[int(next(&i))%len(pkgs)])
				conns, locks = nil, nil
			}
		}
		if err := dev.Run(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		if vs := dev.FinishChecks(); len(vs) > 0 {
			t.Fatalf("op stream %v broke %d invariants, first: %v", ops, len(vs), vs[0])
		}
	})
}
