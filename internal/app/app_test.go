package app

import (
	"testing"
	"testing/quick"

	"repro/internal/manifest"
)

func demoManifest(pkg, label string) *manifest.Manifest {
	return manifest.NewBuilder(pkg, label).
		Activity("Main", true).
		Service("Work", true).
		MustBuild()
}

func TestInstallAssignsSequentialUIDs(t *testing.T) {
	pm := NewPackageManager()
	a := pm.MustInstall(demoManifest("com.a", "A"))
	b := pm.MustInstall(demoManifest("com.b", "B"))
	if a.UID != FirstAppUID || b.UID != FirstAppUID+1 {
		t.Fatalf("uids = %d, %d", a.UID, b.UID)
	}
	if !a.Alive() {
		t.Fatal("installed app should be alive")
	}
}

func TestInstallRejectsDuplicatePackage(t *testing.T) {
	pm := NewPackageManager()
	pm.MustInstall(demoManifest("com.a", "A"))
	if _, err := pm.Install(demoManifest("com.a", "A2")); err == nil {
		t.Fatal("want duplicate-package error")
	}
}

func TestInstallRejectsInvalidManifest(t *testing.T) {
	pm := NewPackageManager()
	if _, err := pm.Install(&manifest.Manifest{}); err == nil {
		t.Fatal("want validation error")
	}
}

func TestLookups(t *testing.T) {
	pm := NewPackageManager()
	a := pm.MustInstall(demoManifest("com.a", "A"))
	if pm.ByUID(a.UID) != a || pm.ByPackage("com.a") != a {
		t.Fatal("lookup mismatch")
	}
	if pm.ByUID(999) != nil || pm.ByPackage("nope") != nil {
		t.Fatal("missing lookups should be nil")
	}
}

func TestAppsSorted(t *testing.T) {
	pm := NewPackageManager()
	for _, pkg := range []string{"com.c", "com.a", "com.b"} {
		pm.MustInstall(demoManifest(pkg, pkg))
	}
	apps := pm.Apps()
	if len(apps) != 3 {
		t.Fatalf("len = %d", len(apps))
	}
	for i := 1; i < len(apps); i++ {
		if apps[i].UID <= apps[i-1].UID {
			t.Fatal("apps not sorted by UID")
		}
	}
}

func TestSystemInstall(t *testing.T) {
	pm := NewPackageManager()
	a, err := pm.InstallSystem(demoManifest("android.launcher", "Launcher"))
	if err != nil {
		t.Fatal(err)
	}
	if !a.System {
		t.Fatal("system flag not set")
	}
}

func TestLabels(t *testing.T) {
	pm := NewPackageManager()
	a := pm.MustInstall(demoManifest("com.a", "Alpha"))
	tests := []struct {
		uid  UID
		want string
	}{
		{a.UID, "Alpha"},
		{UIDScreen, "Screen"},
		{UIDSystem, "System"},
		{UIDNone, "(none)"},
		{555, "uid:555"},
	}
	for _, tt := range tests {
		if got := pm.Label(tt.uid); got != tt.want {
			t.Errorf("Label(%d) = %q, want %q", tt.uid, got, tt.want)
		}
	}
}

func TestLabelFallsBackToPackage(t *testing.T) {
	pm := NewPackageManager()
	a := pm.MustInstall(manifest.NewBuilder("com.nolabel", "").Activity("M", false).MustBuild())
	if got := a.Label(); got != "com.nolabel" {
		t.Fatalf("Label() = %q", got)
	}
}

func TestWorkloadAttachment(t *testing.T) {
	pm := NewPackageManager()
	a := pm.MustInstall(demoManifest("com.a", "A"))
	w := Workload{CPUActive: 0.5, CPUBackground: 0.05, Camera: true}
	if err := a.SetWorkload("Main", w); err != nil {
		t.Fatal(err)
	}
	got := a.Workload("Main")
	if got.CPUActive != 0.5 || !got.Camera {
		t.Fatalf("workload = %+v", got)
	}
	if a.Workload("Work") != (Workload{}) {
		t.Fatal("unset workload should be zero")
	}
	if err := a.SetWorkload("Missing", w); err == nil {
		t.Fatal("want error for unknown component")
	}
}

func TestWorkloadClamp(t *testing.T) {
	w := Workload{CPUActive: 1.5, CPUBackground: -0.2}.Clamp()
	if w.CPUActive != 1 || w.CPUBackground != 0 {
		t.Fatalf("clamp = %+v", w)
	}
}

func TestKillFiresDeathRecipients(t *testing.T) {
	pm := NewPackageManager()
	a := pm.MustInstall(demoManifest("com.a", "A"))
	var order []int
	a.LinkToDeath(func() { order = append(order, 1) })
	a.LinkToDeath(func() { order = append(order, 2) })
	a.Kill()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("death order = %v", order)
	}
	if a.Alive() {
		t.Fatal("app should be dead")
	}
	// Second kill is a no-op.
	a.Kill()
	if len(order) != 2 {
		t.Fatal("recipients fired twice")
	}
}

func TestLinkToDeathOnDeadProcessFiresImmediately(t *testing.T) {
	pm := NewPackageManager()
	a := pm.MustInstall(demoManifest("com.a", "A"))
	a.Kill()
	fired := false
	a.LinkToDeath(func() { fired = true })
	if !fired {
		t.Fatal("recipient on dead process should fire immediately")
	}
}

func TestRevive(t *testing.T) {
	pm := NewPackageManager()
	a := pm.MustInstall(demoManifest("com.a", "A"))
	a.Kill()
	a.Revive()
	if !a.Alive() {
		t.Fatal("revive failed")
	}
	// Recipients from before the kill must not survive into the new
	// process lifetime.
	fired := false
	a.LinkToDeath(func() { fired = true })
	a.Kill()
	if !fired {
		t.Fatal("new recipient should fire")
	}
}

// Property: clamped workloads always land in [0, 1].
func TestPropertyWorkloadClampBounds(t *testing.T) {
	prop := func(active, bg float64) bool {
		w := Workload{CPUActive: active, CPUBackground: bg}.Clamp()
		return w.CPUActive >= 0 && w.CPUActive <= 1 &&
			w.CPUBackground >= 0 && w.CPUBackground <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every installed app gets a unique UID ≥ FirstAppUID.
func TestPropertyUniqueUIDs(t *testing.T) {
	prop := func(n uint8) bool {
		pm := NewPackageManager()
		seen := map[UID]bool{}
		for i := 0; i < int(n%32); i++ {
			a := pm.MustInstall(demoManifest(
				"com.p"+string(rune('a'+i%26))+string(rune('a'+i/26)), "x"))
			if a.UID < FirstAppUID || seen[a.UID] {
				return false
			}
			seen[a.UID] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUninstall(t *testing.T) {
	pm := NewPackageManager()
	a := pm.MustInstall(demoManifest("com.a", "A"))
	died := false
	a.LinkToDeath(func() { died = true })
	if err := pm.Uninstall("com.a"); err != nil {
		t.Fatal(err)
	}
	if !died {
		t.Fatal("uninstall should kill the process")
	}
	if pm.ByPackage("com.a") != nil || pm.ByUID(a.UID) != nil {
		t.Fatal("uninstalled app still resolvable")
	}
	if err := pm.Uninstall("com.a"); err == nil {
		t.Fatal("double uninstall accepted")
	}
	sys, err := pm.InstallSystem(demoManifest("android.sys", "Sys"))
	if err != nil {
		t.Fatal(err)
	}
	if err := pm.Uninstall(sys.Package()); err == nil {
		t.Fatal("system uninstall accepted")
	}
}

func TestUninstallTombstoneLabel(t *testing.T) {
	pm := NewPackageManager()
	pm.MustInstall(demoManifest("com.gone", "Gone"))
	uid := pm.ByPackage("com.gone").UID
	if err := pm.Uninstall("com.gone"); err != nil {
		t.Fatal(err)
	}
	if got := pm.Label(uid); got != "Gone (uninstalled)" {
		t.Fatalf("label = %q", got)
	}
}

func TestUninstallHookFires(t *testing.T) {
	pm := NewPackageManager()
	a := pm.MustInstall(demoManifest("com.h", "H"))
	var got UID
	pm.AddUninstallHook(func(x *App) { got = x.UID })
	if err := pm.Uninstall("com.h"); err != nil {
		t.Fatal(err)
	}
	if got != a.UID {
		t.Fatalf("hook uid = %d, want %d", got, a.UID)
	}
}
