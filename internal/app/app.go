// Package app models installed applications: user IDs, processes,
// per-component workload profiles, and the package manager that assigns
// UIDs at install time.
//
// Android isolates every app in its own sandbox under a unique Linux user
// ID; all energy accounting in the paper is keyed by that UID, so the UID
// is the identity type threaded through every other package.
package app

import (
	"fmt"

	"repro/internal/manifest"
)

// UID identifies an installed app (its sandbox user ID). Negative values
// are reserved for pseudo-entries used by battery interfaces.
type UID int

// Pseudo-UIDs used by battery views and accounting buckets.
const (
	// UIDNone marks "no app" (e.g. nothing in the foreground).
	UIDNone UID = -1
	// UIDScreen is the pseudo entry Android's official battery interface
	// uses to report display energy separately from any app.
	UIDScreen UID = -2
	// UIDSystem aggregates kernel and framework overhead buckets.
	UIDSystem UID = -3
)

// FirstAppUID is the first UID handed to an installed package, mirroring
// Android's 10000+ app UID range.
const FirstAppUID UID = 10000

// Slot maps an app UID onto the small dense index the package manager
// assigned it (0 for the first install). UIDs are handed out
// sequentially from FirstAppUID, so installed apps occupy a compact
// integer range — the property the hot-path energy tables (hw.UsageTable
// and the meter's per-UID state) index by instead of hashing.
func Slot(uid UID) int { return int(uid - FirstAppUID) }

// FromSlot inverts Slot.
func FromSlot(slot int) UID { return FirstAppUID + UID(slot) }

// Workload describes the hardware demand of one component while it is
// active. Utilization values are fractions of one CPU core in [0, 1].
type Workload struct {
	// CPUActive is CPU utilization while the component is in the
	// foreground (resumed activity) or, for a service, running.
	CPUActive float64
	// CPUBackground is CPU utilization while an activity is paused or
	// stopped but its process is alive. Services use CPUActive whenever
	// they are running regardless of foreground state.
	CPUBackground float64
	// Camera reports whether the component keeps the camera sensor
	// powered while active (e.g. a video-recording activity).
	Camera bool
	// GPS reports whether the component holds a location fix while
	// active.
	GPS bool
	// WiFi reports whether the component keeps the radio in its
	// high-power transmit state while active.
	WiFi bool
	// Audio reports whether the component keeps the audio DSP powered
	// while active.
	Audio bool
}

// Clamp returns a copy with utilizations forced into [0, 1].
func (w Workload) Clamp() Workload {
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	w.CPUActive = clamp(w.CPUActive)
	w.CPUBackground = clamp(w.CPUBackground)
	return w
}

// App is one installed application.
type App struct {
	UID      UID
	Manifest *manifest.Manifest

	// System marks built-in apps (launcher, system UI, resolver) that
	// E-Android excludes from the collateral attack list.
	System bool

	// HiddenFromRecents mirrors the stealth flag the paper's malware
	// sets to keep itself out of the recent-apps list.
	HiddenFromRecents bool

	workloads map[string]Workload // component name -> profile

	alive           bool
	deathRecipients []func()
}

// Package returns the app's package name.
func (a *App) Package() string { return a.Manifest.Package }

// Label returns the app's human-readable name.
func (a *App) Label() string {
	if a.Manifest.Label != "" {
		return a.Manifest.Label
	}
	return a.Manifest.Package
}

// SetWorkload attaches a hardware demand profile to a declared component.
// It returns an error if the component is not in the manifest.
func (a *App) SetWorkload(component string, w Workload) error {
	if a.Manifest.Component(component) == nil {
		return fmt.Errorf("app %s: no component %q", a.Package(), component)
	}
	if a.workloads == nil {
		a.workloads = make(map[string]Workload)
	}
	a.workloads[component] = w.Clamp()
	return nil
}

// Workload returns the profile for a component (zero value if unset).
func (a *App) Workload(component string) Workload {
	return a.workloads[component]
}

// Alive reports whether the app's process is running.
func (a *App) Alive() bool { return a.alive }

// LinkToDeath registers fn to run when the app's process dies, mirroring
// Binder's death-recipient mechanism. If the process is already dead, fn
// runs immediately.
func (a *App) LinkToDeath(fn func()) {
	if !a.alive {
		fn()
		return
	}
	a.deathRecipients = append(a.deathRecipients, fn)
}

// Kill terminates the app's process and fires all death recipients in
// registration order. Killing a dead process is a no-op.
func (a *App) Kill() {
	if !a.alive {
		return
	}
	a.alive = false
	recipients := a.deathRecipients
	a.deathRecipients = nil
	for _, fn := range recipients {
		fn()
	}
}

// Revive restarts the app's process (used when a dead app is launched
// again).
func (a *App) Revive() { a.alive = true }

// PackageManager installs apps and resolves package names and UIDs.
type PackageManager struct {
	byUID  map[UID]*App
	byPkg  map[string]*App
	nextID UID

	// list caches the installed apps in ascending UID order. Installs
	// append (UIDs are assigned monotonically, so append preserves the
	// order) and uninstalls splice, which makes EachApp an allocation-
	// free iteration — samplers poll it every virtual second.
	list []*App

	uninstallHooks []func(*App)
	// tombstones keeps display labels for uninstalled packages so
	// battery views can still name them in historical rows.
	tombstones map[UID]string

	// gen counts membership changes (installs and uninstalls).
	// Samplers that derive state from the app census compare it to
	// skip rebuilding between changes.
	gen uint64
}

// NewPackageManager returns an empty package manager.
func NewPackageManager() *PackageManager {
	return &PackageManager{
		byUID:      make(map[UID]*App),
		byPkg:      make(map[string]*App),
		nextID:     FirstAppUID,
		tombstones: make(map[UID]string),
	}
}

// Install validates m, assigns the next free UID and returns the app with
// its process started.
func (pm *PackageManager) Install(m *manifest.Manifest) (*App, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if _, ok := pm.byPkg[m.Package]; ok {
		return nil, fmt.Errorf("app: package %s already installed", m.Package)
	}
	a := &App{UID: pm.nextID, Manifest: m, alive: true}
	pm.nextID++
	pm.byUID[a.UID] = a
	pm.byPkg[m.Package] = a
	pm.list = append(pm.list, a)
	pm.gen++
	return a, nil
}

// InstallSystem installs a built-in app flagged as a system app.
func (pm *PackageManager) InstallSystem(m *manifest.Manifest) (*App, error) {
	a, err := pm.Install(m)
	if err != nil {
		return nil, err
	}
	a.System = true
	return a, nil
}

// MustInstall is Install that panics on error, for scenario tables.
func (pm *PackageManager) MustInstall(m *manifest.Manifest) *App {
	a, err := pm.Install(m)
	if err != nil {
		panic(err)
	}
	return a
}

// AddUninstallHook registers fn to run after a package is removed; the
// E-Android monitor uses this to close the removed app's attack
// lifecycles.
func (pm *PackageManager) AddUninstallHook(fn func(*App)) {
	pm.uninstallHooks = append(pm.uninstallHooks, fn)
}

// Uninstall kills the app's process (firing death recipients, which
// releases wakelocks, drops binds and destroys activities) and removes
// the package. This is the battery interface's "delete the energy hog"
// action.
func (pm *PackageManager) Uninstall(pkg string) error {
	a := pm.byPkg[pkg]
	if a == nil {
		return fmt.Errorf("app: package %s not installed", pkg)
	}
	if a.System {
		return fmt.Errorf("app: cannot uninstall system app %s", pkg)
	}
	a.Kill()
	delete(pm.byPkg, pkg)
	delete(pm.byUID, a.UID)
	for i, cached := range pm.list {
		if cached == a {
			pm.list = append(pm.list[:i], pm.list[i+1:]...)
			break
		}
	}
	pm.tombstones[a.UID] = a.Label()
	pm.gen++
	for _, fn := range pm.uninstallHooks {
		fn(a)
	}
	return nil
}

// ByUID returns the app with the given UID, or nil.
func (pm *PackageManager) ByUID(uid UID) *App { return pm.byUID[uid] }

// ByPackage returns the app with the given package name, or nil.
func (pm *PackageManager) ByPackage(pkg string) *App { return pm.byPkg[pkg] }

// Apps returns all installed apps sorted by UID. The slice is a fresh
// copy; hot paths that only iterate should use EachApp, which walks the
// cached order without allocating.
func (pm *PackageManager) Apps() []*App {
	out := make([]*App, len(pm.list))
	copy(out, pm.list)
	return out
}

// Gen reports a counter that advances on every install or uninstall;
// it identifies the current app census, so per-tick samplers can cache
// census-derived state until membership actually changes.
func (pm *PackageManager) Gen() uint64 { return pm.gen }

// EachApp calls fn for every installed app in ascending UID order,
// without allocating. fn must not install or uninstall packages.
func (pm *PackageManager) EachApp(fn func(*App)) {
	for _, a := range pm.list {
		fn(a)
	}
}

// Label resolves a UID to a display label, understanding pseudo-UIDs.
func (pm *PackageManager) Label(uid UID) string {
	switch uid {
	case UIDScreen:
		return "Screen"
	case UIDSystem:
		return "System"
	case UIDNone:
		return "(none)"
	}
	if a := pm.byUID[uid]; a != nil {
		return a.Label()
	}
	if label, ok := pm.tombstones[uid]; ok {
		return label + " (uninstalled)"
	}
	return fmt.Sprintf("uid:%d", uid)
}
