// Package scenario provides the paper's experimental cast — the Message,
// Camera and Contacts apps, a victim demo app, and the energy malware —
// plus scripted drivers for the two normal scenes (Section VI-A), all
// six collateral energy attacks (Section III-B), and the multi-collateral
// and hybrid-chain cases (Figures 6 and 7).
package scenario

import (
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/activity"
	"repro/internal/app"
	"repro/internal/check"
	"repro/internal/device"
	"repro/internal/display"
	"repro/internal/intent"
	"repro/internal/manifest"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/surfaceflinger"
	"repro/internal/telemetry"
)

// Package names for the demo cast.
const (
	PkgMessage  = "com.android.message"
	PkgCamera   = "com.android.camera"
	PkgContacts = "com.android.contacts"
	PkgVictim   = "com.example.victim"
	PkgMalware  = "com.fun.game" // camouflaged as a game, per the paper
)

// World is a device with the demo cast installed.
type World struct {
	Dev      *device.Device
	Message  *app.App
	Camera   *app.App
	Contacts *app.App
	Victim   *app.App
	Malware  *app.App
}

// WorldOptions carries the cross-cutting construction options NewWorld
// threads into every world it builds: the CLIs' -trace/-metrics
// recorder, the runtime invariant checker options, the structured
// logger, and a post-construction hook for observers that need the
// concrete device (e.g. the obsv flame-graph collector). Options set
// directly on the device.Config win over these; every built device gets
// its own Checker — only the options pointer is shared.
type WorldOptions struct {
	Telemetry *telemetry.Recorder
	Checks    *check.Options
	Logger    *slog.Logger
	Hook      func(*device.Device)
}

// worldMu guards worldDefaults: the CLIs install process defaults once
// at startup, but fleet runners and parallel tests may build worlds
// concurrently, so the default set is read under a lock rather than
// through bare package globals (which raced under -race).
var (
	worldMu       sync.RWMutex
	worldDefaults WorldOptions
)

// SetWorldOptions atomically replaces the process-default options used
// by NewWorld (zero value detaches everything) and returns the previous
// set so callers can restore it.
func SetWorldOptions(opts WorldOptions) WorldOptions {
	worldMu.Lock()
	defer worldMu.Unlock()
	prev := worldDefaults
	worldDefaults = opts
	return prev
}

// DefaultWorldOptions returns a snapshot of the process-default options.
func DefaultWorldOptions() WorldOptions {
	worldMu.RLock()
	defer worldMu.RUnlock()
	return worldDefaults
}

// SetWorldTelemetry installs rec on every subsequently built world (nil
// detaches). A config that already carries its own recorder wins.
//
// Deprecated: mutate one field of the process defaults via
// SetWorldOptions, or pass options explicitly to NewWorldWith.
func SetWorldTelemetry(rec *telemetry.Recorder) {
	worldMu.Lock()
	defer worldMu.Unlock()
	worldDefaults.Telemetry = rec
}

// SetWorldChecks installs checker options on every subsequently built
// world (nil detaches). A config that already carries its own wins.
//
// Deprecated: use SetWorldOptions or NewWorldWith.
func SetWorldChecks(opts *check.Options) {
	worldMu.Lock()
	defer worldMu.Unlock()
	worldDefaults.Checks = opts
}

// SetWorldLogger installs lg on every subsequently built world (nil
// detaches). A config that already carries its own logger wins.
//
// Deprecated: use SetWorldOptions or NewWorldWith.
func SetWorldLogger(lg *slog.Logger) {
	worldMu.Lock()
	defer worldMu.Unlock()
	worldDefaults.Logger = lg
}

// SetWorldHook installs fn on every subsequently built world (nil
// detaches). The hook runs after device construction, before the cast
// installs.
//
// Deprecated: use SetWorldOptions or NewWorldWith.
func SetWorldHook(fn func(*device.Device)) {
	worldMu.Lock()
	defer worldMu.Unlock()
	worldDefaults.Hook = fn
}

// NewWorld builds a device from cfg with the process-default options
// and installs the demo cast.
func NewWorld(cfg device.Config) (*World, error) {
	return NewWorldWith(cfg, DefaultWorldOptions())
}

// NewWorldWith builds a device from cfg with explicit options — no
// process globals involved, so concurrent builders can each carry their
// own recorder, checker options and hook.
func NewWorldWith(cfg device.Config, opts WorldOptions) (*World, error) {
	if cfg.Telemetry == nil {
		cfg.Telemetry = opts.Telemetry
	}
	if cfg.Checks == nil {
		cfg.Checks = opts.Checks
	}
	if cfg.Logger == nil {
		cfg.Logger = opts.Logger
	}
	dev, err := device.New(cfg)
	if err != nil {
		return nil, err
	}
	if opts.Hook != nil {
		opts.Hook(dev)
	}
	return Populate(dev)
}

// Populate installs the demo cast on an existing device. Fleet runners
// use this: the device is built elsewhere (with a derived seed) and
// only the cast and scripted behaviour come from this package.
func Populate(dev *device.Device) (*World, error) {
	w := &World{Dev: dev}
	var err error

	w.Message, err = dev.Packages.Install(manifest.NewBuilder(PkgMessage, "Message").
		Category("Communication").
		Activity("Main", true, manifest.IntentFilter{
			Actions:    []string{intent.ActionSend},
			Categories: []string{intent.CategoryDefault},
		}).
		MustBuild())
	if err != nil {
		return nil, err
	}
	if err := w.Message.SetWorkload("Main", app.Workload{CPUActive: 0.25, CPUBackground: 0.02}); err != nil {
		return nil, err
	}

	w.Camera, err = dev.Packages.Install(manifest.NewBuilder(PkgCamera, "Camera").
		Category("Photography").
		Permission(manifest.PermWriteSettings).
		Activity("VideoActivity", true, manifest.IntentFilter{
			Actions:    []string{intent.ActionVideoCapture},
			Categories: []string{intent.CategoryDefault},
		}).
		MustBuild())
	if err != nil {
		return nil, err
	}
	if err := w.Camera.SetWorkload("VideoActivity", app.Workload{
		CPUActive: 0.5, CPUBackground: 0.02, Camera: true,
	}); err != nil {
		return nil, err
	}

	w.Contacts, err = dev.Packages.Install(manifest.NewBuilder(PkgContacts, "Contacts").
		Category("Communication").
		Activity("Main", true).
		MustBuild())
	if err != nil {
		return nil, err
	}
	if err := w.Contacts.SetWorkload("Main", app.Workload{CPUActive: 0.15, CPUBackground: 0.01}); err != nil {
		return nil, err
	}

	w.Victim, err = dev.Packages.Install(manifest.NewBuilder(PkgVictim, "Victim").
		Category("Productivity").
		Permission(manifest.PermWakeLock).
		Activity("Main", true).
		Service("Work", true).
		MustBuild())
	if err != nil {
		return nil, err
	}
	if err := w.Victim.SetWorkload("Main", app.Workload{CPUActive: 0.3, CPUBackground: 0.08}); err != nil {
		return nil, err
	}
	if err := w.Victim.SetWorkload("Work", app.Workload{CPUActive: 0.35}); err != nil {
		return nil, err
	}

	w.Malware, err = dev.Packages.Install(manifest.NewBuilder(PkgMalware, "FunGame").
		Category("Game").
		Permission(manifest.PermWakeLock, manifest.PermWriteSettings).
		Activity("Main", true).
		Activity("Overlay", true).
		Service("Daemon", false).
		MustBuild())
	if err != nil {
		return nil, err
	}
	// The malware itself is nearly idle — the whole point is that its
	// own reading stays tiny while victims drain the battery.
	if err := w.Malware.SetWorkload("Main", app.Workload{CPUActive: 0.03, CPUBackground: 0.01}); err != nil {
		return nil, err
	}
	if err := w.Malware.SetWorkload("Daemon", app.Workload{CPUActive: 0.01}); err != nil {
		return nil, err
	}
	w.Malware.HiddenFromRecents = true

	return w, nil
}

// MustNewWorld is NewWorld that panics on error.
func MustNewWorld(cfg device.Config) *World {
	w, err := NewWorld(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

func (w *World) run(d time.Duration) error { return w.Dev.Run(d) }

// ForceScreenOn reproduces the paper's experimental setup: "for all
// experiments, we set the wakelock so that the screen will be forced
// on". The lock is held by the system launcher so it never registers as
// a collateral attack itself.
func (w *World) ForceScreenOn() error {
	_, err := w.Dev.Power.Acquire(w.Dev.Activities.Launcher().UID,
		power.ScreenBright, "experiment-screen-on")
	return err
}

// Scene1MessageFilm reproduces normal scene #1 (and the shape of attacks
// #1/#2): the user opens Message, waits 30 s, then films a 30 s video —
// Message sends a VIDEO_CAPTURE intent that the Camera app serves.
func (w *World) Scene1MessageFilm() error {
	if _, err := w.Dev.Activities.UserStartApp(PkgMessage); err != nil {
		return err
	}
	if err := w.run(30 * time.Second); err != nil {
		return err
	}
	// The user taps "Record Video" in the Message UI (a real touch, so
	// the screen wakes / the idle timeout resets).
	w.Dev.Power.UserActivity()
	_, cam, err := w.Dev.Activities.StartActivityImplicit(intent.Intent{
		Sender:     w.Message.UID,
		Action:     intent.ActionVideoCapture,
		Categories: []string{intent.CategoryDefault},
	})
	if err != nil {
		return err
	}
	if cam == nil {
		return fmt.Errorf("scenario: camera start unexpectedly needs a resolver choice")
	}
	if err := w.run(30 * time.Second); err != nil {
		return err
	}
	// Recording done; the video returns to Message.
	w.Dev.Power.UserActivity()
	return w.Dev.Activities.Finish(cam)
}

// Scene2ContactsChain reproduces normal scene #2, the legitimate hybrid
// chain: Contacts opens Message, which films a 30 s video via Camera.
func (w *World) Scene2ContactsChain() error {
	if _, err := w.Dev.Activities.UserStartApp(PkgContacts); err != nil {
		return err
	}
	if err := w.run(10 * time.Second); err != nil {
		return err
	}
	// The user taps a contact, which opens the Message app.
	w.Dev.Power.UserActivity()
	if _, err := w.Dev.Activities.StartActivity(intent.Intent{
		Sender:    w.Contacts.UID,
		Component: PkgMessage + "/Main",
	}); err != nil {
		return err
	}
	if err := w.run(20 * time.Second); err != nil {
		return err
	}
	w.Dev.Power.UserActivity()
	_, cam, err := w.Dev.Activities.StartActivityImplicit(intent.Intent{
		Sender:     w.Message.UID,
		Action:     intent.ActionVideoCapture,
		Categories: []string{intent.CategoryDefault},
	})
	if err != nil {
		return err
	}
	if cam == nil {
		return fmt.Errorf("scenario: camera start unexpectedly needs a resolver choice")
	}
	if err := w.run(30 * time.Second); err != nil {
		return err
	}
	w.Dev.Power.UserActivity()
	return w.Dev.Activities.Finish(cam)
}

// Attack1ComponentHijack: malware hijacks another app's energy-hog
// component (the camera) through a perfectly legal intent, then the user
// returns home; the camera keeps draining in the recorder's own name.
func (w *World) Attack1ComponentHijack(dur time.Duration) error {
	if _, err := w.Dev.Activities.UserStartApp(PkgMalware); err != nil {
		return err
	}
	if _, err := w.Dev.Activities.StartActivity(intent.Intent{
		Sender:    w.Malware.UID,
		Component: PkgCamera + "/VideoActivity",
	}); err != nil {
		return err
	}
	return w.run(dur)
}

// Attack2BackgroundApps: malware opens other apps and shoves them into
// the background, where they keep draining.
func (w *World) Attack2BackgroundApps(dur time.Duration) error {
	if _, err := w.Dev.Activities.UserStartApp(PkgMalware); err != nil {
		return err
	}
	if _, err := w.Dev.Activities.StartActivity(intent.Intent{
		Sender:    w.Malware.UID,
		Component: PkgVictim + "/Main",
	}); err != nil {
		return err
	}
	if _, err := w.Dev.Activities.StartActivity(intent.Intent{
		Sender:    w.Malware.UID,
		Component: PkgMessage + "/Main",
	}); err != nil {
		return err
	}
	// Malware pulls itself back in front; the opened apps sit in the
	// background draining their residual shares.
	if err := w.Dev.Activities.MoveAppToFront(w.Malware.UID, PkgMalware); err != nil {
		return err
	}
	return w.run(dur)
}

// Attack3ServicePin: the victim starts its own service and stops it
// immediately, but the malware's bind keeps it running for the whole
// attack window.
func (w *World) Attack3ServicePin(dur time.Duration) error {
	if _, err := w.Dev.Activities.UserStartApp(PkgVictim); err != nil {
		return err
	}
	if _, err := w.Dev.Services.Start(intent.Intent{
		Sender:    w.Victim.UID,
		Component: PkgVictim + "/Work",
	}); err != nil {
		return err
	}
	// Malware detects the service and binds before the victim stops it.
	if _, err := w.Dev.Services.Bind(intent.Intent{
		Sender:    w.Malware.UID,
		Component: PkgVictim + "/Work",
	}); err != nil {
		return err
	}
	if err := w.Dev.Services.Stop(w.Victim.UID, PkgVictim+"/Work"); err != nil {
		return err
	}
	return w.run(dur)
}

// Attack4InterruptQuit: the victim holds a screen wakelock it only
// releases in onDestroy(). The malware watches SurfaceFlinger's shared
// virtual memory for the exit dialog's allocation signature (the UI
// inference side channel); when the user tries to quit, it covers the
// dialog with a transparent page, swallows the "OK" tap and starts the
// home UI — so the victim merely stops, wakelock still held.
func (w *World) Attack4InterruptQuit(dur time.Duration) error {
	// The malware arms the side-channel sniffer before anything happens.
	var overlayErr error
	covered := false
	sniffer := &surfaceflinger.DialogSniffer{
		OnDialog: func(sim.Time) {
			// A dialog just appeared: interpose the transparent page.
			_, overlayErr = w.Dev.Activities.StartActivity(intent.Intent{
				Sender:    w.Malware.UID,
				Component: PkgMalware + "/Overlay",
			}, activity.Transparent())
			covered = true
		},
	}
	sniffer.Attach(w.Dev.Flinger)

	if _, err := w.Dev.Activities.UserStartApp(PkgVictim); err != nil {
		return err
	}
	// The victim keeps the screen on during use (the common no-sleep bug
	// pattern: release only in onDestroy).
	if _, err := w.Dev.Power.Acquire(w.Victim.UID, power.ScreenBright, "victim-ui"); err != nil {
		return err
	}
	if err := w.run(10 * time.Second); err != nil {
		return err
	}

	// The user taps quit: the victim's root activity pops its exit
	// dialog. The sniffer observes the allocation and covers it.
	dialog := w.Dev.Flinger.ShowDialog(w.Victim.UID, "exit-dialog")
	if overlayErr != nil {
		return overlayErr
	}
	if !covered {
		return fmt.Errorf("scenario: dialog sniffer missed the exit dialog")
	}
	// The user clicks where "OK" sits — the tap lands on the malware's
	// transparent page instead. The malware dismisses the scene by
	// starting the home UI; the victim's dialog closes without the app
	// being destroyed.
	if err := dialog.Dismiss(); err != nil {
		return err
	}
	w.Dev.Activities.Home(w.Malware.UID)
	return w.run(dur)
}

// Attack5Brightness: the malware secretly escalates brightness from the
// background while the victim is in the foreground. normalDur measures
// the unmolested baseline first; attackDur runs with escalated
// brightness. A screen wakelock keeps the display comparable across both
// halves, as in the paper's methodology.
func (w *World) Attack5Brightness(normalDur, attackDur time.Duration) error {
	if _, err := w.Dev.Activities.UserStartApp(PkgVictim); err != nil {
		return err
	}
	if _, err := w.Dev.Power.Acquire(w.Victim.UID, power.ScreenBright, "victim-ui"); err != nil {
		return err
	}
	if err := w.run(normalDur); err != nil {
		return err
	}
	// Malware's transparent self-close settings activity applies the
	// escalated value.
	if err := w.Dev.Display.SetBrightness(w.Malware.UID, display.SourceApp, 255); err != nil {
		return err
	}
	return w.run(attackDur)
}

// Attack6WakelockScreen: the malware's background service acquires a
// screen wakelock and never releases it, so the screen never times out;
// the drained screen energy lands on the Screen entry or the foreground
// app, never on the malware.
func (w *World) Attack6WakelockScreen(dur time.Duration) error {
	// Malware runs from a service in the background; the launcher stays
	// in the foreground.
	if _, err := w.Dev.Services.Start(intent.Intent{
		Sender:    w.Malware.UID,
		Component: PkgMalware + "/Daemon",
	}); err != nil {
		return err
	}
	if _, err := w.Dev.Power.Acquire(w.Malware.UID, power.ScreenBright, "daemon"); err != nil {
		return err
	}
	return w.run(dur)
}

// StealthAutoLaunch reproduces the paper's stealth delivery story from
// §V: the malware sets a flag to hide from recents, registers for
// ACTION_USER_PRESENT, and when the user unlocks the screen its receiver
// silently mounts the component-hijack attack — the malware never
// appears in the foreground at all.
func (w *World) StealthAutoLaunch(dur time.Duration) error {
	// The malware ships an unlock receiver. (The demo manifest gains it
	// lazily so older scenarios are unaffected.)
	if w.Malware.Manifest.Component("Unlock") == nil {
		w.Malware.Manifest.Components = append(w.Malware.Manifest.Components,
			manifest.Component{
				Kind: manifest.KindReceiver, Name: "Unlock", Exported: true,
				Filters: []manifest.IntentFilter{{Actions: []string{intent.ActionUserPresent}}},
			})
	}
	var attackErr error
	if err := w.Dev.Broadcasts.SetHandler(PkgMalware, "Unlock", time.Second,
		func(intent.Intent) {
			// onReceive: hijack the camera from the background.
			_, attackErr = w.Dev.Activities.StartActivity(intent.Intent{
				Sender:    w.Malware.UID,
				Component: PkgCamera + "/VideoActivity",
			})
		}); err != nil {
		return err
	}
	// The user unlocks the phone; the system broadcast wakes the malware.
	if _, err := w.Dev.UserUnlock(); err != nil {
		return err
	}
	if attackErr != nil {
		return attackErr
	}
	return w.run(dur)
}

// CombinedAttack reproduces the paper's "Multi- & Hybrid Attack"
// sketch: "malware could bind a victim's service and increase the
// brightness when the victim is running in foreground" — two vectors at
// once against the same victim session.
func (w *World) CombinedAttack(dur time.Duration) error {
	if _, err := w.Dev.Activities.UserStartApp(PkgVictim); err != nil {
		return err
	}
	// Keep the session visible for the whole window.
	if _, err := w.Dev.Power.Acquire(w.Victim.UID, power.ScreenBright, "victim-ui"); err != nil {
		return err
	}
	// Vector 1: pin the victim's service from the background.
	if _, err := w.Dev.Services.Bind(intent.Intent{
		Sender:    w.Malware.UID,
		Component: PkgVictim + "/Work",
	}); err != nil {
		return err
	}
	// Vector 2: escalate brightness while the victim is foreground, so
	// the extra screen energy masquerades as the victim's session.
	if err := w.Dev.Display.SetBrightness(w.Malware.UID, display.SourceApp, 255); err != nil {
		return err
	}
	return w.run(dur)
}

// AttackChainSeries reproduces "malware could spread the attack to a
// series of victims ... leading [to] energy attack chains": the malware
// drives the victim, which (as an unintentional middleman) involves the
// Message app, which involves the Camera.
func (w *World) AttackChainSeries(stepDur time.Duration) error {
	// Malware starts the victim's activity.
	if _, err := w.Dev.Activities.UserStartApp(PkgMalware); err != nil {
		return err
	}
	if _, err := w.Dev.Activities.StartActivity(intent.Intent{
		Sender:    w.Malware.UID,
		Component: PkgVictim + "/Main",
	}); err != nil {
		return err
	}
	if err := w.run(stepDur); err != nil {
		return err
	}
	// The victim unintentionally involves another app...
	if _, err := w.Dev.Activities.StartActivity(intent.Intent{
		Sender:    w.Victim.UID,
		Component: PkgMessage + "/Main",
	}); err != nil {
		return err
	}
	if err := w.run(stepDur); err != nil {
		return err
	}
	// ...which involves a third.
	if _, err := w.Dev.Activities.StartActivity(intent.Intent{
		Sender:    w.Message.UID,
		Component: PkgCamera + "/VideoActivity",
	}); err != nil {
		return err
	}
	return w.run(stepDur)
}

// MultiCollateral reproduces Figure 6: the malware binds the victim's
// service, starts its activity, and interrupts it — three simultaneous
// attacks on the same victim that must not double-charge — then the user
// starts the victim (ending activity/interrupt attacks) and the malware
// unbinds (ending the last link).
func (w *World) MultiCollateral() error {
	if _, err := w.Dev.Activities.UserStartApp(PkgMalware); err != nil {
		return err
	}
	conn, err := w.Dev.Services.Bind(intent.Intent{
		Sender:    w.Malware.UID,
		Component: PkgVictim + "/Work",
	})
	if err != nil {
		return err
	}
	if err := w.run(10 * time.Second); err != nil {
		return err
	}
	if _, err := w.Dev.Activities.StartActivity(intent.Intent{
		Sender:    w.Malware.UID,
		Component: PkgVictim + "/Main",
	}); err != nil {
		return err
	}
	if err := w.run(10 * time.Second); err != nil {
		return err
	}
	// Malware interrupts the victim to the background.
	w.Dev.Activities.Home(w.Malware.UID)
	if err := w.run(10 * time.Second); err != nil {
		return err
	}
	// User starts the victim: the activity-period attacks end.
	if _, err := w.Dev.Activities.UserStartApp(PkgVictim); err != nil {
		return err
	}
	if err := w.run(10 * time.Second); err != nil {
		return err
	}
	// Malware unbinds: all collateral links to the victim are revoked.
	if err := w.Dev.Services.Unbind(conn); err != nil {
		return err
	}
	return w.run(10 * time.Second)
}

// HybridChain reproduces Figure 7: A (malware) binds B's (victim's)
// service; B starts C's (Camera's) activity; C changes the screen
// brightness. The energy of B, C and the screen all superimpose onto A.
// The user then takes back control step by step.
func (w *World) HybridChain() error {
	// A binds from the background (bound services need no foreground
	// presence), so the chain's only visible surface is C's activity.
	conn, err := w.Dev.Services.Bind(intent.Intent{
		Sender:    w.Malware.UID,
		Component: PkgVictim + "/Work",
	})
	if err != nil {
		return err
	}
	if err := w.run(10 * time.Second); err != nil {
		return err
	}
	// B starts one activity belonging to C.
	if _, err := w.Dev.Activities.StartActivity(intent.Intent{
		Sender:    w.Victim.UID,
		Component: PkgCamera + "/VideoActivity",
	}); err != nil {
		return err
	}
	if err := w.run(10 * time.Second); err != nil {
		return err
	}
	// C stealthily raises the brightness (the Camera app legitimately
	// holds WRITE_SETTINGS — many camera apps adjust brightness while
	// shooting, which is what makes this chain realistic).
	if err := w.Dev.Display.SetBrightness(w.Camera.UID, display.SourceApp, 255); err != nil {
		return err
	}
	if err := w.run(10 * time.Second); err != nil {
		return err
	}
	// User sets brightness back: the screen attack ends.
	if err := w.Dev.Display.SetBrightness(app.UIDSystem, display.SourceSystemUI, display.DefaultBrightness); err != nil {
		return err
	}
	if err := w.run(5 * time.Second); err != nil {
		return err
	}
	// User starts B and C: the activity-period attacks end.
	if _, err := w.Dev.Activities.UserStartApp(PkgCamera); err != nil {
		return err
	}
	if _, err := w.Dev.Activities.UserStartApp(PkgVictim); err != nil {
		return err
	}
	if err := w.run(5 * time.Second); err != nil {
		return err
	}
	if err := w.Dev.Services.Unbind(conn); err != nil {
		return err
	}
	return w.run(5 * time.Second)
}
