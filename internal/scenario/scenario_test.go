package scenario

import (
	"testing"
	"time"

	"repro/internal/accounting"
	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/hw"
)

func newTestWorld(t *testing.T) *World {
	t.Helper()
	w, err := NewWorld(device.Config{EAndroid: true, Policy: accounting.BatteryStats})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWorldInstallsCast(t *testing.T) {
	w := newTestWorld(t)
	for _, a := range []*app.App{w.Message, w.Camera, w.Contacts, w.Victim, w.Malware} {
		if a == nil || !a.Alive() {
			t.Fatal("cast member missing or dead")
		}
	}
	if !w.Malware.HiddenFromRecents {
		t.Fatal("malware should hide from recents")
	}
	if w.Malware.Manifest.HasPermission("nope") {
		t.Fatal("sanity")
	}
}

func TestScene1EnergyFlow(t *testing.T) {
	w := newTestWorld(t)
	if err := w.Scene1MessageFilm(); err != nil {
		t.Fatal(err)
	}
	w.Dev.Flush()
	// Camera ran for 30 s in the foreground holding the sensor.
	if !withinPct(w.Dev.Android.AppUsage(w.Camera.UID)[hw.Camera],
		hw.Nexus4().CameraOn/1000*30, 1) {
		t.Fatalf("camera sensor energy = %v", w.Dev.Android.AppUsage(w.Camera.UID)[hw.Camera])
	}
	// After the scene the camera activity is finished: message resumed.
	if got := w.Dev.Activities.Foreground(); got != w.Message.UID {
		t.Fatalf("foreground = %v, want message", got)
	}
	// A legitimate IPC chain still registers as collateral (normal apps
	// produce collateral energy too).
	if len(w.Dev.EAndroid.Attacks()) == 0 {
		t.Fatal("scene 1 should record the message->camera collateral period")
	}
}

func TestScene2ChainDepth(t *testing.T) {
	w := newTestWorld(t)
	if err := w.Scene2ContactsChain(); err != nil {
		t.Fatal(err)
	}
	w.Dev.Flush()
	// Contacts carries Message AND Camera in its collateral map.
	mp := w.Dev.EAndroid.CollateralMap(w.Contacts.UID)
	var haveMsg, haveCam bool
	for _, e := range mp {
		if e.Driven == w.Message.UID && e.EnergyJ > 0 {
			haveMsg = true
		}
		if e.Driven == w.Camera.UID && e.EnergyJ > 0 {
			haveCam = true
		}
	}
	if !haveMsg || !haveCam {
		t.Fatalf("contacts map incomplete: msg=%v cam=%v (%+v)", haveMsg, haveCam, mp)
	}
}

func TestAttack1HidesBehindCamera(t *testing.T) {
	w := newTestWorld(t)
	if err := w.ForceScreenOn(); err != nil {
		t.Fatal(err)
	}
	if err := w.Attack1ComponentHijack(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	w.Dev.Flush()
	acc := w.Dev.Android
	if acc.AppJ(w.Malware.UID) > acc.AppJ(w.Camera.UID)/10 {
		t.Fatal("attack 1 is supposed to be invisible in the baseline")
	}
	if w.Dev.EAndroid.CollateralJ(w.Malware.UID) == 0 {
		t.Fatal("E-Android must charge the malware")
	}
}

func TestAttack2BackgroundDrain(t *testing.T) {
	w := newTestWorld(t)
	if err := w.ForceScreenOn(); err != nil {
		t.Fatal(err)
	}
	if err := w.Attack2BackgroundApps(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	w.Dev.Flush()
	// Both background victims drained their residual CPU shares.
	p := hw.Nexus4()
	wantVictim := 0.08 * p.CPUFull / 1000 * 60
	if !withinPct(w.Dev.Android.AppJ(w.Victim.UID), wantVictim, 2) {
		t.Fatalf("victim bg energy = %v, want ~%v", w.Dev.Android.AppJ(w.Victim.UID), wantVictim)
	}
	// The malware's collateral map carries both victims.
	mp := w.Dev.EAndroid.CollateralMap(w.Malware.UID)
	if len(mp) < 2 {
		t.Fatalf("map = %+v", mp)
	}
}

func TestAttack3PinsService(t *testing.T) {
	w := newTestWorld(t)
	if err := w.ForceScreenOn(); err != nil {
		t.Fatal(err)
	}
	if err := w.Attack3ServicePin(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	svc := w.Dev.Services.Lookup(PkgVictim + "/Work")
	if svc == nil || !svc.Running() {
		t.Fatal("service should still run (stopService defeated)")
	}
	if svc.Started() {
		t.Fatal("service should no longer be 'started', only pinned by the bind")
	}
}

func TestAttack4LeavesWakelockHeld(t *testing.T) {
	w := newTestWorld(t)
	if err := w.Attack4InterruptQuit(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The victim sits in the background, alive, wakelock held: the
	// no-sleep hazard in effect.
	locks := w.Dev.Power.HeldBy(w.Victim.UID)
	if len(locks) != 1 {
		t.Fatalf("victim wakelocks = %d, want 1", len(locks))
	}
	if w.Dev.Activities.Foreground() == w.Victim.UID {
		t.Fatal("victim should be in the background")
	}
	if !w.Victim.Alive() {
		t.Fatal("victim process should be alive (quit was intercepted)")
	}
	if !w.Dev.Power.ScreenOn() {
		t.Fatal("held screen wakelock should keep the screen on")
	}
	// E-Android attributes the wakelock attack to the interrupter chain:
	// at least an interrupt record against the malware exists.
	var interrupt bool
	for _, a := range w.Dev.EAndroid.Attacks() {
		if a.Vector == core.VectorInterrupt && a.Driving == w.Malware.UID {
			interrupt = true
		}
	}
	if !interrupt {
		t.Fatal("interrupt attack not recorded")
	}
}

func TestAttack5EscalatesBrightness(t *testing.T) {
	w := newTestWorld(t)
	if err := w.Attack5Brightness(30*time.Second, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if w.Dev.Meter.Brightness() != 255 {
		t.Fatalf("brightness = %d, want 255", w.Dev.Meter.Brightness())
	}
	w.Dev.Flush()
	if w.Dev.EAndroid.CollateralJ(w.Malware.UID) == 0 {
		t.Fatal("screen escalation should charge the malware")
	}
}

func TestAttack6ScreenPinned(t *testing.T) {
	w := newTestWorld(t)
	if err := w.Attack6WakelockScreen(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !w.Dev.Power.ScreenOn() {
		t.Fatal("screen should still be on at t=60s")
	}
	// Compare to a no-attack world: screen times out at 30 s.
	n := newTestWorld(t)
	if err := n.Dev.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if n.Dev.Power.ScreenOn() {
		t.Fatal("control: screen should have timed out")
	}
	w.Dev.Flush()
	n.Dev.Flush()
	if w.Dev.Android.ScreenJ() <= n.Dev.Android.ScreenJ()*1.5 {
		t.Fatalf("attack screen %v vs normal %v", w.Dev.Android.ScreenJ(), n.Dev.Android.ScreenJ())
	}
}

func TestMultiCollateralEndsClean(t *testing.T) {
	w := newTestWorld(t)
	if err := w.MultiCollateral(); err != nil {
		t.Fatal(err)
	}
	if n := len(w.Dev.EAndroid.ActiveAttacks()); n != 0 {
		t.Fatalf("active attacks = %d, want 0", n)
	}
	// At least three distinct vectors were exercised.
	vecs := map[core.Vector]bool{}
	for _, a := range w.Dev.EAndroid.Attacks() {
		vecs[a.Vector] = true
	}
	if !vecs[core.VectorServiceBind] || !vecs[core.VectorActivity] || !vecs[core.VectorInterrupt] {
		t.Fatalf("vectors = %v", vecs)
	}
}

func TestHybridChainEndsClean(t *testing.T) {
	w := newTestWorld(t)
	if err := w.HybridChain(); err != nil {
		t.Fatal(err)
	}
	if n := len(w.Dev.EAndroid.ActiveAttacks()); n != 0 {
		t.Fatalf("active attacks = %d, want 0", n)
	}
}

func TestCombinedAttackTwoVectors(t *testing.T) {
	w := newTestWorld(t)
	if err := w.CombinedAttack(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	vecs := map[core.Vector]bool{}
	for _, a := range w.Dev.EAndroid.ActiveAttacks() {
		if a.Driving == w.Malware.UID {
			vecs[a.Vector] = true
		}
	}
	if !vecs[core.VectorServiceBind] || !vecs[core.VectorScreen] {
		t.Fatalf("combined attack vectors = %v", vecs)
	}
	w.Dev.Flush()
	// The malware's map carries both the victim and the screen.
	var haveVictim, haveScreen bool
	for _, e := range w.Dev.EAndroid.CollateralMap(w.Malware.UID) {
		if e.Driven == w.Victim.UID && e.EnergyJ > 0 {
			haveVictim = true
		}
		if e.Driven == app.UIDScreen && e.EnergyJ > 0 {
			haveScreen = true
		}
	}
	if !haveVictim || !haveScreen {
		t.Fatalf("combined map incomplete: victim=%v screen=%v", haveVictim, haveScreen)
	}
}

func TestAttackChainSeries(t *testing.T) {
	w := newTestWorld(t)
	if err := w.ForceScreenOn(); err != nil {
		t.Fatal(err)
	}
	if err := w.AttackChainSeries(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	w.Dev.Flush()
	// The chain root carries all three downstream victims.
	mp := w.Dev.EAndroid.CollateralMap(w.Malware.UID)
	charged := map[app.UID]bool{}
	for _, e := range mp {
		if e.EnergyJ > 0 {
			charged[e.Driven] = true
		}
	}
	for _, want := range []*app.App{w.Victim, w.Message, w.Camera} {
		if !charged[want.UID] {
			t.Fatalf("chain root map missing %s: %+v", want.Label(), mp)
		}
	}
}

func TestForceScreenOnNotAnAttack(t *testing.T) {
	w := newTestWorld(t)
	if err := w.ForceScreenOn(); err != nil {
		t.Fatal(err)
	}
	if err := w.Dev.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(w.Dev.EAndroid.Attacks()) != 0 {
		t.Fatal("the experiment wakelock must not register as an attack")
	}
	if !w.Dev.Power.ScreenOn() {
		t.Fatal("screen should be forced on")
	}
}

func withinPct(got, want, pct float64) bool {
	if want == 0 {
		return got == 0
	}
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	return diff/want*100 <= pct
}

func TestStealthAutoLaunch(t *testing.T) {
	w := newTestWorld(t)
	if err := w.ForceScreenOn(); err != nil {
		t.Fatal(err)
	}
	if err := w.StealthAutoLaunch(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	w.Dev.Flush()
	// The malware never reached the foreground...
	if got := w.Dev.Android.ForegroundTime(w.Malware.UID); got != 0 {
		t.Fatalf("malware foreground time = %v, want 0 (stealth broken)", got)
	}
	// ...yet E-Android pins the hijacked camera's energy on it.
	var hasCamera bool
	for _, e := range w.Dev.EAndroid.CollateralMap(w.Malware.UID) {
		if e.Driven == w.Camera.UID && e.EnergyJ > 0 {
			hasCamera = true
		}
	}
	if !hasCamera {
		t.Fatal("stealth hijack not attributed to the malware")
	}
	// And it stays hidden from the recents list.
	if !w.Malware.HiddenFromRecents {
		t.Fatal("stealth flag lost")
	}
}
