package scenario

import (
	"fmt"
	"time"

	"repro/internal/app"
	"repro/internal/intent"
	"repro/internal/manifest"
	"repro/internal/power"
)

// PkgClassic is the classic (Martin et al.) energy bomber — malware that
// burns energy in its *own* process, the kind the paper notes is already
// "detectable by battery interface" and by power signatures.
const PkgClassic = "com.classic.bomber"

// InstallClassicBomber adds the classic bomber app to the world:
// a CPU bomb service (the infinite-loop / cache-miss attack), a network
// bomb service (repeated requests pinning the radio) and an animated-GIF
// activity (display + CPU). Returns the installed app.
func (w *World) InstallClassicBomber() (*app.App, error) {
	if a := w.Dev.Packages.ByPackage(PkgClassic); a != nil {
		return a, nil
	}
	a, err := w.Dev.Packages.Install(manifest.NewBuilder(PkgClassic, "ClassicBomber").
		Category("Tools").
		Permission(manifest.PermWakeLock).
		Activity("Main", true).
		Activity("AnimatedGIF", true).
		Service("CPUBomb", false).
		Service("NetBomb", false).
		MustBuild())
	if err != nil {
		return nil, err
	}
	if err := a.SetWorkload("Main", app.Workload{CPUActive: 0.02, CPUBackground: 0.01}); err != nil {
		return nil, err
	}
	// Repeatedly writing and reading arrays of varying length — all CPU,
	// all in the bomber's own name.
	if err := a.SetWorkload("CPUBomb", app.Workload{CPUActive: 0.9}); err != nil {
		return nil, err
	}
	// Repeated network requests to a victim server pin the radio high.
	if err := a.SetWorkload("NetBomb", app.Workload{CPUActive: 0.2, WiFi: true}); err != nil {
		return nil, err
	}
	// Replacing a still image with an animated GIF keeps the renderer
	// busy while the page is in the foreground.
	if err := a.SetWorkload("AnimatedGIF", app.Workload{CPUActive: 0.6, CPUBackground: 0.02}); err != nil {
		return nil, err
	}
	return a, nil
}

// ClassicCPUBomb runs the classic attack #3 of Martin et al.: a partial
// wakelock plus a tight compute loop in the bomber's own service.
func (w *World) ClassicCPUBomb(dur time.Duration) error {
	bomber, err := w.InstallClassicBomber()
	if err != nil {
		return err
	}
	if _, err := w.Dev.Power.Acquire(bomber.UID, power.Partial, "bomb"); err != nil {
		return err
	}
	if _, err := w.Dev.Services.Start(intent.Intent{
		Sender:    bomber.UID,
		Component: PkgClassic + "/CPUBomb",
	}); err != nil {
		return err
	}
	return w.run(dur)
}

// ClassicNetworkBomb runs the repeated-network-request attack.
func (w *World) ClassicNetworkBomb(dur time.Duration) error {
	bomber, err := w.InstallClassicBomber()
	if err != nil {
		return err
	}
	if _, err := w.Dev.Power.Acquire(bomber.UID, power.Partial, "netbomb"); err != nil {
		return err
	}
	if _, err := w.Dev.Services.Start(intent.Intent{
		Sender:    bomber.UID,
		Component: PkgClassic + "/NetBomb",
	}); err != nil {
		return err
	}
	return w.run(dur)
}

// ClassicAnimatedGIF runs the animated-GIF attack: the bomber's page
// replaces a still image with an animation and stays in the foreground.
func (w *World) ClassicAnimatedGIF(dur time.Duration) error {
	if _, err := w.InstallClassicBomber(); err != nil {
		return err
	}
	if _, err := w.Dev.Activities.UserStartApp(PkgClassic); err != nil {
		return err
	}
	bomber := w.Dev.Packages.ByPackage(PkgClassic)
	if _, err := w.Dev.Activities.StartActivity(intent.Intent{
		Sender:    bomber.UID,
		Component: PkgClassic + "/AnimatedGIF",
	}); err != nil {
		return err
	}
	if _, err := w.Dev.Power.Acquire(bomber.UID, power.ScreenBright, "gif"); err != nil {
		return err
	}
	return w.run(dur)
}

// Classic returns the bomber app, or an error if not installed.
func (w *World) Classic() (*app.App, error) {
	a := w.Dev.Packages.ByPackage(PkgClassic)
	if a == nil {
		return nil, fmt.Errorf("scenario: classic bomber not installed")
	}
	return a, nil
}
