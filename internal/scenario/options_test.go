package scenario

import (
	"sync"
	"testing"

	"repro/internal/accounting"
	"repro/internal/check"
	"repro/internal/device"
	"repro/internal/telemetry"
)

// TestWorldOptionsConcurrent hammers the process-default options from
// several goroutines while worlds are being built. Before options were
// guarded, the bare SetWorld* globals raced with NewWorld under
// exactly this pattern (a fleet building worlds while a CLI flips a
// flag); the test exists to fail under -race if the guard regresses.
func TestWorldOptionsConcurrent(t *testing.T) {
	prev := SetWorldOptions(WorldOptions{})
	defer SetWorldOptions(prev)

	const iters = 25
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			SetWorldOptions(WorldOptions{Checks: &check.Options{}})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			// The deprecated shims must share the same guard.
			SetWorldTelemetry(telemetry.New(telemetry.Options{}))
			SetWorldTelemetry(nil)
			SetWorldChecks(nil)
			SetWorldHook(nil)
			SetWorldLogger(nil)
		}
	}()
	for g := 0; g < 2; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				w, err := NewWorld(device.Config{EAndroid: true, Policy: accounting.BatteryStats})
				if err != nil {
					t.Error(err)
					return
				}
				_ = w
			}
		}()
	}
	wg.Wait()
}

// TestNewWorldWithExplicitOptions checks that explicit options reach
// the built device and that config-level settings win over them.
func TestNewWorldWithExplicitOptions(t *testing.T) {
	rec := telemetry.New(telemetry.Options{})
	hooked := false
	w, err := NewWorldWith(device.Config{EAndroid: true}, WorldOptions{
		Telemetry: rec,
		Checks:    &check.Options{},
		Hook:      func(*device.Device) { hooked = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !hooked {
		t.Fatal("construction hook did not run")
	}
	if w.Dev.Telemetry != rec {
		t.Fatal("explicit telemetry recorder not threaded into the device")
	}

	own := telemetry.New(telemetry.Options{})
	w2, err := NewWorldWith(device.Config{EAndroid: true, Telemetry: own},
		WorldOptions{Telemetry: rec})
	if err != nil {
		t.Fatal(err)
	}
	if w2.Dev.Telemetry != own {
		t.Fatal("config-level recorder should win over options")
	}
}
