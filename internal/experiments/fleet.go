package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/accounting"
	"repro/internal/check"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/powersig"
	"repro/internal/scenario"
)

// Fleet-backed variants of the drain and stealth studies: the same
// scripted scenarios, but run as N independent devices on a worker
// pool. Each device gets its own derived seed, so the fleet models a
// small population rather than one handset repeated.

// checkedCfg enables the runtime invariant checker (families 1-4,
// passive) on a fleet device template: every fleet run is a free
// correctness sweep, and per-device violations surface in
// fleet.Result.Violations and the rendered summary.
func checkedCfg(cfg device.Config) device.Config {
	if cfg.Checks == nil {
		cfg.Checks = &check.Options{}
	}
	return cfg
}

// FleetStealthStudy runs the §V stealth auto-launch attack on a fleet
// of `devices` devices using `workers` workers (0 = GOMAXPROCS).
func FleetStealthStudy(devices, workers int, seed int64) (*fleet.FleetResult, error) {
	return fleet.Run(context.Background(), fleet.Spec{
		Devices:       devices,
		Workers:       workers,
		Seed:          seed,
		RetainResults: true, // ExtFleet renders per-device lines
		Config:        checkedCfg(worldCfg(accounting.BatteryStats)),
		Scenario: func(i int, dev *device.Device) error {
			w, err := scenario.Populate(dev)
			if err != nil {
				return err
			}
			if err := w.ForceScreenOn(); err != nil {
				return err
			}
			return w.StealthAutoLaunch(60 * time.Second)
		},
	})
}

// FleetBenchStudy is the scaling benchmark workload: the stealth
// attack plus a power-signature detector sampling every virtual second
// over a long window, so each device carries enough event load
// (~thousands of fired events) for worker-pool speedup to be
// measurable. Used by `benchsuite -fleet` and BenchmarkFleet*. It runs
// the streaming path (no per-device retention) with `shards`
// accumulator shards (0 = workers), so its bytes/device measurement is
// the memory budget BENCH_fleet.json commits to.
func FleetBenchStudy(devices, workers, shards int, seed int64) (*fleet.FleetResult, error) {
	return fleet.Run(context.Background(), fleet.Spec{
		Devices: devices,
		Workers: workers,
		Shards:  shards,
		Seed:    seed,
		Config:  checkedCfg(worldCfg(accounting.BatteryStats)),
		Scenario: func(i int, dev *device.Device) error {
			w, err := scenario.Populate(dev)
			if err != nil {
				return err
			}
			det, err := powersig.NewDetector(dev.Engine, dev.Meter, dev.Packages, 0)
			if err != nil {
				return err
			}
			det.Start()
			if err := w.ForceScreenOn(); err != nil {
				return err
			}
			return w.StealthAutoLaunch(60 * time.Second)
		},
		Horizon: 30 * time.Minute,
	})
}

// FleetDrainResult is the bounded-window drain study: every Figure 3
// configuration replicated across a fleet, reporting mean drain per
// configuration over the window instead of running each battery to
// zero.
type FleetDrainResult struct {
	Window   time.Duration
	Replicas int
	Fleet    *fleet.FleetResult
	// MeanJ maps config name to mean drained joules over the window,
	// in DrainConfigs order.
	MeanJ map[string]float64
}

// Render prints the per-configuration means plus the fleet report.
func (r *FleetDrainResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== Fleet drain study: %d replicas/config, %v window ===\n", r.Replicas, r.Window)
	for _, name := range DrainConfigs() {
		fmt.Fprintf(&b, "%-16s mean drain %10.3f J\n", name, r.MeanJ[name])
	}
	b.WriteString(r.Fleet.Render())
	return b.String()
}

// FleetDrainStudy runs every drain configuration on `replicas` devices
// each for a fixed virtual window. Device i runs configuration
// DrainConfigs()[i % len], so the fleet interleaves configurations and
// any worker count covers all of them.
func FleetDrainStudy(replicas, workers int, seed int64, window time.Duration) (*FleetDrainResult, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("experiments: need at least 1 replica, got %d", replicas)
	}
	if window <= 0 {
		return nil, fmt.Errorf("experiments: non-positive window %v", window)
	}
	configs := DrainConfigs()
	fr, err := fleet.Run(context.Background(), fleet.Spec{
		Devices:       replicas * len(configs),
		Workers:       workers,
		Seed:          seed,
		RetainResults: true, // per-config means index into Results below
		Config:        checkedCfg(device.Config{Policy: accounting.BatteryStats}),
		Scenario: func(i int, dev *device.Device) error {
			w, err := scenario.Populate(dev)
			if err != nil {
				return err
			}
			return applyDrainConfig(w, configs[i%len(configs)])
		},
		Horizon: window,
	})
	if err != nil {
		return nil, err
	}
	res := &FleetDrainResult{
		Window:   window,
		Replicas: replicas,
		Fleet:    fr,
		MeanJ:    make(map[string]float64),
	}
	for _, r := range fr.Results {
		if r.Err != nil {
			return nil, fmt.Errorf("experiments: fleet drain device %d: %w", r.Index, r.Err)
		}
		res.MeanJ[configs[r.Index%len(configs)]] += r.DrainedJ / float64(replicas)
	}
	return res, nil
}

// Fig3WithStepWorkers is Fig3WithStep with the five configurations
// sweeping concurrently on a fleet worker pool. Each full depletion
// sweep stays single-threaded inside its own device; only distinct
// configurations run in parallel.
func Fig3WithStepWorkers(step time.Duration, workers int) (*Fig3Result, error) {
	if step <= 0 {
		return nil, fmt.Errorf("experiments: non-positive step %v", step)
	}
	configs := DrainConfigs()
	curves := make([]DrainCurve, len(configs))
	fr, err := fleet.Run(context.Background(), fleet.Spec{
		Devices: len(configs),
		Workers: workers,
		Config:  checkedCfg(device.Config{Policy: accounting.BatteryStats}),
		Scenario: func(i int, dev *device.Device) error {
			w, err := scenario.Populate(dev)
			if err != nil {
				return err
			}
			// Workers own disjoint indices, so writing curves[i] here
			// is race-free.
			curves[i], err = drainCurveOn(w, configs[i], step)
			return err
		},
	})
	if err != nil {
		return nil, err
	}
	// Streaming run: failures surface through the summary's sample, not
	// a retained result slice.
	for _, f := range fr.Summary.Failures {
		return nil, fmt.Errorf("experiments: drain %s: %s", configs[f.Index], f.Err)
	}
	return &Fig3Result{Curves: curves}, nil
}

// ExtFleetResult bundles the two fleet-backed studies for the registry.
type ExtFleetResult struct {
	Stealth *fleet.FleetResult
	Drain   *FleetDrainResult
}

// Render prints both fleet reports.
func (r *ExtFleetResult) Render() string {
	var b strings.Builder
	b.WriteString("=== Extension: fleet-parallel studies ===\n")
	b.WriteString("--- stealth auto-launch fleet ---\n")
	b.WriteString(r.Stealth.Render())
	b.WriteString("--- bounded-window drain fleet ---\n")
	b.WriteString(r.Drain.Render())
	return b.String()
}

// ExtFleet runs small fleets of the stealth and drain studies.
func ExtFleet() (*ExtFleetResult, error) {
	st, err := FleetStealthStudy(8, 0, 42)
	if err != nil {
		return nil, err
	}
	for _, r := range st.Results {
		if r.Err != nil {
			return nil, fmt.Errorf("experiments: fleet stealth device %d: %w", r.Index, r.Err)
		}
	}
	dr, err := FleetDrainStudy(2, 0, 42, 5*time.Minute)
	if err != nil {
		return nil, err
	}
	return &ExtFleetResult{Stealth: st, Drain: dr}, nil
}
