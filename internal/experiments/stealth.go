package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/accounting"
	"repro/internal/scenario"
)

// StealthResult is the extension experiment around §V's delivery story:
// the malware auto-launches from the ACTION_USER_PRESENT broadcast,
// hijacks the camera from the background and never touches the
// foreground.
type StealthResult struct {
	MalwareForegroundTime time.Duration
	MalwareBaselineJ      float64
	MalwareCollateralJ    float64
	View                  string
}

// Render prints the stealth report.
func (r *StealthResult) Render() string {
	var b strings.Builder
	b.WriteString("=== Extension: stealth auto-launch (ACTION_USER_PRESENT) ===\n")
	fmt.Fprintf(&b, "malware foreground time: %s (never visible)\n", r.MalwareForegroundTime)
	fmt.Fprintf(&b, "malware baseline energy: %.2f J\n", r.MalwareBaselineJ)
	fmt.Fprintf(&b, "malware collateral (E-Android): %.2f J\n", r.MalwareCollateralJ)
	b.WriteString(r.View)
	return b.String()
}

// ExtStealth runs the stealth auto-launch attack for 60 s.
func ExtStealth() (*StealthResult, error) {
	w, err := scenario.NewWorld(worldCfg(accounting.BatteryStats))
	if err != nil {
		return nil, err
	}
	if err := w.ForceScreenOn(); err != nil {
		return nil, err
	}
	if err := w.StealthAutoLaunch(60 * time.Second); err != nil {
		return nil, err
	}
	w.Dev.Flush()
	return &StealthResult{
		MalwareForegroundTime: w.Dev.Android.ForegroundTime(w.Malware.UID),
		MalwareBaselineJ:      w.Dev.Android.AppJ(w.Malware.UID),
		MalwareCollateralJ:    w.Dev.EAndroid.CollateralJ(w.Malware.UID),
		View:                  w.Dev.EAndroidView(),
	}, nil
}
