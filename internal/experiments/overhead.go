package experiments

import (
	"repro/internal/accounting"
	"repro/internal/antutu"
	"repro/internal/device"
	"repro/internal/microbench"
)

func worldCfg(policy accounting.Policy) device.Config {
	return device.Config{EAndroid: true, Policy: policy}
}

// Fig10Result wraps the micro benchmark results.
type Fig10Result struct {
	Results []microbench.Result
}

// Render prints the Figure 10 table.
func (r *Fig10Result) Render() string {
	return "=== Figure 10: boxplot of time cost ===\n" + microbench.Render(r.Results)
}

// Fig10 runs the Table I micro operations, 50 reps each, under the three
// configurations.
func Fig10() (*Fig10Result, error) {
	return Fig10WithReps(microbench.DefaultReps)
}

// Fig10WithReps is Fig10 with a configurable rep count.
func Fig10WithReps(reps int) (*Fig10Result, error) {
	results, err := microbench.Run(reps)
	if err != nil {
		return nil, err
	}
	return &Fig10Result{Results: results}, nil
}

// Fig11Result wraps the AnTuTu comparison.
type Fig11Result struct {
	Comparison antutu.Comparison
}

// Render prints the Figure 11 table.
func (r *Fig11Result) Render() string { return r.Comparison.Render() }

// Fig11 runs the AnTuTu-style benchmark on stock Android and E-Android
// devices.
func Fig11() (*Fig11Result, error) {
	return Fig11WithConfig(antutu.Config{})
}

// Fig11WithConfig is Fig11 with workload sizes under caller control.
func Fig11WithConfig(cfg antutu.Config) (*Fig11Result, error) {
	cmp, err := antutu.Compare(cfg)
	if err != nil {
		return nil, err
	}
	return &Fig11Result{Comparison: cmp}, nil
}
