package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/accounting"
	"repro/internal/app"
	"repro/internal/device"
	"repro/internal/powersig"
	"repro/internal/scenario"
)

// DetectionCase is one row of the extension study: a piece of malware
// and whether each defense catches it.
type DetectionCase struct {
	Name string
	// BatteryInterfaceRank is the malware's rank in the baseline view
	// (1 = top consumer); classic malware ranks high, collateral malware
	// sinks to the bottom.
	BatteryInterfaceRank int
	// PowerSignatureFlags is Kim et al.'s detector verdict.
	PowerSignatureFlags bool
	// EAndroidCollateralJ is the energy E-Android pins on the malware.
	EAndroidCollateralJ float64
}

// DetectionResult is the extension experiment comparing three defenses
// (battery interface, power signatures, E-Android) across classic and
// collateral malware.
type DetectionResult struct {
	Cases []DetectionCase
}

// Render prints the comparison table.
func (r *DetectionResult) Render() string {
	var b strings.Builder
	b.WriteString("=== Extension: defense comparison (battery interface / power signatures / E-Android) ===\n")
	fmt.Fprintf(&b, "%-28s %14s %12s %16s\n",
		"malware", "baseline rank", "powersig", "e-android (J)")
	for _, c := range r.Cases {
		flag := "missed"
		if c.PowerSignatureFlags {
			flag = "FLAGGED"
		}
		fmt.Fprintf(&b, "%-28s %14d %12s %16.2f\n",
			c.Name, c.BatteryInterfaceRank, flag, c.EAndroidCollateralJ)
	}
	return b.String()
}

// rankOf reports uid's 1-based rank in the baseline entries (0 if
// absent).
func rankOf(w *scenario.World, uid app.UID) int {
	for i, e := range w.Dev.Android.Entries() {
		if e.UID == uid {
			return i + 1
		}
	}
	return 0
}

// ExtDetection runs the comparison: the classic CPU bomb (caught by
// everything) versus collateral attack #3 (invisible to the baseline and
// to power signatures, exposed only by E-Android).
func ExtDetection() (*DetectionResult, error) {
	res := &DetectionResult{}

	// Case 1: classic CPU bomb.
	{
		w, err := scenario.NewWorld(device.Config{EAndroid: true, Policy: accounting.BatteryStats})
		if err != nil {
			return nil, err
		}
		if _, err := w.InstallClassicBomber(); err != nil {
			return nil, err
		}
		det, err := powersig.NewDetector(w.Dev.Engine, w.Dev.Meter, w.Dev.Packages, 0)
		if err != nil {
			return nil, err
		}
		det.Start()
		if err := w.Dev.Run(30 * time.Second); err != nil {
			return nil, err
		}
		if err := det.Train(); err != nil {
			return nil, err
		}
		if err := w.ClassicCPUBomb(60 * time.Second); err != nil {
			return nil, err
		}
		w.Dev.Flush()
		bomber, err := w.Classic()
		if err != nil {
			return nil, err
		}
		res.Cases = append(res.Cases, DetectionCase{
			Name:                 "classic CPU bomb (own process)",
			BatteryInterfaceRank: rankOf(w, bomber.UID),
			PowerSignatureFlags:  contains(det.Anomalous(), bomber.UID),
			EAndroidCollateralJ:  w.Dev.EAndroid.CollateralJ(bomber.UID),
		})
	}

	// Case 2: collateral attack #3.
	{
		w, err := scenario.NewWorld(device.Config{EAndroid: true, Policy: accounting.BatteryStats})
		if err != nil {
			return nil, err
		}
		det, err := powersig.NewDetector(w.Dev.Engine, w.Dev.Meter, w.Dev.Packages, 0)
		if err != nil {
			return nil, err
		}
		det.Start()
		if err := w.Dev.Run(30 * time.Second); err != nil {
			return nil, err
		}
		if err := det.Train(); err != nil {
			return nil, err
		}
		if err := w.ForceScreenOn(); err != nil {
			return nil, err
		}
		if err := w.Attack3ServicePin(60 * time.Second); err != nil {
			return nil, err
		}
		w.Dev.Flush()
		res.Cases = append(res.Cases, DetectionCase{
			Name:                 "collateral attack #3 (bind)",
			BatteryInterfaceRank: rankOf(w, w.Malware.UID),
			PowerSignatureFlags:  contains(det.Anomalous(), w.Malware.UID),
			EAndroidCollateralJ:  w.Dev.EAndroid.CollateralJ(w.Malware.UID),
		})
	}
	return res, nil
}

func contains(uids []app.UID, uid app.UID) bool {
	for _, u := range uids {
		if u == uid {
			return true
		}
	}
	return false
}
