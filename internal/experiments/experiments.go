// Package experiments regenerates every table and figure in the paper's
// evaluation: one entry point per experiment, each returning structured
// results plus a textual rendering that mirrors what the paper reports.
// The cmd/ tools print these renderings; the root bench suite runs the
// same entry points under testing.B.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Renderer is anything that can print itself like a paper figure.
type Renderer interface {
	Render() string
}

// Spec describes one runnable experiment.
type Spec struct {
	ID    string
	Title string
	Run   func() (Renderer, error)
}

// All returns every experiment in paper order.
func All() []Spec {
	return []Spec{
		{"fig1", "Energy view when filming in the Message app", func() (Renderer, error) { return Fig1() }},
		{"fig2", "Collected apps from Google Play (corpus study)", func() (Renderer, error) { return Fig2() }},
		{"fig3", "Time lapsed to drain the battery", func() (Renderer, error) { return Fig3() }},
		{"fig6", "Multi-collateral attack timeline", func() (Renderer, error) { return Fig6() }},
		{"fig7", "Hybrid attack chain", func() (Renderer, error) { return Fig7() }},
		{"fig8", "Energy breakdown by E-Android with revised PowerTutor", func() (Renderer, error) { return Fig8() }},
		{"fig9a", "Scene #1: Message films via Camera", func() (Renderer, error) { return Fig9a() }},
		{"fig9a-pt", "Scene #1 under the PowerTutor policy (omitted in the paper)", func() (Renderer, error) { return Fig9aPowerTutor() }},
		{"fig9b", "Scene #2: Contacts -> Message -> Camera", func() (Renderer, error) { return Fig9b() }},
		{"fig9c", "Attack #3: bind without unbind", func() (Renderer, error) { return Fig9c() }},
		{"fig9d", "Attack #4: interrupt to background", func() (Renderer, error) { return Fig9d() }},
		{"fig9e", "Attack #5: brightness escalation", func() (Renderer, error) { return Fig9e() }},
		{"fig9f", "Attack #6: unreleased screen wakelock", func() (Renderer, error) { return Fig9f() }},
		{"fig10", "Micro benchmark boxplots (Table I ops)", func() (Renderer, error) { return Fig10() }},
		{"fig11", "AnTuTu benchmark", func() (Renderer, error) { return Fig11() }},
		{"ext-detection", "Extension: battery interface vs power signatures vs E-Android", func() (Renderer, error) { return ExtDetection() }},
		{"ext-stealth", "Extension: stealth auto-launch on unlock", func() (Renderer, error) { return ExtStealth() }},
		{"ext-fleet", "Extension: fleet-parallel stealth + drain studies", func() (Renderer, error) { return ExtFleet() }},
		{"ext-telemetry", "Extension: telemetry overhead study (paper §VI-C analog)", func() (Renderer, error) { return TelemetryOverheadStudy(0) }},
		{"ext-obsv", "Extension: live watchdog vs the six attacks", func() (Renderer, error) { return WatchdogStudy() }},
		{"ext-corpus", "Extension: generated scenario corpus replay with confidence intervals", func() (Renderer, error) { return ExtCorpus() }},
		{"ext-jobs", "Extension: simulation-as-a-service jobs plane with content-addressed cache", func() (Renderer, error) { return ExtJobs() }},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Spec, error) {
	for _, s := range All() {
		if s.ID == id {
			return s, nil
		}
	}
	var ids []string
	for _, s := range All() {
		ids = append(ids, s.ID)
	}
	sort.Strings(ids)
	return Spec{}, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(ids, ", "))
}
