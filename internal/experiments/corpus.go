package experiments

import (
	"fmt"
	"strings"

	"repro/internal/appstore"
)

// Fig2Result wraps the corpus study with a Figure 2-style rendering.
type Fig2Result struct {
	Study *appstore.StudyResult
}

// Render prints the three bars of Figure 2.
func (r *Fig2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== Figure 2: collected apps from Google Play ===\n")
	fmt.Fprintf(&b, "corpus: %d apps across %d categories\n",
		r.Study.Total, len(r.Study.PerCategory))
	bar := func(label string, frac float64) {
		n := int(frac*40 + 0.5)
		fmt.Fprintf(&b, "%-22s %5.1f%% %s\n", label, frac*100, strings.Repeat("#", n))
	}
	bar("exported component", r.Study.ExportedRate)
	bar("WAKE_LOCK", r.Study.WakeLockRate)
	bar("WRITE_SETTINGS", r.Study.WriteSettingsRate)
	return b.String()
}

// Fig2 generates the synthetic corpus and runs the manifest-inspection
// pipeline over it.
func Fig2() (*Fig2Result, error) {
	corpus, err := appstore.Generate(appstore.DefaultCorpusSize, 42)
	if err != nil {
		return nil, err
	}
	study, err := appstore.Inspect(corpus)
	if err != nil {
		return nil, err
	}
	return &Fig2Result{Study: study}, nil
}
