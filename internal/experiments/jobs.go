package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/jobs"
)

// ExtJobsResult is the ext-jobs experiment: a deterministic tour of the
// simulation-as-a-service control plane. It submits one job of each
// kind to an in-process manager, resubmits the first to demonstrate the
// content-addressed cache, and reports terminal states, artifact
// inventories with exact byte sizes, and the cache counters. No wall
// times appear anywhere — artifact bytes are deterministic (the repo's
// standing fleet gate), so the render is too.
type ExtJobsResult struct {
	// Statuses are the three jobs' terminal states in submission order.
	Statuses []jobs.Status
	// Sizes maps "id/artifact" to exact byte counts.
	Sizes map[string]int
	// Resubmitted is the cache-hit job for the first spec.
	Resubmitted jobs.Status
	// Identical reports whether the cached artifacts matched the
	// original byte-for-byte.
	Identical bool
	// Cache is the manager's final cache counters.
	Cache jobs.CacheStats
}

// ExtJobs runs the control-plane tour: scenario, fleet and corpus jobs
// on one manager, then a resubmission that must come from the cache.
func ExtJobs() (*ExtJobsResult, error) {
	m := jobs.NewManager(jobs.Options{Runners: 1})
	defer m.Close()

	specs := []jobs.Spec{
		{Kind: jobs.KindScenario, Cell: "idle-mostly/benign", Seed: 1,
			Horizon: jobs.Duration(corpus.MinHorizon)},
		{Kind: jobs.KindFleet, Cell: "gamer/coordinated-collateral", Seed: 2,
			Devices: 2, Horizon: jobs.Duration(corpus.MinHorizon)},
		{Kind: jobs.KindCorpus, Cell: "commuter/benign", Seed: 3,
			Reps: 2, Horizon: jobs.Duration(corpus.MinHorizon)},
	}
	res := &ExtJobsResult{Sizes: make(map[string]int)}
	var firstArts jobs.Artifacts
	for i, spec := range specs {
		j, err := m.Submit(spec)
		if err != nil {
			return nil, err
		}
		select {
		case <-j.Done():
		case <-time.After(2 * time.Minute):
			return nil, fmt.Errorf("ext-jobs: job %s stuck", j.ID)
		}
		st := j.Status()
		if st.State != jobs.StateDone {
			return nil, fmt.Errorf("ext-jobs: job %s: %s %s", j.ID, st.State, st.Error)
		}
		arts, _ := j.Artifacts()
		if i == 0 {
			firstArts = arts
		}
		for _, name := range arts.Names() {
			res.Sizes[st.ID+"/"+name] = len(arts.Files[name])
		}
		res.Statuses = append(res.Statuses, st)
	}

	// Resubmit the first spec: an O(1) cache hit with identical bytes.
	j, err := m.Submit(specs[0])
	if err != nil {
		return nil, err
	}
	<-j.Done()
	res.Resubmitted = j.Status()
	cachedArts, _ := j.Artifacts()
	res.Identical = len(cachedArts.Files) == len(firstArts.Files)
	for name, b := range firstArts.Files {
		if string(cachedArts.Files[name]) != string(b) {
			res.Identical = false
		}
	}
	res.Cache = m.CacheStats()
	return res, nil
}

// Render prints the tour. Every number here is deterministic: job IDs
// are sequence-assigned, artifact sizes are byte-deterministic
// simulation outputs, and the cache counters follow from the fixed
// submission order.
func (r *ExtJobsResult) Render() string {
	var b strings.Builder
	b.WriteString("=== Simulation as a service: jobs control plane with content-addressed cache ===\n")
	b.WriteString("job  kind      cell                           state  cached  done/total\n")
	for _, st := range r.Statuses {
		fmt.Fprintf(&b, "%-4s %-9s %-30s %-6s %-7v %d/%d\n",
			st.ID, st.Spec.Kind, st.Spec.Cell, st.State, st.Cached, st.Done, st.Total)
	}
	keys := make([]string, 0, len(r.Sizes))
	for k := range r.Sizes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteString("artifacts (content-addressed, byte-deterministic):\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-26s %7d bytes\n", k, r.Sizes[k])
	}
	fmt.Fprintf(&b, "resubmit %s spec -> %s: state=%s cached=%v byte-identical=%v\n",
		r.Statuses[0].ID, r.Resubmitted.ID, r.Resubmitted.State, r.Resubmitted.Cached, r.Identical)
	fmt.Fprintf(&b, "cache: %d hits, %d misses, %d entries, %d bytes\n",
		r.Cache.Hits, r.Cache.Misses, r.Cache.Entries, r.Cache.Bytes)
	return b.String()
}
