package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/antutu"
	"repro/internal/app"
)

func TestAllRegistryResolves(t *testing.T) {
	specs := All()
	if len(specs) != 22 {
		t.Fatalf("experiments = %d, want 22 (15 paper variants + 7 extensions)", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if s.ID == "" || s.Title == "" || s.Run == nil {
			t.Fatalf("incomplete spec %+v", s)
		}
		if seen[s.ID] {
			t.Fatalf("duplicate id %s", s.ID)
		}
		seen[s.ID] = true
		if _, err := ByID(s.ID); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestFig1CameraChargedNotMessage(t *testing.T) {
	r, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if r.AndroidJ["Camera"] <= r.AndroidJ["Message"] {
		t.Fatalf("baseline: camera %v <= message %v",
			r.AndroidJ["Camera"], r.AndroidJ["Message"])
	}
	// The camera should dwarf the message by a large factor (the paper's
	// "quite small portion" observation).
	if r.AndroidJ["Camera"] < 5*r.AndroidJ["Message"] {
		t.Fatalf("camera %v not ≫ message %v", r.AndroidJ["Camera"], r.AndroidJ["Message"])
	}
	if !strings.Contains(r.Render(), "Figure 1") {
		t.Fatal("render header missing")
	}
}

func TestFig9aEAndroidFlipsRanking(t *testing.T) {
	r, err := Fig9a()
	if err != nil {
		t.Fatal(err)
	}
	// E-Android charges the Message with the Camera's collateral: its
	// total must now exceed the Camera's own reading.
	if r.EAndroidTotalJ["Message"] <= r.AndroidJ["Camera"] {
		t.Fatalf("e-android message %v <= camera %v",
			r.EAndroidTotalJ["Message"], r.AndroidJ["Camera"])
	}
}

func TestFig9bChainChargesContacts(t *testing.T) {
	r, err := Fig9b()
	if err != nil {
		t.Fatal(err)
	}
	// Contacts started the whole chain; with collateral included it must
	// far exceed its baseline reading.
	if r.EAndroidTotalJ["Contacts"] <= r.AndroidJ["Contacts"] {
		t.Fatalf("contacts total %v <= original %v",
			r.EAndroidTotalJ["Contacts"], r.AndroidJ["Contacts"])
	}
	if r.EAndroidTotalJ["Contacts"] <= r.AndroidJ["Message"] {
		t.Fatal("chain root should out-rank intermediate baseline readings")
	}
}

func TestFig9cMalwareExposedOnlyDuringAttack(t *testing.T) {
	r, err := Fig9c()
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: malware nearly invisible.
	if r.AndroidJ["FunGame"] >= r.AndroidJ["Victim"] {
		t.Fatal("baseline should hide the malware")
	}
	// E-Android: malware charged with the victim's pinned service.
	if r.EAndroidTotalJ["FunGame"] <= r.AndroidJ["FunGame"] {
		t.Fatal("e-android should expose the malware")
	}
	// But not with the full victim energy (30 s ran after the attack).
	victimTotal := r.AndroidJ["Victim"]
	collateral := r.EAndroidTotalJ["FunGame"] - r.AndroidJ["FunGame"]
	if collateral >= victimTotal {
		t.Fatalf("collateral %v should be < victim total %v (post-attack energy uncharged)",
			collateral, victimTotal)
	}
}

func TestFig9dInterruptExposed(t *testing.T) {
	r, err := Fig9d()
	if err != nil {
		t.Fatal(err)
	}
	if r.EAndroidTotalJ["FunGame"] <= r.AndroidJ["FunGame"] {
		t.Fatal("interrupt attack should charge the malware collateral energy")
	}
}

func TestFig9eBrightnessAttackDrainsMore(t *testing.T) {
	r, err := Fig9e()
	if err != nil {
		t.Fatal(err)
	}
	screenNormal := r.Normal.AndroidJ["Screen"]
	screenAttack := r.Attack.AndroidJ["Screen"]
	if screenAttack <= screenNormal*1.5 {
		t.Fatalf("attack screen %v should far exceed normal %v", screenAttack, screenNormal)
	}
	// E-Android pins the extra screen energy on the malware.
	if r.Attack.EAndroidTotalJ["FunGame"] <= r.Normal.EAndroidTotalJ["FunGame"] {
		t.Fatal("malware should carry the escalated screen energy")
	}
	if !strings.Contains(r.Render(), "normal circumstances") {
		t.Fatal("render structure")
	}
}

func TestFig9fWakelockAttackKeepsScreenOn(t *testing.T) {
	r, err := Fig9f()
	if err != nil {
		t.Fatal(err)
	}
	// Normal: screen on 30 s then timeout. Attack: on the whole 60 s.
	normalScreen := r.Normal.AndroidJ["Screen"]
	attackScreen := r.Attack.AndroidJ["Screen"]
	if attackScreen <= normalScreen*1.5 {
		t.Fatalf("attack screen %v vs normal %v", attackScreen, normalScreen)
	}
	// Baseline never blames the malware; E-Android does.
	if r.Attack.AndroidJ["FunGame"] >= attackScreen/10 {
		t.Fatal("baseline should not blame the malware for screen drain")
	}
	if r.Attack.EAndroidTotalJ["FunGame"] < attackScreen/2 {
		t.Fatalf("e-android malware total %v should include screen energy %v",
			r.Attack.EAndroidTotalJ["FunGame"], attackScreen)
	}
}

func TestFig2RatesMatchPaper(t *testing.T) {
	r, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if r.Study.Total != 1124 {
		t.Fatalf("corpus = %d", r.Study.Total)
	}
	if math.Abs(r.Study.ExportedRate-0.72) > 0.001 ||
		math.Abs(r.Study.WakeLockRate-0.81) > 0.001 ||
		math.Abs(r.Study.WriteSettingsRate-0.21) > 0.001 {
		t.Fatalf("rates = %+v", r.Study)
	}
	out := r.Render()
	for _, want := range []string{"72.0%", "81.0%", "21.0%", "28 categories"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig3ShapeMatchesPaper(t *testing.T) {
	// Coarse step for test speed; the shape assertions are step-robust.
	r, err := Fig3WithStep(5 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	hours := map[string]float64{}
	for _, c := range r.Curves {
		hours[c.Name] = c.HoursToDead()
		if len(c.Points) == 0 {
			t.Fatalf("curve %s empty", c.Name)
		}
		// Monotone: percent decreases, time increases.
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].Hours < c.Points[i-1].Hours ||
				c.Points[i].Percent >= c.Points[i-1].Percent {
				t.Fatalf("curve %s not monotone at %d", c.Name, i)
			}
		}
	}
	// The paper's ordering: full brightness drains fastest; lowest
	// brightness lasts longest; bind_service and interrupt_app fall in
	// between; brightness_10 just under brightness_low.
	if !(hours["brightness_full"] < hours["bind_service"] &&
		hours["bind_service"] < hours["interrupt_app"] &&
		hours["interrupt_app"] < hours["brightness_low"] &&
		hours["brightness_10"] < hours["brightness_low"]) {
		t.Fatalf("drain ordering wrong: %+v", hours)
	}
	// Everything lands in the paper's 5-15+ hour band.
	for name, h := range hours {
		if h < 4 || h > 20 {
			t.Fatalf("%s drains in %v h, outside the plausible band", name, h)
		}
	}
	if !strings.Contains(r.Render(), "battery dead after") {
		t.Fatal("render")
	}
}

func TestFig6MapsSingleVictimEntry(t *testing.T) {
	r, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	entries := r.Maps["FunGame"]
	victims := 0
	for _, e := range entries {
		if e.EnergyJ > 0 {
			victims++
		}
	}
	if victims == 0 {
		t.Fatal("multi-collateral attack should charge the malware")
	}
	if !strings.Contains(r.Render(), "Collateral energy maps") {
		t.Fatal("render")
	}
}

func TestFig7ChainEntries(t *testing.T) {
	r, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	entries := r.Maps["FunGame"]
	if len(entries) < 3 {
		t.Fatalf("hybrid chain should give the root ≥3 entries, got %+v", entries)
	}
	var hasScreen bool
	for _, e := range entries {
		if e.Driven == app.UIDScreen && e.EnergyJ > 0 {
			hasScreen = true
		}
	}
	if !hasScreen {
		t.Fatal("chain root should carry screen energy")
	}
}

func TestFig8BreakdownListsCollateral(t *testing.T) {
	r, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	var contactsRow, messageRow bool
	for _, row := range r.Rows {
		switch row.Label {
		case "Contacts":
			contactsRow = len(row.Collateral) > 0
		case "Message":
			messageRow = len(row.Collateral) > 0
		}
	}
	if !contactsRow || !messageRow {
		t.Fatalf("rows missing collateral inventories: contacts=%v message=%v",
			contactsRow, messageRow)
	}
	if !strings.Contains(r.Render(), "PowerTutor") {
		t.Fatal("render")
	}
}

func TestFig10SmallRun(t *testing.T) {
	r, err := Fig10WithReps(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Results) != 13*3 {
		t.Fatalf("results = %d", len(r.Results))
	}
	if !strings.Contains(r.Render(), "Figure 10") {
		t.Fatal("render")
	}
}

func TestFig11SmallRun(t *testing.T) {
	r, err := Fig11WithConfig(antutu.Config{
		IntOps: 50_000, FloatOps: 50_000, MemBytes: 1 << 14, UXOps: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Comparison.Android.Total <= 0 || r.Comparison.EAndroid.Total <= 0 {
		t.Fatalf("scores = %+v", r.Comparison)
	}
}

func TestExtDetectionStudy(t *testing.T) {
	r, err := ExtDetection()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cases) != 2 {
		t.Fatalf("cases = %d", len(r.Cases))
	}
	classic, collateral := r.Cases[0], r.Cases[1]
	// The classic bomber is obvious: top of the baseline view and
	// flagged by power signatures.
	if classic.BatteryInterfaceRank == 0 || classic.BatteryInterfaceRank > 2 {
		t.Fatalf("classic rank = %d", classic.BatteryInterfaceRank)
	}
	if !classic.PowerSignatureFlags {
		t.Fatal("classic bomb should be flagged by power signatures")
	}
	// The collateral attacker sinks in the baseline view, evades power
	// signatures, and is exposed only by E-Android.
	if collateral.BatteryInterfaceRank != 0 && collateral.BatteryInterfaceRank <= 2 {
		t.Fatalf("collateral malware ranks too high in baseline: %d", collateral.BatteryInterfaceRank)
	}
	if collateral.PowerSignatureFlags {
		t.Fatal("collateral malware should evade power signatures")
	}
	if collateral.EAndroidCollateralJ <= 0 {
		t.Fatal("E-Android should expose the collateral malware")
	}
	out := r.Render()
	for _, want := range []string{"classic CPU bomb", "collateral attack #3", "FLAGGED", "missed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestExtStealth(t *testing.T) {
	r, err := ExtStealth()
	if err != nil {
		t.Fatal(err)
	}
	if r.MalwareForegroundTime != 0 {
		t.Fatalf("malware foreground time = %v, want 0", r.MalwareForegroundTime)
	}
	if r.MalwareCollateralJ <= 0 {
		t.Fatal("stealth attack should still be attributed")
	}
	if !strings.Contains(r.Render(), "stealth auto-launch") {
		t.Fatal("render")
	}
}

func TestFig9aPowerTutorSimilarShape(t *testing.T) {
	// The paper's omitted-variant claim: under PowerTutor the same
	// qualitative result holds — the baseline hides the chain, E-Android
	// exposes it.
	bs, err := Fig9a()
	if err != nil {
		t.Fatal(err)
	}
	pt, err := Fig9aPowerTutor()
	if err != nil {
		t.Fatal(err)
	}
	// Both policies: message total with collateral exceeds its baseline.
	for _, r := range []*ViewsResult{bs, pt} {
		if r.EAndroidTotalJ["Message"] <= r.AndroidJ["Message"] {
			t.Fatalf("%s: collateral missing", r.Name)
		}
	}
	// PowerTutor folds screen energy into the foreground apps, so its
	// message baseline is larger, but the camera still dominates it.
	if pt.AndroidJ["Message"] <= bs.AndroidJ["Message"] {
		t.Fatal("powertutor baseline should include screen share")
	}
	if pt.AndroidJ["Camera"] <= pt.AndroidJ["Message"] {
		t.Fatal("camera should still dominate under powertutor")
	}
}
