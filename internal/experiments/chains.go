package experiments

import (
	"fmt"
	"strings"

	"repro/internal/accounting"
	"repro/internal/core"
	"repro/internal/scenario"
)

// ChainResult captures an attack-chain experiment: the full attack
// timeline the monitor recorded and the final collateral maps.
type ChainResult struct {
	Name       string
	AttackLog  string
	Maps       map[string][]core.MapEntry // label -> entries
	View       string
	labelOrder []string
}

// Render prints the timeline and the per-app maps.
func (r *ChainResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", r.Name)
	b.WriteString(r.AttackLog)
	b.WriteString("Collateral energy maps:\n")
	for _, label := range r.labelOrder {
		entries := r.Maps[label]
		if len(entries) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %s:\n", label)
		for _, e := range entries {
			fmt.Fprintf(&b, "    driven=%d energy=%.2f J\n", e.Driven, e.EnergyJ)
		}
	}
	b.WriteString("Revised battery interface:\n")
	b.WriteString(r.View)
	return b.String()
}

func chainResult(name string, w *scenario.World) *ChainResult {
	w.Dev.Flush()
	res := &ChainResult{
		Name:      name,
		AttackLog: w.Dev.AttackView(),
		Maps:      make(map[string][]core.MapEntry),
		View:      w.Dev.EAndroidView(),
	}
	for _, a := range w.Dev.Packages.Apps() {
		if a.System {
			continue
		}
		entries := w.Dev.EAndroid.CollateralMap(a.UID)
		label := a.Label()
		res.Maps[label] = entries
		res.labelOrder = append(res.labelOrder, label)
	}
	return res
}

// Fig6 regenerates Figure 6: the multi-collateral attack timeline (bind
// + start + interrupt on the same victim, ended step by step).
func Fig6() (*ChainResult, error) {
	w, err := scenario.NewWorld(worldCfg(accounting.BatteryStats))
	if err != nil {
		return nil, err
	}
	if err := w.ForceScreenOn(); err != nil {
		return nil, err
	}
	if err := w.MultiCollateral(); err != nil {
		return nil, err
	}
	return chainResult("Figure 6: multi-collateral attack", w), nil
}

// Fig7 regenerates Figure 7: the hybrid chain (A binds B, B starts C, C
// changes brightness; everything superimposes onto A).
func Fig7() (*ChainResult, error) {
	w, err := scenario.NewWorld(worldCfg(accounting.BatteryStats))
	if err != nil {
		return nil, err
	}
	if err := w.ForceScreenOn(); err != nil {
		return nil, err
	}
	if err := w.HybridChain(); err != nil {
		return nil, err
	}
	return chainResult("Figure 7: hybrid attack chain", w), nil
}
