package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestFleetStealthStudy(t *testing.T) {
	fr, err := FleetStealthStudy(4, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Summary.Failed != 0 {
		t.Fatalf("failed devices: %d", fr.Summary.Failed)
	}
	// Every device mounts the stealth hijack, so the fleet detection
	// rate is total.
	if fr.Summary.DetectionRate() != 1 {
		t.Fatalf("detection rate = %v, want 1", fr.Summary.DetectionRate())
	}
	if fr.Summary.Attacks < 4 {
		t.Fatalf("attacks = %d, want >= 4", fr.Summary.Attacks)
	}
}

func TestFleetDrainStudy(t *testing.T) {
	res, err := FleetDrainStudy(2, 2, 7, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Fleet.Results); got != 2*len(DrainConfigs()) {
		t.Fatalf("devices = %d, want %d", got, 2*len(DrainConfigs()))
	}
	for _, name := range DrainConfigs() {
		if res.MeanJ[name] <= 0 {
			t.Fatalf("config %s drained nothing", name)
		}
	}
	// Physics check mirroring Figure 3's ordering: full brightness must
	// out-drain minimal brightness over the same window.
	if res.MeanJ["brightness_full"] <= res.MeanJ["brightness_low"] {
		t.Fatalf("brightness_full (%.1f J) should out-drain brightness_low (%.1f J)",
			res.MeanJ["brightness_full"], res.MeanJ["brightness_low"])
	}
	if !strings.Contains(res.Render(), "Fleet drain study") {
		t.Fatal("render missing header")
	}
}

func TestFleetDrainStudyRejectsBadArgs(t *testing.T) {
	if _, err := FleetDrainStudy(0, 1, 1, time.Minute); err == nil {
		t.Fatal("zero replicas accepted")
	}
	if _, err := FleetDrainStudy(1, 1, 1, 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

// The fleet-parallel Figure 3 sweep must reproduce the serial sweep
// exactly: same curves, same render, whatever the worker count.
func TestFig3WorkersMatchesSerial(t *testing.T) {
	serial, err := Fig3WithStep(15 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig3WithStepWorkers(15*time.Minute, 3)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Render() != par.Render() {
		t.Fatalf("parallel Fig3 diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.Render(), par.Render())
	}
	if _, err := Fig3WithStepWorkers(0, 2); err == nil {
		t.Fatal("zero step accepted")
	}
}

func TestExtFleet(t *testing.T) {
	res, err := ExtFleet()
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range []string{"fleet-parallel studies", "stealth auto-launch fleet", "drain fleet"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
