package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"repro/internal/accounting"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/obsv"
	"repro/internal/powersig"
	"repro/internal/scenario"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Trace overhead study — the cost of the causal span subsystem on a
// traced fleet workload (stealth attack + 1 Hz detector + watchdog per
// device, telemetry on throughout so the only variable is tracing):
//
//	baseline: fleet.Spec.Trace nil — the untraced path, one nil check
//	          per device and per watchdog window
//	disabled: a Config{Disabled:true} tracer threaded through — the
//	          "compiled in, turned off" path every untraced job pays
//	sampled:  head sampling at 1-in-Devices (≈1 device traced)
//	full:     SampleRate 1 — every device carries a DeviceTracer, every
//	          meter flush / watchdog window / kernel batch becomes a span
//
// The hard gates ride on disabled (≤1%, paired interquartile-mean
// statistic — see ObsvOverheadStudy for why a 1% gate needs pairing)
// and full (≤10%, min-over-reps).

// TraceOverheadHorizon is the virtual horizon each device simulates per
// rep: long enough that a rep's wall time dwarfs scheduler noise.
const TraceOverheadHorizon = 8 * time.Hour

// TraceOverheadDevices is the per-rep fleet size. Small and serial
// (Workers=1): the study measures per-device tracing cost, not pool
// scheduling.
const TraceOverheadDevices = 4

// DefaultTraceReps is the default repetition count; the gate pair gets
// five paired draws per rep.
const DefaultTraceReps = 8

// TraceOverheadResult holds the measured floors plus the last full
// run's span inventory.
type TraceOverheadResult struct {
	Reps       int
	BaselineMS float64
	DisabledMS float64
	SampledMS  float64
	FullMS     float64
	// DisabledPct is the gate statistic: the interquartile mean over
	// back-to-back (baseline, disabled) pairs of the pair's wall-time
	// ratio, minus one, in percent.
	DisabledPct float64
	// Spans and Dropped come from the last full run (deterministic:
	// seeded, serial).
	Spans   int
	Dropped uint64
}

// DisabledOverheadPct is the tracing-off overhead vs baseline, percent
// (the paired statistic).
func (r *TraceOverheadResult) DisabledOverheadPct() float64 { return r.DisabledPct }

// SampledOverheadPct is the default-sampling overhead vs baseline,
// percent (min-over-reps).
func (r *TraceOverheadResult) SampledOverheadPct() float64 {
	return overheadPct(r.SampledMS, r.BaselineMS)
}

// FullOverheadPct is the every-device-traced overhead vs baseline,
// percent (min-over-reps).
func (r *TraceOverheadResult) FullOverheadPct() float64 {
	return overheadPct(r.FullMS, r.BaselineMS)
}

// Render prints the study.
func (r *TraceOverheadResult) Render() string {
	var b strings.Builder
	b.WriteString("=== Trace overhead study ===\n")
	fmt.Fprintf(&b, "workload: %d-device fleet, stealth attack + 1 Hz detector + watchdog, %v horizon, %d reps (paired gate; min wall times)\n",
		TraceOverheadDevices, TraceOverheadHorizon, r.Reps)
	fmt.Fprintf(&b, "  baseline (no tracer):      %10.3f ms\n", r.BaselineMS)
	fmt.Fprintf(&b, "  trace off (disabled):      %10.3f ms  (%+.2f%%)\n", r.DisabledMS, r.DisabledOverheadPct())
	fmt.Fprintf(&b, "  trace sampled (1/%d):       %10.3f ms  (%+.2f%%)\n", TraceOverheadDevices, r.SampledMS, r.SampledOverheadPct())
	fmt.Fprintf(&b, "  trace full (every device): %10.3f ms  (%+.2f%%)\n", r.FullMS, r.FullOverheadPct())
	fmt.Fprintf(&b, "  last full run: %d spans, %d dropped\n", r.Spans, r.Dropped)
	return b.String()
}

// traceWorkload runs one rep. mode: 0 baseline, 1 disabled, 2 sampled,
// 3 full. Everything but the tracer is held constant — telemetry and
// the watchdog stay on in every mode so the measured delta is tracing
// alone.
func traceWorkload(mode int, res *TraceOverheadResult) error {
	var tr *trace.Tracer
	switch mode {
	case 1:
		tr = trace.New("trace-overhead", "bench", trace.Config{Disabled: true})
	case 2:
		tr = trace.New("trace-overhead", "bench", trace.Config{SampleRate: TraceOverheadDevices})
	case 3:
		tr = trace.New("trace-overhead", "bench", trace.Config{SampleRate: 1})
	}
	var ft *trace.FleetTrace
	if tr != nil {
		ft = tr.Fleet(TraceOverheadDevices)
	}
	fr, err := fleet.Run(context.Background(), fleet.Spec{
		Devices:   TraceOverheadDevices,
		Workers:   1,
		Seed:      42,
		Config:    worldCfg(accounting.BatteryStats),
		Telemetry: &telemetry.Options{},
		Trace:     ft,
		Scenario: func(i int, dev *device.Device) error {
			w, err := scenario.Populate(dev)
			if err != nil {
				return err
			}
			wd, err := obsv.NewWatchdog(dev, obsv.WatchdogOptions{})
			if err != nil {
				return err
			}
			wd.Start()
			det, err := powersig.NewDetector(dev.Engine, dev.Meter, dev.Packages, 0)
			if err != nil {
				return err
			}
			det.Start()
			if err := w.ForceScreenOn(); err != nil {
				return err
			}
			if err := w.StealthAutoLaunch(60 * time.Second); err != nil {
				return err
			}
			if err := dev.Run(TraceOverheadHorizon); err != nil {
				return err
			}
			wd.Finish()
			return nil
		},
	})
	if err != nil {
		return err
	}
	for _, f := range fr.Summary.Failures {
		return fmt.Errorf("trace study device %d: %s", f.Index, f.Err)
	}
	if mode == 3 {
		tr.Finish()
		res.Spans = tr.SpanCount()
		res.Dropped = tr.Dropped()
	}
	return nil
}

// TraceOverheadStudy measures the tracing cost over reps repetitions
// (0 means DefaultTraceReps). The gate pair (baseline vs disabled) is
// timed first in adjacent alternating pairs — the paired protocol from
// ObsvOverheadStudy — and the sampled/full configurations afterwards
// with min-over-reps wall times.
func TraceOverheadStudy(reps int) (*TraceOverheadResult, error) {
	if reps <= 0 {
		reps = DefaultTraceReps
	}
	res := &TraceOverheadResult{Reps: reps}
	gcPct := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(gcPct)
	if err := traceWorkload(0, res); err != nil { // untimed warmup
		return nil, err
	}
	gateDsts := []*float64{&res.BaselineMS, &res.DisabledMS}
	ratios := make([]float64, 0, 5*reps)
	for rep := 0; rep < 5*reps; rep++ {
		var ms [2]float64
		for k := 0; k < len(gateDsts); k++ {
			mode := (rep + k) % len(gateDsts)
			runtime.GC()
			start := time.Now()
			if err := traceWorkload(mode, res); err != nil {
				return nil, err
			}
			d := float64(time.Since(start).Microseconds()) / 1000
			ms[mode] = d
			if dst := gateDsts[mode]; *dst == 0 || d < *dst {
				*dst = d
			}
		}
		ratios = append(ratios, ms[1]/ms[0])
	}
	sort.Float64s(ratios)
	mid := ratios[len(ratios)/4 : len(ratios)-len(ratios)/4]
	var sum float64
	for _, r := range mid {
		sum += r
	}
	res.DisabledPct = (sum/float64(len(mid)) - 1) * 100
	for mode := 2; mode <= 3; mode++ {
		dst := &res.SampledMS
		if mode == 3 {
			dst = &res.FullMS
		}
		for rep := 0; rep < reps; rep++ {
			runtime.GC()
			start := time.Now()
			if err := traceWorkload(mode, res); err != nil {
				return nil, err
			}
			if d := float64(time.Since(start).Microseconds()) / 1000; *dst == 0 || d < *dst {
				*dst = d
			}
		}
	}
	return res, nil
}
