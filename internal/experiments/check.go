package experiments

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/accounting"
	"repro/internal/check"
	"repro/internal/powersig"
	"repro/internal/scenario"
)

// Check overhead study — the invariant checker's counterpart to the
// telemetry study above, and the same shape as the paper's §VI-C
// argument: a correctness subsystem only earns an always-on default if
// its cost is measured and bounded. Three configurations:
//
//	baseline:     no checker built (sinks and hooks never see it)
//	enabled:      passive invariant families 1-4 on every interval
//	differential: families 1-4 plus the shadow SampledAccountant
//
// Same workload, interleaving, GC control and min-over-reps floor as
// the telemetry study; the benchsuite gate holds the enabled
// configuration within 5% of baseline. The differential oracle adds a
// 1 Hz ticker to the event stream, so its cost is reported but not
// gated — it is an opt-in debugging tool, not a default.

// CheckOverheadHorizon is the virtual horizon each rep simulates; the
// telemetry study's horizon works here too (same workload).
const CheckOverheadHorizon = TelemetryOverheadHorizon

// DefaultCheckReps is the default repetition count, a multiple of three
// for the rotating schedule.
const DefaultCheckReps = 6

// CheckOverheadResult holds the measured floors plus the violation
// counts of the checked runs (all expected to be zero — a nonzero count
// here means the simulator itself is broken).
type CheckOverheadResult struct {
	Reps int
	// BaselineMS, EnabledMS and DifferentialMS are min-over-reps wall
	// times.
	BaselineMS     float64
	EnabledMS      float64
	DifferentialMS float64
	// EnabledViolations and DifferentialViolations come from the last
	// run of each checked configuration.
	EnabledViolations      int
	DifferentialViolations int
}

// EnabledOverheadPct reports the passive-checker overhead vs baseline,
// in percent (negative means lost in the noise).
func (r *CheckOverheadResult) EnabledOverheadPct() float64 {
	return overheadPct(r.EnabledMS, r.BaselineMS)
}

// DifferentialOverheadPct reports the overhead with the shadow
// accountant running.
func (r *CheckOverheadResult) DifferentialOverheadPct() float64 {
	return overheadPct(r.DifferentialMS, r.BaselineMS)
}

// Render prints the study like the paper's overhead tables.
func (r *CheckOverheadResult) Render() string {
	var b strings.Builder
	b.WriteString("=== Invariant checker overhead study ===\n")
	fmt.Fprintf(&b, "workload: stealth attack + 1 Hz detector, %v horizon, %d reps (min wall time)\n",
		CheckOverheadHorizon, r.Reps)
	fmt.Fprintf(&b, "  baseline (no checker):   %10.3f ms\n", r.BaselineMS)
	fmt.Fprintf(&b, "  passive checks (1-4):    %10.3f ms  (%+.2f%%)\n", r.EnabledMS, r.EnabledOverheadPct())
	fmt.Fprintf(&b, "  + differential oracle:   %10.3f ms  (%+.2f%%)\n", r.DifferentialMS, r.DifferentialOverheadPct())
	fmt.Fprintf(&b, "  violations: passive %d, differential %d\n", r.EnabledViolations, r.DifferentialViolations)
	return b.String()
}

// checkWorkload runs one rep of the overhead workload under the given
// checker options and returns the violation count after Finish.
func checkWorkload(opts *check.Options) (int, error) {
	cfg := worldCfg(accounting.BatteryStats)
	cfg.Checks = opts
	w, err := scenario.NewWorld(cfg)
	if err != nil {
		return 0, err
	}
	det, err := powersig.NewDetector(w.Dev.Engine, w.Dev.Meter, w.Dev.Packages, 0)
	if err != nil {
		return 0, err
	}
	det.Start()
	if err := w.ForceScreenOn(); err != nil {
		return 0, err
	}
	if err := w.StealthAutoLaunch(60 * time.Second); err != nil {
		return 0, err
	}
	if err := w.Dev.Run(CheckOverheadHorizon); err != nil {
		return 0, err
	}
	return len(w.Dev.FinishChecks()), nil
}

// CheckOverheadStudy measures the invariant checker's cost in the three
// configurations over reps repetitions (0 means DefaultCheckReps).
//
// The baseline uses Options{Disabled: true} rather than a nil Checks so
// the study stays a clean A/B even when EANDROID_CHECK is set in the
// environment (a nil config would silently pick up env-driven checks).
func CheckOverheadStudy(reps int) (*CheckOverheadResult, error) {
	if reps <= 0 {
		reps = DefaultCheckReps
	}
	res := &CheckOverheadResult{Reps: reps}
	minMS := func(dst *float64, d time.Duration) {
		ms := float64(d.Microseconds()) / 1000
		if *dst == 0 || ms < *dst {
			*dst = ms
		}
	}
	configs := []struct {
		opts       func() *check.Options
		dst        *float64
		violations *int
	}{
		{func() *check.Options { return &check.Options{Disabled: true} }, &res.BaselineMS, nil},
		{func() *check.Options { return &check.Options{} }, &res.EnabledMS, &res.EnabledViolations},
		{func() *check.Options { return &check.Options{Differential: true} }, &res.DifferentialMS, &res.DifferentialViolations},
	}
	gcPct := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(gcPct)
	if _, err := checkWorkload(&check.Options{Disabled: true}); err != nil {
		return nil, err
	}
	for rep := 0; rep < reps; rep++ {
		for k := 0; k < len(configs); k++ {
			c := configs[(rep+k)%len(configs)]
			runtime.GC()
			start := time.Now()
			n, err := checkWorkload(c.opts())
			if err != nil {
				return nil, err
			}
			minMS(c.dst, time.Since(start))
			if c.violations != nil {
				*c.violations = n
			}
		}
	}
	return res, nil
}
