package experiments

import (
	"strings"
	"testing"

	"repro/internal/obsv"
)

// TestWatchdogStudySeparation is the PR's headline acceptance: the live
// watchdog flags every one of the paper's six attacks while staying
// silent on both benign scenes.
func TestWatchdogStudySeparation(t *testing.T) {
	res, err := WatchdogStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 8 {
		t.Fatalf("got %d cases, want 8", len(res.Cases))
	}
	for _, c := range res.Cases {
		if c.Benign && c.Flagged {
			t.Errorf("%s: benign scene flagged: %+v", c.Name, c.Findings)
		}
		if !c.Benign && !c.Flagged {
			t.Errorf("%s: attack not flagged", c.Name)
		}
	}
	// Every attack's findings must include the paper's esDiagnose
	// signal: collateral energy diverging from direct energy.
	for _, c := range res.Cases {
		if c.Benign {
			continue
		}
		hasDivergence := false
		for _, f := range c.Findings {
			if f.Signal == obsv.SignalDivergence {
				hasDivergence = true
			}
			if f.RateMW <= 0 {
				t.Errorf("%s: finding with non-positive rate: %+v", c.Name, f)
			}
		}
		if !hasDivergence {
			t.Errorf("%s: no %s finding (got %s)", c.Name, obsv.SignalDivergence, signalSummary(c.Findings))
		}
	}
	out := res.Render()
	for _, want := range []string{"attack6-wakelock-screen", "scene1-message-film", "benign"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

// TestWatchdogStudyDeterminism re-runs one attack case and requires the
// identical findings sequence — the watchdog sits on the deterministic
// side of the obsv split.
func TestWatchdogStudyDeterminism(t *testing.T) {
	run := func() []obsv.Finding {
		res, err := WatchdogStudy()
		if err != nil {
			t.Fatal(err)
		}
		var all []obsv.Finding
		for _, c := range res.Cases {
			all = append(all, c.Findings...)
		}
		return all
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("finding counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("finding %d differs:\n  %+v\n  %+v", i, a[i], b[i])
		}
	}
}
