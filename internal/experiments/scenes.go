package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/accounting"
	"repro/internal/app"
	"repro/internal/batteryui"
	"repro/internal/device"
	"repro/internal/power"
	"repro/internal/scenario"
)

// ViewsResult holds the baseline ("Android") and revised ("E-Android")
// views for one scenario run plus the key attributed energies, in
// joules.
type ViewsResult struct {
	Name         string
	AndroidView  string
	EAndroidView string
	// AndroidJ is baseline-attributed energy per label.
	AndroidJ map[string]float64
	// EAndroidTotalJ is total (original + collateral) per label.
	EAndroidTotalJ map[string]float64
}

// Render prints both views side by side, like the paired bars of
// Figure 9.
func (r *ViewsResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", r.Name)
	b.WriteString("--- Android (baseline interface; 'A' bars) ---\n")
	b.WriteString(r.AndroidView)
	b.WriteString("--- E-Android (revised interface; 'E' bars, '+' = collateral) ---\n")
	b.WriteString(r.EAndroidView)
	return b.String()
}

// viewsFrom snapshots both interfaces of a world after a scenario run.
func viewsFrom(name string, w *scenario.World) *ViewsResult {
	w.Dev.Flush()
	res := &ViewsResult{
		Name:           name,
		AndroidView:    w.Dev.AndroidView(),
		EAndroidView:   w.Dev.EAndroidView(),
		AndroidJ:       make(map[string]float64),
		EAndroidTotalJ: make(map[string]float64),
	}
	for _, e := range w.Dev.Android.Entries() {
		res.AndroidJ[w.Dev.Packages.Label(e.UID)] = e.TotalJ
	}
	for _, row := range batteryui.EAndroidRows(w.Dev.Packages, w.Dev.Android, w.Dev.EAndroid) {
		res.EAndroidTotalJ[row.Label] = row.TotalJ
	}
	return res
}

func newWorld(policy accounting.Policy) (*scenario.World, error) {
	return scenario.NewWorld(device.Config{EAndroid: true, Policy: policy})
}

// Fig1 regenerates Figure 1: the energy view Android's official
// BatteryStats shows after filming inside the Message app — the Camera
// is charged, the Message barely registers.
func Fig1() (*ViewsResult, error) {
	w, err := newWorld(accounting.BatteryStats)
	if err != nil {
		return nil, err
	}
	if err := w.Scene1MessageFilm(); err != nil {
		return nil, err
	}
	return viewsFrom("Figure 1: energy view when filming in the Message app", w), nil
}

// Fig9a regenerates Figure 9a (normal scene #1).
func Fig9a() (*ViewsResult, error) {
	w, err := newWorld(accounting.BatteryStats)
	if err != nil {
		return nil, err
	}
	if err := w.Scene1MessageFilm(); err != nil {
		return nil, err
	}
	return viewsFrom("Figure 9a: Scene #1 (Message films via Camera)", w), nil
}

// Fig9b regenerates Figure 9b (normal scene #2, the legitimate hybrid).
func Fig9b() (*ViewsResult, error) {
	w, err := newWorld(accounting.BatteryStats)
	if err != nil {
		return nil, err
	}
	if err := w.Scene2ContactsChain(); err != nil {
		return nil, err
	}
	return viewsFrom("Figure 9b: Scene #2 (Contacts -> Message -> Camera)", w), nil
}

// Fig9c regenerates Figure 9c (attack #3: bind without unbind). The
// attack runs for 60 s, then the malware unbinds and the victim runs on
// for another 30 s — whose energy must NOT be charged to the malware.
func Fig9c() (*ViewsResult, error) {
	w, err := newWorld(accounting.BatteryStats)
	if err != nil {
		return nil, err
	}
	if err := w.ForceScreenOn(); err != nil {
		return nil, err
	}
	if err := w.Attack3ServicePin(60 * time.Second); err != nil {
		return nil, err
	}
	// End the attack: the malicious client dies, link-to-death unbinds.
	w.Malware.Kill()
	if err := w.Dev.Run(30 * time.Second); err != nil {
		return nil, err
	}
	return viewsFrom("Figure 9c: Attack #3 (bind service without unbinding)", w), nil
}

// Fig9d regenerates Figure 9d (attack #4: interrupt to background with
// an unreleased wakelock).
func Fig9d() (*ViewsResult, error) {
	w, err := newWorld(accounting.BatteryStats)
	if err != nil {
		return nil, err
	}
	if err := w.Attack4InterruptQuit(60 * time.Second); err != nil {
		return nil, err
	}
	return viewsFrom("Figure 9d: Attack #4 (interrupt attacked app to background)", w), nil
}

// PhasedResult is a normal-versus-attack comparison (Figures 9e/9f show
// the normal case in the upper half and the attack in the lower half).
type PhasedResult struct {
	Name   string
	Normal *ViewsResult
	Attack *ViewsResult
}

// Render prints both halves.
func (r *PhasedResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", r.Name)
	b.WriteString(">>> normal circumstances (upper half)\n")
	b.WriteString(r.Normal.Render())
	b.WriteString(">>> under attack (lower half)\n")
	b.WriteString(r.Attack.Render())
	return b.String()
}

// Fig9e regenerates Figure 9e (attack #5: brightness escalation).
func Fig9e() (*PhasedResult, error) {
	// Normal half: the victim runs 60 s at default brightness.
	normal, err := newWorld(accounting.BatteryStats)
	if err != nil {
		return nil, err
	}
	if _, err := normal.Dev.Activities.UserStartApp(scenario.PkgVictim); err != nil {
		return nil, err
	}
	if _, err := normal.Dev.Power.Acquire(normal.Victim.UID, power.ScreenBright, "victim-ui"); err != nil {
		return nil, err
	}
	if err := normal.Dev.Run(60 * time.Second); err != nil {
		return nil, err
	}

	// Attack half: same run, but the malware escalates brightness after
	// the first instant.
	attack, err := newWorld(accounting.BatteryStats)
	if err != nil {
		return nil, err
	}
	if err := attack.Attack5Brightness(0, 60*time.Second); err != nil {
		return nil, err
	}
	return &PhasedResult{
		Name:   "Figure 9e: Attack #5 (drain through screen configuration)",
		Normal: viewsFrom("normal: default brightness, 60 s", normal),
		Attack: viewsFrom("attack: malware escalates brightness to 255", attack),
	}, nil
}

// Fig9f regenerates Figure 9f (attack #6: screen wakelock never
// released). Normal half: screen times out after 30 s of a 60 s window.
// Attack half: malware's wakelock pins the screen for the full 60 s.
func Fig9f() (*PhasedResult, error) {
	normal, err := newWorld(accounting.BatteryStats)
	if err != nil {
		return nil, err
	}
	if err := normal.Dev.Run(60 * time.Second); err != nil {
		return nil, err
	}

	attack, err := newWorld(accounting.BatteryStats)
	if err != nil {
		return nil, err
	}
	if err := attack.Attack6WakelockScreen(60 * time.Second); err != nil {
		return nil, err
	}
	return &PhasedResult{
		Name:   "Figure 9f: Attack #6 (acquire screen wakelock without releasing)",
		Normal: viewsFrom("normal: auto-lock turns screen off after 30 s", normal),
		Attack: viewsFrom("attack: malware wakelock keeps screen on 60 s", attack),
	}, nil
}

// Fig8 regenerates Figure 8: the per-app breakdowns E-Android's revised
// PowerTutor interface shows after the legitimate hybrid chain (scene
// #2): the Contacts and Message rows each itemize their collateral apps.
type Fig8Result struct {
	Contacts app.UID
	Message  app.UID
	View     string
	Rows     []batteryui.Row
}

// Render prints the revised PowerTutor interface.
func (r *Fig8Result) Render() string {
	return "=== Figure 8: sample view of energy breakdown (revised PowerTutor) ===\n" + r.View
}

// Fig8 runs scene #2 under the PowerTutor policy.
func Fig8() (*Fig8Result, error) {
	w, err := newWorld(accounting.PowerTutor)
	if err != nil {
		return nil, err
	}
	if err := w.Scene2ContactsChain(); err != nil {
		return nil, err
	}
	w.Dev.Flush()
	return &Fig8Result{
		Contacts: w.Contacts.UID,
		Message:  w.Message.UID,
		View:     w.Dev.EAndroidView(),
		Rows:     batteryui.EAndroidRows(w.Dev.Packages, w.Dev.Android, w.Dev.EAndroid),
	}, nil
}

// Fig9aPowerTutor reruns scene #1 under the PowerTutor policy. The paper
// omits its PowerTutor plots because "the results of PowerTutor are
// similar to those of Android's interface"; this entry regenerates that
// omitted variant so the claim itself is checkable.
func Fig9aPowerTutor() (*ViewsResult, error) {
	w, err := newWorld(accounting.PowerTutor)
	if err != nil {
		return nil, err
	}
	if err := w.Scene1MessageFilm(); err != nil {
		return nil, err
	}
	return viewsFrom("Figure 9a (PowerTutor variant): Scene #1", w), nil
}
