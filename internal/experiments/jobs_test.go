package experiments

import (
	"strings"
	"testing"
)

// TestExtJobsDeterministic: the ext-jobs render is a determinism
// surface — two independent runs (fresh managers, fresh caches) must
// produce identical text, and the in-run resubmission must be a
// byte-identical cache hit.
func TestExtJobsDeterministic(t *testing.T) {
	r1, err := ExtJobs()
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Identical {
		t.Fatal("cached resubmission was not byte-identical")
	}
	if !r1.Resubmitted.Cached {
		t.Fatal("resubmission did not hit the cache")
	}
	out := r1.Render()
	for _, want := range []string{"cached=true", "byte-identical=true", "1 hits, 3 misses"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	r2, err := ExtJobs()
	if err != nil {
		t.Fatal(err)
	}
	if out != r2.Render() {
		t.Fatalf("ext-jobs render not deterministic:\n--- run1\n%s\n--- run2\n%s", out, r2.Render())
	}
}
