package experiments

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"repro/internal/accounting"
	"repro/internal/powersig"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

// Telemetry overhead study — the repro analog of the paper's §VI-C
// overhead evaluation. The paper proves E-Android's instrumentation
// cheap by benchmarking stock Android against the framework-only and
// complete configurations; here the instrumentation under test is the
// telemetry subsystem itself, measured in three configurations:
//
//	baseline: no recorder built (call sites take the nil-check path)
//	disabled: recorder built but gated off (one branch per emission)
//	enabled:  full event + metrics recording
//
// Each rep runs the same deterministic workload (the stealth attack
// plus a power-signature detector sampling every virtual second over a
// long horizon — the fleet scaling workload). The 1% disabled gate is
// judged with the paired protocol from the obsv study (back-to-back
// baseline/disabled draws, interquartile mean of the per-pair ratios);
// wall-time floors are still reported as min over reps, the standard
// way to estimate them in the presence of scheduling noise.

// TelemetryOverheadHorizon is the virtual horizon each rep simulates.
// Long enough that a rep's wall time (~15 ms) puts the 1% disabled gate
// well above scheduler/timer noise: the event-dispatch rework cut the
// per-event cost severalfold, so the horizon grew with it to keep the
// same measurement resolution. The detector's 1 Hz samples wrap the
// default event ring several times over, which is deliberate — the
// enabled configuration is charged for the ring's steady-state
// overwrite path, not just the cheaper fill phase.
const TelemetryOverheadHorizon = 32 * time.Hour

// DefaultTelemetryReps is the default repetition count: the enabled
// mode runs this many times (min wall time), and the gate pair gets
// five paired draws per rep.
const DefaultTelemetryReps = 12

// TelemetryOverheadResult holds the measured floors and the artifacts
// of one enabled run.
type TelemetryOverheadResult struct {
	Reps int
	// BaselineMS, DisabledMS and EnabledMS are min-over-reps wall times.
	BaselineMS float64
	DisabledMS float64
	EnabledMS  float64
	// DisabledPct is the gate statistic: the interquartile mean over
	// back-to-back (baseline, disabled) pairs of the pair's wall-time
	// ratio, minus one, in percent — the same paired protocol as the
	// obsv study. Pairing cancels the slow machine drift that a
	// min-over-reps comparison of two near-identical workloads cannot;
	// a 1% gate needs the estimator's noise well under 1%.
	DisabledPct float64
	// EventsRecorded and EventsDropped come from the last enabled run.
	EventsRecorded uint64
	EventsDropped  uint64
	// Metrics is the last enabled run's snapshot (deterministic: the
	// workload is seeded and single-threaded).
	Metrics *telemetry.Snapshot
}

// DisabledOverheadPct reports the disabled-recorder overhead vs
// baseline, in percent (negative means lost in the noise). This is
// the paired interquartile-mean statistic, not the ratio of the min
// wall times.
func (r *TelemetryOverheadResult) DisabledOverheadPct() float64 {
	return r.DisabledPct
}

// EnabledOverheadPct reports the full-recording overhead vs baseline.
func (r *TelemetryOverheadResult) EnabledOverheadPct() float64 {
	return overheadPct(r.EnabledMS, r.BaselineMS)
}

func overheadPct(v, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (v/base - 1) * 100
}

// Render prints the study like the paper's overhead tables.
func (r *TelemetryOverheadResult) Render() string {
	var b strings.Builder
	b.WriteString("=== Telemetry overhead study (paper §VI-C analog) ===\n")
	fmt.Fprintf(&b, "workload: stealth attack + 1 Hz detector, %v horizon, %d reps (paired gate; min wall times)\n",
		TelemetryOverheadHorizon, r.Reps)
	fmt.Fprintf(&b, "  baseline (no recorder):  %10.3f ms\n", r.BaselineMS)
	fmt.Fprintf(&b, "  disabled recorder:       %10.3f ms  (%+.2f%%)\n", r.DisabledMS, r.DisabledOverheadPct())
	fmt.Fprintf(&b, "  enabled recorder:        %10.3f ms  (%+.2f%%)\n", r.EnabledMS, r.EnabledOverheadPct())
	fmt.Fprintf(&b, "  events recorded: %d (%d overwritten by the ring)\n", r.EventsRecorded, r.EventsDropped)
	return b.String()
}

// telemetryWorkload runs one rep of the overhead workload with the given
// recorder (nil = baseline).
func telemetryWorkload(rec *telemetry.Recorder) error {
	cfg := worldCfg(accounting.BatteryStats)
	cfg.Telemetry = rec
	w, err := scenario.NewWorld(cfg)
	if err != nil {
		return err
	}
	det, err := powersig.NewDetector(w.Dev.Engine, w.Dev.Meter, w.Dev.Packages, 0)
	if err != nil {
		return err
	}
	det.Start()
	if err := w.ForceScreenOn(); err != nil {
		return err
	}
	if err := w.StealthAutoLaunch(60 * time.Second); err != nil {
		return err
	}
	return w.Dev.Run(TelemetryOverheadHorizon)
}

// TelemetryOverheadStudy measures the telemetry subsystem's cost in the
// three configurations over reps repetitions (0 means
// DefaultTelemetryReps).
func TelemetryOverheadStudy(reps int) (*TelemetryOverheadResult, error) {
	if reps <= 0 {
		reps = DefaultTelemetryReps
	}
	res := &TelemetryOverheadResult{Reps: reps}
	minMS := func(dst *float64, d time.Duration) {
		ms := float64(d.Microseconds()) / 1000
		if *dst == 0 || ms < *dst {
			*dst = ms
		}
	}
	// Noise control, in three layers. (1) One untimed warmup rep settles
	// allocator and cache state. (2) The collector is paused during the
	// timed sections and run explicitly between them: a recorder's live
	// ring (~1.5 MB) shifts the GC pacing target, and with ~20 ms
	// workloads whether a run absorbs one or two collection cycles
	// dwarfs the instrumentation cost being measured. (3) The 1% gate
	// pair is timed back-to-back — baseline then disabled within each
	// draw, alternating which runs first — and the gate statistic is
	// the interquartile mean of the per-pair ratios, the same paired
	// protocol the obsv study uses: host drift slower than one pair
	// cancels in the ratio, alternation cancels ordering bias, and
	// trimming drops scheduler outliers. The allocation-heavy enabled
	// mode is measured separately afterwards (min over reps, 10% gate
	// with real headroom) so its heap churn cannot perturb the pair.
	gcPct := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(gcPct)
	if err := telemetryWorkload(nil); err != nil {
		return nil, err
	}
	gateRecs := []func() *telemetry.Recorder{
		func() *telemetry.Recorder { return nil },
		func() *telemetry.Recorder { return telemetry.New(telemetry.Options{Disabled: true}) },
	}
	gateDsts := []*float64{&res.BaselineMS, &res.DisabledMS}
	ratios := make([]float64, 0, 5*reps)
	for rep := 0; rep < 5*reps; rep++ {
		var ms [2]float64
		for k := 0; k < len(gateDsts); k++ {
			mode := (rep + k) % len(gateDsts)
			runtime.GC()
			start := time.Now()
			if err := telemetryWorkload(gateRecs[mode]()); err != nil {
				return nil, err
			}
			d := float64(time.Since(start).Microseconds()) / 1000
			ms[mode] = d
			if dst := gateDsts[mode]; *dst == 0 || d < *dst {
				*dst = d
			}
		}
		ratios = append(ratios, ms[1]/ms[0])
	}
	sort.Float64s(ratios)
	mid := ratios[len(ratios)/4 : len(ratios)-len(ratios)/4]
	var sum float64
	for _, r := range mid {
		sum += r
	}
	res.DisabledPct = (sum/float64(len(mid)) - 1) * 100
	for rep := 0; rep < reps; rep++ {
		rec := telemetry.New(telemetry.Options{})
		runtime.GC()
		start := time.Now()
		if err := telemetryWorkload(rec); err != nil {
			return nil, err
		}
		minMS(&res.EnabledMS, time.Since(start))
		res.EventsRecorded = rec.Total()
		res.EventsDropped = rec.Dropped()
		res.Metrics = rec.Metrics().Snapshot()
	}
	return res, nil
}
