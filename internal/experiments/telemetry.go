package experiments

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/accounting"
	"repro/internal/powersig"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

// Telemetry overhead study — the repro analog of the paper's §VI-C
// overhead evaluation. The paper proves E-Android's instrumentation
// cheap by benchmarking stock Android against the framework-only and
// complete configurations; here the instrumentation under test is the
// telemetry subsystem itself, measured in three configurations:
//
//	baseline: no recorder built (call sites take the nil-check path)
//	disabled: recorder built but gated off (one branch per emission)
//	enabled:  full event + metrics recording
//
// Each rep runs the same deterministic workload (the stealth attack
// plus a power-signature detector sampling every virtual second over a
// long horizon — the fleet scaling workload) once per configuration,
// interleaved to decorrelate machine drift, and the study reports the
// minimum wall time per configuration, the standard way to estimate
// overhead floors in the presence of scheduling noise.

// TelemetryOverheadHorizon is the virtual horizon each rep simulates.
// Long enough that a rep's wall time (~15 ms) puts the 1% disabled gate
// well above scheduler/timer noise: the event-dispatch rework cut the
// per-event cost severalfold, so the horizon grew with it to keep the
// same measurement resolution. The detector's 1 Hz samples wrap the
// default event ring several times over, which is deliberate — the
// enabled configuration is charged for the ring's steady-state
// overwrite path, not just the cheaper fill phase.
const TelemetryOverheadHorizon = 32 * time.Hour

// DefaultTelemetryReps is the default repetition count. A multiple of
// three, so the rotating schedule puts every configuration in every
// within-rep position equally often; twelve reps give the min enough
// draws that the gate ratios stop moving with scheduler luck.
const DefaultTelemetryReps = 12

// TelemetryOverheadResult holds the measured floors and the artifacts
// of one enabled run.
type TelemetryOverheadResult struct {
	Reps int
	// BaselineMS, DisabledMS and EnabledMS are min-over-reps wall times.
	BaselineMS float64
	DisabledMS float64
	EnabledMS  float64
	// EventsRecorded and EventsDropped come from the last enabled run.
	EventsRecorded uint64
	EventsDropped  uint64
	// Metrics is the last enabled run's snapshot (deterministic: the
	// workload is seeded and single-threaded).
	Metrics *telemetry.Snapshot
}

// DisabledOverheadPct reports the disabled-recorder overhead vs
// baseline, in percent (negative means lost in the noise).
func (r *TelemetryOverheadResult) DisabledOverheadPct() float64 {
	return overheadPct(r.DisabledMS, r.BaselineMS)
}

// EnabledOverheadPct reports the full-recording overhead vs baseline.
func (r *TelemetryOverheadResult) EnabledOverheadPct() float64 {
	return overheadPct(r.EnabledMS, r.BaselineMS)
}

func overheadPct(v, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (v/base - 1) * 100
}

// Render prints the study like the paper's overhead tables.
func (r *TelemetryOverheadResult) Render() string {
	var b strings.Builder
	b.WriteString("=== Telemetry overhead study (paper §VI-C analog) ===\n")
	fmt.Fprintf(&b, "workload: stealth attack + 1 Hz detector, %v horizon, %d reps (min wall time)\n",
		TelemetryOverheadHorizon, r.Reps)
	fmt.Fprintf(&b, "  baseline (no recorder):  %10.3f ms\n", r.BaselineMS)
	fmt.Fprintf(&b, "  disabled recorder:       %10.3f ms  (%+.2f%%)\n", r.DisabledMS, r.DisabledOverheadPct())
	fmt.Fprintf(&b, "  enabled recorder:        %10.3f ms  (%+.2f%%)\n", r.EnabledMS, r.EnabledOverheadPct())
	fmt.Fprintf(&b, "  events recorded: %d (%d overwritten by the ring)\n", r.EventsRecorded, r.EventsDropped)
	return b.String()
}

// telemetryWorkload runs one rep of the overhead workload with the given
// recorder (nil = baseline).
func telemetryWorkload(rec *telemetry.Recorder) error {
	cfg := worldCfg(accounting.BatteryStats)
	cfg.Telemetry = rec
	w, err := scenario.NewWorld(cfg)
	if err != nil {
		return err
	}
	det, err := powersig.NewDetector(w.Dev.Engine, w.Dev.Meter, w.Dev.Packages, 0)
	if err != nil {
		return err
	}
	det.Start()
	if err := w.ForceScreenOn(); err != nil {
		return err
	}
	if err := w.StealthAutoLaunch(60 * time.Second); err != nil {
		return err
	}
	return w.Dev.Run(TelemetryOverheadHorizon)
}

// TelemetryOverheadStudy measures the telemetry subsystem's cost in the
// three configurations over reps repetitions (0 means
// DefaultTelemetryReps).
func TelemetryOverheadStudy(reps int) (*TelemetryOverheadResult, error) {
	if reps <= 0 {
		reps = DefaultTelemetryReps
	}
	res := &TelemetryOverheadResult{Reps: reps}
	minMS := func(dst *float64, d time.Duration) {
		ms := float64(d.Microseconds()) / 1000
		if *dst == 0 || ms < *dst {
			*dst = ms
		}
	}
	// Noise control, in three layers. (1) One untimed warmup rep settles
	// allocator and cache state. (2) The collector is paused during the
	// timed sections and run explicitly between them: a recorder's live
	// ring (~1.5 MB) shifts the GC pacing target, and with ~20 ms
	// workloads whether a run absorbs one or two collection cycles
	// dwarfs the instrumentation cost being measured. (3) The
	// within-rep order rotates, so any positional advantage (running
	// right after the warmup, or last before the next GC) is spread
	// across all three configurations before the min is taken.
	configs := []struct {
		mk  func() *telemetry.Recorder
		dst *float64
	}{
		{func() *telemetry.Recorder { return nil }, &res.BaselineMS},
		{func() *telemetry.Recorder { return telemetry.New(telemetry.Options{Disabled: true}) }, &res.DisabledMS},
		{func() *telemetry.Recorder { return telemetry.New(telemetry.Options{}) }, &res.EnabledMS},
	}
	gcPct := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(gcPct)
	if err := telemetryWorkload(nil); err != nil {
		return nil, err
	}
	for rep := 0; rep < reps; rep++ {
		for k := 0; k < len(configs); k++ {
			c := configs[(rep+k)%len(configs)]
			rec := c.mk()
			runtime.GC()
			start := time.Now()
			if err := telemetryWorkload(rec); err != nil {
				return nil, err
			}
			minMS(c.dst, time.Since(start))
			if rec.Enabled() {
				res.EventsRecorded = rec.Total()
				res.EventsDropped = rec.Dropped()
				res.Metrics = rec.Metrics().Snapshot()
			}
		}
	}
	return res, nil
}
