package experiments

import (
	"context"

	"repro/internal/corpus"
	"repro/internal/corpus/replay"
)

// ExtCorpusReps is the registry entry's per-cell repetition count.
// Smaller than the committed BENCH_corpus.json artifact's (40): the
// experiment is the interactive view of the corpus — it renders the
// full 16-cell grid with honest intervals in about a second — while
// the artifact run is the one CI gates bind to.
const ExtCorpusReps = 10

// ExtCorpus replays the full generated scenario corpus — every
// (archetype × attack-variant) cell — through the fleet runner with the
// watchdog attached and reports per-cell detection and false-positive
// rates with Wilson 95% confidence intervals.
func ExtCorpus() (*replay.Result, error) {
	return ExtCorpusWith(replay.Options{
		Reps:    ExtCorpusReps,
		Horizon: corpus.MinHorizon,
	})
}

// ExtCorpusWith is ExtCorpus with explicit replay options (the
// benchsuite path uses this with gate-grade reps).
func ExtCorpusWith(opts replay.Options) (*replay.Result, error) {
	return replay.Run(context.Background(), opts)
}
