package experiments

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"repro/internal/accounting"
	"repro/internal/device"
	"repro/internal/obsv"
	"repro/internal/powersig"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

// Watchdog-vs-attacks study: the live detection counterpart of the
// ext-detection experiment. Where ext-detection compares post-hoc
// detectors, this runs the obsv drain-anomaly watchdog *during* each of
// the paper's six attacks (and both benign scenes) and reports what it
// flagged while the scenario was still in flight — the paper's
// esDiagnose loop as a streaming detector. The expected outcome, which
// the tests assert, is a clean separation: every attack raises at least
// one collateral-divergence finding, both benign scenes raise nothing.
// The discriminator is user absence (see the Watchdog doc): benign
// collateral — Message delegating to the camera — always lands in a
// window the user touched, while every attack sustains its drain
// through the quiet windows after the user walks away.

// WatchdogCase is one scenario's outcome.
type WatchdogCase struct {
	Name string
	// Benign marks the two non-attack scenes.
	Benign bool
	// Findings is the watchdog's output, in detection order.
	Findings []obsv.Finding
	// Flagged reports at least one finding.
	Flagged bool
}

// WatchdogStudyResult is the full study.
type WatchdogStudyResult struct {
	Window time.Duration
	Cases  []WatchdogCase
}

// Render prints the detection table.
func (r *WatchdogStudyResult) Render() string {
	var b strings.Builder
	b.WriteString("=== Watchdog study: streaming drain-anomaly detection vs the six attacks ===\n")
	fmt.Fprintf(&b, "rolling window %v; spike gate %gx baseline (warmup %d windows); divergence gate %gx direct\n",
		r.Window, float64(obsv.DefaultSpikeFactor), obsv.DefaultWarmup, float64(obsv.DefaultDivergenceRatio))
	fmt.Fprintf(&b, "%-28s %-8s %-9s %s\n", "scenario", "kind", "flagged", "signals")
	for _, c := range r.Cases {
		kind := "attack"
		if c.Benign {
			kind = "benign"
		}
		flagged := "no"
		if c.Flagged {
			flagged = fmt.Sprintf("yes (%d)", len(c.Findings))
		}
		fmt.Fprintf(&b, "%-28s %-8s %-9s %s\n", c.Name, kind, flagged, signalSummary(c.Findings))
	}
	return b.String()
}

// signalSummary folds findings into "signal xN" terms, sorted.
func signalSummary(fs []obsv.Finding) string {
	if len(fs) == 0 {
		return "-"
	}
	counts := make(map[string]int)
	for _, f := range fs {
		counts[f.Signal]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	terms := make([]string, 0, len(keys))
	for _, k := range keys {
		terms = append(terms, fmt.Sprintf("%s x%d", k, counts[k]))
	}
	return strings.Join(terms, ", ")
}

// watchdogScenarios lists the study's cases in paper order.
func watchdogScenarios() []struct {
	name   string
	benign bool
	run    func(w *scenario.World) error
} {
	return []struct {
		name   string
		benign bool
		run    func(w *scenario.World) error
	}{
		{"scene1-message-film", true, func(w *scenario.World) error { return w.Scene1MessageFilm() }},
		{"scene2-contacts-chain", true, func(w *scenario.World) error { return w.Scene2ContactsChain() }},
		{"attack1-component-hijack", false, func(w *scenario.World) error {
			if err := w.ForceScreenOn(); err != nil {
				return err
			}
			return w.Attack1ComponentHijack(60 * time.Second)
		}},
		{"attack2-background-apps", false, func(w *scenario.World) error {
			if err := w.ForceScreenOn(); err != nil {
				return err
			}
			return w.Attack2BackgroundApps(60 * time.Second)
		}},
		{"attack3-service-pin", false, func(w *scenario.World) error {
			if err := w.ForceScreenOn(); err != nil {
				return err
			}
			return w.Attack3ServicePin(60 * time.Second)
		}},
		{"attack4-interrupt-quit", false, func(w *scenario.World) error {
			return w.Attack4InterruptQuit(60 * time.Second)
		}},
		{"attack5-brightness", false, func(w *scenario.World) error {
			return w.Attack5Brightness(0, 60*time.Second)
		}},
		{"attack6-wakelock-screen", false, func(w *scenario.World) error {
			return w.Attack6WakelockScreen(60 * time.Second)
		}},
	}
}

// WatchdogStudy runs the watchdog over both benign scenes and all six
// attacks.
func WatchdogStudy() (*WatchdogStudyResult, error) {
	res := &WatchdogStudyResult{Window: obsv.DefaultWindow}
	for _, sc := range watchdogScenarios() {
		w, err := scenario.NewWorld(device.Config{
			EAndroid:  true,
			Policy:    accounting.BatteryStats,
			Telemetry: telemetry.New(telemetry.Options{}),
		})
		if err != nil {
			return nil, err
		}
		wd, err := obsv.NewWatchdog(w.Dev, obsv.WatchdogOptions{})
		if err != nil {
			return nil, err
		}
		wd.Start()
		if err := sc.run(w); err != nil {
			return nil, fmt.Errorf("watchdog study %s: %w", sc.name, err)
		}
		findings := wd.Finish()
		res.Cases = append(res.Cases, WatchdogCase{
			Name:     sc.name,
			Benign:   sc.benign,
			Findings: findings,
			Flagged:  len(findings) > 0,
		})
	}
	return res, nil
}

// Obsv overhead study — the cost of this PR's observability plane on
// the telemetry study's workload (stealth attack + 1 Hz detector over a
// long horizon), with a paired measurement protocol for the gate (see
// ObsvOverheadStudy):
//
//	baseline: no recorder, no obsv (the nil-check path)
//	disabled: recorder built gated-off, obsv server built but never
//	          started, no watchdog, no flame sink — the "compiled in,
//	          turned off" path every uninstrumented run pays
//	enabled:  enabled recorder + started watchdog + flame collector
//
// The hard gate rides on the disabled configuration: the observability
// plane must cost ≤1% when it is off.

// ObsvOverheadHorizon is the virtual horizon each rep simulates (the
// telemetry study's, for comparable per-rep wall times).
const ObsvOverheadHorizon = 32 * time.Hour

// DefaultObsvReps is the default repetition count; the gate pair gets
// five paired draws per rep.
const DefaultObsvReps = 12

// ObsvOverheadResult holds the measured floors plus the artifacts of
// the last enabled run.
type ObsvOverheadResult struct {
	Reps       int
	BaselineMS float64
	DisabledMS float64
	EnabledMS  float64
	// DisabledPct is the gate statistic: the interquartile mean over
	// back-to-back (baseline, disabled) pairs of the pair's wall-time
	// ratio, minus one, in percent. Pairing cancels the slow machine
	// drift that a min-over-reps comparison of two near-identical
	// workloads cannot — a 1% gate needs the estimator's noise well
	// under 1%.
	DisabledPct float64
	// Findings and FlameStacks come from the last enabled run
	// (deterministic: seeded, single-threaded).
	Findings    int
	FlameStacks int
}

// DisabledOverheadPct is the obsv-off overhead vs baseline, percent
// (the paired interquartile-mean statistic, not the ratio of the min
// wall times).
func (r *ObsvOverheadResult) DisabledOverheadPct() float64 { return r.DisabledPct }

// EnabledOverheadPct is the full live-observability overhead vs
// baseline, percent.
func (r *ObsvOverheadResult) EnabledOverheadPct() float64 {
	return overheadPct(r.EnabledMS, r.BaselineMS)
}

// Render prints the study.
func (r *ObsvOverheadResult) Render() string {
	var b strings.Builder
	b.WriteString("=== Observability overhead study ===\n")
	fmt.Fprintf(&b, "workload: stealth attack + 1 Hz detector, %v horizon, %d reps (paired gate; min wall times)\n",
		ObsvOverheadHorizon, r.Reps)
	fmt.Fprintf(&b, "  baseline (no obsv):        %10.3f ms\n", r.BaselineMS)
	fmt.Fprintf(&b, "  obsv off (server unused):  %10.3f ms  (%+.2f%%)\n", r.DisabledMS, r.DisabledOverheadPct())
	fmt.Fprintf(&b, "  obsv on (watchdog+flame):  %10.3f ms  (%+.2f%%)\n", r.EnabledMS, r.EnabledOverheadPct())
	fmt.Fprintf(&b, "  last enabled run: %d findings, %d flame stacks\n", r.Findings, r.FlameStacks)
	return b.String()
}

// obsvWorkload runs one rep. mode: 0 baseline, 1 disabled, 2 enabled.
func obsvWorkload(mode int, res *ObsvOverheadResult) error {
	cfg := worldCfg(accounting.BatteryStats)
	var srv *obsv.Server
	switch mode {
	case 1:
		cfg.Telemetry = telemetry.New(telemetry.Options{Disabled: true})
		srv = obsv.NewServer() // built, never started: the off path
	case 2:
		cfg.Telemetry = telemetry.New(telemetry.Options{})
	}
	w, err := scenario.NewWorld(cfg)
	if err != nil {
		return err
	}
	var wd *obsv.Watchdog
	var fc *obsv.FlameCollector
	if mode == 2 {
		if wd, err = obsv.NewWatchdog(w.Dev, obsv.WatchdogOptions{}); err != nil {
			return err
		}
		wd.Start()
		fc = obsv.AttachFlame(w.Dev)
	}
	det, err := powersig.NewDetector(w.Dev.Engine, w.Dev.Meter, w.Dev.Packages, 0)
	if err != nil {
		return err
	}
	det.Start()
	if err := w.ForceScreenOn(); err != nil {
		return err
	}
	if err := w.StealthAutoLaunch(60 * time.Second); err != nil {
		return err
	}
	if err := w.Dev.Run(ObsvOverheadHorizon); err != nil {
		return err
	}
	if mode == 2 {
		res.Findings = len(wd.Finish())
		res.FlameStacks = len(fc.Fold().Stacks)
	}
	_ = srv
	return nil
}

// ObsvOverheadStudy measures the observability plane's cost over reps
// repetitions (0 means DefaultObsvReps).
//
// Unlike the telemetry study's three-way rotation, the gate pair
// (baseline vs disabled) is timed first, in adjacent alternating pairs,
// and the enabled configuration only afterwards: the enabled runs are
// allocation-heavy enough (full interval materialization for the flame
// sink) that interleaving them perturbs whichever mode runs next, and a
// 1% gate cannot absorb that.
func ObsvOverheadStudy(reps int) (*ObsvOverheadResult, error) {
	if reps <= 0 {
		reps = DefaultObsvReps
	}
	res := &ObsvOverheadResult{Reps: reps}
	minMS := func(dst *float64, d time.Duration) {
		ms := float64(d.Microseconds()) / 1000
		if *dst == 0 || ms < *dst {
			*dst = ms
		}
	}
	gcPct := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(gcPct)
	if err := obsvWorkload(0, res); err != nil { // untimed warmup
		return nil, err
	}
	// The gate pair gets five draws per rep, alternating which mode
	// runs first inside each pair so any run-after penalty cancels.
	gateDsts := []*float64{&res.BaselineMS, &res.DisabledMS}
	ratios := make([]float64, 0, 5*reps)
	for rep := 0; rep < 5*reps; rep++ {
		var ms [2]float64
		for k := 0; k < len(gateDsts); k++ {
			mode := (rep + k) % len(gateDsts)
			runtime.GC()
			start := time.Now()
			if err := obsvWorkload(mode, res); err != nil {
				return nil, err
			}
			d := float64(time.Since(start).Microseconds()) / 1000
			ms[mode] = d
			if dst := gateDsts[mode]; *dst == 0 || d < *dst {
				*dst = d
			}
		}
		ratios = append(ratios, ms[1]/ms[0])
	}
	sort.Float64s(ratios)
	mid := ratios[len(ratios)/4 : len(ratios)-len(ratios)/4]
	var sum float64
	for _, r := range mid {
		sum += r
	}
	res.DisabledPct = (sum/float64(len(mid)) - 1) * 100
	for rep := 0; rep < reps; rep++ {
		runtime.GC()
		start := time.Now()
		if err := obsvWorkload(2, res); err != nil {
			return nil, err
		}
		minMS(&res.EnabledMS, time.Since(start))
	}
	return res, nil
}
