package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/accounting"
	"repro/internal/app"
	"repro/internal/device"
	"repro/internal/display"
	"repro/internal/intent"
	"repro/internal/scenario"
)

// DrainPoint is one sample of a depletion curve.
type DrainPoint struct {
	Hours   float64
	Percent int
}

// DrainCurve is one configuration's battery-percentage-over-time series.
type DrainCurve struct {
	Name   string
	Points []DrainPoint // from 99% down to 0%
}

// HoursToDead reports the time the battery died (the last point).
func (c DrainCurve) HoursToDead() float64 {
	if len(c.Points) == 0 {
		return math.NaN()
	}
	return c.Points[len(c.Points)-1].Hours
}

// Fig3Result holds the five depletion curves of Figure 3.
type Fig3Result struct {
	Curves []DrainCurve
}

// Render prints the per-curve time-to-dead summary and a decile table,
// the same series the paper plots.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	b.WriteString("=== Figure 3: difference of time lapsed to drain the battery ===\n")
	b.WriteString("(screen forced on by wakelock in every configuration)\n\n")
	for _, c := range r.Curves {
		fmt.Fprintf(&b, "%-16s battery dead after %5.1f h\n", c.Name, c.HoursToDead())
	}
	b.WriteString("\nbattery %  ")
	for _, c := range r.Curves {
		fmt.Fprintf(&b, "%16s", c.Name)
	}
	b.WriteString("\n")
	for pct := 90; pct >= 0; pct -= 10 {
		fmt.Fprintf(&b, "%8d%%  ", pct)
		for _, c := range r.Curves {
			h := math.NaN()
			for _, p := range c.Points {
				if p.Percent == pct {
					h = p.Hours
					break
				}
			}
			fmt.Fprintf(&b, "%14.1fh ", h)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// DrainConfigs lists the five Figure 3 configurations in legend order.
func DrainConfigs() []string {
	return []string{"bind_service", "brightness_10", "brightness_full", "brightness_low", "interrupt_app"}
}

// Fig3 sweeps the five configurations until the battery dies, recording
// the elapsed time at every one-percent step, exactly as the paper
// "record[s] the time until the battery is dead" for each percentage.
func Fig3() (*Fig3Result, error) {
	return Fig3WithStep(30 * time.Second)
}

// Fig3WithStep is Fig3 with a configurable sampling step (tests use a
// coarser step for speed).
func Fig3WithStep(step time.Duration) (*Fig3Result, error) {
	if step <= 0 {
		return nil, fmt.Errorf("experiments: non-positive step %v", step)
	}
	res := &Fig3Result{}
	for _, name := range DrainConfigs() {
		curve, err := drainCurve(name, step)
		if err != nil {
			return nil, fmt.Errorf("experiments: drain %s: %w", name, err)
		}
		res.Curves = append(res.Curves, curve)
	}
	return res, nil
}

// applyDrainConfig arms one Figure 3 configuration on a populated
// world: screen forced on by wakelock, then the config's brightness or
// attack. Shared by the serial sweep and the fleet-backed variants.
func applyDrainConfig(w *scenario.World, name string) error {
	dev := w.Dev
	// Every configuration forces the screen on via a wakelock, per the
	// paper's setup.
	if err := w.ForceScreenOn(); err != nil {
		return err
	}
	setBrightness := func(level int) error {
		return dev.Display.SetBrightness(app.UIDSystem, display.SourceSystemUI, level)
	}
	switch name {
	case "brightness_low":
		return setBrightness(0)
	case "brightness_10":
		return setBrightness(10)
	case "brightness_full":
		return setBrightness(255)
	case "bind_service":
		if err := setBrightness(0); err != nil {
			return err
		}
		_, err := dev.Services.Bind(intent.Intent{
			Sender:    w.Malware.UID,
			Component: scenario.PkgVictim + "/Work",
		})
		return err
	case "interrupt_app":
		if err := setBrightness(0); err != nil {
			return err
		}
		if _, err := dev.Activities.UserStartApp(scenario.PkgVictim); err != nil {
			return err
		}
		// Malware forces the victim into the background, where it keeps
		// draining its residual share.
		dev.Activities.Home(w.Malware.UID)
		return nil
	}
	return fmt.Errorf("unknown drain config %q", name)
}

func drainCurve(name string, step time.Duration) (DrainCurve, error) {
	w, err := scenario.NewWorld(device.Config{Policy: accounting.BatteryStats})
	if err != nil {
		return DrainCurve{}, err
	}
	return drainCurveOn(w, name, step)
}

// drainCurveOn runs one depletion sweep on an already-built world.
func drainCurveOn(w *scenario.World, name string, step time.Duration) (DrainCurve, error) {
	dev := w.Dev
	if err := applyDrainConfig(w, name); err != nil {
		return DrainCurve{}, err
	}

	curve := DrainCurve{Name: name}
	lastPct := 100
	// Guard: no configuration should outlive a week of simulated time.
	const maxHours = 24 * 7
	for !dev.Battery.Dead() {
		if err := dev.Run(step); err != nil {
			return DrainCurve{}, err
		}
		dev.Flush()
		pct := int(dev.Battery.Percent())
		for lastPct > pct {
			lastPct--
			curve.Points = append(curve.Points, DrainPoint{
				Hours:   dev.Engine.Now().Hours(),
				Percent: lastPct,
			})
		}
		if dev.Engine.Now().Hours() > maxHours {
			return DrainCurve{}, fmt.Errorf("battery still alive after %v hours", maxHours)
		}
	}
	return curve, nil
}
