// Package serveutil is the one place the CLIs wire up the -serve
// observability plane. Every command used to repeat the same tail —
// build an obsv.Server, start it, print the banner, shut down on error
// or await Ctrl-C — and the jobs control plane would have made a fifth
// copy. Instead each command parses its flags into an Options and the
// shared Start/Finish pair does the rest, so "-serve" (and now
// "-serve-jobs") behaves identically everywhere.
package serveutil

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/jobs"
	"repro/internal/obsv"
)

// Options configures one command's serve plane.
type Options struct {
	// Addr is the -serve listen address; empty means no plane.
	Addr string
	// Name is the command name, used in the startup banner.
	Name string
	// Jobs mounts the jobs control plane (-serve-jobs) on the same mux.
	Jobs bool
	// JobsOptions configures the manager when Jobs is set.
	JobsOptions jobs.Options
	// Banner receives the startup line (defaults to stderr in the
	// commands; tests pass io.Discard).
	Banner io.Writer
}

// Plane is a running observability plane: the obsv server plus, when
// enabled, the jobs manager attached to it.
type Plane struct {
	// Server is the running obsv server.
	Server *obsv.Server
	// Manager is the jobs control plane; nil unless Options.Jobs.
	Manager *jobs.Manager
	// Addr is the bound listen address (useful with ":0").
	Addr string
}

// Start boots the plane described by opts. A nil Plane (and nil error)
// means opts.Addr was empty and the command runs unserved; callers pass
// the nil Plane straight to Finish, which then just forwards the run
// error. Jobs without an Addr is an error: the control plane is an HTTP
// surface, it cannot exist unserved.
func Start(opts Options) (*Plane, error) {
	if opts.Addr == "" {
		if opts.Jobs {
			return nil, fmt.Errorf("%s: -serve-jobs requires -serve ADDR", opts.Name)
		}
		return nil, nil
	}
	srv := obsv.NewServer()
	p := &Plane{Server: srv}
	if opts.Jobs {
		p.Manager = jobs.NewManager(opts.JobsOptions)
		jobs.Attach(srv, p.Manager)
	}
	bound, err := srv.Start(opts.Addr)
	if err != nil {
		if p.Manager != nil {
			p.Manager.Close()
		}
		return nil, err
	}
	p.Addr = bound
	if opts.Banner != nil {
		endpoints := "/metrics, /flame, /watchdog, /trace, /debug/pprof/"
		if opts.Jobs {
			endpoints += ", /jobs"
		}
		fmt.Fprintf(opts.Banner, "%s: serving http://%s (%s)\n", opts.Name, bound, endpoints)
	}
	return p, nil
}

// Finish is the common CLI tail. On a nil plane it forwards runErr. On
// a run error it tears the plane down quickly and forwards the error;
// on success it blocks until Ctrl-C (or stop closes) and shuts down
// cleanly. The jobs manager, when present, is closed by the server's
// shutdown hooks either way.
func (p *Plane) Finish(runErr error, stop <-chan struct{}) error {
	if p == nil {
		return runErr
	}
	if runErr != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = p.Server.Shutdown(ctx)
		return runErr
	}
	return p.Server.AwaitShutdown(stop)
}
