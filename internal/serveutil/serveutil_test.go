package serveutil

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/jobs"
)

func TestNoAddrMeansNoPlane(t *testing.T) {
	p, err := Start(Options{Name: "x"})
	if err != nil || p != nil {
		t.Fatalf("Start with no addr = %v, %v; want nil, nil", p, err)
	}
	// Finish on a nil plane forwards the run error untouched.
	if err := p.Finish(nil, nil); err != nil {
		t.Fatalf("nil plane Finish = %v", err)
	}
}

func TestJobsRequireAddr(t *testing.T) {
	if _, err := Start(Options{Name: "x", Jobs: true}); err == nil {
		t.Fatal("-serve-jobs without -serve accepted")
	}
}

func TestJobsPlaneServes(t *testing.T) {
	p, err := Start(Options{Addr: "127.0.0.1:0", Name: "x", Jobs: true, Banner: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	if p.Manager == nil {
		t.Fatal("Jobs plane has no manager")
	}
	// The jobs API and the metrics merge are both live on the one mux.
	resp, err := http.Get("http://" + p.Addr + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs: HTTP %d", resp.StatusCode)
	}
	resp, err = http.Get("http://" + p.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "jobs_submitted") {
		t.Fatalf("/metrics missing jobs counters:\n%s", b)
	}

	stop := make(chan struct{})
	close(stop)
	if err := p.Finish(nil, stop); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	// The shutdown hook closed the manager: further submissions fail.
	if _, err := p.Manager.Submit(jobs.Spec{Kind: jobs.KindScenario,
		Cell: "idle-mostly/benign"}); err != jobs.ErrClosed {
		t.Fatalf("Submit after Finish = %v, want ErrClosed", err)
	}
}
