package sim

import (
	"testing"
	"time"
)

// TestEngineEdgeCases is the table-driven sweep of the kernel's corner
// semantics: each case scripts an engine and checks the invariant the
// rest of the stack relies on.
func TestEngineEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{
			// A ticker stopped from inside its own callback must not
			// re-arm, and its cancelled pending event must not count as
			// live work.
			name: "ticker stop from inside own callback",
			run: func(t *testing.T) {
				e := NewEngine(1)
				n := 0
				var tk *Ticker
				tk = e.Every(time.Second, "tick", func() {
					n++
					tk.Stop()
				})
				if err := e.RunUntil(10 * Second); err != nil {
					t.Fatal(err)
				}
				if n != 1 {
					t.Fatalf("ticks = %d, want 1", n)
				}
				if got := e.Pending(); got != 0 {
					t.Fatalf("Pending() = %d, want 0 after in-callback stop", got)
				}
			},
		},
		{
			// Cancelling an event that already fired is a no-op: no
			// panic, no heap corruption, later events unaffected.
			name: "cancel of an already-fired event",
			run: func(t *testing.T) {
				e := NewEngine(1)
				fired := 0
				ev := e.Schedule(Second, "first", func() { fired++ })
				if !e.Step() {
					t.Fatal("Step() found no event")
				}
				ev.Cancel()
				ev.Cancel() // double-cancel must also be safe
				e.Schedule(2*Second, "second", func() { fired++ })
				if err := e.Drain(4); err != nil {
					t.Fatal(err)
				}
				if fired != 2 {
					t.Fatalf("fired = %d, want 2", fired)
				}
			},
		},
		{
			// Drain empties the queue completely; Pending must read 0
			// and another Drain must be an immediate no-op.
			name: "pending after drain",
			run: func(t *testing.T) {
				e := NewEngine(1)
				for i := 1; i <= 5; i++ {
					e.Schedule(Time(i)*Second, "x", func() {})
				}
				e.Schedule(6*Second, "cancelled", func() {}).Cancel()
				if err := e.Drain(10); err != nil {
					t.Fatal(err)
				}
				if got := e.Pending(); got != 0 {
					t.Fatalf("Pending() = %d, want 0", got)
				}
				if err := e.Drain(10); err != nil {
					t.Fatalf("second Drain err = %v", err)
				}
				if e.Now() != 5*Second {
					t.Fatalf("Now() = %v, want 5s (cancelled tail must not advance the clock)", e.Now())
				}
			},
		},
		{
			// An event scheduled exactly at the horizon fires within
			// RunUntil(horizon): the horizon is inclusive, and the
			// clock lands exactly on it either way.
			name: "schedule exactly at the horizon",
			run: func(t *testing.T) {
				e := NewEngine(1)
				fired := false
				e.Schedule(5*Second, "at-horizon", func() { fired = true })
				if err := e.RunUntil(5 * Second); err != nil {
					t.Fatal(err)
				}
				if !fired {
					t.Fatal("event at the horizon did not fire")
				}
				if e.Now() != 5*Second {
					t.Fatalf("Now() = %v, want 5s", e.Now())
				}
				// One tick past the horizon must stay queued.
				stayed := false
				e.Schedule(5*Second+1, "past", func() { stayed = true })
				if err := e.RunUntil(5 * Second); err != nil {
					t.Fatal(err)
				}
				if stayed {
					t.Fatal("event past the horizon fired early")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { tc.run(t) })
	}
}
