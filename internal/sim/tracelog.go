package sim

// TraceRecord is one kernel event firing captured by the engine's
// inline trace log: the virtual time, the event name, the queue depth
// after the pop, and the record's position in the owning recorder's
// global emission sequence (used to interleave kernel firings with
// telemetry records of other kinds when exporting).
type TraceRecord struct {
	T     Time
	Name  string
	Seq   uint64
	Depth int32
}

// TraceLog is a fixed-capacity ring of kernel event firings plus the
// scheduler gauges that ride along (queue depth after the last pop and
// its high-water mark). The engine fills it inline from dispatch — a
// handful of plain stores on a hot cache line instead of an indirect
// tracer callback into the telemetry layer — which is what keeps the
// telemetry enabled-overhead gate honest now that the dispatch loop
// itself is cheap. A TraceLog is single-goroutine, like the engine
// that fills it.
//
// Buf may be nil (counting-only mode: Total and the depth gauges stay
// live, no events are retained). Seq is the shared emission sequence:
// the owning telemetry recorder bumps it for every non-kernel record
// too, so merging the two rings by Seq reproduces the exact global
// recording order.
type TraceLog struct {
	Buf      []TraceRecord
	W        int    // next ring slot to write; wraps at len(Buf)
	Total    uint64 // kernel events ever logged
	Seq      uint64 // shared emission sequence (see doc)
	Depth    int32  // queue depth after the most recent pop
	MaxDepth int32
}

// Log appends one kernel event firing. Small and branch-light on
// purpose: the engine calls it once per dispatched event, and it must
// inline there.
func (tl *TraceLog) Log(t Time, name string, depth int) {
	tl.Total++
	tl.Seq++
	d := int32(depth)
	tl.Depth = d
	if d > tl.MaxDepth {
		tl.MaxDepth = d
	}
	if len(tl.Buf) == 0 {
		return
	}
	rec := &tl.Buf[tl.W]
	rec.T = t
	rec.Name = name
	rec.Seq = tl.Seq
	rec.Depth = d
	tl.W++
	if tl.W == len(tl.Buf) {
		tl.W = 0
	}
}

// Dropped reports how many logged firings the ring has overwritten.
func (tl *TraceLog) Dropped() uint64 {
	if n := uint64(len(tl.Buf)); tl.Total > n {
		return tl.Total - n
	}
	return 0
}

// Records returns the retained firings, oldest first. The slice is a
// copy.
func (tl *TraceLog) Records() []TraceRecord {
	if len(tl.Buf) == 0 || tl.Total == 0 {
		return nil
	}
	if tl.Total <= uint64(len(tl.Buf)) {
		out := make([]TraceRecord, tl.Total)
		copy(out, tl.Buf[:tl.Total])
		return out
	}
	out := make([]TraceRecord, 0, len(tl.Buf))
	out = append(out, tl.Buf[tl.W:]...) // tl.W is the oldest slot once wrapped
	out = append(out, tl.Buf[:tl.W]...)
	return out
}

// SetTraceLog installs (or, with nil, removes) the engine's inline
// trace log. Unlike Trace callbacks, the log is filled with plain
// stores inside dispatch itself; use it for high-volume recording and
// reserve Trace for callbacks that need to run per event.
func (e *Engine) SetTraceLog(tl *TraceLog) { e.tlog = tl }
