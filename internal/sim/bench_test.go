package sim

import (
	"testing"
	"time"
)

// Schedule/cancel are the timing wheel's O(1) claims; these pin them
// (and their zero-alloc steady state) against the benchsuite gate. The
// mixed-horizon benchmark spreads events over all wheel levels so slot
// placement, not just the level-0 fast path, is what's measured.

func BenchmarkSchedule(b *testing.B) {
	e := NewEngine(1)
	delays := [...]Duration{
		Duration(500 * time.Millisecond), // level 0
		Duration(90 * time.Second),       // level 1
		Duration(6 * time.Hour),          // level 2
		Duration(30 * 24 * time.Hour),    // level 3
	}
	hs := make([]Handle, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(hs) == cap(hs) {
			// Drain in bulk so the wheel never grows unboundedly; the
			// cancels are costed against the Cancel benchmark below.
			b.StopTimer()
			for _, h := range hs {
				h.Cancel()
			}
			hs = hs[:0]
			b.StartTimer()
		}
		hs = append(hs, e.Schedule(e.Now().Add(delays[i&3]), "ev", func() {}))
	}
}

func BenchmarkCancel(b *testing.B) {
	e := NewEngine(1)
	delays := [...]Duration{
		Duration(500 * time.Millisecond),
		Duration(90 * time.Second),
		Duration(6 * time.Hour),
		Duration(30 * 24 * time.Hour),
	}
	hs := make([]Handle, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(hs) {
		b.StopTimer()
		hs = hs[:0]
		n := cap(hs)
		if rem := b.N - i; rem < n {
			n = rem
		}
		if n == 0 {
			break
		}
		for j := 0; j < n; j++ {
			hs = append(hs, e.Schedule(e.Now().Add(delays[j&3]), "ev", func() {}))
		}
		b.StartTimer()
		for _, h := range hs {
			h.Cancel()
		}
	}
}
