package sim

import "math/bits"

// This file implements the engine's hierarchical timing wheel — the
// replacement for the former container/heap event queue. Most sim
// events are short-horizon timers (meter flush ticks, screen timeouts,
// WiFi tails, ticker re-arms), so schedule and cancel are O(1) array
// ops instead of O(log n) sift operations, and cancel reclaims the
// event's slot immediately instead of leaving a tombstone to be popped
// later.
//
// Layout. Virtual time is bucketed into granules of 2^granuleBits ns
// (~16.8 ms). Four levels of 256 slots each cover spans of ~4.3 s,
// ~18.3 min, ~3.3 days and ~2.3 years; anything further out sits in an
// unordered overflow list that is re-dealt into the wheel when the
// cursor finally gets there. Placement is window-aligned, Linux-timer
// style: an event goes to the lowest level L whose level-(L+1) granule
// prefix matches the cursor's, i.e. level 0 holds only events inside
// the cursor's current level-1 window, level 1 only events inside the
// current level-2 window, and so on. Aligned windows make every slot
// single-granule (no same-slot collisions between a near and a
// far-future event), which is what keeps the find-next-event scan a
// pure bitmap walk.
//
// Determinism. Events of the cursor's current granule live in `batch`,
// sorted by (at, seq) — the exact total order the heap used to give.
// Refill moves one slot's events into the batch and insertion-sorts
// them; an event scheduled mid-dispatch into the current granule is
// binary-inserted into the undispatched tail. Dispatch order is
// therefore byte-for-byte identical to the heap's, which is what keeps
// every determinism golden (fleet summary, flame, corpus cells) intact.
// See DESIGN.md, "Timing-wheel determinism".

const (
	// granuleBits trades dispatch-order resolution the wheel does NOT
	// need (the batch re-sorts by exact (at, seq)) for placement reach:
	// at 2^24 ns the level-0 window spans ~4.3 s, so the workhorse
	// timers — 1 Hz meter flushes, detector samples, ticker re-arms —
	// file directly into a level-0 slot and never pay a cascade.
	granuleBits = 24 // 2^24 ns ≈ 16.8 ms per granule
	slotBits    = 8
	wheelSlots  = 1 << slotBits // 256
	slotMask    = wheelSlots - 1
	wheelLevels = 4

	// Event location sentinels for Event.slot; non-negative values
	// encode level<<slotBits | slotIndex.
	locFree     = -1 // not queued (free, fired, or cancelled)
	locBatch    = -2 // in the current-granule dispatch batch
	locOverflow = -3 // in the overflow list (beyond the level-3 window)
)

// granuleOf buckets a timestamp. Time is non-negative by construction
// (the clock starts at 0 and only moves forward).
func granuleOf(t Time) uint64 { return uint64(t) >> granuleBits }

// wheel is the event store. It is pool-recyclable: a fleet worker
// running devices sequentially hands the finished device's wheel back
// to the shared EventPool (Engine.Recycle) so the next device starts
// with warm slot arrays instead of growing fresh ones.
type wheel struct {
	// cur is the granule of the batch, i.e. the search floor. It lags
	// granuleOf(now) after a horizon jump over empty time; placement
	// and scanning stay correct with a stale cursor, just one cascade
	// less eager.
	cur uint64
	// live counts scheduled, not-yet-fired, not-cancelled events.
	// QueueLen and Pending both report it.
	live int

	// batch holds the current granule's events sorted by (at, seq);
	// entries before batchIdx already fired. Cancelled batch entries
	// stay in place (marked) and are skipped and reclaimed at pop.
	batch    []*Event
	batchIdx int

	slots    [wheelLevels][wheelSlots][]*Event
	occ      [wheelLevels][wheelSlots / 64]uint64
	overflow []*Event
}

// slotSeedCap is the initial per-slot arena capacity. All 1024 slot
// arenas are carved out of one backing array at construction, so
// schedule/cancel is zero-alloc from the first event — without it, a
// ticker walking the wheel would pay one slice-growth allocation per
// previously untouched slot. A slot that ever exceeds the seed capacity
// grows its own array and keeps it (arenas persist across pool reuse).
const slotSeedCap = 4

func newWheel() *wheel {
	w := &wheel{}
	backing := make([]*Event, wheelLevels*wheelSlots*slotSeedCap)
	for l := 0; l < wheelLevels; l++ {
		for s := 0; s < wheelSlots; s++ {
			i := (l*wheelSlots + s) * slotSeedCap
			w.slots[l][s] = backing[i : i : i+slotSeedCap]
		}
	}
	w.batch = make([]*Event, 0, 16)
	return w
}

// place files ev into the batch, a wheel slot, or the overflow list.
// The caller has already initialized at/seq/name/fn.
//
// The batch takes every event at or before the cursor's granule, not
// just the cursor's own: refill probes ahead of now to find the next
// event (leaving the cursor at that event's granule), so a later
// Schedule may legally target an earlier granule. Filing it relative
// to the advanced cursor would drop it in a slot behind the scan
// position — silently delaying it a whole wheel revolution — whereas
// the sorted batch dispatches it in exact (at, seq) order.
func (w *wheel) place(ev *Event) {
	g := granuleOf(ev.at)
	if g <= w.cur {
		w.insertBatch(ev)
		return
	}
	for l := 0; l < wheelLevels; l++ {
		shift := uint((l + 1) * slotBits)
		if g>>shift == w.cur>>shift {
			w.pushSlot(l, int((g>>(uint(l)*slotBits))&slotMask), ev)
			return
		}
	}
	ev.slot, ev.pos = locOverflow, int32(len(w.overflow))
	w.overflow = append(w.overflow, ev)
}

// insertBatch binary-inserts ev into the undispatched tail of the
// batch, keeping it sorted by (at, seq). This is the mid-dispatch
// same-granule path (self-rescheduling sub-millisecond timers); the
// tail is almost always empty or length one.
func (w *wheel) insertBatch(ev *Event) {
	ev.slot, ev.pos = locBatch, -1
	b := w.batch
	lo, hi := w.batchIdx, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid].at < ev.at || (b[mid].at == ev.at && b[mid].seq < ev.seq) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	b = append(b, nil)
	copy(b[lo+1:], b[lo:])
	b[lo] = ev
	w.batch = b
}

func (w *wheel) pushSlot(l, idx int, ev *Event) {
	s := &w.slots[l][idx]
	ev.slot, ev.pos = int32(l<<slotBits|idx), int32(len(*s))
	*s = append(*s, ev)
	w.occ[l][idx>>6] |= 1 << uint(idx&63)
}

// remove unlinks a wheel- or overflow-resident event in O(1) by
// swap-delete. Batch-resident and unqueued events return false (the
// batch keeps dispatch indices stable; cancellation marks those
// instead).
func (w *wheel) remove(ev *Event) bool {
	switch ev.slot {
	case locFree, locBatch:
		return false
	case locOverflow:
		last := len(w.overflow) - 1
		moved := w.overflow[last]
		w.overflow[ev.pos] = moved
		moved.pos = ev.pos
		w.overflow[last] = nil
		w.overflow = w.overflow[:last]
	default:
		l, idx := int(ev.slot)>>slotBits, int(ev.slot)&slotMask
		s := &w.slots[l][idx]
		last := len(*s) - 1
		moved := (*s)[last]
		(*s)[ev.pos] = moved
		moved.pos = ev.pos
		(*s)[last] = nil
		*s = (*s)[:last]
		if last == 0 {
			w.occ[l][idx>>6] &^= 1 << uint(idx&63)
		}
	}
	ev.slot, ev.pos = locFree, -1
	return true
}

// pop returns the next live event in (at, seq) order, or nil when the
// wheel is empty. Cancelled batch entries encountered on the way are
// reclaimed into p.
func (w *wheel) pop(p *EventPool) *Event {
	return w.popUntil(maxTime, p)
}

const maxTime = Time(1<<63 - 1)

// popUntil is pop with an inclusive horizon: an event past the horizon
// stays queued and nil is returned. Fusing the horizon check into the
// pop saves the run loop a separate peek scan per event — the refill
// work a bounded scan does before discovering the next event is beyond
// the horizon is kept (the event just sits in the batch), so nothing is
// scanned twice.
func (w *wheel) popUntil(horizon Time, p *EventPool) *Event {
	for {
		for w.batchIdx < len(w.batch) {
			ev := w.batch[w.batchIdx]
			if ev.canceled {
				w.batchIdx++
				ev.slot = locFree
				p.put(ev) // live was decremented at Cancel time
				continue
			}
			if ev.at > horizon {
				return nil
			}
			w.batchIdx++
			ev.slot = locFree
			w.live--
			return ev
		}
		w.batch = w.batch[:0]
		w.batchIdx = 0
		if !w.refillOnce() {
			return nil
		}
	}
}

// refillOnce makes one unit of progress toward filling the batch:
// drain the next non-empty level-0 slot into the batch, cascade one
// higher-level slot down, or re-deal the overflow list. It returns
// false only when no events remain anywhere. Callers loop, re-checking
// the batch between steps (a cascade may land events directly in it).
func (w *wheel) refillOnce() bool {
	// Level 0: the next non-empty slot inside the current level-1
	// window becomes the new batch wholesale (every event in a level-0
	// slot shares one granule, by window alignment).
	if s, ok := w.scan(0, int(w.cur&slotMask)+1); ok {
		w.cur = w.cur&^uint64(slotMask) | uint64(s)
		// Swap arenas instead of copying: the empty batch becomes the
		// slot's next arena and the drained slot becomes the batch.
		// Stale pointers past the arenas' lengths are not nil-ed —
		// every event outlives the run inside the pool anyway, and the
		// write barriers were measurable at fleet scale.
		sl := w.slots[0][s]
		w.slots[0][s] = w.batch[:0]
		w.batch = sl
		for _, ev := range sl {
			ev.slot = locBatch
		}
		w.occ[0][s>>6] &^= 1 << uint(s&63)
		w.sortBatch()
		return true
	}
	// Levels 1..3: jump the cursor to the start of the next occupied
	// window and re-deal that slot's events down a level (or into the
	// batch, for the window's first granule).
	for l := 1; l < wheelLevels; l++ {
		cl := w.cur >> (uint(l) * slotBits)
		if s, ok := w.scan(l, int(cl&slotMask)+1); ok {
			w.cur = (cl&^uint64(slotMask) | uint64(s)) << (uint(l) * slotBits)
			w.cascade(l, s)
			return true
		}
	}
	if len(w.overflow) > 0 {
		// Everything within the level-3 window is drained; jump to the
		// earliest overflow event and re-deal the whole list. Events
		// still beyond the (new) window simply return to overflow.
		min := w.overflow[0].at
		for _, ev := range w.overflow[1:] {
			if ev.at < min {
				min = ev.at
			}
		}
		w.cur = granuleOf(min)
		list := w.overflow
		w.overflow = nil
		for i, ev := range list {
			list[i] = nil
			w.place(ev)
		}
		if w.overflow == nil {
			w.overflow = list[:0] // keep the arena when nothing bounced back
		}
		return true
	}
	return false
}

// cascade drains slot (l, s) and re-places its events under the
// (already advanced) cursor; window alignment guarantees they all land
// at levels below l or in the batch, so progress is strictly downward.
func (w *wheel) cascade(l, s int) {
	sl := w.slots[l][s]
	w.slots[l][s] = sl[:0]
	w.occ[l][s>>6] &^= 1 << uint(s&63)
	for _, ev := range sl {
		w.place(ev)
	}
}

// scan returns the first occupied slot index >= from at level l.
func (w *wheel) scan(l, from int) (int, bool) {
	if from >= wheelSlots {
		return 0, false
	}
	word := from >> 6
	b := w.occ[l][word] &^ (1<<uint(from&63) - 1)
	for {
		if b != 0 {
			return word<<6 + bits.TrailingZeros64(b), true
		}
		word++
		if word >= wheelSlots/64 {
			return 0, false
		}
		b = w.occ[l][word]
	}
}

// sortBatch orders the freshly drained batch by (at, seq). Batches are
// tiny (usually one event), so insertion sort beats the generic sorts
// and allocates nothing.
func (w *wheel) sortBatch() {
	b := w.batch
	for i := 1; i < len(b); i++ {
		ev := b[i]
		j := i - 1
		for j >= 0 && (b[j].at > ev.at || (b[j].at == ev.at && b[j].seq > ev.seq)) {
			b[j+1] = b[j]
			j--
		}
		b[j+1] = ev
	}
}

// peekMin returns the timestamp of the next live event without
// mutating the wheel. The first non-empty tier in (batch, level 0,
// level 1, ..., overflow) order holds the global minimum: window
// alignment makes every lower tier strictly earlier in time than the
// next one up.
func (w *wheel) peekMin() (Time, bool) {
	for i := w.batchIdx; i < len(w.batch); i++ {
		if !w.batch[i].canceled {
			return w.batch[i].at, true
		}
	}
	for l := 0; l < wheelLevels; l++ {
		cl := w.cur >> (uint(l) * slotBits)
		if s, ok := w.scan(l, int(cl&slotMask)+1); ok {
			sl := w.slots[l][s]
			min := sl[0].at
			for _, ev := range sl[1:] {
				if ev.at < min {
					min = ev.at
				}
			}
			return min, true
		}
	}
	if len(w.overflow) > 0 {
		min := w.overflow[0].at
		for _, ev := range w.overflow[1:] {
			if ev.at < min {
				min = ev.at
			}
		}
		return min, true
	}
	return 0, false
}

// releaseAll returns every resident event to p and resets the wheel to
// empty, keeping slot/batch/overflow arenas for reuse.
func (w *wheel) releaseAll(p *EventPool) {
	for i := w.batchIdx; i < len(w.batch); i++ {
		ev := w.batch[i]
		w.batch[i] = nil
		ev.slot = locFree
		p.put(ev)
	}
	w.batch = w.batch[:0]
	w.batchIdx = 0
	for l := 0; l < wheelLevels; l++ {
		for word, b := range w.occ[l] {
			for b != 0 {
				s := word<<6 + bits.TrailingZeros64(b)
				b &^= 1 << uint(s&63)
				sl := w.slots[l][s]
				for i, ev := range sl {
					sl[i] = nil
					ev.slot = locFree
					p.put(ev)
				}
				w.slots[l][s] = sl[:0]
			}
			w.occ[l][word] = 0
		}
	}
	for i, ev := range w.overflow {
		w.overflow[i] = nil
		ev.slot = locFree
		p.put(ev)
	}
	w.overflow = w.overflow[:0]
	w.cur = 0
	w.live = 0
}
