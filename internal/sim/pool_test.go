package sim

import (
	"testing"
	"time"
)

// A fired event's storage returns to the pool and the next Schedule
// reuses it; the handle from the first schedule must have gone stale so
// its Cancel cannot reach the recycled event.
func TestHandleStaleAfterFireDoesNotCancelRecycledEvent(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	h1 := e.After(time.Second, "first", func() { fired++ })
	if !h1.Scheduled() {
		t.Fatal("fresh handle should report scheduled")
	}
	if err := e.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if h1.Scheduled() {
		t.Fatal("handle should be stale after its event fired")
	}
	if h1.Name() != "" || h1.At() != 0 {
		t.Fatalf("stale handle leaks event state: name=%q at=%v", h1.Name(), h1.At())
	}

	h2 := e.After(time.Second, "second", func() { fired++ })
	if h2.ev != h1.ev {
		t.Fatal("pool should recycle the fired event's storage (LIFO)")
	}
	h1.Cancel() // stale: must not touch the recycled event
	if !h2.Scheduled() {
		t.Fatal("stale Cancel reached the recycled event")
	}
	if err := e.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestCancelledEventRecyclesThroughPool(t *testing.T) {
	e := NewEngine(1)
	h := e.After(time.Second, "doomed", func() { t.Fatal("cancelled event fired") })
	h.Cancel()
	if h.Scheduled() {
		t.Fatal("cancelled handle should not report scheduled")
	}
	if err := e.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(e.pool.free) == 0 {
		t.Fatal("cancelled event never returned to the pool")
	}
	// Cancelling again after recycling stays a no-op.
	h.Cancel()
}

// A shared pool moved between sequentially-run engines (the fleet
// worker pattern) hands each engine its predecessor's arena.
func TestEventPoolSharedAcrossSequentialEngines(t *testing.T) {
	pool := NewEventPool()
	for run := 0; run < 3; run++ {
		e := NewEngine(int64(run))
		e.SetEventPool(pool)
		ticks := 0
		tk := e.Every(time.Second, "tick", func() { ticks++ })
		if err := e.RunFor(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		tk.Stop()
		if err := e.Drain(100); err != nil {
			t.Fatal(err)
		}
		if ticks != 10 {
			t.Fatalf("run %d: ticks = %d, want 10", run, ticks)
		}
	}
	if len(pool.free) == 0 {
		t.Fatal("shared pool should hold recycled events between runs")
	}
}

// The engine's event loop must not allocate per tick once the ticker's
// closure and its pooled Event exist: the self-rescheduling path reuses
// the Event it just popped.
func TestTickerSteadyStateAllocs(t *testing.T) {
	e := NewEngine(1)
	n := 0
	tk := e.Every(time.Second, "tick", func() { n++ })
	defer tk.Stop()
	if err := e.RunFor(time.Second); err != nil { // warm-up: builds the tick closure
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if err := e.RunFor(time.Second); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("ticker steady state allocates %.1f objects per period, want 0", avg)
	}
}
