package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []string
	e.Schedule(3*Second, "c", func() { got = append(got, "c") })
	e.Schedule(1*Second, "a", func() { got = append(got, "a") })
	e.Schedule(2*Second, "b", func() { got = append(got, "b") })
	if err := e.Drain(10); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*Second {
		t.Fatalf("Now() = %v, want %v", e.Now(), 3*Second)
	}
}

func TestTieBreakFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(Second, "tie", func() { got = append(got, i) })
	}
	if err := e.Drain(10); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: got %v", got)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(Second, "x", func() {})
	e.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.Schedule(0, "past", func() {})
}

func TestAfterNegativePanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	e.After(-time.Second, "neg", func() {})
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(Second, "x", func() { fired = true })
	ev.Cancel()
	if err := e.Drain(10); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestRunUntilStopsAtHorizon(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.Schedule(1*Second, "in", func() { fired++ })
	e.Schedule(5*Second, "out", func() { fired++ })
	if err := e.RunUntil(2 * Second); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 2*Second {
		t.Fatalf("Now() = %v, want 2s", e.Now())
	}
	// The out-of-horizon event must still be pending and fire later.
	if err := e.RunUntil(10 * Second); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestRunUntilBackwardErrors(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(Second, "x", func() {})
	e.Step()
	if err := e.RunUntil(0); err == nil {
		t.Fatal("expected error for backward horizon")
	}
}

func TestRunFor(t *testing.T) {
	e := NewEngine(1)
	if err := e.RunFor(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	if e.Now() != Time(90*time.Second) {
		t.Fatalf("Now() = %v", e.Now())
	}
}

func TestStopMidRun(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(Second, "stop", func() { e.Stop() })
	e.Schedule(2*Second, "never", func() { t.Fatal("should not fire") })
	if err := e.RunUntil(10 * Second); err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
}

// Regression: Stop used to be sticky — once set, every later
// RunUntil/RunFor/Drain returned ErrStopped forever. A stop must only
// halt the run in flight; the next run call resumes.
func TestStopIsNotSticky(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.Schedule(Second, "stop", func() { e.Stop() })
	e.Schedule(2*Second, "later", func() { fired++ })
	if err := e.RunUntil(10 * Second); err != ErrStopped {
		t.Fatalf("first run err = %v, want ErrStopped", err)
	}
	if err := e.RunUntil(10 * Second); err != nil {
		t.Fatalf("resumed RunUntil err = %v, want nil", err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (queued event must survive the stop)", fired)
	}
	e.Schedule(11*Second, "stop2", func() { e.Stop() })
	e.Schedule(12*Second, "after-drain", func() { fired++ })
	if err := e.Drain(10); err != ErrStopped {
		t.Fatalf("drain err = %v, want ErrStopped", err)
	}
	if err := e.Drain(10); err != nil {
		t.Fatalf("resumed Drain err = %v, want nil", err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if err := e.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor after stop cycle err = %v", err)
	}
}

func TestDrainGuard(t *testing.T) {
	e := NewEngine(1)
	var reschedule func()
	reschedule = func() { e.After(time.Second, "loop", reschedule) }
	reschedule()
	if err := e.Drain(100); err == nil {
		t.Fatal("expected drain-guard error for self-rescheduling event")
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	n := 0
	tk := e.Every(time.Second, "tick", func() { n++ })
	if err := e.RunUntil(Time(3500 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
	tk.Stop()
	if err := e.RunUntil(10 * Second); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("ticks after stop = %d, want 3", n)
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var tk *Ticker
	tk = e.Every(time.Second, "tick", func() {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	if err := e.RunUntil(10 * Second); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("ticks = %d, want 2", n)
	}
}

func TestEveryNonPositivePanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Every(0, "bad", func() {})
}

func TestTraceSeesEvents(t *testing.T) {
	e := NewEngine(1)
	var names []string
	e.Trace(func(_ Time, name string, _ int) { names = append(names, name) })
	e.Schedule(Second, "a", func() {})
	e.Schedule(2*Second, "b", func() {})
	if err := e.Drain(10); err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("trace = %v", names)
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := NewEngine(42), NewEngine(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	at := Time(90 * time.Minute)
	if at.Hours() != 1.5 {
		t.Fatalf("Hours() = %v", at.Hours())
	}
	if at.Seconds() != 5400 {
		t.Fatalf("Seconds() = %v", at.Seconds())
	}
	if got := at.Add(30 * time.Minute); got != 2*Hour {
		t.Fatalf("Add = %v", got)
	}
	if got := at.Sub(Hour); got != 30*time.Minute {
		t.Fatalf("Sub = %v", got)
	}
	if !Time(1).Before(Time(2)) || !Time(2).After(Time(1)) {
		t.Fatal("Before/After broken")
	}
	if s := Time(time.Second).String(); s != "T+1s" {
		t.Fatalf("String() = %q", s)
	}
}

// Property: events always fire in non-decreasing timestamp order,
// whatever order they were scheduled in.
func TestPropertyMonotonicFiring(t *testing.T) {
	prop := func(offsets []uint16) bool {
		e := NewEngine(7)
		var fired []Time
		for _, o := range offsets {
			at := Time(time.Duration(o) * time.Millisecond)
			e.Schedule(at, "p", func() { fired = append(fired, e.Now()) })
		}
		if err := e.Drain(len(offsets) + 1); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(offsets)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the clock never moves backwards across any run pattern.
func TestPropertyClockMonotonic(t *testing.T) {
	prop := func(delays []uint8) bool {
		e := NewEngine(3)
		last := e.Now()
		for _, d := range delays {
			e.After(time.Duration(d)*time.Millisecond, "p", func() {})
			e.Step()
			if e.Now() < last {
				return false
			}
			last = e.Now()
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEventAccessors(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(5*Second, "named", func() {})
	if ev.At() != 5*Second || ev.Name() != "named" {
		t.Fatalf("accessors: at=%v name=%q", ev.At(), ev.Name())
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	ev := e.Schedule(Second, "x", func() { fired++ })
	if err := e.Drain(4); err != nil {
		t.Fatal(err)
	}
	ev.Cancel() // already fired: must not panic or corrupt the queue
	e.Schedule(2*Second, "y", func() { fired++ })
	if err := e.Drain(4); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d", fired)
	}
}
