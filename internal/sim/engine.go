package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
)

// ErrStopped is returned by Run variants when the engine was halted by a
// call to Stop before the requested horizon was reached.
var ErrStopped = errors.New("sim: engine stopped")

// TracerPanicError reports a trace callback that panicked. The engine
// recovers the panic (a diagnostic hook must never corrupt a run the
// way an unwinding panic through event dispatch would), halts the run,
// and surfaces this from the Run variant in flight — the same policy
// the fleet runner applies to scenario panics: the device is marked
// failed, the rest of the fleet is untouched.
type TracerPanicError struct {
	// EventName is the kernel event being traced when the panic hit.
	EventName string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *TracerPanicError) Error() string {
	return fmt.Sprintf("sim: tracer panicked on event %q: %v\n%s", e.EventName, e.Value, e.Stack)
}

// Event is a scheduled callback. Events fire in timestamp order; ties are
// broken by scheduling order (FIFO), which keeps scenarios deterministic.
// Events are pool-owned: once fired or cancelled they are recycled for
// the next Schedule, so callers hold Handles (generation-checked) rather
// than *Event.
type Event struct {
	at   Time
	seq  uint64
	name string
	fn   func()

	// slot locates the event inside the timing wheel (locFree when not
	// queued, locBatch/locOverflow, or level<<slotBits|index); pos is
	// its position within that slot's slice, for O(1) swap-delete.
	slot     int32
	pos      int32
	canceled bool
	// gen increments every time the event returns to its pool; a Handle
	// captured before that no longer matches and turns into a no-op.
	gen uint32
}

// Handle refers to a scheduled event. The zero Handle is valid and
// refers to nothing. Handles stay safe after their event fires: the
// event's recycle bumps its generation, so a stale Handle's Cancel (or
// accessors) cannot touch whatever the pooled Event was reused for.
type Handle struct {
	eng *Engine
	ev  *Event
	gen uint32
}

// live reports whether the handle still refers to its original event.
func (h Handle) live() bool { return h.ev != nil && h.ev.gen == h.gen }

// At reports the instant the event is scheduled to fire (zero for a
// stale or empty handle).
func (h Handle) At() Time {
	if h.live() {
		return h.ev.at
	}
	return 0
}

// Name reports the diagnostic label given at scheduling time ("" for a
// stale or empty handle).
func (h Handle) Name() string {
	if h.live() {
		return h.ev.name
	}
	return ""
}

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired (or was already cancelled, or an empty handle) is a
// no-op. A wheel-resident event is unlinked and recycled immediately —
// cancellation reclaims the slot rather than leaving a tombstone — so
// QueueLen drops right away; an event already in the current dispatch
// batch is marked and reclaimed when the batch reaches it.
func (h Handle) Cancel() {
	if !h.live() || h.ev.canceled || h.ev.slot == locFree {
		return
	}
	h.eng.cancelEvent(h.ev)
}

// Scheduled reports whether the event is still queued to fire.
func (h Handle) Scheduled() bool {
	return h.live() && !h.ev.canceled && h.ev.slot != locFree
}

// EventPool recycles Event allocations and timing-wheel arenas. Every
// engine owns one by default; sequential engines (a fleet worker
// running one device after another) can share a single pool via
// SetEventPool so each device reuses its predecessor's arenas instead
// of growing fresh ones for the GC to sweep. A pool is
// single-goroutine, like the engines it feeds.
type EventPool struct {
	free []*Event
	// wheels holds recycled timing wheels (see Engine.Recycle) with
	// their slot, batch and overflow arrays kept warm for the next
	// engine.
	wheels []*wheel
}

// NewEventPool returns an empty pool.
func NewEventPool() *EventPool { return &EventPool{} }

func (p *EventPool) get() *Event {
	if n := len(p.free); n > 0 {
		ev := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return ev
	}
	return &Event{slot: locFree, pos: -1}
}

func (p *EventPool) put(ev *Event) {
	ev.gen++
	ev.fn = nil // release the closure now, not at next reuse
	ev.name = ""
	ev.slot, ev.pos = locFree, -1
	ev.canceled = false
	p.free = append(p.free, ev)
}

func (p *EventPool) getWheel() *wheel {
	if n := len(p.wheels); n > 0 {
		w := p.wheels[n-1]
		p.wheels[n-1] = nil
		p.wheels = p.wheels[:n-1]
		return w
	}
	return newWheel()
}

func (p *EventPool) putWheel(w *wheel) { p.wheels = append(p.wheels, w) }

// Engine is the discrete-event simulation core. It is not safe for
// concurrent use: the simulated device is single-threaded by design, which
// is what makes runs reproducible.
type Engine struct {
	now Time
	// wheel is the hierarchical timing-wheel event store, acquired
	// lazily from the pool on first use so pool-sharing engines reuse a
	// predecessor's warm arenas (see EventPool and Recycle).
	wheel   *wheel
	seq     uint64
	rng     *rand.Rand
	stopped bool
	pool    *EventPool

	// tracers receive every fired event; used by tests, the CLIs'
	// -trace flags and the telemetry recorder.
	tracers []*Tracer
	// tlog, when set, receives every dispatched event inline (see
	// TraceLog) — the no-callback fast path the telemetry recorder
	// rides.
	tlog *TraceLog
	// tracing is true only while fireTracers runs its callbacks, and
	// tracingName names the event being traced. Together they let the
	// run-loop recover guards tell a tracer panic (recovered, converted
	// to traceErr) from an event-callback panic (left to unwind with its
	// full stack) without paying a defer per fired event.
	tracing     bool
	tracingName string
	// traceErr holds a recovered tracer panic until the run loop in
	// flight surfaces it.
	traceErr *TracerPanicError
	// failErr holds an injected failure (see Fail) until a run loop
	// surfaces it.
	failErr error
}

// Tracer is a registered trace callback. Close unregisters it.
type Tracer struct {
	engine *Engine
	fn     func(t Time, name string, queueDepth int)
}

// Close unregisters the tracer; later events no longer reach its
// callback. Closing twice (or closing a nil tracer) is a no-op.
func (tr *Tracer) Close() {
	if tr == nil || tr.engine == nil {
		return
	}
	e := tr.engine
	tr.engine = nil
	for i, t := range e.tracers {
		if t == tr {
			e.tracers = append(e.tracers[:i], e.tracers[i+1:]...)
			return
		}
	}
}

// NewEngine returns an engine whose clock reads T+0 and whose random
// source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed)), pool: NewEventPool()}
}

// SetEventPool replaces the engine's event pool (never nil). Call it
// before scheduling anything; events already recycled stay in the old
// pool. Pool reuse does not affect determinism — a recycled Event is
// fully re-initialized on Schedule.
func (e *Engine) SetEventPool(p *EventPool) {
	if p != nil {
		e.pool = p
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Trace registers fn to be called for every event that fires and
// returns a handle; Close the handle to unregister. Along with the
// event's timestamp and name, fn receives the queue depth just after
// the event was popped: the dispatch loop has it at hand, and handing
// it over saves per-event samplers (the telemetry recorder) a
// round-trip through QueueLen on the hottest path in the tree. A
// panicking tracer does not unwind through event dispatch: the engine
// recovers it, halts the run, and the Run variant in flight returns a
// *TracerPanicError.
func (e *Engine) Trace(fn func(t Time, name string, queueDepth int)) *Tracer {
	tr := &Tracer{engine: e, fn: fn}
	e.tracers = append(e.tracers, tr)
	return tr
}

// QueueLen reports the number of live queued events in O(1). Cancelled
// events are reclaimed immediately by the wheel, so QueueLen and
// Pending agree.
func (e *Engine) QueueLen() int {
	if e.wheel == nil {
		return 0
	}
	return e.wheel.live
}

// Schedule queues fn to run at instant at. Scheduling in the past (before
// Now) panics: it always indicates a scenario bug, and silently clamping
// would corrupt energy integration. The returned Handle cancels or
// inspects the pending event; it goes stale (harmlessly) once the event
// fires and its pooled Event is recycled.
func (e *Engine) Schedule(at Time, name string, fn func()) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule %q at %v before now %v", name, at, e.now))
	}
	w := e.wheel
	if w == nil {
		w = e.pool.getWheel()
		e.wheel = w
	}
	ev := e.pool.get()
	ev.at, ev.seq, ev.name, ev.fn = at, e.seq, name, fn
	ev.canceled = false
	e.seq++
	w.place(ev)
	w.live++
	return Handle{eng: e, ev: ev, gen: ev.gen}
}

// cancelEvent removes a pending event (Handle.Cancel has already
// checked liveness). Wheel- and overflow-resident events are unlinked
// and recycled on the spot; batch-resident ones are marked and
// reclaimed when dispatch reaches them.
func (e *Engine) cancelEvent(ev *Event) {
	e.wheel.live--
	if e.wheel.remove(ev) {
		e.pool.put(ev)
		return
	}
	ev.canceled = true
}

// After queues fn to run d after the current instant.
func (e *Engine) After(d Duration, name string, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", d, name))
	}
	return e.Schedule(e.now.Add(d), name, fn)
}

// Every schedules fn at period intervals, first firing one period from
// now, until the returned Ticker is stopped. A period of zero or less
// panics.
func (e *Engine) Every(period Duration, name string, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v for %q", period, name))
	}
	t := &Ticker{engine: e, period: period, name: name, fn: fn}
	t.arm()
	return t
}

// Stop halts the run loop after the currently executing event returns.
// It affects only the run in flight: the next RunUntil/RunFor/Drain
// call clears the flag on entry and resumes from the current instant.
func (e *Engine) Stop() { e.stopped = true }

// Fail halts the run loop like Stop, but makes the Run variant in
// flight — or, when called between runs, the next one entered — return
// err instead of ErrStopped. The first failure wins and Fail(nil) is a
// no-op. It exists for invariant checkers and similar observers: a
// failure detected inside event dispatch surfaces from RunUntil the
// same way a tracer panic does.
func (e *Engine) Fail(err error) {
	if err == nil || e.failErr != nil {
		return
	}
	e.failErr = err
	e.stopped = true
}

// FailErr reports (and clears) a pending injected failure. Run variants
// surface it automatically; only manual Step loops need it.
func (e *Engine) FailErr() error {
	err := e.failErr
	e.failErr = nil
	return err
}

// Step fires the single earliest pending event, advancing the clock to its
// timestamp. It reports false when no events remain. If a tracer panics,
// the event's callback is skipped, the engine stops, and the error is
// surfaced by the Run variant in flight (or by TraceErr for manual
// steppers).
func (e *Engine) Step() (fired bool) {
	// Manual steppers get the per-call recover guard; the run loops call
	// stepFast directly and amortize one guard over the whole run.
	defer func() {
		if !e.tracing {
			return // a panic in flight is the event callback's own: let it unwind
		}
		if r := recover(); r != nil {
			e.noteTracerPanic(r)
			fired = true
		}
	}()
	return e.stepFast()
}

// stepFast is Step without a recover guard: a panicking tracer unwinds
// out with e.tracing still set, and the caller's deferred guard (Step,
// RunUntil, Drain) converts it to traceErr. Keeping the defer out of
// this path is worth several ns per event, which is exactly the margin
// the telemetry enabled-overhead gate is fought over.
func (e *Engine) stepFast() bool {
	if e.wheel == nil {
		return false
	}
	ev := e.wheel.pop(e.pool)
	if ev == nil {
		return false
	}
	e.dispatch(ev)
	return true
}

// dispatch advances the clock to a popped event and fires it.
func (e *Engine) dispatch(ev *Event) {
	e.now = ev.at
	if e.tlog != nil {
		e.tlog.Log(e.now, ev.name, e.wheel.live)
	}
	if len(e.tracers) > 0 {
		e.fireTracers(ev.name)
	}
	fn := ev.fn
	// Recycle before dispatch so fn itself (the common self-
	// rescheduling case: tickers, WiFi tails) reuses this very Event.
	// The generation bump makes any Handle still pointing here stale,
	// so Cancel-after-fire stays a no-op even across reuse.
	e.pool.put(ev)
	fn()
}

// fireTracers invokes every tracer. The range's slice snapshot and the
// engine-nil check keep dispatch well-defined when a callback closes
// its own (or another) tracer mid-event. There is deliberately no
// recover here: the tracing flag marks the region instead, and the
// enclosing run loop's single deferred guard does the recovery, so the
// per-event cost charged against the telemetry overhead gate is two
// flag stores rather than a defer + recover.
func (e *Engine) fireTracers(name string) {
	e.tracingName = name
	e.tracing = true
	depth := e.wheel.live
	for _, tr := range e.tracers {
		if tr.engine == nil { // closed mid-dispatch
			continue
		}
		tr.fn(e.now, name, depth)
	}
	e.tracing = false
}

// noteTracerPanic converts a panic recovered from a trace callback into
// the engine's pending traceErr and halts the run. Callers must have
// checked e.tracing before recovering: a panic with tracing unset
// belongs to the event callback and must be left to unwind.
func (e *Engine) noteTracerPanic(r any) {
	e.tracing = false
	e.traceErr = &TracerPanicError{EventName: e.tracingName, Value: r, Stack: debug.Stack()}
	e.stopped = true
}

// TraceErr reports (and clears) a pending tracer panic. Run variants
// surface this automatically; only manual Step loops need it.
func (e *Engine) TraceErr() error {
	if e.traceErr == nil {
		return nil // typed nil in an error interface would read as non-nil
	}
	err := e.traceErr
	e.traceErr = nil
	return err
}

// RunUntil fires events until the clock would pass horizon, then advances
// the clock exactly to horizon. Pending events after the horizon stay
// queued. It returns ErrStopped if Stop was called mid-run.
func (e *Engine) RunUntil(horizon Time) (err error) {
	if horizon < e.now {
		return fmt.Errorf("sim: horizon %v before now %v", horizon, e.now)
	}
	if err := e.FailErr(); err != nil {
		return err
	}
	e.stopped = false
	// One recover guard for the whole run instead of one per event; see
	// stepFast. Event-callback panics keep unwinding untouched.
	defer func() {
		if !e.tracing {
			return
		}
		if r := recover(); r != nil {
			e.noteTracerPanic(r)
			err = e.TraceErr()
		}
	}()
	for !e.stopped {
		// popUntil fuses the horizon peek into the pop: one wheel scan
		// per event instead of two.
		var ev *Event
		if e.wheel != nil {
			ev = e.wheel.popUntil(horizon, e.pool)
		}
		if ev == nil {
			e.now = horizon
			return nil
		}
		e.dispatch(ev)
	}
	if err := e.TraceErr(); err != nil {
		return err
	}
	if err := e.FailErr(); err != nil {
		return err
	}
	return ErrStopped
}

// RunFor is RunUntil(Now+d).
func (e *Engine) RunFor(d Duration) error { return e.RunUntil(e.now.Add(d)) }

// Drain fires every pending event. It returns ErrStopped if Stop was
// called, and an error if the queue never empties within maxEvents fires
// (a guard against runaway self-rescheduling scenarios).
func (e *Engine) Drain(maxEvents int) (err error) {
	if err := e.FailErr(); err != nil {
		return err
	}
	e.stopped = false
	// Same single-guard pattern as RunUntil.
	defer func() {
		if !e.tracing {
			return
		}
		if r := recover(); r != nil {
			e.noteTracerPanic(r)
			err = e.TraceErr()
		}
	}()
	for i := 0; ; i++ {
		if e.stopped {
			if err := e.TraceErr(); err != nil {
				return err
			}
			if err := e.FailErr(); err != nil {
				return err
			}
			return ErrStopped
		}
		if i >= maxEvents {
			return fmt.Errorf("sim: drain exceeded %d events", maxEvents)
		}
		if !e.stepFast() {
			return nil
		}
	}
}

// Pending reports the number of live (non-cancelled) queued events. It
// is O(1) and identical to QueueLen: the wheel reclaims cancelled
// events eagerly instead of leaving tombstones.
func (e *Engine) Pending() int { return e.QueueLen() }

func (e *Engine) peek() (Time, bool) {
	if e.wheel == nil {
		return 0, false
	}
	return e.wheel.peekMin()
}

// Recycle hands the engine's timing wheel — and every event still
// resident in it — back to the event pool. A fleet worker calls it
// after harvesting a finished device so the next device built over the
// same pool (see SetEventPool) starts with warm arenas instead of
// allocating its own. The engine must not be used afterwards: any
// outstanding Handles go stale, and a subsequent Schedule would acquire
// a fresh wheel.
func (e *Engine) Recycle() {
	w := e.wheel
	if w == nil {
		return
	}
	e.wheel = nil
	w.releaseAll(e.pool)
	e.pool.putWheel(w)
}

// Ticker repeatedly schedules a callback at a fixed period.
type Ticker struct {
	engine  *Engine
	period  Duration
	name    string
	fn      func()
	tick    func() // built once; re-arming reuses it instead of closing over a fresh closure per period
	pending Handle
	stopped bool
}

func (t *Ticker) arm() {
	if t.tick == nil {
		t.tick = func() {
			if t.stopped {
				return
			}
			t.fn()
			if !t.stopped {
				t.arm()
			}
		}
	}
	t.pending = t.engine.After(t.period, t.name, t.tick)
}

// Stop cancels future firings. Safe to call more than once.
func (t *Ticker) Stop() {
	t.stopped = true
	t.pending.Cancel()
}
