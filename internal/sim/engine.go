package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
)

// ErrStopped is returned by Run variants when the engine was halted by a
// call to Stop before the requested horizon was reached.
var ErrStopped = errors.New("sim: engine stopped")

// TracerPanicError reports a trace callback that panicked. The engine
// recovers the panic (a diagnostic hook must never corrupt a run the
// way an unwinding panic through event dispatch would), halts the run,
// and surfaces this from the Run variant in flight — the same policy
// the fleet runner applies to scenario panics: the device is marked
// failed, the rest of the fleet is untouched.
type TracerPanicError struct {
	// EventName is the kernel event being traced when the panic hit.
	EventName string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *TracerPanicError) Error() string {
	return fmt.Sprintf("sim: tracer panicked on event %q: %v\n%s", e.EventName, e.Value, e.Stack)
}

// Event is a scheduled callback. Events fire in timestamp order; ties are
// broken by scheduling order (FIFO), which keeps scenarios deterministic.
type Event struct {
	at   Time
	seq  uint64
	name string
	fn   func()

	index    int // heap index; -1 once popped or cancelled
	canceled bool
}

// At reports the instant the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Name reports the diagnostic label given at scheduling time.
func (e *Event) Name() string { return e.name }

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() { e.canceled = true }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is the discrete-event simulation core. It is not safe for
// concurrent use: the simulated device is single-threaded by design, which
// is what makes runs reproducible.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	stopped bool

	// tracers receive every fired event; used by tests, the CLIs'
	// -trace flags and the telemetry recorder.
	tracers []*Tracer
	// traceErr holds a recovered tracer panic until the run loop in
	// flight surfaces it.
	traceErr *TracerPanicError
	// failErr holds an injected failure (see Fail) until a run loop
	// surfaces it.
	failErr error
}

// Tracer is a registered trace callback. Close unregisters it.
type Tracer struct {
	engine *Engine
	fn     func(t Time, name string)
}

// Close unregisters the tracer; later events no longer reach its
// callback. Closing twice (or closing a nil tracer) is a no-op.
func (tr *Tracer) Close() {
	if tr == nil || tr.engine == nil {
		return
	}
	e := tr.engine
	tr.engine = nil
	for i, t := range e.tracers {
		if t == tr {
			e.tracers = append(e.tracers[:i], e.tracers[i+1:]...)
			return
		}
	}
}

// NewEngine returns an engine whose clock reads T+0 and whose random
// source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Trace registers fn to be called for every event that fires and
// returns a handle; Close the handle to unregister. A panicking tracer
// does not unwind through event dispatch: the engine recovers it, halts
// the run, and the Run variant in flight returns a *TracerPanicError.
func (e *Engine) Trace(fn func(t Time, name string)) *Tracer {
	tr := &Tracer{engine: e, fn: fn}
	e.tracers = append(e.tracers, tr)
	return tr
}

// QueueLen reports the number of queued events, including cancelled
// ones not yet compacted away. It is O(1), unlike Pending, so tracing
// hot paths can sample it on every event.
func (e *Engine) QueueLen() int { return len(e.queue) }

// Schedule queues fn to run at instant at. Scheduling in the past (before
// Now) panics: it always indicates a scenario bug, and silently clamping
// would corrupt energy integration.
func (e *Engine) Schedule(at Time, name string, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule %q at %v before now %v", name, at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, name: name, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After queues fn to run d after the current instant.
func (e *Engine) After(d Duration, name string, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", d, name))
	}
	return e.Schedule(e.now.Add(d), name, fn)
}

// Every schedules fn at period intervals, first firing one period from
// now, until the returned Ticker is stopped. A period of zero or less
// panics.
func (e *Engine) Every(period Duration, name string, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v for %q", period, name))
	}
	t := &Ticker{engine: e, period: period, name: name, fn: fn}
	t.arm()
	return t
}

// Stop halts the run loop after the currently executing event returns.
// It affects only the run in flight: the next RunUntil/RunFor/Drain
// call clears the flag on entry and resumes from the current instant.
func (e *Engine) Stop() { e.stopped = true }

// Fail halts the run loop like Stop, but makes the Run variant in
// flight — or, when called between runs, the next one entered — return
// err instead of ErrStopped. The first failure wins and Fail(nil) is a
// no-op. It exists for invariant checkers and similar observers: a
// failure detected inside event dispatch surfaces from RunUntil the
// same way a tracer panic does.
func (e *Engine) Fail(err error) {
	if err == nil || e.failErr != nil {
		return
	}
	e.failErr = err
	e.stopped = true
}

// FailErr reports (and clears) a pending injected failure. Run variants
// surface it automatically; only manual Step loops need it.
func (e *Engine) FailErr() error {
	err := e.failErr
	e.failErr = nil
	return err
}

// Step fires the single earliest pending event, advancing the clock to its
// timestamp. It reports false when no events remain. If a tracer panics,
// the event's callback is skipped, the engine stops, and the error is
// surfaced by the Run variant in flight (or by TraceErr for manual
// steppers).
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		if len(e.tracers) > 0 && !e.fireTracers(ev.name) {
			return true
		}
		ev.fn()
		return true
	}
	return false
}

// fireTracers invokes every tracer under a recover guard, reporting
// whether all of them returned normally. Iterating over a snapshot keeps
// dispatch well-defined when a callback closes its own (or another)
// tracer mid-event.
func (e *Engine) fireTracers(name string) (ok bool) {
	tracers := e.tracers
	for _, tr := range tracers {
		if tr.engine == nil { // closed mid-dispatch
			continue
		}
		if !e.fireTracer(tr, name) {
			return false
		}
	}
	return true
}

func (e *Engine) fireTracer(tr *Tracer, name string) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			e.traceErr = &TracerPanicError{EventName: name, Value: r, Stack: debug.Stack()}
			e.stopped = true
			ok = false
		}
	}()
	tr.fn(e.now, name)
	return true
}

// TraceErr reports (and clears) a pending tracer panic. Run variants
// surface this automatically; only manual Step loops need it.
func (e *Engine) TraceErr() error {
	if e.traceErr == nil {
		return nil // typed nil in an error interface would read as non-nil
	}
	err := e.traceErr
	e.traceErr = nil
	return err
}

// RunUntil fires events until the clock would pass horizon, then advances
// the clock exactly to horizon. Pending events after the horizon stay
// queued. It returns ErrStopped if Stop was called mid-run.
func (e *Engine) RunUntil(horizon Time) error {
	if horizon < e.now {
		return fmt.Errorf("sim: horizon %v before now %v", horizon, e.now)
	}
	if err := e.FailErr(); err != nil {
		return err
	}
	e.stopped = false
	for !e.stopped {
		next, ok := e.peek()
		if !ok || next.After(horizon) {
			e.now = horizon
			return nil
		}
		e.Step()
	}
	if err := e.TraceErr(); err != nil {
		return err
	}
	if err := e.FailErr(); err != nil {
		return err
	}
	return ErrStopped
}

// RunFor is RunUntil(Now+d).
func (e *Engine) RunFor(d Duration) error { return e.RunUntil(e.now.Add(d)) }

// Drain fires every pending event. It returns ErrStopped if Stop was
// called, and an error if the queue never empties within maxEvents fires
// (a guard against runaway self-rescheduling scenarios).
func (e *Engine) Drain(maxEvents int) error {
	if err := e.FailErr(); err != nil {
		return err
	}
	e.stopped = false
	for i := 0; ; i++ {
		if e.stopped {
			if err := e.TraceErr(); err != nil {
				return err
			}
			if err := e.FailErr(); err != nil {
				return err
			}
			return ErrStopped
		}
		if i >= maxEvents {
			return fmt.Errorf("sim: drain exceeded %d events", maxEvents)
		}
		if !e.Step() {
			return nil
		}
	}
}

// Pending reports the number of live (non-cancelled) queued events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.canceled {
			n++
		}
	}
	return n
}

func (e *Engine) peek() (Time, bool) {
	for e.queue.Len() > 0 {
		if e.queue[0].canceled {
			heap.Pop(&e.queue)
			continue
		}
		return e.queue[0].at, true
	}
	return 0, false
}

// Ticker repeatedly schedules a callback at a fixed period.
type Ticker struct {
	engine  *Engine
	period  Duration
	name    string
	fn      func()
	pending *Event
	stopped bool
}

func (t *Ticker) arm() {
	t.pending = t.engine.After(t.period, t.name, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future firings. Safe to call more than once.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.pending != nil {
		t.pending.Cancel()
	}
}
