package sim

import (
	"testing"
	"time"
)

// TestFarFutureEventLandsInOverflow checks that an event beyond the
// top wheel level's span parks in the overflow list and still fires at
// the right instant once the cursor gets there.
func TestFarFutureEventLandsInOverflow(t *testing.T) {
	e := NewEngine(1)
	far := 3 * 365 * 24 * time.Hour // ~3 years, past the level-3 window
	fired := Time(0)
	e.After(Duration(far), "far", func() { fired = e.Now() })
	if n := len(e.wheel.overflow); n != 1 {
		t.Fatalf("overflow holds %d events, want 1", n)
	}
	if err := e.RunFor(Duration(far)); err != nil {
		t.Fatal(err)
	}
	if want := Time(0).Add(Duration(far)); fired != want {
		t.Fatalf("far event fired at %v, want %v", fired, want)
	}
}

// TestOverflowReDealPreservesOrder schedules a cluster of far-future
// events in scrambled order plus a near one, and checks global (at,
// seq) dispatch order across the overflow re-deal.
func TestOverflowReDealPreservesOrder(t *testing.T) {
	e := NewEngine(1)
	year := 365 * 24 * time.Hour
	var got []int
	note := func(id int) func() { return func() { got = append(got, id) } }
	e.After(Duration(3*year+2*time.Hour), "c", note(2))
	e.After(Duration(3*year), "a", note(0))
	e.After(Duration(3*year+time.Hour), "b", note(1))
	e.After(Duration(time.Second), "near", note(9))
	if err := e.RunFor(Duration(4 * year)); err != nil {
		t.Fatal(err)
	}
	want := []int{9, 0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// TestTickerSpansWheelRollover runs a one-second ticker long enough to
// wrap level 0 many times and cross a level-1 slot boundary, checking
// that no tick is lost or displaced.
func TestTickerSpansWheelRollover(t *testing.T) {
	e := NewEngine(1)
	ticks := 0
	var last Time
	e.Every(time.Second, "tick", func() {
		ticks++
		now := e.Now()
		if last != 0 && now.Sub(last) != Duration(time.Second) {
			t.Fatalf("tick gap %v at %v, want 1s", now.Sub(last), now)
		}
		last = now
	})
	// Level 0 spans ~4.3s; 10 minutes crosses it ~140 times and the
	// level-1 slot boundary as well.
	if err := e.RunFor(Duration(10 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if ticks != 600 {
		t.Fatalf("ticker fired %d times in 10min, want 600", ticks)
	}
}

// TestScheduleBehindAdvancedCursorStillFires reproduces the probe-ahead
// hazard: running to a horizon with only a far event leaves the wheel
// cursor parked at that event's granule (the event waits in the batch).
// An event then scheduled for an earlier granule must not be filed
// behind the cursor's scan position — it fires first, on time.
func TestScheduleBehindAdvancedCursorStillFires(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.After(Duration(26*time.Hour), "far", func() { got = append(got, 1) })
	// Probe: nothing due, but the cursor advances to the 26h granule.
	if err := e.RunFor(Duration(time.Second)); err != nil {
		t.Fatal(err)
	}
	firedAt := Time(0)
	e.After(Duration(time.Minute), "near", func() {
		got = append(got, 0)
		firedAt = e.Now()
	})
	if err := e.RunFor(Duration(48 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("dispatch order %v, want [0 1]", got)
	}
	if want := Time(0).Add(Duration(time.Second + time.Minute)); firedAt != want {
		t.Fatalf("near event fired at %v, want %v", firedAt, want)
	}
}

// TestCancelReclaimsWheelSlot checks the cancelled-event retention fix:
// cancelling a wheel-resident event frees its slot entry immediately
// (no tombstone waiting to be popped), and QueueLen and Pending agree
// on the live count throughout.
func TestCancelReclaimsWheelSlot(t *testing.T) {
	e := NewEngine(1)
	var hs []Handle
	for i := 0; i < 100; i++ {
		hs = append(hs, e.After(Duration(time.Duration(i+1)*time.Minute), "ev", func() {}))
	}
	if e.QueueLen() != 100 || e.Pending() != 100 {
		t.Fatalf("QueueLen=%d Pending=%d, want 100/100", e.QueueLen(), e.Pending())
	}
	for i, h := range hs {
		if i%2 == 0 {
			h.Cancel()
		}
	}
	if e.QueueLen() != 50 || e.Pending() != 50 {
		t.Fatalf("after cancels QueueLen=%d Pending=%d, want 50/50", e.QueueLen(), e.Pending())
	}
	// The cancelled events' slot entries are gone, not tombstoned: the
	// total number of events resident in wheel slots matches the live
	// count.
	resident := 0
	for l := 0; l < wheelLevels; l++ {
		for s := 0; s < wheelSlots; s++ {
			resident += len(e.wheel.slots[l][s])
		}
	}
	resident += len(e.wheel.batch) - e.wheel.batchIdx + len(e.wheel.overflow)
	if resident != 50 {
		t.Fatalf("wheel holds %d resident events after cancels, want 50", resident)
	}
	scheduled := 0
	for _, h := range hs {
		if h.Scheduled() {
			scheduled++
		}
	}
	if scheduled != 50 {
		t.Fatalf("%d handles still scheduled, want 50", scheduled)
	}
	if err := e.RunFor(Duration(2 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if e.QueueLen() != 0 || e.Pending() != 0 {
		t.Fatalf("after run QueueLen=%d Pending=%d, want 0/0", e.QueueLen(), e.Pending())
	}
}

// TestCancelAfterFireAcrossSlotReuse checks handle staleness over slot
// reuse: after an event fires, its pooled Event is reused by a new
// event that lands in the same wheel slot; the old handle's Cancel must
// not touch the new occupant.
func TestCancelAfterFireAcrossSlotReuse(t *testing.T) {
	e := NewEngine(1)
	h1 := e.After(Duration(time.Second), "first", func() {})
	if err := e.RunFor(Duration(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	// Same relative delay: reuses h1's Event (LIFO pool) and, with the
	// clock at 2s, a fresh wheel slot.
	fired := false
	h2 := e.After(Duration(time.Second), "second", func() { fired = true })
	if h2.ev != h1.ev {
		t.Fatalf("pool did not reuse the fired event")
	}
	h1.Cancel() // stale: must be a no-op
	if !h2.Scheduled() {
		t.Fatal("stale Cancel unscheduled the new event")
	}
	if err := e.RunFor(Duration(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("reused event did not fire")
	}
}

// TestScheduleCancelSteadyStateAllocs guards the zero-alloc contract:
// once the pool and wheel arenas are warm, a schedule/cancel pair
// allocates nothing.
func TestScheduleCancelSteadyStateAllocs(t *testing.T) {
	e := NewEngine(1)
	// Warm the pool and the slots the loop will touch.
	for i := 0; i < 8; i++ {
		e.After(Duration(time.Duration(i+1)*time.Second), "warm", func() {}).Cancel()
	}
	avg := testing.AllocsPerRun(200, func() {
		h := e.After(Duration(90*time.Second), "probe", func() {})
		h.Cancel()
	})
	if avg != 0 {
		t.Fatalf("schedule/cancel allocates %.1f objects, want 0", avg)
	}
}
