package sim

import (
	"errors"
	"testing"
)

func TestFailSurfacesFromRunInFlight(t *testing.T) {
	e := NewEngine(1)
	boom := errors.New("boom")
	fired := false
	e.Schedule(1*Second, "fail", func() { e.Fail(boom) })
	e.Schedule(2*Second, "later", func() { fired = true })
	if err := e.RunUntil(10 * Second); !errors.Is(err, boom) {
		t.Fatalf("RunUntil = %v, want %v", err, boom)
	}
	if fired {
		t.Fatal("event after the failure instant still fired")
	}
	if e.Now() != 1*Second {
		t.Fatalf("clock = %v, want the failure instant", e.Now())
	}
	// The failure surfaced once; the engine is usable again.
	if err := e.RunUntil(10 * Second); err != nil {
		t.Fatalf("second run = %v, want nil", err)
	}
	if !fired {
		t.Fatal("queued event lost across the failure")
	}
}

func TestFailBetweenRunsSurfacesAtNextEntry(t *testing.T) {
	e := NewEngine(1)
	boom := errors.New("boom")
	e.Fail(boom)
	if err := e.RunFor(Duration(Second)); !errors.Is(err, boom) {
		t.Fatalf("RunFor = %v, want %v", err, boom)
	}
	if err := e.RunFor(Duration(Second)); err != nil {
		t.Fatalf("failure not cleared after surfacing: %v", err)
	}
}

func TestFailSurfacesFromDrain(t *testing.T) {
	e := NewEngine(1)
	boom := errors.New("boom")
	e.Schedule(1*Second, "fail", func() { e.Fail(boom) })
	if err := e.Drain(100); !errors.Is(err, boom) {
		t.Fatalf("Drain = %v, want %v", err, boom)
	}
}

func TestFailFirstWins(t *testing.T) {
	e := NewEngine(1)
	first, second := errors.New("first"), errors.New("second")
	e.Fail(first)
	e.Fail(second)
	if err := e.RunFor(Duration(Second)); !errors.Is(err, first) {
		t.Fatalf("RunFor = %v, want the first failure", err)
	}
}

func TestFailNilIsNoop(t *testing.T) {
	e := NewEngine(1)
	e.Fail(nil)
	if err := e.RunFor(Duration(Second)); err != nil {
		t.Fatalf("RunFor after Fail(nil) = %v, want nil", err)
	}
}
