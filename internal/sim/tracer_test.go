package sim

import (
	"errors"
	"strings"
	"testing"
)

func TestTraceReceivesEvents(t *testing.T) {
	e := NewEngine(1)
	var got []string
	e.Trace(func(at Time, name string, _ int) { got = append(got, name) })
	e.Schedule(Second, "a", func() {})
	e.Schedule(2*Second, "b", func() {})
	if err := e.Drain(10); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("trace = %v, want [a b]", got)
	}
}

func TestTracerCloseUnregisters(t *testing.T) {
	e := NewEngine(1)
	var got []string
	tr := e.Trace(func(at Time, name string, _ int) { got = append(got, name) })
	e.Schedule(Second, "a", func() {})
	e.Schedule(2*Second, "b", func() {})
	if !e.Step() {
		t.Fatal("no first event")
	}
	tr.Close()
	tr.Close() // idempotent
	(*Tracer)(nil).Close()
	if !e.Step() {
		t.Fatal("no second event")
	}
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("trace after Close = %v, want [a]", got)
	}
}

func TestMultipleTracersAllFire(t *testing.T) {
	e := NewEngine(1)
	n1, n2 := 0, 0
	e.Trace(func(Time, string, int) { n1++ })
	e.Trace(func(Time, string, int) { n2++ })
	e.Schedule(Second, "x", func() {})
	if err := e.Drain(10); err != nil {
		t.Fatal(err)
	}
	if n1 != 1 || n2 != 1 {
		t.Fatalf("tracer counts = %d, %d, want 1, 1", n1, n2)
	}
}

func TestTracerCloseDuringDispatch(t *testing.T) {
	e := NewEngine(1)
	var second *Tracer
	first := 0
	e.Trace(func(Time, string, int) {
		first++
		second.Close()
	})
	calls := 0
	second = e.Trace(func(Time, string, int) { calls++ })
	e.Schedule(Second, "x", func() {})
	e.Schedule(2*Second, "y", func() {})
	if err := e.Drain(10); err != nil {
		t.Fatal(err)
	}
	if first != 2 {
		t.Fatalf("surviving tracer fired %d times, want 2", first)
	}
	if calls != 0 {
		t.Fatalf("closed tracer fired %d times, want 0", calls)
	}
}

func TestTracerPanicSurfacesFromRunUntil(t *testing.T) {
	e := NewEngine(1)
	e.Trace(func(Time, string, int) { panic("tracer boom") })
	fired := false
	e.Schedule(Second, "victim", func() { fired = true })
	err := e.RunUntil(10 * Second)
	var tpe *TracerPanicError
	if !errors.As(err, &tpe) {
		t.Fatalf("RunUntil = %v, want *TracerPanicError", err)
	}
	if tpe.EventName != "victim" || tpe.Value != "tracer boom" {
		t.Fatalf("error = %+v, want event victim / value boom", tpe)
	}
	if len(tpe.Stack) == 0 || !strings.Contains(tpe.Error(), "victim") {
		t.Fatalf("error missing stack or event name: %v", tpe)
	}
	if fired {
		t.Fatal("event callback ran despite tracer panic")
	}
	// The panic is consumed by the run that reported it: a later run
	// proceeds normally once the faulty tracer is gone.
	if err := e.TraceErr(); err != nil {
		t.Fatalf("TraceErr after report = %v, want nil", err)
	}
}

func TestTracerPanicSurfacesFromDrain(t *testing.T) {
	e := NewEngine(1)
	e.Trace(func(Time, string, int) { panic(42) })
	e.Schedule(Second, "x", func() {})
	err := e.Drain(10)
	var tpe *TracerPanicError
	if !errors.As(err, &tpe) {
		t.Fatalf("Drain = %v, want *TracerPanicError", err)
	}
	if tpe.Value != 42 {
		t.Fatalf("panic value = %v, want 42", tpe.Value)
	}
}

func TestTraceErrNilWithoutPanic(t *testing.T) {
	e := NewEngine(1)
	// Guard against the typed-nil-in-interface trap.
	if err := e.TraceErr(); err != nil {
		t.Fatalf("TraceErr = %v, want nil", err)
	}
}

func TestTraceErrManualStep(t *testing.T) {
	e := NewEngine(1)
	e.Trace(func(Time, string, int) { panic("boom") })
	e.Schedule(Second, "x", func() {})
	if !e.Step() {
		t.Fatal("Step found no event")
	}
	if err := e.TraceErr(); err == nil {
		t.Fatal("TraceErr = nil after panicking step")
	}
	if err := e.TraceErr(); err != nil {
		t.Fatalf("TraceErr not cleared: %v", err)
	}
}

func TestQueueLen(t *testing.T) {
	e := NewEngine(1)
	if e.QueueLen() != 0 {
		t.Fatalf("QueueLen = %d, want 0", e.QueueLen())
	}
	e.Schedule(Second, "a", func() {})
	e.Schedule(2*Second, "b", func() {})
	if e.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d, want 2", e.QueueLen())
	}
	e.Step()
	if e.QueueLen() != 1 {
		t.Fatalf("QueueLen after step = %d, want 1", e.QueueLen())
	}
}
