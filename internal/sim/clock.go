// Package sim provides a deterministic discrete-event simulation kernel.
//
// All higher-level subsystems (activity manager, power manager, hardware
// power models, ...) are driven by a single Engine that owns a virtual
// clock and an event heap. Determinism is a hard requirement: the same
// scenario script must produce bit-identical energy ledgers on every run,
// so the kernel never consults the wall clock and all randomness flows
// through a seeded source.
package sim

import (
	"fmt"
	"time"
)

// Time is a virtual instant, expressed as the duration elapsed since the
// simulated device booted. Using a dedicated type (rather than bare
// time.Duration) keeps virtual instants from being confused with spans.
type Time time.Duration

// Duration re-exports time.Duration for callers that only import sim.
type Duration = time.Duration

// Common constructors for readable scenario scripts.
const (
	Millisecond = Time(time.Millisecond)
	Second      = Time(time.Second)
	Minute      = Time(time.Minute)
	Hour        = Time(time.Hour)
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the span between t and earlier instant u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as floating-point seconds since boot.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Hours reports t as floating-point hours since boot.
func (t Time) Hours() float64 { return time.Duration(t).Hours() }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// String formats the instant as an offset from boot, e.g. "T+1m30s".
func (t Time) String() string {
	return fmt.Sprintf("T+%s", time.Duration(t))
}
