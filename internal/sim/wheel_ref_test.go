package sim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// refEvent mirrors one scheduled event in the reference model.
type refEvent struct {
	at   Time
	seq  uint64
	id   int
	h    Handle
	dead bool
}

// TestWheelMatchesReferenceModel drives the engine with a randomized
// schedule/cancel/run workload and checks the dispatch order against a
// sort-based reference model. Horizons and delays are chosen to cross
// slot, window and level boundaries, including far-future overflow
// events.
func TestWheelMatchesReferenceModel(t *testing.T) {
	for round := 0; round < 20; round++ {
		rng := rand.New(rand.NewSource(int64(round + 1)))
		e := NewEngine(1)

		var pending []*refEvent
		var fired, want []int
		nextID := 0

		schedule := func(d Duration) {
			id := nextID
			nextID++
			re := &refEvent{at: e.Now().Add(d), id: id}
			re.h = e.Schedule(re.at, "ref", func() { fired = append(fired, id) })
			re.seq = re.h.ev.seq
			pending = append(pending, re)
		}

		randomDelay := func() Duration {
			switch rng.Intn(6) {
			case 0: // same-granule / sub-slot
				return Duration(rng.Int63n(int64(20 * time.Millisecond)))
			case 1: // level 0
				return Duration(rng.Int63n(int64(4 * time.Second)))
			case 2: // level 1
				return Duration(rng.Int63n(int64(15 * time.Minute)))
			case 3: // level 2
				return Duration(rng.Int63n(int64(48 * time.Hour)))
			case 4: // level 3
				return Duration(rng.Int63n(int64(400 * 24 * time.Hour)))
			default: // overflow
				return Duration(3*365*24*time.Hour) + Duration(rng.Int63n(int64(24*time.Hour)))
			}
		}

		for op := 0; op < 400; op++ {
			switch rng.Intn(4) {
			case 0, 1:
				schedule(randomDelay())
			case 2: // cancel a random pending event
				if len(pending) > 0 {
					re := pending[rng.Intn(len(pending))]
					if !re.dead && re.h.Scheduled() {
						re.h.Cancel()
						re.dead = true
					}
				}
			default: // run to a random horizon
				horizon := e.Now().Add(randomDelay())
				if err := e.RunUntil(horizon); err != nil {
					t.Fatal(err)
				}
				// Reference: everything live with at <= horizon fires in
				// (at, seq) order.
				var due []*refEvent
				rest := pending[:0]
				for _, re := range pending {
					if !re.dead && re.at <= horizon {
						due = append(due, re)
					} else if !re.dead {
						rest = append(rest, re)
					}
				}
				pending = rest
				sort.Slice(due, func(i, j int) bool {
					if due[i].at != due[j].at {
						return due[i].at < due[j].at
					}
					return due[i].seq < due[j].seq
				})
				for _, re := range due {
					want = append(want, re.id)
				}
				if len(fired) != len(want) {
					t.Fatalf("round %d op %d: fired %d events, want %d (now=%v)",
						round, op, len(fired), len(want), e.Now())
				}
				for i := range want {
					if fired[i] != want[i] {
						t.Fatalf("round %d op %d: dispatch order diverged at %d: got id %d, want id %d",
							round, op, i, fired[i], want[i])
					}
				}
				if got := e.QueueLen(); got != len(pending) {
					t.Fatalf("round %d op %d: QueueLen = %d, want %d live", round, op, got, len(pending))
				}
			}
		}
	}
}
