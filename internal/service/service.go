// Package service reimplements Android's service lifecycle: started
// services that run until stopService()/stopSelf(), bound services kept
// alive by connections, and the combination rule the paper's attack #3
// exploits — a service with any live binding survives stopService(), so
// a malicious bind with no unbind pins a victim's service forever.
package service

import (
	"fmt"
	"sort"

	"repro/internal/app"
	"repro/internal/hw"
	"repro/internal/intent"
	"repro/internal/manifest"
	"repro/internal/sim"
)

// StopKind distinguishes how a started service was stopped.
type StopKind int

// Stop kinds.
const (
	// StopService is an external stopService() call.
	StopService StopKind = iota + 1
	// StopSelf is the service stopping itself.
	StopSelf
	// StopOwnerDeath is the owning process dying.
	StopOwnerDeath
)

func (k StopKind) String() string {
	switch k {
	case StopService:
		return "stopService"
	case StopSelf:
		return "stopSelf"
	case StopOwnerDeath:
		return "owner-death"
	}
	return fmt.Sprintf("StopKind(%d)", int(k))
}

// UnbindCause distinguishes why a connection closed.
type UnbindCause int

// Unbind causes.
const (
	// UnbindExplicit is a normal unbindService() call.
	UnbindExplicit UnbindCause = iota + 1
	// UnbindClientDeath is the client process dying.
	UnbindClientDeath
)

func (c UnbindCause) String() string {
	switch c {
	case UnbindExplicit:
		return "explicit"
	case UnbindClientDeath:
		return "client-death"
	}
	return fmt.Sprintf("UnbindCause(%d)", int(c))
}

// Service is one service component instance.
type Service struct {
	app       *app.App
	component string

	started  bool
	bindings map[*Connection]struct{}
	mgr      *Manager
}

// App returns the owning application.
func (s *Service) App() *app.App { return s.app }

// Component returns the short component name.
func (s *Service) Component() string { return s.component }

// FullName returns "package/Component".
func (s *Service) FullName() string {
	return manifest.FullComponentName(s.app.Package(), s.component)
}

// Started reports whether the service was started (vs only bound).
func (s *Service) Started() bool { return s.started }

// Bindings reports the number of live connections.
func (s *Service) Bindings() int { return len(s.bindings) }

// Running reports whether the service is alive: started, or kept alive by
// at least one binding.
func (s *Service) Running() bool { return s.started || len(s.bindings) > 0 }

// Connection is one live bindService() link from a client to a service.
type Connection struct {
	Client app.UID
	svc    *Service
	bound  bool
}

// Service returns the connected service.
func (c *Connection) Service() *Service { return c.svc }

// Bound reports whether the connection is still live.
func (c *Connection) Bound() bool { return c.bound }

// Hooks receive service manager events.
type Hooks interface {
	ServiceStarted(t sim.Time, caller app.UID, svc *Service)
	ServiceStopped(t sim.Time, caller app.UID, svc *Service, kind StopKind)
	ServiceBound(t sim.Time, conn *Connection)
	ServiceUnbound(t sim.Time, conn *Connection, cause UnbindCause)
	// ServiceRunning fires when a service transitions between running
	// and not running (the state that draws power).
	ServiceRunning(t sim.Time, svc *Service, running bool)
}

// Manager is the simulated service controller inside "am".
type Manager struct {
	engine   *sim.Engine
	pm       *app.PackageManager
	resolver *intent.Resolver
	agg      *hw.Aggregator
	hooks    []Hooks

	services     map[string]*Service // full name -> instance
	deathWatched map[app.UID]bool
}

// NewManager builds the service manager.
func NewManager(engine *sim.Engine, pm *app.PackageManager, res *intent.Resolver, agg *hw.Aggregator) (*Manager, error) {
	if engine == nil || pm == nil || res == nil || agg == nil {
		return nil, fmt.Errorf("service: nil dependency")
	}
	return &Manager{
		engine:       engine,
		pm:           pm,
		resolver:     res,
		agg:          agg,
		services:     make(map[string]*Service),
		deathWatched: make(map[app.UID]bool),
	}, nil
}

// AddHooks registers an event consumer.
func (m *Manager) AddHooks(h Hooks) { m.hooks = append(m.hooks, h) }

func (m *Manager) instance(match intent.Match) *Service {
	full := match.FullName()
	if s, ok := m.services[full]; ok {
		return s
	}
	s := &Service{
		app:       match.App,
		component: match.Component,
		bindings:  make(map[*Connection]struct{}),
		mgr:       m,
	}
	m.services[full] = s
	return s
}

// Start handles startService(): the target service runs until stopped.
// Export rules apply for cross-app intents; the owning process revives if
// dead.
func (m *Manager) Start(in intent.Intent) (*Service, error) {
	match, err := m.resolver.ResolveExplicit(in, manifest.KindService)
	if err != nil {
		return nil, err
	}
	svc := m.instance(match)
	if !svc.app.Alive() {
		svc.app.Revive()
	}
	m.watchOwnerDeath(svc.app)
	wasRunning := svc.Running()
	svc.started = true
	for _, h := range m.hooks {
		h.ServiceStarted(m.engine.Now(), in.Sender, svc)
	}
	m.updateRunning(svc, wasRunning)
	return svc, nil
}

// Stop handles stopService(). Per Android semantics the service keeps
// running if any binding is live — the heart of attack #3.
func (m *Manager) Stop(caller app.UID, full string) error {
	svc, ok := m.services[full]
	if !ok || !svc.started {
		return fmt.Errorf("service: %s is not started", full)
	}
	m.stopStarted(svc, caller, StopService)
	return nil
}

// StopSelfService handles stopSelf() from inside the service.
func (m *Manager) StopSelfService(svc *Service) error {
	if !svc.started {
		return fmt.Errorf("service: %s is not started", svc.FullName())
	}
	m.stopStarted(svc, svc.app.UID, StopSelf)
	return nil
}

func (m *Manager) stopStarted(svc *Service, caller app.UID, kind StopKind) {
	wasRunning := svc.Running()
	svc.started = false
	for _, h := range m.hooks {
		h.ServiceStopped(m.engine.Now(), caller, svc, kind)
	}
	m.updateRunning(svc, wasRunning)
}

// Bind handles bindService(): a new connection keeps the service alive
// until unbound. The client's process death implicitly unbinds (Binder
// link-to-death), but a live malicious client can hold the connection —
// and the victim's service — forever.
func (m *Manager) Bind(in intent.Intent) (*Connection, error) {
	match, err := m.resolver.ResolveExplicit(in, manifest.KindService)
	if err != nil {
		return nil, err
	}
	client := m.pm.ByUID(in.Sender)
	if client == nil {
		return nil, fmt.Errorf("service: unknown client uid %d", in.Sender)
	}
	if !client.Alive() {
		return nil, fmt.Errorf("service: client %s is dead", client.Package())
	}
	svc := m.instance(match)
	if !svc.app.Alive() {
		svc.app.Revive()
	}
	m.watchOwnerDeath(svc.app)
	wasRunning := svc.Running()
	conn := &Connection{Client: in.Sender, svc: svc, bound: true}
	svc.bindings[conn] = struct{}{}
	client.LinkToDeath(func() {
		if conn.bound {
			m.unbind(conn, UnbindClientDeath)
		}
	})
	for _, h := range m.hooks {
		h.ServiceBound(m.engine.Now(), conn)
	}
	m.updateRunning(svc, wasRunning)
	return conn, nil
}

// Unbind handles unbindService() for one connection.
func (m *Manager) Unbind(conn *Connection) error {
	if !conn.bound {
		return fmt.Errorf("service: connection to %s already unbound", conn.svc.FullName())
	}
	m.unbind(conn, UnbindExplicit)
	return nil
}

func (m *Manager) unbind(conn *Connection, cause UnbindCause) {
	svc := conn.svc
	wasRunning := svc.Running()
	conn.bound = false
	delete(svc.bindings, conn)
	for _, h := range m.hooks {
		h.ServiceUnbound(m.engine.Now(), conn, cause)
	}
	m.updateRunning(svc, wasRunning)
}

// Lookup returns the service instance for "package/Component", or nil.
func (m *Manager) Lookup(full string) *Service { return m.services[full] }

// Running returns all currently running services, sorted by full name.
func (m *Manager) Running() []*Service {
	var out []*Service
	for _, s := range m.services {
		if s.Running() {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

func (m *Manager) watchOwnerDeath(owner *app.App) {
	if m.deathWatched[owner.UID] {
		return
	}
	m.deathWatched[owner.UID] = true
	owner.LinkToDeath(func() {
		m.deathWatched[owner.UID] = false
		for _, svc := range m.servicesOf(owner.UID) {
			wasRunning := svc.Running()
			if svc.started {
				svc.started = false
				for _, h := range m.hooks {
					h.ServiceStopped(m.engine.Now(), owner.UID, svc, StopOwnerDeath)
				}
			}
			for conn := range svc.bindings {
				conn.bound = false
				delete(svc.bindings, conn)
				for _, h := range m.hooks {
					h.ServiceUnbound(m.engine.Now(), conn, UnbindClientDeath)
				}
			}
			m.updateRunning(svc, wasRunning)
		}
	})
}

func (m *Manager) servicesOf(uid app.UID) []*Service {
	var out []*Service
	for _, s := range m.services {
		if s.app.UID == uid {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

// updateRunning applies the hardware demand transition and fires the
// running-changed hook.
func (m *Manager) updateRunning(svc *Service, wasRunning bool) {
	now := svc.Running()
	if now == wasRunning {
		return
	}
	if now {
		w := svc.app.Workload(svc.component)
		_ = m.agg.Set(svc, svc.app.UID, hw.Demand{
			CPUUtil: w.CPUActive,
			Camera:  w.Camera,
			GPS:     w.GPS,
			WiFi:    w.WiFi,
			Audio:   w.Audio,
		})
	} else {
		_ = m.agg.Clear(svc)
	}
	for _, h := range m.hooks {
		h.ServiceRunning(m.engine.Now(), svc, now)
	}
}
