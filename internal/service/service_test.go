package service

import (
	"fmt"
	"testing"

	"repro/internal/app"
	"repro/internal/hw"
	"repro/internal/intent"
	"repro/internal/manifest"
	"repro/internal/sim"
)

type recorder struct {
	events []string
}

func (r *recorder) ServiceStarted(t sim.Time, caller app.UID, svc *Service) {
	r.events = append(r.events, fmt.Sprintf("start:%d:%s", caller, svc.FullName()))
}

func (r *recorder) ServiceStopped(t sim.Time, caller app.UID, svc *Service, kind StopKind) {
	r.events = append(r.events, fmt.Sprintf("stop:%d:%s:%s", caller, svc.FullName(), kind))
}

func (r *recorder) ServiceBound(t sim.Time, conn *Connection) {
	r.events = append(r.events, fmt.Sprintf("bind:%d:%s", conn.Client, conn.Service().FullName()))
}

func (r *recorder) ServiceUnbound(t sim.Time, conn *Connection, cause UnbindCause) {
	r.events = append(r.events, fmt.Sprintf("unbind:%d:%s:%s", conn.Client, conn.Service().FullName(), cause))
}

func (r *recorder) ServiceRunning(t sim.Time, svc *Service, running bool) {
	r.events = append(r.events, fmt.Sprintf("running:%s:%v", svc.FullName(), running))
}

type fx struct {
	engine *sim.Engine
	meter  *hw.Meter
	pm     *app.PackageManager
	mgr    *Manager
	rec    *recorder
	victim *app.App
	mal    *app.App
}

func newFx(t *testing.T) *fx {
	t.Helper()
	e := sim.NewEngine(1)
	b, err := hw.NewBattery(hw.NexusBatteryJ)
	if err != nil {
		t.Fatal(err)
	}
	meter, err := hw.NewMeter(e.Now, hw.Nexus4(), b)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := hw.NewAggregator(meter)
	if err != nil {
		t.Fatal(err)
	}
	pm := app.NewPackageManager()
	res := intent.NewResolver(pm)
	mgr, err := NewManager(e, pm, res, agg)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	mgr.AddHooks(rec)

	victim := pm.MustInstall(manifest.NewBuilder("com.victim", "Victim").
		Activity("Main", true).
		Service("Work", true).
		Service("Hidden", false).
		MustBuild())
	if err := victim.SetWorkload("Work", app.Workload{CPUActive: 0.3}); err != nil {
		t.Fatal(err)
	}
	mal := pm.MustInstall(manifest.NewBuilder("com.mal", "Mal").
		Activity("Main", true).
		MustBuild())
	return &fx{engine: e, meter: meter, pm: pm, mgr: mgr, rec: rec, victim: victim, mal: mal}
}

func (f *fx) start(t *testing.T, sender app.UID) *Service {
	t.Helper()
	svc, err := f.mgr.Start(intent.Intent{Sender: sender, Component: "com.victim/Work"})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func (f *fx) bind(t *testing.T, sender app.UID) *Connection {
	t.Helper()
	conn, err := f.mgr.Bind(intent.Intent{Sender: sender, Component: "com.victim/Work"})
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

func TestStartStopLifecycle(t *testing.T) {
	f := newFx(t)
	svc := f.start(t, f.victim.UID)
	if !svc.Running() || !svc.Started() {
		t.Fatal("service should run after start")
	}
	if got := f.meter.CPUUtil(f.victim.UID); got != 0.3 {
		t.Fatalf("cpu util = %v, want 0.3", got)
	}
	if err := f.mgr.Stop(f.victim.UID, "com.victim/Work"); err != nil {
		t.Fatal(err)
	}
	if svc.Running() {
		t.Fatal("service should stop")
	}
	if got := f.meter.CPUUtil(f.victim.UID); got != 0 {
		t.Fatalf("cpu util = %v, want 0", got)
	}
}

func TestStopSelf(t *testing.T) {
	f := newFx(t)
	svc := f.start(t, f.victim.UID)
	if err := f.mgr.StopSelfService(svc); err != nil {
		t.Fatal(err)
	}
	if svc.Running() {
		t.Fatal("stopSelf should stop service")
	}
	if err := f.mgr.StopSelfService(svc); err == nil {
		t.Fatal("stopSelf on stopped service accepted")
	}
}

func TestStopErrors(t *testing.T) {
	f := newFx(t)
	if err := f.mgr.Stop(f.victim.UID, "com.victim/Work"); err == nil {
		t.Fatal("stop of never-started service accepted")
	}
}

func TestStartedServiceSurvivesCallerExit(t *testing.T) {
	// "A started service will not be terminated even [when] the started
	// component is destroyed."
	f := newFx(t)
	svc := f.start(t, f.mal.UID)
	f.mal.Kill()
	if !svc.Running() {
		t.Fatal("started service must survive its starter's death")
	}
}

func TestAttack3BindWithoutUnbindPinsService(t *testing.T) {
	// The paper's attack #3: the victim starts and immediately stops its
	// own service, but a malicious binding keeps it running forever.
	f := newFx(t)
	svc := f.start(t, f.victim.UID)
	f.bind(t, f.mal.UID)
	if err := f.mgr.Stop(f.victim.UID, "com.victim/Work"); err != nil {
		t.Fatal(err)
	}
	if !svc.Running() {
		t.Fatal("bound service must survive stopService — attack #3 broken")
	}
	if f.meter.CPUUtil(f.victim.UID) != 0.3 {
		t.Fatal("pinned service should keep drawing CPU")
	}
}

func TestUnbindStopsServiceWhenLastLinkDrops(t *testing.T) {
	f := newFx(t)
	c1 := f.bind(t, f.mal.UID)
	c2 := f.bind(t, f.victim.UID)
	svc := c1.Service()
	if !svc.Running() || svc.Bindings() != 2 {
		t.Fatalf("running=%v bindings=%d", svc.Running(), svc.Bindings())
	}
	if err := f.mgr.Unbind(c1); err != nil {
		t.Fatal(err)
	}
	if !svc.Running() {
		t.Fatal("service should survive while one binding lives")
	}
	if err := f.mgr.Unbind(c2); err != nil {
		t.Fatal(err)
	}
	if svc.Running() {
		t.Fatal("service should stop after all unbinds")
	}
	if err := f.mgr.Unbind(c2); err == nil {
		t.Fatal("double unbind accepted")
	}
}

func TestClientDeathUnbinds(t *testing.T) {
	f := newFx(t)
	conn := f.bind(t, f.mal.UID)
	svc := conn.Service()
	f.mal.Kill()
	if conn.Bound() || svc.Running() {
		t.Fatal("client death should unbind and stop service")
	}
	found := false
	for _, ev := range f.rec.events {
		if ev == fmt.Sprintf("unbind:%d:com.victim/Work:client-death", f.mal.UID) {
			found = true
		}
	}
	if !found {
		t.Fatalf("events = %v, want client-death unbind", f.rec.events)
	}
}

func TestOwnerDeathStopsEverything(t *testing.T) {
	f := newFx(t)
	svc := f.start(t, f.victim.UID)
	f.bind(t, f.mal.UID)
	f.victim.Kill()
	if svc.Running() || svc.Bindings() != 0 {
		t.Fatal("owner death should tear down the service")
	}
	if f.meter.CPUUtil(f.victim.UID) != 0 {
		t.Fatal("dead service still draws CPU")
	}
}

func TestExportEnforcement(t *testing.T) {
	f := newFx(t)
	if _, err := f.mgr.Start(intent.Intent{Sender: f.mal.UID, Component: "com.victim/Hidden"}); err == nil {
		t.Fatal("cross-app start of unexported service accepted")
	}
	if _, err := f.mgr.Bind(intent.Intent{Sender: f.mal.UID, Component: "com.victim/Hidden"}); err == nil {
		t.Fatal("cross-app bind of unexported service accepted")
	}
	// Same app may use it.
	if _, err := f.mgr.Start(intent.Intent{Sender: f.victim.UID, Component: "com.victim/Hidden"}); err != nil {
		t.Fatal(err)
	}
}

func TestBindErrors(t *testing.T) {
	f := newFx(t)
	if _, err := f.mgr.Bind(intent.Intent{Sender: 999, Component: "com.victim/Work"}); err == nil {
		t.Fatal("unknown client accepted")
	}
	f.mal.Kill()
	if _, err := f.mgr.Bind(intent.Intent{Sender: f.mal.UID, Component: "com.victim/Work"}); err == nil {
		t.Fatal("dead client accepted")
	}
}

func TestStartRevivesOwner(t *testing.T) {
	f := newFx(t)
	f.victim.Kill()
	svc := f.start(t, f.mal.UID)
	if !f.victim.Alive() || !svc.Running() {
		t.Fatal("start should revive the owner process")
	}
}

func TestSameInstanceReused(t *testing.T) {
	f := newFx(t)
	s1 := f.start(t, f.victim.UID)
	s2 := f.start(t, f.mal.UID)
	if s1 != s2 {
		t.Fatal("start must reuse the same service instance")
	}
	if f.mgr.Lookup("com.victim/Work") != s1 {
		t.Fatal("lookup mismatch")
	}
	if f.mgr.Lookup("com.victim/Nope") != nil {
		t.Fatal("missing lookup should be nil")
	}
}

func TestRunningList(t *testing.T) {
	f := newFx(t)
	if len(f.mgr.Running()) != 0 {
		t.Fatal("no services running yet")
	}
	f.start(t, f.victim.UID)
	running := f.mgr.Running()
	if len(running) != 1 || running[0].FullName() != "com.victim/Work" {
		t.Fatalf("running = %v", running)
	}
}

func TestRunningChangedEventsFireOnce(t *testing.T) {
	f := newFx(t)
	f.start(t, f.victim.UID)
	f.bind(t, f.mal.UID) // already running: no extra running event
	count := 0
	for _, ev := range f.rec.events {
		if ev == "running:com.victim/Work:true" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("running:true fired %d times, want 1", count)
	}
}

func TestStringers(t *testing.T) {
	if StopService.String() != "stopService" || StopSelf.String() != "stopSelf" {
		t.Fatal("stop kinds")
	}
	if UnbindExplicit.String() != "explicit" || UnbindClientDeath.String() != "client-death" {
		t.Fatal("unbind causes")
	}
	if StopKind(0).String() == "" || UnbindCause(0).String() == "" {
		t.Fatal("zero stringers")
	}
}

func TestNewManagerNilDeps(t *testing.T) {
	if _, err := NewManager(nil, nil, nil, nil); err == nil {
		t.Fatal("nil deps accepted")
	}
}
