package manifest

import (
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Manifest {
	return NewBuilder("com.example.message", "Message").
		Category("Communication").
		Permission(PermWakeLock).
		Activity("MainActivity", true, IntentFilter{
			Actions:    []string{"android.intent.action.MAIN"},
			Categories: []string{"android.intent.category.LAUNCHER"},
		}).
		Activity("ComposeActivity", false).
		Service("SyncService", true).
		Receiver("BootReceiver", true, IntentFilter{
			Actions: []string{"android.intent.action.BOOT_COMPLETED"},
		}).
		Provider("MessageProvider", false).
		MustBuild()
}

func TestBuilderBuildsValidManifest(t *testing.T) {
	m := sample()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Components) != 5 {
		t.Fatalf("components = %d, want 5", len(m.Components))
	}
}

func TestValidateRejectsEmptyPackage(t *testing.T) {
	m := &Manifest{}
	if err := m.Validate(); err == nil {
		t.Fatal("want error for empty package")
	}
}

func TestValidateRejectsDuplicateComponent(t *testing.T) {
	_, err := NewBuilder("a.b", "x").
		Activity("A", false).
		Service("A", false).
		Build()
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v, want duplicate error", err)
	}
}

func TestValidateRejectsEmptyComponentName(t *testing.T) {
	m := &Manifest{Package: "a.b", Components: []Component{{Kind: KindActivity}}}
	if err := m.Validate(); err == nil {
		t.Fatal("want error for empty component name")
	}
}

func TestValidateRejectsBadKind(t *testing.T) {
	m := &Manifest{Package: "a.b", Components: []Component{{Name: "X"}}}
	if err := m.Validate(); err == nil {
		t.Fatal("want error for invalid kind")
	}
}

func TestComponentLookup(t *testing.T) {
	m := sample()
	if c := m.Component("SyncService"); c == nil || c.Kind != KindService {
		t.Fatalf("Component(SyncService) = %+v", c)
	}
	if m.Component("Nope") != nil {
		t.Fatal("lookup of missing component should be nil")
	}
}

func TestHasPermission(t *testing.T) {
	m := sample()
	if !m.HasPermission(PermWakeLock) {
		t.Fatal("expected WAKE_LOCK")
	}
	if m.HasPermission(PermWriteSettings) {
		t.Fatal("unexpected WRITE_SETTINGS")
	}
}

func TestExportedComponents(t *testing.T) {
	m := sample()
	if !m.HasExportedComponent() {
		t.Fatal("expected exported components")
	}
	got := m.ExportedComponents()
	want := []string{"BootReceiver", "MainActivity", "SyncService"}
	if len(got) != len(want) {
		t.Fatalf("exported = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("exported = %v, want %v", got, want)
		}
	}
}

func TestIntentFilterMatching(t *testing.T) {
	f := IntentFilter{
		Actions:    []string{"a.SEND", "a.VIEW"},
		Categories: []string{"c.DEFAULT", "c.BROWSABLE"},
	}
	tests := []struct {
		action string
		cats   []string
		want   bool
	}{
		{"a.SEND", nil, true},
		{"a.SEND", []string{"c.DEFAULT"}, true},
		{"a.VIEW", []string{"c.DEFAULT", "c.BROWSABLE"}, true},
		{"a.SEND", []string{"c.HOME"}, false},
		{"a.EDIT", nil, false},
	}
	for _, tt := range tests {
		if got := f.Matches(tt.action, tt.cats); got != tt.want {
			t.Errorf("Matches(%q, %v) = %v, want %v", tt.action, tt.cats, got, tt.want)
		}
	}
}

func TestXMLRoundTrip(t *testing.T) {
	m := sample()
	data, err := m.MarshalXMLDoc()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `package="com.example.message"`) {
		t.Fatalf("doc missing package attr:\n%s", data)
	}
	back, err := ParseXMLDoc(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Package != m.Package || back.Label != m.Label || back.Category != m.Category {
		t.Fatalf("round trip header mismatch: %+v", back)
	}
	if len(back.Permissions) != 1 || back.Permissions[0] != PermWakeLock {
		t.Fatalf("permissions = %v", back.Permissions)
	}
	if len(back.Components) != len(m.Components) {
		t.Fatalf("components = %d, want %d", len(back.Components), len(m.Components))
	}
	c := back.Component("MainActivity")
	if c == nil || !c.Exported || len(c.Filters) != 1 {
		t.Fatalf("MainActivity = %+v", c)
	}
	if !c.Filters[0].Matches("android.intent.action.MAIN", []string{"android.intent.category.LAUNCHER"}) {
		t.Fatal("round-tripped filter lost matching data")
	}
}

func TestParseXMLDocRejectsGarbage(t *testing.T) {
	if _, err := ParseXMLDoc([]byte("not xml at all <<<")); err == nil {
		t.Fatal("want parse error")
	}
}

func TestParseXMLDocRejectsInvalidManifest(t *testing.T) {
	doc := []byte(`<manifest><application/></manifest>`)
	if _, err := ParseXMLDoc(doc); err == nil {
		t.Fatal("want validation error for empty package")
	}
}

func TestMarshalRejectsInvalid(t *testing.T) {
	m := &Manifest{}
	if _, err := m.MarshalXMLDoc(); err == nil {
		t.Fatal("want error marshaling invalid manifest")
	}
}

func TestComponentKindString(t *testing.T) {
	if KindActivity.String() != "activity" || KindProvider.String() != "provider" {
		t.Fatal("kind names wrong")
	}
	if !strings.Contains(ComponentKind(99).String(), "99") {
		t.Fatal("unknown kind should embed value")
	}
}

func TestFullComponentName(t *testing.T) {
	full := FullComponentName("com.a", "Main")
	if full != "com.a/Main" {
		t.Fatalf("full = %q", full)
	}
	pkg, name, err := SplitComponentName(full)
	if err != nil || pkg != "com.a" || name != "Main" {
		t.Fatalf("split = %q %q %v", pkg, name, err)
	}
	for _, bad := range []string{"", "noslash", "/x", "x/"} {
		if _, _, err := SplitComponentName(bad); err == nil {
			t.Errorf("SplitComponentName(%q) should fail", bad)
		}
	}
}

// Property: any manifest assembled from sanitized random parts survives an
// XML round trip with package, permissions and component count intact.
func TestPropertyXMLRoundTrip(t *testing.T) {
	sanitize := func(s string) string {
		var b strings.Builder
		for _, r := range s {
			if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
				b.WriteRune(r)
			}
		}
		if b.Len() == 0 {
			return "x"
		}
		return b.String()
	}
	prop := func(pkg string, perms []string, nComp uint8) bool {
		m := &Manifest{Package: "com." + sanitize(pkg)}
		seen := map[string]bool{}
		for _, p := range perms {
			m.Permissions = append(m.Permissions, "perm."+sanitize(p))
		}
		n := int(nComp % 8)
		for i := 0; i < n; i++ {
			name := sanitize(pkg) + string(rune('A'+i))
			if seen[name] {
				continue
			}
			seen[name] = true
			m.Components = append(m.Components, Component{
				Kind:     ComponentKind(i%4 + 1),
				Name:     name,
				Exported: i%2 == 0,
			})
		}
		data, err := m.MarshalXMLDoc()
		if err != nil {
			return false
		}
		back, err := ParseXMLDoc(data)
		if err != nil {
			return false
		}
		return back.Package == m.Package &&
			len(back.Permissions) == len(m.Permissions) &&
			len(back.Components) == len(m.Components)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
