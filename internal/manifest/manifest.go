// Package manifest models Android application manifests: the package
// name, declared components (activities, services, receivers, providers)
// with their exported flags and intent filters, and the permissions the
// app requests.
//
// The model round-trips through an AndroidManifest.xml-shaped document via
// encoding/xml so that the Figure 2 corpus study can run the same
// "reverse-engineer the APK, inspect the manifest" pipeline the paper ran
// with APKTool.
package manifest

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strings"
)

// Well-known permission strings used throughout the paper.
const (
	PermWakeLock      = "android.permission.WAKE_LOCK"
	PermWriteSettings = "android.permission.WRITE_SETTINGS"
)

// ComponentKind distinguishes the four Android component types.
type ComponentKind int

const (
	// KindActivity is a UI screen component.
	KindActivity ComponentKind = iota + 1
	// KindService is a background component.
	KindService
	// KindReceiver is a broadcast receiver.
	KindReceiver
	// KindProvider is a content provider.
	KindProvider
)

var kindNames = map[ComponentKind]string{
	KindActivity: "activity",
	KindService:  "service",
	KindReceiver: "receiver",
	KindProvider: "provider",
}

// String returns the manifest tag name for the kind.
func (k ComponentKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("ComponentKind(%d)", int(k))
}

// IntentFilter declares the implicit-intent actions and categories a
// component responds to.
type IntentFilter struct {
	Actions    []string
	Categories []string
}

// Matches reports whether the filter accepts an implicit intent with the
// given action and categories. Every requested category must be declared
// by the filter, mirroring Android's resolution rule.
func (f IntentFilter) Matches(action string, categories []string) bool {
	found := false
	for _, a := range f.Actions {
		if a == action {
			found = true
			break
		}
	}
	if !found {
		return false
	}
	for _, want := range categories {
		ok := false
		for _, have := range f.Categories {
			if have == want {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Component is one declared app component.
type Component struct {
	Kind     ComponentKind
	Name     string // short name, unique within the app, e.g. "MainActivity"
	Exported bool
	Filters  []IntentFilter
}

// Manifest describes one application.
type Manifest struct {
	Package     string // e.g. "com.example.message"
	Label       string // human-readable name, e.g. "Message"
	Category    string // Play-store category, e.g. "Communication"
	Permissions []string
	Components  []Component
}

// Validate checks structural invariants: non-empty package, unique
// component names, and that every component has a kind and name.
func (m *Manifest) Validate() error {
	if m.Package == "" {
		return fmt.Errorf("manifest: empty package name")
	}
	seen := make(map[string]bool, len(m.Components))
	for _, c := range m.Components {
		if c.Name == "" {
			return fmt.Errorf("manifest %s: component with empty name", m.Package)
		}
		if _, ok := kindNames[c.Kind]; !ok {
			return fmt.Errorf("manifest %s: component %s has invalid kind", m.Package, c.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("manifest %s: duplicate component %s", m.Package, c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

// Component returns the named component, or nil if not declared.
func (m *Manifest) Component(name string) *Component {
	for i := range m.Components {
		if m.Components[i].Name == name {
			return &m.Components[i]
		}
	}
	return nil
}

// HasPermission reports whether the app requests perm.
func (m *Manifest) HasPermission(perm string) bool {
	for _, p := range m.Permissions {
		if p == perm {
			return true
		}
	}
	return false
}

// HasExportedComponent reports whether any component is exported — the
// property inspected in the paper's Figure 2 study.
func (m *Manifest) HasExportedComponent() bool {
	for _, c := range m.Components {
		if c.Exported {
			return true
		}
	}
	return false
}

// ExportedComponents returns the names of all exported components, sorted.
func (m *Manifest) ExportedComponents() []string {
	var out []string
	for _, c := range m.Components {
		if c.Exported {
			out = append(out, c.Name)
		}
	}
	sort.Strings(out)
	return out
}

// xmlManifest mirrors the on-disk AndroidManifest.xml structure closely
// enough for the corpus study's extract-and-inspect pipeline.
type xmlManifest struct {
	XMLName     xml.Name            `xml:"manifest"`
	Package     string              `xml:"package,attr"`
	Label       string              `xml:"label,attr,omitempty"`
	Category    string              `xml:"category,attr,omitempty"`
	Permissions []xmlUsesPermission `xml:"uses-permission"`
	Application xmlApplication      `xml:"application"`
}

type xmlUsesPermission struct {
	Name string `xml:"name,attr"`
}

type xmlApplication struct {
	Activities []xmlComponent `xml:"activity"`
	Services   []xmlComponent `xml:"service"`
	Receivers  []xmlComponent `xml:"receiver"`
	Providers  []xmlComponent `xml:"provider"`
}

type xmlComponent struct {
	Name     string      `xml:"name,attr"`
	Exported bool        `xml:"exported,attr"`
	Filters  []xmlFilter `xml:"intent-filter"`
}

type xmlFilter struct {
	Actions    []xmlNamed `xml:"action"`
	Categories []xmlNamed `xml:"category"`
}

type xmlNamed struct {
	Name string `xml:"name,attr"`
}

// MarshalXMLDoc serializes the manifest as an AndroidManifest.xml-shaped
// document.
func (m *Manifest) MarshalXMLDoc() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	doc := xmlManifest{
		Package:  m.Package,
		Label:    m.Label,
		Category: m.Category,
	}
	for _, p := range m.Permissions {
		doc.Permissions = append(doc.Permissions, xmlUsesPermission{Name: p})
	}
	for _, c := range m.Components {
		xc := xmlComponent{Name: c.Name, Exported: c.Exported}
		for _, f := range c.Filters {
			xf := xmlFilter{}
			for _, a := range f.Actions {
				xf.Actions = append(xf.Actions, xmlNamed{Name: a})
			}
			for _, cat := range f.Categories {
				xf.Categories = append(xf.Categories, xmlNamed{Name: cat})
			}
			xc.Filters = append(xc.Filters, xf)
		}
		switch c.Kind {
		case KindActivity:
			doc.Application.Activities = append(doc.Application.Activities, xc)
		case KindService:
			doc.Application.Services = append(doc.Application.Services, xc)
		case KindReceiver:
			doc.Application.Receivers = append(doc.Application.Receivers, xc)
		case KindProvider:
			doc.Application.Providers = append(doc.Application.Providers, xc)
		}
	}
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("manifest: marshal %s: %w", m.Package, err)
	}
	return append([]byte(xml.Header), out...), nil
}

// ParseXMLDoc parses a document produced by MarshalXMLDoc (or hand-written
// in the same shape) back into a Manifest.
func ParseXMLDoc(data []byte) (*Manifest, error) {
	var doc xmlManifest
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("manifest: parse: %w", err)
	}
	m := &Manifest{
		Package:  doc.Package,
		Label:    doc.Label,
		Category: doc.Category,
	}
	for _, p := range doc.Permissions {
		m.Permissions = append(m.Permissions, p.Name)
	}
	add := func(kind ComponentKind, comps []xmlComponent) {
		for _, xc := range comps {
			c := Component{Kind: kind, Name: xc.Name, Exported: xc.Exported}
			for _, xf := range xc.Filters {
				f := IntentFilter{}
				for _, a := range xf.Actions {
					f.Actions = append(f.Actions, a.Name)
				}
				for _, cat := range xf.Categories {
					f.Categories = append(f.Categories, cat.Name)
				}
				c.Filters = append(c.Filters, f)
			}
			m.Components = append(m.Components, c)
		}
	}
	add(KindActivity, doc.Application.Activities)
	add(KindService, doc.Application.Services)
	add(KindReceiver, doc.Application.Receivers)
	add(KindProvider, doc.Application.Providers)
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Builder provides a fluent way to assemble manifests in scenario code.
type Builder struct {
	m Manifest
}

// NewBuilder starts a manifest for the given package.
func NewBuilder(pkg, label string) *Builder {
	return &Builder{m: Manifest{Package: pkg, Label: label}}
}

// Category sets the Play-store category.
func (b *Builder) Category(c string) *Builder {
	b.m.Category = c
	return b
}

// Permission adds a uses-permission entry.
func (b *Builder) Permission(perms ...string) *Builder {
	b.m.Permissions = append(b.m.Permissions, perms...)
	return b
}

// Activity declares an activity component.
func (b *Builder) Activity(name string, exported bool, filters ...IntentFilter) *Builder {
	b.m.Components = append(b.m.Components, Component{
		Kind: KindActivity, Name: name, Exported: exported, Filters: filters,
	})
	return b
}

// Service declares a service component.
func (b *Builder) Service(name string, exported bool, filters ...IntentFilter) *Builder {
	b.m.Components = append(b.m.Components, Component{
		Kind: KindService, Name: name, Exported: exported, Filters: filters,
	})
	return b
}

// Receiver declares a broadcast receiver component.
func (b *Builder) Receiver(name string, exported bool, filters ...IntentFilter) *Builder {
	b.m.Components = append(b.m.Components, Component{
		Kind: KindReceiver, Name: name, Exported: exported, Filters: filters,
	})
	return b
}

// Provider declares a content provider component.
func (b *Builder) Provider(name string, exported bool) *Builder {
	b.m.Components = append(b.m.Components, Component{
		Kind: KindProvider, Name: name, Exported: exported,
	})
	return b
}

// Build validates and returns the manifest.
func (b *Builder) Build() (*Manifest, error) {
	m := b.m
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// MustBuild is Build that panics on error, for static scenario tables.
func (b *Builder) MustBuild() *Manifest {
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	return m
}

// FullComponentName renders "package/Name", the canonical component
// reference used in explicit intents.
func FullComponentName(pkg, name string) string {
	return pkg + "/" + name
}

// SplitComponentName splits "package/Name" into its parts.
func SplitComponentName(full string) (pkg, name string, err error) {
	i := strings.IndexByte(full, '/')
	if i <= 0 || i == len(full)-1 {
		return "", "", fmt.Errorf("manifest: malformed component name %q", full)
	}
	return full[:i], full[i+1:], nil
}
