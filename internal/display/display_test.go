package display

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/app"
	"repro/internal/hw"
	"repro/internal/manifest"
	"repro/internal/sim"
)

type recorder struct {
	events []string
}

func (r *recorder) BrightnessChanged(t sim.Time, by app.UID, source Source, old, new int) {
	r.events = append(r.events, fmt.Sprintf("bright:%d->%d:%s", old, new, source))
}

func (r *recorder) ModeChanged(t sim.Time, by app.UID, source Source, old, new Mode) {
	r.events = append(r.events, fmt.Sprintf("mode:%s->%s:%s", old, new, source))
}

func fixture(t *testing.T) (*sim.Engine, *hw.Meter, *app.PackageManager, *Display, *recorder) {
	t.Helper()
	e := sim.NewEngine(1)
	b, err := hw.NewBattery(hw.NexusBatteryJ)
	if err != nil {
		t.Fatal(err)
	}
	meter, err := hw.NewMeter(e.Now, hw.Nexus4(), b)
	if err != nil {
		t.Fatal(err)
	}
	pm := app.NewPackageManager()
	d, err := New(e, meter, pm)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	d.AddHooks(rec)
	return e, meter, pm, d, rec
}

func installWriter(t *testing.T, pm *app.PackageManager, pkg string) *app.App {
	t.Helper()
	return pm.MustInstall(manifest.NewBuilder(pkg, pkg).
		Permission(manifest.PermWriteSettings).
		Activity("Main", true).
		MustBuild())
}

func TestDefaults(t *testing.T) {
	_, meter, _, d, _ := fixture(t)
	if d.Mode() != Manual {
		t.Fatalf("mode = %v", d.Mode())
	}
	if d.Brightness() != DefaultBrightness || meter.Brightness() != DefaultBrightness {
		t.Fatalf("brightness = %d", d.Brightness())
	}
}

func TestAppWriteRequiresPermission(t *testing.T) {
	_, _, pm, d, _ := fixture(t)
	noPerm := pm.MustInstall(manifest.NewBuilder("com.noperm", "x").
		Activity("Main", true).MustBuild())
	err := d.SetBrightness(noPerm.UID, SourceApp, 255)
	if err == nil || !strings.Contains(err.Error(), manifest.PermWriteSettings) {
		t.Fatalf("err = %v, want WRITE_SETTINGS failure", err)
	}
	if err := d.SetMode(noPerm.UID, SourceApp, Auto); err == nil {
		t.Fatal("mode change without permission accepted")
	}
	if err := d.SetBrightness(12345, SourceApp, 255); err == nil {
		t.Fatal("unknown uid accepted")
	}
}

func TestSystemAppBypassesPermission(t *testing.T) {
	_, _, pm, d, _ := fixture(t)
	sys, err := pm.InstallSystem(manifest.NewBuilder("android.systemui", "SystemUI").
		Activity("Main", true).MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetBrightness(sys.UID, SourceApp, 200); err != nil {
		t.Fatal(err)
	}
}

func TestManualBrightnessAppliesImmediately(t *testing.T) {
	_, meter, pm, d, rec := fixture(t)
	a := installWriter(t, pm, "com.a")
	if err := d.SetBrightness(a.UID, SourceApp, 255); err != nil {
		t.Fatal(err)
	}
	if meter.Brightness() != 255 {
		t.Fatalf("applied = %d", meter.Brightness())
	}
	if len(rec.events) != 1 || rec.events[0] != "bright:102->255:app" {
		t.Fatalf("events = %v", rec.events)
	}
}

func TestAutoModeDefersAppWrites(t *testing.T) {
	_, meter, pm, d, _ := fixture(t)
	a := installWriter(t, pm, "com.a")
	if err := d.SetMode(a.UID, SourceApp, Auto); err != nil {
		t.Fatal(err)
	}
	if err := d.SetBrightness(a.UID, SourceApp, 255); err != nil {
		t.Fatal(err)
	}
	if meter.Brightness() == 255 {
		t.Fatal("auto mode should not apply app writes")
	}
	if d.SavedBrightness() != 255 {
		t.Fatalf("saved = %d, want 255", d.SavedBrightness())
	}
	// Flipping to manual applies the saved value — the paper's malware #5
	// trick.
	if err := d.SetMode(a.UID, SourceApp, Manual); err != nil {
		t.Fatal(err)
	}
	if meter.Brightness() != 255 {
		t.Fatalf("manual switch should apply saved value, got %d", meter.Brightness())
	}
}

func TestSensorDrivesAutoMode(t *testing.T) {
	_, meter, pm, d, _ := fixture(t)
	a := installWriter(t, pm, "com.a")
	d.SensorReading(30)
	if meter.Brightness() == 30 {
		t.Fatal("sensor should not apply in manual mode")
	}
	if err := d.SetMode(a.UID, SourceApp, Auto); err != nil {
		t.Fatal(err)
	}
	if meter.Brightness() != 30 {
		t.Fatalf("switching to auto should apply sensor level, got %d", meter.Brightness())
	}
	d.SensorReading(90)
	if meter.Brightness() != 90 {
		t.Fatalf("sensor reading not applied, got %d", meter.Brightness())
	}
}

func TestSystemUISliderLeavesAutoMode(t *testing.T) {
	_, meter, pm, d, _ := fixture(t)
	a := installWriter(t, pm, "com.a")
	if err := d.SetMode(a.UID, SourceApp, Auto); err != nil {
		t.Fatal(err)
	}
	// The user drags the brightness slider: mode returns to manual and
	// the value applies.
	if err := d.SetBrightness(app.UIDSystem, SourceSystemUI, 10); err != nil {
		t.Fatal(err)
	}
	if d.Mode() != Manual {
		t.Fatalf("mode = %v, want manual after slider", d.Mode())
	}
	if meter.Brightness() != 10 {
		t.Fatalf("brightness = %d", meter.Brightness())
	}
}

func TestClamping(t *testing.T) {
	_, meter, pm, d, _ := fixture(t)
	a := installWriter(t, pm, "com.a")
	if err := d.SetBrightness(a.UID, SourceApp, 999); err != nil {
		t.Fatal(err)
	}
	if meter.Brightness() != 255 {
		t.Fatalf("brightness = %d, want clamp 255", meter.Brightness())
	}
	if err := d.SetBrightness(a.UID, SourceApp, -1); err != nil {
		t.Fatal(err)
	}
	if meter.Brightness() != 0 {
		t.Fatalf("brightness = %d, want clamp 0", meter.Brightness())
	}
}

func TestInvalidMode(t *testing.T) {
	_, _, pm, d, _ := fixture(t)
	a := installWriter(t, pm, "com.a")
	if err := d.SetMode(a.UID, SourceApp, Mode(0)); err == nil {
		t.Fatal("invalid mode accepted")
	}
}

func TestModeChangeEmitsHooks(t *testing.T) {
	_, _, pm, d, rec := fixture(t)
	a := installWriter(t, pm, "com.a")
	if err := d.SetMode(a.UID, SourceApp, Auto); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range rec.events {
		if ev == "mode:manual->auto:app" {
			found = true
		}
	}
	if !found {
		t.Fatalf("events = %v, want mode change", rec.events)
	}
	// Setting same mode again: no event.
	n := len(rec.events)
	if err := d.SetMode(a.UID, SourceApp, Auto); err != nil {
		t.Fatal(err)
	}
	if len(rec.events) != n {
		t.Fatal("idempotent mode set should not emit")
	}
}

func TestStringers(t *testing.T) {
	if Manual.String() != "manual" || Auto.String() != "auto" {
		t.Fatal("mode names")
	}
	if SourceApp.String() != "app" || SourceSystemUI.String() != "system-ui" || SourceSensor.String() != "sensor" {
		t.Fatal("source names")
	}
	if !strings.Contains(Mode(9).String(), "9") || !strings.Contains(Source(9).String(), "9") {
		t.Fatal("unknown stringers")
	}
}

func TestNewNilDeps(t *testing.T) {
	if _, err := New(nil, nil, nil); err == nil {
		t.Fatal("nil deps accepted")
	}
}
