// Package display reimplements the Android screen-configuration surface
// the paper's attack #5 abuses: the brightness setting (0-255), the
// manual/auto brightness mode, and the settings provider whose saved
// value only takes effect once the mode is manual.
package display

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/hw"
	"repro/internal/manifest"
	"repro/internal/sim"
)

// Mode is the brightness control mode.
type Mode int

// Brightness modes.
const (
	// Manual applies the user/app-set level directly.
	Manual Mode = iota + 1
	// Auto lets the ambient light sensor pick the level; app-set values
	// are saved to the settings provider but not applied.
	Auto
)

func (m Mode) String() string {
	switch m {
	case Manual:
		return "manual"
	case Auto:
		return "auto"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Source records who performed a settings change.
type Source int

// Change sources.
const (
	// SourceApp is a third-party app writing settings.
	SourceApp Source = iota + 1
	// SourceSystemUI is the user acting through the system UI sliders.
	SourceSystemUI
	// SourceSensor is the ambient light sensor in auto mode.
	SourceSensor
)

func (s Source) String() string {
	switch s {
	case SourceApp:
		return "app"
	case SourceSystemUI:
		return "system-ui"
	case SourceSensor:
		return "sensor"
	}
	return fmt.Sprintf("Source(%d)", int(s))
}

// Hooks receive display configuration events; E-Android's monitor
// implements this interface.
type Hooks interface {
	BrightnessChanged(t sim.Time, by app.UID, source Source, old, new int)
	ModeChanged(t sim.Time, by app.UID, source Source, old, new Mode)
}

// Display is the simulated screen-configuration service plus the
// brightness rows of the settings provider.
type Display struct {
	engine *sim.Engine
	meter  *hw.Meter
	pm     *app.PackageManager
	hooks  []Hooks

	mode        Mode
	savedLevel  int // settings-provider value (applied when Manual)
	sensorLevel int // ambient-sensor choice (applied when Auto)
}

// DefaultBrightness is the mid-scale default level a fresh device boots
// with.
const DefaultBrightness = 102

// New builds the display service. The device starts in manual mode at the
// default brightness.
func New(engine *sim.Engine, meter *hw.Meter, pm *app.PackageManager) (*Display, error) {
	if engine == nil || meter == nil || pm == nil {
		return nil, fmt.Errorf("display: nil dependency")
	}
	d := &Display{
		engine:      engine,
		meter:       meter,
		pm:          pm,
		mode:        Manual,
		savedLevel:  DefaultBrightness,
		sensorLevel: DefaultBrightness,
	}
	meter.SetBrightness(DefaultBrightness)
	return d, nil
}

// AddHooks registers an event consumer.
func (d *Display) AddHooks(h Hooks) { d.hooks = append(d.hooks, h) }

// Mode reports the current brightness mode.
func (d *Display) Mode() Mode { return d.mode }

// Brightness reports the currently applied level.
func (d *Display) Brightness() int { return d.meter.Brightness() }

// SavedBrightness reports the settings-provider value (which may differ
// from the applied level while in auto mode).
func (d *Display) SavedBrightness() int { return d.savedLevel }

func clampLevel(level int) int {
	if level < 0 {
		return 0
	}
	if level > hw.MaxBrightness {
		return hw.MaxBrightness
	}
	return level
}

func (d *Display) checkWriter(by app.UID, source Source) error {
	if source != SourceApp {
		return nil
	}
	a := d.pm.ByUID(by)
	if a == nil {
		return fmt.Errorf("display: unknown uid %d", by)
	}
	if a.System {
		return nil
	}
	if !a.Manifest.HasPermission(manifest.PermWriteSettings) {
		return fmt.Errorf("display: %s lacks %s", a.Package(), manifest.PermWriteSettings)
	}
	return nil
}

// SetBrightness writes the brightness setting. App writers need the
// WRITE_SETTINGS permission. In manual mode the level applies
// immediately; in auto mode it is saved but not applied (the paper's
// malware #5 must therefore also flip the mode, or piggyback on a
// system-set value).
func (d *Display) SetBrightness(by app.UID, source Source, level int) error {
	if err := d.checkWriter(by, source); err != nil {
		return err
	}
	level = clampLevel(level)
	old := d.Brightness()
	d.savedLevel = level
	if d.mode == Manual || source == SourceSystemUI {
		if source == SourceSystemUI && d.mode == Auto {
			// User dragging the slider implicitly leaves auto mode.
			d.setMode(by, source, Manual)
		}
		d.meter.SetBrightness(level)
	}
	applied := d.Brightness()
	if applied != old || d.savedLevel != old {
		for _, h := range d.hooks {
			h.BrightnessChanged(d.engine.Now(), by, source, old, applied)
		}
	}
	return nil
}

// SetMode switches between manual and auto brightness. Switching to
// manual applies the saved settings-provider level; switching to auto
// hands control back to the sensor.
func (d *Display) SetMode(by app.UID, source Source, mode Mode) error {
	if mode != Manual && mode != Auto {
		return fmt.Errorf("display: invalid mode %d", int(mode))
	}
	if err := d.checkWriter(by, source); err != nil {
		return err
	}
	if d.mode == mode {
		return nil
	}
	d.setMode(by, source, mode)
	return nil
}

func (d *Display) setMode(by app.UID, source Source, mode Mode) {
	old := d.mode
	d.mode = mode
	for _, h := range d.hooks {
		h.ModeChanged(d.engine.Now(), by, source, old, mode)
	}
	oldLevel := d.Brightness()
	switch mode {
	case Manual:
		d.meter.SetBrightness(d.savedLevel)
	case Auto:
		d.meter.SetBrightness(d.sensorLevel)
	}
	if d.Brightness() != oldLevel {
		for _, h := range d.hooks {
			h.BrightnessChanged(d.engine.Now(), by, source, oldLevel, d.Brightness())
		}
	}
}

// SensorReading feeds an ambient light sensor value; it only affects the
// applied level in auto mode.
func (d *Display) SensorReading(level int) {
	level = clampLevel(level)
	d.sensorLevel = level
	if d.mode != Auto {
		return
	}
	old := d.Brightness()
	if old == level {
		return
	}
	d.meter.SetBrightness(level)
	for _, h := range d.hooks {
		h.BrightnessChanged(d.engine.Now(), app.UIDSystem, SourceSensor, old, level)
	}
}
