package network_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/device"
	"repro/internal/hw"
	"repro/internal/manifest"
	"repro/internal/network"
	"repro/internal/power"
)

func fixture(t *testing.T) (*device.Device, *app.App, *app.App) {
	t.Helper()
	dev, err := device.New(device.Config{})
	if err != nil {
		t.Fatal(err)
	}
	a := dev.Packages.MustInstall(manifest.NewBuilder("com.a", "A").
		Activity("Main", true).MustBuild())
	b := dev.Packages.MustInstall(manifest.NewBuilder("com.b", "B").
		Activity("Main", true).MustBuild())
	return dev, a, b
}

func TestDurationScalesWithPayload(t *testing.T) {
	dev, _, _ := fixture(t)
	small := dev.Network.Duration(1)
	big := dev.Network.Duration(100 << 20) // 100 MiB
	if small != 50*time.Millisecond {
		t.Fatalf("small transfer window = %v, want 50ms floor", small)
	}
	// 100 MiB at 20 Mbit/s ≈ 41.9 s.
	want := time.Duration(float64(100<<20*8) / network.DefaultBandwidthBps * float64(time.Second))
	if big != want {
		t.Fatalf("big transfer window = %v, want %v", big, want)
	}
	if dev.Network.Duration(0) != 50*time.Millisecond {
		t.Fatal("zero payload should cost the floor")
	}
}

func TestSendHoldsRadioThenTails(t *testing.T) {
	dev, a, _ := fixture(t)
	// 25 Mbit at 20 Mbit/s = 1.25 s window.
	tr, err := dev.Network.Send(a.UID, 25_000_000/8)
	if err != nil {
		t.Fatal(err)
	}
	if !dev.Meter.Holding(hw.WiFi, a.UID) {
		t.Fatal("radio should be high during transfer")
	}
	if err := dev.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !tr.Done() {
		t.Fatal("transfer should complete")
	}
	if dev.Meter.Holding(hw.WiFi, a.UID) {
		t.Fatal("radio should drop after transfer")
	}
	if !dev.Meter.InWiFiTail(a.UID) {
		t.Fatal("radio should ride the tail after transfer")
	}
}

func TestSendToBillsBothEndpoints(t *testing.T) {
	dev, a, b := fixture(t)
	if _, err := dev.Network.SendTo(a.UID, b.UID, 25_000_000/8); err != nil {
		t.Fatal(err)
	}
	if !dev.Meter.Holding(hw.WiFi, a.UID) || !dev.Meter.Holding(hw.WiFi, b.UID) {
		t.Fatal("both endpoints should hold the radio")
	}
	if err := dev.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	dev.Flush()
	// Radio energy split while both hold; both got WiFi energy.
	if dev.Android.AppUsage(a.UID)[hw.WiFi] <= 0 || dev.Android.AppUsage(b.UID)[hw.WiFi] <= 0 {
		t.Fatal("both endpoints should be billed radio energy")
	}
}

func TestSendToRevivesReceiver(t *testing.T) {
	dev, a, b := fixture(t)
	b.Kill()
	if _, err := dev.Network.SendTo(a.UID, b.UID, 100); err != nil {
		t.Fatal(err)
	}
	if !b.Alive() {
		t.Fatal("incoming traffic should revive the receiver")
	}
}

func TestSendValidation(t *testing.T) {
	dev, a, _ := fixture(t)
	if _, err := dev.Network.Send(999, 10); err == nil {
		t.Fatal("unknown sender accepted")
	}
	if _, err := dev.Network.SendTo(a.UID, 888, 10); err == nil {
		t.Fatal("unknown receiver accepted")
	}
	if _, err := dev.Network.Send(a.UID, -1); err == nil {
		t.Fatal("negative payload accepted")
	}
	a.Kill()
	if _, err := dev.Network.Send(a.UID, 10); err == nil {
		t.Fatal("dead sender accepted")
	}
	if err := dev.Network.SetBandwidth(0); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
}

func TestActiveList(t *testing.T) {
	dev, a, b := fixture(t)
	if len(dev.Network.Active()) != 0 {
		t.Fatal("no transfers yet")
	}
	if _, err := dev.Network.SendTo(a.UID, b.UID, 50_000_000); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Network.Send(a.UID, 10_000_000); err != nil {
		t.Fatal(err)
	}
	act := dev.Network.Active()
	if len(act) != 2 || act[0].Until > act[1].Until {
		t.Fatalf("active = %+v", act)
	}
}

func TestRepeatedRequestsKeepRadioWarm(t *testing.T) {
	// Requests every 2 s with a 3 s tail: the victim's radio never goes
	// fully cold — the classic attack's energy multiplier. A partial
	// wakelock keeps the platform out of deep sleep (the attacker's app
	// holds one, as real bombers do; a suspended platform would halt the
	// exchange entirely).
	dev, a, b := fixture(t)
	holder, err := dev.Packages.InstallSystem(manifest.NewBuilder("android.test.holder", "Holder").
		Activity("Main", true).MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Power.Acquire(holder.UID, power.Partial, "bomb"); err != nil {
		t.Fatal(err)
	}
	if err := dev.Network.RepeatedRequests(a.UID, b.UID, 1000, 2*time.Second, 30); err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(59 * time.Second); err != nil {
		t.Fatal(err)
	}
	dev.Flush()
	bWiFi := dev.Android.AppUsage(b.UID)[hw.WiFi]
	// Lower bound: the radio spent ≥55 of 60 s in (at least) the
	// low-power state on the victim's account.
	p := hw.Nexus4()
	if bWiFi < p.WiFiLow/1000*55 {
		t.Fatalf("victim radio energy = %v, radio went cold", bWiFi)
	}
	// And the baseline interface plainly shows the victim burning —
	// classic attacks are visible, unlike collateral ones.
	if dev.Android.AppJ(b.UID) <= 0 {
		t.Fatal("victim should be visible in the baseline")
	}
}

func TestRepeatedRequestsValidation(t *testing.T) {
	dev, a, b := fixture(t)
	if err := dev.Network.RepeatedRequests(a.UID, b.UID, 10, time.Second, 0); err == nil {
		t.Fatal("zero count accepted")
	}
	if err := dev.Network.RepeatedRequests(a.UID, b.UID, 10, 0, 3); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestEnergyPerTransferExact(t *testing.T) {
	dev, a, _ := fixture(t)
	p := hw.Nexus4()
	// One 1.25 s transfer then idle past the tail.
	window := dev.Network.Duration(25_000_000 / 8)
	if _, err := dev.Network.Send(a.UID, 25_000_000/8); err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(window + p.WiFiTail + time.Second); err != nil {
		t.Fatal(err)
	}
	dev.Flush()
	want := p.WiFiHigh/1000*window.Seconds() + p.WiFiLow/1000*p.WiFiTail.Seconds()
	got := dev.Android.AppUsage(a.UID)[hw.WiFi]
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("transfer radio energy = %v, want %v", got, want)
	}
}

func TestNewManagerNilDeps(t *testing.T) {
	if _, err := network.NewManager(nil, nil, nil); err == nil {
		t.Fatal("nil deps accepted")
	}
}
