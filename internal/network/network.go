// Package network models traffic-driven radio energy: a transfer holds
// the WiFi radio in its high-power state for a duration derived from the
// payload size and link bandwidth, and the hardware meter's tail state
// applies once the transfer completes. Closely spaced requests therefore
// keep the radio warm — the physics behind Martin et al.'s
// repeated-network-request battery attack, which this package's
// RepeatedRequests helper reproduces as a classic (non-collateral,
// baseline-visible) bomber.
package network

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/app"
	"repro/internal/hw"
	"repro/internal/sim"
)

// DefaultBandwidthBps is the modeled link rate (20 Mbit/s WiFi).
const DefaultBandwidthBps = 20_000_000

// minTransfer bounds how short a transfer's radio window can be; even a
// tiny request pays connection setup.
const minTransfer = 50 * time.Millisecond

// Transfer is one in-flight or completed transmission.
type Transfer struct {
	From  app.UID
	To    app.UID // app.UIDNone for a remote host outside the device
	Bytes int64
	Until sim.Time

	done bool
	// rxKey is the aggregator key for the receiver-side demand.
	rxKey *int
}

// Done reports whether the transfer completed.
func (t *Transfer) Done() bool { return t.done }

// Manager models the device's network interface.
type Manager struct {
	engine *sim.Engine
	pm     *app.PackageManager
	agg    *hw.Aggregator

	bandwidthBps float64
	transfers    map[*Transfer]struct{}
}

// NewManager builds the network manager.
func NewManager(engine *sim.Engine, pm *app.PackageManager, agg *hw.Aggregator) (*Manager, error) {
	if engine == nil || pm == nil || agg == nil {
		return nil, fmt.Errorf("network: nil dependency")
	}
	return &Manager{
		engine:       engine,
		pm:           pm,
		agg:          agg,
		bandwidthBps: DefaultBandwidthBps,
		transfers:    make(map[*Transfer]struct{}),
	}, nil
}

// SetBandwidth overrides the modeled link rate in bits per second.
func (m *Manager) SetBandwidth(bps float64) error {
	if bps <= 0 {
		return fmt.Errorf("network: non-positive bandwidth %v", bps)
	}
	m.bandwidthBps = bps
	return nil
}

// Duration reports how long a payload keeps the radio in its high state.
func (m *Manager) Duration(bytes int64) time.Duration {
	if bytes <= 0 {
		return minTransfer
	}
	d := time.Duration(float64(bytes*8) / m.bandwidthBps * float64(time.Second))
	if d < minTransfer {
		d = minTransfer
	}
	return d
}

// Send transmits bytes from an app to a remote host: the sender's radio
// goes high for the transfer window, then rides the tail.
func (m *Manager) Send(from app.UID, bytes int64) (*Transfer, error) {
	return m.SendTo(from, app.UIDNone, bytes)
}

// SendTo transmits bytes between two apps on (or off) the device. Both
// endpoints' radios go high for the window: this is how a network bomber
// burns a victim's battery remotely.
func (m *Manager) SendTo(from, to app.UID, bytes int64) (*Transfer, error) {
	sender := m.pm.ByUID(from)
	if sender == nil {
		return nil, fmt.Errorf("network: unknown sender uid %d", from)
	}
	if !sender.Alive() {
		return nil, fmt.Errorf("network: sender %s is dead", sender.Package())
	}
	if bytes < 0 {
		return nil, fmt.Errorf("network: negative payload %d", bytes)
	}
	var receiver *app.App
	if to != app.UIDNone {
		receiver = m.pm.ByUID(to)
		if receiver == nil {
			return nil, fmt.Errorf("network: unknown receiver uid %d", to)
		}
		if !receiver.Alive() {
			receiver.Revive()
		}
	}
	window := m.Duration(bytes)
	t := &Transfer{
		From: from, To: to, Bytes: bytes,
		Until: m.engine.Now().Add(window),
		rxKey: new(int),
	}
	m.transfers[t] = struct{}{}

	// Radio high + a small protocol-processing CPU share per endpoint.
	if err := m.agg.Set(t, from, hw.Demand{WiFi: true, CPUUtil: 0.05}); err != nil {
		return nil, err
	}
	if receiver != nil {
		if err := m.agg.Set(t.rxKey, to, hw.Demand{WiFi: true, CPUUtil: 0.05}); err != nil {
			_ = m.agg.Clear(t)
			return nil, err
		}
	}
	m.engine.After(window, "network.transfer-done", func() {
		t.done = true
		delete(m.transfers, t)
		_ = m.agg.Clear(t)
		if receiver != nil {
			_ = m.agg.Clear(t.rxKey)
		}
	})
	return t, nil
}

// Active returns in-flight transfers sorted by deadline then sender.
func (m *Manager) Active() []*Transfer {
	out := make([]*Transfer, 0, len(m.transfers))
	for t := range m.transfers {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Until != out[j].Until {
			return out[i].Until < out[j].Until
		}
		return out[i].From < out[j].From
	})
	return out
}

// RepeatedRequests schedules the classic bomber: count transfers of the
// given size from attacker to victim, spaced every interval. Spacing the
// requests inside the radio's tail keeps both radios permanently warm.
func (m *Manager) RepeatedRequests(from, to app.UID, bytes int64, every time.Duration, count int) error {
	if count <= 0 {
		return fmt.Errorf("network: non-positive count %d", count)
	}
	if every <= 0 {
		return fmt.Errorf("network: non-positive interval %v", every)
	}
	if _, err := m.SendTo(from, to, bytes); err != nil {
		return err
	}
	for i := 1; i < count; i++ {
		m.engine.After(time.Duration(i)*every, "network.repeat-request", func() {
			_, _ = m.SendTo(from, to, bytes)
		})
	}
	return nil
}
