package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// failWriter fails every Write after the first `allow` bytes have been
// accepted — the shape of a full disk. With allow larger than the
// payload but smaller than bufio's buffer, the failure only surfaces at
// Flush, which is exactly the path the exporters must propagate.
type failWriter struct {
	allow int
	wrote int
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.wrote+len(p) > w.allow {
		n := w.allow - w.wrote
		if n < 0 {
			n = 0
		}
		w.wrote += n
		return n, fmt.Errorf("failWriter: full after %d bytes", w.allow)
	}
	w.wrote += len(p)
	return len(p), nil
}

func exportEvents() []Event {
	return []Event{
		{T: 0, Kind: KindSimEvent, Name: "boot"},
		{T: 1e9, Kind: KindAttribution, UID: 10001, V0: 1.5},
		{T: 2e9, Kind: KindAnomaly, UID: 10001, Name: "drain-spike", To: "x", V0: 120, V1: 20},
	}
}

// TestExportersPropagateWriterErrors drives every event exporter into a
// writer that fails at various cut points — including failure only at
// the final buffered flush — and requires the error back.
func TestExportersPropagateWriterErrors(t *testing.T) {
	events := exportEvents()
	exporters := []struct {
		name string
		run  func(w *failWriter) error
	}{
		{"WriteTrace", func(w *failWriter) error { return WriteTrace(w, 0, events) }},
		{"WriteJSONL", func(w *failWriter) error { return WriteJSONL(w, events) }},
		{"WriteText", func(w *failWriter) error { return WriteText(w, events) }},
	}
	for _, ex := range exporters {
		// Full output size, to pick interesting cut points.
		probe := &failWriter{allow: 1 << 20}
		if err := ex.run(probe); err != nil {
			t.Fatalf("%s: unexpected error on roomy writer: %v", ex.name, err)
		}
		total := probe.wrote
		if total == 0 {
			t.Fatalf("%s wrote nothing", ex.name)
		}
		// Fail at first byte, mid-stream, and one byte short: the last
		// case only errors inside bufio's Flush (the exporters' payloads
		// are smaller than its buffer), which an unchecked Flush would
		// silently swallow.
		for _, allow := range []int{0, total / 2, total - 1} {
			if err := ex.run(&failWriter{allow: allow}); err == nil {
				t.Errorf("%s: writer failing after %d/%d bytes, got nil error", ex.name, allow, total)
			}
		}
	}
}

// TestExportFilesPropagatesCreateError covers the file-backed path: an
// unwritable destination must fail loudly for every output.
func TestExportFilesPropagatesCreateError(t *testing.T) {
	r := New(Options{})
	r.RecordSimEvent(0, "boot", 0)
	bad := filepath.Join(t.TempDir(), "missing-dir", "out")
	for i, args := range [][3]string{{bad, "", ""}, {"", bad, ""}, {"", "", bad}} {
		if err := ExportFiles(r, args[0], args[1], args[2]); err == nil {
			t.Errorf("arg %d: ExportFiles into missing dir, got nil error", i)
		}
	}
}

// TestExportFilesWritesAllOutputs is the happy path: three non-empty
// files with the expected shapes.
func TestExportFilesWritesAllOutputs(t *testing.T) {
	r := New(Options{})
	r.RecordSimEvent(0, "boot", 0)
	r.RecordAttribution(1e9, 10001, 2.5)
	dir := t.TempDir()
	trace, events, metrics := filepath.Join(dir, "t.json"), filepath.Join(dir, "e.jsonl"), filepath.Join(dir, "m.txt")
	if err := ExportFiles(r, trace, events, metrics); err != nil {
		t.Fatal(err)
	}
	for path, want := range map[string]string{
		trace:   `"traceEvents"`,
		events:  `"kind"`,
		metrics: "telemetry.ring_capacity",
	} {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(b), want) {
			t.Errorf("%s: missing %q in:\n%s", path, want, b)
		}
	}
}
