package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder claims enabled")
	}
	r.SetEnabled(true)
	r.RecordSimEvent(0, "x", 1)
	r.RecordLifecycle(0, 1, "c", "a", "b")
	r.RecordPowerState(0, 1, "screen", 0, 1)
	r.RecordBattery(0, 1, 99)
	r.RecordAttribution(0, 1, 0.5)
	r.ObserveComponentMW("cpu", 100)
	if r.Total() != 0 || r.Dropped() != 0 || r.Events() != nil || r.Metrics() != nil {
		t.Fatal("nil recorder accumulated state")
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var m *Metrics
	c := m.Counter("c")
	c.Inc()
	c.Add(2)
	g := m.Gauge("g")
	g.Set(1)
	g.SetMax(2)
	h := m.Histogram("h", PowerBuckets)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments accumulated state")
	}
	if s := m.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestDisabledRecorderRecordsNothing(t *testing.T) {
	r := New(Options{Disabled: true})
	if r.Enabled() {
		t.Fatal("disabled recorder claims enabled")
	}
	r.RecordSimEvent(0, "x", 1)
	r.RecordBattery(0, 1, 99)
	if r.Total() != 0 || len(r.Events()) != 0 {
		t.Fatal("disabled recorder recorded events")
	}
	if v := r.Metrics().Counter("sim.events_fired").Value(); v != 0 {
		t.Fatalf("disabled recorder bumped counters: %v", v)
	}
	r.SetEnabled(true)
	r.RecordSimEvent(0, "x", 1)
	if r.Total() != 1 {
		t.Fatal("SetEnabled(true) did not resume recording")
	}
}

func TestRingWrapKeepsNewestOldestFirst(t *testing.T) {
	r := New(Options{EventCapacity: 4})
	names := []string{"a", "b", "c", "d", "e", "f"}
	for i, n := range names {
		r.RecordSimEvent(sim.Time(i)*sim.Second, n, i)
	}
	if r.Total() != 6 || r.Dropped() != 2 {
		t.Fatalf("total/dropped = %d/%d, want 6/2", r.Total(), r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, want := range []string{"c", "d", "e", "f"} {
		if evs[i].Name != want {
			t.Fatalf("events[%d] = %q, want %q (got %+v)", i, evs[i].Name, want, evs)
		}
	}
	// Partial fill: oldest-first without wrap.
	r2 := New(Options{EventCapacity: 4})
	r2.RecordSimEvent(0, "only", 0)
	if evs := r2.Events(); len(evs) != 1 || evs[0].Name != "only" {
		t.Fatalf("partial ring events = %+v", evs)
	}
}

func TestNegativeCapacityKeepsMetricsOnly(t *testing.T) {
	r := New(Options{EventCapacity: -1})
	r.RecordSimEvent(0, "x", 3)
	if len(r.Events()) != 0 {
		t.Fatal("negative capacity retained events")
	}
	if v := r.Metrics().Counter("sim.events_fired").Value(); v != 1 {
		t.Fatalf("events_fired = %v, want 1 (metrics must stay live)", v)
	}
}

func TestRecorderFeedsInstruments(t *testing.T) {
	r := New(Options{})
	r.RecordSimEvent(0, "a", 3)
	r.RecordSimEvent(sim.Second, "b", 7)
	r.RecordSimEvent(2*sim.Second, "c", 2)
	r.RecordLifecycle(0, 10001, "app/.Main", "stopped", "resumed")
	r.RecordPowerState(0, 1000, "screen", 0, 1)
	r.RecordBattery(0, 0.5, 99.9)
	r.RecordAttribution(0, 10001, 0.25)
	r.RecordAttribution(0, 10001, 0.75)
	r.ObserveComponentMW("cpu", 123)

	m := r.Metrics()
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"sim.events_fired", m.Counter("sim.events_fired").Value(), 3},
		{"sim.queue_depth", m.Gauge("sim.queue_depth").Value(), 2},
		{"sim.queue_depth_max", m.Gauge("sim.queue_depth_max").Value(), 7},
		{"activity.lifecycle_transitions", m.Counter("activity.lifecycle_transitions").Value(), 1},
		{"hw.power_state_changes", m.Counter("hw.power_state_changes").Value(), 1},
		{"hw.battery_updates", m.Counter("hw.battery_updates").Value(), 1},
		{"acct.attributions", m.Counter("acct.attributions").Value(), 2},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	h := m.Histogram("acct.j_per_interval.uid10001", EnergyBuckets)
	if h.Count() != 2 || h.Sum() != 1.0 {
		t.Fatalf("uid histogram count/sum = %d/%v, want 2/1", h.Count(), h.Sum())
	}
	hc := m.Histogram("hw.mw.cpu", PowerBuckets)
	if hc.Count() != 1 || hc.Sum() != 123 {
		t.Fatalf("cpu mW histogram count/sum = %d/%v", hc.Count(), hc.Sum())
	}
}

func TestHistogramBucketing(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	s := m.Snapshot().Histograms[0]
	want := []uint64{2, 2, 1, 1} // <=1: {0.5, 1}; <=10: {5, 10}; <=100: {50}; inf: {1000}
	for i, n := range want {
		if s.Counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], n, s.Counts)
		}
	}
}

func TestSnapshotSortedAndStable(t *testing.T) {
	build := func(order []string) *Snapshot {
		m := NewMetrics()
		for _, n := range order {
			m.Counter(n).Inc()
			m.Gauge("g." + n).Set(2)
			m.Histogram("h."+n, PowerBuckets).Observe(5)
		}
		return m.Snapshot()
	}
	a := build([]string{"z", "a", "m"})
	b := build([]string{"m", "z", "a"})
	if a.Text() != b.Text() {
		t.Fatalf("snapshot text depends on registration order:\n%s\nvs\n%s", a.Text(), b.Text())
	}
	for i := 1; i < len(a.Counters); i++ {
		if a.Counters[i-1].Name >= a.Counters[i].Name {
			t.Fatalf("counters not sorted: %+v", a.Counters)
		}
	}
	txt := a.Text()
	for _, want := range []string{"# counters\n", "# gauges\n", "# histograms\n", "a 1\n", "g.a 2\n"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("text dump missing %q:\n%s", want, txt)
		}
	}
}

func TestMergeSnapshots(t *testing.T) {
	mk := func(cv, gv float64, hv ...float64) *Snapshot {
		m := NewMetrics()
		m.Counter("c").Add(cv)
		m.Gauge("g").Set(gv)
		h := m.Histogram("h", []float64{1, 10})
		for _, v := range hv {
			h.Observe(v)
		}
		return m.Snapshot()
	}
	merged, err := MergeSnapshots([]*Snapshot{mk(1, 2, 0.5), nil, mk(3, 4, 5, 100)})
	if err != nil {
		t.Fatal(err)
	}
	if v := merged.Counters[0].Value; v != 4 {
		t.Fatalf("merged counter = %v, want 4", v)
	}
	if v := merged.Gauges[0].Value; v != 6 {
		t.Fatalf("merged gauge = %v, want 6", v)
	}
	h := merged.Histograms[0]
	if h.Count != 3 || h.Sum != 105.5 {
		t.Fatalf("merged histogram count/sum = %d/%v, want 3/105.5", h.Count, h.Sum)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[2] != 1 {
		t.Fatalf("merged histogram counts = %v", h.Counts)
	}

	// Mismatched bounds must refuse to merge.
	m2 := NewMetrics()
	m2.Histogram("h", []float64{1, 2, 3}).Observe(1)
	if _, err := MergeSnapshots([]*Snapshot{mk(1, 1, 1), m2.Snapshot()}); err == nil {
		t.Fatal("merge accepted mismatched histogram bounds")
	}
}

func TestWriteTraceIsValidAndDeterministic(t *testing.T) {
	events := []Event{
		{T: sim.Time(1500 * sim.Millisecond), Kind: KindSimEvent, Name: "tick", V0: 2},
		{T: 2 * sim.Second, Kind: KindLifecycle, Name: "app/.Main", UID: 10001, From: "stopped", To: "resumed"},
		{T: 3 * sim.Second, Kind: KindPowerState, Name: "screen", UID: 1000, V0: 0, V1: 1},
		{T: 4 * sim.Second, Kind: KindBattery, Name: "battery", V0: 0.5, V1: 99.5},
		{T: 5 * sim.Second, Kind: KindAttribution, Name: "attribution", UID: 10001, V0: 0.25},
	}
	var a, b bytes.Buffer
	if err := WriteTrace(&a, 0, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&b, 0, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("trace export is not deterministic")
	}
	var tf struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(a.Bytes(), &tf); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	meta, inst := 0, 0
	for _, te := range tf.TraceEvents {
		switch te.Phase {
		case "M":
			meta++
		case "i":
			inst++
		default:
			t.Fatalf("unexpected phase %q", te.Phase)
		}
	}
	if meta != 1+len(kindLanes) {
		t.Fatalf("metadata events = %d, want %d", meta, 1+len(kindLanes))
	}
	if inst != len(events) {
		t.Fatalf("instant events = %d, want %d", inst, len(events))
	}
	// The kernel event lands at 1.5s = 1.5e6 us on the sim lane.
	first := tf.TraceEvents[meta]
	if first.Name != "tick" || first.TS != 1.5e6 || first.TID != 1 {
		t.Fatalf("kernel event = %+v, want tick at ts=1.5e6 on tid 1", first)
	}
	if first.Args["queue_depth"] != 2.0 {
		t.Fatalf("kernel args = %v", first.Args)
	}
}

func TestWriteJSONLRoundTrips(t *testing.T) {
	events := []Event{
		{T: sim.Second, Kind: KindSimEvent, Name: "tick", V0: 1},
		{T: 2 * sim.Second, Kind: KindBattery, Name: "battery", V0: 0.5, V1: 99},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d invalid JSON: %v", lines, err)
		}
		if _, ok := m["kind"].(string); !ok {
			t.Fatalf("line %d: kind not a string: %v", lines, m["kind"])
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("jsonl lines = %d, want 2", lines)
	}
}

func TestWriteTextLegacyFormat(t *testing.T) {
	events := []Event{
		{T: sim.Time(1500 * sim.Millisecond), Kind: KindSimEvent, Name: "meter.accrue"},
		{T: 2 * sim.Second, Kind: KindBattery, Name: "battery", V0: 0.5, V1: 99.5},
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	// Kernel events keep the exact legacy "-trace" stdout shape.
	if lines[0] != "T+1.5s meter.accrue" {
		t.Fatalf("legacy line = %q, want %q", lines[0], "T+1.5s meter.accrue")
	}
	if !strings.Contains(lines[1], "[battery]") {
		t.Fatalf("battery line missing kind tag: %q", lines[1])
	}
}

func TestInstrumentEngineRecordsKernelEvents(t *testing.T) {
	e := sim.NewEngine(1)
	r := New(Options{})
	if !InstrumentEngine(e, r) {
		t.Fatal("InstrumentEngine did not attach the trace log")
	}
	e.Schedule(sim.Second, "a", func() {})
	e.Schedule(2*sim.Second, "b", func() {})
	if err := e.Drain(10); err != nil {
		t.Fatal(err)
	}
	if r.Total() != 2 {
		t.Fatalf("recorded %d events, want 2", r.Total())
	}
	evs := r.Events()
	if evs[0].Kind != KindSimEvent || evs[0].Name != "a" || evs[0].T != sim.Second {
		t.Fatalf("first event = %+v", evs[0])
	}
	r.SetEnabled(false)
	e.Schedule(3*sim.Second, "c", func() {})
	if err := e.Drain(10); err != nil {
		t.Fatal(err)
	}
	if r.Total() != 2 {
		t.Fatal("detached trace log still recording")
	}
	if InstrumentEngine(nil, r) || InstrumentEngine(e, nil) {
		t.Fatal("InstrumentEngine must report false for nil arguments")
	}
}

func TestDisabledRecorderLeavesEngineUntraced(t *testing.T) {
	e := sim.NewEngine(1)
	r := New(Options{Disabled: true})
	if InstrumentEngine(e, r) {
		t.Fatal("disabled recorder attached a trace log")
	}
	e.Schedule(sim.Second, "a", func() {})
	if err := e.Drain(10); err != nil {
		t.Fatal(err)
	}
	if r.Total() != 0 {
		t.Fatal("disabled recorder saw kernel events")
	}
	// Enabling attaches retroactively; disabling detaches again.
	r.SetEnabled(true)
	e.Schedule(2*sim.Second, "b", func() {})
	if err := e.Drain(10); err != nil {
		t.Fatal(err)
	}
	if r.Total() != 1 || r.Events()[0].Name != "b" {
		t.Fatalf("enabled recorder events = %+v, want [b]", r.Events())
	}
	r.SetEnabled(false)
	e.Schedule(3*sim.Second, "c", func() {})
	if err := e.Drain(10); err != nil {
		t.Fatal(err)
	}
	if r.Total() != 1 {
		t.Fatal("disabled recorder kept its tracer attached")
	}
}
