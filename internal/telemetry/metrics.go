package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Counter is a monotone accumulator. Methods are nil-safe so call sites
// never branch on whether telemetry is wired.
type Counter struct{ v float64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add accumulates d (negative deltas are ignored: counters are monotone).
func (c *Counter) Add(d float64) {
	if c != nil && d > 0 {
		c.v += d
	}
}

// Value reports the accumulated total.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time value.
type Gauge struct{ v float64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// SetMax keeps the maximum of the current value and v.
func (g *Gauge) SetMax(v float64) {
	if g != nil && v > g.v {
		g.v = v
	}
}

// Value reports the gauge's current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram accumulates a distribution over fixed bucket boundaries:
// counts[i] counts observations <= bounds[i], with one overflow bucket.
type Histogram struct {
	bounds []float64
	counts []uint64
	sum    float64
	n      uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.n++
	h.sum += v
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Standard bucket ladders. Decade-ish spacing covers the simulation's
// dynamic range without per-metric tuning.
var (
	// PowerBuckets spans component draws from sub-mW to multi-watt.
	PowerBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}
	// EnergyBuckets spans per-interval attributions from nanojoules to
	// kilojoules.
	EnergyBuckets = []float64{1e-9, 1e-7, 1e-5, 1e-3, 1e-2, 0.1, 1, 10, 100, 1000}
)

// Metrics is a registry of named instruments. Like the Recorder (and the
// engine both observe), it is single-goroutine: instrument updates are
// plain stores, which is what keeps the enabled hot path cheap. Fleet
// runs give each device its own registry and merge snapshots.
type Metrics struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid no-op instrument) on a nil registry.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	c := m.counters[name]
	if c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	g := m.gauges[name]
	if g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (bounds are ignored if it already exists;
// they must be sorted ascending).
func (m *Metrics) Histogram(name string, bounds []float64) *Histogram {
	if m == nil {
		return nil
	}
	h := m.hists[name]
	if h == nil {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		h = &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
		m.hists[name] = h
	}
	return h
}

// CounterSnapshot is one counter's frozen value.
type CounterSnapshot struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// GaugeSnapshot is one gauge's frozen value.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramSnapshot is one histogram's frozen state. Counts has one more
// element than Bounds (the overflow bucket).
type HistogramSnapshot struct {
	Name   string    `json:"name"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
}

// Snapshot is an order-stable freeze of a registry: every section is
// sorted by name, so two registries that saw the same updates render
// byte-identically regardless of registration or map order.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry. Nil-safe: a nil registry yields an
// empty snapshot.
func (m *Metrics) Snapshot() *Snapshot {
	s := &Snapshot{}
	if m == nil {
		return s
	}
	for name, c := range m.counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Value: c.v})
	}
	for name, g := range m.gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Value: g.v})
	}
	for name, h := range m.hists {
		bounds := make([]float64, len(h.bounds))
		copy(bounds, h.bounds)
		counts := make([]uint64, len(h.counts))
		copy(counts, h.counts)
		s.Histograms = append(s.Histograms, HistogramSnapshot{
			Name: name, Count: h.n, Sum: h.sum, Bounds: bounds, Counts: counts,
		})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// MergeSnapshots folds snaps into one aggregate, in the given order:
// counters and gauges sum (a fleet gauge aggregate is the sum of
// per-device final values), histograms add bucket counts and sums.
// Because every float accumulation follows the slice order, merging
// per-device snapshots in device-index order yields byte-identical
// aggregates for any worker count. Nil snapshots are skipped; mismatched
// histogram bounds are an error.
func MergeSnapshots(snaps []*Snapshot) (*Snapshot, error) {
	counters := make(map[string]float64)
	gauges := make(map[string]float64)
	hists := make(map[string]*HistogramSnapshot)
	for _, s := range snaps {
		if s == nil {
			continue
		}
		for _, c := range s.Counters {
			counters[c.Name] += c.Value
		}
		for _, g := range s.Gauges {
			gauges[g.Name] += g.Value
		}
		for _, h := range s.Histograms {
			dst := hists[h.Name]
			if dst == nil {
				cp := HistogramSnapshot{
					Name:   h.Name,
					Count:  h.Count,
					Sum:    h.Sum,
					Bounds: append([]float64(nil), h.Bounds...),
					Counts: append([]uint64(nil), h.Counts...),
				}
				hists[h.Name] = &cp
				continue
			}
			if len(dst.Bounds) != len(h.Bounds) {
				return nil, fmt.Errorf("telemetry: merge %q: bucket count mismatch (%d vs %d)",
					h.Name, len(dst.Bounds), len(h.Bounds))
			}
			for i, b := range h.Bounds {
				if dst.Bounds[i] != b {
					return nil, fmt.Errorf("telemetry: merge %q: bound %d mismatch (%g vs %g)",
						h.Name, i, dst.Bounds[i], b)
				}
			}
			dst.Count += h.Count
			dst.Sum += h.Sum
			for i, n := range h.Counts {
				dst.Counts[i] += n
			}
		}
	}
	out := &Snapshot{}
	for name, v := range counters {
		out.Counters = append(out.Counters, CounterSnapshot{Name: name, Value: v})
	}
	for name, v := range gauges {
		out.Gauges = append(out.Gauges, GaugeSnapshot{Name: name, Value: v})
	}
	for _, h := range hists {
		out.Histograms = append(out.Histograms, *h)
	}
	sort.Slice(out.Counters, func(i, j int) bool { return out.Counters[i].Name < out.Counters[j].Name })
	sort.Slice(out.Gauges, func(i, j int) bool { return out.Gauges[i].Name < out.Gauges[j].Name })
	sort.Slice(out.Histograms, func(i, j int) bool { return out.Histograms[i].Name < out.Histograms[j].Name })
	return out, nil
}

// Text renders the snapshot as a plain-text metrics dump, one instrument
// per line, deterministic byte-for-byte.
func (s *Snapshot) Text() string {
	var b strings.Builder
	if len(s.Counters) > 0 {
		b.WriteString("# counters\n")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "%s %s\n", c.Name, formatFloat(c.Value))
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("# gauges\n")
		for _, g := range s.Gauges {
			fmt.Fprintf(&b, "%s %s\n", g.Name, formatFloat(g.Value))
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("# histograms\n")
		for _, h := range s.Histograms {
			fmt.Fprintf(&b, "%s count=%d sum=%s", h.Name, h.Count, formatFloat(h.Sum))
			for i, n := range h.Counts {
				if n == 0 {
					continue
				}
				if i < len(h.Bounds) {
					fmt.Fprintf(&b, " le%s=%d", formatFloat(h.Bounds[i]), n)
				} else {
					fmt.Fprintf(&b, " inf=%d", n)
				}
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// formatFloat renders v with the shortest exact representation, so text
// dumps are deterministic and diff-friendly.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
