// Package telemetry is the simulation's observability subsystem: a
// typed, ring-buffered event tracer plus a lock-free metrics registry,
// with exporters for Chrome trace-event JSON (Perfetto /
// chrome://tracing), JSONL, the legacy "-trace" text format, and a
// plain-text metrics dump.
//
// The design mirrors the paper's own implementation strategy: E-Android
// is itself an instrumentation layer grafted onto Android's
// BatteryStats/eventlog plumbing, and the paper spends a section (§VI-C)
// proving that the instrumentation is cheap. This package is the repro's
// analog: every subsystem (sim kernel, activity manager, hardware meter,
// accountant) emits structured events through nil-checked hooks, and
// `benchsuite` measures the enabled/disabled overhead the same way the
// paper measures E-Android against stock Android.
//
// Concurrency: a Recorder is single-goroutine, exactly like the engine
// it observes. The fleet runner gives each device its own Recorder and
// merges the per-device metric snapshots in device-index order, which
// keeps the merged snapshot byte-identical for any worker count.
//
// Cost model: a nil *Recorder is the "not built" state and every method
// no-ops on it, so call sites can hook unconditionally; a built-but-
// disabled Recorder additionally measures the gate cost itself (one
// branch per emission), which is what the overhead study's "disabled"
// configuration reports. Kernel event firings — the highest-volume
// record kind by far — skip the callback layer entirely: an enabled
// recorder hands the engine a compact sim.TraceLog that dispatch fills
// inline, and Events() merges it with the general ring by a shared
// emission sequence.
package telemetry

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/sim"
)

// Kind classifies a structured event.
type Kind uint8

// Event kinds, one per instrumented subsystem concern.
const (
	// KindSimEvent is a discrete-event kernel firing.
	KindSimEvent Kind = iota + 1
	// KindLifecycle is an activity lifecycle transition.
	KindLifecycle
	// KindPowerState is a hardware component power-state change
	// (screen, suspend, brightness, CPU share, peripheral hold).
	KindPowerState
	// KindBattery is a battery ledger update (one accrued interval).
	KindBattery
	// KindAttribution is one accounting attribution: energy from an
	// accrued interval landing in an app's ledger.
	KindAttribution
	// KindViolation is one runtime invariant violation recorded by the
	// check subsystem.
	KindViolation
	// KindAnomaly is one drain-anomaly finding flagged by the
	// observability watchdog (internal/obsv): a per-UID drain-rate spike
	// or a collateral-vs-direct energy divergence.
	KindAnomaly
)

func (k Kind) String() string {
	switch k {
	case KindSimEvent:
		return "sim"
	case KindLifecycle:
		return "lifecycle"
	case KindPowerState:
		return "power"
	case KindBattery:
		return "battery"
	case KindAttribution:
		return "attribution"
	case KindViolation:
		return "violation"
	case KindAnomaly:
		return "anomaly"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// MarshalJSON renders the kind as its string name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// Event is one structured telemetry record. The meaning of V0/V1 depends
// on Kind:
//
//	KindSimEvent:    V0 = event-queue depth after pop
//	KindLifecycle:   From/To carry the states; V0/V1 unused
//	KindPowerState:  V0 = old value, V1 = new value
//	KindBattery:     V0 = joules drained this interval, V1 = battery %
//	KindAttribution: V0 = joules attributed to UID this interval
//	KindViolation:   Name = invariant, To = detail, V0/V1 = got/want
//	KindAnomaly:     Name = signal, To = detail, V0 = rate mW, V1 = baseline mW
type Event struct {
	T    sim.Time `json:"t"`
	Kind Kind     `json:"kind"`
	// Name is the kernel event name, component name, or subsystem label.
	Name string  `json:"name"`
	UID  app.UID `json:"uid,omitempty"`
	From string  `json:"from,omitempty"`
	To   string  `json:"to,omitempty"`
	V0   float64 `json:"v0,omitempty"`
	V1   float64 `json:"v1,omitempty"`
}

// Options configures a Recorder.
type Options struct {
	// EventCapacity bounds the event ring buffer; once full, the oldest
	// events are overwritten (Dropped counts them). Zero means
	// DefaultEventCapacity; negative disables event recording entirely
	// while keeping metrics live.
	EventCapacity int
	// Disabled builds the recorder in the disabled state: every emission
	// takes the one-branch gate path and records nothing. Used by the
	// overhead study's "disabled" configuration; SetEnabled flips it.
	Disabled bool
}

// DefaultEventCapacity is the ring size used when Options.EventCapacity
// is zero: large enough for minutes of simulated activity, small enough
// to stay cache-friendly.
const DefaultEventCapacity = 1 << 12

// Recorder is the typed event tracer: a fixed-size ring of structured
// events plus the standard metric instruments every subsystem feeds.
// A nil Recorder is valid and records nothing (the zero-cost path).
type Recorder struct {
	enabled bool
	buf     []Event
	w       int    // next ring slot to write; wraps at len(buf)
	total   uint64 // events ever appended

	// simLog holds every kernel event firing: a compact ring the
	// engine fills inline from its dispatch loop (no callback, no
	// full-width Event fill — see sim.TraceLog). Its Seq field is the
	// shared emission sequence for ALL records, kernel or not; Events()
	// merges the two rings by it. Its Depth/MaxDepth/Total fields
	// shadow the sim.queue_depth{,_max} gauges and the events_fired
	// counter, synced into the registry by Metrics().
	simLog *sim.TraceLog
	// seqs[i] is the emission sequence of buf[i], parallel to the ring.
	seqs []uint64

	metrics *Metrics

	// Pre-resolved instruments for hot paths (one map lookup at build
	// time instead of one per emission).
	cSim       *Counter
	gQueue     *Gauge
	gQueueMax  *Gauge
	cLifecycle *Counter
	cPower     *Counter
	cBattery   *Counter
	cAttr      *Counter
	cViolation *Counter
	cAnomaly   *Counter
	gDropped   *Gauge
	gRingCap   *Gauge

	// tap, when set, sees every recorded event by value as it lands —
	// the live stream behind the obsv watchdog. scratch backs the tap
	// when the ring is disabled (negative capacity) so record sites keep
	// their single slot-fill shape.
	tap     func(Event)
	scratch Event

	hMW   map[string]*Histogram  // per-component mW distributions
	hUIDJ map[app.UID]*Histogram // per-UID attributed-J distributions

	// engine tracks the instrumented engine so the trace log can
	// attach lazily: a disabled recorder installs no log, so the
	// engine's dispatch path stays on its untraced fast branch (see
	// InstrumentEngine).
	engine   *sim.Engine
	attached bool
}

// New builds a Recorder with its own Metrics registry.
func New(opts Options) *Recorder {
	capacity := opts.EventCapacity
	if capacity == 0 {
		capacity = DefaultEventCapacity
	}
	r := &Recorder{
		enabled: !opts.Disabled,
		simLog:  &sim.TraceLog{},
		metrics: NewMetrics(),
		hMW:     make(map[string]*Histogram),
		hUIDJ:   make(map[app.UID]*Histogram),
	}
	if capacity > 0 {
		r.buf = make([]Event, capacity)
		r.seqs = make([]uint64, capacity)
		r.simLog.Buf = make([]sim.TraceRecord, capacity)
	}
	r.cSim = r.metrics.Counter("sim.events_fired")
	r.gQueue = r.metrics.Gauge("sim.queue_depth")
	r.gQueueMax = r.metrics.Gauge("sim.queue_depth_max")
	r.cLifecycle = r.metrics.Counter("activity.lifecycle_transitions")
	r.cPower = r.metrics.Counter("hw.power_state_changes")
	r.cBattery = r.metrics.Counter("hw.battery_updates")
	r.cAttr = r.metrics.Counter("acct.attributions")
	r.cViolation = r.metrics.Counter("check.violations")
	r.cAnomaly = r.metrics.Counter("obsv.anomalies")
	r.gDropped = r.metrics.Gauge("telemetry.events_dropped")
	r.gRingCap = r.metrics.Gauge("telemetry.ring_capacity")
	r.gRingCap.Set(float64(len(r.buf)))
	return r
}

// Enabled reports whether the recorder exists and is recording.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled }

// SetEnabled flips recording on or off, attaching or detaching the
// kernel tracer of any instrumented engine so a disabled recorder costs
// the engine nothing. Safe on nil (no-op).
func (r *Recorder) SetEnabled(v bool) {
	if r == nil {
		return
	}
	r.enabled = v
	if v {
		r.attach()
	} else {
		r.detach()
	}
}

// attach installs the trace log on the instrumented engine: dispatch
// fills it inline with a few plain stores, so there is no per-event
// callback at all on the hottest record path.
func (r *Recorder) attach() {
	if r.engine == nil || r.attached {
		return
	}
	r.engine.SetTraceLog(r.simLog)
	r.attached = true
}

// detach removes the trace log from the engine.
func (r *Recorder) detach() {
	if r.attached {
		r.engine.SetTraceLog(nil)
		r.attached = false
	}
}

// Metrics returns the recorder's registry, nil for a nil recorder. The
// queue-depth gauges are synced from their shadow fields here — every
// snapshot/export path reads the registry through this accessor.
func (r *Recorder) Metrics() *Metrics {
	if r == nil {
		return nil
	}
	r.cSim.v = float64(r.simLog.Total)
	r.gQueue.Set(float64(r.simLog.Depth))
	r.gQueueMax.Set(float64(r.simLog.MaxDepth))
	r.gDropped.Set(float64(r.Dropped()))
	return r.metrics
}

// SetTap installs fn as the live event tap: every subsequently recorded
// non-kernel event is handed to fn by value, immediately after it lands
// (even when the ring itself is disabled). KindSimEvent firings logged
// by an instrumented engine bypass the tap — they land in the inline
// trace log, whose whole point is to skip per-event callbacks; no tap
// consumer reads them (the watchdog folds attributions and battery
// updates only). One tap at a time — the observability watchdog owns
// it; pass nil to remove. Safe on nil (no-op).
func (r *Recorder) SetTap(fn func(Event)) {
	if r == nil {
		return
	}
	r.tap = fn
}

// slot advances the ring and returns the slot for the next event (nil
// when event recording is off, i.e. negative capacity, and no tap is
// listening). Callers write every field in place: compared to building
// an Event and copying it in, this skips a ~100-byte struct copy and
// the modulo of the old total-based indexing on every emission — the
// recording fast path is exactly what the enabled-overhead gate spends
// its budget on. With the ring disabled but a tap installed, the
// recorder-owned scratch slot keeps the call sites' single fill shape.
func (r *Recorder) slot() *Event {
	r.total++
	r.simLog.Seq++ // shared emission sequence across both rings
	if len(r.buf) == 0 {
		if r.tap != nil {
			return &r.scratch
		}
		return nil
	}
	r.seqs[r.w] = r.simLog.Seq
	ev := &r.buf[r.w]
	r.w++
	if r.w == len(r.buf) {
		r.w = 0
	}
	return ev
}

// emit forwards a just-filled slot to the live tap, if any. Record
// sites call it as the last statement of their slot-fill block.
func (r *Recorder) emit(ev *Event) {
	if r.tap != nil {
		r.tap(*ev)
	}
}

// RecordSimEvent records one kernel event firing and samples the queue
// depth gauges. An instrumented engine never calls this — it fills the
// trace log inline from dispatch; this entry point serves manual
// recording (tests, replay tooling) and lands in the same log.
func (r *Recorder) RecordSimEvent(t sim.Time, name string, queueDepth int) {
	if r == nil || !r.enabled {
		return
	}
	r.simLog.Log(t, name, queueDepth)
}

// RecordLifecycle records an activity lifecycle transition.
func (r *Recorder) RecordLifecycle(t sim.Time, uid app.UID, component, from, to string) {
	if r == nil || !r.enabled {
		return
	}
	r.cLifecycle.Inc()
	if ev := r.slot(); ev != nil {
		ev.T = t
		ev.Kind = KindLifecycle
		ev.Name = component
		ev.UID = uid
		ev.From = from
		ev.To = to
		ev.V0 = 0
		ev.V1 = 0
		r.emit(ev)
	}
}

// RecordPowerState records a hardware power-state change on component
// name (old and new are the numeric state, e.g. 0/1 for off/on or a
// brightness level).
func (r *Recorder) RecordPowerState(t sim.Time, uid app.UID, name string, old, new float64) {
	if r == nil || !r.enabled {
		return
	}
	r.cPower.Inc()
	if ev := r.slot(); ev != nil {
		ev.T = t
		ev.Kind = KindPowerState
		ev.Name = name
		ev.UID = uid
		ev.From = ""
		ev.To = ""
		ev.V0 = old
		ev.V1 = new
		r.emit(ev)
	}
}

// RecordBattery records one accrued battery interval: drainedJ joules
// drained, leaving the battery at pct percent.
func (r *Recorder) RecordBattery(t sim.Time, drainedJ, pct float64) {
	if r == nil || !r.enabled {
		return
	}
	r.cBattery.Inc()
	if ev := r.slot(); ev != nil {
		ev.T = t
		ev.Kind = KindBattery
		ev.Name = "battery"
		ev.UID = 0
		ev.From = ""
		ev.To = ""
		ev.V0 = drainedJ
		ev.V1 = pct
		r.emit(ev)
	}
}

// RecordAttribution records joules landing in uid's ledger over one
// accrued interval and feeds the per-UID energy distribution.
func (r *Recorder) RecordAttribution(t sim.Time, uid app.UID, joules float64) {
	if r == nil || !r.enabled {
		return
	}
	r.cAttr.Inc()
	h := r.hUIDJ[uid]
	if h == nil {
		h = r.metrics.Histogram(fmt.Sprintf("acct.j_per_interval.uid%d", uid), EnergyBuckets)
		r.hUIDJ[uid] = h
	}
	h.Observe(joules)
	if ev := r.slot(); ev != nil {
		ev.T = t
		ev.Kind = KindAttribution
		ev.Name = "attribution"
		ev.UID = uid
		ev.From = ""
		ev.To = ""
		ev.V0 = joules
		ev.V1 = 0
		r.emit(ev)
	}
}

// RecordViolation records one invariant violation from the check
// subsystem: invariant names the checker family, detail describes the
// breach, got/want carry the compared quantities (zero when the breach
// is structural rather than numeric).
func (r *Recorder) RecordViolation(t sim.Time, invariant, detail string, got, want float64) {
	if r == nil || !r.enabled {
		return
	}
	r.cViolation.Inc()
	if ev := r.slot(); ev != nil {
		ev.T = t
		ev.Kind = KindViolation
		ev.Name = invariant
		ev.UID = 0
		ev.From = ""
		ev.To = detail
		ev.V0 = got
		ev.V1 = want
		r.emit(ev)
	}
}

// RecordAnomaly records one watchdog finding: signal names the detector
// ("drain-spike", "collateral-divergence"), detail describes the flagged
// subject, rateMW is the offending rate and baselineMW the reference it
// was judged against (the direct rate for divergence findings).
func (r *Recorder) RecordAnomaly(t sim.Time, uid app.UID, signal, detail string, rateMW, baselineMW float64) {
	if r == nil || !r.enabled {
		return
	}
	r.cAnomaly.Inc()
	if ev := r.slot(); ev != nil {
		ev.T = t
		ev.Kind = KindAnomaly
		ev.Name = signal
		ev.UID = uid
		ev.From = ""
		ev.To = detail
		ev.V0 = rateMW
		ev.V1 = baselineMW
		r.emit(ev)
	}
}

// ObserveComponentMW feeds one accrued interval's mean power draw for a
// hardware component into that component's mW distribution.
func (r *Recorder) ObserveComponentMW(component string, mw float64) {
	if r == nil || !r.enabled {
		return
	}
	h := r.hMW[component]
	if h == nil {
		h = r.metrics.Histogram("hw.mw."+component, PowerBuckets)
		r.hMW[component] = h
	}
	h.Observe(mw)
}

// Total reports how many events were ever recorded (including any that
// have since been overwritten), kernel firings included.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total + r.simLog.Total
}

// Dropped reports how many events the rings overwrote.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	d := r.simLog.Dropped()
	if n := uint64(len(r.buf)); r.total > n {
		d += r.total - n
	}
	return d
}

// Events returns the retained events, oldest first: the kernel trace
// log and the general ring merged back into global recording order by
// the shared emission sequence. The slice is a copy.
func (r *Recorder) Events() []Event {
	if r == nil || r.total+r.simLog.Total == 0 {
		return nil
	}
	// The general ring's retained events with their sequences, oldest
	// first (the ring and seqs rotate together).
	var evs []Event
	var seqs []uint64
	if n := uint64(len(r.buf)); n > 0 && r.total > 0 {
		if r.total <= n {
			evs = r.buf[:r.total:r.total]
			seqs = r.seqs[:r.total]
		} else {
			evs = make([]Event, 0, n)
			evs = append(evs, r.buf[r.w:]...) // r.w is the oldest slot once wrapped
			evs = append(evs, r.buf[:r.w]...)
			seqs = make([]uint64, 0, n)
			seqs = append(seqs, r.seqs[r.w:]...)
			seqs = append(seqs, r.seqs[:r.w]...)
		}
	}
	recs := r.simLog.Records()
	out := make([]Event, 0, len(evs)+len(recs))
	i, j := 0, 0
	for i < len(evs) || j < len(recs) {
		if j >= len(recs) || (i < len(evs) && seqs[i] < recs[j].Seq) {
			out = append(out, evs[i])
			i++
			continue
		}
		rec := recs[j]
		j++
		out = append(out, Event{T: rec.T, Kind: KindSimEvent, Name: rec.Name, V0: float64(rec.Depth)})
	}
	return out
}

// KernelBatch is one same-instant run of kernel event firings: the
// timing wheel dispatches all events due at one virtual instant as a
// batch, and the trace log records them back-to-back with equal T.
type KernelBatch struct {
	// T is the batch's virtual instant.
	T sim.Time
	// N is how many events fired at T (within the retained window).
	N int
}

// ForEachKernelBatch streams the retained kernel trace-log firings,
// coalesced into same-instant dispatch batches, oldest first — the
// allocation-free form the fleet's tracer folds from after every
// sampled device (a per-device []KernelBatch materialization showed
// up in the tracing overhead gate). Only the retained ring window is
// visible, so long runs see the tail.
func (r *Recorder) ForEachKernelBatch(fn func(KernelBatch)) {
	if r == nil {
		return
	}
	tl := r.simLog
	if len(tl.Buf) == 0 || tl.Total == 0 {
		return
	}
	// Oldest-first ring order without linearizing: one segment when the
	// ring has not wrapped, two when it has (W is the oldest slot).
	segs := [2][]sim.TraceRecord{tl.Buf[:min(int(tl.Total), len(tl.Buf))]}
	if tl.Total > uint64(len(tl.Buf)) {
		segs[0], segs[1] = tl.Buf[tl.W:], tl.Buf[:tl.W]
	}
	var cur KernelBatch
	started := false
	for _, seg := range segs {
		for i := range seg {
			if t := seg[i].T; !started || t != cur.T {
				if started {
					fn(cur)
				}
				cur = KernelBatch{T: t, N: 0}
				started = true
			}
			cur.N++
		}
	}
	if started {
		fn(cur)
	}
}

// KernelBatches collects ForEachKernelBatch's stream into a slice.
func (r *Recorder) KernelBatches() []KernelBatch {
	var out []KernelBatch
	r.ForEachKernelBatch(func(b KernelBatch) { out = append(out, b) })
	return out
}

// InstrumentEngine wires r to e: every fired kernel event lands in the
// recorder's trace log (a KindSimEvent record in Events()) and feeds
// the events-fired counter and queue-depth gauges. The log attaches
// only while the recorder is enabled — a disabled recorder leaves the
// engine untraced, so event dispatch keeps its fast path and
// SetEnabled(true) attaches retroactively. Reports whether the log is
// attached now (false when either argument is nil or the recorder is
// currently disabled).
func InstrumentEngine(e *sim.Engine, r *Recorder) bool {
	if e == nil || r == nil {
		return false
	}
	r.engine = e
	if r.enabled {
		r.attach()
	}
	return r.attached
}
