package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/sim"
)

// Exporters. All three event formats are deterministic byte-for-byte for
// a given event slice: field order is fixed by structs, map-valued args
// are marshalled by encoding/json in sorted key order, and floats use
// Go's shortest-exact formatting.

// traceEvent is one record of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// loadable in Perfetto and chrome://tracing.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// tid lanes: one virtual thread per event kind, so Perfetto renders each
// subsystem as its own track.
var kindLanes = []Kind{KindSimEvent, KindLifecycle, KindPowerState, KindBattery, KindAttribution, KindViolation, KindAnomaly}

// WriteTrace exports events as Chrome trace-event JSON. pid labels the
// emitting process track (use the device index for fleets; 0 is fine for
// a single device). Timestamps are virtual microseconds since boot.
func WriteTrace(w io.Writer, pid int, events []Event) error {
	tf := traceFile{DisplayTimeUnit: "ms"}
	tf.TraceEvents = make([]traceEvent, 0, len(events)+1+len(kindLanes))
	tf.TraceEvents = append(tf.TraceEvents, traceEvent{
		Name: "process_name", Phase: "M", PID: pid,
		Args: map[string]any{"name": fmt.Sprintf("device-%d", pid)},
	})
	for i, k := range kindLanes {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "thread_name", Phase: "M", PID: pid, TID: i + 1,
			Args: map[string]any{"name": k.String()},
		})
	}
	for _, ev := range events {
		te := traceEvent{
			Name:  ev.Name,
			Cat:   ev.Kind.String(),
			Phase: "i",
			Scope: "t",
			TS:    float64(ev.T) / 1e3, // sim.Time is nanoseconds
			PID:   pid,
			TID:   laneOf(ev.Kind),
			Args:  traceArgs(ev),
		}
		tf.TraceEvents = append(tf.TraceEvents, te)
	}
	bw := bufio.NewWriter(w)
	if err := json.NewEncoder(bw).Encode(tf); err != nil {
		return err
	}
	return bw.Flush()
}

func laneOf(k Kind) int {
	for i, lane := range kindLanes {
		if lane == k {
			return i + 1
		}
	}
	return len(kindLanes) + 1
}

func traceArgs(ev Event) map[string]any {
	switch ev.Kind {
	case KindSimEvent:
		return map[string]any{"queue_depth": ev.V0}
	case KindLifecycle:
		return map[string]any{"uid": int64(ev.UID), "from": ev.From, "to": ev.To}
	case KindPowerState:
		return map[string]any{"uid": int64(ev.UID), "old": ev.V0, "new": ev.V1}
	case KindBattery:
		return map[string]any{"drained_j": ev.V0, "percent": ev.V1}
	case KindAttribution:
		return map[string]any{"uid": int64(ev.UID), "joules": ev.V0}
	case KindViolation:
		return map[string]any{"detail": ev.To, "got": ev.V0, "want": ev.V1}
	case KindAnomaly:
		return map[string]any{"uid": int64(ev.UID), "detail": ev.To, "rate_mw": ev.V0, "baseline_mw": ev.V1}
	}
	return nil
}

// WriteJSONL exports events as one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteText exports events in the legacy "-trace" format the engine's
// stringly tracer printed: kernel events render exactly as the raw
// stdout callback did ("T+1.5s name"); other kinds carry a bracketed
// kind tag so mixed streams stay greppable.
func WriteText(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, ev := range events {
		var err error
		switch ev.Kind {
		case KindSimEvent:
			_, err = fmt.Fprintf(bw, "%v %s\n", ev.T, ev.Name)
		case KindLifecycle:
			_, err = fmt.Fprintf(bw, "%v [lifecycle] uid=%d %s %s->%s\n",
				ev.T, ev.UID, ev.Name, ev.From, ev.To)
		case KindPowerState:
			_, err = fmt.Fprintf(bw, "%v [power] uid=%d %s %s->%s\n",
				ev.T, ev.UID, ev.Name, formatFloat(ev.V0), formatFloat(ev.V1))
		case KindBattery:
			_, err = fmt.Fprintf(bw, "%v [battery] drained=%sJ at %s%%\n",
				ev.T, formatFloat(ev.V0), formatFloat(ev.V1))
		case KindAttribution:
			_, err = fmt.Fprintf(bw, "%v [attribution] uid=%d %sJ\n",
				ev.T, ev.UID, formatFloat(ev.V0))
		case KindViolation:
			_, err = fmt.Fprintf(bw, "%v [violation] %s: %s (got %s, want %s)\n",
				ev.T, ev.Name, ev.To, formatFloat(ev.V0), formatFloat(ev.V1))
		case KindAnomaly:
			_, err = fmt.Fprintf(bw, "%v [anomaly] uid=%d %s: %s (%smW vs %smW)\n",
				ev.T, ev.UID, ev.Name, ev.To, formatFloat(ev.V0), formatFloat(ev.V1))
		default:
			_, err = fmt.Fprintf(bw, "%v [%s] %s\n", ev.T, ev.Kind, ev.Name)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ExportFiles writes the recorder's retained events and metrics to the
// given paths, skipping any empty path: traceOut as Chrome trace-event
// JSON, eventsOut as JSONL, metricsOut as a plain-text metrics dump.
// This is the shared backend of the CLIs' -trace-out / -events-out /
// -metrics-out flags.
func ExportFiles(rec *Recorder, traceOut, eventsOut, metricsOut string) error {
	// write buffers each export and keeps the FIRST error from any stage
	// (emit, flush, close): a short write that only surfaces at Flush or
	// Close must not be masked by a later stage succeeding, and a Close
	// error after a failed emit must not shadow the emit error.
	write := func(path string, emit func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		bw := bufio.NewWriter(f)
		err = emit(bw)
		if ferr := bw.Flush(); err == nil {
			err = ferr
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return err
	}
	if traceOut != "" {
		if err := write(traceOut, func(w io.Writer) error {
			return WriteTrace(w, 0, rec.Events())
		}); err != nil {
			return err
		}
	}
	if eventsOut != "" {
		if err := write(eventsOut, func(w io.Writer) error {
			return WriteJSONL(w, rec.Events())
		}); err != nil {
			return err
		}
	}
	if metricsOut != "" {
		if err := write(metricsOut, func(w io.Writer) error {
			_, err := io.WriteString(w, rec.Metrics().Snapshot().Text())
			return err
		}); err != nil {
			return err
		}
	}
	return nil
}

// TextTracer returns a legacy stringly tracer that prints kernel events
// to w in the old "-trace" stdout format, for callers that want live
// output instead of a post-run export.
func TextTracer(w io.Writer) func(t sim.Time, name string, queueDepth int) {
	return func(t sim.Time, name string, _ int) {
		fmt.Fprintf(w, "%v %s\n", t, name)
	}
}
