package telemetry

// Per-event cost of the kernel tracer hook, in three states: no
// recorder (the engine's no-tracers fast branch), a disabled recorder
// (which attaches no tracer, so it should match the first), and a fully
// enabled recorder (ring append + counter/gauge updates). The
// benchsuite -telemetry study measures the same three states end to
// end; this isolates the engine dispatch itself.

import (
	"testing"

	"repro/internal/sim"
)

func benchEngine(b *testing.B, rec *Recorder) {
	e := sim.NewEngine(1)
	if rec != nil {
		InstrumentEngine(e, rec)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(sim.Time(i+1), "x", func() {})
		e.Step()
	}
}

func BenchmarkStepNoTracer(b *testing.B) { benchEngine(b, nil) }
func BenchmarkStepDisabled(b *testing.B) { benchEngine(b, New(Options{Disabled: true})) }
func BenchmarkStepEnabled(b *testing.B)  { benchEngine(b, New(Options{})) }
