package telemetry

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

func gaugeValue(t *testing.T, s *Snapshot, name string) float64 {
	t.Helper()
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	t.Fatalf("gauge %q not in snapshot", name)
	return 0
}

// TestDroppedAndCapacityGauges: ring overflow must be visible from the
// metrics surface alone (the obsv /metrics endpoint), not only via the
// Dropped() accessor.
func TestDroppedAndCapacityGauges(t *testing.T) {
	r := New(Options{EventCapacity: 4})
	for i := 0; i < 7; i++ {
		r.RecordSimEvent(sim.Time(i), fmt.Sprintf("e%d", i), i)
	}
	s := r.Metrics().Snapshot()
	if got := gaugeValue(t, s, "telemetry.ring_capacity"); got != 4 {
		t.Fatalf("ring_capacity = %v, want 4", got)
	}
	if got := gaugeValue(t, s, "telemetry.events_dropped"); got != 3 {
		t.Fatalf("events_dropped = %v, want 3 (7 recorded into a 4-ring)", got)
	}
	if r.Dropped() != 3 {
		t.Fatalf("Dropped() = %d, want 3", r.Dropped())
	}

	// More overflow moves the gauge on the next snapshot.
	r.RecordSimEvent(sim.Time(7), "e7", 7)
	s = r.Metrics().Snapshot()
	if got := gaugeValue(t, s, "telemetry.events_dropped"); got != 4 {
		t.Fatalf("events_dropped after one more = %v, want 4", got)
	}
}

// TestDisabledRingGauges: a metrics-only recorder (negative capacity)
// reports zero retained capacity and counts every event as dropped —
// nothing is retained, and the metrics surface says so.
func TestDisabledRingGauges(t *testing.T) {
	r := New(Options{EventCapacity: -1})
	r.RecordSimEvent(0, "e", 0)
	s := r.Metrics().Snapshot()
	if got := gaugeValue(t, s, "telemetry.ring_capacity"); got != 0 {
		t.Fatalf("ring_capacity = %v, want 0", got)
	}
	if got := gaugeValue(t, s, "telemetry.events_dropped"); got != 1 {
		t.Fatalf("events_dropped = %v, want 1 (metrics-only rings retain nothing)", got)
	}
}
