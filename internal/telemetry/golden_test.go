package telemetry_test

// End-to-end golden tests: a real device runs a paper scene with the
// recorder attached, and the exported artifacts must be valid and
// byte-identical across runs — the telemetry analog of the repo's
// determinism guarantee for energy ledgers.

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/accounting"
	"repro/internal/device"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

// runScene runs scene #1 with a fresh recorder and returns it.
func runScene(t *testing.T) *telemetry.Recorder {
	t.Helper()
	rec := telemetry.New(telemetry.Options{})
	w, err := scenario.NewWorld(device.Config{
		EAndroid:  true,
		Policy:    accounting.BatteryStats,
		Telemetry: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Scene1MessageFilm(); err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestSceneProducesAllEventKinds(t *testing.T) {
	rec := runScene(t)
	if rec.Total() == 0 {
		t.Fatal("scene recorded no events")
	}
	kinds := make(map[telemetry.Kind]int)
	for _, ev := range rec.Events() {
		kinds[ev.Kind]++
	}
	for _, k := range []telemetry.Kind{
		telemetry.KindSimEvent, telemetry.KindLifecycle, telemetry.KindPowerState,
		telemetry.KindBattery, telemetry.KindAttribution,
	} {
		if kinds[k] == 0 {
			t.Errorf("no %s events recorded (got %v)", k, kinds)
		}
	}
}

func TestTraceExportGolden(t *testing.T) {
	var first []byte
	for run := 0; run < 2; run++ {
		rec := runScene(t)
		var buf bytes.Buffer
		if err := telemetry.WriteTrace(&buf, 0, rec.Events()); err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			first = append([]byte(nil), buf.Bytes()...)
			// Valid trace-event JSON with a non-empty traceEvents array.
			var tf struct {
				TraceEvents []json.RawMessage `json:"traceEvents"`
			}
			if err := json.Unmarshal(first, &tf); err != nil {
				t.Fatalf("trace.json is not valid JSON: %v", err)
			}
			if len(tf.TraceEvents) == 0 {
				t.Fatal("trace.json has no events")
			}
			continue
		}
		if !bytes.Equal(first, buf.Bytes()) {
			t.Fatal("trace.json differs between identical runs")
		}
	}
}

func TestMetricsDumpGolden(t *testing.T) {
	a := runScene(t).Metrics().Snapshot().Text()
	b := runScene(t).Metrics().Snapshot().Text()
	if a == "" {
		t.Fatal("metrics dump is empty")
	}
	if a != b {
		t.Fatalf("metrics dump differs between identical runs:\n%s\nvs\n%s", a, b)
	}
}

func TestJSONLExportGolden(t *testing.T) {
	var a, b bytes.Buffer
	if err := telemetry.WriteJSONL(&a, runScene(t).Events()); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteJSONL(&b, runScene(t).Events()); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("events.jsonl differs between identical runs (or is empty)")
	}
}
