package intent

import (
	"strings"
	"testing"

	"repro/internal/app"
	"repro/internal/manifest"
)

func fixture(t *testing.T) (*app.PackageManager, *Resolver, *app.App, *app.App) {
	t.Helper()
	pm := app.NewPackageManager()
	camera := pm.MustInstall(manifest.NewBuilder("com.android.camera", "Camera").
		Activity("VideoActivity", true, manifest.IntentFilter{
			Actions:    []string{ActionVideoCapture},
			Categories: []string{CategoryDefault},
		}).
		Activity("PrivateActivity", false).
		Service("UploadService", true).
		MustBuild())
	message := pm.MustInstall(manifest.NewBuilder("com.android.message", "Message").
		Activity("Main", true, manifest.IntentFilter{
			Actions:    []string{ActionMain},
			Categories: []string{CategoryLauncher},
		}).
		Service("InternalSvc", false).
		MustBuild())
	return pm, NewResolver(pm), camera, message
}

func TestResolveExplicitHappyPath(t *testing.T) {
	_, r, camera, message := fixture(t)
	in := Intent{
		Sender:    message.UID,
		Component: "com.android.camera/VideoActivity",
	}
	m, err := r.ResolveExplicit(in, manifest.KindActivity)
	if err != nil {
		t.Fatal(err)
	}
	if m.App != camera || m.Component != "VideoActivity" {
		t.Fatalf("match = %+v", m)
	}
	if m.FullName() != "com.android.camera/VideoActivity" {
		t.Fatalf("FullName = %q", m.FullName())
	}
}

func TestResolveExplicitEnforcesExport(t *testing.T) {
	_, r, _, message := fixture(t)
	in := Intent{Sender: message.UID, Component: "com.android.camera/PrivateActivity"}
	if _, err := r.ResolveExplicit(in, manifest.KindActivity); err == nil ||
		!strings.Contains(err.Error(), "not exported") {
		t.Fatalf("err = %v, want not-exported", err)
	}
}

func TestResolveExplicitSameAppBypassesExport(t *testing.T) {
	_, r, camera, _ := fixture(t)
	in := Intent{Sender: camera.UID, Component: "com.android.camera/PrivateActivity"}
	if _, err := r.ResolveExplicit(in, manifest.KindActivity); err != nil {
		t.Fatalf("same-app explicit start failed: %v", err)
	}
}

func TestResolveExplicitKindMismatch(t *testing.T) {
	_, r, _, message := fixture(t)
	in := Intent{Sender: message.UID, Component: "com.android.camera/UploadService"}
	if _, err := r.ResolveExplicit(in, manifest.KindActivity); err == nil {
		t.Fatal("want kind-mismatch error")
	}
}

func TestResolveExplicitErrors(t *testing.T) {
	_, r, _, message := fixture(t)
	cases := []Intent{
		{Sender: message.UID, Component: "com.missing/X"},
		{Sender: message.UID, Component: "com.android.camera/Nope"},
		{Sender: message.UID, Component: "garbage"},
		{Sender: message.UID, Action: ActionMain}, // implicit passed to explicit
	}
	for _, in := range cases {
		if _, err := r.ResolveExplicit(in, manifest.KindActivity); err == nil {
			t.Errorf("ResolveExplicit(%v) should fail", in)
		}
	}
}

func TestResolveImplicitMatching(t *testing.T) {
	_, r, camera, message := fixture(t)
	in := Intent{
		Sender:     message.UID,
		Action:     ActionVideoCapture,
		Categories: []string{CategoryDefault},
	}
	matches, err := r.ResolveImplicit(in, manifest.KindActivity)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].App != camera {
		t.Fatalf("matches = %+v", matches)
	}
}

func TestResolveImplicitSkipsUnexportedCrossApp(t *testing.T) {
	pm := app.NewPackageManager()
	pm.MustInstall(manifest.NewBuilder("com.x", "X").
		Activity("Hidden", false, manifest.IntentFilter{Actions: []string{"act.GO"}}).
		MustBuild())
	sender := pm.MustInstall(manifest.NewBuilder("com.y", "Y").Activity("M", true).MustBuild())
	r := NewResolver(pm)
	matches, err := r.ResolveImplicit(Intent{Sender: sender.UID, Action: "act.GO"}, manifest.KindActivity)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("unexported component matched cross-app: %+v", matches)
	}
}

func TestResolveImplicitSameAppSeesUnexported(t *testing.T) {
	pm := app.NewPackageManager()
	x := pm.MustInstall(manifest.NewBuilder("com.x", "X").
		Activity("Hidden", false, manifest.IntentFilter{Actions: []string{"act.GO"}}).
		MustBuild())
	r := NewResolver(pm)
	matches, err := r.ResolveImplicit(Intent{Sender: x.UID, Action: "act.GO"}, manifest.KindActivity)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("same-app implicit should match unexported: %+v", matches)
	}
}

func TestResolveImplicitDeterministicOrder(t *testing.T) {
	pm := app.NewPackageManager()
	for _, pkg := range []string{"com.c", "com.a", "com.b"} {
		pm.MustInstall(manifest.NewBuilder(pkg, pkg).
			Activity("Go", true, manifest.IntentFilter{Actions: []string{"act.GO"}}).
			MustBuild())
	}
	r := NewResolver(pm)
	matches, err := r.ResolveImplicit(Intent{Sender: app.UIDNone, Action: "act.GO"}, manifest.KindActivity)
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []string
	for _, m := range matches {
		pkgs = append(pkgs, m.App.Package())
	}
	want := []string{"com.a", "com.b", "com.c"}
	for i := range want {
		if pkgs[i] != want[i] {
			t.Fatalf("order = %v, want %v", pkgs, want)
		}
	}
}

func TestResolveImplicitErrors(t *testing.T) {
	_, r, _, message := fixture(t)
	if _, err := r.ResolveImplicit(Intent{Sender: message.UID, Component: "a/b"}, manifest.KindActivity); err == nil {
		t.Fatal("explicit intent passed to ResolveImplicit should fail")
	}
	if _, err := r.ResolveImplicit(Intent{Sender: message.UID}, manifest.KindActivity); err == nil {
		t.Fatal("empty action should fail")
	}
}

func TestIntentString(t *testing.T) {
	e := Intent{Sender: 1, Component: "a/B"}
	if !strings.Contains(e.String(), "explicit a/B") {
		t.Fatalf("String() = %q", e.String())
	}
	i := Intent{Sender: 1, Action: "act.GO"}
	if !strings.Contains(i.String(), "action act.GO") {
		t.Fatalf("String() = %q", i.String())
	}
}
