// Package intent models Android intents — the messages apps use to
// request actions from components — and their resolution against the
// installed packages.
//
// Explicit intents name a target component directly; implicit intents
// declare an action and are matched against intent filters. When several
// apps match an implicit intent, Android interposes the system resolver
// activity ("resolverActivity") so the user can choose; E-Android must
// see through that indirection and attribute the eventual start to the
// original sender, so resolution results carry enough detail to do so.
package intent

import (
	"fmt"
	"sort"

	"repro/internal/app"
	"repro/internal/manifest"
)

// Common intent actions used by scenarios and tests.
const (
	ActionMain         = "android.intent.action.MAIN"
	ActionView         = "android.intent.action.VIEW"
	ActionSend         = "android.intent.action.SEND"
	ActionVideoCapture = "android.media.action.VIDEO_CAPTURE"
	ActionUserPresent  = "android.intent.action.USER_PRESENT"

	CategoryLauncher = "android.intent.category.LAUNCHER"
	CategoryDefault  = "android.intent.category.DEFAULT"
)

// Intent is a request to start a component.
type Intent struct {
	// Sender is the UID of the app dispatching the intent. The framework
	// fills this in; callers cannot spoof it (Binder provides the calling
	// UID in real Android).
	Sender app.UID

	// Component, when non-empty, makes the intent explicit:
	// "package/ComponentName".
	Component string

	// Action and Categories drive implicit resolution when Component is
	// empty.
	Action     string
	Categories []string

	// Extras carries opaque payload (unused by resolution; present
	// because attack #1 notes collateral attacks need no data flow).
	Extras map[string]string
}

// Explicit reports whether the intent names its target directly.
func (in Intent) Explicit() bool { return in.Component != "" }

// String renders a compact diagnostic form.
func (in Intent) String() string {
	if in.Explicit() {
		return fmt.Sprintf("intent{explicit %s from uid %d}", in.Component, in.Sender)
	}
	return fmt.Sprintf("intent{action %s from uid %d}", in.Action, in.Sender)
}

// Match is one resolution candidate.
type Match struct {
	App       *app.App
	Component string // short component name within the app
	Kind      manifest.ComponentKind
}

// FullName returns the canonical "package/Component" reference.
func (m Match) FullName() string {
	return manifest.FullComponentName(m.App.Package(), m.Component)
}

// Resolver resolves intents against a package manager.
type Resolver struct {
	pm *app.PackageManager
}

// NewResolver returns a resolver over the given package manager.
func NewResolver(pm *app.PackageManager) *Resolver {
	return &Resolver{pm: pm}
}

// errorf builds a resolution error.
func errorf(format string, args ...any) error {
	return fmt.Errorf("intent: "+format, args...)
}

// ResolveExplicit resolves an explicit intent to its single target. It
// enforces the export rule: a caller from another app may only reach
// exported components (the attack-vector study's 72 % figure is about
// exactly this property).
func (r *Resolver) ResolveExplicit(in Intent, want manifest.ComponentKind) (Match, error) {
	if !in.Explicit() {
		return Match{}, errorf("ResolveExplicit on implicit %v", in)
	}
	pkg, name, err := manifest.SplitComponentName(in.Component)
	if err != nil {
		return Match{}, err
	}
	target := r.pm.ByPackage(pkg)
	if target == nil {
		return Match{}, errorf("no such package %q", pkg)
	}
	comp := target.Manifest.Component(name)
	if comp == nil {
		return Match{}, errorf("package %s has no component %q", pkg, name)
	}
	if comp.Kind != want {
		return Match{}, errorf("component %s is a %v, not a %v", in.Component, comp.Kind, want)
	}
	sender := r.pm.ByUID(in.Sender)
	crossApp := sender == nil || sender.UID != target.UID
	if crossApp && !comp.Exported {
		return Match{}, errorf("component %s is not exported", in.Component)
	}
	return Match{App: target, Component: name, Kind: comp.Kind}, nil
}

// ResolveImplicit returns every component of the wanted kind whose filter
// matches the intent, sorted by package then component name for
// determinism. Non-exported components never match cross-app implicit
// intents.
func (r *Resolver) ResolveImplicit(in Intent, want manifest.ComponentKind) ([]Match, error) {
	if in.Explicit() {
		return nil, errorf("ResolveImplicit on explicit %v", in)
	}
	if in.Action == "" {
		return nil, errorf("implicit intent with empty action")
	}
	var out []Match
	for _, a := range r.pm.Apps() {
		for _, c := range a.Manifest.Components {
			if c.Kind != want {
				continue
			}
			crossApp := a.UID != in.Sender
			if crossApp && !c.Exported {
				continue
			}
			for _, f := range c.Filters {
				if f.Matches(in.Action, in.Categories) {
					out = append(out, Match{App: a, Component: c.Name, Kind: c.Kind})
					break
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].App.Package() != out[j].App.Package() {
			return out[i].App.Package() < out[j].App.Package()
		}
		return out[i].Component < out[j].Component
	})
	return out, nil
}
