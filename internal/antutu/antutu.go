// Package antutu implements an AnTuTu-style macro benchmark used for the
// paper's Figure 11: CPU integer, CPU floating-point, memory and a
// UX/framework component, scored on a simulated device so the same
// workload can run under stock Android and under E-Android. E-Android
// only adds work on collateral events, so scores should be statistically
// indistinguishable between configurations — which is the figure's claim.
package antutu

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/device"
	"repro/internal/intent"
	"repro/internal/manifest"
)

// Scores holds the benchmark's sub-scores and total. Bigger is better.
type Scores struct {
	Total    int
	CPUInt   int
	CPUFloat int
	Memory   int
	UX       int
}

func (s Scores) String() string {
	return fmt.Sprintf("total=%d cpu-int=%d cpu-float=%d memory=%d ux=%d",
		s.Total, s.CPUInt, s.CPUFloat, s.Memory, s.UX)
}

// Config controls workload sizes. The zero value selects defaults that
// run in well under a second per configuration.
type Config struct {
	// IntOps is the integer-mix loop count.
	IntOps int
	// FloatOps is the float-mix loop count.
	FloatOps int
	// MemBytes is the working-set size for the memory pass.
	MemBytes int
	// UXOps is the number of framework operations (same-app activity
	// start/finish pairs) — the component that actually crosses the
	// hooked framework paths.
	UXOps int
}

func (c Config) withDefaults() Config {
	if c.IntOps == 0 {
		c.IntOps = 4_000_000
	}
	if c.FloatOps == 0 {
		c.FloatOps = 4_000_000
	}
	if c.MemBytes == 0 {
		c.MemBytes = 8 << 20
	}
	if c.UXOps == 0 {
		c.UXOps = 2_000
	}
	return c
}

// benchPkg is the self-contained app the UX pass drives.
const benchPkg = "com.antutu.bench"

// passes is how many times each sub-test repeats; the median duration
// is scored, which keeps one GC pause or scheduler hiccup from skewing a
// sub-score.
const passes = 5

// Run executes the benchmark on the given device and returns scores.
// The device gains a benchmark app if it doesn't already have one.
func Run(dev *device.Device, cfg Config) (Scores, error) {
	cfg = cfg.withDefaults()
	var s Scores

	s.CPUInt = scaleScore(medianTime(func() { intMix(cfg.IntOps) }), cfg.IntOps, 1)
	s.CPUFloat = scaleScore(medianTime(func() { floatMix(cfg.FloatOps) }), cfg.FloatOps, 1)
	s.Memory = scaleScore(medianTime(func() { memPass(cfg.MemBytes) }), cfg.MemBytes, 8)

	var uxSamples []time.Duration
	for i := 0; i < passes; i++ {
		d, err := uxPass(dev, cfg.UXOps)
		if err != nil {
			return Scores{}, err
		}
		uxSamples = append(uxSamples, d)
	}
	s.UX = scaleScore(median(uxSamples), cfg.UXOps, 2000)

	s.Total = s.CPUInt + s.CPUFloat + s.Memory + s.UX
	return s, nil
}

func medianTime(fn func()) time.Duration {
	samples := make([]time.Duration, passes)
	for i := range samples {
		start := time.Now()
		fn()
		samples[i] = time.Since(start)
	}
	return median(samples)
}

func median(samples []time.Duration) time.Duration {
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// scaleScore converts ops/second into a score with a per-test scale so
// sub-scores land in comparable magnitudes.
func scaleScore(d time.Duration, ops int, scale float64) int {
	if d <= 0 {
		d = time.Nanosecond
	}
	perSec := float64(ops) / d.Seconds()
	return int(perSec / 1000 * scale / 1000)
}

var intSink uint64

func intMix(n int) {
	x := uint64(88172645463325252)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		x += uint64(i)
	}
	intSink = x
}

var floatSink float64

func floatMix(n int) {
	x, y := 1.0001, 0.5
	for i := 0; i < n; i++ {
		x = x*y + 0.0001
		y = y/x + 0.0001
		if x > 1e6 {
			x = 1.0001
		}
	}
	floatSink = x + y
}

var memSink byte

func memPass(bytes int) {
	src := make([]byte, bytes)
	dst := make([]byte, bytes)
	for i := range src {
		src[i] = byte(i)
	}
	copy(dst, src)
	var acc byte
	for _, b := range dst {
		acc ^= b
	}
	memSink = acc
}

// uxPass drives same-app activity start/finish pairs through the
// framework — the path E-Android hooks — and times them.
func uxPass(dev *device.Device, ops int) (time.Duration, error) {
	bench := dev.Packages.ByPackage(benchPkg)
	if bench == nil {
		var err error
		bench, err = dev.Packages.Install(manifest.NewBuilder(benchPkg, "AnTuTu").
			Activity("Main", true).
			Activity("Page", false).
			MustBuild())
		if err != nil {
			return 0, err
		}
	}
	if _, err := dev.Activities.UserStartApp(benchPkg); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < ops; i++ {
		rec, err := dev.Activities.StartActivity(intent.Intent{
			Sender:    bench.UID,
			Component: benchPkg + "/Page",
		})
		if err != nil {
			return 0, err
		}
		if err := dev.Activities.Finish(rec); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// Comparison runs the benchmark on a stock device and an E-Android
// device and reports both score sets.
type Comparison struct {
	Android  Scores
	EAndroid Scores
}

// Compare builds two fresh devices (one stock, one with the complete
// monitor), runs the same workload on each, and returns both results. A
// throwaway warm-up run precedes the measurements so allocator and cache
// warm-up does not penalize whichever configuration happens to run
// first.
func Compare(cfg Config) (Comparison, error) {
	warm, err := device.New(device.Config{})
	if err != nil {
		return Comparison{}, err
	}
	if _, err := Run(warm, cfg); err != nil {
		return Comparison{}, err
	}

	stock, err := device.New(device.Config{})
	if err != nil {
		return Comparison{}, err
	}
	ea, err := device.New(device.Config{EAndroid: true})
	if err != nil {
		return Comparison{}, err
	}
	var cmp Comparison
	if cmp.Android, err = Run(stock, cfg); err != nil {
		return Comparison{}, err
	}
	if cmp.EAndroid, err = Run(ea, cfg); err != nil {
		return Comparison{}, err
	}
	return cmp, nil
}

// Render formats the comparison as the Figure 11 bar groups.
func (c Comparison) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "AnTuTu benchmark (Figure 11)\n")
	fmt.Fprintf(&b, "%-10s %10s %10s\n", "score", "Android", "E-Android")
	row := func(name string, a, e int) {
		fmt.Fprintf(&b, "%-10s %10d %10d\n", name, a, e)
	}
	row("total", c.Android.Total, c.EAndroid.Total)
	row("cpu-int", c.Android.CPUInt, c.EAndroid.CPUInt)
	row("cpu-float", c.Android.CPUFloat, c.EAndroid.CPUFloat)
	row("memory", c.Android.Memory, c.EAndroid.Memory)
	row("ux", c.Android.UX, c.EAndroid.UX)
	return b.String()
}
