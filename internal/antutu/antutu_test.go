package antutu

import (
	"strings"
	"testing"

	"repro/internal/device"
)

// smallCfg keeps test runtime low.
func smallCfg() Config {
	return Config{IntOps: 100_000, FloatOps: 100_000, MemBytes: 1 << 16, UXOps: 50}
}

func TestRunProducesPositiveScores(t *testing.T) {
	dev, err := device.New(device.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Run(dev, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if s.CPUInt <= 0 || s.CPUFloat <= 0 || s.Memory <= 0 || s.UX <= 0 {
		t.Fatalf("scores = %+v", s)
	}
	if s.Total != s.CPUInt+s.CPUFloat+s.Memory+s.UX {
		t.Fatal("total is not the sum of sub-scores")
	}
}

func TestRunReusesBenchApp(t *testing.T) {
	dev, err := device.New(device.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(dev, smallCfg()); err != nil {
		t.Fatal(err)
	}
	// Second run must not fail on duplicate install.
	if _, err := Run(dev, smallCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestRunOnEAndroidDevice(t *testing.T) {
	dev, err := device.New(device.Config{EAndroid: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Run(dev, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if s.Total <= 0 {
		t.Fatalf("scores = %+v", s)
	}
	// Same-app UX operations are not collateral events: the monitor must
	// not have recorded attacks from the benchmark.
	if len(dev.EAndroid.Attacks()) != 0 {
		t.Fatalf("benchmark produced attacks: %v", dev.EAndroid.Attacks())
	}
}

func TestCompareRender(t *testing.T) {
	cmp, err := Compare(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := cmp.Render()
	for _, want := range []string{"Figure 11", "total", "cpu-int", "cpu-float", "memory", "ux", "E-Android"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(cmp.Android.String(), "total=") {
		t.Fatal("scores stringer")
	}
}

func TestScaleScoreGuards(t *testing.T) {
	if scaleScore(0, 1000, 1) < 0 {
		t.Fatal("zero duration should not go negative")
	}
}

func TestDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.IntOps == 0 || c.FloatOps == 0 || c.MemBytes == 0 || c.UXOps == 0 {
		t.Fatalf("defaults = %+v", c)
	}
}
