package surfaceflinger_test

import (
	"testing"

	"repro/internal/activity"
	"repro/internal/app"
	"repro/internal/device"
	"repro/internal/manifest"
	"repro/internal/sim"
	"repro/internal/surfaceflinger"
)

func fixture(t *testing.T) (*device.Device, *app.App) {
	t.Helper()
	dev, err := device.New(device.Config{})
	if err != nil {
		t.Fatal(err)
	}
	a := dev.Packages.MustInstall(manifest.NewBuilder("com.a", "A").
		Activity("Main", true).
		Activity("Overlay", true).
		MustBuild())
	return dev, a
}

func TestLauncherSurfacePresent(t *testing.T) {
	dev, _ := fixture(t)
	// The launcher home activity is resumed at boot.
	if got := dev.Flinger.SharedMem(); got != surfaceflinger.FullSurfaceBytes {
		t.Fatalf("boot shm = %d, want one full surface", got)
	}
}

func TestActivityVisibilityDrivesSurfaces(t *testing.T) {
	dev, a := fixture(t)
	base := dev.Flinger.SharedMem()
	rec, err := dev.Activities.UserStartApp("com.a")
	if err != nil {
		t.Fatal(err)
	}
	// Opaque foreground activity: launcher stopped (surface released),
	// app surface allocated — net unchanged.
	if got := dev.Flinger.SharedMem(); got != base {
		t.Fatalf("shm = %d, want %d (opaque swap)", got, base)
	}
	// Transparent overlay: the covered activity stays paused & visible,
	// so total grows by one transparent surface.
	if _, err := dev.StartActivity(a.UID, "com.a/Overlay", activity.Transparent()); err != nil {
		t.Fatal(err)
	}
	want := base + surfaceflinger.TransparentSurfaceBytes
	if got := dev.Flinger.SharedMem(); got != want {
		t.Fatalf("shm = %d, want %d", got, want)
	}
	_ = rec
}

func TestDialogLifecycle(t *testing.T) {
	dev, a := fixture(t)
	base := dev.Flinger.SharedMem()
	d := dev.Flinger.ShowDialog(a.UID, "exit")
	if got := dev.Flinger.SharedMem(); got != base+surfaceflinger.DialogSurfaceBytes {
		t.Fatalf("shm with dialog = %d", got)
	}
	if len(dev.Flinger.Dialogs()) != 1 {
		t.Fatal("dialog not listed")
	}
	if err := d.Dismiss(); err != nil {
		t.Fatal(err)
	}
	if got := dev.Flinger.SharedMem(); got != base {
		t.Fatalf("shm after dismiss = %d, want %d", got, base)
	}
	if err := d.Dismiss(); err == nil {
		t.Fatal("double dismiss accepted")
	}
}

func TestObserverSeesChanges(t *testing.T) {
	dev, a := fixture(t)
	var deltas []int64
	dev.Flinger.Observe(func(_ sim.Time, old, new int64) {
		deltas = append(deltas, new-old)
	})
	d := dev.Flinger.ShowDialog(a.UID, "x")
	if err := d.Dismiss(); err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 2 ||
		deltas[0] != surfaceflinger.DialogSurfaceBytes ||
		deltas[1] != -surfaceflinger.DialogSurfaceBytes {
		t.Fatalf("deltas = %v", deltas)
	}
}

func TestDialogSnifferInference(t *testing.T) {
	// The malware-side logic: a dialog-sized shared-memory delta reveals
	// the exit dialog even though the observer never sees UI contents.
	dev, a := fixture(t)
	fired := 0
	sniffer := &surfaceflinger.DialogSniffer{
		OnDialog: func(sim.Time) { fired++ },
	}
	sniffer.Attach(dev.Flinger)

	// Noise: activity churn must not trigger the sniffer.
	if _, err := dev.Activities.UserStartApp("com.a"); err != nil {
		t.Fatal(err)
	}
	dev.Activities.Home(app.UIDSystem)
	if fired != 0 {
		t.Fatalf("sniffer fired on activity churn: %d", fired)
	}
	// The dialog signature triggers it.
	dev.Flinger.ShowDialog(a.UID, "exit")
	if fired != 1 || sniffer.Hits() != 1 {
		t.Fatalf("fired = %d, hits = %d", fired, sniffer.Hits())
	}
}

func TestNewNilEngine(t *testing.T) {
	if _, err := surfaceflinger.New(nil); err == nil {
		t.Fatal("nil engine accepted")
	}
}
