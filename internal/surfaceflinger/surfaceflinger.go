// Package surfaceflinger models the slice of Android's renderer process
// that the paper's malware #4 abuses as a side channel: the shared
// virtual memory backing visible window buffers. Each visible window
// (activity surface or dialog) contributes its buffer bytes to the
// process's shared memory size; an unprivileged app can read that size
// (via /proc) and, because "both the root activity and the style of a
// dialog usually remain unchanged for most apps", infer UI state changes
// such as an exit dialog appearing — the UI inference attack of Chen et
// al. that the paper builds malware #4 on.
package surfaceflinger

import (
	"fmt"
	"sort"

	"repro/internal/activity"
	"repro/internal/app"
	"repro/internal/sim"
)

// Window buffer sizes in bytes. A full-screen surface is double-buffered
// 768x1280 RGBA (Nexus 4 panel); dialogs render into a smaller surface.
const (
	// FullSurfaceBytes is an opaque full-screen activity surface.
	FullSurfaceBytes = 768 * 1280 * 4 * 2
	// TransparentSurfaceBytes is a transparent overlay activity surface
	// (same geometry; kept distinct so overlays have a signature).
	TransparentSurfaceBytes = 768 * 1280 * 4 * 2
	// DialogSurfaceBytes is a dialog window surface.
	DialogSurfaceBytes = 600 * 400 * 4 * 2
)

// Observer is notified on every shared-memory size change with the old
// and new sizes. Malware registers one to watch for dialog signatures.
type Observer func(t sim.Time, old, new int64)

// Dialog is one visible dialog window.
type Dialog struct {
	Owner app.UID
	Tag   string
	bytes int64
	fl    *Flinger
}

// Dismiss removes the dialog. Dismissing twice is an error.
func (d *Dialog) Dismiss() error {
	return d.fl.dismiss(d)
}

// Flinger tracks visible window surfaces and their total shared memory.
// It implements activity.Hooks so activity visibility drives surface
// allocation automatically; dialogs are attached explicitly.
type Flinger struct {
	engine *sim.Engine

	activitySurfaces map[*activity.Activity]int64
	dialogs          map[*Dialog]struct{}
	observers        []Observer
}

// New builds a SurfaceFlinger model.
func New(engine *sim.Engine) (*Flinger, error) {
	if engine == nil {
		return nil, fmt.Errorf("surfaceflinger: nil engine")
	}
	return &Flinger{
		engine:           engine,
		activitySurfaces: make(map[*activity.Activity]int64),
		dialogs:          make(map[*Dialog]struct{}),
	}, nil
}

// SharedMem reports the current shared virtual memory size in bytes —
// the value an unprivileged observer can read.
func (f *Flinger) SharedMem() int64 {
	var total int64
	for _, b := range f.activitySurfaces {
		total += b
	}
	for d := range f.dialogs {
		total += d.bytes
	}
	return total
}

// Observe registers an observer for size changes.
func (f *Flinger) Observe(o Observer) { f.observers = append(f.observers, o) }

func (f *Flinger) mutate(apply func()) {
	old := f.SharedMem()
	apply()
	now := f.SharedMem()
	if now == old {
		return
	}
	for _, o := range f.observers {
		o(f.engine.Now(), old, now)
	}
}

// ShowDialog attaches a dialog window owned by uid.
func (f *Flinger) ShowDialog(owner app.UID, tag string) *Dialog {
	d := &Dialog{Owner: owner, Tag: tag, bytes: DialogSurfaceBytes, fl: f}
	f.mutate(func() { f.dialogs[d] = struct{}{} })
	return d
}

func (f *Flinger) dismiss(d *Dialog) error {
	if _, ok := f.dialogs[d]; !ok {
		return fmt.Errorf("surfaceflinger: dialog %q already dismissed", d.Tag)
	}
	f.mutate(func() { delete(f.dialogs, d) })
	return nil
}

// Dialogs returns the visible dialogs sorted by tag (diagnostics).
func (f *Flinger) Dialogs() []*Dialog {
	out := make([]*Dialog, 0, len(f.dialogs))
	for d := range f.dialogs {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
	return out
}

// Sync seeds surfaces from an existing task stack — call once after
// attaching to an activity manager that already booted (the launcher's
// initial resume happened before any hooks could attach).
func (f *Flinger) Sync(stack []*activity.Activity) {
	f.mutate(func() {
		for _, a := range stack {
			f.applyVisibility(a)
		}
	})
}

func (f *Flinger) applyVisibility(a *activity.Activity) {
	visible := a.State() == activity.Resumed || a.State() == activity.Paused
	if visible {
		bytes := int64(FullSurfaceBytes)
		if a.Transparent() {
			bytes = TransparentSurfaceBytes
		}
		f.activitySurfaces[a] = bytes
	} else {
		delete(f.activitySurfaces, a)
	}
}

// --- activity.Hooks ---

var _ activity.Hooks = (*Flinger)(nil)

// ActivityStarted implements activity.Hooks (surfaces appear on resume,
// not on start).
func (f *Flinger) ActivityStarted(sim.Time, app.UID, *activity.Activity, bool) {}

// ForegroundChanged implements activity.Hooks (no direct effect; the
// lifecycle transitions carry the visibility changes).
func (f *Flinger) ForegroundChanged(sim.Time, app.UID, app.UID, activity.Cause) {}

// Lifecycle implements activity.Hooks: resumed and paused activities are
// visible (a paused activity sits under a transparent overlay and its
// surface stays live); stopped and destroyed ones release their
// surfaces.
func (f *Flinger) Lifecycle(t sim.Time, a *activity.Activity, old, new activity.State) {
	f.mutate(func() { f.applyVisibility(a) })
}

// DialogSniffer watches shared-memory deltas for a dialog-sized
// allocation — the malware-side inference logic. When a delta matching
// the dialog signature appears, the callback fires.
type DialogSniffer struct {
	// OnDialog fires when a dialog-shaped allocation is observed.
	OnDialog func(t sim.Time)
	// hits counts matched signatures (diagnostics).
	hits int
}

// Hits reports how many dialog signatures were observed.
func (s *DialogSniffer) Hits() int { return s.hits }

// Attach registers the sniffer on a flinger.
func (s *DialogSniffer) Attach(f *Flinger) {
	f.Observe(func(t sim.Time, old, new int64) {
		if new-old == DialogSurfaceBytes {
			s.hits++
			if s.OnDialog != nil {
				s.OnDialog(t)
			}
		}
	})
}
