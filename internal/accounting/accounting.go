// Package accounting implements the two baseline energy-attribution
// policies the paper evaluates against:
//
//   - BatteryStats policy (Android's official battery interface): each
//     app is charged its own hardware energy; the screen is reported as
//     an independent pseudo-entry ("the energy consumed by screen is
//     always displayed in total").
//   - PowerTutor policy: screen energy is always allocated to the
//     foreground app ("the center of interacting with users").
//
// Neither policy sees IPC, which is exactly the blind spot E-Android
// (internal/core) fixes by layering collateral maps on top.
package accounting

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/app"
	"repro/internal/hw"
	"repro/internal/telemetry"
)

// Policy selects a screen-attribution rule.
type Policy int

// The two baseline policies.
const (
	// BatteryStats reports screen energy as a separate entry.
	BatteryStats Policy = iota + 1
	// PowerTutor charges screen energy to the foreground app.
	PowerTutor
)

func (p Policy) String() string {
	switch p {
	case BatteryStats:
		return "batterystats"
	case PowerTutor:
		return "powertutor"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Entry is one row of a battery view: an app (or pseudo-entry) and its
// attributed energy.
type Entry struct {
	UID    app.UID
	Usage  hw.Usage
	TotalJ float64
}

// Accountant accumulates per-app energy under one baseline policy. It is
// an hw.Sink; wire it to the meter and feed it foreground changes.
type Accountant struct {
	policy     Policy
	foreground app.UID

	// own is the cumulative per-app ledger, kept dense: Accrue folds the
	// meter's borrowed interval table straight into it, row by row, with
	// no per-interval map or key-sort work. Nothing from the interval is
	// retained, honoring the sink borrow contract.
	own     *hw.UsageTable
	screenJ float64 // BatteryStats separate bucket
	systemJ float64

	// fgTime and screenOnTime are the usage-time statistics the real
	// BatteryStats reports alongside energy.
	fgTime       map[app.UID]time.Duration
	screenOnTime time.Duration

	// tel receives per-interval attribution events and feeds the
	// per-UID energy distributions; nil costs one branch per interval.
	tel *telemetry.Recorder
}

// New returns an accountant for the given policy.
func New(policy Policy) (*Accountant, error) {
	if policy != BatteryStats && policy != PowerTutor {
		return nil, fmt.Errorf("accounting: invalid policy %d", int(policy))
	}
	return &Accountant{
		policy:     policy,
		foreground: app.UIDNone,
		own:        hw.NewUsageTable(),
		fgTime:     make(map[app.UID]time.Duration),
	}, nil
}

// Policy reports the attribution policy in force.
func (a *Accountant) Policy() Policy { return a.policy }

// SetTelemetry wires a telemetry recorder (nil detaches it).
func (a *Accountant) SetTelemetry(rec *telemetry.Recorder) { a.tel = rec }

// SetForeground records the current foreground app (drive this from the
// activity manager's ForegroundChanged hook).
func (a *Accountant) SetForeground(uid app.UID) { a.foreground = uid }

// Foreground reports the last recorded foreground app.
func (a *Accountant) Foreground() app.UID { return a.foreground }

// Accrue implements hw.Sink.
func (a *Accountant) Accrue(iv hw.Interval) {
	if a.tel.Enabled() {
		a.observeInterval(iv)
	}
	if a.foreground != app.UIDNone {
		a.fgTime[a.foreground] += iv.Duration()
	}
	if iv.ScreenJ > 0 {
		a.screenOnTime += iv.Duration()
	}
	iv.EachApp(func(uid app.UID, row *hw.UsageRow) {
		a.own.Row(uid).AddRow(row)
	})
	a.systemJ += iv.SystemJ
	if iv.ScreenJ == 0 {
		return
	}
	switch a.policy {
	case BatteryStats:
		a.screenJ += iv.ScreenJ
	case PowerTutor:
		if a.foreground == app.UIDNone {
			a.screenJ += iv.ScreenJ
			return
		}
		a.own.Row(a.foreground).Add(hw.Screen, iv.ScreenJ)
	}
}

// observeInterval records one attribution event per app charged in the
// interval. The interval table already iterates in sorted UID order, so
// the event stream (and the per-UID energy distributions it feeds) is
// deterministic with no per-interval key collection or sort.
func (a *Accountant) observeInterval(iv hw.Interval) {
	iv.EachApp(func(uid app.UID, row *hw.UsageRow) {
		a.tel.RecordAttribution(iv.To, uid, row.Total())
	})
	if iv.ScreenJ > 0 {
		screenUID := app.UIDScreen
		if a.policy == PowerTutor && a.foreground != app.UIDNone {
			screenUID = a.foreground
		}
		a.tel.RecordAttribution(iv.To, screenUID, iv.ScreenJ)
	}
	if iv.SystemJ > 0 {
		a.tel.RecordAttribution(iv.To, app.UIDSystem, iv.SystemJ)
	}
}

// AppJ reports the energy attributed to one app under the policy.
func (a *Accountant) AppJ(uid app.UID) float64 {
	row := a.own.Get(uid)
	if row == nil {
		return 0
	}
	return row.Total()
}

// AppUsage returns a copy of the per-component energy attributed to uid.
func (a *Accountant) AppUsage(uid app.UID) hw.Usage {
	row := a.own.Get(uid)
	if row == nil {
		return hw.Usage{}
	}
	return row.Usage()
}

// ForegroundTime reports how long uid has held the foreground.
func (a *Accountant) ForegroundTime(uid app.UID) time.Duration {
	return a.fgTime[uid]
}

// ScreenOnTime reports cumulative display-on time.
func (a *Accountant) ScreenOnTime() time.Duration { return a.screenOnTime }

// ScreenJ reports energy in the separate screen bucket (always zero
// under PowerTutor unless nothing was ever foreground).
func (a *Accountant) ScreenJ() float64 { return a.screenJ }

// SystemJ reports platform base energy.
func (a *Accountant) SystemJ() float64 { return a.systemJ }

// TotalJ reports all energy seen by the accountant, summed in a fixed
// order (screen, system, then ascending UID).
func (a *Accountant) TotalJ() float64 {
	t := a.screenJ + a.systemJ
	t += a.own.TotalJ()
	return t
}

// Entries returns the battery view rows: one per app, plus the Screen
// pseudo-entry (when its bucket is non-empty) and the System entry,
// sorted by descending energy then ascending UID for determinism.
func (a *Accountant) Entries() []Entry {
	out := make([]Entry, 0, a.own.Len()+2)
	a.own.Each(func(uid app.UID, row *hw.UsageRow) {
		out = append(out, Entry{UID: uid, Usage: row.Usage(), TotalJ: row.Total()})
	})
	if a.screenJ > 0 {
		out = append(out, Entry{
			UID:    app.UIDScreen,
			Usage:  hw.Usage{hw.Screen: a.screenJ},
			TotalJ: a.screenJ,
		})
	}
	if a.systemJ > 0 {
		out = append(out, Entry{
			UID:    app.UIDSystem,
			Usage:  hw.Usage{hw.CPU: a.systemJ},
			TotalJ: a.systemJ,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalJ != out[j].TotalJ {
			return out[i].TotalJ > out[j].TotalJ
		}
		return out[i].UID < out[j].UID
	})
	return out
}

// Share reports uid's fraction of total attributed energy in [0, 1].
func (a *Accountant) Share(uid app.UID) float64 {
	total := a.TotalJ()
	if total == 0 {
		return 0
	}
	switch uid {
	case app.UIDScreen:
		return a.screenJ / total
	case app.UIDSystem:
		return a.systemJ / total
	}
	return a.AppJ(uid) / total
}
