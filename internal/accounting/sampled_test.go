package accounting_test

import (
	"testing"
	"time"

	"repro/internal/accounting"
	"repro/internal/app"
	"repro/internal/device"
	"repro/internal/manifest"
)

func sampledFixture(t *testing.T, period time.Duration) (*device.Device, *app.App, *accounting.SampledAccountant) {
	t.Helper()
	dev, err := device.New(device.Config{})
	if err != nil {
		t.Fatal(err)
	}
	a := dev.Packages.MustInstall(manifest.NewBuilder("com.s", "S").
		Activity("Main", true).
		MustBuild())
	if err := a.SetWorkload("Main", app.Workload{CPUActive: 0.5}); err != nil {
		t.Fatal(err)
	}
	s, err := accounting.NewSampled(dev.Engine, dev.Meter, dev.Packages, period)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	return dev, a, s
}

func TestSampledMatchesExactOnSteadyState(t *testing.T) {
	dev, a, s := sampledFixture(t, time.Second)
	if _, err := dev.Activities.UserStartApp("com.s"); err != nil {
		t.Fatal(err)
	}
	// Steady state for exactly 20 sample periods.
	if err := dev.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	dev.Flush()
	exact := dev.Android.AppJ(a.UID)
	if e := accounting.RelativeError(s.AppJ(a.UID), exact); e > 0.001 {
		t.Fatalf("steady-state error = %.4f (sampled %v vs exact %v)",
			e, s.AppJ(a.UID), exact)
	}
}

func TestSampledMissesSubPeriodBursts(t *testing.T) {
	// The app runs in 300 ms bursts between 1 Hz samples: the sampler
	// attributes almost nothing while the exact integrator sees it all —
	// the utilization-sampling blind spot.
	dev, a, s := sampledFixture(t, time.Second)
	for i := 0; i < 20; i++ {
		// Burst: activity resumes right after a sample, finishes before
		// the next.
		rec, err := dev.Activities.UserStartApp("com.s")
		if err != nil {
			t.Fatal(err)
		}
		if err := dev.Run(300 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if err := dev.Activities.Finish(rec); err != nil {
			t.Fatal(err)
		}
		if err := dev.Run(700 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	dev.Flush()
	exact := dev.Android.AppJ(a.UID)
	if exact <= 0 {
		t.Fatal("exact accountant should have seen the bursts")
	}
	if e := accounting.RelativeError(s.AppJ(a.UID), exact); e < 0.5 {
		t.Fatalf("sampler unexpectedly accurate on bursts: error %.3f", e)
	}
}

func TestSampledTotalTracksLoosely(t *testing.T) {
	dev, _, s := sampledFixture(t, time.Second)
	if _, err := dev.Activities.UserStartApp("com.s"); err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	dev.Flush()
	if e := accounting.RelativeError(s.TotalJ(), dev.Battery.DrainedJ()); e > 0.1 {
		t.Fatalf("total error = %.3f", e)
	}
	if s.ScreenJ() <= 0 || s.SystemJ() <= 0 {
		t.Fatal("component buckets empty")
	}
}

func TestSampledStartStopIdempotent(t *testing.T) {
	dev, a, s := sampledFixture(t, time.Second)
	s.Start() // second start: no double sampling
	if _, err := dev.Activities.UserStartApp("com.s"); err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	before := s.AppJ(a.UID)
	s.Stop()
	s.Stop()
	if err := dev.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if s.AppJ(a.UID) != before {
		t.Fatal("sampling continued after stop")
	}
}

func TestNewSampledValidation(t *testing.T) {
	if _, err := accounting.NewSampled(nil, nil, nil, 0); err == nil {
		t.Fatal("nil deps accepted")
	}
}

func TestRelativeError(t *testing.T) {
	if accounting.RelativeError(0, 0) != 0 {
		t.Fatal("0/0")
	}
	if accounting.RelativeError(5, 0) != 1 {
		t.Fatal("x/0")
	}
	if got := accounting.RelativeError(90, 100); got != 0.1 {
		t.Fatalf("err = %v", got)
	}
	if got := accounting.RelativeError(110, 100); got != 0.1 {
		t.Fatalf("err = %v", got)
	}
}
