package accounting_test

import (
	"testing"
	"time"

	"repro/internal/accounting"
)

// Regression: TotalJ used to iterate the package manager's live app
// list, so energy attributed to an app uninstalled mid-run silently
// vanished from the sampled total (breaking conservation against the
// battery). The total must be the sum of the ledger itself.
func TestSampledTotalJRetainsUninstalledApps(t *testing.T) {
	dev, a, s := sampledFixture(t, time.Second)
	if _, err := dev.Activities.UserStartApp("com.s"); err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if s.AppJ(a.UID) == 0 {
		t.Fatal("fixture app earned no sampled energy")
	}
	before := s.TotalJ()
	if err := dev.Packages.Uninstall("com.s"); err != nil {
		t.Fatal(err)
	}
	if after := s.TotalJ(); after < before-1e-12 {
		t.Fatalf("uninstall dropped energy from TotalJ: %v -> %v", before, after)
	}
	if err := dev.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	s.Stop()
	if total, app := s.TotalJ(), s.AppJ(a.UID); total < app {
		t.Fatalf("TotalJ %v no longer covers the dead app's ledger entry %v", total, app)
	}
}

// Regression: Stop used to discard the span since the last tick, so a
// run whose length was not a multiple of the sample period lost up to
// one period of energy. In steady state the flushed sampler must now
// track the exact integrator closely even across a half-period tail.
func TestSampledStopFlushesPartialFinalPeriod(t *testing.T) {
	dev, a, s := sampledFixture(t, time.Second)
	if _, err := dev.Activities.UserStartApp("com.s"); err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(10*time.Second + 500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	s.Stop()
	dev.Flush()
	exact := dev.Android.AppJ(a.UID)
	if e := accounting.RelativeError(s.AppJ(a.UID), exact); e > 0.005 {
		t.Fatalf("partial final period lost: error %.4f (sampled %v, exact %v)",
			e, s.AppJ(a.UID), exact)
	}
}

// Stop is idempotent: a second call must not flush the tail twice.
func TestSampledStopIdempotent(t *testing.T) {
	dev, _, s := sampledFixture(t, time.Second)
	if _, err := dev.Activities.UserStartApp("com.s"); err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(3*time.Second + 500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	s.Stop()
	total := s.TotalJ()
	s.Stop()
	if got := s.TotalJ(); got != total {
		t.Fatalf("second Stop changed the total: %v -> %v", total, got)
	}
}
