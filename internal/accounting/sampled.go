package accounting

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/app"
	"repro/internal/hw"
	"repro/internal/sim"
)

// SampledAccountant is the ablation counterpart of Accountant: instead
// of consuming exact integrated intervals, it polls instantaneous
// per-app power on a fixed period and accumulates E ≈ P·Δt, the way
// utilization-sampling profilers (PowerTutor's 1 Hz loop and kin) work.
// State changes between samples are invisible to it, which is the error
// class — "as high as about 20 %" in the paper's related-work survey —
// that the exact meter avoids. Tests and the ablation benches compare
// the two on identical scenarios.
type SampledAccountant struct {
	engine *sim.Engine
	meter  *hw.Meter
	pm     *app.PackageManager
	period time.Duration
	ticker *sim.Ticker

	appJ    map[app.UID]float64
	screenJ float64
	systemJ float64

	// lastSample is the instant the accumulators last advanced to;
	// Stop flushes the partial period since it.
	lastSample sim.Time
}

// DefaultSamplePeriod mirrors PowerTutor's 1 Hz sampling.
const DefaultSamplePeriod = time.Second

// NewSampled builds a sampling accountant; Start begins polling.
func NewSampled(engine *sim.Engine, meter *hw.Meter, pm *app.PackageManager, period time.Duration) (*SampledAccountant, error) {
	if engine == nil || meter == nil || pm == nil {
		return nil, fmt.Errorf("accounting: nil dependency")
	}
	if period <= 0 {
		period = DefaultSamplePeriod
	}
	return &SampledAccountant{
		engine: engine,
		meter:  meter,
		pm:     pm,
		period: period,
		appJ:   make(map[app.UID]float64),
	}, nil
}

// Start begins periodic sampling.
func (s *SampledAccountant) Start() {
	if s.ticker != nil {
		return
	}
	s.lastSample = s.engine.Now()
	s.ticker = s.engine.Every(s.period, "accounting.sample", s.sample)
}

// Stop halts sampling, first flushing the partial period since the last
// tick at the current instantaneous rates — without the flush, up to
// one period of estimated energy silently vanished at run end, skewing
// every sampled-vs-exact comparison on horizons that are not an exact
// multiple of the period. Stopping twice does not double-flush.
func (s *SampledAccountant) Stop() {
	if s.ticker == nil {
		return
	}
	s.ticker.Stop()
	s.ticker = nil
	if dt := s.engine.Now().Sub(s.lastSample); dt > 0 {
		s.accrueSpan(dt.Seconds())
		s.lastSample = s.engine.Now()
	}
}

// sample attributes one period of energy at the instantaneous rates.
func (s *SampledAccountant) sample() {
	s.accrueSpan(s.period.Seconds())
	s.lastSample = s.engine.Now()
}

// accrueSpan charges secs seconds at the current instantaneous rates —
// the defining approximation of a sampling profiler: state changes
// inside the span are invisible.
func (s *SampledAccountant) accrueSpan(secs float64) {
	s.pm.EachApp(func(a *app.App) {
		if p := s.meter.InstantAppPowerMW(a.UID); p > 0 {
			s.appJ[a.UID] += p / 1000 * secs
		}
	})
	s.screenJ += s.meter.InstantScreenPowerMW() / 1000 * secs
	s.systemJ += s.meter.InstantSystemPowerMW() / 1000 * secs
}

// AppJ reports the sampled estimate for one app.
func (s *SampledAccountant) AppJ(uid app.UID) float64 { return s.appJ[uid] }

// ScreenJ reports the sampled screen estimate.
func (s *SampledAccountant) ScreenJ() float64 { return s.screenJ }

// SystemJ reports the sampled platform-base estimate.
func (s *SampledAccountant) SystemJ() float64 { return s.systemJ }

// TotalJ reports the sampled total. It iterates the appJ ledger itself
// (in sorted UID order, so the float summation is reproducible), not
// pm.Apps(): an app uninstalled mid-run keeps the energy it accrued —
// walking the installed list silently dropped those joules from the
// total while AppJ still reported them.
func (s *SampledAccountant) TotalJ() float64 {
	uids := make([]app.UID, 0, len(s.appJ))
	for uid := range s.appJ {
		uids = append(uids, uid)
	}
	sort.Slice(uids, func(i, j int) bool { return uids[i] < uids[j] })
	t := s.screenJ + s.systemJ
	for _, uid := range uids {
		t += s.appJ[uid]
	}
	return t
}

// RelativeError reports |sampled-exact|/exact for an exact reference
// (0 when the reference is 0).
func RelativeError(sampled, exact float64) float64 {
	if exact == 0 {
		if sampled == 0 {
			return 0
		}
		return 1
	}
	d := sampled - exact
	if d < 0 {
		d = -d
	}
	return d / exact
}
