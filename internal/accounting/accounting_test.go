package accounting

import (
	"math"
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/hw"
	"repro/internal/sim"
)

func run(t *testing.T, policy Policy, script func(e *sim.Engine, m *hw.Meter, a *Accountant)) *Accountant {
	t.Helper()
	e := sim.NewEngine(1)
	b, err := hw.NewBattery(hw.NexusBatteryJ)
	if err != nil {
		t.Fatal(err)
	}
	m, err := hw.NewMeter(e.Now, hw.Nexus4(), b)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(policy)
	if err != nil {
		t.Fatal(err)
	}
	m.AddSink(a)
	script(e, m, a)
	m.Flush()
	return a
}

func approx(t *testing.T, got, want float64, label string) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("%s = %v, want %v", label, got, want)
	}
}

func TestNewRejectsInvalidPolicy(t *testing.T) {
	if _, err := New(Policy(0)); err == nil {
		t.Fatal("invalid policy accepted")
	}
}

func TestPolicyString(t *testing.T) {
	if BatteryStats.String() != "batterystats" || PowerTutor.String() != "powertutor" {
		t.Fatal("policy names")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy stringer")
	}
}

func TestBatteryStatsKeepsScreenSeparate(t *testing.T) {
	a := run(t, BatteryStats, func(e *sim.Engine, m *hw.Meter, a *Accountant) {
		a.SetForeground(100)
		m.SetScreen(true)
		m.SetBrightness(255)
		m.SetCPUUtil(100, 0.5)
		if err := e.RunFor(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	})
	p := hw.Nexus4()
	approx(t, a.ScreenJ(), p.ScreenPower(255)/1000*10, "screen bucket")
	approx(t, a.AppJ(100), 0.5*p.CPUFull/1000*10, "app energy excludes screen")
	if a.AppUsage(100)[hw.Screen] != 0 {
		t.Fatal("BatteryStats must not charge screen to app")
	}
}

func TestPowerTutorChargesForeground(t *testing.T) {
	a := run(t, PowerTutor, func(e *sim.Engine, m *hw.Meter, a *Accountant) {
		a.SetForeground(100)
		m.SetScreen(true)
		m.SetBrightness(255)
		if err := e.RunFor(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		m.Flush()
		a.SetForeground(200)
		if err := e.RunFor(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	})
	p := hw.Nexus4()
	perSec := p.ScreenPower(255) / 1000
	approx(t, a.AppUsage(100)[hw.Screen], perSec*10, "fg app 1 screen")
	approx(t, a.AppUsage(200)[hw.Screen], perSec*5, "fg app 2 screen")
	approx(t, a.ScreenJ(), 0, "no separate bucket")
}

func TestPowerTutorNoForegroundFallsBack(t *testing.T) {
	a := run(t, PowerTutor, func(e *sim.Engine, m *hw.Meter, a *Accountant) {
		m.SetScreen(true)
		if err := e.RunFor(time.Second); err != nil {
			t.Fatal(err)
		}
	})
	if a.ScreenJ() == 0 {
		t.Fatal("screen energy with no foreground should land in the bucket")
	}
}

func TestSystemBucket(t *testing.T) {
	a := run(t, BatteryStats, func(e *sim.Engine, m *hw.Meter, a *Accountant) {
		if err := e.RunFor(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	})
	approx(t, a.SystemJ(), hw.Nexus4().CPUIdleAwake/1000*10, "system bucket")
}

func TestTotalMatchesBattery(t *testing.T) {
	e := sim.NewEngine(1)
	b, _ := hw.NewBattery(hw.NexusBatteryJ)
	m, _ := hw.NewMeter(e.Now, hw.Nexus4(), b)
	a, _ := New(BatteryStats)
	m.AddSink(a)
	m.SetScreen(true)
	m.SetCPUUtil(1, 0.3)
	m.SetCPUUtil(2, 0.6)
	if err := e.RunFor(42 * time.Second); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	approx(t, a.TotalJ(), b.DrainedJ(), "accountant total vs battery")
}

func TestEntriesSortedAndComplete(t *testing.T) {
	a := run(t, BatteryStats, func(e *sim.Engine, m *hw.Meter, a *Accountant) {
		m.SetScreen(true)
		m.SetBrightness(255)
		m.SetCPUUtil(100, 0.9)
		m.SetCPUUtil(200, 0.1)
		if err := e.RunFor(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	})
	entries := a.Entries()
	if len(entries) != 4 { // 2 apps + screen + system
		t.Fatalf("entries = %d, want 4", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].TotalJ > entries[i-1].TotalJ {
			t.Fatal("entries not sorted descending")
		}
	}
	// Screen at 255 beats everything else in this setup.
	if entries[0].UID != app.UIDScreen {
		t.Fatalf("top entry = %v, want screen", entries[0].UID)
	}
}

func TestShares(t *testing.T) {
	a := run(t, BatteryStats, func(e *sim.Engine, m *hw.Meter, a *Accountant) {
		m.SetScreen(true)
		m.SetCPUUtil(100, 0.5)
		if err := e.RunFor(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	})
	sum := a.Share(100) + a.Share(app.UIDScreen) + a.Share(app.UIDSystem)
	approx(t, sum, 1, "shares sum to 1")
	empty, _ := New(BatteryStats)
	if empty.Share(1) != 0 {
		t.Fatal("share of empty accountant should be 0")
	}
}

func TestAppUsageCopies(t *testing.T) {
	a := run(t, BatteryStats, func(e *sim.Engine, m *hw.Meter, a *Accountant) {
		m.SetCPUUtil(1, 0.5)
		if err := e.RunFor(time.Second); err != nil {
			t.Fatal(err)
		}
	})
	u := a.AppUsage(1)
	u[hw.CPU] = 99999
	if a.AppUsage(1)[hw.CPU] == 99999 {
		t.Fatal("AppUsage must return a copy")
	}
	if got := a.AppUsage(42); len(got) != 0 {
		t.Fatal("unknown app usage should be empty")
	}
}

func TestTimeStats(t *testing.T) {
	a := run(t, BatteryStats, func(e *sim.Engine, m *hw.Meter, a *Accountant) {
		a.SetForeground(100)
		m.SetScreen(true)
		if err := e.RunFor(20 * time.Second); err != nil {
			t.Fatal(err)
		}
		m.Flush()
		a.SetForeground(200)
		m.SetScreen(false)
		if err := e.RunFor(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	})
	if got := a.ForegroundTime(100); got != 20*time.Second {
		t.Fatalf("fg time uid 100 = %v", got)
	}
	if got := a.ForegroundTime(200); got != 10*time.Second {
		t.Fatalf("fg time uid 200 = %v", got)
	}
	if got := a.ScreenOnTime(); got != 20*time.Second {
		t.Fatalf("screen-on time = %v", got)
	}
}
