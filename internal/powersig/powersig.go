// Package powersig implements the power-signature malware detector of
// Kim et al. ("Detecting Energy-Greedy Anomalies and Mobile Malware
// Variants", MobiSys 2008) that the paper's related-work analysis argues
// against: it samples each app's *own* power draw, builds a per-app
// signature (quantized power-level histogram over a training window) and
// flags apps whose live trace deviates from their trained profile.
//
// Classic energy malware — Martin et al.'s bombers that burn CPU, the
// display or the radio in their own process — light up their own traces
// and are caught. Collateral energy malware drains the battery through
// *other* apps' processes, so its own trace stays flat and the detector
// stays silent. The paper's claim ("power signature cannot tackle
// collateral energy malware that drains energy via an indirect
// approach") is reproduced by the experiments in this package's tests.
package powersig

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"time"

	"repro/internal/app"
	"repro/internal/hw"
	"repro/internal/sim"
)

// DefaultSamplePeriod is how often traces are sampled.
const DefaultSamplePeriod = time.Second

// Signature is one app's trained power profile.
type Signature struct {
	UID app.UID
	// MeanMW and StdMW summarize the training window.
	MeanMW float64
	StdMW  float64
	// PeakMW is the largest sample seen in training.
	PeakMW float64
	// Samples is how many observations went in.
	Samples int
}

// String renders the signature compactly.
func (s Signature) String() string {
	return fmt.Sprintf("sig{uid=%d mean=%.1fmW std=%.1f peak=%.1f n=%d}",
		s.UID, s.MeanMW, s.StdMW, s.PeakMW, s.Samples)
}

// Verdict is the detector's judgement for one app.
type Verdict struct {
	UID app.UID
	// Anomalous marks a live trace that exceeds the trained profile.
	Anomalous bool
	// LiveMeanMW is the mean of the detection window.
	LiveMeanMW float64
	// TrainedMeanMW echoes the signature's mean.
	TrainedMeanMW float64
}

// traceSeg is a run of sampling frames over one stable app census:
// slots lists the sampled app slots (ascending — EachApp order) and
// data holds len(slots) samples per frame, frame-major. Storing frames
// flat in one float column instead of a map of per-app slices is what
// makes sampling cheap enough for fleet scale: a tick appends one
// pointer-free float block, so the 1 Hz × devices × apps hot path
// carries no hashing, no per-app slice headers and no GC write
// barriers. An install/uninstall mid-window just starts a new segment.
//
// Segments are fixed-capacity chunks (segFrames frames): when one
// fills, the next frame starts a fresh segment with an exact-size data
// array. Chunking keeps append from ever reallocating — the doubling
// growth of an open-ended trace array was the fleet bench's largest
// allocation site — and retired chunks (Train) go to a free list for
// the detection window to reuse.
type traceSeg struct {
	slots []int32
	data  []float64
}

// segFrames is the chunk capacity, in frames, of one segment.
const segFrames = 256

// samplesFor iterates slot's samples within the segment in time order.
func (s *traceSeg) samplesFor(slot int32, fn func(v float64)) {
	k, ok := slices.BinarySearch(s.slots, slot)
	if !ok {
		return
	}
	stride := len(s.slots)
	for j := k; j < len(s.data); j += stride {
		fn(s.data[j])
	}
}

// Detector samples per-app power from the meter on a fixed period,
// trains signatures over an initial window, then compares live windows
// against them.
type Detector struct {
	engine *sim.Engine
	meter  *hw.Meter
	pm     *app.PackageManager
	period time.Duration

	ticker *sim.Ticker

	// segs is the live trace log (see traceSeg); the last segment is
	// the active one.
	segs []traceSeg
	// freeData holds retired segment chunks for reuse.
	freeData [][]float64
	// frameSlots/frameVals are the current tick's scratch frame —
	// frameN is the logical length; the slices stay at full length and
	// are written by index so the hot callback never stores a slice
	// header (each such store is a GC write barrier). The slot census
	// is cached across ticks and rebuilt only when the package
	// manager's generation moves (install/uninstall).
	frameSlots []int32
	frameVals  []float64
	frameN     int
	censusGen  uint64
	censusOK   bool
	// sampleFn is the EachApp callback, built once so sampling does not
	// close over the receiver on every tick.
	sampleFn func(*app.App)
	sigs     map[app.UID]Signature
}

// NewDetector builds a detector; Start begins sampling.
func NewDetector(engine *sim.Engine, meter *hw.Meter, pm *app.PackageManager, period time.Duration) (*Detector, error) {
	if engine == nil || meter == nil || pm == nil {
		return nil, fmt.Errorf("powersig: nil dependency")
	}
	if period <= 0 {
		period = DefaultSamplePeriod
	}
	d := &Detector{
		engine: engine,
		meter:  meter,
		pm:     pm,
		period: period,
		sigs:   make(map[app.UID]Signature),
	}
	d.sampleFn = func(a *app.App) {
		if a.System {
			return
		}
		s := app.Slot(a.UID)
		if s < 0 {
			return
		}
		n := d.frameN
		if n == len(d.frameSlots) {
			d.frameSlots = append(d.frameSlots, 0)
		}
		d.frameSlots[n] = int32(s)
		d.frameN = n + 1
	}
	return d, nil
}

// Start begins periodic sampling. Stop with Stop.
func (d *Detector) Start() {
	if d.ticker != nil {
		return
	}
	d.ticker = d.engine.Every(d.period, "powersig.sample", d.sample)
}

// Stop halts sampling.
func (d *Detector) Stop() {
	if d.ticker != nil {
		d.ticker.Stop()
		d.ticker = nil
	}
}

func (d *Detector) sample() {
	// EachApp iterates the package manager's cached sorted list — the
	// per-sample copy+sort of Apps() dominated the fleet bench's
	// allocation profile at a 1 Hz sampling rate per device.
	if g := d.pm.Gen(); !d.censusOK || g != d.censusGen {
		d.frameN = 0
		d.pm.EachApp(d.sampleFn)
		d.censusGen, d.censusOK = g, true
	}
	k := d.frameN
	if k == 0 {
		return
	}
	slots := d.frameSlots[:k]
	vals := d.frameVals
	if cap(vals) < k {
		vals = make([]float64, k)
		d.frameVals = vals
	} else {
		vals = vals[:k]
	}
	// One bulk meter pass computes the whole frame; apps without live
	// meter state are zero-filled without a per-app lookup.
	d.meter.AppPowersInto(slots, vals)
	var seg *traceSeg
	if n := len(d.segs); n > 0 {
		sg := &d.segs[n-1]
		if len(sg.data)+k <= cap(sg.data) && slices.Equal(sg.slots, slots) {
			seg = sg
		}
	}
	if seg == nil {
		d.segs = append(d.segs, traceSeg{
			slots: slices.Clone(slots),
			data:  d.chunkFor(segFrames * k),
		})
		seg = &d.segs[len(d.segs)-1]
	}
	seg.data = append(seg.data, vals...)
}

// chunkFor returns a data chunk with at least want capacity, reusing a
// retired one when possible.
func (d *Detector) chunkFor(want int) []float64 {
	for i := len(d.freeData) - 1; i >= 0; i-- {
		if c := d.freeData[i]; cap(c) >= want {
			last := len(d.freeData) - 1
			d.freeData[i] = d.freeData[last]
			d.freeData[last] = nil
			d.freeData = d.freeData[:last]
			return c[:0]
		}
	}
	return make([]float64, 0, want)
}

// eachSample iterates every sample of uid across segments in time
// order — exactly the order the former per-app append log held them in.
func (d *Detector) eachSample(uid app.UID, fn func(v float64)) {
	s := app.Slot(uid)
	if s < 0 {
		return
	}
	for i := range d.segs {
		d.segs[i].samplesFor(int32(s), fn)
	}
}

// maxSlot reports the highest sampled app slot, -1 when none.
func (d *Detector) maxSlot() int32 {
	m := int32(-1)
	for i := range d.segs {
		if sl := d.segs[i].slots; len(sl) > 0 && sl[len(sl)-1] > m {
			m = sl[len(sl)-1] // slots are ascending
		}
	}
	return m
}

// TraceLen reports how many samples uid has accumulated.
func (d *Detector) TraceLen(uid app.UID) int {
	n := 0
	d.eachSample(uid, func(float64) { n++ })
	return n
}

// summarizeUID folds uid's trace into a signature; ok is false when the
// trace is empty. The two accumulation passes visit samples in time
// order, bit-identical to summarizing a contiguous trace slice.
func (d *Detector) summarizeUID(uid app.UID) (Signature, bool) {
	var sum, peak float64
	n := 0
	d.eachSample(uid, func(v float64) {
		sum += v
		if v > peak {
			peak = v
		}
		n++
	})
	if n == 0 {
		return Signature{}, false
	}
	mean := sum / float64(n)
	var varsum float64
	d.eachSample(uid, func(v float64) { varsum += (v - mean) * (v - mean) })
	return Signature{
		UID:     uid,
		MeanMW:  mean,
		StdMW:   math.Sqrt(varsum / float64(n)),
		PeakMW:  peak,
		Samples: n,
	}, true
}

// Train freezes the samples collected so far into per-app signatures and
// clears the live traces. Call after a known-benign observation window.
func (d *Detector) Train() error {
	trained := 0
	for s := int32(0); s <= d.maxSlot(); s++ {
		uid := app.FromSlot(int(s))
		if sig, ok := d.summarizeUID(uid); ok {
			d.sigs[uid] = sig
			trained++
		}
	}
	if trained == 0 {
		return fmt.Errorf("powersig: no samples to train on")
	}
	for i := range d.segs {
		d.freeData = append(d.freeData, d.segs[i].data)
		d.segs[i] = traceSeg{}
	}
	d.segs = d.segs[:0]
	return nil
}

// Signatures returns the trained signatures sorted by UID.
func (d *Detector) Signatures() []Signature {
	out := make([]Signature, 0, len(d.sigs))
	for _, s := range d.sigs {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UID < out[j].UID })
	return out
}

// slackMW tolerates small absolute drifts so near-zero trained profiles
// don't flag on noise-level activity.
const slackMW = 25

// Classify compares each app's live trace (sampled since Train) against
// its signature: a live mean beyond mean+3σ+slack, or beyond twice the
// trained peak (whichever is larger), is anomalous. Apps without a
// trained signature are judged against a zero profile.
func (d *Detector) Classify() []Verdict {
	// Slot order is UID order, so the dense log iterates already
	// sorted — no per-call key copy + sort.
	var out []Verdict
	for s := int32(0); s <= d.maxSlot(); s++ {
		uid := app.FromSlot(int(s))
		live, ok := d.summarizeUID(uid)
		if !ok {
			continue
		}
		sig := d.sigs[uid] // zero value for unknown apps
		threshold := sig.MeanMW + 3*sig.StdMW + slackMW
		if alt := 2 * sig.PeakMW; alt > threshold {
			threshold = alt
		}
		out = append(out, Verdict{
			UID:           uid,
			Anomalous:     live.MeanMW > threshold,
			LiveMeanMW:    live.MeanMW,
			TrainedMeanMW: sig.MeanMW,
		})
	}
	return out
}

// Anomalous returns just the flagged UIDs from Classify, sorted.
func (d *Detector) Anomalous() []app.UID {
	var out []app.UID
	for _, v := range d.Classify() {
		if v.Anomalous {
			out = append(out, v.UID)
		}
	}
	return out
}
