// Package powersig implements the power-signature malware detector of
// Kim et al. ("Detecting Energy-Greedy Anomalies and Mobile Malware
// Variants", MobiSys 2008) that the paper's related-work analysis argues
// against: it samples each app's *own* power draw, builds a per-app
// signature (quantized power-level histogram over a training window) and
// flags apps whose live trace deviates from their trained profile.
//
// Classic energy malware — Martin et al.'s bombers that burn CPU, the
// display or the radio in their own process — light up their own traces
// and are caught. Collateral energy malware drains the battery through
// *other* apps' processes, so its own trace stays flat and the detector
// stays silent. The paper's claim ("power signature cannot tackle
// collateral energy malware that drains energy via an indirect
// approach") is reproduced by the experiments in this package's tests.
package powersig

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/app"
	"repro/internal/hw"
	"repro/internal/sim"
)

// DefaultSamplePeriod is how often traces are sampled.
const DefaultSamplePeriod = time.Second

// Signature is one app's trained power profile.
type Signature struct {
	UID app.UID
	// MeanMW and StdMW summarize the training window.
	MeanMW float64
	StdMW  float64
	// PeakMW is the largest sample seen in training.
	PeakMW float64
	// Samples is how many observations went in.
	Samples int
}

// String renders the signature compactly.
func (s Signature) String() string {
	return fmt.Sprintf("sig{uid=%d mean=%.1fmW std=%.1f peak=%.1f n=%d}",
		s.UID, s.MeanMW, s.StdMW, s.PeakMW, s.Samples)
}

// Verdict is the detector's judgement for one app.
type Verdict struct {
	UID app.UID
	// Anomalous marks a live trace that exceeds the trained profile.
	Anomalous bool
	// LiveMeanMW is the mean of the detection window.
	LiveMeanMW float64
	// TrainedMeanMW echoes the signature's mean.
	TrainedMeanMW float64
}

// Detector samples per-app power from the meter on a fixed period,
// trains signatures over an initial window, then compares live windows
// against them.
type Detector struct {
	engine *sim.Engine
	meter  *hw.Meter
	pm     *app.PackageManager
	period time.Duration

	ticker *sim.Ticker

	traces map[app.UID][]float64
	sigs   map[app.UID]Signature
}

// NewDetector builds a detector; Start begins sampling.
func NewDetector(engine *sim.Engine, meter *hw.Meter, pm *app.PackageManager, period time.Duration) (*Detector, error) {
	if engine == nil || meter == nil || pm == nil {
		return nil, fmt.Errorf("powersig: nil dependency")
	}
	if period <= 0 {
		period = DefaultSamplePeriod
	}
	return &Detector{
		engine: engine,
		meter:  meter,
		pm:     pm,
		period: period,
		traces: make(map[app.UID][]float64),
		sigs:   make(map[app.UID]Signature),
	}, nil
}

// Start begins periodic sampling. Stop with Stop.
func (d *Detector) Start() {
	if d.ticker != nil {
		return
	}
	d.ticker = d.engine.Every(d.period, "powersig.sample", d.sample)
}

// Stop halts sampling.
func (d *Detector) Stop() {
	if d.ticker != nil {
		d.ticker.Stop()
		d.ticker = nil
	}
}

func (d *Detector) sample() {
	// EachApp iterates the package manager's cached sorted list — the
	// per-sample copy+sort of Apps() dominated the fleet bench's
	// allocation profile at a 1 Hz sampling rate per device.
	d.pm.EachApp(func(a *app.App) {
		if a.System {
			return
		}
		d.traces[a.UID] = append(d.traces[a.UID], d.meter.InstantAppPowerMW(a.UID))
	})
}

// TraceLen reports how many samples uid has accumulated.
func (d *Detector) TraceLen(uid app.UID) int { return len(d.traces[uid]) }

// Train freezes the samples collected so far into per-app signatures and
// clears the live traces. Call after a known-benign observation window.
func (d *Detector) Train() error {
	trained := 0
	for uid, trace := range d.traces {
		if len(trace) == 0 {
			continue
		}
		d.sigs[uid] = summarize(uid, trace)
		trained++
	}
	if trained == 0 {
		return fmt.Errorf("powersig: no samples to train on")
	}
	d.traces = make(map[app.UID][]float64)
	return nil
}

// Signatures returns the trained signatures sorted by UID.
func (d *Detector) Signatures() []Signature {
	out := make([]Signature, 0, len(d.sigs))
	for _, s := range d.sigs {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UID < out[j].UID })
	return out
}

func summarize(uid app.UID, trace []float64) Signature {
	var sum, peak float64
	for _, v := range trace {
		sum += v
		if v > peak {
			peak = v
		}
	}
	mean := sum / float64(len(trace))
	var varsum float64
	for _, v := range trace {
		varsum += (v - mean) * (v - mean)
	}
	return Signature{
		UID:     uid,
		MeanMW:  mean,
		StdMW:   math.Sqrt(varsum / float64(len(trace))),
		PeakMW:  peak,
		Samples: len(trace),
	}
}

// slackMW tolerates small absolute drifts so near-zero trained profiles
// don't flag on noise-level activity.
const slackMW = 25

// Classify compares each app's live trace (sampled since Train) against
// its signature: a live mean beyond mean+3σ+slack, or beyond twice the
// trained peak (whichever is larger), is anomalous. Apps without a
// trained signature are judged against a zero profile.
func (d *Detector) Classify() []Verdict {
	uids := make([]app.UID, 0, len(d.traces))
	for uid := range d.traces {
		uids = append(uids, uid)
	}
	sort.Slice(uids, func(i, j int) bool { return uids[i] < uids[j] })

	out := make([]Verdict, 0, len(uids))
	for _, uid := range uids {
		trace := d.traces[uid]
		if len(trace) == 0 {
			continue
		}
		live := summarize(uid, trace)
		sig := d.sigs[uid] // zero value for unknown apps
		threshold := sig.MeanMW + 3*sig.StdMW + slackMW
		if alt := 2 * sig.PeakMW; alt > threshold {
			threshold = alt
		}
		out = append(out, Verdict{
			UID:           uid,
			Anomalous:     live.MeanMW > threshold,
			LiveMeanMW:    live.MeanMW,
			TrainedMeanMW: sig.MeanMW,
		})
	}
	return out
}

// Anomalous returns just the flagged UIDs from Classify, sorted.
func (d *Detector) Anomalous() []app.UID {
	var out []app.UID
	for _, v := range d.Classify() {
		if v.Anomalous {
			out = append(out, v.UID)
		}
	}
	return out
}
