package powersig_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/accounting"
	"repro/internal/app"
	"repro/internal/device"
	"repro/internal/powersig"
	"repro/internal/scenario"
)

func detectorWorld(t *testing.T) (*scenario.World, *powersig.Detector) {
	t.Helper()
	w, err := scenario.NewWorld(device.Config{EAndroid: true, Policy: accounting.BatteryStats})
	if err != nil {
		t.Fatal(err)
	}
	d, err := powersig.NewDetector(w.Dev.Engine, w.Dev.Meter, w.Dev.Packages, 0)
	if err != nil {
		t.Fatal(err)
	}
	return w, d
}

// trainNormal runs a benign observation window and trains signatures.
func trainNormal(t *testing.T, w *scenario.World, d *powersig.Detector) {
	t.Helper()
	d.Start()
	// Normal usage: user opens the victim app for a while, goes home.
	if _, err := w.Dev.Activities.UserStartApp(scenario.PkgVictim); err != nil {
		t.Fatal(err)
	}
	if err := w.Dev.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	w.Dev.Activities.Home(app.UIDSystem)
	if err := w.Dev.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := d.Train(); err != nil {
		t.Fatal(err)
	}
}

func flagged(d *powersig.Detector, uid app.UID) bool {
	for _, u := range d.Anomalous() {
		if u == uid {
			return true
		}
	}
	return false
}

func TestDetectorCatchesClassicCPUBomb(t *testing.T) {
	w, d := detectorWorld(t)
	if _, err := w.InstallClassicBomber(); err != nil {
		t.Fatal(err)
	}
	trainNormal(t, w, d)
	if err := w.ClassicCPUBomb(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	bomber, err := w.Classic()
	if err != nil {
		t.Fatal(err)
	}
	if !flagged(d, bomber.UID) {
		t.Fatalf("classic CPU bomb not flagged; verdicts = %+v", d.Classify())
	}
}

func TestDetectorCatchesNetworkBomb(t *testing.T) {
	w, d := detectorWorld(t)
	if _, err := w.InstallClassicBomber(); err != nil {
		t.Fatal(err)
	}
	trainNormal(t, w, d)
	if err := w.ClassicNetworkBomb(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	bomber, err := w.Classic()
	if err != nil {
		t.Fatal(err)
	}
	if !flagged(d, bomber.UID) {
		t.Fatal("network bomb not flagged")
	}
}

func TestDetectorMissesCollateralMalware(t *testing.T) {
	// The paper's point: the collateral attacker's own trace stays flat,
	// so the power-signature detector never flags it — while E-Android
	// does.
	w, d := detectorWorld(t)
	trainNormal(t, w, d)
	if err := w.ForceScreenOn(); err != nil {
		t.Fatal(err)
	}
	if err := w.Attack3ServicePin(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if flagged(d, w.Malware.UID) {
		t.Fatal("power signatures should NOT catch collateral malware")
	}
	// The energy went somewhere: the victim's trace is hot (misleading
	// the user toward an innocent app)...
	if !flagged(d, w.Victim.UID) {
		t.Fatalf("victim's pinned service should look anomalous; verdicts = %+v", d.Classify())
	}
	// ...but E-Android names the real culprit.
	w.Dev.Flush()
	if w.Dev.EAndroid.CollateralJ(w.Malware.UID) <= 0 {
		t.Fatal("E-Android should charge the malware")
	}
}

func TestDetectorStableUnderNormalUse(t *testing.T) {
	w, d := detectorWorld(t)
	trainNormal(t, w, d)
	// A second, similar normal window must not raise alarms.
	if _, err := w.Dev.Activities.UserStartApp(scenario.PkgVictim); err != nil {
		t.Fatal(err)
	}
	if err := w.Dev.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if n := len(d.Anomalous()); n != 0 {
		t.Fatalf("false positives under normal use: %v", d.Anomalous())
	}
}

func TestTrainRequiresSamples(t *testing.T) {
	w, d := detectorWorld(t)
	_ = w
	if err := d.Train(); err == nil {
		t.Fatal("training with no samples accepted")
	}
}

func TestStartStopIdempotent(t *testing.T) {
	w, d := detectorWorld(t)
	d.Start()
	d.Start() // second start is a no-op
	if err := w.Dev.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if d.TraceLen(w.Victim.UID) != 5 {
		t.Fatalf("trace len = %d, want 5 (double-start must not double-sample)", d.TraceLen(w.Victim.UID))
	}
	d.Stop()
	d.Stop()
	if err := w.Dev.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if d.TraceLen(w.Victim.UID) != 5 {
		t.Fatal("sampling continued after stop")
	}
}

func TestSignatureStringAndAccessors(t *testing.T) {
	w, d := detectorWorld(t)
	trainNormal(t, w, d)
	sigs := d.Signatures()
	if len(sigs) == 0 {
		t.Fatal("no signatures")
	}
	if !strings.Contains(sigs[0].String(), "sig{uid=") {
		t.Fatalf("sig string = %q", sigs[0].String())
	}
}

func TestNewDetectorValidation(t *testing.T) {
	if _, err := powersig.NewDetector(nil, nil, nil, 0); err == nil {
		t.Fatal("nil deps accepted")
	}
}
