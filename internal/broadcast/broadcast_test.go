package broadcast_test

import (
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/hw"
	"repro/internal/intent"
	"repro/internal/manifest"
)

func fixture(t *testing.T) (*device.Device, *app.App, *app.App) {
	t.Helper()
	dev, err := device.New(device.Config{EAndroid: true})
	if err != nil {
		t.Fatal(err)
	}
	listener := dev.Packages.MustInstall(manifest.NewBuilder("com.listen", "Listener").
		Activity("Main", true).
		Receiver("UnlockReceiver", true, manifest.IntentFilter{
			Actions: []string{intent.ActionUserPresent},
		}).
		Receiver("Private", false).
		MustBuild())
	if err := listener.SetWorkload("UnlockReceiver", app.Workload{CPUActive: 0.2}); err != nil {
		t.Fatal(err)
	}
	sender := dev.Packages.MustInstall(manifest.NewBuilder("com.send", "Sender").
		Activity("Main", true).
		MustBuild())
	return dev, listener, sender
}

func TestImplicitBroadcastFanOut(t *testing.T) {
	dev, listener, sender := fixture(t)
	ds, err := dev.Broadcasts.Send(intent.Intent{
		Sender: sender.UID,
		Action: intent.ActionUserPresent,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Receiver != listener || ds[0].Component != "UnlockReceiver" {
		t.Fatalf("deliveries = %+v", ds)
	}
}

func TestExplicitBroadcastExportRule(t *testing.T) {
	dev, _, sender := fixture(t)
	if _, err := dev.Broadcasts.Send(intent.Intent{
		Sender:    sender.UID,
		Component: "com.listen/Private",
	}); err == nil {
		t.Fatal("cross-app explicit to unexported receiver accepted")
	}
	// Same app may target it.
	listener := dev.Packages.ByPackage("com.listen")
	if _, err := dev.Broadcasts.Send(intent.Intent{
		Sender:    listener.UID,
		Component: "com.listen/Private",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestHandlerWindowBillsReceiver(t *testing.T) {
	dev, listener, sender := fixture(t)
	if _, err := dev.Broadcasts.Send(intent.Intent{
		Sender: sender.UID,
		Action: intent.ActionUserPresent,
	}); err != nil {
		t.Fatal(err)
	}
	if got := dev.Meter.CPUUtil(listener.UID); got != 0.2 {
		t.Fatalf("handler util = %v, want 0.2", got)
	}
	if err := dev.Run(broadcast.DefaultHandlerWindow + time.Second); err != nil {
		t.Fatal(err)
	}
	if got := dev.Meter.CPUUtil(listener.UID); got != 0 {
		t.Fatalf("util after window = %v, want 0", got)
	}
	dev.Flush()
	want := 0.2 * hw.Nexus4().CPUFull / 1000 * broadcast.DefaultHandlerWindow.Seconds()
	if got := dev.Android.AppJ(listener.UID); got < want*0.99 || got > want*1.01 {
		t.Fatalf("receiver energy = %v, want ~%v", got, want)
	}
}

func TestHandlerFloorForIdleReceivers(t *testing.T) {
	dev, _, sender := fixture(t)
	idle := dev.Packages.MustInstall(manifest.NewBuilder("com.idle", "Idle").
		Receiver("R", true, manifest.IntentFilter{Actions: []string{"act.PING"}}).
		MustBuild())
	if _, err := dev.Broadcasts.Send(intent.Intent{Sender: sender.UID, Action: "act.PING"}); err != nil {
		t.Fatal(err)
	}
	if got := dev.Meter.CPUUtil(idle.UID); got != 0.02 {
		t.Fatalf("floor util = %v, want 0.02", got)
	}
}

func TestHandlerFuncRuns(t *testing.T) {
	dev, _, sender := fixture(t)
	ran := false
	if err := dev.Broadcasts.SetHandler("com.listen", "UnlockReceiver", 0, func(in intent.Intent) {
		ran = true
		if in.Action != intent.ActionUserPresent {
			t.Errorf("handler got action %q", in.Action)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Broadcasts.Send(intent.Intent{
		Sender: sender.UID,
		Action: intent.ActionUserPresent,
	}); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("handler did not run")
	}
}

func TestSetHandlerValidation(t *testing.T) {
	dev, _, _ := fixture(t)
	if err := dev.Broadcasts.SetHandler("com.missing", "R", 0, nil); err == nil {
		t.Fatal("missing package accepted")
	}
	if err := dev.Broadcasts.SetHandler("com.listen", "Main", 0, nil); err == nil {
		t.Fatal("non-receiver component accepted")
	}
	if err := dev.Broadcasts.SetHandler("com.listen", "UnlockReceiver", -time.Second, nil); err == nil {
		t.Fatal("negative window accepted")
	}
}

func TestBroadcastRevivesDeadProcess(t *testing.T) {
	dev, listener, sender := fixture(t)
	listener.Kill()
	if _, err := dev.Broadcasts.Send(intent.Intent{
		Sender: sender.UID,
		Action: intent.ActionUserPresent,
	}); err != nil {
		t.Fatal(err)
	}
	if !listener.Alive() {
		t.Fatal("broadcast should revive the receiver process")
	}
}

func TestUserPresentAutoLaunch(t *testing.T) {
	// The paper's stealth trigger: malware auto-opens when the user
	// unlocks the screen.
	dev, _, _ := fixture(t)
	mal := dev.Packages.MustInstall(manifest.NewBuilder("com.fun.game", "FunGame").
		Activity("Main", true).
		Receiver("Unlock", true, manifest.IntentFilter{
			Actions: []string{intent.ActionUserPresent},
		}).
		MustBuild())
	started := false
	if err := dev.Broadcasts.SetHandler("com.fun.game", "Unlock", time.Second, func(intent.Intent) {
		if _, err := dev.StartActivity(mal.UID, "com.fun.game/Main"); err != nil {
			t.Error(err)
		}
		started = true
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.UserUnlock(); err != nil {
		t.Fatal(err)
	}
	if !started || dev.Activities.Foreground() != mal.UID {
		t.Fatal("auto-launch on unlock failed")
	}
	// Starting its own activity from its own receiver is not collateral.
	for _, a := range dev.EAndroid.Attacks() {
		if a.Vector == core.VectorActivity {
			t.Fatalf("self start registered as attack: %v", a)
		}
	}
}

func TestCrossAppBroadcastIsCollateral(t *testing.T) {
	dev, listener, sender := fixture(t)
	if _, err := dev.Broadcasts.Send(intent.Intent{
		Sender: sender.UID,
		Action: intent.ActionUserPresent,
	}); err != nil {
		t.Fatal(err)
	}
	atks := dev.EAndroid.ActiveAttacks()
	if len(atks) != 1 || atks[0].Vector != core.VectorBroadcast ||
		atks[0].Driving != sender.UID || atks[0].Driven != listener.UID {
		t.Fatalf("attacks = %v", atks)
	}
	if err := dev.Run(broadcast.DefaultHandlerWindow + time.Second); err != nil {
		t.Fatal(err)
	}
	if len(dev.EAndroid.ActiveAttacks()) != 0 {
		t.Fatal("broadcast attack should end with the handler window")
	}
	dev.Flush()
	// The receiver's handler energy lands on the sender's map.
	if dev.EAndroid.CollateralJ(sender.UID) <= 0 {
		t.Fatal("broadcast collateral energy missing")
	}
}

func TestSystemBroadcastNotAnAttack(t *testing.T) {
	dev, _, _ := fixture(t)
	if _, err := dev.UserUnlock(); err != nil {
		t.Fatal(err)
	}
	if n := len(dev.EAndroid.ActiveAttacks()); n != 0 {
		t.Fatalf("system unlock registered %d attacks", n)
	}
}

func TestNewManagerNilDeps(t *testing.T) {
	if _, err := broadcast.NewManager(nil, nil, nil, nil); err == nil {
		t.Fatal("nil deps accepted")
	}
}
