// Package broadcast implements Android's broadcast subsystem: implicit
// broadcasts matched against manifest receivers, explicit broadcasts to
// a named receiver, handler execution windows that wake and bill the
// receiving process, and the ACTION_USER_PRESENT unlock broadcast the
// paper's malware listens for to auto-launch stealthily ("some apps
// would be opened when a user unlocks the screen by monitoring the
// ACTION_USER_PRESENT intent").
//
// Cross-app broadcasts are also an IPC channel that makes another app
// burn energy, so E-Android's monitor treats a cross-app delivery as a
// collateral event whose lifecycle spans the receiver's handler window —
// an extension beyond the paper's five vectors, documented in DESIGN.md.
package broadcast

import (
	"fmt"
	"time"

	"repro/internal/app"
	"repro/internal/hw"
	"repro/internal/intent"
	"repro/internal/manifest"
	"repro/internal/sim"
)

// DefaultHandlerWindow bounds a receiver's onReceive() execution,
// mirroring Android's ~10 s budget for broadcast receivers.
const DefaultHandlerWindow = 10 * time.Second

// Delivery is one receiver invocation.
type Delivery struct {
	Sender   app.UID
	Receiver *app.App
	// Component is the receiver's short name.
	Component string
	Action    string
	// Until is when the handler window closes.
	Until sim.Time
}

// Hooks receive broadcast events; E-Android's monitor implements this.
type Hooks interface {
	// BroadcastDelivered fires when a receiver's handler window opens.
	BroadcastDelivered(t sim.Time, d *Delivery)
	// BroadcastHandlerDone fires when the handler window closes.
	BroadcastHandlerDone(t sim.Time, d *Delivery)
}

// HandlerFunc is app code run when a receiver fires (the simulated
// onReceive body). It runs at delivery time and may start activities,
// acquire wakelocks, etc.
type HandlerFunc func(in intent.Intent)

type handlerKey struct {
	pkg, component string
}

type handler struct {
	fn     HandlerFunc
	window time.Duration
}

// Manager is the simulated broadcast dispatcher inside "am".
type Manager struct {
	engine   *sim.Engine
	pm       *app.PackageManager
	resolver *intent.Resolver
	agg      *hw.Aggregator
	hooks    []Hooks

	handlers map[handlerKey]handler
}

// NewManager builds the broadcast manager.
func NewManager(engine *sim.Engine, pm *app.PackageManager, res *intent.Resolver, agg *hw.Aggregator) (*Manager, error) {
	if engine == nil || pm == nil || res == nil || agg == nil {
		return nil, fmt.Errorf("broadcast: nil dependency")
	}
	return &Manager{
		engine:   engine,
		pm:       pm,
		resolver: res,
		agg:      agg,
		handlers: make(map[handlerKey]handler),
	}, nil
}

// AddHooks registers an event consumer.
func (m *Manager) AddHooks(h Hooks) { m.hooks = append(m.hooks, h) }

// SetHandler attaches app code (and an optional handler window override;
// zero keeps the default) to a declared receiver.
func (m *Manager) SetHandler(pkg, component string, window time.Duration, fn HandlerFunc) error {
	a := m.pm.ByPackage(pkg)
	if a == nil {
		return fmt.Errorf("broadcast: no such package %q", pkg)
	}
	c := a.Manifest.Component(component)
	if c == nil || c.Kind != manifest.KindReceiver {
		return fmt.Errorf("broadcast: %s has no receiver %q", pkg, component)
	}
	if window < 0 {
		return fmt.Errorf("broadcast: negative handler window %v", window)
	}
	if window == 0 {
		window = DefaultHandlerWindow
	}
	m.handlers[handlerKey{pkg, component}] = handler{fn: fn, window: window}
	return nil
}

// Send dispatches a broadcast. Implicit intents fan out to every
// matching manifest receiver (export rules apply cross-app); explicit
// intents target one receiver. Each delivery revives the receiving
// process, opens a handler window billed to the receiver's UID, and runs
// the attached handler code.
func (m *Manager) Send(in intent.Intent) ([]*Delivery, error) {
	var matches []intent.Match
	if in.Explicit() {
		match, err := m.resolver.ResolveExplicit(in, manifest.KindReceiver)
		if err != nil {
			return nil, err
		}
		matches = []intent.Match{match}
	} else {
		var err error
		matches, err = m.resolver.ResolveImplicit(in, manifest.KindReceiver)
		if err != nil {
			return nil, err
		}
	}
	deliveries := make([]*Delivery, 0, len(matches))
	for _, match := range matches {
		deliveries = append(deliveries, m.deliver(in, match))
	}
	return deliveries, nil
}

func (m *Manager) deliver(in intent.Intent, match intent.Match) *Delivery {
	target := match.App
	if !target.Alive() {
		target.Revive()
	}
	h, hasHandler := m.handlers[handlerKey{target.Package(), match.Component}]
	window := DefaultHandlerWindow
	if hasHandler {
		window = h.window
	}
	d := &Delivery{
		Sender:    in.Sender,
		Receiver:  target,
		Component: match.Component,
		Action:    in.Action,
		Until:     m.engine.Now().Add(window),
	}
	// The handler window bills the receiver's declared workload (plus a
	// minimal floor so waking a process is never free).
	w := target.Workload(match.Component)
	util := w.CPUActive
	if util < 0.02 {
		util = 0.02
	}
	_ = m.agg.Set(d, target.UID, hw.Demand{CPUUtil: util})
	for _, hk := range m.hooks {
		hk.BroadcastDelivered(m.engine.Now(), d)
	}
	if hasHandler && h.fn != nil {
		h.fn(in)
	}
	m.engine.After(window, "broadcast.handler-done", func() {
		_ = m.agg.Clear(d)
		for _, hk := range m.hooks {
			hk.BroadcastHandlerDone(m.engine.Now(), d)
		}
	})
	return d
}

// SendUserPresent dispatches the system's ACTION_USER_PRESENT broadcast
// (sent when the user unlocks the screen). The sender is the system.
func (m *Manager) SendUserPresent() ([]*Delivery, error) {
	return m.Send(intent.Intent{
		Sender: app.UIDSystem,
		Action: intent.ActionUserPresent,
	})
}
