package provider_test

import (
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/manifest"
	"repro/internal/provider"
)

func fixture(t *testing.T) (*device.Device, *app.App, *app.App) {
	t.Helper()
	dev, err := device.New(device.Config{EAndroid: true})
	if err != nil {
		t.Fatal(err)
	}
	owner := dev.Packages.MustInstall(manifest.NewBuilder("com.data", "Data").
		Activity("Main", true).
		Provider("ContactsProvider", true).
		Provider("Private", false).
		MustBuild())
	if err := owner.SetWorkload("ContactsProvider", app.Workload{CPUActive: 0.3}); err != nil {
		t.Fatal(err)
	}
	caller := dev.Packages.MustInstall(manifest.NewBuilder("com.caller", "Caller").
		Activity("Main", true).
		MustBuild())
	return dev, owner, caller
}

func TestQueryBillsProvider(t *testing.T) {
	dev, owner, caller := fixture(t)
	q, err := dev.Providers.Query(caller.UID, "com.data/ContactsProvider")
	if err != nil {
		t.Fatal(err)
	}
	if q.Provider != owner {
		t.Fatalf("query = %+v", q)
	}
	if got := dev.Meter.CPUUtil(owner.UID); got != 0.3 {
		t.Fatalf("provider util = %v, want 0.3", got)
	}
	if err := dev.Run(provider.DefaultQueryWindow + time.Second); err != nil {
		t.Fatal(err)
	}
	if got := dev.Meter.CPUUtil(owner.UID); got != 0 {
		t.Fatalf("provider util after window = %v", got)
	}
}

func TestQueryFloor(t *testing.T) {
	dev, _, caller := fixture(t)
	idle := dev.Packages.MustInstall(manifest.NewBuilder("com.idle", "Idle").
		Provider("P", true).MustBuild())
	if _, err := dev.Providers.Query(caller.UID, "com.idle/P"); err != nil {
		t.Fatal(err)
	}
	if got := dev.Meter.CPUUtil(idle.UID); got != 0.05 {
		t.Fatalf("floor util = %v, want 0.05", got)
	}
}

func TestExportRule(t *testing.T) {
	dev, owner, caller := fixture(t)
	if _, err := dev.Providers.Query(caller.UID, "com.data/Private"); err == nil {
		t.Fatal("cross-app query of unexported provider accepted")
	}
	if _, err := dev.Providers.Query(owner.UID, "com.data/Private"); err != nil {
		t.Fatal(err)
	}
}

func TestQueryRevivesProcess(t *testing.T) {
	dev, owner, caller := fixture(t)
	owner.Kill()
	if _, err := dev.Providers.Query(caller.UID, "com.data/ContactsProvider"); err != nil {
		t.Fatal(err)
	}
	if !owner.Alive() {
		t.Fatal("query should revive the provider process")
	}
}

func TestCrossAppQueryIsCollateral(t *testing.T) {
	dev, owner, caller := fixture(t)
	if _, err := dev.Providers.Query(caller.UID, "com.data/ContactsProvider"); err != nil {
		t.Fatal(err)
	}
	atks := dev.EAndroid.ActiveAttacks()
	if len(atks) != 1 || atks[0].Vector != core.VectorProvider ||
		atks[0].Driving != caller.UID || atks[0].Driven != owner.UID {
		t.Fatalf("attacks = %v", atks)
	}
	if err := dev.Run(provider.DefaultQueryWindow + time.Second); err != nil {
		t.Fatal(err)
	}
	if len(dev.EAndroid.ActiveAttacks()) != 0 {
		t.Fatal("query attack should close with the window")
	}
	dev.Flush()
	if dev.EAndroid.CollateralJ(caller.UID) <= 0 {
		t.Fatal("query energy should land on the caller's map")
	}
}

func TestSameAppQueryNotCollateral(t *testing.T) {
	dev, owner, _ := fixture(t)
	if _, err := dev.Providers.Query(owner.UID, "com.data/ContactsProvider"); err != nil {
		t.Fatal(err)
	}
	if len(dev.EAndroid.ActiveAttacks()) != 0 {
		t.Fatal("same-app query registered as attack")
	}
}

func TestSetQueryWindow(t *testing.T) {
	dev, owner, caller := fixture(t)
	if err := dev.Providers.SetQueryWindow("com.data", "ContactsProvider", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Providers.Query(caller.UID, "com.data/ContactsProvider"); err != nil {
		t.Fatal(err)
	}
	if err := dev.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if dev.Meter.CPUUtil(owner.UID) == 0 {
		t.Fatal("extended window should still bill at t=5s")
	}
	// Validation.
	if err := dev.Providers.SetQueryWindow("com.missing", "P", time.Second); err == nil {
		t.Fatal("missing package accepted")
	}
	if err := dev.Providers.SetQueryWindow("com.data", "Main", time.Second); err == nil {
		t.Fatal("non-provider component accepted")
	}
	if err := dev.Providers.SetQueryWindow("com.data", "ContactsProvider", 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestNewManagerNilDeps(t *testing.T) {
	if _, err := provider.NewManager(nil, nil, nil, nil); err == nil {
		t.Fatal("nil deps accepted")
	}
}
