// Package provider implements content-provider IPC: queries against
// another app's declared provider wake the providing process and bill it
// a query-execution window. Providers are the fourth Android component
// type and the remaining IPC channel after intents, service binds and
// broadcasts; the paper's related work (content provider pollution,
// Zhou & Jiang) shows they are reachable cross-app, so E-Android's
// monitor treats a cross-app query as a collateral event spanning the
// execution window — an extension vector documented in DESIGN.md.
package provider

import (
	"fmt"
	"time"

	"repro/internal/app"
	"repro/internal/hw"
	"repro/internal/intent"
	"repro/internal/manifest"
	"repro/internal/sim"
)

// DefaultQueryWindow bounds one query's execution on the provider side.
const DefaultQueryWindow = 2 * time.Second

// Query is one in-flight (or completed) provider query.
type Query struct {
	Caller    app.UID
	Provider  *app.App
	Component string
	Until     sim.Time
}

// Hooks receive provider events; E-Android's monitor implements this.
type Hooks interface {
	ProviderQueried(t sim.Time, q *Query)
	ProviderQueryDone(t sim.Time, q *Query)
}

// Manager dispatches provider queries.
type Manager struct {
	engine   *sim.Engine
	pm       *app.PackageManager
	resolver *intent.Resolver
	agg      *hw.Aggregator
	hooks    []Hooks

	windows map[providerKey]time.Duration
}

type providerKey struct {
	pkg, component string
}

// NewManager builds the provider manager.
func NewManager(engine *sim.Engine, pm *app.PackageManager, res *intent.Resolver, agg *hw.Aggregator) (*Manager, error) {
	if engine == nil || pm == nil || res == nil || agg == nil {
		return nil, fmt.Errorf("provider: nil dependency")
	}
	return &Manager{
		engine:   engine,
		pm:       pm,
		resolver: res,
		agg:      agg,
		windows:  make(map[providerKey]time.Duration),
	}, nil
}

// AddHooks registers an event consumer.
func (m *Manager) AddHooks(h Hooks) { m.hooks = append(m.hooks, h) }

// SetQueryWindow overrides the execution window for one provider
// (e.g. a heavy full-table scan).
func (m *Manager) SetQueryWindow(pkg, component string, window time.Duration) error {
	a := m.pm.ByPackage(pkg)
	if a == nil {
		return fmt.Errorf("provider: no such package %q", pkg)
	}
	c := a.Manifest.Component(component)
	if c == nil || c.Kind != manifest.KindProvider {
		return fmt.Errorf("provider: %s has no provider %q", pkg, component)
	}
	if window <= 0 {
		return fmt.Errorf("provider: non-positive query window %v", window)
	}
	m.windows[providerKey{pkg, component}] = window
	return nil
}

// Query runs one query from caller against "pkg/Component". Export rules
// apply cross-app; the providing process revives if dead; its declared
// workload (with a minimal floor) is billed for the query window.
func (m *Manager) Query(caller app.UID, full string) (*Query, error) {
	match, err := m.resolver.ResolveExplicit(intent.Intent{
		Sender:    caller,
		Component: full,
	}, manifest.KindProvider)
	if err != nil {
		return nil, err
	}
	target := match.App
	if !target.Alive() {
		target.Revive()
	}
	window := DefaultQueryWindow
	if w, ok := m.windows[providerKey{target.Package(), match.Component}]; ok {
		window = w
	}
	q := &Query{
		Caller:    caller,
		Provider:  target,
		Component: match.Component,
		Until:     m.engine.Now().Add(window),
	}
	w := target.Workload(match.Component)
	util := w.CPUActive
	if util < 0.05 {
		util = 0.05 // a query is never free: wakeup + binder + I/O
	}
	_ = m.agg.Set(q, target.UID, hw.Demand{CPUUtil: util})
	for _, h := range m.hooks {
		h.ProviderQueried(m.engine.Now(), q)
	}
	m.engine.After(window, "provider.query-done", func() {
		_ = m.agg.Clear(q)
		for _, h := range m.hooks {
			h.ProviderQueryDone(m.engine.Now(), q)
		}
	})
	return q, nil
}
