package microbench

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpsComplete(t *testing.T) {
	ops := Ops()
	if len(ops) != 13 {
		t.Fatalf("ops = %d, want 13 (Table I)", len(ops))
	}
	seen := map[string]bool{}
	for _, op := range ops {
		name := op.String()
		if strings.HasPrefix(name, "Op(") {
			t.Fatalf("unnamed op %v", op)
		}
		if seen[name] {
			t.Fatalf("duplicate op name %q", name)
		}
		seen[name] = true
	}
	if !strings.Contains(Op(99).String(), "99") {
		t.Fatal("unknown op stringer")
	}
}

func TestConfigsComplete(t *testing.T) {
	if len(Configs()) != 3 {
		t.Fatalf("configs = %v", Configs())
	}
}

func TestRunSmall(t *testing.T) {
	results, err := Run(7) // small rep count for test speed
	if err != nil {
		t.Fatal(err)
	}
	want := len(Ops()) * len(Configs())
	if len(results) != want {
		t.Fatalf("results = %d, want %d", len(results), want)
	}
	for _, r := range results {
		if len(r.Samples) != 7-2*trimOutliers {
			t.Fatalf("%v/%v: %d samples after trim", r.Config, r.Op, len(r.Samples))
		}
		s := r.Stats
		if s.Min < 0 || s.Min > s.Q1 || s.Q1 > s.Median || s.Median > s.Q3 || s.Q3 > s.Max {
			t.Fatalf("%v/%v: non-monotone stats %+v", r.Config, r.Op, s)
		}
	}
}

func TestRunRejectsTooFewReps(t *testing.T) {
	if _, err := Run(4); err == nil {
		t.Fatal("too-few reps accepted")
	}
}

func TestTrim(t *testing.T) {
	in := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	out := Trim(in, 2)
	if len(out) != 5 {
		t.Fatalf("trimmed = %v", out)
	}
	if out[0] != 3 || out[len(out)-1] != 7 {
		t.Fatalf("trimmed = %v", out)
	}
	// Over-trim returns what's left sorted.
	if got := Trim([]float64{2, 1}, 2); len(got) != 2 || got[0] != 1 {
		t.Fatalf("over-trim = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Fatalf("quartiles = %+v", s)
	}
	if got := Summarize(nil); got != (Stats{}) {
		t.Fatalf("empty stats = %+v", got)
	}
	one := Summarize([]float64{7})
	if one.Min != 7 || one.Max != 7 || one.Median != 7 {
		t.Fatalf("single stats = %+v", one)
	}
}

func TestRenderContainsEverything(t *testing.T) {
	results, err := Run(6)
	if err != nil {
		t.Fatal(err)
	}
	out := Render(results)
	for _, op := range Ops() {
		if !strings.Contains(out, op.String()) {
			t.Fatalf("render missing %v", op)
		}
	}
	for _, cfg := range Configs() {
		if !strings.Contains(out, string(cfg)) {
			t.Fatalf("render missing %v", cfg)
		}
	}
}

// Property: Summarize is order-invariant and bounded by the sample range.
func TestPropertySummarizeBounds(t *testing.T) {
	prop := func(raw []float64) bool {
		var samples []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				// Keep magnitudes timing-like so the sum cannot overflow.
				samples = append(samples, math.Mod(math.Abs(v), 1e6))
			}
		}
		if len(samples) == 0 {
			return true
		}
		s := Summarize(samples)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max &&
			s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
