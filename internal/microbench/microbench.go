// Package microbench reproduces the paper's Table I / Figure 10 overhead
// study: the wall-clock cost of thirteen critical framework operations,
// each run 50 times under three configurations — stock Android,
// E-Android with the accounting module disabled ("framework only"), and
// complete E-Android — with the two largest and two smallest samples
// trimmed as outliers and the rest summarized as boxplot statistics.
package microbench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/activity"
	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/display"
	"repro/internal/intent"
	"repro/internal/manifest"
	"repro/internal/power"
	"repro/internal/service"
)

// Op identifies one of Table I's thirteen micro operations.
type Op int

// Table I's operations, in the paper's order.
const (
	StartSelfService Op = iota + 1
	StopSelfService
	StartOtherService
	StopOtherService
	BindSelfService
	UnbindSelfService
	BindOtherService
	UnbindOtherService
	StartSelfActivity
	StartOtherActivity
	WakelockAcquire
	WakelockRelease
	ChangeScreen
)

var opNames = map[Op]string{
	StartSelfService:   "start_self_service",
	StopSelfService:    "stop_self_service",
	StartOtherService:  "start_other_service",
	StopOtherService:   "stop_other_service",
	BindSelfService:    "bind_self_service",
	UnbindSelfService:  "unbind_self_service",
	BindOtherService:   "bind_other_service",
	UnbindOtherService: "unbind_other_service",
	StartSelfActivity:  "start_self_activity",
	StartOtherActivity: "start_other_activity",
	WakelockAcquire:    "wakelock_acquire",
	WakelockRelease:    "wakelock_release",
	ChangeScreen:       "change_screen",
}

// String returns the operation's Table I notation.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Ops lists all thirteen operations in order.
func Ops() []Op {
	return []Op{
		StartSelfService, StopSelfService, StartOtherService, StopOtherService,
		BindSelfService, UnbindSelfService, BindOtherService, UnbindOtherService,
		StartSelfActivity, StartOtherActivity,
		WakelockAcquire, WakelockRelease, ChangeScreen,
	}
}

// ConfigName identifies the three measured device configurations.
type ConfigName string

// The three configurations in Figure 10.
const (
	ConfigAndroid   ConfigName = "android"
	ConfigFramework ConfigName = "eandroid-framework"
	ConfigComplete  ConfigName = "eandroid-complete"
)

// Configs lists the three configurations in presentation order.
func Configs() []ConfigName {
	return []ConfigName{ConfigAndroid, ConfigFramework, ConfigComplete}
}

// Stats are boxplot statistics over the trimmed samples, in
// microseconds.
type Stats struct {
	Min, Q1, Median, Q3, Max, Mean float64
}

// Result is one (operation, configuration) measurement.
type Result struct {
	Op      Op
	Config  ConfigName
	Samples []float64 // trimmed, microseconds
	Stats   Stats
}

// DefaultReps is the paper's 50 runs per operation.
const DefaultReps = 50

// trimOutliers is how many of each extreme the paper excludes.
const trimOutliers = 2

// bench holds a device plus the two fixture apps the operations act on.
type bench struct {
	dev   *device.Device
	self  *app.App // the app issuing the operations
	other *app.App // the other app it drives
}

func newBench(cfgName ConfigName) (*bench, error) {
	cfg := device.Config{}
	switch cfgName {
	case ConfigAndroid:
	case ConfigFramework:
		cfg.EAndroid = true
		cfg.MonitorMode = core.FrameworkOnly
	case ConfigComplete:
		cfg.EAndroid = true
		cfg.MonitorMode = core.Complete
	default:
		return nil, fmt.Errorf("microbench: unknown config %q", cfgName)
	}
	dev, err := device.New(cfg)
	if err != nil {
		return nil, err
	}
	b := &bench{dev: dev}
	b.self, err = dev.Packages.Install(manifest.NewBuilder("com.bench.self", "Self").
		Permission(manifest.PermWakeLock, manifest.PermWriteSettings).
		Activity("Main", true).
		Activity("Second", false).
		Service("Svc", true).
		MustBuild())
	if err != nil {
		return nil, err
	}
	b.other, err = dev.Packages.Install(manifest.NewBuilder("com.bench.other", "Other").
		Activity("Main", true).
		Service("Svc", true).
		MustBuild())
	if err != nil {
		return nil, err
	}
	if _, err := dev.Activities.UserStartApp("com.bench.self"); err != nil {
		return nil, err
	}
	return b, nil
}

// measure runs one rep of op, timing only the operation itself; setup
// and teardown run untimed around it.
func (b *bench) measure(op Op) (time.Duration, error) {
	dev := b.dev
	selfSvc := "com.bench.self/Svc"
	otherSvc := "com.bench.other/Svc"
	switch op {
	case StartSelfService:
		d, err := timed(func() error {
			_, e := dev.Services.Start(intent.Intent{Sender: b.self.UID, Component: selfSvc})
			return e
		})
		if err != nil {
			return 0, err
		}
		return d, dev.Services.Stop(b.self.UID, selfSvc)
	case StopSelfService:
		if _, err := dev.Services.Start(intent.Intent{Sender: b.self.UID, Component: selfSvc}); err != nil {
			return 0, err
		}
		return timed(func() error { return dev.Services.Stop(b.self.UID, selfSvc) })
	case StartOtherService:
		d, err := timed(func() error {
			_, e := dev.Services.Start(intent.Intent{Sender: b.self.UID, Component: otherSvc})
			return e
		})
		if err != nil {
			return 0, err
		}
		return d, dev.Services.Stop(b.self.UID, otherSvc)
	case StopOtherService:
		if _, err := dev.Services.Start(intent.Intent{Sender: b.self.UID, Component: otherSvc}); err != nil {
			return 0, err
		}
		return timed(func() error { return dev.Services.Stop(b.self.UID, otherSvc) })
	case BindSelfService:
		c, d, err := timedBind(dev, b.self.UID, selfSvc)
		if err != nil {
			return 0, err
		}
		return d, dev.Services.Unbind(c)
	case UnbindSelfService:
		c, err := dev.Services.Bind(intent.Intent{Sender: b.self.UID, Component: selfSvc})
		if err != nil {
			return 0, err
		}
		return timed(func() error { return dev.Services.Unbind(c) })
	case BindOtherService:
		c, d, err := timedBind(dev, b.self.UID, otherSvc)
		if err != nil {
			return 0, err
		}
		return d, dev.Services.Unbind(c)
	case UnbindOtherService:
		c, err := dev.Services.Bind(intent.Intent{Sender: b.self.UID, Component: otherSvc})
		if err != nil {
			return 0, err
		}
		return timed(func() error { return dev.Services.Unbind(c) })
	case StartSelfActivity:
		a, d, err := timedStart(dev, b.self.UID, "com.bench.self/Second")
		if err != nil {
			return 0, err
		}
		return d, dev.Activities.Finish(a)
	case StartOtherActivity:
		a, d, err := timedStart(dev, b.self.UID, "com.bench.other/Main")
		if err != nil {
			return 0, err
		}
		return d, dev.Activities.Finish(a)
	case WakelockAcquire:
		var wl *power.Wakelock
		d, err := timed(func() error {
			var e error
			wl, e = dev.Power.Acquire(b.self.UID, power.Partial, "bench")
			return e
		})
		if err != nil {
			return 0, err
		}
		return d, wl.Release()
	case WakelockRelease:
		wl, err := dev.Power.Acquire(b.self.UID, power.Partial, "bench")
		if err != nil {
			return 0, err
		}
		return timed(func() error { return wl.Release() })
	case ChangeScreen:
		// Alternate so the write is never a no-op.
		next := 40
		if dev.Meter.Brightness() == 40 {
			next = 200
		}
		return timed(func() error {
			return dev.Display.SetBrightness(b.self.UID, display.SourceApp, next)
		})
	}
	return 0, fmt.Errorf("microbench: unknown op %v", op)
}

func timed(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}

func timedBind(dev *device.Device, uid app.UID, comp string) (c *service.Connection, d time.Duration, err error) {
	start := time.Now()
	c, err = dev.Services.Bind(intent.Intent{Sender: uid, Component: comp})
	return c, time.Since(start), err
}

func timedStart(dev *device.Device, uid app.UID, comp string) (a *activity.Activity, d time.Duration, err error) {
	start := time.Now()
	a, err = dev.Activities.StartActivity(intent.Intent{Sender: uid, Component: comp})
	return a, time.Since(start), err
}

// Run measures all operations under all three configurations with the
// given rep count (use DefaultReps for the paper's 50).
func Run(reps int) ([]Result, error) {
	if reps <= 2*trimOutliers {
		return nil, fmt.Errorf("microbench: reps must exceed %d, got %d", 2*trimOutliers, reps)
	}
	var out []Result
	for _, cfg := range Configs() {
		b, err := newBench(cfg)
		if err != nil {
			return nil, err
		}
		for _, op := range Ops() {
			// Warm-up rep to populate lazy structures, untimed.
			if _, err := b.measure(op); err != nil {
				return nil, fmt.Errorf("microbench: %v/%v warmup: %w", cfg, op, err)
			}
			samples := make([]float64, 0, reps)
			for i := 0; i < reps; i++ {
				d, err := b.measure(op)
				if err != nil {
					return nil, fmt.Errorf("microbench: %v/%v rep %d: %w", cfg, op, i, err)
				}
				samples = append(samples, float64(d.Nanoseconds())/1000)
			}
			trimmed := Trim(samples, trimOutliers)
			out = append(out, Result{
				Op:      op,
				Config:  cfg,
				Samples: trimmed,
				Stats:   Summarize(trimmed),
			})
		}
	}
	return out, nil
}

// Trim sorts samples and drops k from each end, matching the paper's
// outlier policy ("we excluded the two biggest and smallest values").
func Trim(samples []float64, k int) []float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if len(s) <= 2*k {
		return s
	}
	return s[k : len(s)-k]
}

// Summarize computes boxplot statistics over sorted-or-not samples.
func Summarize(samples []float64) Stats {
	if len(samples) == 0 {
		return Stats{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	return Stats{
		Min:    s[0],
		Q1:     quantile(s, 0.25),
		Median: quantile(s, 0.5),
		Q3:     quantile(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   sum / float64(len(s)),
	}
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Render formats results as the Figure 10 comparison table (one row per
// operation per configuration) with a crude ASCII box.
func Render(results []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Micro benchmark (Table I ops, Figure 10) — times in µs, %d reps, 2 hi/lo trimmed\n",
		DefaultReps)
	fmt.Fprintf(&b, "%-22s %-20s %8s %8s %8s %8s %8s\n",
		"operation", "config", "min", "q1", "median", "q3", "max")
	for _, r := range results {
		fmt.Fprintf(&b, "%-22s %-20s %8.2f %8.2f %8.2f %8.2f %8.2f\n",
			r.Op, r.Config, r.Stats.Min, r.Stats.Q1, r.Stats.Median, r.Stats.Q3, r.Stats.Max)
	}
	return b.String()
}
