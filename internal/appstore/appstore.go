// Package appstore generates a synthetic Google Play corpus for the
// paper's Figure 2 study: 1,124 popular apps across 28 categories,
// inspected for (1) exported components, (2) the WAKE_LOCK permission and
// (3) the WRITE_SETTINGS permission.
//
// The paper collected real APKs and ran APKTool to extract each
// AndroidManifest.xml; we generate manifests whose population rates match
// the reported marginals (72 % exported, 81 % WAKE_LOCK, 21 %
// WRITE_SETTINGS), serialize each to an AndroidManifest.xml document, and
// run the same extract-and-inspect pipeline over the XML.
package appstore

import (
	"fmt"
	"math/rand"

	"repro/internal/manifest"
)

// The paper's corpus parameters.
const (
	// DefaultCorpusSize is the number of collected apps.
	DefaultCorpusSize = 1124
	// NumCategories is the number of Play-store categories.
	NumCategories = 28
	// RateExported is the fraction of apps with an exported component.
	RateExported = 0.72
	// RateWakeLock is the fraction requesting WAKE_LOCK.
	RateWakeLock = 0.81
	// RateWriteSettings is the fraction requesting WRITE_SETTINGS.
	RateWriteSettings = 0.21
)

// Categories lists 28 Play-store categories, including the ones the
// paper names (game, business, finance).
var Categories = []string{
	"Game", "Business", "Finance", "Communication", "Social",
	"Productivity", "Tools", "Entertainment", "Music", "Video",
	"Photography", "Shopping", "Travel", "Maps", "News",
	"Books", "Education", "Health", "Fitness", "Lifestyle",
	"Weather", "Sports", "Food", "Medical", "Parenting",
	"Art", "Comics", "Personalization",
}

// APK is one generated app package: the manifest and its serialized
// AndroidManifest.xml document, as APKTool would recover it.
type APK struct {
	Manifest    *manifest.Manifest
	ManifestXML []byte
}

// Corpus is a generated app-store sample.
type Corpus struct {
	APKs []APK
}

// Generate builds a corpus of n apps whose attribute rates match the
// paper's reported marginals exactly (up to rounding) while the overlap
// between attributes is randomized by seed.
func Generate(n int, seed int64) (*Corpus, error) {
	if n <= 0 {
		return nil, fmt.Errorf("appstore: corpus size must be positive, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))

	exported := pickSet(rng, n, RateExported)
	wakeLock := pickSet(rng, n, RateWakeLock)
	writeSettings := pickSet(rng, n, RateWriteSettings)

	c := &Corpus{APKs: make([]APK, 0, n)}
	for i := 0; i < n; i++ {
		cat := Categories[i%NumCategories]
		b := manifest.NewBuilder(
			fmt.Sprintf("com.store.%s.app%04d", sanitizeCat(cat), i),
			fmt.Sprintf("%s App %d", cat, i),
		).Category(cat)

		if wakeLock[i] {
			b.Permission(manifest.PermWakeLock)
		}
		if writeSettings[i] {
			b.Permission(manifest.PermWriteSettings)
		}

		// Every app has a launcher activity; whether anything is
		// exported beyond the implicit launcher entry is the property
		// under study, so the launcher activity's exported flag follows
		// the assignment and extra components are sprinkled in.
		b.Activity("MainActivity", exported[i], manifest.IntentFilter{
			Actions:    []string{"android.intent.action.MAIN"},
			Categories: []string{"android.intent.category.LAUNCHER"},
		})
		nExtra := rng.Intn(4)
		for j := 0; j < nExtra; j++ {
			name := fmt.Sprintf("Extra%d", j)
			exp := exported[i] && rng.Intn(2) == 0
			switch rng.Intn(3) {
			case 0:
				b.Activity(name, exp)
			case 1:
				b.Service(name, exp)
			case 2:
				b.Receiver(name, exp)
			}
		}

		m, err := b.Build()
		if err != nil {
			return nil, err
		}
		xml, err := m.MarshalXMLDoc()
		if err != nil {
			return nil, err
		}
		c.APKs = append(c.APKs, APK{Manifest: m, ManifestXML: xml})
	}
	return c, nil
}

// pickSet returns a boolean slice with exactly round(rate*n) true values
// at random positions.
func pickSet(rng *rand.Rand, n int, rate float64) []bool {
	k := int(rate*float64(n) + 0.5)
	out := make([]bool, n)
	perm := rng.Perm(n)
	for _, idx := range perm[:k] {
		out[idx] = true
	}
	return out
}

func sanitizeCat(c string) string {
	out := make([]rune, 0, len(c))
	for _, r := range c {
		if r >= 'A' && r <= 'Z' {
			r += 'a' - 'A'
		}
		if r >= 'a' && r <= 'z' {
			out = append(out, r)
		}
	}
	return string(out)
}

// StudyResult holds the Figure 2 marginals recovered by inspecting the
// serialized manifests.
type StudyResult struct {
	Total             int
	Exported          int
	WakeLock          int
	WriteSettings     int
	PerCategory       map[string]int // apps per category
	ExportedRate      float64
	WakeLockRate      float64
	WriteSettingsRate float64
}

// Inspect runs the APKTool-equivalent pipeline: parse every serialized
// AndroidManifest.xml and answer the paper's three questions.
func Inspect(c *Corpus) (*StudyResult, error) {
	res := &StudyResult{Total: len(c.APKs), PerCategory: make(map[string]int)}
	for i := range c.APKs {
		m, err := manifest.ParseXMLDoc(c.APKs[i].ManifestXML)
		if err != nil {
			return nil, fmt.Errorf("appstore: apk %d: %w", i, err)
		}
		res.PerCategory[m.Category]++
		if m.HasExportedComponent() {
			res.Exported++
		}
		if m.HasPermission(manifest.PermWakeLock) {
			res.WakeLock++
		}
		if m.HasPermission(manifest.PermWriteSettings) {
			res.WriteSettings++
		}
	}
	if res.Total > 0 {
		res.ExportedRate = float64(res.Exported) / float64(res.Total)
		res.WakeLockRate = float64(res.WakeLock) / float64(res.Total)
		res.WriteSettingsRate = float64(res.WriteSettings) / float64(res.Total)
	}
	return res, nil
}
