package appstore

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateDefaultCorpus(t *testing.T) {
	c, err := Generate(DefaultCorpusSize, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.APKs) != DefaultCorpusSize {
		t.Fatalf("corpus size = %d", len(c.APKs))
	}
	for i, apk := range c.APKs {
		if len(apk.ManifestXML) == 0 {
			t.Fatalf("apk %d has empty manifest xml", i)
		}
	}
}

func TestGenerateRejectsBadSize(t *testing.T) {
	if _, err := Generate(0, 1); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := Generate(-5, 1); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestInspectRecoversPaperRates(t *testing.T) {
	c, err := Generate(DefaultCorpusSize, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Inspect(c)
	if err != nil {
		t.Fatal(err)
	}
	// Exact counts by construction (rounded).
	n := float64(res.Total)
	if res.Exported != int(RateExported*n+0.5) {
		t.Fatalf("exported = %d", res.Exported)
	}
	if res.WakeLock != int(RateWakeLock*n+0.5) {
		t.Fatalf("wakelock = %d", res.WakeLock)
	}
	if res.WriteSettings != int(RateWriteSettings*n+0.5) {
		t.Fatalf("writesettings = %d", res.WriteSettings)
	}
	// Figure 2's percentages.
	if math.Abs(res.ExportedRate-0.72) > 0.001 ||
		math.Abs(res.WakeLockRate-0.81) > 0.001 ||
		math.Abs(res.WriteSettingsRate-0.21) > 0.001 {
		t.Fatalf("rates = %.3f %.3f %.3f", res.ExportedRate, res.WakeLockRate, res.WriteSettingsRate)
	}
}

func TestCorpusCovers28Categories(t *testing.T) {
	if len(Categories) != NumCategories {
		t.Fatalf("Categories = %d entries", len(Categories))
	}
	c, err := Generate(DefaultCorpusSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Inspect(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCategory) != NumCategories {
		t.Fatalf("categories covered = %d", len(res.PerCategory))
	}
	total := 0
	for _, n := range res.PerCategory {
		total += n
	}
	if total != DefaultCorpusSize {
		t.Fatalf("category counts sum to %d", total)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a, err := Generate(100, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(100, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.APKs {
		if string(a.APKs[i].ManifestXML) != string(b.APKs[i].ManifestXML) {
			t.Fatalf("apk %d differs across same-seed runs", i)
		}
	}
	c, err := Generate(100, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.APKs {
		if string(a.APKs[i].ManifestXML) != string(c.APKs[i].ManifestXML) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestInspectEmptyCorpus(t *testing.T) {
	res, err := Inspect(&Corpus{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 0 || res.ExportedRate != 0 {
		t.Fatalf("empty corpus result = %+v", res)
	}
}

// Property: for any size and seed, recovered counts equal the rounded
// targets and every manifest round-trips.
func TestPropertyRatesExact(t *testing.T) {
	prop := func(size uint16, seed int64) bool {
		n := int(size%500) + 1
		c, err := Generate(n, seed)
		if err != nil {
			return false
		}
		res, err := Inspect(c)
		if err != nil {
			return false
		}
		return res.Exported == int(RateExported*float64(n)+0.5) &&
			res.WakeLock == int(RateWakeLock*float64(n)+0.5) &&
			res.WriteSettings == int(RateWriteSettings*float64(n)+0.5)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
