package hw

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/app"
	"repro/internal/sim"
)

func TestDVFSProfileValidates(t *testing.T) {
	if err := Nexus4DVFS().Validate(); err != nil {
		t.Fatal(err)
	}
	p := Nexus4DVFS()
	p.CPUFreqs[0].MHz = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative MHz accepted")
	}
	p = Nexus4DVFS()
	p.CPUFreqs[1].MHz = p.CPUFreqs[0].MHz
	if err := p.Validate(); err == nil {
		t.Fatal("non-ascending ladder accepted")
	}
	p = Nexus4DVFS()
	p.CPUFreqs[1].ActiveMW = p.CPUFreqs[0].ActiveMW - 1
	if err := p.Validate(); err == nil {
		t.Fatal("non-monotone power accepted")
	}
}

func TestGovernorPicksLowestSufficientLevel(t *testing.T) {
	p := Nexus4DVFS()
	top := float64(p.CPUFreqs[len(p.CPUFreqs)-1].MHz)
	tests := []struct {
		util    float64
		wantMHz int
	}{
		{0.0, 384},
		{0.2, 384},  // 384/1512 ≈ 0.254 covers 0.2
		{0.3, 702},  // needs > 0.254
		{0.5, 1026}, // 1026/1512 ≈ 0.679
		{0.7, 1242}, // 1242/1512 ≈ 0.821
		{0.9, 1512},
		{1.0, 1512},
	}
	for _, tt := range tests {
		if got := p.governorLevel(tt.util).MHz; got != tt.wantMHz {
			t.Errorf("governor(%v) = %d MHz, want %d (top %v)", tt.util, got, tt.wantMHz, top)
		}
	}
}

func TestDVFSLightLoadCheaperThanLinear(t *testing.T) {
	// At 20% total load the governor runs at 384 MHz: the marginal CPU
	// cost must be well below the top-frequency linear cost.
	p := Nexus4DVFS()
	light := p.effectiveCPUFullMW(0.2)
	heavy := p.effectiveCPUFullMW(1.0)
	if light >= heavy {
		t.Fatalf("light marginal %v should be < heavy %v", light, heavy)
	}
	if heavy != p.CPUFreqs[len(p.CPUFreqs)-1].ActiveMW {
		t.Fatalf("full-load marginal = %v, want top ActiveMW", heavy)
	}
}

func TestLinearModelUnchangedWithoutLadder(t *testing.T) {
	p := Nexus4()
	if got := p.effectiveCPUFullMW(0.3); got != p.CPUFull {
		t.Fatalf("linear marginal = %v, want CPUFull", got)
	}
}

func TestDVFSEnergyIntegration(t *testing.T) {
	e := sim.NewEngine(1)
	b, err := NewBattery(NexusBatteryJ)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMeter(e.Now, Nexus4DVFS(), b)
	if err != nil {
		t.Fatal(err)
	}
	var cpuJ float64
	m.AddSink(SinkFunc(func(iv Interval) {
		iv.EachApp(func(_ app.UID, u *UsageRow) {
			cpuJ += u.J(CPU)
		})
	}))
	m.SetCPUUtil(1, 0.2) // runs at 384 MHz
	if err := e.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	p := Nexus4DVFS()
	want := 0.2 * p.effectiveCPUFullMW(0.2) / 1000 * 10
	if math.Abs(cpuJ-want) > 1e-9 {
		t.Fatalf("cpu energy = %v, want %v", cpuJ, want)
	}
	// The same work under the linear model costs more.
	linear := 0.2 * Nexus4().CPUFull / 1000 * 10
	if cpuJ >= linear {
		t.Fatalf("dvfs energy %v should be < linear %v at light load", cpuJ, linear)
	}
}

func TestDVFSSecondAppRaisesFrequencyForBoth(t *testing.T) {
	// When a second app pushes the total load past a capacity step, the
	// governor raises the frequency and everyone's marginal cost rises —
	// the coupling a linear model cannot express.
	e := sim.NewEngine(1)
	b, _ := NewBattery(NexusBatteryJ)
	m, _ := NewMeter(e.Now, Nexus4DVFS(), b)
	per := map[int]float64{}
	m.AddSink(SinkFunc(func(iv Interval) {
		iv.EachApp(func(uid app.UID, u *UsageRow) {
			per[int(uid)] += u.J(CPU)
		})
	}))
	m.SetCPUUtil(1, 0.2)
	if err := e.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	m.SetCPUUtil(2, 0.5) // total 0.7 -> 1242 MHz
	if err := e.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	p := Nexus4DVFS()
	phase1 := 0.2 * p.effectiveCPUFullMW(0.2) / 1000 * 10
	phase2 := 0.2 * p.effectiveCPUFullMW(0.7) / 1000 * 10
	if math.Abs(per[1]-(phase1+phase2)) > 1e-9 {
		t.Fatalf("uid1 energy = %v, want %v", per[1], phase1+phase2)
	}
	if phase2 <= phase1 {
		t.Fatal("frequency raise should increase uid1's cost")
	}
}

// Property: the marginal cost is monotone non-decreasing in total load
// and bounded by the ladder's endpoints.
func TestPropertyDVFSMarginalMonotone(t *testing.T) {
	p := Nexus4DVFS()
	top := p.CPUFreqs[len(p.CPUFreqs)-1]
	bottomMarginal := p.effectiveCPUFullMW(0)
	prop := func(a, b float64) bool {
		ua := math.Abs(math.Mod(a, 1))
		ub := math.Abs(math.Mod(b, 1))
		if ua > ub {
			ua, ub = ub, ua
		}
		ma := p.effectiveCPUFullMW(ua)
		mb := p.effectiveCPUFullMW(ub)
		return ma <= mb+1e-9 &&
			ma >= bottomMarginal-1e-9 &&
			mb <= top.ActiveMW/(float64(p.CPUFreqs[0].MHz)/float64(top.MHz))+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
